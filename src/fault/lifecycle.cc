#include "fault/lifecycle.hh"

#include <cmath>

#include "common/logging.hh"

namespace dve
{

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::Transient: return "transient";
      case FaultKind::Intermittent: return "intermittent";
      case FaultKind::Permanent: return "permanent";
    }
    return "?";
}

LifecycleConfig
LifecycleConfig::fieldDefaults()
{
    // Relative magnitudes follow the field-study shape the paper cites
    // (Sec. II): small-granularity faults dominate arrivals, and the
    // larger the scope the likelier the fault is hard. Absolute values
    // are per-device FIT; campaigns multiply by `acceleration`.
    LifecycleConfig c;
    c.rates[unsigned(FaultScope::Cell)] = {20.0, 0.70, 0.20};
    c.rates[unsigned(FaultScope::Row)] = {8.0, 0.25, 0.45};
    c.rates[unsigned(FaultScope::Column)] = {6.0, 0.25, 0.45};
    c.rates[unsigned(FaultScope::Bank)] = {10.0, 0.20, 0.40};
    c.rates[unsigned(FaultScope::Chip)] = {2.0, 0.10, 0.20};
    c.rates[unsigned(FaultScope::Channel)] = {0.6, 0.05, 0.15};
    c.rates[unsigned(FaultScope::Controller)] = {0.3, 0.0, 0.0};
    // RowDisturb stays at rate 0: read disturbance is workload-driven
    // (DramModule activation counters inject the victims), not an ambient
    // Poisson process. Campaigns may still set a rate to model background
    // hammering; arrivals then place a transient victim-row flip.
    return c;
}

FaultLifecycleEngine::FaultLifecycleEngine(const LifecycleConfig &cfg,
                                           FaultRegistry &reg)
    : cfg_(cfg), reg_(reg), map_(cfg.dram), rng_(cfg.seed)
{
    dve_assert(cfg_.sockets > 0, "lifecycle needs at least one socket");
    dve_assert(cfg_.footprintLines > 0, "lifecycle footprint is empty");
    // Seed one arrival process per scope, in scope order so the draw
    // sequence (and thus the whole run) is reproducible from the seed.
    for (unsigned s = 0; s < numFaultScopes; ++s)
        scheduleArrival(static_cast<FaultScope>(s), 0);
}

double
FaultLifecycleEngine::ratePerTick(FaultScope s) const
{
    // FIT = arrivals per 1e9 device-hours; one hour is 3.6e15 ticks.
    constexpr double ticks_per_fit_interval = 1e9 * 3.6e15;
    return cfg_.rates[unsigned(s)].fit * cfg_.acceleration
           / ticks_per_fit_interval;
}

Tick
FaultLifecycleEngine::expDraw(double mean_ticks)
{
    const double u = rng_.uniform();
    const double d = -std::log1p(-u) * mean_ticks;
    if (d >= static_cast<double>(maxTick) / 2)
        return maxTick / 2;
    return d < 1.0 ? 1 : static_cast<Tick>(d);
}

void
FaultLifecycleEngine::push(Pending p)
{
    p.seq = nextSeq_++;
    queue_.push(p);
}

void
FaultLifecycleEngine::scheduleArrival(FaultScope s, Tick after)
{
    const double rate = ratePerTick(s);
    if (rate <= 0.0)
        return; // process disabled for this scope
    Pending p;
    p.at = after + expDraw(1.0 / rate);
    if (p.at < after) // overflow: effectively never
        return;
    p.type = Event::Type::Arrive;
    p.scope = s;
    push(p);
}

void
FaultLifecycleEngine::advanceTo(Tick now)
{
    dve_assert(now >= now_, "lifecycle time must not run backwards");
    now_ = now;
    while (!queue_.empty() && queue_.top().at <= now) {
        const Pending p = queue_.top();
        queue_.pop();
        if (p.type == Event::Type::Arrive) {
            if (!arrivalsStopped_)
                processArrival(p);
        } else {
            processFlap(p);
        }
    }
}

Tick
FaultLifecycleEngine::nextEventAt() const
{
    return queue_.empty() ? maxTick : queue_.top().at;
}

void
FaultLifecycleEngine::processArrival(const Pending &p)
{
    // Keep the scope's Poisson process running regardless of what this
    // arrival turns into.
    scheduleArrival(p.scope, p.at);

    const ScopeRate &mix = cfg_.rates[unsigned(p.scope)];
    const double u = rng_.uniform();
    const FaultKind kind = u < mix.transient ? FaultKind::Transient
                           : u < mix.transient + mix.intermittent
                               ? FaultKind::Intermittent
                               : FaultKind::Permanent;

    FaultDescriptor f;
    f.scope = p.scope;
    f.socket = static_cast<unsigned>(rng_.next(cfg_.sockets));
    if (isFabricScope(p.scope)) {
        // Fabric faults are placed on sockets/links, not DRAM coordinates.
        // Writes cannot cure a link, so none of them is marked transient;
        // flapping links are modeled as intermittent arrivals.
        if (p.scope == FaultScope::PoolNodeOffline) {
            if (cfg_.poolNodes == 0)
                return; // no pool tier configured
            // socket field carries the pool-node id (overrides the draw
            // above; pool presets are the only source of nonzero rates).
            f.socket = static_cast<unsigned>(rng_.next(cfg_.poolNodes));
            f.peer = 0;
        } else if (p.scope == FaultScope::FabricPartition) {
            if (cfg_.poolNodes == 0)
                return; // nothing to partition from
            f.socket = 0;
            f.peer = 0;
        } else if (p.scope != FaultScope::SocketOffline) {
            if (cfg_.sockets < 2)
                return; // no inter-socket link to fail
            f.peer = (f.socket + 1
                      + static_cast<unsigned>(rng_.next(cfg_.sockets - 1)))
                     % cfg_.sockets;
            if (p.scope == FaultScope::LinkLossy) {
                f.dropProb = cfg_.lossyDropProb;
                f.delayTicks = cfg_.lossyExtraDelay;
            }
        }
    } else if (p.scope == FaultScope::Metadata) {
        // Control-plane fault: (socket, structure, page), with the page
        // drawn from the same footprint the workload touches so the
        // corrupted directory/RMT entries get consulted.
        f.chip = static_cast<unsigned>(rng_.next(numMetaStructures));
        const Addr pages = cfg_.footprintLines >> (pageShift - lineShift);
        f.row = rng_.next(pages > 0 ? pages : 1);
        f.transient = kind == FaultKind::Transient;
    } else {
        // Place the fault at coordinates a workload line actually decodes
        // to, so campaign footprints observe the faults they're charged
        // for.
        const Addr line = rng_.next(cfg_.footprintLines);
        const DramCoord c = map_.decode(line << lineShift);
        f.channel = c.channel;
        f.rank = c.rank;
        f.bank = c.bank;
        f.row = c.row;
        f.column = c.column;
        f.chip = static_cast<unsigned>(rng_.next(cfg_.chips));
        f.bit = static_cast<unsigned>(rng_.next(8));
        f.transient = kind == FaultKind::Transient;
    }

    const std::uint64_t id = reg_.inject(f);
    if (id == 0)
        return; // out of the configured geometry: drop silently

    ++stats_.arrivals;
    ++stats_.byKind[unsigned(kind)];
    ++stats_.byScope[unsigned(p.scope)];
    log_.push_back({p.at, Event::Type::Arrive, kind, p.scope, id});
    if (tracer_) {
        tracer_->record({p.at, 0, TraceKind::FaultArrive, TraceComp::Fault,
                         static_cast<std::uint8_t>(f.socket), id,
                         static_cast<std::uint64_t>(p.scope)});
    }

    if (kind == FaultKind::Intermittent) {
        Pending off;
        off.at = p.at + expDraw(static_cast<double>(cfg_.meanActive));
        off.type = Event::Type::Deactivate;
        off.scope = p.scope;
        off.kind = kind;
        off.desc = f;
        off.faultId = id;
        off.flapsLeft =
            cfg_.maxFlaps == 0
                ? 0
                : static_cast<unsigned>(rng_.next(cfg_.maxFlaps));
        push(off);
    }
}

void
FaultLifecycleEngine::processFlap(const Pending &p)
{
    if (p.type == Event::Type::Deactivate) {
        // The episode ends: the component reads clean again for a while.
        // clear() may fail if a repair write already cured the entry; the
        // dormancy/reactivation schedule is unaffected either way.
        reg_.clear(p.faultId);
        ++stats_.deactivations;
        log_.push_back(
            {p.at, Event::Type::Deactivate, p.kind, p.scope, p.faultId});
        if (tracer_) {
            tracer_->record({p.at, 0, TraceKind::FaultHeal,
                             TraceComp::Fault,
                             static_cast<std::uint8_t>(p.desc.socket),
                             p.faultId,
                             static_cast<std::uint64_t>(p.scope)});
        }
        if (p.flapsLeft == 0)
            return; // dormant for good
        Pending on = p;
        on.at = p.at + expDraw(static_cast<double>(cfg_.meanInactive));
        on.type = Event::Type::Reactivate;
        on.flapsLeft = p.flapsLeft - 1;
        push(on);
        return;
    }

    // Reactivate: the same marginal component fails again.
    Pending off = p;
    off.faultId = reg_.inject(p.desc);
    if (off.faultId == 0)
        return;
    ++stats_.reactivations;
    log_.push_back(
        {p.at, Event::Type::Reactivate, p.kind, p.scope, off.faultId});
    if (tracer_) {
        tracer_->record({p.at, 0, TraceKind::FaultArrive, TraceComp::Fault,
                         static_cast<std::uint8_t>(p.desc.socket),
                         off.faultId,
                         static_cast<std::uint64_t>(p.scope)});
    }
    off.at = p.at + expDraw(static_cast<double>(cfg_.meanActive));
    off.type = Event::Type::Deactivate;
    push(off);
}

} // namespace dve
