/**
 * @file
 * google-benchmark microbenchmarks of the performance-critical library
 * components: GF arithmetic, Reed-Solomon encode/decode, the line codec,
 * the event queue, mesh routing, cache arrays, and the replica
 * directory.
 */

#include <benchmark/benchmark.h>

#include "cache/assoc_lru.hh"
#include "cache/sa_cache.hh"
#include "common/rng.hh"
#include "core/replica_directory.hh"
#include "ecc/line_codec.hh"
#include "mem/memory_controller.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace dve;

void
BM_GfMul(benchmark::State &state)
{
    const auto &gf = GaloisField::gf256();
    std::uint32_t a = 37, b = 91;
    for (auto _ : state) {
        a = gf.mul(a ? a : 1, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_GfMul);

void
BM_RsEncodeChipkill(benchmark::State &state)
{
    const ReedSolomon rs(GaloisField::gf256(), 19, 16);
    std::vector<std::uint32_t> msg(16, 0xA5);
    for (auto _ : state) {
        auto cw = rs.encode(msg);
        benchmark::DoNotOptimize(cw);
    }
}
BENCHMARK(BM_RsEncodeChipkill);

void
BM_RsDecodeCleanVsCorrupted(benchmark::State &state)
{
    const ReedSolomon rs(GaloisField::gf256(), 19, 16);
    Rng rng(1);
    std::vector<std::uint32_t> msg(16);
    for (auto &v : msg)
        v = static_cast<std::uint32_t>(rng.next(256));
    auto cw = rs.encode(msg);
    if (state.range(0))
        cw[5] ^= 0x42;
    for (auto _ : state) {
        auto r = rs.decode(cw, 1);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_RsDecodeCleanVsCorrupted)->Arg(0)->Arg(1);

void
BM_LineCodecEncode(benchmark::State &state)
{
    const LineCodec codec(static_cast<Scheme>(state.range(0)));
    LineBytes data{};
    for (unsigned i = 0; i < 64; ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    for (auto _ : state) {
        auto stored = codec.encode(data);
        benchmark::DoNotOptimize(stored);
    }
}
BENCHMARK(BM_LineCodecEncode)
    ->Arg(static_cast<int>(Scheme::SecDed72_64))
    ->Arg(static_cast<int>(Scheme::ChipkillSscDsd))
    ->Arg(static_cast<int>(Scheme::TsdDetect));

void
BM_EventQueueChurn(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        int fired = 0;
        for (Tick t = 0; t < 1000; ++t)
            q.schedule(t * 7 % 997, [&] { ++fired; });
        q.run();
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueChurn);

void
BM_MeshTraverse(benchmark::State &state)
{
    Mesh m(4, 2);
    unsigned i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.traverse(i % 8, (i * 3 + 5) % 8));
        ++i;
    }
}
BENCHMARK(BM_MeshTraverse);

void
BM_LlcLookup(benchmark::State &state)
{
    auto llc = SetAssocCache<int>::fromCapacity(8ULL << 20, 16);
    for (Addr l = 0; l < 100000; ++l)
        llc.insert(l * 3, static_cast<int>(l));
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(llc.find(probe * 3));
        probe = (probe + 7919) % 100000;
    }
}
BENCHMARK(BM_LlcLookup);

void
BM_ReplicaDirLookup(benchmark::State &state)
{
    ReplicaDirectory rd(0, 2048, false);
    for (Addr l = 0; l < 4096; ++l)
        rd.install(l, {RepState::Readable, -1});
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rd.lookup(probe));
        probe = (probe + 613) % 4096;
    }
}
BENCHMARK(BM_ReplicaDirLookup);

void
BM_MemoryControllerRead(benchmark::State &state)
{
    FaultRegistry faults;
    MemoryController mc("m", 0, DramConfig{}, Scheme::ChipkillSscDsd,
                        MirrorMode::None, &faults, 1);
    mc.write(0x1000, 42, 0);
    Tick t = 0;
    for (auto _ : state) {
        const auto r = mc.read(0x1000, t);
        t = r.readyAt;
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MemoryControllerRead);

} // namespace

BENCHMARK_MAIN();
