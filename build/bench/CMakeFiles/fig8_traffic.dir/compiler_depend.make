# Empty compiler generated dependencies file for fig8_traffic.
# This may be replaced when dependencies are built.
