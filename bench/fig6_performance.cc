/**
 * @file
 * Fig 6: speedup of Dvé's allow, deny and dynamic protocols (plus the
 * Intel-mirroring++ strawman) over the baseline NUMA system, across the
 * 20 Table III workloads ordered by descending L2 MPKI, with geometric
 * means over the top-10, top-15 and all benchmarks.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace dve;

int
main()
{
    const double scale = bench::scaleFromEnv(0.5);
    bench::printHeader("Fig 6: performance normalized to baseline NUMA");
    std::printf("trace scale %.2f (set DVE_BENCH_SCALE to change)\n\n",
                scale);

    const std::vector<SchemeKind> schemes = {
        SchemeKind::IntelMirrorPlus, SchemeKind::DveAllow,
        SchemeKind::DveDeny, SchemeKind::DveDynamic};

    TextTable t({"benchmark", "mpki", "intel-mirror++", "dve-allow",
                 "dve-deny", "dve-dynamic", "best"});

    std::vector<std::vector<double>> speedups(schemes.size());

    // One sweep point per (workload, column); column 0 is the baseline.
    const auto &workloads = table3Workloads();
    const std::size_t cols = 1 + schemes.size();
    const auto runs = bench::runMatrix(
        workloads.size() * cols, [&](std::size_t p) {
            const auto &wl = workloads[p / cols];
            const std::size_t c = p % cols;
            return bench::runScheme(
                c == 0 ? SchemeKind::BaselineNuma : schemes[c - 1], wl,
                scale);
        });

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &wl = workloads[w];
        const auto &base = runs[w * cols];
        std::vector<std::string> row = {wl.name,
                                        TextTable::num(base.mpki, 1)};
        double best = 0;
        std::size_t best_idx = 0;
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            const auto &r = runs[w * cols + 1 + i];
            const double sp = static_cast<double>(base.roiTime)
                              / static_cast<double>(r.roiTime);
            speedups[i].push_back(sp);
            row.push_back(TextTable::num(sp, 3));
            if (sp > best) {
                best = sp;
                best_idx = i;
            }
        }
        row.push_back(schemeKindName(schemes[best_idx]));
        t.addRow(std::move(row));
    }

    auto g = [&](std::size_t i, std::size_t n) {
        return TextTable::num(bench::geomeanTop(speedups[i], n), 3);
    };
    t.addRow({"geomean-top10", "", g(0, 10), g(1, 10), g(2, 10),
              g(3, 10), ""});
    t.addRow({"geomean-top15", "", g(0, 15), g(1, 15), g(2, 15),
              g(3, 15), ""});
    t.addRow({"geomean-all", "", g(0, 20), g(1, 20), g(2, 20), g(3, 20),
              ""});
    t.print(std::cout);

    std::printf("\nPaper reference points: deny 1.28/1.18/1.15, allow "
                "1.17/1.14/1.12, dynamic 1.29/1.22/1.18 (top10/15/all); "
                "dve beats intel-mirroring++ by 9-13%% geomean.\n");

    bench::writeRunsJson("fig6", runs);
    return 0;
}
