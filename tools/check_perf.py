#!/usr/bin/env python3
"""Perf smoke: compare a micro_components run against the committed
baseline and fail on localized regressions.

Usage:
    python3 tools/check_perf.py bench/baselines/BENCH_micro.json \
        current.json [tolerance]

Both files are google-benchmark JSON (--benchmark_out_format=json).

Absolute cpu_time comparison across different machines is meaningless,
so the check is self-calibrating: for every benchmark present in both
files it computes the ratio current/baseline, takes the MEDIAN ratio as
the machine-speed factor, and fails only if some benchmark's ratio
exceeds median * tolerance (default 1.30, i.e. >30% regression relative
to how the machine runs everything else). A uniformly slower machine
moves every ratio equally and passes; one data structure or subsystem
getting 30% slower sticks out and fails.

Exit codes: 0 ok, 1 regression, 2 usage/parse error.
"""

import json
import statistics
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_perf: cannot read {path}: {e}")
        raise SystemExit(2)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = float(b["cpu_time"])
    if not out:
        print(f"check_perf: no benchmarks in {path}")
        raise SystemExit(2)
    return out


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    tolerance = float(argv[3]) if len(argv) > 3 else 1.30
    base = load(argv[1])
    cur = load(argv[2])

    common = sorted(set(base) & set(cur))
    if len(common) < 3:
        print(f"check_perf: only {len(common)} common benchmarks; "
              "baseline and run do not match")
        return 2
    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"check_perf: note: {len(missing)} baseline benchmark(s) "
              f"absent from this run: {', '.join(missing)}")

    ratios = {n: cur[n] / base[n] for n in common}
    machine = statistics.median(ratios.values())

    print(f"check_perf: {len(common)} benchmarks, machine-speed factor "
          f"{machine:.2f}x, tolerance {tolerance:.2f}x")
    failures = []
    for n in common:
        rel = ratios[n] / machine
        flag = ""
        if rel > tolerance:
            failures.append(n)
            flag = "  <-- REGRESSION"
        print(f"  {n:<44} {base[n]:>12.1f} -> {cur[n]:>12.1f}  "
              f"rel {rel:5.2f}x{flag}")

    if failures:
        print(f"check_perf: FAIL: {len(failures)} benchmark(s) regressed "
              f">{(tolerance - 1) * 100:.0f}% relative to the rest of "
              "this machine's run")
        return 1
    print("check_perf: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
