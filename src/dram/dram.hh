/**
 * @file
 * Open-page DDR4 timing model.
 *
 * Each bank tracks its open row and availability; each channel serializes
 * bursts on its data bus. An access is resolved into a completion tick:
 *
 *   row hit      : tCL + tBURST
 *   closed bank  : tRCD + tCL + tBURST
 *   row conflict : tRP (respecting tRAS since activate) + tRCD + tCL + tBURST
 *
 * All-bank refresh blacks out a rank for tRFC every tREFI; an access
 * whose start lands in a blackout is pushed past it (refresh closes the
 * open rows). The model also counts activates/reads/writes/precharges/
 * refreshes, which feed the energy model, and exposes row-buffer hit
 * statistics. Writes use tCWL when configured (tCL otherwise), and a
 * nonzero tFAW rate-limits activates per rank.
 *
 * With cfg.disturbEnabled, each bank additionally tracks activation
 * counts between refreshes in a Graphene-style top-K table (exact counts
 * for the K hottest rows, a shared spillover floor for the rest). When a
 * row's estimated count crosses its seeded per-row HCfirst threshold the
 * module emits a DisturbEvent naming the aggressor -- the memory
 * controller turns those into victim-row faults. An optional preventive
 * refresh mitigation instead refreshes the neighbors at a lower
 * threshold, blacking out the bank like real mitigation commands do.
 */

#ifndef DVE_DRAM_DRAM_HH
#define DVE_DRAM_DRAM_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/address_map.hh"
#include "dram/config.hh"

namespace dve
{

/** Result of timing one access. */
struct DramAccessResult
{
    Tick readyAt = 0;    ///< tick at which the data burst completes
    bool rowHit = false; ///< open-row hit
    DramCoord coord;     ///< decoded coordinates (for fault mapping)
};

/** An aggressor row crossed its HCfirst threshold (disturbance pressure). */
struct DisturbEvent
{
    DramCoord coord;            ///< aggressor coordinates (column unused)
    std::uint64_t count = 0;    ///< estimated activation count at crossing
    std::uint64_t ordinal = 0;  ///< module-wide crossing sequence number
};

/** One socket's DRAM subsystem: all channels behind one memory port. */
class DramModule
{
  public:
    DramModule(std::string name, const DramConfig &cfg);

    /**
     * Time a line read/write starting no earlier than @p now.
     * Purely functional on the address; mutates bank/bus availability.
     */
    DramAccessResult access(Addr a, bool is_write, Tick now);

    const DramConfig &config() const { return cfg_; }
    const AddressMap &map() const { return map_; }

    // Energy-model inputs.
    std::uint64_t activates() const { return activates_.value(); }
    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }
    std::uint64_t refreshes() const { return refreshes_.value(); }

    // Read-disturbance interface (all trivial when disturbance is off).
    bool disturbActive() const { return cfg_.disturbEnabled; }
    bool disturbPending() const { return !disturbEvents_.empty(); }

    /** Take ownership of the queued HCfirst-crossing events. */
    std::vector<DisturbEvent> drainDisturbEvents();

    /** Per-row HCfirst threshold (seeded; exposed for tests). */
    std::uint64_t disturbThresholdFor(const DramCoord &c) const;

    std::uint64_t disturbCrossings() const
    {
        return disturbCrossings_.value();
    }
    std::uint64_t preventiveRefreshes() const
    {
        return preventiveRefreshes_.value();
    }
    std::uint64_t preventiveStallTicks() const
    {
        return preventiveStallTicks_.value();
    }

    /** Distribution of preventive-refresh bank blackout lengths. */
    const Histogram &preventiveStall() const { return preventiveStall_; }

    /** Fraction of accesses that hit the open row. */
    double rowHitRate() const;

    const StatGroup &stats() const { return stats_; }

    /** Clear counters (ROI boundary); bank state is retained. */
    void resetStats();

  private:
    struct BankState
    {
        std::int64_t openRow = -1; ///< -1 = precharged/closed
        Tick readyAt = 0;          ///< bank available for a new command
        Tick activatedAt = 0;      ///< for tRAS enforcement
    };

    BankState &bank(const DramCoord &c) { return banks_[bankIndex(c)]; }

    /** Graphene-style activation tracking for one bank. */
    struct CounterEntry
    {
        std::uint64_t row = 0;
        std::uint64_t count = 0;
    };
    struct BankCounters
    {
        std::vector<CounterEntry> entries;
        std::uint64_t spill = 0; ///< count floor for untracked rows
    };

    /** Advance per-rank refresh state; returns the adjusted start. */
    Tick applyRefresh(const DramCoord &c, Tick start);

    /** Delay an activate so at most 4 land per rank per tFAW window. */
    Tick applyFaw(const DramCoord &c, Tick act_start);

    /** Count an activate of the row in @p c; emit events / mitigate. */
    void noteActivate(const DramCoord &c, BankState &b);

    std::size_t bankIndex(const DramCoord &c) const
    {
        return (std::size_t(c.channel) * cfg_.ranksPerChannel + c.rank)
                   * cfg_.banksPerRank
               + c.bank;
    }

    std::string name_;
    DramConfig cfg_;
    AddressMap map_;
    std::vector<BankState> banks_;
    std::vector<Tick> busReadyAt_;   ///< per channel
    std::vector<Tick> nextRefresh_;  ///< per (channel, rank)
    /// Last four activate times per (channel, rank), oldest at cursor.
    std::vector<std::array<Tick, 4>> actWindow_;
    std::vector<unsigned> actWindowPos_;

    std::vector<BankCounters> disturbTables_; ///< per bank (if enabled)
    std::vector<DisturbEvent> disturbEvents_;
    std::uint64_t disturbOrdinal_ = 0;

    Counter reads_;
    Counter writes_;
    Counter activates_;
    Counter precharges_;
    Counter refreshes_;
    Counter refreshStallTicks_;
    Counter rowHits_;
    Counter rowMisses_;    ///< closed-bank accesses
    Counter rowConflicts_; ///< open-row mismatch
    Counter disturbCrossings_;
    Counter preventiveRefreshes_;     ///< victim rows refreshed
    Counter preventiveStallTicks_;    ///< bank-blackout ticks added
    Histogram preventiveStall_;
    StatGroup stats_;
};

} // namespace dve

#endif // DVE_DRAM_DRAM_HH
