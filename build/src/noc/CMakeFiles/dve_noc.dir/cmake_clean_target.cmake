file(REMOVE_RECURSE
  "libdve_noc.a"
)
