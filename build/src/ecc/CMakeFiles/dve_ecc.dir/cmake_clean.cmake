file(REMOVE_RECURSE
  "CMakeFiles/dve_ecc.dir/crc.cc.o"
  "CMakeFiles/dve_ecc.dir/crc.cc.o.d"
  "CMakeFiles/dve_ecc.dir/gf.cc.o"
  "CMakeFiles/dve_ecc.dir/gf.cc.o.d"
  "CMakeFiles/dve_ecc.dir/hamming.cc.o"
  "CMakeFiles/dve_ecc.dir/hamming.cc.o.d"
  "CMakeFiles/dve_ecc.dir/line_codec.cc.o"
  "CMakeFiles/dve_ecc.dir/line_codec.cc.o.d"
  "CMakeFiles/dve_ecc.dir/reed_solomon.cc.o"
  "CMakeFiles/dve_ecc.dir/reed_solomon.cc.o.d"
  "libdve_ecc.a"
  "libdve_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
