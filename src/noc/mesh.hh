/**
 * @file
 * Intra-socket mesh topology with static shortest-path routing.
 *
 * The paper's Table II specifies a 2x4 mesh per socket with SSSP routing at
 * one cycle per hop. We build the adjacency explicitly, run a deterministic
 * single-source shortest path per node (BFS with lowest-id tie break, which
 * equals Dijkstra on unit weights), and expose hop counts, next-hop routing
 * tables, and per-link utilization counters.
 */

#ifndef DVE_NOC_MESH_HH
#define DVE_NOC_MESH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dve
{

/** A rectangular mesh of nodes with XY coordinates. */
class Mesh
{
  public:
    /** Build a @p cols x @p rows mesh and precompute routing tables. */
    Mesh(unsigned cols, unsigned rows);

    unsigned numNodes() const { return cols_ * rows_; }
    unsigned cols() const { return cols_; }
    unsigned rows() const { return rows_; }

    /** Minimal hop count between two nodes (0 when src == dst). */
    unsigned hops(unsigned src, unsigned dst) const;

    /** First hop on the deterministic shortest path (src when at dst). */
    unsigned nextHop(unsigned src, unsigned dst) const;

    /** Full deterministic route, excluding src, including dst. */
    std::vector<unsigned> route(unsigned src, unsigned dst) const;

    /**
     * Account one message traversing src -> dst, bumping every link counter
     * along the deterministic route. @return hop count.
     */
    unsigned traverse(unsigned src, unsigned dst);

    /** Messages carried by the directed link @p from -> @p to (adjacent). */
    std::uint64_t linkLoad(unsigned from, unsigned to) const;

    /** Sum of all link counters (total hop-traversals). */
    std::uint64_t totalLinkTraversals() const { return totalTraversals_; }

    /** Mean hops over all ordered node pairs (src != dst). */
    double meanPairwiseHops() const;

    /** Reset link counters. */
    void resetTraffic();

  private:
    unsigned index(unsigned src, unsigned dst) const
    {
        return src * numNodes() + dst;
    }

    void computeRoutes();

    unsigned cols_;
    unsigned rows_;
    std::vector<std::uint8_t> hops_;      // [src * n + dst]
    std::vector<std::uint8_t> nextHop_;   // [src * n + dst]
    std::vector<std::uint64_t> linkLoad_; // [from * n + to], adjacent only
    std::uint64_t totalTraversals_ = 0;
};

} // namespace dve

#endif // DVE_NOC_MESH_HH
