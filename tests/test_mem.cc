/**
 * @file
 * Tests for the memory controller: value storage, ECC interaction with
 * injected faults, mirroring modes, and repair.
 */

#include <gtest/gtest.h>

#include "mem/memory_controller.hh"

namespace dve
{
namespace
{

class MemTest : public ::testing::Test
{
  protected:
    FaultRegistry faults;

    MemoryController
    make(Scheme s, MirrorMode m = MirrorMode::None)
    {
        return MemoryController("mc", 0, DramConfig{}, s, m, &faults, 99);
    }
};

TEST_F(MemTest, MaterializeRoundTrip)
{
    for (Addr line = 0; line < 64; ++line) {
        const std::uint64_t v = 0x1234'5678'9ABC'DEF0ULL * (line + 1);
        const auto bytes = materializeLine(line, v);
        EXPECT_EQ(dematerializeLine(line, bytes), v);
    }
}

TEST_F(MemTest, MaterializeSensitiveToAnyByte)
{
    const auto bytes = materializeLine(7, 42);
    for (unsigned i = 0; i < 64; ++i) {
        auto bad = bytes;
        bad[i] ^= 0x10;
        EXPECT_NE(dematerializeLine(7, bad), 42u) << "byte " << i;
    }
}

TEST_F(MemTest, WriteThenReadReturnsValue)
{
    auto mc = make(Scheme::ChipkillSscDsd);
    const Tick w = mc.write(0x1000, 0xABCD, 0);
    const auto r = mc.read(0x1000, w);
    EXPECT_EQ(r.value, 0xABCDu);
    EXPECT_EQ(r.status, EccStatus::Clean);
    EXPECT_FALSE(r.failed);
    EXPECT_GT(r.readyAt, w);
}

TEST_F(MemTest, UnwrittenLinesReadZero)
{
    auto mc = make(Scheme::ChipkillSscDsd);
    EXPECT_EQ(mc.read(0x5000, 0).value, 0u);
}

TEST_F(MemTest, ChipkillCorrectsSingleChipFault)
{
    auto mc = make(Scheme::ChipkillSscDsd);
    mc.write(0x2000, 0x1111, 0);

    FaultDescriptor f;
    f.scope = FaultScope::Chip;
    f.chip = 5;
    faults.inject(f);

    const auto r = mc.read(0x2000, 100000);
    EXPECT_EQ(r.status, EccStatus::Corrected);
    EXPECT_EQ(r.value, 0x1111u);
    EXPECT_FALSE(r.failed);
    EXPECT_EQ(mc.correctedErrors(), 1u);
}

TEST_F(MemTest, ChipkillDetectsDoubleChipFault)
{
    auto mc = make(Scheme::ChipkillSscDsd);
    mc.write(0x2000, 0x2222, 0);
    for (unsigned chip : {2u, 9u}) {
        FaultDescriptor f;
        f.scope = FaultScope::Chip;
        f.chip = chip;
        faults.inject(f);
    }
    const auto r = mc.read(0x2000, 100000);
    EXPECT_EQ(r.status, EccStatus::Detected);
    EXPECT_TRUE(r.failed);
    EXPECT_EQ(mc.detectedFailures(), 1u);
}

TEST_F(MemTest, DsdDetectsButCannotCorrect)
{
    auto mc = make(Scheme::DsdDetect);
    mc.write(0x3000, 0x3333, 0);
    FaultDescriptor f;
    f.scope = FaultScope::Chip;
    f.chip = 0;
    faults.inject(f);
    const auto r = mc.read(0x3000, 100000);
    EXPECT_EQ(r.status, EccStatus::Detected);
    EXPECT_TRUE(r.failed);
}

TEST_F(MemTest, ChannelFaultFailsDetectably)
{
    auto mc = make(Scheme::ChipkillSscDsd);
    mc.write(0x4000, 0x4444, 0);
    FaultDescriptor f;
    f.scope = FaultScope::Channel;
    f.channel = 0;
    faults.inject(f);
    const auto r = mc.read(0x4000, 0);
    EXPECT_TRUE(r.failed);
}

TEST_F(MemTest, NoneSchemeSilentlyCorrupts)
{
    auto mc = make(Scheme::None);
    mc.write(0x5000, 0x5555, 0);
    FaultDescriptor f;
    f.scope = FaultScope::Chip;
    f.chip = 1;
    faults.inject(f);
    const auto r = mc.read(0x5000, 0);
    EXPECT_FALSE(r.failed);
    EXPECT_NE(r.value, 0x5555u);
    EXPECT_EQ(mc.silentCorruptions(), 1u);
}

TEST_F(MemTest, MirrorPrimaryFailsOverOnFault)
{
    auto mc = make(Scheme::ChipkillSscDsd, MirrorMode::Primary);
    mc.write(0x6000, 0x6666, 0);
    // Kill the whole primary channel (global channel 0 = copy 0).
    FaultDescriptor f;
    f.scope = FaultScope::Channel;
    f.channel = 0;
    faults.inject(f);

    const auto r = mc.read(0x6000, 0);
    EXPECT_FALSE(r.failed);
    EXPECT_EQ(r.value, 0x6666u);
    EXPECT_EQ(r.status, EccStatus::Corrected); // intra-MC failover
    EXPECT_EQ(mc.stats().get("mirror_failovers"), 1.0);
}

TEST_F(MemTest, MirrorBothCopiesDeadFails)
{
    auto mc = make(Scheme::ChipkillSscDsd, MirrorMode::Primary);
    mc.write(0x6000, 0x6666, 0);
    for (unsigned ch : {0u, 1u}) {
        FaultDescriptor f;
        f.scope = FaultScope::Channel;
        f.channel = ch;
        faults.inject(f);
    }
    EXPECT_TRUE(mc.read(0x6000, 0).failed);
}

TEST_F(MemTest, LoadBalanceAlternatesCopies)
{
    auto mc = make(Scheme::ChipkillSscDsd, MirrorMode::LoadBalance);
    mc.write(0x7000, 0x7777, 0);
    const Tick t0 = 1000000;
    mc.read(0x7000, t0);
    mc.read(0x7000, t0);
    // Both single-channel copies should have been read once each.
    EXPECT_EQ(mc.dram(0).reads(), 1u);
    EXPECT_EQ(mc.dram(1).reads(), 1u);
    // Writes always go to both copies.
    EXPECT_EQ(mc.dram(0).writes(), 1u);
    EXPECT_EQ(mc.dram(1).writes(), 1u);
}

TEST_F(MemTest, RepairCuresTransientFault)
{
    auto mc = make(Scheme::DsdDetect);
    mc.write(0x8000, 0x8888, 0);
    FaultDescriptor f;
    f.scope = FaultScope::Chip;
    f.chip = 3;
    f.transient = true;
    faults.inject(f);

    EXPECT_TRUE(mc.read(0x8000, 0).failed);
    const auto r = mc.repairAndVerify(0x8000, 0x8888, 1000000);
    EXPECT_FALSE(r.failed);
    EXPECT_EQ(r.value, 0x8888u);
    EXPECT_EQ(faults.activeCount(), 0u);
}

TEST_F(MemTest, RepairCannotCureHardFault)
{
    auto mc = make(Scheme::DsdDetect);
    mc.write(0x9000, 0x9999, 0);
    FaultDescriptor f;
    f.scope = FaultScope::Chip;
    f.chip = 3;
    faults.inject(f);

    EXPECT_TRUE(mc.read(0x9000, 0).failed);
    const auto r = mc.repairAndVerify(0x9000, 0x9999, 1000000);
    EXPECT_TRUE(r.failed);
    EXPECT_EQ(faults.activeCount(), 1u);
}

TEST_F(MemTest, CellFaultCorrectedBySecDed)
{
    auto mc = make(Scheme::SecDed72_64);
    mc.write(0xA000, 0xAAAA, 0);
    FaultDescriptor f;
    f.scope = FaultScope::Cell;
    f.chip = 1;
    f.bank = 0;
    // Match the decoded coordinates of 0xA000 (bank for line 0xA000>>6).
    const auto coord = mc.dram().map().decode(0xA000);
    f.bank = coord.bank;
    f.row = coord.row;
    f.column = coord.column;
    f.bit = 2;
    faults.inject(f);

    const auto r = mc.read(0xA000, 0);
    EXPECT_EQ(r.status, EccStatus::Corrected);
    EXPECT_EQ(r.value, 0xAAAAu);
}

TEST_F(MemTest, PeekAndPokeBypassTiming)
{
    auto mc = make(Scheme::ChipkillSscDsd);
    mc.poke(0xB000, 0xB0B0);
    EXPECT_EQ(mc.peek(0xB000), 0xB0B0u);
}

/** Hammer-ready DRAM shape: disturbance armed, ambient refresh off. */
DramConfig
disturbConfig()
{
    DramConfig c;
    c.refreshEnabled = false;
    c.disturbEnabled = true;
    c.disturbThreshold = 8;
    c.disturbThresholdSpread = 0;
    return c;
}

/** Byte address of (bank 0, column 0, row) under the default config. */
Addr
victimAddr(std::uint64_t row)
{
    // Line layout (1 channel): bank + 16 * column + 256 * row.
    return Addr(row) * 256 * lineBytes;
}

TEST_F(MemTest, DisturbCrossingsInjectVictimRowFaults)
{
    MemoryController mc("mc-dist", 0, disturbConfig(), Scheme::TsdDetect,
                        MirrorMode::None, &faults, 99);
    EXPECT_TRUE(mc.stats().has("disturb_faults_injected"));

    // Alternate-row reads of bank 0: every read activates, so both
    // aggressors cross the threshold inside the loop and the controller
    // drains the events into victim-row faults.
    Tick now = 0;
    for (unsigned i = 0; i < 16; ++i)
        now = mc.read(victimAddr(2 + 3 * (i % 2)), now).readyAt;

    EXPECT_GT(mc.disturbFaultsInjected(), 0u);
    std::uint64_t firstVictim = 0;
    bool saw = false;
    for (const auto &a : faults.active()) {
        const FaultDescriptor &f = a;
        EXPECT_EQ(f.scope, FaultScope::RowDisturb);
        EXPECT_TRUE(f.transient);
        // Victims flank the aggressors: 2 -> {1,3}, 5 -> {4,6}.
        EXPECT_TRUE(f.row == 1 || f.row == 3 || f.row == 4 || f.row == 6)
            << f.row;
        firstVictim = f.row;
        saw = true;
    }
    ASSERT_TRUE(saw);
    EXPECT_TRUE(mc.rowDisturbedAt(victimAddr(firstVictim)));
    EXPECT_FALSE(mc.rowDisturbedAt(victimAddr(0)));
    EXPECT_FALSE(mc.rowDisturbedAt(victimAddr(7)));
}

TEST_F(MemTest, DisturbInjectionIsSeedDeterministic)
{
    const auto run = [&](std::uint64_t dseed) {
        FaultRegistry reg;
        DramConfig c = disturbConfig();
        c.disturbSeed = dseed;
        MemoryController mc("mc-seed", 0, c, Scheme::TsdDetect,
                            MirrorMode::None, &reg, 99);
        Tick now = 0;
        for (unsigned i = 0; i < 16; ++i)
            now = mc.read(victimAddr(2 + 3 * (i % 2)), now).readyAt;
        std::vector<std::string> specs;
        for (const auto &a : reg.active())
            specs.push_back(formatFaultSpec(a));
        return specs;
    };
    // Flip placement is a pure function of (disturbSeed, victim coords).
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

TEST_F(MemTest, DisturbDisabledRegistersNoControllerStats)
{
    auto mc = make(Scheme::TsdDetect);
    EXPECT_FALSE(mc.stats().has("disturb_faults_injected"));
    EXPECT_EQ(mc.disturbFaultsInjected(), 0u);
}

} // namespace
} // namespace dve
