#include "dram/dram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dve
{

namespace
{

/** splitmix64: seeds the per-row HCfirst thresholds. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

DramModule::DramModule(std::string name, const DramConfig &cfg)
    : name_(std::move(name)), cfg_(cfg), map_(cfg), stats_(name_)
{
    const std::size_t nbanks = std::size_t(cfg_.channels)
                               * cfg_.ranksPerChannel * cfg_.banksPerRank;
    banks_.assign(nbanks, BankState{});
    busReadyAt_.assign(cfg_.channels, 0);
    nextRefresh_.assign(
        std::size_t(cfg_.channels) * cfg_.ranksPerChannel, cfg_.tREFI);
    actWindow_.assign(std::size_t(cfg_.channels) * cfg_.ranksPerChannel,
                      {});
    actWindowPos_.assign(
        std::size_t(cfg_.channels) * cfg_.ranksPerChannel, 0);
    if (cfg_.disturbEnabled)
        disturbTables_.assign(nbanks, BankCounters{});

    stats_.add("reads", reads_);
    stats_.add("writes", writes_);
    stats_.add("activates", activates_);
    stats_.add("precharges", precharges_);
    stats_.add("refreshes", refreshes_);
    stats_.add("refresh_stall_ticks", refreshStallTicks_);
    stats_.add("row_hits", rowHits_);
    stats_.add("row_misses", rowMisses_);
    stats_.add("row_conflicts", rowConflicts_);
    if (cfg_.disturbEnabled) {
        // Registered only when the model is armed so stat dumps of
        // disturbance-free configurations are unchanged.
        stats_.add("disturb_crossings", disturbCrossings_);
        stats_.add("preventive_refreshes", preventiveRefreshes_);
        stats_.add("preventive_refresh_stall_ticks",
                   preventiveStallTicks_);
        stats_.add("preventive_refresh_stall", preventiveStall_);
    }
}

Tick
DramModule::applyRefresh(const DramCoord &c, Tick start)
{
    Tick &next =
        nextRefresh_[std::size_t(c.channel) * cfg_.ranksPerChannel
                     + c.rank];
    if (start < next)
        return start;

    // One or more refreshes elapsed before this access; only the last
    // blackout window can still contain it.
    const Tick periods = (start - next) / cfg_.tREFI + 1;
    const Tick last = next + (periods - 1) * cfg_.tREFI;
    refreshes_ += periods;
    next += periods * cfg_.tREFI;

    // Refresh precharges the whole rank.
    for (unsigned bk = 0; bk < cfg_.banksPerRank; ++bk) {
        DramCoord cc = c;
        cc.bank = bk;
        bank(cc).openRow = -1;
    }

    if (start < last + cfg_.tRFC) {
        refreshStallTicks_ += (last + cfg_.tRFC) - start;
        start = last + cfg_.tRFC;
    }

    // Refresh restores the charge of the rows it covers: model the
    // activation-counter tables as resetting each refresh interval.
    if (cfg_.disturbEnabled) {
        for (unsigned bk = 0; bk < cfg_.banksPerRank; ++bk) {
            DramCoord cc = c;
            cc.bank = bk;
            BankCounters &t = disturbTables_[bankIndex(cc)];
            t.entries.clear();
            t.spill = 0;
        }
    }
    return start;
}

Tick
DramModule::applyFaw(const DramCoord &c, Tick act_start)
{
    // Each slot stores the earliest tick the activate four commands later
    // may issue; zero-initialized slots never delay the first window.
    const std::size_t r =
        std::size_t(c.channel) * cfg_.ranksPerChannel + c.rank;
    auto &w = actWindow_[r];
    unsigned &pos = actWindowPos_[r];
    if (w[pos] > act_start)
        act_start = w[pos];
    w[pos] = act_start + cfg_.tFAW;
    pos = (pos + 1) & 3;
    return act_start;
}

std::uint64_t
DramModule::disturbThresholdFor(const DramCoord &c) const
{
    if (cfg_.disturbThresholdSpread == 0)
        return cfg_.disturbThreshold;
    const std::uint64_t key =
        (std::uint64_t(bankIndex(c)) << 40) ^ c.row;
    return cfg_.disturbThreshold
           + mix64(cfg_.disturbSeed ^ mix64(key))
                 % (cfg_.disturbThresholdSpread + 1);
}

void
DramModule::noteActivate(const DramCoord &c, BankState &b)
{
    BankCounters &t = disturbTables_[bankIndex(c)];
    auto it = std::find_if(t.entries.begin(), t.entries.end(),
                           [&](const CounterEntry &e) {
                               return e.row == c.row;
                           });
    if (it != t.entries.end()) {
        ++it->count;
    } else if (t.entries.size() < cfg_.disturbTableEntries) {
        t.entries.push_back({c.row, t.spill + 1});
        it = t.entries.end() - 1;
    } else {
        // Graphene/Misra-Gries: a row at the spillover floor yields its
        // entry to the newcomer; otherwise the floor itself rises.
        it = std::min_element(t.entries.begin(), t.entries.end(),
                              [](const CounterEntry &a,
                                 const CounterEntry &e) {
                                  return a.count < e.count;
                              });
        if (it->count > t.spill) {
            ++t.spill;
            return; // untracked rows are bounded by the floor
        }
        it->row = c.row;
        it->count = t.spill + 1;
    }

    const std::uint64_t cnt = it->count;
    if (cfg_.preventiveRefreshEnabled
        && cnt >= cfg_.preventiveRefreshThreshold) {
        // Refresh the two neighbors before they can flip: the bank is
        // blacked out for two extra row cycles, contending with demand.
        const Tick blackout = 2 * (cfg_.tRAS + cfg_.tRP);
        b.readyAt += blackout;
        preventiveRefreshes_ += 2;
        preventiveStallTicks_ += blackout;
        preventiveStall_.record(blackout);
        it->count = t.spill; // aggressor pressure is relieved
        return;
    }
    if (cnt >= disturbThresholdFor(c)) {
        ++disturbCrossings_;
        ++disturbOrdinal_;
        disturbEvents_.push_back({c, cnt, disturbOrdinal_});
        it->count = t.spill; // victims flipped; charge pressure restarts
    }
}

std::vector<DisturbEvent>
DramModule::drainDisturbEvents()
{
    std::vector<DisturbEvent> out;
    out.swap(disturbEvents_);
    return out;
}

DramAccessResult
DramModule::access(Addr a, bool is_write, Tick now)
{
    DramAccessResult res;
    res.coord = map_.decode(a);
    BankState &b = bank(res.coord);

    Tick start = std::max(now, b.readyAt);
    if (cfg_.refreshEnabled)
        start = applyRefresh(res.coord, start);
    Tick cas_issue;
    bool activated = false;

    if (b.openRow == static_cast<std::int64_t>(res.coord.row)) {
        // Row hit: CAS can issue as soon as the bank is free.
        res.rowHit = true;
        ++rowHits_;
        cas_issue = start;
    } else if (b.openRow < 0) {
        // Bank closed: activate then CAS.
        ++rowMisses_;
        ++activates_;
        Tick act_start = start;
        if (cfg_.tFAW)
            act_start = applyFaw(res.coord, act_start);
        b.activatedAt = act_start;
        cas_issue = act_start + cfg_.tRCD;
        b.openRow = static_cast<std::int64_t>(res.coord.row);
        activated = true;
    } else {
        // Conflict: precharge (no earlier than tRAS after activate),
        // activate the new row, then CAS.
        ++rowConflicts_;
        ++precharges_;
        ++activates_;
        const Tick pre_start =
            std::max(start, b.activatedAt + cfg_.tRAS);
        Tick act_start = pre_start + cfg_.tRP;
        if (cfg_.tFAW)
            act_start = applyFaw(res.coord, act_start);
        b.activatedAt = act_start;
        cas_issue = act_start + cfg_.tRCD;
        b.openRow = static_cast<std::int64_t>(res.coord.row);
        activated = true;
    }

    // Data burst must also win the channel bus.
    Tick &bus = busReadyAt_[res.coord.channel];
    const Tick cas_latency =
        is_write && cfg_.tCWL ? cfg_.tCWL : cfg_.tCL;
    const Tick burst_start = std::max(cas_issue + cas_latency, bus);
    bus = burst_start + cfg_.tBURST;
    res.readyAt = burst_start + cfg_.tBURST;

    // Bank is command-busy until the CAS completes.
    b.readyAt = res.readyAt;

    if (activated && cfg_.disturbEnabled)
        noteActivate(res.coord, b);

    if (is_write)
        ++writes_;
    else
        ++reads_;
    return res;
}

double
DramModule::rowHitRate() const
{
    const std::uint64_t total =
        rowHits_.value() + rowMisses_.value() + rowConflicts_.value();
    return total == 0 ? 0.0
                      : static_cast<double>(rowHits_.value()) / total;
}

void
DramModule::resetStats()
{
    reads_.reset();
    writes_.reset();
    activates_.reset();
    precharges_.reset();
    refreshes_.reset();
    refreshStallTicks_.reset();
    rowHits_.reset();
    rowMisses_.reset();
    rowConflicts_.reset();
    disturbCrossings_.reset();
    preventiveRefreshes_.reset();
    preventiveStallTicks_.reset();
    preventiveStall_.reset();
}

} // namespace dve
