#include "fault/fault.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace dve
{

const char *
faultScopeName(FaultScope s)
{
    switch (s) {
      case FaultScope::Cell: return "cell";
      case FaultScope::Row: return "row";
      case FaultScope::Column: return "column";
      case FaultScope::Bank: return "bank";
      case FaultScope::Chip: return "chip";
      case FaultScope::Channel: return "channel";
      case FaultScope::Controller: return "controller";
    }
    return "?";
}

std::optional<FaultScope>
parseFaultScope(const char *name)
{
    if (!name)
        return std::nullopt;
    for (unsigned i = 0; i < numFaultScopes; ++i) {
        const auto s = static_cast<FaultScope>(i);
        if (std::strcmp(name, faultScopeName(s)) == 0)
            return s;
    }
    return std::nullopt;
}

FaultGeometry
FaultGeometry::from(unsigned sockets, unsigned channels, unsigned chips,
                    const DramConfig &cfg)
{
    FaultGeometry g;
    g.sockets = sockets;
    g.channels = channels;
    g.ranks = cfg.ranksPerChannel;
    g.chips = chips;
    g.banks = cfg.banksPerRank;
    g.rows = cfg.rowsPerBank();
    g.columns = cfg.rowBufferBytes / lineBytes;
    return g;
}

FaultDescriptor
FaultRegistry::normalized(FaultDescriptor f)
{
    // Zero every field broader scopes ignore so that duplicate detection
    // compares only the coordinates that actually participate in matching.
    switch (f.scope) {
      case FaultScope::Controller:
        f.channel = 0;
        [[fallthrough]];
      case FaultScope::Channel:
        f.rank = 0;
        f.chip = 0;
        [[fallthrough]];
      case FaultScope::Chip:
        f.bank = 0;
        [[fallthrough]];
      case FaultScope::Bank:
        f.row = 0;
        f.column = 0;
        break;
      case FaultScope::Row:
        f.column = 0;
        break;
      case FaultScope::Column:
        f.row = 0;
        break;
      case FaultScope::Cell:
        break;
    }
    if (f.scope != FaultScope::Cell)
        f.bit = 0;
    return f;
}

bool
FaultRegistry::inBounds(const FaultDescriptor &f) const
{
    if (geom_.sockets == 0)
        return true; // no geometry configured: accept anything
    if (f.socket >= geom_.sockets)
        return false;
    if (f.scope == FaultScope::Controller)
        return true;
    if (f.channel >= geom_.channels)
        return false;
    if (f.scope == FaultScope::Channel)
        return true;
    if (f.rank >= geom_.ranks || f.chip >= geom_.chips)
        return false;
    switch (f.scope) {
      case FaultScope::Chip:
        return true;
      case FaultScope::Bank:
        return f.bank < geom_.banks;
      case FaultScope::Row:
        return f.bank < geom_.banks && f.row < geom_.rows;
      case FaultScope::Column:
        return f.bank < geom_.banks && f.column < geom_.columns;
      case FaultScope::Cell:
        return f.bank < geom_.banks && f.row < geom_.rows
               && f.column < geom_.columns && f.bit < 8;
      default:
        return false;
    }
}

std::uint64_t
FaultRegistry::inject(FaultDescriptor f)
{
    f = normalized(f);
    if (!inBounds(f)) {
        dve_warn("rejecting out-of-range ", faultScopeName(f.scope),
                 " fault (socket ", f.socket, " channel ", f.channel,
                 " rank ", f.rank, " chip ", f.chip, " bank ", f.bank,
                 " row ", f.row, " column ", f.column, ")");
        return 0;
    }
    for (const auto &a : faults_) {
        if (a.scope == f.scope && a.socket == f.socket
            && a.channel == f.channel && a.rank == f.rank
            && a.chip == f.chip && a.bank == f.bank && a.row == f.row
            && a.column == f.column && a.bit == f.bit
            && a.transient == f.transient) {
            return a.id; // exact duplicate: keep the existing fault
        }
    }
    f.id = nextId_++;
    faults_.push_back(f);
    return f.id;
}

bool
FaultRegistry::clear(std::uint64_t id)
{
    const auto it = std::find_if(faults_.begin(), faults_.end(),
                                 [&](const FaultDescriptor &f) {
                                     return f.id == id;
                                 });
    if (it == faults_.end())
        return false;
    faults_.erase(it);
    return true;
}

bool
FaultRegistry::matches(const FaultDescriptor &f, unsigned socket,
                       unsigned channel, const DramCoord &coord)
{
    if (f.socket != socket)
        return false;
    if (f.scope == FaultScope::Controller)
        return true;
    if (f.channel != channel)
        return false;
    if (f.scope == FaultScope::Channel)
        return true;
    if (f.rank != coord.rank)
        return false;
    // Remaining scopes are chip-internal.
    switch (f.scope) {
      case FaultScope::Chip:
        return true;
      case FaultScope::Bank:
        return f.bank == coord.bank;
      case FaultScope::Row:
        return f.bank == coord.bank && f.row == coord.row;
      case FaultScope::Column:
        return f.bank == coord.bank && f.column == coord.column;
      case FaultScope::Cell:
        return f.bank == coord.bank && f.row == coord.row
               && f.column == coord.column;
      default:
        return false;
    }
}

FaultImpact
FaultRegistry::impact(unsigned socket, unsigned channel,
                      const DramCoord &coord) const
{
    FaultImpact imp;
    for (const auto &f : faults_) {
        if (!matches(f, socket, channel, coord))
            continue;
        switch (f.scope) {
          case FaultScope::Controller:
          case FaultScope::Channel:
            imp.pathFailed = true;
            break;
          case FaultScope::Cell:
            imp.bitFlips.emplace_back(f.chip, f.bit);
            break;
          default:
            if (std::find(imp.corruptChips.begin(),
                          imp.corruptChips.end(), f.chip)
                == imp.corruptChips.end()) {
                imp.corruptChips.push_back(f.chip);
            }
            break;
        }
    }
    return imp;
}

unsigned
FaultRegistry::repairAt(unsigned socket, unsigned channel,
                        const DramCoord &coord)
{
    unsigned cured = 0;
    for (auto it = faults_.begin(); it != faults_.end();) {
        if (it->transient && matches(*it, socket, channel, coord)) {
            it = faults_.erase(it);
            ++cured;
        } else {
            ++it;
        }
    }
    return cured;
}

} // namespace dve
