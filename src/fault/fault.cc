#include "fault/fault.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace dve
{

const char *
faultScopeName(FaultScope s)
{
    switch (s) {
      case FaultScope::Cell: return "cell";
      case FaultScope::Row: return "row";
      case FaultScope::Column: return "column";
      case FaultScope::Bank: return "bank";
      case FaultScope::Chip: return "chip";
      case FaultScope::Channel: return "channel";
      case FaultScope::Controller: return "controller";
      case FaultScope::RowDisturb: return "row-disturb";
      case FaultScope::LinkDown: return "link-down";
      case FaultScope::LinkLossy: return "link-lossy";
      case FaultScope::SocketOffline: return "socket-offline";
      case FaultScope::PoolNodeOffline: return "pool-node-offline";
      case FaultScope::FabricPartition: return "fabric-partition";
      case FaultScope::Metadata: return "metadata";
    }
    return "?";
}

const char *
metaStructureName(unsigned structure)
{
    switch (static_cast<MetaStructure>(structure)) {
      case MetaStructure::HomeDir: return "home-dir";
      case MetaStructure::ReplicaDir: return "replica-dir";
      case MetaStructure::Rmt: return "rmt";
    }
    return "?";
}

std::optional<FaultScope>
parseFaultScope(const char *name)
{
    if (!name)
        return std::nullopt;
    for (unsigned i = 0; i < numFaultScopes; ++i) {
        const auto s = static_cast<FaultScope>(i);
        if (std::strcmp(name, faultScopeName(s)) == 0)
            return s;
    }
    return std::nullopt;
}

namespace
{

void
setErr(std::string *err, std::string msg)
{
    if (err)
        *err = std::move(msg);
}

bool
parseU64(const std::string &v, std::uint64_t &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(v.c_str(), &end, 0);
    return end && *end == '\0';
}

bool
parseUnsigned(const std::string &v, unsigned &out)
{
    std::uint64_t x;
    if (!parseU64(v, x) || x > 0xffffffffu)
        return false;
    out = static_cast<unsigned>(x);
    return true;
}

bool
parseDouble(const std::string &v, double &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(v.c_str(), &end);
    return end && *end == '\0';
}

/// Parse the "S-STRUCT-P" triple of the "meta:" shorthand. STRUCT may be
/// a structure name ("home-dir" -- which itself contains a dash -- or
/// "replica-dir"/"rmt") or an index, so split on the first and *last*
/// dash rather than tokenizing.
bool
parseMetaTriple(const std::string &v, FaultDescriptor &f)
{
    const auto first = v.find('-');
    const auto last = v.rfind('-');
    if (first == std::string::npos || last == first)
        return false;
    if (!parseUnsigned(v.substr(0, first), f.socket))
        return false;
    const std::string structure = v.substr(first + 1, last - first - 1);
    bool structOk = false;
    for (unsigned i = 0; i < numMetaStructures; ++i) {
        if (structure == metaStructureName(i)) {
            f.chip = i;
            structOk = true;
            break;
        }
    }
    if (!structOk
        && !(parseUnsigned(structure, f.chip)
             && f.chip < numMetaStructures)) {
        return false;
    }
    return parseU64(v.substr(last + 1), f.row);
}

/// Parse the "A-B" socket pair of a link shorthand into f.socket/f.peer.
bool
parseLinkPair(const std::string &v, FaultDescriptor &f)
{
    const auto dash = v.find('-');
    if (dash == std::string::npos)
        return false;
    return parseUnsigned(v.substr(0, dash), f.socket)
           && parseUnsigned(v.substr(dash + 1), f.peer)
           && f.socket != f.peer;
}

} // namespace

std::optional<FaultDescriptor>
parseFaultSpec(const std::string &spec, std::string *err)
{
    FaultDescriptor f;
    std::string rest = spec;
    bool scopeSet = false;

    // Bare "partition" shorthand: the whole host<->pool fabric splits.
    if (spec == "partition"
        || spec.rfind("partition,", 0) == 0) {
        f.scope = FaultScope::FabricPartition;
        scopeSet = true;
        rest = spec.size() > 10 ? spec.substr(10) : "";
    }

    // Fabric shorthands: "link:A-B", "socket:S", "lossy:A-B[,drop=P,...]",
    // "pool:N".
    const auto colon = spec.find(':');
    if (colon != std::string::npos && spec.find('=') > colon) {
        const std::string head = spec.substr(0, colon);
        std::string arg = spec.substr(colon + 1);
        const auto comma = arg.find(',');
        if (comma != std::string::npos && comma + 1 == arg.size()) {
            setErr(err, "trailing comma in fault spec '" + spec + "'");
            return std::nullopt;
        }
        rest = comma == std::string::npos ? "" : arg.substr(comma + 1);
        arg = arg.substr(0, comma);
        if (head == "link" || head == "lossy") {
            f.scope = head == "link" ? FaultScope::LinkDown
                                     : FaultScope::LinkLossy;
            if (!parseLinkPair(arg, f)) {
                setErr(err, "bad link pair '" + arg
                            + "' (want A-B with A != B)");
                return std::nullopt;
            }
        } else if (head == "socket") {
            f.scope = FaultScope::SocketOffline;
            if (!parseUnsigned(arg, f.socket)) {
                setErr(err, "bad socket id '" + arg + "'");
                return std::nullopt;
            }
        } else if (head == "pool") {
            f.scope = FaultScope::PoolNodeOffline;
            if (!parseUnsigned(arg, f.socket)) {
                setErr(err, "bad pool node id '" + arg + "'");
                return std::nullopt;
            }
        } else if (head == "meta") {
            f.scope = FaultScope::Metadata;
            if (!parseMetaTriple(arg, f)) {
                setErr(err, "bad metadata coordinate '" + arg
                            + "' (want SOCKET-STRUCT-PAGE with STRUCT"
                              " home-dir, replica-dir, rmt or 0..2)");
                return std::nullopt;
            }
        } else {
            setErr(err, "unknown fault shorthand '" + head + ":'");
            return std::nullopt;
        }
        scopeSet = true;
    }

    while (!rest.empty()) {
        const auto comma = rest.find(',');
        if (comma != std::string::npos && comma + 1 == rest.size()) {
            setErr(err, "trailing comma in fault spec '" + spec + "'");
            return std::nullopt;
        }
        const std::string tok = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        const auto eq = tok.find('=');
        if (eq == std::string::npos) {
            setErr(err, "expected key=value, got '" + tok + "'");
            return std::nullopt;
        }
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        bool ok = true;
        if (key == "scope") {
            if (scopeSet) {
                setErr(err, "duplicate scope in fault spec '" + spec
                            + "' (already " + faultScopeName(f.scope)
                            + ")");
                return std::nullopt;
            }
            const auto s = parseFaultScope(val.c_str());
            if (!s) {
                std::string known;
                for (unsigned i = 0; i < numFaultScopes; ++i) {
                    if (i)
                        known += i + 1 == numFaultScopes ? " or " : ", ";
                    known += faultScopeName(static_cast<FaultScope>(i));
                }
                setErr(err, "unknown fault scope '" + val + "' (valid: "
                            + known + ")");
                return std::nullopt;
            }
            f.scope = *s;
            scopeSet = true;
        } else if (key == "socket") {
            ok = parseUnsigned(val, f.socket);
        } else if (key == "peer") {
            ok = parseUnsigned(val, f.peer);
        } else if (key == "channel") {
            ok = parseUnsigned(val, f.channel);
        } else if (key == "rank") {
            ok = parseUnsigned(val, f.rank);
        } else if (key == "chip") {
            ok = parseUnsigned(val, f.chip);
        } else if (key == "bank") {
            ok = parseUnsigned(val, f.bank);
        } else if (key == "row") {
            ok = parseU64(val, f.row);
        } else if (key == "column") {
            ok = parseUnsigned(val, f.column);
        } else if (key == "bit") {
            ok = parseUnsigned(val, f.bit);
        } else if (key == "transient") {
            if (val == "1" || val == "true") {
                f.transient = true;
            } else if (val == "0" || val == "false") {
                f.transient = false;
            } else {
                ok = false;
            }
        } else if (key == "drop") {
            ok = parseDouble(val, f.dropProb)
                 && f.dropProb >= 0.0 && f.dropProb <= 1.0;
        } else if (key == "delay") {
            std::uint64_t t = 0;
            ok = parseU64(val, t);
            f.delayTicks = static_cast<Tick>(t);
        } else {
            setErr(err, "unknown fault-spec key '" + key + "'");
            return std::nullopt;
        }
        if (!ok) {
            setErr(err, "bad value '" + val + "' for key '" + key + "'");
            return std::nullopt;
        }
    }

    if (!scopeSet) {
        setErr(err, "fault spec '" + spec + "' does not set a scope");
        return std::nullopt;
    }
    if (f.scope == FaultScope::LinkDown || f.scope == FaultScope::LinkLossy) {
        if (f.peer == f.socket) {
            setErr(err, "link fault needs two distinct sockets");
            return std::nullopt;
        }
        // Canonical unordered-pair form, matching what the registry
        // stores: socket < peer.
        if (f.peer < f.socket)
            std::swap(f.socket, f.peer);
    }
    return f;
}

std::string
formatFaultSpec(const FaultDescriptor &in)
{
    const FaultDescriptor f = FaultRegistry::normalized(in);
    std::string s = "scope=";
    s += faultScopeName(f.scope);
    const auto field = [&s](const char *key, std::uint64_t v) {
        s += ',';
        s += key;
        s += '=';
        s += std::to_string(v);
    };
    field("socket", f.socket);
    switch (f.scope) {
      case FaultScope::Cell:
        field("channel", f.channel);
        field("rank", f.rank);
        field("chip", f.chip);
        field("bank", f.bank);
        field("row", f.row);
        field("column", f.column);
        field("bit", f.bit);
        break;
      case FaultScope::Row:
        field("channel", f.channel);
        field("rank", f.rank);
        field("chip", f.chip);
        field("bank", f.bank);
        field("row", f.row);
        break;
      case FaultScope::RowDisturb:
        field("channel", f.channel);
        field("rank", f.rank);
        field("chip", f.chip);
        field("bank", f.bank);
        field("row", f.row);
        field("bit", f.bit);
        break;
      case FaultScope::Column:
        field("channel", f.channel);
        field("rank", f.rank);
        field("chip", f.chip);
        field("bank", f.bank);
        field("column", f.column);
        break;
      case FaultScope::Bank:
        field("channel", f.channel);
        field("rank", f.rank);
        field("chip", f.chip);
        field("bank", f.bank);
        break;
      case FaultScope::Chip:
        field("channel", f.channel);
        field("rank", f.rank);
        field("chip", f.chip);
        break;
      case FaultScope::Channel:
        field("channel", f.channel);
        break;
      case FaultScope::Controller:
      case FaultScope::SocketOffline:
      case FaultScope::PoolNodeOffline:
      case FaultScope::FabricPartition:
        break;
      case FaultScope::LinkDown:
        field("peer", f.peer);
        break;
      case FaultScope::LinkLossy:
        field("peer", f.peer);
        {
            // Fixed %.17g: shortest form that round-trips any double.
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.17g", f.dropProb);
            s += ",drop=";
            s += buf;
        }
        field("delay", f.delayTicks);
        break;
      case FaultScope::Metadata:
        field("chip", f.chip); // structure index (home-dir/replica-dir/rmt)
        field("row", f.row);   // page number
        break;
    }
    if (f.transient)
        s += ",transient=1";
    return s;
}

FaultGeometry
FaultGeometry::from(unsigned sockets, unsigned channels, unsigned chips,
                    const DramConfig &cfg)
{
    FaultGeometry g;
    g.sockets = sockets;
    g.channels = channels;
    g.ranks = cfg.ranksPerChannel;
    g.chips = chips;
    g.banks = cfg.banksPerRank;
    g.rows = cfg.rowsPerBank();
    g.columns = cfg.rowBufferBytes / lineBytes;
    return g;
}

FaultDescriptor
FaultRegistry::normalized(FaultDescriptor f)
{
    // Zero every field broader scopes ignore so that duplicate detection
    // compares only the coordinates that actually participate in matching.
    if (isFabricScope(f.scope)) {
        f.channel = f.rank = f.chip = f.bank = f.column = f.bit = 0;
        f.row = 0;
        if (f.scope == FaultScope::SocketOffline
            || f.scope == FaultScope::PoolNodeOffline) {
            f.peer = 0; // socket field: socket id / pool-node id
        } else if (f.scope == FaultScope::FabricPartition) {
            f.peer = 0;
            f.socket = 0; // partitions the whole pool fabric
        } else if (f.peer < f.socket) {
            std::swap(f.socket, f.peer); // links are unordered pairs
        }
        if (f.scope != FaultScope::LinkLossy) {
            f.dropProb = 0.0;
            f.delayTicks = 0;
        }
        return f;
    }
    f.peer = 0;
    f.dropProb = 0.0;
    f.delayTicks = 0;
    switch (f.scope) {
      case FaultScope::Controller:
        f.channel = 0;
        [[fallthrough]];
      case FaultScope::Channel:
        f.rank = 0;
        f.chip = 0;
        [[fallthrough]];
      case FaultScope::Chip:
        f.bank = 0;
        [[fallthrough]];
      case FaultScope::Bank:
        f.row = 0;
        f.column = 0;
        break;
      case FaultScope::Row:
      case FaultScope::RowDisturb: // flips anywhere in the victim row
        f.column = 0;
        break;
      case FaultScope::Column:
        f.row = 0;
        break;
      case FaultScope::Cell:
        break;
      case FaultScope::Metadata:
        // (socket, structure=chip, page=row) is the whole coordinate.
        f.channel = f.rank = f.bank = f.column = 0;
        break;
      case FaultScope::LinkDown:
      case FaultScope::LinkLossy:
      case FaultScope::SocketOffline:
      case FaultScope::PoolNodeOffline:
      case FaultScope::FabricPartition:
        break; // fabric scopes returned above
    }
    if (f.scope != FaultScope::Cell && f.scope != FaultScope::RowDisturb)
        f.bit = 0;
    return f;
}

bool
FaultRegistry::inBounds(const FaultDescriptor &f) const
{
    if (geom_.sockets == 0)
        return true; // no geometry configured: accept anything
    // Pool scopes use the socket field as a pool-node id, which the DRAM
    // geometry knows nothing about -- the engine validates reachability
    // at the access site instead.
    if (f.scope == FaultScope::PoolNodeOffline
        || f.scope == FaultScope::FabricPartition) {
        return true;
    }
    if (f.socket >= geom_.sockets)
        return false;
    if (isFabricScope(f.scope)) {
        if (f.scope == FaultScope::SocketOffline)
            return true;
        // Link scopes name an unordered socket pair.
        if (f.peer >= geom_.sockets || f.peer == f.socket)
            return false;
        if (f.scope == FaultScope::LinkLossy)
            return f.dropProb >= 0.0 && f.dropProb <= 1.0;
        return true;
    }
    // Metadata structures are per-socket logical tables; the page (row
    // field) is a logical page number the DRAM geometry knows nothing
    // about, so only the socket and structure index are validated.
    if (f.scope == FaultScope::Metadata)
        return f.chip < numMetaStructures;
    if (f.scope == FaultScope::Controller)
        return true;
    if (f.channel >= geom_.channels)
        return false;
    if (f.scope == FaultScope::Channel)
        return true;
    if (f.rank >= geom_.ranks || f.chip >= geom_.chips)
        return false;
    switch (f.scope) {
      case FaultScope::Chip:
        return true;
      case FaultScope::Bank:
        return f.bank < geom_.banks;
      case FaultScope::Row:
        return f.bank < geom_.banks && f.row < geom_.rows;
      case FaultScope::RowDisturb:
        return f.bank < geom_.banks && f.row < geom_.rows && f.bit < 8;
      case FaultScope::Column:
        return f.bank < geom_.banks && f.column < geom_.columns;
      case FaultScope::Cell:
        return f.bank < geom_.banks && f.row < geom_.rows
               && f.column < geom_.columns && f.bit < 8;
      default:
        return false;
    }
}

std::uint64_t
FaultRegistry::inject(FaultDescriptor f)
{
    f = normalized(f);
    if (!inBounds(f)) {
        dve_warn("rejecting out-of-range ", faultScopeName(f.scope),
                 " fault (socket ", f.socket, " channel ", f.channel,
                 " rank ", f.rank, " chip ", f.chip, " bank ", f.bank,
                 " row ", f.row, " column ", f.column, ")");
        return 0;
    }
    for (const auto &a : faults_) {
        if (a.scope == f.scope && a.socket == f.socket
            && a.channel == f.channel && a.rank == f.rank
            && a.chip == f.chip && a.bank == f.bank && a.row == f.row
            && a.column == f.column && a.bit == f.bit
            && a.transient == f.transient && a.peer == f.peer
            && a.dropProb == f.dropProb && a.delayTicks == f.delayTicks) {
            return a.id; // exact duplicate: keep the existing fault
        }
    }
    f.id = nextId_++;
    faults_.push_back(f);
    return f.id;
}

bool
FaultRegistry::clear(std::uint64_t id)
{
    const auto it = std::find_if(faults_.begin(), faults_.end(),
                                 [&](const FaultDescriptor &f) {
                                     return f.id == id;
                                 });
    if (it == faults_.end())
        return false;
    faults_.erase(it);
    return true;
}

bool
FaultRegistry::matches(const FaultDescriptor &f, unsigned socket,
                       unsigned channel, const DramCoord &coord)
{
    // Link faults never touch the DRAM path; an offline socket behaves
    // like a controller failure for every access it would have served.
    // Pool-scope faults cut reachability, which the engine checks at the
    // access site -- the pool DRAM itself stays clean. Metadata faults
    // corrupt the replication control plane, consulted only through the
    // explicit metadataFaultAt() query -- data accesses never see them.
    if (f.scope == FaultScope::LinkDown || f.scope == FaultScope::LinkLossy
        || f.scope == FaultScope::PoolNodeOffline
        || f.scope == FaultScope::FabricPartition
        || f.scope == FaultScope::Metadata) {
        return false;
    }
    if (f.socket != socket)
        return false;
    if (f.scope == FaultScope::SocketOffline)
        return true;
    if (f.scope == FaultScope::Controller)
        return true;
    if (f.channel != channel)
        return false;
    if (f.scope == FaultScope::Channel)
        return true;
    if (f.rank != coord.rank)
        return false;
    // Remaining scopes are chip-internal.
    switch (f.scope) {
      case FaultScope::Chip:
        return true;
      case FaultScope::Bank:
        return f.bank == coord.bank;
      case FaultScope::Row:
      case FaultScope::RowDisturb:
        return f.bank == coord.bank && f.row == coord.row;
      case FaultScope::Column:
        return f.bank == coord.bank && f.column == coord.column;
      case FaultScope::Cell:
        return f.bank == coord.bank && f.row == coord.row
               && f.column == coord.column;
      default:
        return false;
    }
}

FaultImpact
FaultRegistry::impact(unsigned socket, unsigned channel,
                      const DramCoord &coord) const
{
    FaultImpact imp;
    for (const auto &f : faults_) {
        if (!matches(f, socket, channel, coord))
            continue;
        switch (f.scope) {
          case FaultScope::Controller:
          case FaultScope::Channel:
          case FaultScope::SocketOffline:
            imp.pathFailed = true;
            break;
          case FaultScope::Cell:
          case FaultScope::RowDisturb:
            imp.bitFlips.emplace_back(f.chip, f.bit);
            break;
          default:
            if (std::find(imp.corruptChips.begin(),
                          imp.corruptChips.end(), f.chip)
                == imp.corruptChips.end()) {
                imp.corruptChips.push_back(f.chip);
            }
            break;
        }
    }
    return imp;
}

bool
FaultRegistry::socketOffline(unsigned socket) const
{
    for (const auto &f : faults_) {
        if (f.scope == FaultScope::SocketOffline && f.socket == socket)
            return true;
    }
    return false;
}

bool
FaultRegistry::poolNodeOffline(unsigned node) const
{
    for (const auto &f : faults_) {
        if (f.scope == FaultScope::PoolNodeOffline && f.socket == node)
            return true;
    }
    return false;
}

bool
FaultRegistry::fabricPartition() const
{
    for (const auto &f : faults_) {
        if (f.scope == FaultScope::FabricPartition)
            return true;
    }
    return false;
}

bool
FaultRegistry::linkDown(unsigned a, unsigned b) const
{
    if (a > b)
        std::swap(a, b);
    for (const auto &f : faults_) {
        if (f.scope == FaultScope::LinkDown && f.socket == a && f.peer == b)
            return true;
        // An offline socket takes its link endpoint with it.
        if (f.scope == FaultScope::SocketOffline
            && (f.socket == a || f.socket == b)) {
            return true;
        }
    }
    return false;
}

const FaultDescriptor *
FaultRegistry::lossyLink(unsigned a, unsigned b) const
{
    if (a > b)
        std::swap(a, b);
    for (const auto &f : faults_) {
        if (f.scope == FaultScope::LinkLossy && f.socket == a && f.peer == b)
            return &f;
    }
    return nullptr;
}

bool
FaultRegistry::rowDisturbAt(unsigned socket, unsigned channel,
                            const DramCoord &coord) const
{
    for (const auto &f : faults_) {
        if (f.scope == FaultScope::RowDisturb
            && matches(f, socket, channel, coord)) {
            return true;
        }
    }
    return false;
}

const FaultDescriptor *
FaultRegistry::metadataFaultAt(unsigned socket, unsigned structure,
                               std::uint64_t page) const
{
    for (const auto &f : faults_) {
        if (f.scope == FaultScope::Metadata && f.socket == socket
            && f.chip == structure && f.row == page) {
            return &f;
        }
    }
    return nullptr;
}

bool
FaultRegistry::anyMetadataFault() const
{
    for (const auto &f : faults_) {
        if (f.scope == FaultScope::Metadata)
            return true;
    }
    return false;
}

unsigned
FaultRegistry::repairMetadataAt(unsigned socket, unsigned structure,
                                std::uint64_t page)
{
    unsigned cured = 0;
    for (auto it = faults_.begin(); it != faults_.end();) {
        if (it->scope == FaultScope::Metadata && it->transient
            && it->socket == socket && it->chip == structure
            && it->row == page) {
            it = faults_.erase(it);
            ++cured;
        } else {
            ++it;
        }
    }
    return cured;
}

unsigned
FaultRegistry::repairAt(unsigned socket, unsigned channel,
                        const DramCoord &coord)
{
    unsigned cured = 0;
    for (auto it = faults_.begin(); it != faults_.end();) {
        // Fabric faults are cured by the lifecycle (link heals), never by
        // a DRAM repair write.
        if (it->transient && !isFabricScope(it->scope)
            && matches(*it, socket, channel, coord)) {
            it = faults_.erase(it);
            ++cured;
        } else {
            ++it;
        }
    }
    return cured;
}

} // namespace dve
