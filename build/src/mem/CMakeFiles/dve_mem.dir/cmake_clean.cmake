file(REMOVE_RECURSE
  "CMakeFiles/dve_mem.dir/memory_controller.cc.o"
  "CMakeFiles/dve_mem.dir/memory_controller.cc.o.d"
  "libdve_mem.a"
  "libdve_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
