/**
 * @file
 * The baseline NUMA coherence engine.
 *
 * Models the Table II system: per-core L1s filtered through a shared
 * per-socket LLC with an embedded fine-grain local directory, a global
 * MOSI home directory per socket with a socket-grain sharing vector, a
 * mesh NoC per socket, an inter-socket link, and a DDR4 memory controller
 * per socket. Pages interleave across sockets round-robin.
 *
 * Transactions are latency-composed: each access walks the protocol to
 * completion at issue time, summing/maxing message, directory, cache and
 * DRAM latencies, while per-line busy-until clocks at the directories
 * provide the MSHR serialization of concurrent requests. Virtual hooks
 * (miss routing, memory read/writeback, exclusive grants) are the points
 * Dvé's coherent replication extends.
 */

#ifndef DVE_COHERENCE_ENGINE_HH
#define DVE_COHERENCE_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/sa_cache.hh"
#include "coherence/directory.hh"
#include "coherence/types.hh"
#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/tracer.hh"
#include "mem/memory_controller.hh"
#include "noc/interconnect.hh"

namespace dve
{

/** Per-core L1 line metadata. */
struct L1Entry
{
    bool writable = false;
    bool dirty = false;
    std::uint64_t value = 0;
};

/** Per-socket LLC line metadata (global MOSI state + local directory). */
struct LlcEntry
{
    LineState state = LineState::S; ///< I is represented by absence
    std::uint8_t l1Sharers = 0;     ///< cores holding the line in L1
    std::int8_t l1Owner = -1;       ///< core holding it writable
    bool dirty = false;             ///< LLC data differs from home memory
    std::uint64_t value = 0;
};

/**
 * Oracle classification of one access, judged against the golden shadow
 * image of last-written values (logicalMem_). Every returned read is
 * checked; the interesting distinction is the last two: a DUE is an
 * honest machine check, an SDC is the memory system lying to software.
 */
enum class ReadOutcome : std::uint8_t
{
    Clean,     ///< correct data, no error signalled
    Corrected, ///< correct data after CE / replica recovery
    Due,       ///< detected-uncorrectable: machine check raised
    Sdc,       ///< silent data corruption: wrong data, no error raised
};

constexpr unsigned numReadOutcomes = 4;

const char *readOutcomeName(ReadOutcome o);

/** Completion information for one core memory access. */
struct AccessResult
{
    Tick done = 0;           ///< tick at which the access completes
    std::uint64_t value = 0; ///< data observed by a read
    ReadOutcome outcome = ReadOutcome::Clean; ///< oracle verdict
};

/**
 * The live invariant monitors compiled into the concrete engines behind
 * EngineConfig::invariantChecks (the chaos-fuzz harness, Sec. V-C4
 * discharged on the real stack instead of the abstract model).
 */
enum class InvariantMonitor : std::uint8_t
{
    Swmr,            ///< single writer / multiple readers over all caches
    DataValue,       ///< read commit vs. the golden (logical) memory image
    ReplicaDir,      ///< replica-directory coherence vs. home permissions
    DegradedHonesty, ///< no SDC ever; DUE only with an actual cause
    Liveness,        ///< no-wedge watchdog on per-access latency
    // Appended (PR ordering is part of the report format's stability).
    Metadata,        ///< replica-dir backing state vs. a golden shadow
};

constexpr unsigned numInvariantMonitors = 6;

const char *invariantMonitorName(InvariantMonitor m);

/** Inverse of invariantMonitorName; nullopt for unrecognized names. */
std::optional<InvariantMonitor> parseInvariantMonitor(const char *name);

/** One monitor firing, with the tracer's most recent events attached. */
struct InvariantViolation
{
    InvariantMonitor monitor = InvariantMonitor::Swmr;
    Tick at = 0;
    Addr line = 0;
    std::string detail;
    /** Tail of the event-trace ring at the moment the monitor fired
     *  (empty when tracing is disabled). */
    std::vector<TraceRecord> recentEvents;
};

/** The coherence engine; Dvé subclasses it (see core/dve_engine.hh). */
class CoherenceEngine
{
  public:
    explicit CoherenceEngine(const EngineConfig &cfg);
    virtual ~CoherenceEngine() = default;

    CoherenceEngine(const CoherenceEngine &) = delete;
    CoherenceEngine &operator=(const CoherenceEngine &) = delete;

    /**
     * Perform one core load/store. @p now must be monotonically
     * non-decreasing across calls (the event queue guarantees this).
     */
    AccessResult access(unsigned socket, unsigned core, Addr addr,
                        bool is_write, std::uint64_t write_value,
                        Tick now);

    /** Home socket of a line (page round-robin interleave). */
    unsigned
    homeSocket(Addr line) const
    {
        return static_cast<unsigned>((line >> (pageShift - lineShift))
                                     % cfg_.sockets);
    }

    const EngineConfig &config() const { return cfg_; }
    Interconnect &interconnect() { return ic_; }
    const Interconnect &interconnect() const { return ic_; }
    MemoryController &memory(unsigned socket) { return *sockets_[socket].mc; }
    HomeDirectory &directory(unsigned socket)
    {
        return sockets_[socket].dir;
    }

    /** LLC array of a socket (tests and invariant checks). */
    SetAssocCache<LlcEntry> &llc(unsigned socket)
    {
        return sockets_[socket].llc;
    }

    /** The coherence-ordered "golden" value of a line. */
    std::uint64_t
    logicalValue(Addr line) const
    {
        const auto it = logicalMem_.find(line);
        return it == logicalMem_.end() ? 0 : it->second;
    }

    /** Completion tick of the latest-finishing access so far. */
    Tick lastCompletion() const { return lastCompletion_; }

    // Aggregate statistics. Accessors of batched stats fold the hot-path
    // staging block in first (see flushPending).
    std::uint64_t
    l1Hits() const
    {
        flushPending();
        return l1Hits_.value();
    }
    std::uint64_t
    llcHits() const
    {
        flushPending();
        return llcHits_.value();
    }
    std::uint64_t
    llcMisses() const
    {
        flushPending();
        return llcMisses_.value();
    }
    std::uint64_t machineCheckExceptions() const { return due_.value(); }
    std::uint64_t systemCorrectedErrors() const { return sysCe_.value(); }
    std::uint64_t sdcReadsObserved() const { return sdcReads_.value(); }
    std::uint64_t readOutcomeCount(ReadOutcome o) const
    {
        flushPending();
        return outcomeCount_[static_cast<unsigned>(o)].value();
    }
    std::uint64_t classCount(ReqClass c) const
    {
        flushPending();
        return classCount_[static_cast<unsigned>(c)].value();
    }

    const StatGroup &
    stats() const
    {
        flushPending();
        return stats_;
    }

    /** End-to-end request latency distribution (ticks). */
    const Histogram &
    requestLatency() const
    {
        flushPending();
        return reqLatency_;
    }

    /** Event tracer (enabled iff EngineConfig::traceCapacity > 0). */
    EventTracer &tracer() { return tracer_; }
    const EventTracer &tracer() const { return tracer_; }

    /** Monitor firings collected so far (invariantChecks only). */
    const std::vector<InvariantViolation> &invariantViolations() const
    {
        return violations_;
    }

    void clearInvariantViolations() { violations_.clear(); }

    /**
     * Dump every statistic group in the system (engine, NoC, memory
     * controllers, DRAM modules) as "group.stat value" lines, gem5
     * stats-file style.
     */
    virtual void dumpStats(std::ostream &os) const;

    /** Scheme short name for reports ("numa", "dve-allow", ...). */
    virtual const char *schemeName() const { return "numa"; }

  protected:
    struct SocketState
    {
        std::vector<SetAssocCache<L1Entry>> l1;
        SetAssocCache<LlcEntry> llc;
        HomeDirectory dir;
        std::unique_ptr<MemoryController> mc;

        SocketState(const EngineConfig &cfg, unsigned socket,
                    FaultRegistry *faults);
    };

    /** Result of a global miss transaction. */
    struct MissResult
    {
        Tick done = 0;             ///< data (or grant) at requester slice
        std::uint64_t value = 0;   ///< line data
        bool dirtyData = false;    ///< data came from a dirty owner
    };

    /** Timed, checked memory read (recovery differs in Dvé). */
    struct MemRead
    {
        Tick ready = 0;
        std::uint64_t value = 0;
    };

    // ---- Hook points for Dvé ------------------------------------------

    /** Route and perform an LLC miss/upgrade transaction. */
    virtual MissResult serviceLlcMiss(unsigned socket, Addr line,
                                      bool is_write, Tick t_slice);

    /** Read from @p home's memory with error checking + recovery. */
    virtual MemRead readMemoryChecked(unsigned home, Addr line, Tick when);

    /** Commit a dirty line to memory (Dvé also writes the replica). */
    virtual Tick writebackToMemory(unsigned home, Addr line,
                                   std::uint64_t value, Tick when);

    /**
     * After a writeback from @p from_socket, should the home directory
     * keep that socket registered as a sharer? Dvé's allow protocol
     * answers yes for the replica socket: the replica directory retains
     * a Readable permission, and the sharer bit is what routes a later
     * GETX invalidation to it.
     */
    virtual bool retainSharerAfterWriteback(unsigned home, Addr line,
                                            unsigned from_socket);

    // ---- Live invariant monitors (EngineConfig::invariantChecks) -------

    /**
     * Sweep the global structural invariants after one access: SWMR
     * over home-directory entries, LLC states and L1 ownership.
     * DveEngine extends the sweep with replica-directory coherence.
     * Only called when invariantChecks is on.
     */
    virtual void checkInvariants(Tick now);

    /**
     * Is there a legitimate cause for a DUE on @p line right now? The
     * degraded-honesty monitor flags causeless machine checks. The
     * baseline accepts any active fault; Dvé adds degraded lines and
     * fenced links.
     */
    virtual bool dueHasCause(Addr line) const;

    /**
     * Record one monitor firing: capture the tracer tail, mirror the
     * violation into the trace, and append the structured report.
     */
    void reportViolation(InvariantMonitor m, Tick at, Addr line,
                         std::string detail);

    /** Post-access monitor entry point (outcome + watchdog + sweep). */
    void auditAccess(Addr line, const AccessResult &r, Tick now);

    /**
     * Called when the home directory grants exclusive ownership of @p
     * line to @p to_socket (transaction serialized at @p start). Dvé uses
     * this to invalidate (allow) or deny-mark (deny) the replica
     * directory. @p prev_sharers is the sharer vector before the grant.
     * @return absolute tick (>= start) at which the replica-side
     *         bookkeeping completes; max-ed into the grant critical path.
     */
    virtual Tick grantedExclusive(unsigned home, Addr line,
                                  unsigned to_socket, Tick start,
                                  std::uint32_t prev_sharers);

    // ---- Shared protocol machinery ------------------------------------

    /** Home-side GETS: state transition + data sourcing. */
    MissResult homeGets(unsigned req_socket, Addr line, Tick start,
                        NodeId dest);

    /** Home-side GETX: invalidations + data/grant sourcing. */
    MissResult homeGetx(unsigned req_socket, Addr line, Tick start,
                        NodeId dest);

    /** Process a dirty-eviction writeback arriving at the home dir. */
    void putM(unsigned from_socket, Addr line, std::uint64_t value,
              Tick t_slice);

    /** Invalidate a line from a socket's LLC and L1s (local work). */
    Tick invalidateSocketCopy(unsigned socket, Addr line, Tick when);

    /** Recall the dirty L1 copy (if any) into the LLC entry. */
    Tick recallL1Owner(unsigned socket, Addr line, LlcEntry &e, Tick when);

    // ---- Topology / latency helpers ------------------------------------

    NodeId coreNode(unsigned socket, unsigned core) const
    {
        return {socket, core % (cfg_.noc.meshCols * cfg_.noc.meshRows)};
    }

    NodeId sliceNode(unsigned socket, Addr line) const
    {
        return {socket, static_cast<unsigned>(
                            line % (cfg_.noc.meshCols * cfg_.noc.meshRows))};
    }

    NodeId dirNode(unsigned socket) const
    {
        return {socket, cfg_.noc.gatewayTile};
    }

    Tick cycles(Cycles c) const { return clk_.cyclesToTicks(c); }

    void classify(bool is_write, LineState state);

    EngineConfig cfg_;
    ClockDomain clk_;
    FaultRegistry faults_;
    Interconnect ic_;
    std::vector<SocketState> sockets_;
    FlatMap<Addr, std::uint64_t> logicalMem_;
    Tick lastCompletion_ = 0;

    // Fault access for harnesses.
  public:
    FaultRegistry &faultRegistry() { return faults_; }

  protected:
    // ---- Local (intra-socket) handling ---------------------------------

    AccessResult accessLlc(unsigned socket, unsigned core, Addr line,
                           bool is_write, std::uint64_t write_value,
                           Tick t0);

    void fillL1(unsigned socket, unsigned core, Addr line, bool writable,
                std::uint64_t value);

    void evictLlcVictim(unsigned socket, Addr line, LlcEntry entry,
                        Tick when);

    void noteCompletion(Tick t)
    {
        lastCompletion_ = std::max(lastCompletion_, t);
    }

    /**
     * Hot-path stat staging. The request path bumps this one POD block
     * instead of the registered Counter/Histogram objects scattered
     * across the engine; every read-side accessor calls flushPending()
     * first, so observable values are always exact. Latency samples
     * stage in a small buffer and fold into the histogram in bursts
     * (bucket adds commute, so totals and percentiles are unchanged).
     */
    struct PendingStats
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t l1Hits = 0;
        std::uint64_t llcHits = 0;
        std::uint64_t llcMisses = 0;
        std::uint64_t writebacks = 0;
        std::array<std::uint64_t, numReadOutcomes> outcome{};
        std::array<std::uint64_t, numReqClasses> cls{};
        /** Integral tick sums stay exact in double far past any run. */
        double missLatency = 0.0;
        unsigned nLat = 0;
        std::array<Tick, 64> lat;
    };

    /** Fold the staging block into the registered stats. */
    void flushPending() const;

    /** Stage one end-to-end latency sample. */
    void
    noteLatency(Tick d) const
    {
        if (pend_.nLat == pend_.lat.size())
            flushPending();
        pend_.lat[pend_.nLat++] = d;
    }

    mutable PendingStats pend_;

    // Batched stats are mutable: flushPending() folds the staging block
    // in from const accessors.
    mutable Counter reads_;
    mutable Counter writes_;
    mutable Counter l1Hits_;
    mutable Counter llcHits_;
    mutable Counter llcMisses_;
    mutable Counter writebacks_;
    Counter due_;     ///< machine-check exceptions (data loss)
    Counter sysCe_;   ///< system-level corrected errors
    Counter sdcReads_;
    mutable std::array<Counter, numReadOutcomes> outcomeCount_;
    mutable std::array<Counter, numReqClasses> classCount_;
    mutable ScalarStat missLatencySum_; ///< ticks summed over LLC misses
    mutable Histogram reqLatency_; ///< end-to-end latency of every access
    StatGroup stats_;
    EventTracer tracer_;
    std::vector<InvariantViolation> violations_;
};

} // namespace dve

#endif // DVE_COHERENCE_ENGINE_HH
