/**
 * @file
 * Tests for the System builder: scheme wiring, ROI metric extraction,
 * and cross-scheme sanity (the qualitative shape of Fig 6/7/8 on a small
 * workload sample).
 */

#include <gtest/gtest.h>

#include "bench/bench_util.hh"
#include "sys/system.hh"

namespace dve
{
namespace
{

SystemConfig
quickConfig(SchemeKind k)
{
    SystemConfig cfg;
    cfg.scheme = k;
    // Scale the machine down so short traces still exercise memory.
    cfg.engine.l1Bytes = 4 * 1024;
    cfg.engine.llcBytes = 256 * 1024;
    cfg.warmupFraction = 0.05;
    return cfg;
}

TEST(System, SchemeWiring)
{
    EXPECT_EQ(System::engineConfigFor(quickConfig(SchemeKind::BaselineNuma))
                  .dram.channels,
              1u);
    EXPECT_EQ(System::engineConfigFor(quickConfig(SchemeKind::DveDeny))
                  .dram.channels,
              2u);
    EXPECT_EQ(
        System::engineConfigFor(quickConfig(SchemeKind::IntelMirrorPlus))
            .mirror,
        MirrorMode::LoadBalance);

    System numa(quickConfig(SchemeKind::BaselineNuma));
    EXPECT_EQ(numa.dveEngine(), nullptr);
    System dve(quickConfig(SchemeKind::DveDynamic));
    ASSERT_NE(dve.dveEngine(), nullptr);
    EXPECT_STREQ(dve.engine().schemeName(), "dve-dynamic");
}

TEST(System, RunProducesRoiMetrics)
{
    System sys(quickConfig(SchemeKind::BaselineNuma));
    const auto r = sys.run(workloadByName("bfs"), 0.05);
    EXPECT_EQ(r.workload, "bfs");
    EXPECT_EQ(r.scheme, "numa");
    EXPECT_GT(r.roiTime, 0u);
    EXPECT_GT(r.memOps, 0u);
    EXPECT_GT(r.llcMisses, 0u);
    EXPECT_GT(r.mpki, 0.0);
    EXPECT_GT(r.memoryEnergyNj, 0.0);
    // Class mix is a distribution.
    double sum = 0;
    for (double c : r.classMix)
        sum += c;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(System, DveBeatsBaselineOnTopWorkload)
{
    // Fig 6's headline on one high-MPKI, read-shared workload.
    System numa(quickConfig(SchemeKind::BaselineNuma));
    System deny(quickConfig(SchemeKind::DveDeny));
    const auto &wl = workloadByName("backprop");
    const auto rn = numa.run(wl, 0.08);
    const auto rd = deny.run(wl, 0.08);
    const double speedup = static_cast<double>(rn.roiTime)
                           / static_cast<double>(rd.roiTime);
    EXPECT_GT(speedup, 1.05) << "expected >5% speedup";
    // And Fig 8: inter-socket traffic falls.
    EXPECT_LT(rd.interSocketBytes, rn.interSocketBytes);
}

TEST(System, IntelMirrorPlusBetweenBaselineAndDve)
{
    const auto &wl = workloadByName("graph500");
    System numa(quickConfig(SchemeKind::BaselineNuma));
    System intel(quickConfig(SchemeKind::IntelMirrorPlus));
    System deny(quickConfig(SchemeKind::DveDeny));
    const auto rn = numa.run(wl, 0.06);
    const auto ri = intel.run(wl, 0.06);
    const auto rd = deny.run(wl, 0.06);
    // Intel-mirroring++ only adds intra-socket read bandwidth; Dvé also
    // kills the inter-socket latency, so it must be fastest.
    EXPECT_LE(rd.roiTime, ri.roiTime);
    EXPECT_LE(rd.roiTime, rn.roiTime);
}

TEST(System, ReplicaActivityReportedInExtras)
{
    System deny(quickConfig(SchemeKind::DveDeny));
    const auto r = deny.run(workloadByName("xsbench"), 0.05);
    ASSERT_TRUE(r.extra.count("replica_local_reads"));
    EXPECT_GT(r.extra.at("replica_local_reads"), 0.0);
    EXPECT_EQ(r.extra.at("machine_checks"), 0.0);
}

TEST(System, ClassMixSeparatesWorkloadFamilies)
{
    // Fig 7's shape: top-10 profiles are read dominated at the home
    // directory; bottom-10 carry heavy private read/write.
    System numa(quickConfig(SchemeKind::BaselineNuma));
    const auto top = numa.run(workloadByName("xsbench"), 0.05);
    System numa2(quickConfig(SchemeKind::BaselineNuma));
    const auto bottom = numa2.run(workloadByName("histo"), 0.05);

    const double top_reads = top.classMix[0] + top.classMix[1];
    const double bottom_prw = bottom.classMix[3];
    EXPECT_GT(top_reads, 0.6);
    EXPECT_GT(bottom_prw, top.classMix[3]);
}

TEST(System, DeterministicRuns)
{
    auto once = [] {
        System sys(quickConfig(SchemeKind::DveDynamic));
        const auto r = sys.run(workloadByName("mg"), 0.04);
        return std::tuple{r.roiTime, r.llcMisses, r.interSocketBytes};
    };
    EXPECT_EQ(once(), once());
}

// Regression: a dynamic-protocol epoch switch (deny -> allow) used to
// leave deny-phase RM markers that the next writeback upgraded to a
// Readable permission the home never registered, tripping the
// grantedExclusive invariant on the Fig 6 workloads (comd at trace
// scale 0.5 reproduced it deterministically).
TEST(System, DynamicSwitchSurvivesWritebackOfDenyPhaseMarkers)
{
    const auto r =
        bench::runScheme(SchemeKind::DveDynamic, workloadByName("comd"),
                         0.5);
    EXPECT_GT(r.roiTime, 0u);
}

} // namespace
} // namespace dve
