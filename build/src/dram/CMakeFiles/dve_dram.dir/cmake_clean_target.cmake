file(REMOVE_RECURSE
  "libdve_dram.a"
)
