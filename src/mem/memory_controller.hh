/**
 * @file
 * Socket memory controller: DRAM timing + ECC detection/correction +
 * fault-injection interaction.
 *
 * Line contents are tracked as a 64-bit token that expands deterministically
 * to a full 64 B payload when (and only when) a fault touches the access, so
 * the common fault-free path stays cheap while the faulty path exercises the
 * real codec. The controller supports three organizations:
 *
 *  - Plain: one DRAM module (1 or 2 channels, per Table II).
 *  - Mirrored: two single-channel copies inside this controller, Intel
 *    memory-mirroring style. Reads go to the primary only (base mode) or
 *    load-balance across copies (the paper's Intel-mirroring++), with
 *    failover to the other copy on a detected error.
 *  - RAIM: IBM zEnterprise-style RAID-3 across five single-channel
 *    modules: line L lives on channel L % 4 and each 4-line stripe's
 *    XOR parity lives on channel 4. Accesses gang all five channels
 *    (the 256 B granularity the paper cites as RAIM's performance
 *    cost); a detected-uncorrectable line is reconstructed from its
 *    three stripe-mates plus parity. The whole arrangement sits behind
 *    ONE controller -- its single point of failure, which is exactly
 *    the contrast with Dvé.
 */

#ifndef DVE_MEM_MEMORY_CONTROLLER_HH
#define DVE_MEM_MEMORY_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_map.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram.hh"
#include "ecc/line_codec.hh"
#include "fault/fault.hh"

namespace dve
{

/** Redundancy organization inside one controller. */
enum class MirrorMode : std::uint8_t
{
    None,        ///< single copy
    Primary,     ///< Intel mirroring: read primary, failover only
    LoadBalance, ///< Intel-mirroring++: alternate reads across copies
    Raim,        ///< IBM RAIM: RAID-3, 4 data channels + 1 parity
};

/** Result of a timed line read. */
struct MemReadResult
{
    Tick readyAt = 0;
    /** Detection outcome after ECC (and intra-controller failover). */
    EccStatus status = EccStatus::Clean;
    /** True when no usable data could be produced (caller must recover). */
    bool failed = false;
    /** The data token (valid unless failed; may be silently wrong!). */
    std::uint64_t value = 0;
};

/** One socket's memory controller. */
class MemoryController
{
  public:
    /**
     * @param fault_channel_base global channel number of this controller's
     *        channel 0, used to key the fault registry.
     */
    MemoryController(std::string name, unsigned socket,
                     const DramConfig &cfg, Scheme scheme, MirrorMode mode,
                     FaultRegistry *faults, std::uint64_t seed,
                     unsigned fault_channel_base = 0);

    /** Timed, ECC-checked read of the line containing @p addr. */
    MemReadResult read(Addr addr, Tick now);

    /** Timed write of a line (encodes check symbols implicitly). */
    Tick write(Addr addr, std::uint64_t value, Tick now);

    /**
     * Recovery repair: overwrite with known-good data, cure transient
     * faults, and re-read to see whether the copy is usable again.
     */
    MemReadResult repairAndVerify(Addr addr, std::uint64_t good_value,
                                  Tick now);

    /**
     * Timing-only DRAM read in the reserved metadata region (used by the
     * memory-backed replica directory): contends for banks/bus but does
     * not touch contents or ECC. @return completion tick.
     */
    Tick metadataAccess(Addr addr, Tick now);

    /**
     * Timing-only read of a data address (models the bandwidth cost of a
     * squashed speculative read whose value is discarded).
     */
    Tick timingRead(Addr addr, Tick now);

    /** Direct content inspection (no timing, no faults). */
    std::uint64_t peek(Addr addr) const;

    /** Direct content override (tests). */
    void poke(Addr addr, std::uint64_t value);

    /** Any active read-disturbance fault matching @p addr on any copy?
     *  Recovery uses this to attribute failures to hammering. */
    bool rowDisturbedAt(Addr addr) const;

    /** Victim-row faults injected from HCfirst crossings. */
    std::uint64_t disturbFaultsInjected() const
    {
        return disturbInjected_.value();
    }

    unsigned socket() const { return socket_; }
    Scheme scheme() const { return scheme_; }
    MirrorMode mirrorMode() const { return mode_; }

    /** Primary DRAM module (copy 0), e.g. for energy accounting. */
    const DramModule &dram(unsigned copy = 0) const
    {
        return *modules_[copy];
    }

    unsigned copies() const
    {
        return static_cast<unsigned>(modules_.size());
    }

    // Error accounting (this controller's local view).
    std::uint64_t correctedErrors() const { return ce_.value(); }
    std::uint64_t detectedFailures() const { return detectedFail_.value(); }
    std::uint64_t silentCorruptions() const { return sdcObserved_.value(); }

    const StatGroup &stats() const
    {
        flushPending();
        return stats_;
    }

    /** Distribution of read() service latencies (ticks). */
    const Histogram &readLatency() const
    {
        flushPending();
        return readLatency_;
    }

  private:
    struct CopyRead
    {
        EccStatus status = EccStatus::Clean;
        bool pathFailed = false;
        std::uint64_t value = 0;
        bool silentlyWrong = false;
    };

    /** Apply faults + codec to one copy's stored line. */
    CopyRead readCopy(unsigned copy, Addr addr, const DramCoord &coord);

    /** Turn queued HCfirst crossings into victim-row faults. */
    void drainDisturb(unsigned copy);

    std::uint64_t storedValue(unsigned copy, Addr addr) const;

    std::string name_;
    unsigned socket_;
    Scheme scheme_;
    MirrorMode mode_;
    LineCodec codec_;
    FaultRegistry *faults_;
    mutable Rng rng_;
    unsigned faultChannelBase_;
    std::uint64_t nextCopyToRead_ = 0; ///< round-robin for LoadBalance

    /** RAIM read path (always ganged across the five channels). */
    MemReadResult raimRead(Addr addr, Tick now);

    static constexpr unsigned raimDataChannels = 4;

    unsigned raimChannelOf(Addr addr) const
    {
        return static_cast<unsigned>(lineNum(addr) % raimDataChannels);
    }

    /** Synthetic per-stripe address for the parity module's maps. */
    Addr raimParityAddr(Addr addr) const
    {
        return (lineNum(addr) / raimDataChannels) << lineShift;
    }

    std::vector<std::unique_ptr<DramModule>> modules_;
    /** Line tokens per copy; looked up by key only, never iterated. */
    std::vector<FlatMap<Addr, std::uint64_t>> contents_;

    /**
     * Access-path stat staging: read()/write() bump this block and the
     * counters absorb it when any accessor exposes them. Error counters
     * stay unbatched -- recovery code reads their deltas mid-request.
     */
    struct PendingMem
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        unsigned nLat = 0;
        std::array<Tick, 64> lat;
    };

    void flushPending() const;

    void noteLatency(Tick lat)
    {
        if (pend_.nLat == pend_.lat.size())
            flushPending();
        pend_.lat[pend_.nLat++] = lat;
    }

    mutable PendingMem pend_;
    mutable Counter reads_;
    mutable Counter writes_;
    Counter ce_;
    Counter detectedFail_;
    Counter sdcObserved_;
    Counter mirrorFailovers_;
    Counter disturbInjected_;
    mutable Histogram readLatency_;
    StatGroup stats_;
};

/**
 * Deterministically expand a 64-bit token into a 64 B payload such that the
 * XOR-fold of the payload's eight words recovers the token (so any byte
 * corruption perturbs the folded value). Exposed for tests.
 */
LineBytes materializeLine(Addr line_num, std::uint64_t value);

/** Inverse fold of materializeLine. */
std::uint64_t dematerializeLine(Addr line_num, const LineBytes &payload);

} // namespace dve

#endif // DVE_MEM_MEMORY_CONTROLLER_HH
