#include "common/stats.hh"

#include "common/logging.hh"

namespace dve
{

void
StatGroup::addEntry(Entry e)
{
    dve_assert(!has(e.name), "duplicate stat ", name_, ".", e.name);
    index_.emplace(e.name, entries_.size());
    entries_.push_back(std::move(e));
}

void
StatGroup::add(const std::string &stat_name, const Counter &c)
{
    addEntry({stat_name, &c, nullptr, nullptr});
}

void
StatGroup::add(const std::string &stat_name, const ScalarStat &s)
{
    addEntry({stat_name, nullptr, &s, nullptr});
}

void
StatGroup::add(const std::string &stat_name, const Histogram &h)
{
    addEntry({stat_name, nullptr, nullptr, &h});
}

const StatGroup::Entry *
StatGroup::find(const std::string &stat_name) const
{
    auto it = index_.find(stat_name);
    return it == index_.end() ? nullptr : &entries_[it->second];
}

bool
StatGroup::has(const std::string &stat_name) const
{
    return find(stat_name) != nullptr;
}

const Histogram *
StatGroup::histogram(const std::string &stat_name) const
{
    const Entry *e = find(stat_name);
    return e ? e->histogram : nullptr;
}

double
StatGroup::get(const std::string &stat_name) const
{
    const Entry *e = find(stat_name);
    if (!e)
        dve_panic("unknown stat ", name_, ".", stat_name);
    if (e->histogram)
        dve_panic("stat ", name_, ".", stat_name,
                  " is a histogram; use histogram()");
    return e->counter ? static_cast<double>(e->counter->value())
                      : e->scalar->value();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &e : entries_) {
        if (e.histogram) {
            const LatencyDigest d = digestOf(*e.histogram);
            os << name_ << '.' << e.name << "_count " << d.count << '\n';
            os << name_ << '.' << e.name << "_mean " << d.mean << '\n';
            os << name_ << '.' << e.name << "_p50 " << d.p50 << '\n';
            os << name_ << '.' << e.name << "_p90 " << d.p90 << '\n';
            os << name_ << '.' << e.name << "_p95 " << d.p95 << '\n';
            os << name_ << '.' << e.name << "_p99 " << d.p99 << '\n';
            os << name_ << '.' << e.name << "_max " << d.max << '\n';
            continue;
        }
        const double v = e.counter ? static_cast<double>(e.counter->value())
                                   : e.scalar->value();
        os << name_ << '.' << e.name << ' ' << v << '\n';
    }
}

std::map<std::string, double>
StatGroup::snapshot() const
{
    std::map<std::string, double> out;
    for (const auto &e : entries_) {
        if (e.histogram)
            continue;
        out[e.name] = e.counter ? static_cast<double>(e.counter->value())
                                : e.scalar->value();
    }
    return out;
}

} // namespace dve
