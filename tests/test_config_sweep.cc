/**
 * @file
 * Parameterized configuration sweeps: the value-validated random stress
 * must hold across the cross product of protocol x cache geometry x
 * socket count x options. Each instance replays the same deterministic
 * traffic under full data-value checking -- a coherence bug anywhere in
 * the space panics.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/dve_engine.hh"

namespace dve
{
namespace
{

struct SweepPoint
{
    DveProtocol protocol;
    unsigned sockets;
    std::uint64_t llcBytes;
    std::size_t rdirEntries;
    bool speculative;
    bool coarse;
    bool balance;
    const char *name;
};

class ConfigSweep : public ::testing::TestWithParam<SweepPoint>
{
};

TEST_P(ConfigSweep, ValidatedStress)
{
    const SweepPoint &p = GetParam();
    EngineConfig cfg;
    cfg.sockets = p.sockets;
    cfg.l1Bytes = 1024;
    cfg.llcBytes = p.llcBytes;
    cfg.dram = DramConfig::ddr4Replicated();
    cfg.validateValues = true;

    DveConfig d;
    d.protocol = p.protocol;
    d.replicaDirEntries = p.rdirEntries;
    d.speculativeReplicaRead = p.speculative;
    d.coarseGrain = p.coarse;
    d.balanceReplicaReads = p.balance;
    d.epochOps = 1500; // force dynamic switching inside the stress

    DveEngine e(cfg, d);
    Rng rng(0xD0E + p.sockets + p.rdirEntries);
    const unsigned cores = p.sockets * 8;
    Tick t = 0;
    for (int op = 0; op < 15000; ++op) {
        const unsigned c = static_cast<unsigned>(rng.next(cores));
        const Addr a = Addr(rng.next(10)) * pageBytes
                       + Addr(rng.next(8)) * lineBytes;
        t = e.access(c / 8, c % 8, a, rng.chance(0.3), rng.engine()(), t)
                .done;
    }
    EXPECT_EQ(e.sdcReadsObserved(), 0u);
    EXPECT_EQ(e.machineCheckExceptions(), 0u);
    EXPECT_GT(e.replicaLocalReads(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Space, ConfigSweep,
    ::testing::Values(
        SweepPoint{DveProtocol::Deny, 2, 8 * 1024, 2048, true, false,
                   false, "deny_tinyllc"},
        SweepPoint{DveProtocol::Deny, 2, 64 * 1024, 16, true, false,
                   false, "deny_tinyrdir"},
        SweepPoint{DveProtocol::Deny, 2, 16 * 1024, 2048, false, false,
                   false, "deny_nospec"},
        SweepPoint{DveProtocol::Deny, 2, 16 * 1024, 2048, true, false,
                   true, "deny_balanced"},
        SweepPoint{DveProtocol::Allow, 2, 8 * 1024, 2048, true, false,
                   false, "allow_tinyllc"},
        SweepPoint{DveProtocol::Allow, 2, 64 * 1024, 16, true, false,
                   false, "allow_tinyrdir"},
        SweepPoint{DveProtocol::Allow, 2, 16 * 1024, 64, true, true,
                   false, "allow_coarse_tinyrdir"},
        SweepPoint{DveProtocol::Allow, 2, 16 * 1024, 2048, false, true,
                   true, "allow_coarse_balanced"},
        SweepPoint{DveProtocol::Dynamic, 2, 16 * 1024, 64, true, false,
                   false, "dynamic_tinyrdir"},
        SweepPoint{DveProtocol::Dynamic, 2, 16 * 1024, 2048, true, true,
                   true, "dynamic_everything"},
        SweepPoint{DveProtocol::Deny, 4, 16 * 1024, 2048, true, false,
                   false, "deny_4socket"},
        SweepPoint{DveProtocol::Allow, 4, 16 * 1024, 64, true, false,
                   false, "allow_4socket_tinyrdir"},
        SweepPoint{DveProtocol::Dynamic, 4, 16 * 1024, 2048, true,
                   false, false, "dynamic_4socket"},
        SweepPoint{DveProtocol::Deny, 3, 16 * 1024, 2048, true, false,
                   false, "deny_3socket"}),
    [](const auto &info) { return std::string(info.param.name); });

/** The same sweep must also be deterministic point-by-point. */
TEST(ConfigSweepDeterminism, SameSeedSameOutcome)
{
    auto once = [] {
        EngineConfig cfg;
        cfg.l1Bytes = 1024;
        cfg.llcBytes = 16 * 1024;
        cfg.dram = DramConfig::ddr4Replicated();
        DveConfig d;
        d.protocol = DveProtocol::Dynamic;
        d.epochOps = 1000;
        DveEngine e(cfg, d);
        Rng rng(314);
        Tick t = 0;
        for (int op = 0; op < 6000; ++op) {
            const unsigned c = static_cast<unsigned>(rng.next(16));
            t = e.access(c / 8, c % 8,
                         Addr(rng.next(8)) * pageBytes
                             + Addr(rng.next(6)) * lineBytes,
                         rng.chance(0.25), rng.engine()(), t)
                    .done;
        }
        return std::tuple{t, e.replicaLocalReads(), e.rmPushes(),
                          e.dynamicSwitches()};
    };
    EXPECT_EQ(once(), once());
}

} // namespace
} // namespace dve
