/**
 * @file
 * Fig 7: inter-socket sharing characteristics -- the distribution of
 * home-directory request classes (private-read, read-only, read/write,
 * private-read/write) per workload on the baseline NUMA system.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace dve;

int
main()
{
    const double scale = bench::scaleFromEnv(0.4);
    bench::printHeader(
        "Fig 7: request-class mix at the home directory (baseline NUMA)");

    TextTable t({"benchmark", "private-read", "read-only", "read-write",
                 "private-rw", "allow-friendly?"});
    const auto &workloads = table3Workloads();
    const auto runs =
        bench::runMatrix(workloads.size(), [&](std::size_t p) {
            return bench::runScheme(SchemeKind::BaselineNuma,
                                    workloads[p], scale);
        });
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &wl = workloads[w];
        const auto &r = runs[w];
        const double prw = r.classMix[3];
        auto share = [](double f) {
            return TextTable::num(f * 100.0, 1) + "%";
        };
        t.addRow({wl.name, share(r.classMix[0]), share(r.classMix[1]),
                  share(r.classMix[2]), share(prw),
                  prw > 0.40 ? "yes (private-rw heavy)" : "no"});
    }
    t.print(std::cout);
    std::printf("\nPaper: workloads with > 46%% private read/write "
                "favour the allow protocol; the shared-read dominated "
                "top-10 favour deny.\n");
    bench::writeRunsJson("fig7", runs);
    return 0;
}
