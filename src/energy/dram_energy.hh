/**
 * @file
 * DDR4 energy model and EDP computation (paper Sec. VII "Energy").
 *
 * Per-operation energies and background power are derived from Micron
 * DDR4-2400 8 Gb x8 datasheet current profiles (IDD0/IDD2N/IDD3N/IDD4/
 * IDD5) for a 9-device rank at VDD = 1.2 V:
 *
 *   activate+precharge : ~e_act per ACT/PRE pair
 *   read/write burst   : ~e_rd / e_wr per 64 B transfer
 *   background         : active-standby power per rank, always on
 *   refresh            : added per-rank power
 *
 * The absolute joules matter less than the proportions (the paper reports
 * EDP ratios); the defaults keep activate, burst and background energy in
 * datasheet-typical proportion.
 *
 * System EDP uses the paper's observation that memory is ~18% of total
 * system power in a 2-socket server: non-memory power is held constant at
 * the baseline's implied level while memory power varies per scheme.
 */

#ifndef DVE_ENERGY_DRAM_ENERGY_HH
#define DVE_ENERGY_DRAM_ENERGY_HH

#include "common/types.hh"
#include "dram/dram.hh"

namespace dve
{

/** Per-rank DDR4 energy parameters (datasheet-derived defaults). */
struct DramEnergyParams
{
    double actPrechargeNj = 2.6;  ///< nJ per ACT/PRE pair (rank of 9)
    double readBurstNj = 3.5;     ///< nJ per 64 B read burst
    double writeBurstNj = 3.7;    ///< nJ per 64 B write burst
    /** Standby power for a full rank (9 x8 devices at ~70 mW each). */
    double backgroundMwPerRank = 630.0;
    double refreshMwPerRank = 75.0; ///< refresh overhead per rank, mW
    /** Memory share of total system power in the baseline (2-socket). */
    double memoryShareOfSystem = 0.18;
};

/** Energy accounting over DRAM module statistics. */
class DramEnergyModel
{
  public:
    explicit DramEnergyModel(const DramEnergyParams &p = {}) : p_(p) {}

    /** Dynamic + background energy (nJ) of one module over @p elapsed. */
    double moduleEnergyNj(const DramModule &m, Tick elapsed) const;

    /** Memory energy-delay product: total memory nJ x seconds. */
    double
    memoryEdp(double total_memory_nj, Tick elapsed) const
    {
        return total_memory_nj * 1e-9 * ticksToSeconds(elapsed);
    }

    /**
     * System EDP given this scheme's memory energy and the baseline's
     * memory power (which anchors the fixed non-memory power).
     */
    double systemEdp(double total_memory_nj, Tick elapsed,
                     double baseline_memory_nj,
                     Tick baseline_elapsed) const;

    const DramEnergyParams &params() const { return p_; }

    static double
    ticksToSeconds(Tick t)
    {
        return static_cast<double>(t) / static_cast<double>(ticksPerSec);
    }

  private:
    DramEnergyParams p_;
};

} // namespace dve

#endif // DVE_ENERGY_DRAM_ENERGY_HH
