/**
 * @file
 * Deterministic scenario executor.
 *
 * Builds a fresh Dvé engine per run (campaign quick-shape: replicated
 * DDR4 with the TSD detection codec, caches far smaller than the
 * footprint), arms the live invariant monitors, and plays the scenario's
 * steps on one timeline: accesses advance the clock to their completion
 * tick, injects/heals mutate the fault registry in place, scrub and
 * maintenance run the recovery pipeline mid-stream.
 *
 * Determinism: the run is a pure function of (scenario, options). The
 * result carries an FNV-1a digest over every step's observation plus a
 * line-per-step text log and the trace JSON; two runs of the same
 * scenario are byte-identical in all three at any job count (runs are
 * single-threaded; the campaign parallelizes across scenarios only).
 *
 * The run stops at the first monitor firing (the violation report with
 * the tracer tail is the product); with monitors off it plays to the end
 * and is byte-identical to a build without the fuzz subsystem.
 */

#ifndef DVE_FUZZ_RUNNER_HH
#define DVE_FUZZ_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coherence/engine.hh"
#include "fuzz/scenario.hh"

namespace dve
{

/** Runner knobs (what the tool flags / env knobs map onto). */
struct FuzzRunOptions
{
    bool invariantChecks = true;
    /** Stop at the first violation (minimizer predicate); false plays
     *  every step and collects all firings. */
    bool stopOnViolation = true;
    /** Event-tracer ring capacity; 0 disables tracing. */
    std::size_t traceCapacity = 0;
};

/** Everything one scenario run observed. */
struct FuzzRunResult
{
    bool violated = false;
    std::vector<InvariantViolation> violations;
    std::uint64_t stepsRun = 0; ///< steps executed before stopping
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t clean = 0;
    std::uint64_t corrected = 0;
    std::uint64_t due = 0;
    std::uint64_t sdc = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t faultsHealed = 0;
    Tick endTick = 0;
    /** FNV-1a over per-step observations + final counters. */
    std::uint64_t digest = 0;
    /** One line per executed step (deterministic replay log). */
    std::string log;
    /** Chrome trace JSON (empty when tracing is off). */
    std::string traceJson;
};

/** Execute @p sc; deterministic in (sc, opt). */
FuzzRunResult runScenario(const FuzzScenario &sc,
                          const FuzzRunOptions &opt = {});

/** Render a violation (monitor, tick, line, detail, tracer tail) as a
 *  deterministic multi-line report. */
std::string formatViolation(const InvariantViolation &v);

} // namespace dve

#endif // DVE_FUZZ_RUNNER_HH
