/**
 * @file
 * Unit tests for the DRAM address map and timing model.
 */

#include <gtest/gtest.h>

#include "dram/address_map.hh"
#include "dram/dram.hh"

namespace dve
{
namespace
{

TEST(AddressMap, DecodeEncodeRoundTrip)
{
    for (unsigned channels : {1u, 2u}) {
        DramConfig cfg;
        cfg.channels = channels;
        const AddressMap map(cfg);
        for (Addr a = 0; a < (1u << 22); a += 64 * 97) {
            const auto c = map.decode(a);
            EXPECT_EQ(map.encode(c), lineAlign(a));
        }
    }
}

TEST(AddressMap, ConsecutiveLinesInterleaveChannels)
{
    DramConfig cfg = DramConfig::ddr4Replicated();
    const AddressMap map(cfg);
    EXPECT_EQ(map.decode(0).channel, 0u);
    EXPECT_EQ(map.decode(64).channel, 1u);
    EXPECT_EQ(map.decode(128).channel, 0u);
}

TEST(AddressMap, LinesPerRow)
{
    DramConfig cfg;
    const AddressMap map(cfg);
    EXPECT_EQ(map.linesPerRow(), cfg.rowBufferBytes / lineBytes);
}

TEST(AddressMap, BankInterleavesBeforeRow)
{
    DramConfig cfg;
    const AddressMap map(cfg);
    // With 1 channel, consecutive lines hit consecutive banks.
    EXPECT_EQ(map.decode(0).bank, 0u);
    EXPECT_EQ(map.decode(64).bank, 1u);
    EXPECT_EQ(map.decode(64 * 16).bank, 0u);
    EXPECT_EQ(map.decode(64 * 16).column, 1u);
}

class DramTimingTest : public ::testing::Test
{
  protected:
    DramConfig cfg;
    DramModule dram{"mem", DramConfig{}};
};

TEST_F(DramTimingTest, ClosedBankAccessPaysActivate)
{
    const auto r = dram.access(0, false, 0);
    EXPECT_FALSE(r.rowHit);
    EXPECT_EQ(r.readyAt, cfg.tRCD + cfg.tCL + cfg.tBURST);
}

TEST_F(DramTimingTest, RowHitIsCheaper)
{
    const auto first = dram.access(0, false, 0);
    // Same row, next line in the row buffer: skip the channel-interleave
    // by stepping a full bank rotation (16 lines) to stay in bank 0's row.
    const auto hit = dram.access(64 * 16, false, first.readyAt);
    EXPECT_TRUE(hit.rowHit);
    EXPECT_EQ(hit.readyAt - first.readyAt, cfg.tCL + cfg.tBURST);
}

TEST_F(DramTimingTest, RowConflictPaysPrechargeRespectingTras)
{
    const auto first = dram.access(0, false, 0);
    // A different row in the same bank: with 16 banks, 1 channel and 16
    // lines/row, rows advance every 16*16 lines.
    const Addr conflict_addr = Addr(64) * 16 * 16;
    ASSERT_EQ(dram.map().decode(conflict_addr).bank, 0u);
    ASSERT_NE(dram.map().decode(conflict_addr).row,
              dram.map().decode(0).row);

    const auto conf = dram.access(conflict_addr, false, first.readyAt);
    EXPECT_FALSE(conf.rowHit);
    // Precharge may not start before tRAS after the original activate (t=0).
    const Tick pre_start = std::max(first.readyAt, Tick(cfg.tRAS));
    EXPECT_EQ(conf.readyAt,
              pre_start + cfg.tRP + cfg.tRCD + cfg.tCL + cfg.tBURST);
}

TEST_F(DramTimingTest, BankParallelismOverlaps)
{
    // Two accesses to different banks at the same time only serialize on
    // the data bus (tBURST), not on the full access latency.
    const auto a = dram.access(0, false, 0);
    const auto b = dram.access(64, false, 0); // bank 1
    EXPECT_EQ(b.readyAt - a.readyAt, cfg.tBURST);
}

TEST_F(DramTimingTest, TwoChannelsDoubleBusThroughput)
{
    DramModule two("mem2", DramConfig::ddr4Replicated());
    const auto a = two.access(0, false, 0);   // channel 0
    const auto b = two.access(64, false, 0);  // channel 1
    EXPECT_EQ(a.readyAt, b.readyAt); // fully parallel
}

TEST_F(DramTimingTest, CountersTrackOutcomes)
{
    dram.access(0, false, 0);
    dram.access(64 * 16, true, 100000);       // row hit, write
    dram.access(Addr(64) * 16 * 16, false, 200000); // conflict
    EXPECT_EQ(dram.reads(), 2u);
    EXPECT_EQ(dram.writes(), 1u);
    EXPECT_EQ(dram.activates(), 2u);
    EXPECT_EQ(dram.stats().get("row_hits"), 1.0);
    EXPECT_EQ(dram.stats().get("row_conflicts"), 1.0);
    EXPECT_NEAR(dram.rowHitRate(), 1.0 / 3.0, 1e-12);

    dram.resetStats();
    EXPECT_EQ(dram.reads(), 0u);
}

TEST_F(DramTimingTest, LateRequestStartsAtNow)
{
    const Tick late = 1000 * ticksPerNs;
    const auto r = dram.access(0, false, late);
    EXPECT_EQ(r.readyAt, late + cfg.tRCD + cfg.tCL + cfg.tBURST);
}

TEST(DramConfigTest, RowsPerBankSane)
{
    DramConfig cfg;
    // 8 GB / (16 banks * 1 KB row) = 512 Ki rows.
    EXPECT_EQ(cfg.rowsPerBank(), (8ULL << 30) / (16 * 1024));
    EXPECT_EQ(cfg.devicesPerRank(), 9u);
}

} // namespace
} // namespace dve
