# Empty compiler generated dependencies file for test_dve_paths.
# This may be replaced when dependencies are built.
