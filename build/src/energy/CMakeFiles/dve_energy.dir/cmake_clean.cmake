file(REMOVE_RECURSE
  "CMakeFiles/dve_energy.dir/dram_energy.cc.o"
  "CMakeFiles/dve_energy.dir/dram_energy.cc.o.d"
  "libdve_energy.a"
  "libdve_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
