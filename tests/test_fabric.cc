/**
 * @file
 * Fabric-fault escalation tests: the timeout/retry/backoff ladder and
 * circuit breaker in DveEngine::fabricSend, graceful degradation to
 * single-copy service under link and socket failures, heal-back once
 * the fabric recovers, and the campaign-level acceptance properties
 * (zero SDC, honest unavailability, byte-deterministic reports).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "fault/campaign.hh"

namespace dve
{
namespace
{

/** Exposes the protected fabric plumbing for direct timing checks. */
struct FabricProbe : DveEngine
{
    FabricProbe(const EngineConfig &cfg, const DveConfig &d)
        : DveEngine(cfg, d)
    {
    }
    using DveEngine::controlSend;
    using DveEngine::fabricSend;
};

EngineConfig
smallEngine()
{
    EngineConfig cfg;
    cfg.llcBytes = 1024 * 1024;
    cfg.dram = DramConfig::ddr4Replicated();
    cfg.scheme = Scheme::ChipkillSscDsd;
    return cfg;
}

std::uint64_t
injectLinkDown(FaultRegistry &reg, unsigned a, unsigned b)
{
    FaultDescriptor f;
    f.scope = FaultScope::LinkDown;
    f.socket = a;
    f.peer = b;
    return reg.inject(f);
}

TEST(FabricSend, RetryLadderTimingIsDeterministic)
{
    DveConfig d;
    d.linkTimeout = 2 * ticksPerUs;
    d.linkRetryMax = 3;
    d.linkRetryBackoff = 1 * ticksPerUs;
    d.fenceProbeInterval = 25 * ticksPerUs;
    FabricProbe e(smallEngine(), d);
    injectLinkDown(e.faultRegistry(), 0, 1);

    // Each lost message costs one timeout; between attempts the sender
    // backs off exponentially: 4 sends, 3 retries.
    //   t = 4*linkTimeout + (1+2+4)*backoff = 8us + 7us = 15us.
    const Tick t0 = 1000;
    const auto r = e.fabricSend({0, 0}, {1, 0}, MsgClass::Data, t0);
    EXPECT_FALSE(r.delivered);
    EXPECT_EQ(r.at, t0 + 4 * d.linkTimeout + 7 * d.linkRetryBackoff);
    EXPECT_EQ(e.linkRetries(), 3u);

    // The circuit breaker is now open: sends inside the fence window
    // fail fast at zero latency instead of re-running the ladder.
    const Tick t1 = r.at + 1;
    const auto fast = e.fabricSend({0, 0}, {1, 0}, MsgClass::Data, t1);
    EXPECT_FALSE(fast.delivered);
    EXPECT_EQ(fast.at, t1);
    EXPECT_EQ(e.linkRetries(), 3u); // no new retries burned
}

TEST(FabricSend, FenceClosesAfterProbeIntervalAndHeal)
{
    DveConfig d;
    d.linkTimeout = 2 * ticksPerUs;
    d.linkRetryMax = 1;
    d.linkRetryBackoff = 1 * ticksPerUs;
    d.fenceProbeInterval = 10 * ticksPerUs;
    FabricProbe e(smallEngine(), d);
    const auto id = injectLinkDown(e.faultRegistry(), 0, 1);

    const auto fail = e.fabricSend({0, 0}, {1, 0}, MsgClass::Data, 0);
    ASSERT_FALSE(fail.delivered);

    // Heal the link; a probe after the fence window succeeds and closes
    // the breaker with the plain fault-free latency.
    e.faultRegistry().clear(id);
    const Tick probe_at = fail.at + d.fenceProbeInterval + 1;
    const auto ok = e.fabricSend({0, 0}, {1, 0}, MsgClass::Data, probe_at);
    EXPECT_TRUE(ok.delivered);
    EXPECT_GT(ok.at, probe_at);

    // Breaker closed: the next send is ordinary again.
    EXPECT_TRUE(
        e.fabricSend({0, 0}, {1, 0}, MsgClass::Data, ok.at).delivered);
}

TEST(FabricSend, ProbeAtExactFenceDeadlineResumesWithoutRetries)
{
    // Boundary regression: the fence window is [fail.at, deadline) --
    // a probe arriving at exactly deadline = fail.at + fenceProbeInterval
    // is the first allowed attempt. When the link has healed it must
    // deliver, close the breaker, and burn zero retry budget.
    DveConfig d;
    d.linkTimeout = 2 * ticksPerUs;
    d.linkRetryMax = 2;
    d.linkRetryBackoff = 1 * ticksPerUs;
    d.fenceProbeInterval = 10 * ticksPerUs;
    FabricProbe e(smallEngine(), d);
    const auto id = injectLinkDown(e.faultRegistry(), 0, 1);

    const auto fail = e.fabricSend({0, 0}, {1, 0}, MsgClass::Data, 0);
    ASSERT_FALSE(fail.delivered);
    const auto retries_after_ladder = e.linkRetries();

    // One tick before the deadline the breaker still fails fast.
    e.faultRegistry().clear(id);
    const Tick deadline = fail.at + d.fenceProbeInterval;
    const auto early =
        e.fabricSend({0, 0}, {1, 0}, MsgClass::Data, deadline - 1);
    EXPECT_FALSE(early.delivered);
    EXPECT_EQ(early.at, deadline - 1); // fast-fail: no ladder run
    EXPECT_EQ(e.linkRetries(), retries_after_ladder);

    // Exactly at the deadline the probe goes through first try.
    const auto ok =
        e.fabricSend({0, 0}, {1, 0}, MsgClass::Data, deadline);
    EXPECT_TRUE(ok.delivered);
    EXPECT_EQ(e.linkRetries(), retries_after_ladder);

    // And the fence is erased, not merely slid: an immediate follow-up
    // send succeeds at ordinary latency.
    const auto next =
        e.fabricSend({0, 0}, {1, 0}, MsgClass::Data, ok.at);
    EXPECT_TRUE(next.delivered);
    EXPECT_EQ(e.linkRetries(), retries_after_ladder);
}

TEST(FabricSend, SameSocketTrafficIgnoresFabricFaults)
{
    FabricProbe e(smallEngine(), DveConfig{});
    FaultDescriptor off;
    off.scope = FaultScope::SocketOffline;
    off.socket = 1;
    e.faultRegistry().inject(off);

    // Cores and directories of the offline socket still talk locally:
    // only the inter-socket link endpoint and memory domain are dead.
    EXPECT_TRUE(
        e.fabricSend({1, 0}, {1, 5}, MsgClass::Data, 0).delivered);
}

TEST(FabricSend, ControlPlaneIsReliableButSlow)
{
    DveConfig d;
    d.linkTimeout = 2 * ticksPerUs;
    d.linkRetryMax = 2;
    d.linkRetryBackoff = 1 * ticksPerUs;
    FabricProbe e(smallEngine(), d);
    injectLinkDown(e.faultRegistry(), 0, 1);

    // Coherence metadata always completes -- over the software-routed
    // path at one extra timeout past the failed ladder -- so directory
    // state can never diverge from a lost message.
    // Ladder: 3 sends, 2 retries = 3*2us + (1+2)*1us = 9us; +2us slow path.
    const Tick done = e.controlSend({0, 0}, {1, 0}, 0);
    EXPECT_EQ(done, 3 * d.linkTimeout + 3 * d.linkRetryBackoff
                        + d.linkTimeout);
    EXPECT_EQ(e.slowControlMessages(), 1u);
}

/** Push the cached line out so the next access hits DRAM again. */
void
flushLine(DveEngine &e, Addr addr, Tick &clock)
{
    const auto w =
        e.access(1, 0, addr, true, e.logicalValue(lineNum(addr)), clock);
    clock = w.done;
    for (unsigned i = 1; i <= 40; ++i) {
        const Addr a = addr + Addr(i) * 16384 * 64;
        if (lineNum(a) % 256 != lineNum(addr) % 256)
            continue;
        clock = e.access(1, 0, a, false, 0, clock).done;
    }
}

TEST(FabricEscalation, LinkDownDemotesToSingleCopyThenHealsBack)
{
    DveConfig d;
    d.linkTimeout = 1 * ticksPerUs;
    d.repairRetryBackoff = 1 * ticksPerUs;
    DveEngine e(smallEngine(), d);

    const Addr addr = 0x0; // page 0: home socket 0, replica socket 1
    Tick clock = 0;
    clock = e.access(0, 0, addr, true, 42, clock).done;
    flushLine(e, addr, clock);
    ASSERT_EQ(e.degradedLines(), 0u);

    // Down the link, then force a dirty writeback across it: the replica
    // copy misses the update and must be fenced (demoted), never read.
    const auto id = injectLinkDown(e.faultRegistry(), 0, 1);
    flushLine(e, addr, clock);
    EXPECT_GT(e.degradedLines(), 0u);
    EXPECT_GT(e.fabricDemotions(), 0u);

    // Single-copy service: reads still return the correct value.
    const auto r = e.access(0, 0, addr, false, 0, clock);
    clock = r.done;
    EXPECT_EQ(r.value, 42u);

    // While the link is down, repairs are deferred, never retired --
    // fabric faults must not consume the frame's retry budget.
    for (int i = 0; i < 4; ++i) {
        clock += 10 * ticksPerUs;
        clock = e.runMaintenance(clock).finishedAt;
    }
    EXPECT_GT(e.repairDeferrals(), 0u);
    EXPECT_GT(e.degradedLines(), 0u);
    EXPECT_EQ(e.retiredPages(), 0u);

    // Heal the link: the next maintenance pass re-replicates and the
    // line returns to dual-copy service.
    e.faultRegistry().clear(id);
    for (int i = 0; i < 4 && e.degradedLines() > 0; ++i) {
        clock += 10 * ticksPerUs;
        clock = e.runMaintenance(clock).finishedAt;
    }
    EXPECT_EQ(e.degradedLines(), 0u);
    EXPECT_GT(e.reReplications(), 0u);
}

/** Campaign with the DRAM-scope processes silenced: every observed
 *  event comes from the fabric scenario under test. */
CampaignConfig
fabricOnlyCampaign(FabricScenario sc)
{
    CampaignConfig c = CampaignConfig::quickDefaults();
    c.trials = 6;
    c.opsPerTrial = 600;
    c.scenario = sc;
    for (auto &r : c.lifecycle.rates)
        r.fit = 0.0; // the scenario re-enables exactly one fabric scope
    // Short trials need eviction pressure: dirty writebacks are the main
    // data-plane traffic a downed link can hit.
    c.engine.llcBytes = 16 * 1024;
    c.dve.repairRetryBackoff = 2 * ticksPerUs;
    return c;
}

TEST(FabricCampaign, SocketOfflineDegradesGracefully)
{
    // Acceptance: a campaign with permanent socket loss completes with
    // zero SDC and zero wedged requests; Dvé keeps serving from the
    // surviving copy, charging honest DUEs (unavailability) and degraded
    // residency instead of corrupting or hanging.
    const CampaignRunner runner(
        fabricOnlyCampaign(FabricScenario::SocketOffline));
    for (const auto scheme :
         {CampaignScheme::DveAllow, CampaignScheme::DveDeny}) {
        const auto res = runner.runScheme(scheme);
        const auto &t = res.totals;
        EXPECT_EQ(t.sdc, 0u) << campaignSchemeName(scheme);
        // Every op completed: nothing wedged.
        EXPECT_EQ(t.reads + t.writes,
                  6u * 600u) << campaignSchemeName(scheme);
        EXPECT_GT(t.permanentFaults, 0u) << campaignSchemeName(scheme);
        EXPECT_GT(t.unavailableRequests, 0u)
            << campaignSchemeName(scheme);
        EXPECT_GT(t.degradedResidencyTicks, 0.0)
            << campaignSchemeName(scheme);
        EXPECT_GT(t.degradedEvents, 0u) << campaignSchemeName(scheme);
        // A dead socket cannot heal: deferrals accumulate, frames are
        // never retired on account of the fabric.
        EXPECT_GT(t.repairDeferrals, 0u) << campaignSchemeName(scheme);
    }
}

TEST(FabricCampaign, LinkFlapFullyHealsBack)
{
    // Acceptance: flapping links degrade lines transiently; once the
    // episodes end, self-healing re-replicates every line -- zero SDC
    // and zero lines still degraded at drain.
    CampaignConfig c = fabricOnlyCampaign(FabricScenario::LinkFlap);
    c.drainRounds = 60;
    // Enough fault pressure that short trials see several episodes.
    c.lifecycle.acceleration *= 4;
    const CampaignRunner runner(c);
    const auto res = runner.runScheme(CampaignScheme::DveDeny);
    const auto &t = res.totals;
    EXPECT_GT(t.faultArrivals, 0u);
    EXPECT_EQ(t.permanentFaults, 0u); // flaps are intermittent
    EXPECT_EQ(t.sdc, 0u);
    EXPECT_GT(t.degradedEvents, 0u);
    EXPECT_GT(t.reReplications, 0u);
    EXPECT_EQ(t.degradedLinesEnd, 0u); // full heal-back
}

TEST(FabricCampaign, LossyLinkDropsAreDetectedNotSilent)
{
    const CampaignRunner runner(
        fabricOnlyCampaign(FabricScenario::LossyLink));
    const auto res = runner.runScheme(CampaignScheme::DveDeny);
    const auto &t = res.totals;
    EXPECT_GT(t.faultArrivals, 0u);
    EXPECT_EQ(t.sdc, 0u);
    // Dropped messages showed up (and were paid for via retries).
    EXPECT_GT(t.droppedMessages + t.linkRetries, 0u);
}

TEST(FabricCampaign, ScenarioReportsByteIdenticalAcrossJobCounts)
{
    CampaignConfig c = fabricOnlyCampaign(FabricScenario::SocketOffline);
    const std::vector<CampaignScheme> schemes = {
        CampaignScheme::BaselineDetect,
        CampaignScheme::DveAllow,
    };

    c.jobs = 1;
    std::ostringstream serial;
    writeJsonReport(CampaignRunner(c).run(schemes), serial);

    c.jobs = 4;
    std::ostringstream parallel;
    writeJsonReport(CampaignRunner(c).run(schemes), parallel);

    EXPECT_FALSE(serial.str().empty());
    EXPECT_EQ(serial.str(), parallel.str());
}

TEST(FabricCampaign, TrialsAreReplayableFromRecordedSeeds)
{
    // The report records, per trial, the derived seeds and a digest of
    // the fault-event log: re-running any single trial standalone must
    // reproduce both the seeds and the observations.
    CampaignConfig c = fabricOnlyCampaign(FabricScenario::LinkFlap);
    const CampaignRunner runner(c);
    const auto res = runner.runScheme(CampaignScheme::DveDeny);

    for (unsigned i = 0; i < c.trials; ++i) {
        const auto &t = res.trials[i];
        EXPECT_EQ(t.engineSeed, c.seed * 1000003 + i);
        EXPECT_EQ(t.faultSeed, c.seed * 7919 + i);
        EXPECT_EQ(t.workloadSeed, c.seed * 31 + i + 1);

        const auto replay = runner.runTrial(CampaignScheme::DveDeny, i);
        EXPECT_EQ(replay.faultLogDigest, t.faultLogDigest) << i;
        EXPECT_EQ(replay.due, t.due) << i;
        EXPECT_EQ(replay.sdc, t.sdc) << i;
        EXPECT_EQ(replay.unavailableRequests, t.unavailableRequests)
            << i;
    }

    // Different trials see different fault histories (digests differ
    // somewhere across the set as long as any events occurred).
    ASSERT_GT(res.totals.faultArrivals, 0u);
    bool distinct = false;
    for (unsigned i = 1; i < c.trials; ++i)
        distinct = distinct
                   || res.trials[i].faultLogDigest
                          != res.trials[0].faultLogDigest;
    EXPECT_TRUE(distinct);
}

TEST(FabricCampaign, ScenarioNamesRoundTrip)
{
    EXPECT_STREQ(fabricScenarioName(FabricScenario::None), "none");
    EXPECT_STREQ(fabricScenarioName(FabricScenario::LinkFlap),
                 "link-flap");
    EXPECT_STREQ(fabricScenarioName(FabricScenario::LossyLink),
                 "lossy-link");
    EXPECT_STREQ(fabricScenarioName(FabricScenario::SocketOffline),
                 "socket-offline");
    for (unsigned i = 0; i < numFabricScenarios; ++i) {
        const auto s = static_cast<FabricScenario>(i);
        const auto parsed = parseFabricScenario(fabricScenarioName(s));
        ASSERT_TRUE(parsed);
        EXPECT_EQ(*parsed, s);
    }
    EXPECT_FALSE(parseFabricScenario("half-duplex"));
}

TEST(FabricCampaign, JsonCarriesScenarioAndFabricTotals)
{
    CampaignConfig c = fabricOnlyCampaign(FabricScenario::SocketOffline);
    c.trials = 2;
    std::ostringstream os;
    writeJsonReport(
        CampaignRunner(c).run({CampaignScheme::DveDeny}), os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"scenario\": \"socket-offline\""),
              std::string::npos);
    EXPECT_NE(s.find("\"unavailable_requests\""), std::string::npos);
    EXPECT_NE(s.find("\"mean_time_degraded_ticks\""), std::string::npos);
    EXPECT_NE(s.find("\"fault_log_digest\""), std::string::npos);
    EXPECT_NE(s.find("\"repair_deferrals\""), std::string::npos);
}

} // namespace
} // namespace dve
