file(REMOVE_RECURSE
  "CMakeFiles/dve_common.dir/logging.cc.o"
  "CMakeFiles/dve_common.dir/logging.cc.o.d"
  "CMakeFiles/dve_common.dir/stats.cc.o"
  "CMakeFiles/dve_common.dir/stats.cc.o.d"
  "CMakeFiles/dve_common.dir/table.cc.o"
  "CMakeFiles/dve_common.dir/table.cc.o.d"
  "libdve_common.a"
  "libdve_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
