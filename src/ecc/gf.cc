#include "ecc/gf.hh"

#include "common/logging.hh"

namespace dve
{

GaloisField::GaloisField(unsigned symbol_bits, std::uint32_t primitive_poly)
    : bits_(symbol_bits), size_(1u << symbol_bits)
{
    dve_assert(symbol_bits >= 2 && symbol_bits <= 16,
               "symbol width out of supported range");
    dve_assert(primitive_poly >> symbol_bits == 1,
               "polynomial must have degree exactly m");

    const std::uint32_t order = size_ - 1;
    exp_.assign(std::size_t(2) * order, 0);
    log_.assign(size_, 0);

    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < order; ++i) {
        exp_[i] = x;
        if (i > 0 && x == 1)
            dve_panic("polynomial 0x", std::hex, primitive_poly,
                      " is not primitive (alpha order ", std::dec, i, ")");
        log_[x] = i;
        // Multiply by alpha (= x) and reduce.
        x <<= 1;
        if (x & size_)
            x ^= primitive_poly;
    }
    dve_assert(x == 1, "alpha^order must return to 1");
    // Duplicate table so mul can index log a + log b without a modulo.
    for (std::uint32_t i = 0; i < order; ++i)
        exp_[order + i] = exp_[i];
}

std::uint32_t
GaloisField::div(std::uint32_t a, std::uint32_t b) const
{
    dve_assert(b != 0, "division by zero in GF");
    if (a == 0)
        return 0;
    const std::uint32_t order = size_ - 1;
    return exp_[log_[a] + order - log_[b]];
}

std::uint32_t
GaloisField::inv(std::uint32_t a) const
{
    dve_assert(a != 0, "zero has no inverse");
    const std::uint32_t order = size_ - 1;
    return exp_[order - log_[a]];
}

std::uint32_t
GaloisField::pow(std::uint32_t a, std::uint64_t e) const
{
    if (e == 0)
        return 1;
    if (a == 0)
        return 0;
    const std::uint64_t order = size_ - 1;
    const std::uint64_t le = (static_cast<std::uint64_t>(log_[a]) * e)
                             % order;
    return exp_[static_cast<std::size_t>(le)];
}

std::uint32_t
GaloisField::logOf(std::uint32_t a) const
{
    dve_assert(a != 0 && a < size_, "log of zero/out-of-field element");
    return log_[a];
}

const GaloisField &
GaloisField::gf256()
{
    static const GaloisField f(8, 0x11D);
    return f;
}

const GaloisField &
GaloisField::gf65536()
{
    static const GaloisField f(16, 0x1100B);
    return f;
}

} // namespace dve
