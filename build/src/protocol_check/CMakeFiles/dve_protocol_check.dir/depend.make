# Empty dependencies file for dve_protocol_check.
# This may be replaced when dependencies are built.
