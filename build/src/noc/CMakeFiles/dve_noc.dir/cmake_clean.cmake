file(REMOVE_RECURSE
  "CMakeFiles/dve_noc.dir/interconnect.cc.o"
  "CMakeFiles/dve_noc.dir/interconnect.cc.o.d"
  "CMakeFiles/dve_noc.dir/mesh.cc.o"
  "CMakeFiles/dve_noc.dir/mesh.cc.o.d"
  "libdve_noc.a"
  "libdve_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
