file(REMOVE_RECURSE
  "libdve_coherence.a"
)
