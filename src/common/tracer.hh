/**
 * @file
 * Structured event tracer with Chrome trace_event export.
 *
 * Components emit typed, fixed-width records (request issue / recovery
 * divert / fabric retry / fence trip, epoch switch, fault arrive / heal,
 * repair begin / end) into a bounded ring buffer. The tracer is
 * ctor-gated: a capacity of zero disables it, and every record() call
 * then reduces to a single branch on a bool -- no allocation, no
 * formatting, no time queries -- so instrumented hot paths cost nothing
 * in ordinary (untraced) runs.
 *
 * Export is Chrome trace_event JSON ("chrome://tracing" / Perfetto):
 * records become complete ("X") or instant ("i") events, pid = socket,
 * tid = emitting component. Determinism: records are kept in emission
 * order, exported after a stable sort by timestamp (ties keep emission
 * order), and timestamps are formatted with a fixed "%.6f" microsecond
 * format (ticks are picoseconds, so the conversion is exact). Two runs
 * of the same seeded, single-threaded simulation therefore produce
 * byte-identical JSON.
 */

#ifndef DVE_COMMON_TRACER_HH
#define DVE_COMMON_TRACER_HH

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.hh"

namespace dve
{

/** What happened. Values are stable; they appear in exported JSON. */
enum class TraceKind : std::uint8_t
{
    Request,     ///< memory request serviced end-to-end (dur = latency)
    Divert,      ///< read diverted to the remote replica for recovery
    Retry,       ///< fabric send retry after a timeout (dur = wait)
    Fence,       ///< retry budget exhausted; link pair fenced
    EpochSwitch, ///< dynamic protocol switched allow/deny
    FaultArrive, ///< fault became active (arrival or reactivation)
    FaultHeal,   ///< fault deactivated (transient decay / repair)
    RepairBegin, ///< repair task admitted to the queue
    RepairEnd,   ///< repair task retired (healed or abandoned)
    /** Live invariant monitor fired: a = line address, b = monitor id
     *  (see InvariantMonitor in coherence/engine.hh). */
    InvariantViolation,
};

/** Which component emitted the record (Chrome tid). */
enum class TraceComp : std::uint8_t
{
    Core,    ///< request path (CoherenceEngine access)
    Dve,     ///< replication engine (diverts, epochs, repairs)
    Fabric,  ///< inter-socket links (retries, fences)
    Fault,   ///< fault-lifecycle engine
};

/** One fixed-width trace record; meaning of a/b depends on kind. */
struct TraceRecord
{
    Tick at = 0;       ///< event start, ticks (ps)
    Tick dur = 0;      ///< duration in ticks; 0 -> instant event
    TraceKind kind = TraceKind::Request;
    TraceComp comp = TraceComp::Core;
    std::uint8_t socket = 0;
    std::uint64_t a = 0; ///< usually the line/frame address
    std::uint64_t b = 0; ///< kind-specific detail (see exporter)
};

/** Bounded ring buffer of TraceRecords; disabled at capacity 0. */
class EventTracer
{
  public:
    explicit EventTracer(std::size_t capacity = 0) : capacity_(capacity)
    {
        if (capacity_ > 0)
            ring_.reserve(capacity_);
    }

    bool enabled() const { return capacity_ > 0; }

    /** Append a record, evicting the oldest once full. */
    void
    record(const TraceRecord &r)
    {
        if (capacity_ == 0)
            return;
        if (ring_.size() < capacity_)
            ring_.push_back(r);
        else
            ring_[head_ % capacity_] = r;
        ++head_;
    }

    /** Records currently retained (<= capacity). */
    std::size_t size() const { return ring_.size(); }

    /** Records evicted because the ring wrapped. */
    std::uint64_t dropped() const
    {
        return head_ > ring_.size() ? head_ - ring_.size() : 0;
    }

    void
    clear()
    {
        ring_.clear();
        head_ = 0;
    }

    /** Retained records, oldest first (unwraps the ring). */
    std::vector<TraceRecord> ordered() const;

    /** Write the full Chrome trace_event JSON document. */
    void exportChromeTrace(std::ostream &os) const;

  private:
    std::size_t capacity_;
    std::uint64_t head_ = 0; ///< total records ever emitted
    std::vector<TraceRecord> ring_;
};

} // namespace dve

#endif // DVE_COMMON_TRACER_HH
