/**
 * @file
 * Message-level transient-state model of Dvé's coherent-replication
 * protocols, for exhaustive model checking (the paper verifies its
 * protocols with Murphi; this module plays that role, Sec. V-C4).
 *
 * The base is the classic blocking directory MSI protocol (Sorin, Hill &
 * Wood, "A Primer on Memory Consistency and Cache Coherence", ch. 8):
 * caches move through transient states (IS_D, IM_AD, IM_A, SM_AD, SM_A,
 * MI_A, SI_A, II_A), invalidation acks flow to the requester, dirty data
 * flows cache-to-cache on forwards, and the home directory blocks
 * conflicting requests per line.
 *
 * On top of it sit the two replica-directory extensions:
 *
 *  - Deny: the replica directory serves a replica-side GetS from the
 *    local replica memory unless an RM entry exists. The home eagerly
 *    pushes RM (and collects the replica-side invalidations) before
 *    completing any home-side GetM. Writebacks update both memories and
 *    clear RM.
 *
 *  - Allow: the replica directory serves a GetS only with an explicit
 *    Readable permission, pulled from home on demand; the home registers
 *    the replica directory as a sharer and invalidates it like any other
 *    sharer on a GetM.
 *
 * One memory line is modelled. Writes produce globally unique values
 * (an auxiliary lastWrite counter), so the checker can state the
 * data-value invariant exactly: any cache holding S or M observes
 * lastWrite. Exploration is bounded by a per-cache operation budget;
 * within that bound every interleaving of the ordered point-to-point
 * channels is explored.
 */

#ifndef DVE_PROTOCOL_CHECK_MODEL_HH
#define DVE_PROTOCOL_CHECK_MODEL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dve
{
namespace pcheck
{

/** Which protocol family the replica directory runs. */
enum class CheckProtocol : std::uint8_t
{
    BaselineMsi, ///< no replica directory at all (validates the base)
    Allow,
    Deny,
};

const char *checkProtocolName(CheckProtocol p);

/** Model configuration. */
struct ModelConfig
{
    CheckProtocol protocol = CheckProtocol::Deny;
    unsigned homeCaches = 1;   ///< caches whose requests go to HD
    unsigned replicaCaches = 1;///< caches whose requests go to RD (<= 1)
    unsigned opBudget = 3;     ///< spontaneous ops per cache

    // Deliberate protocol mutations, used to demonstrate that the
    // checker detects real bugs (each reintroduces a hole the checker
    // found during development).
    bool bugSkipRmPush = false;   ///< deny: don't push RM on home GetM
    bool bugUnackedRdOwn = false; ///< grant before the RD acks RdOwn

    unsigned
    caches() const
    {
        return homeCaches
               + (protocol == CheckProtocol::BaselineMsi ? 0
                                                         : replicaCaches);
    }
};

/** Cache controller states (Primer ch. 8 naming). */
enum class CS : std::uint8_t
{
    I,
    IS_D,   ///< GetS issued, waiting Data
    IS_D_I, ///< ... but an Inv arrived: install then drop
    IM_AD,  ///< GetM issued, waiting Data and acks
    IM_A,   ///< GetM: Data received, acks outstanding
    S,
    SM_AD,
    SM_A,
    M,
    MI_A, ///< PutM issued, waiting PutAck
    SI_A, ///< was MI_A, downgraded by FwdGetS
    II_A, ///< was MI_A, invalidated by FwdGetM
};

const char *csName(CS s);

/** Home directory stable + transient states. */
enum class DS : std::uint8_t
{
    I,
    S,
    M,
    S_D, ///< FwdGetS outstanding, waiting owner data
};

const char *dsName(DS s);

/** Replica directory entry states. */
enum class RS : std::uint8_t
{
    None,     ///< deny: readable; allow: must pull
    Readable, ///< explicit permission (allow) / cached clean (deny)
    RM,       ///< remote-modified: replica stale
    M_rep,    ///< a replica-side cache owns the line
};

const char *rsName(RS s);

/** Message vocabulary. */
enum class MT : std::uint8_t
{
    GetS,
    GetM,
    PutM,    ///< carries data
    FwdGetS,
    FwdGetM,
    Inv,
    InvAck,
    PutAck,
    Data,    ///< carries data + ack count + grant state
    DataDir, ///< owner's copy to the home directory
    PermReq, ///< allow: RD pulls read permission for a replica cache
    PermAck, ///< allow: home grants (memories clean)
    RmPush,  ///< deny: home pushes remote-modified (ack flows as InvAck)
    RdOwn,   ///< home -> RD: a replica-side cache was granted M
    WbRd,    ///< home -> RD: replica memory update (+ entry refresh)
};

const char *mtName(MT t);

/** Network endpoints: caches 0..N-1, then HD, then RD. */
using Agent = std::uint8_t;

struct Message
{
    MT type = MT::GetS;
    Agent src = 0;
    Agent origin = 0;   ///< original requester (for forwards)
    std::uint8_t value = 0;
    std::int8_t acks = 0; ///< Data: invalidations the requester must await
    bool grantM = false;  ///< Data grants M (vs S)

    bool operator==(const Message &) const = default;
};

/** Full system state (value-semantic, hashable via encode()). */
struct State
{
    struct Cache
    {
        CS state = CS::I;
        std::uint8_t value = 0;
        std::int8_t acksNeeded = 0; ///< may go negative (early acks)
        bool hasData = false;
        std::uint8_t budget = 0;

        bool operator==(const Cache &) const = default;
    };

    struct HomeDir
    {
        DS state = DS::I;
        std::int8_t owner = -1;
        std::uint8_t sharers = 0; ///< bit per cache; bit 7 = RD
        std::uint8_t mem = 0;
        // Transaction context while in a transient state.
        std::int8_t pendingReq = -1;  ///< requester of the blocked txn
        bool pendingIsGetM = false;

        bool operator==(const HomeDir &) const = default;
    };

    struct RepDir
    {
        RS entry = RS::None;
        std::int8_t owner = -1;
        std::uint8_t repSharers = 0;
        std::uint8_t mem = 0;
        // Invalidation-collection context (allow Inv or deny RmPush).
        std::uint8_t pendingInvAcks = 0;
        std::int8_t invRequester = -1; ///< aggregated InvAck target
        // Allow permission-pull context.
        bool permPending = false;
        std::int8_t permRequester = -1; ///< replica cache awaiting data

        bool operator==(const RepDir &) const = default;
    };

    std::vector<Cache> caches;
    HomeDir hd;
    RepDir rd;
    /** Ordered channels, indexed src * agents + dst. */
    std::vector<std::vector<Message>> chan;
    std::uint8_t lastWrite = 0;

    bool operator==(const State &) const = default;

    /** Compact byte encoding for hashing/deduplication. */
    std::string encode() const;
};

/** The transition system. */
class Model
{
  public:
    explicit Model(const ModelConfig &cfg);

    const ModelConfig &config() const { return cfg_; }

    /** Number of network endpoints (caches + HD + RD). */
    unsigned agents() const { return nAgents_; }

    Agent hdId() const { return static_cast<Agent>(cfg_.caches()); }
    Agent rdId() const { return static_cast<Agent>(cfg_.caches() + 1); }

    /** The initial (all-invalid, quiescent) state. */
    State initial() const;

    /** A labelled successor state. */
    struct Successor
    {
        State state;
        std::string action;
    };

    /** All enabled transitions from @p s. */
    std::vector<Successor> successors(const State &s) const;

    /** Check all safety invariants; returns a description on violation. */
    std::optional<std::string> checkInvariants(const State &s) const;

    /** True when nothing is in flight and no cache is transient. */
    bool quiescent(const State &s) const;

    /** True when @p cache routes its requests to the replica dir. */
    bool
    isReplicaSide(unsigned cache) const
    {
        return cfg_.protocol != CheckProtocol::BaselineMsi
               && cache >= cfg_.homeCaches;
    }

  private:
    // Message delivery handlers; return false when the head must stall.
    bool deliverToCache(State &s, unsigned c, const Message &m) const;
    bool deliverToHd(State &s, const Message &m) const;
    bool deliverToRd(State &s, const Message &m) const;

    void send(State &s, Agent src, Agent dst, Message m) const;

    void cacheWriteCompletes(State &s, unsigned c) const;
    void maybeFinishGetM(State &s, unsigned c) const;

    /** Directory-side processing of a (possibly forwarded) GetS/GetM. */
    bool hdGets(State &s, Agent requester) const;
    bool hdGetm(State &s, Agent requester) const;
    void hdGrantM(State &s, Agent requester) const;

    ModelConfig cfg_;
    unsigned nAgents_;
};

} // namespace pcheck
} // namespace dve

#endif // DVE_PROTOCOL_CHECK_MODEL_HH
