#include "common/stats.hh"

#include "common/logging.hh"

namespace dve
{

void
StatGroup::add(const std::string &stat_name, const Counter &c)
{
    dve_assert(!has(stat_name), "duplicate stat ", name_, ".", stat_name);
    entries_.push_back({stat_name, &c, nullptr});
}

void
StatGroup::add(const std::string &stat_name, const ScalarStat &s)
{
    dve_assert(!has(stat_name), "duplicate stat ", name_, ".", stat_name);
    entries_.push_back({stat_name, nullptr, &s});
}

const StatGroup::Entry *
StatGroup::find(const std::string &stat_name) const
{
    for (const auto &e : entries_) {
        if (e.name == stat_name)
            return &e;
    }
    return nullptr;
}

bool
StatGroup::has(const std::string &stat_name) const
{
    return find(stat_name) != nullptr;
}

double
StatGroup::get(const std::string &stat_name) const
{
    const Entry *e = find(stat_name);
    if (!e)
        dve_panic("unknown stat ", name_, ".", stat_name);
    return e->counter ? static_cast<double>(e->counter->value())
                      : e->scalar->value();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &e : entries_) {
        const double v = e.counter ? static_cast<double>(e.counter->value())
                                   : e.scalar->value();
        os << name_ << '.' << e.name << ' ' << v << '\n';
    }
}

std::map<std::string, double>
StatGroup::snapshot() const
{
    std::map<std::string, double> out;
    for (const auto &e : entries_) {
        out[e.name] = e.counter ? static_cast<double>(e.counter->value())
                                : e.scalar->value();
    }
    return out;
}

} // namespace dve
