/**
 * @file
 * Unit tests for mesh routing and the system interconnect.
 */

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "noc/interconnect.hh"
#include "noc/mesh.hh"

namespace dve
{
namespace
{

TEST(Mesh, HopCountsMatchManhattanDistance)
{
    // On a mesh, shortest-path hops == Manhattan distance.
    const Mesh m(4, 2);
    for (unsigned s = 0; s < m.numNodes(); ++s) {
        for (unsigned d = 0; d < m.numNodes(); ++d) {
            const int sx = s % 4, sy = s / 4;
            const int dx = d % 4, dy = d / 4;
            const unsigned manhattan = std::abs(sx - dx) + std::abs(sy - dy);
            EXPECT_EQ(m.hops(s, d), manhattan) << s << "->" << d;
        }
    }
}

TEST(Mesh, RoutesAreShortestAndValid)
{
    const Mesh m(4, 4);
    for (unsigned s = 0; s < m.numNodes(); ++s) {
        for (unsigned d = 0; d < m.numNodes(); ++d) {
            const auto path = m.route(s, d);
            EXPECT_EQ(path.size(), m.hops(s, d));
            unsigned prev = s;
            for (unsigned v : path) {
                // Each step is to a mesh neighbor.
                const int px = prev % 4, py = prev / 4;
                const int vx = v % 4, vy = v / 4;
                EXPECT_EQ(std::abs(px - vx) + std::abs(py - vy), 1);
                prev = v;
            }
            if (!path.empty()) {
                EXPECT_EQ(path.back(), d);
            }
        }
    }
}

TEST(Mesh, RoutesAreDeterministic)
{
    const Mesh a(4, 2), b(4, 2);
    for (unsigned s = 0; s < a.numNodes(); ++s)
        for (unsigned d = 0; d < a.numNodes(); ++d)
            EXPECT_EQ(a.route(s, d), b.route(s, d));
}

TEST(Mesh, TraverseAccountsLinkLoads)
{
    Mesh m(4, 2);
    EXPECT_EQ(m.traverse(0, 3), 3u);
    EXPECT_EQ(m.totalLinkTraversals(), 3u);
    // Route 0->3 is along the top row: links 0-1, 1-2, 2-3.
    EXPECT_EQ(m.linkLoad(0, 1), 1u);
    EXPECT_EQ(m.linkLoad(1, 2), 1u);
    EXPECT_EQ(m.linkLoad(2, 3), 1u);
    EXPECT_EQ(m.linkLoad(3, 2), 0u); // directed

    m.resetTraffic();
    EXPECT_EQ(m.totalLinkTraversals(), 0u);
}

TEST(Mesh, SelfRouteIsEmpty)
{
    Mesh m(2, 2);
    EXPECT_EQ(m.hops(1, 1), 0u);
    EXPECT_TRUE(m.route(1, 1).empty());
    EXPECT_EQ(m.traverse(1, 1), 0u);
}

TEST(Mesh, MeanPairwiseHops2x4)
{
    const Mesh m(4, 2);
    // Exhaustive expectation computed from Manhattan distances.
    double total = 0;
    for (unsigned s = 0; s < 8; ++s)
        for (unsigned d = 0; d < 8; ++d)
            total += std::abs(int(s % 4) - int(d % 4))
                     + std::abs(int(s / 4) - int(d / 4));
    EXPECT_NEAR(m.meanPairwiseHops(), total / (8.0 * 7.0), 1e-12);
}

TEST(Mesh, DegenerateSingleNode)
{
    const Mesh m(1, 1);
    EXPECT_EQ(m.numNodes(), 1u);
    EXPECT_EQ(m.hops(0, 0), 0u);
}

TEST(Interconnect, IntraSocketLatencyIsHopsTimesCycle)
{
    NocConfig cfg;
    Interconnect ic(cfg);
    const NodeId a{0, 0}, b{0, 7};
    // 0 -> 7 in a 4x2 mesh is 4 hops (3 x + 1 y).
    EXPECT_EQ(ic.latency(a, b), 4 * cfg.hopLatency);
    EXPECT_EQ(ic.latency(a, a), 0u);
}

TEST(Interconnect, InterSocketLatencyAddsLinkAndGatewayHops)
{
    NocConfig cfg;
    Interconnect ic(cfg);
    const NodeId a{0, 0}, b{1, 0};
    // Gateway is tile 0 in both sockets: no mesh hops on either side.
    EXPECT_EQ(ic.latency(a, b), cfg.interSocketLatency);

    const NodeId c{1, 7};
    EXPECT_EQ(ic.latency(a, c), cfg.interSocketLatency + 4 * cfg.hopLatency);
}

TEST(Interconnect, TrafficAccounting)
{
    NocConfig cfg;
    Interconnect ic(cfg);
    ic.send({0, 1}, {0, 2}, MsgClass::Control);
    EXPECT_EQ(ic.interSocketMessages(), 0u);

    ic.send({0, 0}, {1, 0}, MsgClass::Control);
    ic.send({0, 0}, {1, 0}, MsgClass::Data);
    EXPECT_EQ(ic.interSocketMessages(), 2u);
    EXPECT_EQ(ic.interSocketBytes(),
              cfg.controlBytes + cfg.dataBytes);

    ic.resetTraffic();
    EXPECT_EQ(ic.interSocketMessages(), 0u);
    EXPECT_EQ(ic.interSocketBytes(), 0u);
}

TEST(Interconnect, StatsRegistered)
{
    Interconnect ic(NocConfig{});
    EXPECT_TRUE(ic.stats().has("inter_socket_bytes"));
    EXPECT_TRUE(ic.stats().has("intra_hops"));
}

TEST(Interconnect, LatencySensitivityKnob)
{
    NocConfig cfg;
    cfg.interSocketLatency = 30 * ticksPerNs;
    Interconnect fast(cfg);
    cfg.interSocketLatency = 60 * ticksPerNs;
    Interconnect slow(cfg);
    const NodeId a{0, 0}, b{1, 0};
    EXPECT_EQ(slow.latency(a, b) - fast.latency(a, b), 30 * ticksPerNs);
}

TEST(Interconnect, ControlVsDataByteSplit)
{
    NocConfig cfg;
    Interconnect ic(cfg);
    // 3 control + 2 data messages across sockets: the byte counter must
    // reflect the class mix exactly, and messages count class-blind.
    for (int i = 0; i < 3; ++i)
        ic.send({0, 0}, {1, 0}, MsgClass::Control);
    for (int i = 0; i < 2; ++i)
        ic.send({1, 0}, {0, 0}, MsgClass::Data);
    EXPECT_EQ(ic.interSocketMessages(), 5u);
    EXPECT_EQ(ic.interSocketBytes(),
              3 * cfg.controlBytes + 2 * cfg.dataBytes);
}

TEST(Interconnect, TrySendWithoutFaultsMatchesSend)
{
    NocConfig cfg;
    Interconnect plain(cfg), faulty(cfg);
    FaultRegistry reg;
    faulty.attachFaults(&reg, 42);

    // A fault-free trySend must be indistinguishable from send(): same
    // latency, same traffic accounting, Ok status.
    const NodeId a{0, 3}, b{1, 5};
    const Tick ref = plain.send(a, b, MsgClass::Data);
    const auto r = faulty.trySend(a, b, MsgClass::Data);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.latency, ref);
    EXPECT_EQ(faulty.interSocketMessages(), plain.interSocketMessages());
    EXPECT_EQ(faulty.interSocketBytes(), plain.interSocketBytes());
    EXPECT_EQ(faulty.droppedMessages(), 0u);
    EXPECT_EQ(faulty.failedSends(), 0u);
}

TEST(Interconnect, TrySendOverDownedLinkFailsWithoutTraffic)
{
    Interconnect ic(NocConfig{});
    FaultRegistry reg;
    ic.attachFaults(&reg, 1);

    FaultDescriptor f;
    f.scope = FaultScope::LinkDown;
    f.socket = 0;
    f.peer = 1;
    reg.inject(f);

    EXPECT_FALSE(ic.pathUp(0, 1));
    EXPECT_FALSE(ic.pathUp(1, 0)); // links are unordered
    const auto r = ic.trySend({0, 0}, {1, 0}, MsgClass::Data);
    EXPECT_EQ(r.status, SendStatus::LinkFailed);
    EXPECT_EQ(r.latency, 0u);
    EXPECT_EQ(ic.failedSends(), 1u);
    // Nothing crossed the fabric: no bytes, no messages.
    EXPECT_EQ(ic.interSocketMessages(), 0u);
    EXPECT_EQ(ic.interSocketBytes(), 0u);

    // Intra-socket traffic never touches the inter-socket link.
    EXPECT_TRUE(ic.trySend({0, 0}, {0, 5}, MsgClass::Data).ok());
}

TEST(Interconnect, SocketOfflineDownsEveryAdjacentLink)
{
    Interconnect ic(NocConfig{});
    FaultRegistry reg;
    ic.attachFaults(&reg, 1);

    FaultDescriptor f;
    f.scope = FaultScope::SocketOffline;
    f.socket = 1;
    reg.inject(f);

    EXPECT_FALSE(ic.pathUp(0, 1));
    EXPECT_FALSE(ic.trySend({0, 0}, {1, 0}, MsgClass::Control).ok());
    EXPECT_EQ(ic.failedSends(), 1u);
}

TEST(Interconnect, LossyLinkDropsAndDelaysDeterministically)
{
    NocConfig cfg;
    Interconnect a(cfg), b(cfg);
    FaultRegistry ra, rb;
    a.attachFaults(&ra, 7);
    b.attachFaults(&rb, 7);

    FaultDescriptor f;
    f.scope = FaultScope::LinkLossy;
    f.socket = 0;
    f.peer = 1;
    f.dropProb = 0.5;
    f.delayTicks = 123;
    ra.inject(f);
    rb.inject(f);

    // Same seed, same fault -> identical drop/delay sequences.
    unsigned drops = 0, delivered = 0;
    for (int i = 0; i < 200; ++i) {
        const auto x = a.trySend({0, 0}, {1, 0}, MsgClass::Data);
        const auto y = b.trySend({0, 0}, {1, 0}, MsgClass::Data);
        EXPECT_EQ(x.status, y.status);
        EXPECT_EQ(x.latency, y.latency);
        if (x.status == SendStatus::Dropped) {
            ++drops;
        } else {
            ++delivered;
            // Delivered messages pay the configured extra delay.
            EXPECT_EQ(x.latency,
                      a.latency({0, 0}, {1, 0}) + f.delayTicks);
        }
    }
    // p=0.5 over 200 draws: both outcomes must occur.
    EXPECT_GT(drops, 0u);
    EXPECT_GT(delivered, 0u);
    EXPECT_EQ(a.droppedMessages(), drops);
    EXPECT_EQ(a.delayedMessages(), delivered);
    // The link is lossy, not down.
    EXPECT_TRUE(a.pathUp(0, 1));
    EXPECT_EQ(a.failedSends(), 0u);
}

TEST(Interconnect, LossyRngNotConsumedOnCleanPaths)
{
    // Intra-socket and fault-free sends must not advance the lossy RNG,
    // so adding traffic elsewhere never perturbs the drop sequence.
    NocConfig cfg;
    Interconnect a(cfg), b(cfg);
    FaultRegistry ra, rb;
    a.attachFaults(&ra, 9);
    b.attachFaults(&rb, 9);

    FaultDescriptor f;
    f.scope = FaultScope::LinkLossy;
    f.socket = 0;
    f.peer = 1;
    f.dropProb = 0.3;
    ra.inject(f);
    rb.inject(f);

    for (int i = 0; i < 50; ++i)
        b.trySend({0, 0}, {0, 3}, MsgClass::Data); // clean: no draw
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(a.trySend({0, 0}, {1, 0}, MsgClass::Data).status,
                  b.trySend({0, 0}, {1, 0}, MsgClass::Data).status);
    }
}

TEST(Interconnect, FabricStatsRegisteredAndReset)
{
    Interconnect ic(NocConfig{});
    EXPECT_TRUE(ic.stats().has("dropped_messages"));
    EXPECT_TRUE(ic.stats().has("failed_sends"));
    EXPECT_TRUE(ic.stats().has("delayed_messages"));

    FaultRegistry reg;
    ic.attachFaults(&reg, 1);
    FaultDescriptor f;
    f.scope = FaultScope::LinkDown;
    f.socket = 0;
    f.peer = 1;
    reg.inject(f);
    ic.trySend({0, 0}, {1, 0}, MsgClass::Data);
    EXPECT_EQ(ic.failedSends(), 1u);
    ic.resetTraffic();
    EXPECT_EQ(ic.failedSends(), 0u);
    EXPECT_EQ(ic.droppedMessages(), 0u);
    EXPECT_EQ(ic.delayedMessages(), 0u);
}

} // namespace
} // namespace dve
