#include "coherence/engine.hh"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/logging.hh"

namespace dve
{

const char *
lineStateName(LineState s)
{
    switch (s) {
      case LineState::I: return "I";
      case LineState::S: return "S";
      case LineState::M: return "M";
      case LineState::O: return "O";
    }
    return "?";
}

const char *
readOutcomeName(ReadOutcome o)
{
    switch (o) {
      case ReadOutcome::Clean: return "clean";
      case ReadOutcome::Corrected: return "corrected";
      case ReadOutcome::Due: return "due";
      case ReadOutcome::Sdc: return "sdc";
    }
    return "?";
}

const char *
invariantMonitorName(InvariantMonitor m)
{
    switch (m) {
      case InvariantMonitor::Swmr: return "swmr";
      case InvariantMonitor::DataValue: return "data-value";
      case InvariantMonitor::ReplicaDir: return "replica-dir";
      case InvariantMonitor::DegradedHonesty: return "degraded-honesty";
      case InvariantMonitor::Liveness: return "liveness";
      case InvariantMonitor::Metadata: return "metadata";
    }
    return "?";
}

std::optional<InvariantMonitor>
parseInvariantMonitor(const char *name)
{
    if (!name)
        return std::nullopt;
    for (unsigned i = 0; i < numInvariantMonitors; ++i) {
        const auto m = static_cast<InvariantMonitor>(i);
        if (std::strcmp(name, invariantMonitorName(m)) == 0)
            return m;
    }
    return std::nullopt;
}

const char *
reqClassName(ReqClass c)
{
    switch (c) {
      case ReqClass::PrivateRead: return "private-read";
      case ReqClass::ReadOnly: return "read-only";
      case ReqClass::ReadWrite: return "read-write";
      case ReqClass::PrivateReadWrite: return "private-read-write";
    }
    return "?";
}

CoherenceEngine::SocketState::SocketState(const EngineConfig &cfg,
                                          unsigned socket,
                                          FaultRegistry *faults)
    : llc(SetAssocCache<LlcEntry>::fromCapacity(cfg.llcBytes, cfg.llcWays)),
      dir(socket)
{
    for (unsigned c = 0; c < cfg.coresPerSocket; ++c) {
        l1.push_back(
            SetAssocCache<L1Entry>::fromCapacity(cfg.l1Bytes, cfg.l1Ways));
    }
    mc = std::make_unique<MemoryController>(
        "mem" + std::to_string(socket), socket, cfg.dram, cfg.scheme,
        cfg.mirror, faults, cfg.seed * 7919 + socket);
}

namespace
{

NocConfig
nocFor(const EngineConfig &cfg)
{
    NocConfig noc = cfg.noc;
    noc.sockets = cfg.sockets;
    noc.hopLatency = cfg.coreClock().period(); // 1 core cycle per hop
    return noc;
}

} // namespace

CoherenceEngine::CoherenceEngine(const EngineConfig &cfg)
    : cfg_(cfg), clk_(cfg.coreFreqMhz), ic_(nocFor(cfg)), stats_("engine"),
      tracer_(cfg.traceCapacity)
{
    cfg_.noc = ic_.config();
    dve_assert(cfg_.sockets >= 1, "need at least one socket");
    dve_assert(cfg_.coresPerSocket
                   <= cfg_.noc.meshCols * cfg_.noc.meshRows,
               "more cores than mesh tiles");

    // Injected faults are validated against the DRAM organization; the
    // global channel-id space covers mirrored/RAIM copies, and the chip
    // bound is the symbol span of the configured line codec.
    const unsigned channels = cfg_.mirror == MirrorMode::Raim ? 5
                              : cfg_.mirror != MirrorMode::None
                                  ? 2
                                  : cfg_.dram.channels;
    faults_.setGeometry(FaultGeometry::from(
        cfg_.sockets, channels, LineCodec(cfg_.scheme).chips(),
        cfg_.dram));

    // Fabric faults: trySend consults the registry per inter-socket
    // message; the lossy-link RNG stream is derived from the run seed.
    ic_.attachFaults(&faults_, cfg_.seed * 1000003 + 77);

    sockets_.reserve(cfg_.sockets);
    for (unsigned s = 0; s < cfg_.sockets; ++s)
        sockets_.emplace_back(cfg_, s, &faults_);

    stats_.add("reads", reads_);
    stats_.add("writes", writes_);
    stats_.add("l1_hits", l1Hits_);
    stats_.add("llc_hits", llcHits_);
    stats_.add("llc_misses", llcMisses_);
    stats_.add("writebacks", writebacks_);
    stats_.add("machine_checks", due_);
    stats_.add("system_corrected_errors", sysCe_);
    stats_.add("sdc_reads", sdcReads_);
    stats_.add("oracle_clean", outcomeCount_[0]);
    stats_.add("oracle_corrected", outcomeCount_[1]);
    stats_.add("oracle_due", outcomeCount_[2]);
    stats_.add("oracle_sdc", outcomeCount_[3]);
    stats_.add("class_private_read", classCount_[0]);
    stats_.add("class_read_only", classCount_[1]);
    stats_.add("class_read_write", classCount_[2]);
    stats_.add("class_private_read_write", classCount_[3]);
    stats_.add("miss_latency_sum_ticks", missLatencySum_);
    stats_.add("req_latency", reqLatency_);
}

void
CoherenceEngine::classify(bool is_write, LineState state)
{
    ReqClass c;
    if (!is_write) {
        c = state == LineState::I   ? ReqClass::PrivateRead
            : state == LineState::S ? ReqClass::ReadOnly
                                    : ReqClass::ReadWrite;
    } else {
        c = state == LineState::I ? ReqClass::PrivateReadWrite
                                  : ReqClass::ReadWrite;
    }
    ++pend_.cls[static_cast<unsigned>(c)];
}

void
CoherenceEngine::flushPending() const
{
    reads_ += pend_.reads;
    writes_ += pend_.writes;
    l1Hits_ += pend_.l1Hits;
    llcHits_ += pend_.llcHits;
    llcMisses_ += pend_.llcMisses;
    writebacks_ += pend_.writebacks;
    for (unsigned i = 0; i < numReadOutcomes; ++i)
        outcomeCount_[i] += pend_.outcome[i];
    for (unsigned i = 0; i < numReqClasses; ++i)
        classCount_[i] += pend_.cls[i];
    missLatencySum_ += pend_.missLatency;
    for (unsigned i = 0; i < pend_.nLat; ++i)
        reqLatency_.record(pend_.lat[i]);
    pend_ = PendingStats{};
}

void
CoherenceEngine::reportViolation(InvariantMonitor m, Tick at, Addr line,
                                 std::string detail)
{
    InvariantViolation v;
    v.monitor = m;
    v.at = at;
    v.line = line;
    v.detail = std::move(detail);
    // Attach the tracer tail BEFORE mirroring the violation itself, so
    // the report shows what led up to the firing.
    constexpr std::size_t tail = 16;
    v.recentEvents = tracer_.ordered();
    if (v.recentEvents.size() > tail) {
        v.recentEvents.erase(v.recentEvents.begin(),
                             v.recentEvents.end() - tail);
    }
    tracer_.record({at, 0, TraceKind::InvariantViolation, TraceComp::Core,
                    static_cast<std::uint8_t>(homeSocket(line)), line,
                    static_cast<std::uint64_t>(m)});
    violations_.push_back(std::move(v));
}

bool
CoherenceEngine::dueHasCause(Addr) const
{
    // The baseline has no second copy: any active fault legitimizes a
    // machine check. A DUE on a fault-free system is a bookkeeping bug.
    return faults_.activeCount() > 0;
}

void
CoherenceEngine::checkInvariants(Tick now)
{
    // Home-directory entry sanity: M/O needs a registered owner; M is
    // exclusive by definition. The directory iterates in layout order,
    // so collect and sort by line to keep reports deterministic.
    for (unsigned h = 0; h < cfg_.sockets; ++h) {
        std::vector<std::pair<Addr, const char *>> bad;
        sockets_[h].dir.forEach([&](Addr line, const DirEntry &e) {
            if ((e.state == LineState::M || e.state == LineState::O)
                && (e.owner < 0
                    || !e.hasSharer(static_cast<unsigned>(e.owner)))) {
                bad.emplace_back(line,
                                 "M/O home entry without registered owner");
            }
            if (e.state == LineState::M && e.sharerCount() > 1) {
                bad.emplace_back(line,
                                 "exclusive home entry with multiple "
                                 "sharers");
            }
        });
        std::stable_sort(bad.begin(), bad.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        for (const auto &[line, msg] : bad)
            reportViolation(InvariantMonitor::Swmr, now, line, msg);
    }

    // One writable copy system-wide, and LLC/L1 inclusion bookkeeping.
    // std::map keeps the violation order deterministic across runs.
    std::map<Addr, unsigned> modifiedCopies;
    for (unsigned s = 0; s < cfg_.sockets; ++s) {
        auto &sk = sockets_[s];
        sk.llc.forEach([&](Addr line, LlcEntry &e) {
            if (e.state == LineState::M)
                ++modifiedCopies[line];
            for (unsigned c = 0; c < cfg_.coresPerSocket; ++c) {
                const bool tracked = e.l1Sharers & (1u << c);
                const L1Entry *l1e = sk.l1[c].peek(line);
                if (tracked && !l1e) {
                    reportViolation(InvariantMonitor::Swmr, now, line,
                                    "LLC tracks an absent L1 copy");
                }
                if (l1e && l1e->writable
                    && e.l1Owner != static_cast<int>(c)) {
                    reportViolation(InvariantMonitor::Swmr, now, line,
                                    "writable L1 copy is not the "
                                    "registered L1 owner");
                }
            }
            if (e.l1Owner >= 0) {
                const L1Entry *oe =
                    sk.l1[static_cast<unsigned>(e.l1Owner)].peek(line);
                if (!oe || !oe->writable) {
                    reportViolation(InvariantMonitor::Swmr, now, line,
                                    "registered L1 owner lost its "
                                    "writable copy");
                }
            }
        });
    }
    for (const auto &[line, n] : modifiedCopies) {
        if (n > 1) {
            reportViolation(InvariantMonitor::Swmr, now, line,
                            "multiple modified LLC copies system-wide");
        }
    }
}

void
CoherenceEngine::auditAccess(Addr line, const AccessResult &r, Tick now)
{
    if (r.outcome == ReadOutcome::Sdc) {
        reportViolation(InvariantMonitor::DataValue, r.done, line,
                        "read committed a value differing from the "
                        "golden image");
    } else if (r.outcome == ReadOutcome::Due && !dueHasCause(line)) {
        reportViolation(InvariantMonitor::DegradedHonesty, r.done, line,
                        "machine check raised with no active fault, "
                        "degraded copy or fenced link");
    }
    if (r.done - now > cfg_.watchdogBudget) {
        reportViolation(InvariantMonitor::Liveness, r.done, line,
                        "access exceeded the no-wedge watchdog budget");
    }
    checkInvariants(r.done);
}

AccessResult
CoherenceEngine::access(unsigned socket, unsigned core, Addr addr,
                        bool is_write, std::uint64_t write_value, Tick now)
{
    dve_assert(socket < cfg_.sockets && core < cfg_.coresPerSocket,
               "core id out of range");
    const Addr line = lineNum(addr);

    if (is_write) {
        ++pend_.writes;
        // Transactions serialize in processing order, which is also the
        // order writes gain ownership, so the logical image updates here.
        logicalMem_[line] = write_value;
    } else {
        ++pend_.reads;
    }

    auto &l1 = sockets_[socket].l1[core];
    const Tick t_l1 = now + cycles(cfg_.l1Latency);

    // Oracle baselines: any CE / machine check raised while servicing
    // this access shows up as a counter delta and classifies the outcome.
    const std::uint64_t ce0 = sysCe_.value();
    const std::uint64_t due0 = due_.value();

    if (L1Entry *e = l1.find(line)) {
        if (!is_write) {
            ++pend_.l1Hits;
            ReadOutcome out = ReadOutcome::Clean;
            if (e->value != logicalValue(line)) {
                out = ReadOutcome::Sdc;
                ++sdcReads_;
                if (cfg_.validateValues) {
                    dve_panic("L1 read value mismatch on line ", line);
                }
            }
            ++pend_.outcome[static_cast<unsigned>(out)];
            noteCompletion(t_l1);
            noteLatency(t_l1 - now);
            if (tracer_.enabled()) {
                tracer_.record({now, t_l1 - now, TraceKind::Request,
                                TraceComp::Core,
                                static_cast<std::uint8_t>(socket), line,
                                0});
            }
            const AccessResult res{t_l1, e->value, out};
            if (cfg_.invariantChecks)
                auditAccess(line, res, now);
            return res;
        }
        if (e->writable) {
            ++pend_.l1Hits;
            e->value = write_value;
            e->dirty = true;
            ++pend_.outcome[static_cast<unsigned>(ReadOutcome::Clean)];
            noteCompletion(t_l1);
            noteLatency(t_l1 - now);
            if (tracer_.enabled()) {
                tracer_.record({now, t_l1 - now, TraceKind::Request,
                                TraceComp::Core,
                                static_cast<std::uint8_t>(socket), line,
                                1});
            }
            const AccessResult res{t_l1, write_value, ReadOutcome::Clean};
            if (cfg_.invariantChecks)
                auditAccess(line, res, now);
            return res;
        }
        // Write to a shared copy: upgrade through the LLC path below.
    }

    AccessResult r = accessLlc(socket, core, line, is_write, write_value,
                               t_l1);
    if (!is_write && r.value != logicalValue(line)) {
        r.outcome = ReadOutcome::Sdc;
        ++sdcReads_;
        if (cfg_.validateValues)
            dve_panic("read value mismatch on line ", line);
    } else if (due_.value() > due0) {
        r.outcome = ReadOutcome::Due;
    } else if (sysCe_.value() > ce0) {
        r.outcome = ReadOutcome::Corrected;
    }
    ++pend_.outcome[static_cast<unsigned>(r.outcome)];
    noteCompletion(r.done);
    noteLatency(r.done - now);
    if (tracer_.enabled()) {
        tracer_.record({now, r.done - now, TraceKind::Request,
                        TraceComp::Core,
                        static_cast<std::uint8_t>(socket), line,
                        is_write ? 1u : 0u});
    }
    if (cfg_.invariantChecks)
        auditAccess(line, r, now);
    return r;
}

Tick
CoherenceEngine::recallL1Owner(unsigned socket, Addr line, LlcEntry &e,
                               Tick when)
{
    if (e.l1Owner < 0)
        return when;
    const unsigned owner = static_cast<unsigned>(e.l1Owner);
    const NodeId sn = sliceNode(socket, line);
    const NodeId on = coreNode(socket, owner);

    Tick t = when + ic_.send(sn, on, MsgClass::Control);
    t += cycles(cfg_.l1Latency);

    L1Entry *l1e = sockets_[socket].l1[owner].find(line);
    dve_assert(l1e, "L1 owner lost its line (inclusion broken)");
    if (l1e->dirty) {
        e.value = l1e->value;
        e.dirty = true;
    }
    l1e->writable = false;
    l1e->dirty = false;
    e.l1Owner = -1;

    t += ic_.send(on, sn, MsgClass::Data);
    return t;
}

void
CoherenceEngine::fillL1(unsigned socket, unsigned core, Addr line,
                        bool writable, std::uint64_t value)
{
    auto &l1 = sockets_[socket].l1[core];
    if (L1Entry *e = l1.find(line)) {
        e->writable = writable;
        e->dirty = writable;
        e->value = value;
        return;
    }
    auto evicted = l1.insert(line, L1Entry{writable, writable, value});
    if (!evicted)
        return;
    // L1 victim: fold into the (inclusive) LLC entry.
    LlcEntry *le = sockets_[socket].llc.find(evicted->lineNum);
    dve_assert(le, "L1 victim not present in LLC (inclusion broken)");
    if (evicted->entry.dirty) {
        le->value = evicted->entry.value;
        le->dirty = true;
    }
    le->l1Sharers &= static_cast<std::uint8_t>(~(1u << core));
    if (le->l1Owner == static_cast<int>(core))
        le->l1Owner = -1;
}

Tick
CoherenceEngine::invalidateSocketCopy(unsigned socket, Addr line, Tick when)
{
    const Tick t = when + cycles(cfg_.llcLatency);
    auto &sk = sockets_[socket];
    LlcEntry *e = sk.llc.find(line);
    if (!e)
        return t; // stale sharer bit: nothing to do
    for (unsigned c = 0; c < cfg_.coresPerSocket; ++c) {
        if (e->l1Sharers & (1u << c))
            sk.l1[c].erase(line);
    }
    sk.llc.erase(line);
    return t;
}

void
CoherenceEngine::evictLlcVictim(unsigned socket, Addr line, LlcEntry entry,
                                Tick when)
{
    auto &sk = sockets_[socket];
    // Back-invalidate L1 copies (inclusive hierarchy), folding dirty data.
    for (unsigned c = 0; c < cfg_.coresPerSocket; ++c) {
        if (!(entry.l1Sharers & (1u << c)))
            continue;
        if (L1Entry *l1e = sk.l1[c].find(line)) {
            if (l1e->dirty) {
                entry.value = l1e->value;
                entry.dirty = true;
            }
            sk.l1[c].erase(line);
        }
    }
    if (entry.state == LineState::M || entry.state == LineState::O) {
        ++pend_.writebacks;
        putM(socket, line, entry.value, when);
    }
    // Shared clean lines drop silently; home sharer bits go stale, which
    // later invalidations tolerate.
}

void
CoherenceEngine::putM(unsigned from_socket, Addr line, std::uint64_t value,
                      Tick t_slice)
{
    const unsigned h = homeSocket(line);
    const Tick arrival =
        t_slice
        + ic_.send(sliceNode(from_socket, line), dirNode(h),
                   MsgClass::Data);
    auto &dir = sockets_[h].dir;
    const Tick start = dir.acquire(line, arrival) + cycles(cfg_.dirLatency);

    DirEntry *e = dir.find(line);
    dve_assert(e && e->owner == static_cast<int>(from_socket),
               "writeback from non-owner socket for line ", line);

    const Tick wb_done = writebackToMemory(h, line, value, start);

    const bool retain =
        retainSharerAfterWriteback(h, line, from_socket);
    if (!retain)
        e->removeSharer(from_socket);
    if (!retain && (e->state == LineState::M || e->sharers == 0)) {
        dir.drop(line);
    } else {
        e->state = LineState::S;
        e->owner = -1;
    }
    dir.release(line, wb_done);
}

CoherenceEngine::MissResult
CoherenceEngine::homeGets(unsigned req_socket, Addr line, Tick start,
                          NodeId dest)
{
    const unsigned h = homeSocket(line);
    DirEntry &e = sockets_[h].dir.lookup(line);
    classify(false, e.state);

    MissResult res;
    if (e.state == LineState::I || e.state == LineState::S) {
        const MemRead m = readMemoryChecked(h, line, start);
        res.value = m.value;
        res.done = m.ready + ic_.send(dirNode(h), dest, MsgClass::Data);
        e.state = LineState::S;
        e.addSharer(req_socket);
        return res;
    }

    // M or O: fetch from the owning socket's LLC; owner retains dirty
    // data in O (MOSI), memory is not updated.
    dve_assert(e.owner >= 0, "M/O entry without owner");
    const unsigned o = static_cast<unsigned>(e.owner);
    dve_assert(o != req_socket, "owner missed its own line");

    const NodeId osn = sliceNode(o, line);
    Tick t = start + ic_.send(dirNode(h), osn, MsgClass::Control);
    t += cycles(cfg_.llcLatency);
    LlcEntry *oe = sockets_[o].llc.find(line);
    dve_assert(oe, "directory points at socket without the line");
    t = recallL1Owner(o, line, *oe, t);
    oe->state = LineState::O;

    res.value = oe->value;
    res.dirtyData = true;
    res.done = t + ic_.send(osn, dest, MsgClass::Data);

    e.state = LineState::O;
    e.addSharer(req_socket);
    return res;
}

CoherenceEngine::MissResult
CoherenceEngine::homeGetx(unsigned req_socket, Addr line, Tick start,
                          NodeId dest)
{
    const unsigned h = homeSocket(line);
    DirEntry &e = sockets_[h].dir.lookup(line);
    classify(true, e.state);

    MissResult res;
    Tick data_path = 0;
    Tick inval_path = start;

    auto invalidateSharer = [&](unsigned x) {
        Tick ti = start
                  + ic_.send(dirNode(h), sliceNode(x, line),
                             MsgClass::Control);
        ti = invalidateSocketCopy(x, line, ti);
        ti += ic_.send(sliceNode(x, line), dest, MsgClass::Control);
        inval_path = std::max(inval_path, ti);
    };

    if (e.state == LineState::I) {
        const MemRead m = readMemoryChecked(h, line, start);
        res.value = m.value;
        data_path = m.ready + ic_.send(dirNode(h), dest, MsgClass::Data);
    } else if (e.state == LineState::S) {
        for (unsigned x = 0; x < cfg_.sockets; ++x) {
            if (x != req_socket && e.hasSharer(x))
                invalidateSharer(x);
        }
        LlcEntry *re = sockets_[req_socket].llc.find(line);
        if (e.hasSharer(req_socket) && re) {
            // Upgrade: permission grant only, data already local.
            res.value = re->value;
            data_path =
                start + ic_.send(dirNode(h), dest, MsgClass::Control);
        } else {
            const MemRead m = readMemoryChecked(h, line, start);
            res.value = m.value;
            data_path =
                m.ready + ic_.send(dirNode(h), dest, MsgClass::Data);
        }
    } else {
        // M or O.
        dve_assert(e.owner >= 0, "M/O entry without owner");
        const unsigned o = static_cast<unsigned>(e.owner);
        if (o == req_socket) {
            // Upgrade from O: data local, invalidate the other sharers.
            LlcEntry *re = sockets_[req_socket].llc.find(line);
            dve_assert(re, "owner socket lost its line");
            res.value = re->value;
            res.dirtyData = true;
            data_path =
                start + ic_.send(dirNode(h), dest, MsgClass::Control);
        } else {
            const NodeId osn = sliceNode(o, line);
            Tick t = start + ic_.send(dirNode(h), osn, MsgClass::Control);
            t += cycles(cfg_.llcLatency);
            LlcEntry *oe = sockets_[o].llc.find(line);
            dve_assert(oe, "directory points at socket without the line");
            t = recallL1Owner(o, line, *oe, t);
            res.value = oe->value;
            res.dirtyData = oe->dirty;
            data_path = t + ic_.send(osn, dest, MsgClass::Data);
            invalidateSocketCopy(o, line, t); // ownership transfers
        }
        for (unsigned x = 0; x < cfg_.sockets; ++x) {
            if (x != req_socket && x != o && e.hasSharer(x))
                invalidateSharer(x);
        }
    }

    const std::uint32_t prev_sharers = e.sharers;
    e.state = LineState::M;
    e.sharers = 1u << req_socket;
    e.owner = static_cast<int>(req_socket);

    const Tick hook_done =
        grantedExclusive(h, line, req_socket, start, prev_sharers);
    res.done = std::max({data_path, inval_path, hook_done});
    return res;
}

CoherenceEngine::MissResult
CoherenceEngine::serviceLlcMiss(unsigned socket, Addr line, bool is_write,
                                Tick t_slice)
{
    const unsigned h = homeSocket(line);
    const NodeId dest = sliceNode(socket, line);
    const Tick arrival =
        t_slice + ic_.send(dest, dirNode(h), MsgClass::Control);
    auto &dir = sockets_[h].dir;
    const Tick start =
        dir.acquire(line, arrival) + cycles(cfg_.dirLatency);
    const MissResult r = is_write ? homeGetx(socket, line, start, dest)
                                  : homeGets(socket, line, start, dest);
    dir.release(line, r.done);
    return r;
}

AccessResult
CoherenceEngine::accessLlc(unsigned socket, unsigned core, Addr line,
                           bool is_write, std::uint64_t write_value,
                           Tick t0)
{
    auto &sk = sockets_[socket];
    const NodeId cn = coreNode(socket, core);
    const NodeId sn = sliceNode(socket, line);

    Tick t = t0 + ic_.send(cn, sn, MsgClass::Control)
             + cycles(cfg_.llcLatency);

    LlcEntry *e = sk.llc.find(line);

    if (e && (!is_write || e->state == LineState::M)) {
        ++pend_.llcHits;
        if (e->l1Owner >= 0 && static_cast<unsigned>(e->l1Owner) != core)
            t = recallL1Owner(socket, line, *e, t);

        if (is_write) {
            const std::uint8_t others =
                e->l1Sharers & static_cast<std::uint8_t>(~(1u << core));
            if (others) {
                Tick worst = t;
                for (unsigned x = 0; x < cfg_.coresPerSocket; ++x) {
                    if (!(others & (1u << x)))
                        continue;
                    Tick ti = t
                              + ic_.send(sn, coreNode(socket, x),
                                         MsgClass::Control)
                              + cycles(cfg_.l1Latency);
                    sk.l1[x].erase(line);
                    ti += ic_.send(coreNode(socket, x), sn,
                                   MsgClass::Control);
                    worst = std::max(worst, ti);
                }
                t = worst;
            }
            e->l1Sharers = static_cast<std::uint8_t>(1u << core);
            e->l1Owner = static_cast<int>(core);
        } else {
            e->l1Sharers |= static_cast<std::uint8_t>(1u << core);
        }

        const std::uint64_t value = is_write ? write_value : e->value;
        fillL1(socket, core, line, is_write, value);
        const Tick done = t + ic_.send(sn, cn, MsgClass::Data);
        return {done, value};
    }

    // LLC miss (no entry) or upgrade (entry without write permission).
    ++pend_.llcMisses;
    const bool upgrade = e != nullptr;

    const MissResult m = serviceLlcMiss(socket, line, is_write, t);
    pend_.missLatency += static_cast<double>(m.done - t0);

    if (upgrade) {
        e = sk.llc.find(line);
        dve_assert(e, "upgrade entry vanished mid-transaction");
        e->state = LineState::M;
        if (m.dirtyData)
            e->dirty = true;
    } else {
        LlcEntry fresh;
        fresh.state = is_write ? LineState::M : LineState::S;
        fresh.dirty = m.dirtyData;
        fresh.value = m.value;
        auto evicted = sk.llc.insert(line, fresh);
        if (evicted)
            evictLlcVictim(socket, evicted->lineNum, evicted->entry,
                           m.done);
        e = sk.llc.find(line);
    }

    if (is_write) {
        // Invalidate other local L1 copies (only possible on upgrades;
        // the invalidations overlap the global GETX, so they add traffic
        // but not critical-path latency).
        const std::uint8_t others =
            e->l1Sharers & static_cast<std::uint8_t>(~(1u << core));
        for (unsigned x = 0; x < cfg_.coresPerSocket; ++x) {
            if (!(others & (1u << x)))
                continue;
            ic_.send(sn, coreNode(socket, x), MsgClass::Control);
            sk.l1[x].erase(line);
            ic_.send(coreNode(socket, x), sn, MsgClass::Control);
        }
        e->l1Sharers = static_cast<std::uint8_t>(1u << core);
        e->l1Owner = static_cast<int>(core);
    } else {
        e->l1Sharers |= static_cast<std::uint8_t>(1u << core);
    }

    const std::uint64_t value = is_write ? write_value : e->value;
    fillL1(socket, core, line, is_write, value);
    const Tick done = m.done + ic_.send(sn, cn, MsgClass::Data);
    return {done, value};
}

CoherenceEngine::MemRead
CoherenceEngine::readMemoryChecked(unsigned home, Addr line, Tick when)
{
    const auto m = sockets_[home].mc->read(line << lineShift, when);
    if (m.status == EccStatus::Corrected)
        ++sysCe_;
    if (m.failed) {
        // Baseline has no second copy: detected-uncorrectable error.
        // Log a machine check and continue with the logical value
        // (modelling a post-MCE software restore) so runs can proceed.
        ++due_;
        return {m.readyAt, logicalValue(line)};
    }
    return {m.readyAt, m.value};
}

Tick
CoherenceEngine::writebackToMemory(unsigned home, Addr line,
                                   std::uint64_t value, Tick when)
{
    return sockets_[home].mc->write(line << lineShift, value, when);
}

Tick
CoherenceEngine::grantedExclusive(unsigned, Addr, unsigned, Tick start,
                                  std::uint32_t)
{
    return start;
}

bool
CoherenceEngine::retainSharerAfterWriteback(unsigned, Addr, unsigned)
{
    return false;
}

void
CoherenceEngine::dumpStats(std::ostream &os) const
{
    flushPending();
    stats_.dump(os);
    ic_.stats().dump(os);
    for (const auto &sk : sockets_) {
        sk.mc->stats().dump(os);
        for (unsigned c = 0; c < sk.mc->copies(); ++c)
            sk.mc->dram(c).stats().dump(os);
    }
}

} // namespace dve
