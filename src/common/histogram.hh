/**
 * @file
 * Log-bucketed latency histogram (HdrHistogram-style).
 *
 * The bucket layout is FIXED at compile time: 16 linear sub-buckets per
 * power-of-two octave (precision bits = 4, relative error <= 1/16).
 * Because every histogram shares the same layout, two histograms merge
 * (or diff) bucket-by-bucket with no resampling, which is what keeps the
 * parallel trial runner byte-deterministic: per-trial histograms are
 * merged in trial order, and the merged counts never depend on the
 * worker count or completion order.
 *
 * Percentiles are reported as the lower bound of the bucket containing
 * the requested rank -- a deterministic, integral value with bounded
 * relative error, never an interpolation that could pick up
 * floating-point noise.
 */

#ifndef DVE_COMMON_HISTOGRAM_HH
#define DVE_COMMON_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstdint>

#include "common/logging.hh"

namespace dve
{

/** A mergeable log-bucketed histogram of 64-bit values (ticks). */
class Histogram
{
  public:
    /** Linear sub-bucket resolution within one octave. */
    static constexpr unsigned precisionBits = 4;
    static constexpr unsigned subBuckets = 1u << precisionBits; // 16
    /** Fixed bucket count covering the full 64-bit value range. */
    static constexpr unsigned numBuckets =
        (65 - precisionBits) * subBuckets; // 976

    /** Bucket index of @p v (total order, contiguous from 0). */
    static unsigned
    bucketIndex(std::uint64_t v)
    {
        if (v < subBuckets)
            return static_cast<unsigned>(v);
        const unsigned msb = std::bit_width(v) - 1; // >= precisionBits
        const unsigned shift = msb - precisionBits;
        const unsigned sub =
            static_cast<unsigned>((v >> shift) & (subBuckets - 1));
        return (msb - precisionBits) * subBuckets + subBuckets + sub;
    }

    /** Smallest value mapping to bucket @p index (its reported value). */
    static std::uint64_t
    bucketFloor(unsigned index)
    {
        dve_assert(index < numBuckets, "histogram bucket out of range");
        if (index < 2 * subBuckets)
            return index;
        const unsigned block = index / subBuckets - 1;
        const unsigned msb = block + precisionBits;
        const unsigned sub = index % subBuckets;
        return static_cast<std::uint64_t>(subBuckets + sub)
               << (msb - precisionBits);
    }

    void
    record(std::uint64_t v)
    {
        ++buckets_[bucketIndex(v)];
        ++count_;
        sum_ += v;
    }

    /** Bucket-wise accumulate (layouts are identical by construction). */
    void
    merge(const Histogram &other)
    {
        for (unsigned i = 0; i < numBuckets; ++i)
            buckets_[i] += other.buckets_[i];
        count_ += other.count_;
        sum_ += other.sum_;
    }

    /**
     * Bucket-wise difference against an earlier snapshot of THIS
     * histogram (ROI deltas). @p since must be a prefix of the recorded
     * history: every bucket count >= the snapshot's.
     */
    Histogram
    diff(const Histogram &since) const
    {
        Histogram d;
        for (unsigned i = 0; i < numBuckets; ++i) {
            dve_assert(buckets_[i] >= since.buckets_[i],
                       "histogram diff against a non-prefix snapshot");
            d.buckets_[i] = buckets_[i] - since.buckets_[i];
        }
        d.count_ = count_ - since.count_;
        d.sum_ = sum_ - since.sum_;
        return d;
    }

    void
    reset()
    {
        buckets_.fill(0);
        count_ = 0;
        sum_ = 0;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }

    double
    mean() const
    {
        return count_ == 0
                   ? 0.0
                   : static_cast<double>(sum_) / static_cast<double>(count_);
    }

    /**
     * Value at percentile @p pct (integer 0..100): the floor of the
     * bucket holding the ceil(pct/100 * count)-th smallest sample.
     * pct=100 reports the floor of the highest occupied bucket; an empty
     * histogram reports 0.
     */
    std::uint64_t
    percentile(unsigned pct) const
    {
        dve_assert(pct <= 100, "percentile must be in [0, 100]");
        if (count_ == 0)
            return 0;
        std::uint64_t rank = (count_ * pct + 99) / 100;
        if (rank == 0)
            rank = 1;
        std::uint64_t cum = 0;
        for (unsigned i = 0; i < numBuckets; ++i) {
            cum += buckets_[i];
            if (cum >= rank)
                return bucketFloor(i);
        }
        return bucketFloor(numBuckets - 1); // unreachable
    }

    std::uint64_t bucketCount(unsigned i) const { return buckets_[i]; }

  private:
    std::array<std::uint64_t, numBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

/** Order statistics of one histogram, as surfaced in RunResult/JSON. */
struct LatencyDigest
{
    std::uint64_t count = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t max = 0; ///< floor of the highest occupied bucket
};

inline LatencyDigest
digestOf(const Histogram &h)
{
    LatencyDigest d;
    d.count = h.count();
    d.mean = h.mean();
    d.p50 = h.percentile(50);
    d.p90 = h.percentile(90);
    d.p95 = h.percentile(95);
    d.p99 = h.percentile(99);
    d.max = h.percentile(100);
    return d;
}

} // namespace dve

#endif // DVE_COMMON_HISTOGRAM_HH
