file(REMOVE_RECURSE
  "CMakeFiles/verify_protocols.dir/verify_protocols.cc.o"
  "CMakeFiles/verify_protocols.dir/verify_protocols.cc.o.d"
  "verify_protocols"
  "verify_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
