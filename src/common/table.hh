/**
 * @file
 * ASCII table rendering for benchmark harnesses.
 *
 * Every bench binary prints its paper table/figure as a column-aligned text
 * table so output diffs cleanly between runs.
 */

#ifndef DVE_COMMON_TABLE_HH
#define DVE_COMMON_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dve
{

/** A simple left-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render with column padding and a separator under the header. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

    /** Format a double with @p precision digits after the point. */
    static std::string num(double v, int precision = 3);

    /** Format a double in scientific notation. */
    static std::string sci(double v, int precision = 2);

    /** Format a ratio as a percentage string like "+17.3%". */
    static std::string pct(double ratio, int precision = 1);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dve

#endif // DVE_COMMON_TABLE_HH
