#include "protocol_check/checker.hh"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace dve
{
namespace pcheck
{

std::string
CheckResult::summary() const
{
    std::ostringstream os;
    if (ok) {
        os << "PASS: " << statesExplored << " states, " << transitions
           << " transitions, " << quiescentStates
           << " quiescent; SWMR + data-value + deadlock-freedom hold";
    } else if (capped) {
        os << "CAPPED: " << violation << " (" << statesExplored
           << " states explored; nothing proven)";
    } else {
        os << "FAIL: " << violation << " after " << trace.size()
           << " steps (" << statesExplored << " states explored)";
    }
    return os.str();
}

std::string
CheckResult::toJson() const
{
    // violation strings are checker-generated ASCII, but escape the JSON
    // metacharacters anyway so the document always parses.
    std::string esc;
    for (const char c : violation) {
        if (c == '"' || c == '\\')
            esc += '\\';
        esc += c;
    }
    std::ostringstream os;
    os << "{\"ok\": " << (ok ? "true" : "false")
       << ", \"capped\": " << (capped ? "true" : "false")
       << ", \"states\": " << statesExplored
       << ", \"transitions\": " << transitions
       << ", \"quiescent\": " << quiescentStates
       << ", \"trace_steps\": " << trace.size()
       << ", \"violation\": \"" << esc << "\"}";
    return os.str();
}

CheckResult
explore(const ModelConfig &cfg, std::uint64_t max_states)
{
    const Model model(cfg);
    CheckResult res;

    struct Node
    {
        State state;
        std::int64_t parent;
        std::string action;
    };

    std::vector<Node> nodes;
    std::unordered_map<std::string, std::size_t> seen;
    std::deque<std::size_t> frontier;

    auto buildTrace = [&](std::size_t idx) {
        std::vector<std::string> t;
        for (std::int64_t i = static_cast<std::int64_t>(idx);
             i > 0; i = nodes[i].parent) {
            t.push_back(nodes[i].action);
        }
        std::reverse(t.begin(), t.end());
        return t;
    };

    nodes.push_back({model.initial(), -1, ""});
    seen.emplace(nodes[0].state.encode(), 0);
    frontier.push_back(0);

    while (!frontier.empty()) {
        const std::size_t idx = frontier.front();
        frontier.pop_front();
        ++res.statesExplored;

        const State &s = nodes[idx].state;

        if (auto bad = model.checkInvariants(s)) {
            res.violation = *bad;
            res.trace = buildTrace(idx);
            return res;
        }

        std::vector<Model::Successor> succs;
        try {
            succs = model.successors(s);
        } catch (const std::logic_error &e) {
            res.violation = std::string("unexpected message: ")
                            + e.what();
            res.trace = buildTrace(idx);
            return res;
        }

        if (succs.empty()) {
            if (model.quiescent(s)) {
                ++res.quiescentStates;
                continue;
            }
            res.violation = "deadlock: pending work but no enabled "
                            "transition";
            res.trace = buildTrace(idx);
            return res;
        }

        for (auto &suc : succs) {
            ++res.transitions;
            auto key = suc.state.encode();
            const auto it = seen.find(key);
            if (it != seen.end())
                continue;
            const std::size_t nidx = nodes.size();
            seen.emplace(std::move(key), nidx);
            nodes.push_back({std::move(suc.state),
                             static_cast<std::int64_t>(idx),
                             std::move(suc.action)});
            frontier.push_back(nidx);
            if (nodes.size() > max_states) {
                res.capped = true;
                res.violation = "state-space bound exceeded";
                return res;
            }
        }
    }

    res.ok = true;
    return res;
}

} // namespace pcheck
} // namespace dve
