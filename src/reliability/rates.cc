#include "reliability/rates.hh"

#include <cmath>

#include "common/logging.hh"

namespace dve
{
namespace reliability
{

namespace
{

/** Sum over ordered pairs (i, j != i) of f_i * f_j. */
double
pairSum(const std::vector<double> &f)
{
    double total = 0, sq = 0;
    for (double v : f) {
        total += v;
        sq += v * v;
    }
    return total * total - sq;
}

/** Sum over ordered triples of distinct indices of f_i f_j f_k. */
double
tripleSum(const std::vector<double> &f)
{
    double s = 0;
    const std::size_t n = f.size();
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            for (std::size_t k = 0; k < n; ++k)
                if (i != j && j != k && i != k)
                    s += f[i] * f[j] * f[k];
    return s;
}

/** Sum over ordered 4-tuples of distinct indices. */
double
quadSum(const std::vector<double> &f)
{
    double s = 0;
    const std::size_t n = f.size();
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            for (std::size_t k = 0; k < n; ++k)
                for (std::size_t l = 0; l < n; ++l)
                    if (i != j && i != k && i != l && j != k && j != l
                        && k != l)
                        s += f[i] * f[j] * f[k] * f[l];
    return s;
}

std::vector<double>
uniformFits(const ModelParams &p)
{
    return std::vector<double>(p.chipsPerDimm, p.fitPerChip);
}

} // namespace

RatePair
chipkill(const ModelParams &p)
{
    return chipkillThermal(p, uniformFits(p));
}

RatePair
chipkillThermal(const ModelParams &p, const std::vector<double> &fits)
{
    dve_assert(fits.size() == p.chipsPerDimm, "FIT profile size mismatch");
    RatePair r;
    // DUE: two chips of one DIMM fail within a scrub window.
    r.due = pairSum(fits) * p.windowFactor * p.dimms;
    // SDC: three or more fail AND the DSD code misses (6.9%).
    r.sdc = tripleSum(fits) * p.windowFactor * p.windowFactor * p.dimms
            * p.dsdMissProb;
    return r;
}

RatePair
dveDsd(const ModelParams &p)
{
    const auto fits = uniformFits(p);
    RatePair r;
    // DUE: the same-position chip pair on the two replica DIMMs fails
    // together: first any of the 9 chips, then specifically its partner.
    double pair_rate = 0;
    for (double f : fits)
        pair_rate += f * f;
    r.due = pair_rate * p.windowFactor * p.dimms * 2;
    // SDC: like Chipkill's detection envelope but on twice the DIMMs.
    r.sdc = chipkill(p).sdc * 2;
    return r;
}

RatePair
dveTsd(const ModelParams &p)
{
    RatePair r = dveDsd(p); // DUE depends only on the replica pairing
    // SDC: detection fails only when 4+ chips of one DIMM fail in a
    // window, and even then only with the residual miss probability.
    const auto fits = uniformFits(p);
    r.sdc = quadSum(fits) * std::pow(p.windowFactor, 3) * p.dimms * 2
            * p.tsdMissProb;
    return r;
}

RatePair
raim(const ModelParams &p)
{
    // RAID-3 across raimChannels: data is striped with a diff-MDS parity
    // channel, tolerating one full Chipkill-DIMM (or channel) failure.
    // DUE: a first DIMM suffers a Chipkill-uncorrectable event, and a
    // corresponding DIMM on one of the other (channels - 1) channels
    // does too within the window.
    const auto fits = uniformFits(p);
    const double dimm_due = pairSum(fits) * p.windowFactor; // per DIMM
    RatePair r;
    r.due = (dimm_due * p.raimDimmsPerChannel)
            * (p.raimChannels - 1.0)
            * (dimm_due * p.windowFactor)
            * p.raimChannels;
    // SDC: limited by the Chipkill DSD miss, over all RAIM DIMMs.
    ModelParams q = p;
    q.dimms = p.raimChannels * p.raimDimmsPerChannel;
    r.sdc = chipkill(q).sdc;
    return r;
}

RatePair
dveChipkill(const ModelParams &p)
{
    const auto fits = uniformFits(p);
    RatePair r;
    // DUE: a 2-chip Chipkill-defeating failure in one DIMM, together
    // with the same-position 2-chip failure on the replica DIMM.
    const double f = p.fitPerChip;
    const double w = p.windowFactor;
    r.due = (p.chipsPerDimm * f) * ((p.chipsPerDimm - 1.0) * f * w)
            * (1.0 * f * w) * (1.0 * f * w) * p.dimms * 2;
    // SDC: Chipkill detection envelope over 2x the DIMMs.
    r.sdc = chipkill(p).sdc * 2;
    return r;
}

double
arrheniusFactor(double delta_c, double base_c, double ea_ev)
{
    constexpr double boltzmann_ev = 8.617333262e-5;
    const double t0 = base_c + 273.15;
    const double t1 = base_c + delta_c + 273.15;
    return std::exp((ea_ev / boltzmann_ev) * (1.0 / t0 - 1.0 / t1));
}

std::vector<double>
thermalFitProfile(const ModelParams &p, double fit_step)
{
    // The paper's 10 C gradient across a DIMM produces a linear FIT
    // ramp: [66.1, 74.3, ..., 131.7].
    std::vector<double> fits(p.chipsPerDimm);
    for (unsigned i = 0; i < p.chipsPerDimm; ++i)
        fits[i] = p.fitPerChip + fit_step * i;
    return fits;
}

RatePair
dveTsdThermal(const ModelParams &p, const std::vector<double> &fits,
              bool risk_inverse)
{
    dve_assert(fits.size() == p.chipsPerDimm, "FIT profile size mismatch");
    RatePair r;
    // DUE: position-paired chips fail together. Risk-inverse mapping
    // pairs chip i with replica chip (n-1-i).
    double pair_rate = 0;
    const std::size_t n = fits.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double partner =
            risk_inverse ? fits[n - 1 - i] : fits[i];
        pair_rate += fits[i] * partner;
    }
    r.due = pair_rate * p.windowFactor * p.dimms * 2;
    // SDC: 4+ chips of one DIMM fail; TSD residual miss.
    r.sdc = quadSum(fits) * std::pow(p.windowFactor, 3) * p.dimms * 2
            * p.tsdMissProb;
    return r;
}

double
effectiveCapacity(unsigned data_bytes, unsigned check_bytes,
                  unsigned copies)
{
    dve_assert(copies >= 1 && data_bytes > 0, "bad capacity query");
    return static_cast<double>(data_bytes)
           / (static_cast<double>(data_bytes + check_bytes) * copies);
}

double
monteCarloChipkillDue(const ModelParams &p, double p_fail,
                      std::uint64_t trials, Rng &rng)
{
    std::uint64_t due = 0;
    for (std::uint64_t t = 0; t < trials; ++t) {
        bool any = false;
        for (unsigned d = 0; d < p.dimms && !any; ++d) {
            unsigned failed = 0;
            for (unsigned c = 0; c < p.chipsPerDimm; ++c)
                failed += rng.chance(p_fail);
            any = failed >= 2;
        }
        due += any;
    }
    return static_cast<double>(due) / static_cast<double>(trials);
}

double
monteCarloDveDue(const ModelParams &p, double p_fail,
                 std::uint64_t trials, Rng &rng)
{
    std::uint64_t due = 0;
    for (std::uint64_t t = 0; t < trials; ++t) {
        bool any = false;
        // dimms pairs of replicated DIMMs on the two sockets.
        for (unsigned d = 0; d < p.dimms * 2 / 2 && !any; ++d) {
            for (unsigned c = 0; c < p.chipsPerDimm && !any; ++c) {
                // Same-position chips on both replicas must fail.
                any = rng.chance(p_fail) && rng.chance(p_fail);
            }
        }
        due += any;
    }
    return static_cast<double>(due) / static_cast<double>(trials);
}

} // namespace reliability
} // namespace dve
