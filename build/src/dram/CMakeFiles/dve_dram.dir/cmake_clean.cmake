file(REMOVE_RECURSE
  "CMakeFiles/dve_dram.dir/address_map.cc.o"
  "CMakeFiles/dve_dram.dir/address_map.cc.o.d"
  "CMakeFiles/dve_dram.dir/dram.cc.o"
  "CMakeFiles/dve_dram.dir/dram.cc.o.d"
  "libdve_dram.a"
  "libdve_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
