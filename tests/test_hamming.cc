/**
 * @file
 * Tests for Hamming(72,64) SEC-DED.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/hamming.hh"

namespace dve
{
namespace
{

TEST(Hamming, CleanRoundTrip)
{
    Rng rng(31);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t d = rng.engine()();
        const auto cw = HammingSecDed::encode(d);
        const auto r = HammingSecDed::decode(cw);
        EXPECT_EQ(r.status, EccStatus::Clean);
        EXPECT_EQ(r.codeword.data, d);
    }
}

TEST(Hamming, CorrectsEverySingleDataBit)
{
    const std::uint64_t d = 0xDEADBEEFCAFEF00DULL;
    const auto cw = HammingSecDed::encode(d);
    for (unsigned bit = 0; bit < 64; ++bit) {
        auto bad = cw;
        bad.data ^= (std::uint64_t(1) << bit);
        const auto r = HammingSecDed::decode(bad);
        ASSERT_EQ(r.status, EccStatus::Corrected) << "bit " << bit;
        EXPECT_EQ(r.codeword.data, d);
    }
}

TEST(Hamming, CorrectsEverySingleCheckBit)
{
    const auto cw = HammingSecDed::encode(0x0123456789ABCDEFULL);
    for (unsigned bit = 0; bit < 8; ++bit) {
        auto bad = cw;
        bad.check ^= static_cast<std::uint8_t>(1u << bit);
        const auto r = HammingSecDed::decode(bad);
        ASSERT_EQ(r.status, EccStatus::Corrected) << "check bit " << bit;
        EXPECT_EQ(r.codeword.data, cw.data);
        EXPECT_EQ(r.codeword.check, cw.check);
    }
}

TEST(Hamming, DetectsAllDoubleBitErrorsSampled)
{
    Rng rng(32);
    const std::uint64_t d = 0xA5A5A5A55A5A5A5AULL;
    const auto cw = HammingSecDed::encode(d);
    // Exhaustive over data-bit pairs; check-bit pairs sampled below.
    for (unsigned i = 0; i < 64; ++i) {
        for (unsigned j = i + 1; j < 64; ++j) {
            auto bad = cw;
            bad.data ^= (std::uint64_t(1) << i) | (std::uint64_t(1) << j);
            const auto r = HammingSecDed::decode(bad);
            ASSERT_EQ(r.status, EccStatus::Detected)
                << "bits " << i << "," << j;
        }
    }
    for (unsigned i = 0; i < 8; ++i) {
        for (unsigned j = i + 1; j < 8; ++j) {
            auto bad = cw;
            bad.check ^=
                static_cast<std::uint8_t>((1u << i) | (1u << j));
            EXPECT_EQ(HammingSecDed::decode(bad).status,
                      EccStatus::Detected);
        }
    }
}

TEST(Hamming, DetectsMixedDataCheckDoubles)
{
    const auto cw = HammingSecDed::encode(0x1122334455667788ULL);
    for (unsigned di = 0; di < 64; di += 7) {
        for (unsigned ci = 0; ci < 8; ++ci) {
            auto bad = cw;
            bad.data ^= (std::uint64_t(1) << di);
            bad.check ^= static_cast<std::uint8_t>(1u << ci);
            EXPECT_EQ(HammingSecDed::decode(bad).status,
                      EccStatus::Detected)
                << di << "," << ci;
        }
    }
}

TEST(Hamming, TripleBitErrorsMayAliasButNeverCrash)
{
    // >= 3-bit errors are beyond the design envelope: the decoder may
    // miscorrect (SDC) but must always return one of the three statuses.
    Rng rng(33);
    const auto cw = HammingSecDed::encode(0xFFFFFFFF00000000ULL);
    int sdc = 0;
    for (int iter = 0; iter < 2000; ++iter) {
        auto bad = cw;
        unsigned bits[3];
        bits[0] = static_cast<unsigned>(rng.next(64));
        do {
            bits[1] = static_cast<unsigned>(rng.next(64));
        } while (bits[1] == bits[0]);
        do {
            bits[2] = static_cast<unsigned>(rng.next(64));
        } while (bits[2] == bits[0] || bits[2] == bits[1]);
        for (unsigned b : bits)
            bad.data ^= (std::uint64_t(1) << b);
        const auto r = HammingSecDed::decode(bad);
        if (r.status != EccStatus::Detected
            && r.codeword.data != cw.data) {
            ++sdc;
        }
    }
    // The vast majority of triples alias to a single-bit syndrome and
    // miscorrect -- that is exactly why SEC-DED is not chipkill.
    EXPECT_GT(sdc, 0);
}

TEST(Hamming, ZeroAndAllOnesWords)
{
    for (std::uint64_t d : {std::uint64_t(0), ~std::uint64_t(0)}) {
        const auto cw = HammingSecDed::encode(d);
        EXPECT_EQ(HammingSecDed::decode(cw).status, EccStatus::Clean);
        auto bad = cw;
        bad.data ^= 1;
        const auto r = HammingSecDed::decode(bad);
        EXPECT_EQ(r.status, EccStatus::Corrected);
        EXPECT_EQ(r.codeword.data, d);
    }
}

} // namespace
} // namespace dve
