/**
 * @file
 * Fault-injection walkthrough: escalate fault scope from a single cell
 * to a whole memory controller and watch each protection layer respond.
 *
 * Demonstrates the paper's central reliability claim: because Dvé's
 * second copy lives behind a different controller on a different socket,
 * it recovers from faults that defeat every ECC-based scheme -- up to
 * and including memory-controller failure.
 *
 * With no arguments the scripted walkthrough below runs. Alternatively,
 * fault specs can be given on the command line, one per argument, as
 * comma-separated key=value lists:
 *
 *   fault_injection scope=chip,socket=0,chip=3 \
 *                   scope=cell,socket=1,row=12,column=3,bit=5,transient=1
 *
 * Keys: scope (cell|row|column|bank|chip|channel|controller), socket,
 * channel, rank, chip, bank, row, column, bit, transient. Each spec is
 * injected in turn and a read of line 0 reports what the system observed.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dve_engine.hh"

using namespace dve;

namespace
{

/** Run one load and report what the memory system observed. */
void
probe(DveEngine &e, Addr addr, Tick &clock, const char *what)
{
    const auto r = e.access(0, 0, addr, false, 0, clock);
    clock = r.done;
    std::printf("  read after %-28s -> value %llu | system CE %llu, "
                "replica recoveries %llu, machine checks %llu, "
                "degraded lines %llu\n",
                what, static_cast<unsigned long long>(r.value),
                static_cast<unsigned long long>(
                    e.systemCorrectedErrors()),
                static_cast<unsigned long long>(e.replicaRecoveries()),
                static_cast<unsigned long long>(
                    e.machineCheckExceptions()),
                static_cast<unsigned long long>(e.degradedLines()));
}

/** Push the cached line out so the next read hits DRAM again. */
void
flushLine(DveEngine &e, Addr addr, Tick &clock)
{
    // Writing from the other socket steals the line; writing it back
    // again and evicting via conflicting fills would also work, but for
    // a demo we simply invalidate through coherence and re-home it.
    const auto w =
        e.access(1, 0, addr, true, e.logicalValue(lineNum(addr)), clock);
    clock = w.done;
    // Stream conflicting lines through socket 1's LLC set to force the
    // dirty eviction (writeback updates both memories).
    for (unsigned i = 1; i <= 40; ++i) {
        const Addr a = addr + Addr(i) * 16384 * 64;
        if (lineNum(a) % 256 != lineNum(addr) % 256)
            continue;
        clock = e.access(1, 0, a, false, 0, clock).done;
    }
}

/** Parse one scope=...,k=v,... spec; exits with a message on bad input. */
FaultDescriptor
parseFaultSpec(const char *arg)
{
    FaultDescriptor f;
    bool have_scope = false;
    std::string spec(arg);
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string field = spec.substr(pos, comma - pos);
        pos = comma + 1;
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) {
            std::fprintf(stderr, "bad fault field '%s' (want key=value)\n",
                         field.c_str());
            std::exit(1);
        }
        const std::string key = field.substr(0, eq);
        const std::string val = field.substr(eq + 1);
        const auto num = [&] {
            return static_cast<std::uint64_t>(
                std::strtoull(val.c_str(), nullptr, 0));
        };
        if (key == "scope") {
            const auto s = parseFaultScope(val.c_str());
            if (!s) {
                std::fprintf(stderr, "unknown fault scope '%s'\n",
                             val.c_str());
                std::exit(1);
            }
            f.scope = *s;
            have_scope = true;
        } else if (key == "socket") {
            f.socket = static_cast<unsigned>(num());
        } else if (key == "channel") {
            f.channel = static_cast<unsigned>(num());
        } else if (key == "rank") {
            f.rank = static_cast<unsigned>(num());
        } else if (key == "chip") {
            f.chip = static_cast<unsigned>(num());
        } else if (key == "bank") {
            f.bank = static_cast<unsigned>(num());
        } else if (key == "row") {
            f.row = num();
        } else if (key == "column") {
            f.column = static_cast<unsigned>(num());
        } else if (key == "bit") {
            f.bit = static_cast<unsigned>(num());
        } else if (key == "transient") {
            f.transient = num() != 0;
        } else {
            std::fprintf(stderr, "unknown fault key '%s'\n", key.c_str());
            std::exit(1);
        }
    }
    if (!have_scope) {
        std::fprintf(stderr, "fault spec '%s' is missing scope=\n", arg);
        std::exit(1);
    }
    return f;
}

/** CLI mode: inject the given fault specs one by one against line 0. */
int
runCliFaults(int argc, char **argv)
{
    EngineConfig cfg;
    cfg.llcBytes = 1024 * 1024;
    cfg.dram = DramConfig::ddr4Replicated();
    cfg.scheme = Scheme::ChipkillSscDsd;
    DveEngine e(cfg, DveConfig{});

    const Addr addr = 0x0;
    Tick clock = 0;
    clock = e.access(0, 0, addr, true, 42, clock).done;
    flushLine(e, addr, clock);
    std::printf("wrote 42 to line 0 (home socket 0, replica socket 1)\n");

    for (int i = 1; i < argc; ++i) {
        const FaultDescriptor f = parseFaultSpec(argv[i]);
        const auto id = e.faultRegistry().inject(f);
        if (id == 0) {
            std::printf("%-40s -> rejected (out of range)\n", argv[i]);
            continue;
        }
        std::printf("injected %s fault (id %llu)\n",
                    faultScopeName(f.scope),
                    static_cast<unsigned long long>(id));
        flushLine(e, addr, clock);
        probe(e, addr, clock, argv[i]);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1)
        return runCliFaults(argc, argv);

    EngineConfig cfg;
    cfg.llcBytes = 1024 * 1024; // quicker evictions for the demo
    cfg.dram = DramConfig::ddr4Replicated();
    cfg.scheme = Scheme::ChipkillSscDsd;
    DveConfig dcfg; // deny protocol, fixed full replication
    DveEngine e(cfg, dcfg);

    const Addr addr = 0x0; // page 0: home socket 0, replica socket 1
    Tick clock = 0;

    std::printf("Dvé fault-injection demo (Chipkill DIMMs + cross-"
                "socket replica)\n\n");
    clock = e.access(0, 0, addr, true, 42, clock).done;
    flushLine(e, addr, clock);
    std::printf("wrote 42; line is now resident in both sockets' "
                "memories (home=%llu replica=%llu)\n\n",
                static_cast<unsigned long long>(e.memory(0).peek(addr)),
                static_cast<unsigned long long>(e.memory(1).peek(addr)));

    // --- 1: single chip failure: Chipkill corrects locally. ----------
    FaultDescriptor chip;
    chip.scope = FaultScope::Chip;
    chip.socket = 0;
    chip.chip = 3;
    const auto chip_id = e.faultRegistry().inject(chip);
    std::printf("1) one DRAM chip fails on socket 0:\n");
    probe(e, addr, clock, "chip failure (Chipkill fixes)");
    e.faultRegistry().clear(chip_id);

    // --- 2: double chip failure: beyond Chipkill, Dvé diverts. -------
    std::printf("\n2) two chips fail in the same rank (defeats "
                "Chipkill):\n");
    for (unsigned c : {2u, 11u}) {
        FaultDescriptor f = chip;
        f.chip = c;
        f.transient = true; // cured by the recovery rewrite
        e.faultRegistry().inject(f);
    }
    flushLine(e, addr, clock);
    probe(e, addr, clock, "2-chip failure (replica heals)");

    // --- 3: whole memory-controller failure. -------------------------
    std::printf("\n3) socket 0's memory controller fails outright:\n");
    FaultDescriptor mc;
    mc.scope = FaultScope::Controller;
    mc.socket = 0;
    e.faultRegistry().inject(mc);
    flushLine(e, addr, clock);
    probe(e, addr, clock, "controller failure (degraded)");
    probe(e, addr, clock, "second read (funneled copy)");

    // --- 4: and finally the replica dies too: data loss, detected. ---
    std::printf("\n4) the replica controller fails as well:\n");
    FaultDescriptor mc2 = mc;
    mc2.socket = 1;
    e.faultRegistry().inject(mc2);
    flushLine(e, addr, clock);
    probe(e, addr, clock, "both copies gone (DUE)");

    std::printf("\nEvery step was detected; data was lost only when "
                "both independent\ncontrollers had failed -- the "
                "machine-check, not silent corruption.\n");
    return 0;
}
