/**
 * @file
 * Fig 10: sensitivity of Dvé's gains to the inter-socket interconnect
 * latency (30 / 50 / 60 ns each way), reported as deny-protocol geomean
 * speedups over a baseline NUMA system using the same latency.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace dve;

int
main()
{
    const double scale = bench::scaleFromEnv(0.3);
    bench::printHeader("Fig 10: sensitivity to inter-socket latency "
                       "(dve-deny speedup over NUMA at the same "
                       "latency)");

    const std::vector<unsigned> latencies_ns = {30, 50, 60};

    TextTable t({"latency", "geomean-top10", "geomean-top15",
                 "geomean-all"});

    // Sweep the full latency x workload x {baseline, deny} cube at once.
    const auto &workloads = table3Workloads();
    const std::size_t per_lat = workloads.size() * 2;
    const auto runs = bench::runMatrix(
        latencies_ns.size() * per_lat, [&](std::size_t p) {
            const unsigned ns = latencies_ns[p / per_lat];
            const auto &wl = workloads[(p % per_lat) / 2];
            SystemConfig cfg =
                bench::paperConfig(SchemeKind::BaselineNuma);
            cfg.engine.noc.interSocketLatency = ns * ticksPerNs;
            return bench::runScheme(p % 2 ? SchemeKind::DveDeny
                                          : SchemeKind::BaselineNuma,
                                    wl, scale, &cfg);
        });

    for (std::size_t li = 0; li < latencies_ns.size(); ++li) {
        std::vector<double> speedups;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const auto &base = runs[li * per_lat + w * 2];
            const auto &dve = runs[li * per_lat + w * 2 + 1];
            speedups.push_back(static_cast<double>(base.roiTime)
                               / static_cast<double>(dve.roiTime));
        }
        t.addRow({std::to_string(latencies_ns[li]) + " ns",
                  TextTable::num(bench::geomeanTop(speedups, 10), 3),
                  TextTable::num(bench::geomeanTop(speedups, 15), 3),
                  TextTable::num(bench::geomean(speedups), 3)});
    }
    t.print(std::cout);
    std::printf("\nPaper reference: even at 30 ns deny wins 19%%/12%%/"
                "10%% (top10/15/all); gains grow with latency (60 ns "
                "models CCIX/OpenCAPI/Gen-Z-class links).\n");
    bench::writeRunsJson("fig10", runs);
    return 0;
}
