/**
 * @file
 * A fully associative LRU key set with O(1) touch/insert/erase.
 *
 * Used to model the on-chip replica-directory cache, which the paper
 * configures as a fully associative 2K-entry structure. A hash map plus
 * intrusive recency list keeps simulation cost constant per access.
 */

#ifndef DVE_CACHE_ASSOC_LRU_HH
#define DVE_CACHE_ASSOC_LRU_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/logging.hh"

namespace dve
{

/** Fully associative LRU-managed set of keys with attached values. */
template <typename K, typename V>
class AssocLru
{
  public:
    explicit AssocLru(std::size_t capacity) : capacity_(capacity)
    {
        dve_assert(capacity >= 1, "capacity must be positive");
    }

    /** Look up a key, refreshing recency. nullptr on miss. */
    V *
    find(const K &key)
    {
        const auto it = map_.find(key);
        if (it == map_.end())
            return nullptr;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->second;
    }

    /** Look up without touching recency. */
    const V *
    peek(const K &key) const
    {
        const auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second->second;
    }

    /**
     * Insert or overwrite a key, refreshing recency.
     * @return the evicted (key, value) pair, if capacity forced one out.
     */
    std::optional<std::pair<K, V>>
    insert(const K &key, V value)
    {
        const auto it = map_.find(key);
        if (it != map_.end()) {
            it->second->second = std::move(value);
            order_.splice(order_.begin(), order_, it->second);
            return std::nullopt;
        }
        std::optional<std::pair<K, V>> evicted;
        if (map_.size() >= capacity_) {
            auto last = std::prev(order_.end());
            evicted = std::move(*last);
            map_.erase(last->first);
            order_.erase(last);
        }
        order_.emplace_front(key, std::move(value));
        map_[key] = order_.begin();
        return evicted;
    }

    /** Remove a key if present. @return true when it was present. */
    bool
    erase(const K &key)
    {
        const auto it = map_.find(key);
        if (it == map_.end())
            return false;
        order_.erase(it->second);
        map_.erase(it);
        return true;
    }

    void
    clear()
    {
        map_.clear();
        order_.clear();
    }

    std::size_t size() const { return map_.size(); }
    std::size_t capacity() const { return capacity_; }

    /**
     * Visit every (key, value) pair, most recent first. Iterates the
     * recency list, so visit order is deterministic across runs.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &kv : order_)
            fn(kv.first, kv.second);
    }

  private:
    std::size_t capacity_;
    std::list<std::pair<K, V>> order_; ///< front = most recent
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator>
        map_;
};

} // namespace dve

#endif // DVE_CACHE_ASSOC_LRU_HH
