# Empty dependencies file for dve_fault.
# This may be replaced when dependencies are built.
