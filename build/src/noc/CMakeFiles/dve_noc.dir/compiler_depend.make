# Empty compiler generated dependencies file for dve_noc.
# This may be replaced when dependencies are built.
