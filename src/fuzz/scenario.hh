/**
 * @file
 * Chaos-fuzz scenarios: serialized adversarial interleavings of workload
 * operations and fault-lifecycle actions.
 *
 * A scenario is the unit of fuzzing: a fully explicit, seeded script of
 * core accesses (conflict-heavy sharing over a small footprint), fault
 * injections/heals, patrol scrubs and maintenance passes, plus the engine
 * shape knobs that matter for protocol coverage (protocol family, epoch
 * length, set-dueling groups, the seeded-bug switch). Scenario + seed is
 * a pure function: replaying the same file produces a byte-identical run
 * log, digest and event trace.
 *
 * The on-disk form is a line-oriented text format ('#' comments, blank
 * lines ignored):
 *
 *     version 1
 *     seed 42
 *     protocol dynamic          # allow | deny | dynamic
 *     pages 8                   # footprint, 4 KB pages
 *     epoch-ops 40              # dynamic-protocol epoch length
 *     sample-groups 4           # set-dueling groups
 *     pool 3                    # optional: far-memory pool nodes (0 = off)
 *     policy-budget 4           # optional: arm the replication policy
 *     policy-node-budget 2      # optional: per-pool-node replica cap
 *     policy-epoch-ops 64       # optional: policy epoch length
 *     meta-protection parity    # optional: arm metadata faults under a
 *                               # protection tier (none | parity | ecc)
 *     bug rm-marker-refresh     # optional: arm a seeded protocol bug
 *     bug skip-deny-invalidate  # (one line per armed bug)
 *     bug skip-demotion-on-partition  # pool writeback demotion bug
 *     bug skip-rebuild-on-scrub # metadata journal-replay bug
 *     expect violation replica-dir  # optional: replay must fire this
 *     watchdog 2000000          # optional: liveness budget override
 *     step r 0 3 0x1040         # read:  socket core addr
 *     step w 1 2 0x2080 0xbeef  # write: socket core addr value
 *     step f scope=chip,...     # inject (parseFaultSpec syntax)
 *     step h scope=chip,...     # heal the matching active fault
 *     step s                    # patrol scrub
 *     step m                    # maintenance (self-heal) pass
 *     step b 2                  # retune the policy's global budget
 *
 * Minimized repros in tests/corpus/ use exactly this format, with an
 * `expect` header recording the monitor the replay must reproduce.
 */

#ifndef DVE_FUZZ_SCENARIO_HH
#define DVE_FUZZ_SCENARIO_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "coherence/engine.hh"
#include "common/types.hh"
#include "core/dve_engine.hh"
#include "fault/fault.hh"

namespace dve
{

/** One scripted action of a fuzz scenario. */
enum class FuzzOp : std::uint8_t
{
    Read,     ///< core load
    Write,    ///< core store
    Inject,   ///< activate a fault descriptor
    Heal,     ///< deactivate the matching active fault
    Scrub,    ///< Dvé patrol-scrub sweep
    Maintain, ///< Dvé self-healing maintenance pass
    Budget,   ///< retune the replication policy's global budget
};

const char *fuzzOpName(FuzzOp op);

/** One step; unused fields are zero for the op's kind. */
struct FuzzStep
{
    FuzzOp op = FuzzOp::Read;
    unsigned socket = 0;       ///< Read/Write actor socket
    unsigned core = 0;         ///< Read/Write actor core
    Addr addr = 0;             ///< Read/Write byte address
    std::uint64_t value = 0;   ///< Write payload / Budget page count
    FaultDescriptor fault;     ///< Inject/Heal descriptor
};

/** What a corpus replay must observe. */
struct FuzzExpectation
{
    /** nullopt = clean completion; set = this monitor must fire. */
    std::optional<InvariantMonitor> monitor;
};

/** A complete, self-contained fuzz scenario. */
struct FuzzScenario
{
    unsigned version = 1;
    std::uint64_t seed = 1;
    DveProtocol protocol = DveProtocol::Dynamic;
    unsigned footprintPages = 8;
    std::uint64_t epochOps = 40;
    std::uint64_t sampleGroups = 4;
    /** Far-memory pool nodes replica data spreads over; 0 = no pool
     *  tier (serialized only when set, so pre-pool corpus files and
     *  their byte-identical round trips are unchanged). */
    unsigned poolNodes = 0;
    /** Replication-policy global budget; 0 = policy disarmed (pages are
     *  replicated up front as before).  Armed runs start with no pages
     *  replicated and let the policy engine promote/demote on demand.
     *  Serialized only when armed, so pre-policy corpus files and their
     *  byte-identical round trips are unchanged. */
    std::uint64_t policyBudget = 0;
    /** Per-pool-node replica cap; 0 = unlimited (only meaningful when
     *  policyBudget arms the policy). */
    std::uint64_t policyNodeBudget = 0;
    /** Policy epoch length in observed ops; 0 keeps the engine default. */
    std::uint64_t policyEpochOps = 0;
    /** Arm the metadata fault domain (directory/RMT corruption becomes
     *  consultable). Serialized only when armed, so pre-metadata corpus
     *  files and their byte-identical round trips are unchanged. */
    bool metadataFaults = false;
    /** Protection tier the metadata structures run under (only
     *  meaningful when metadataFaults arms the domain). */
    MetadataProtection metaProtection = MetadataProtection::Ecc;
    /** Arm DveConfig::bugRmMarkerRefresh (seeded-bug experiments). */
    bool bugRmMarkerRefresh = false;
    /** Arm DveConfig::bugSkipDenyInvalidate (seeded-bug experiments). */
    bool bugSkipDenyInvalidate = false;
    /** Arm DveConfig::bugSkipDemotionOnPartition (pool seeded bug). */
    bool bugSkipDemotionOnPartition = false;
    /** Arm DveConfig::bugSkipRebuildOnScrub (metadata seeded bug). */
    bool bugSkipRebuildOnScrub = false;
    /** Liveness watchdog budget override; 0 keeps the engine default. */
    Tick watchdogBudget = 0;
    FuzzExpectation expect;
    std::vector<FuzzStep> steps;

    /** Canonical text form (parse() round-trips it byte-identically). */
    std::string serialize() const;

    /** Parse the text form; nullopt + @p err message on failure. */
    static std::optional<FuzzScenario> parse(std::istream &in,
                                             std::string *err = nullptr);

    /** parse() from a string buffer. */
    static std::optional<FuzzScenario> parse(const std::string &text,
                                             std::string *err = nullptr);
};

/** Inverse of dveProtocolName; nullopt for unrecognized names. */
std::optional<DveProtocol> parseDveProtocol(const char *name);

} // namespace dve

#endif // DVE_FUZZ_SCENARIO_HH
