/**
 * @file
 * Physical-address to DRAM-coordinate decoding.
 *
 * Layout (low to high bits): line offset | channel | bank | column-of-line |
 * rank | row. Interleaving lines across channels first and banks second
 * maximizes channel/bank-level parallelism for streaming accesses, matching
 * common BIOS policy.
 */

#ifndef DVE_DRAM_ADDRESS_MAP_HH
#define DVE_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/config.hh"

namespace dve
{

/** DRAM coordinates of one cache-line access. */
struct DramCoord
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    unsigned column = 0; ///< line slot within the row buffer

    bool operator==(const DramCoord &) const = default;
};

/** Decoder from socket-local physical addresses to DRAM coordinates. */
class AddressMap
{
  public:
    explicit AddressMap(const DramConfig &cfg);

    /** Decode a (socket-local) physical address. */
    DramCoord decode(Addr a) const;

    /** Inverse of decode; useful for constructing targeted test access. */
    Addr encode(const DramCoord &c) const;

    /** Lines per row buffer. */
    unsigned linesPerRow() const { return linesPerRow_; }

  private:
    DramConfig cfg_;
    unsigned linesPerRow_;
};

} // namespace dve

#endif // DVE_DRAM_ADDRESS_MAP_HH
