#include "fuzz/generator.hh"

#include <vector>

#include "common/rng.hh"
#include "dram/address_map.hh"
#include "ecc/line_codec.hh"

namespace dve
{

namespace
{

/** Concurrent-fault bookkeeping the safety bound needs. */
struct ActiveFault
{
    FaultDescriptor desc;
    bool fabric = false;
};

} // namespace

FuzzScenario
generateScenario(const GeneratorConfig &cfg)
{
    FuzzScenario sc;
    sc.seed = cfg.seed;
    sc.protocol = cfg.protocol;
    sc.footprintPages = cfg.footprintPages;
    sc.epochOps = cfg.epochOps;
    sc.sampleGroups = cfg.sampleGroups;
    sc.bugRmMarkerRefresh = cfg.bugRmMarkerRefresh;
    sc.bugSkipDenyInvalidate = cfg.bugSkipDenyInvalidate;
    sc.bugSkipDemotionOnPartition = cfg.bugSkipDemotionOnPartition;
    sc.bugSkipRebuildOnScrub = cfg.bugSkipRebuildOnScrub;
    sc.poolNodes = cfg.poolMode ? cfg.poolNodes : 0;
    if (cfg.metadataMode) {
        sc.metadataFaults = true;
        sc.metaProtection = cfg.metaProtection;
    }
    if (cfg.policyMode) {
        sc.policyBudget = cfg.policyBudget;
        sc.policyNodeBudget = cfg.policyNodeBudget;
        sc.policyEpochOps = cfg.policyEpochOps;
    }

    Rng rng(cfg.seed);
    const unsigned linesPerPage = pageBytes / lineBytes;
    const Addr footprintLines =
        Addr(cfg.footprintPages) * linesPerPage;

    // The runner builds its engine with the campaign's replicated DDR4
    // shape and the Dvé TSD codec; decode fault coordinates against the
    // same geometry so they are observable and in-bounds.
    const DramConfig dram = DramConfig::ddr4Replicated();
    const AddressMap amap(dram);
    const unsigned chips = LineCodec(Scheme::TsdDetect).chips();

    // Conflict set: a handful of lines everyone fights over. Seed it
    // across the dynamic sample groups (line % sampleGroups: 0 = allow
    // sample, 1 = deny sample, >= 2 followers) so the set-dueling
    // epochs see enough samples of both policies to flip -- the
    // epoch-boundary protocol switches are where the deepest
    // dynamic-mode interleavings hide. Uniformly random hot lines
    // almost never reach the duel's per-epoch sample threshold.
    std::vector<Addr> hot;
    const unsigned sg = cfg.sampleGroups < 2 ? 2 : cfg.sampleGroups;
    const unsigned cycle = sg < 3 ? sg : 3;
    for (unsigned i = 0; i < cfg.hotLines; ++i) {
        const Addr group = i % cycle;
        Addr line = rng.next(footprintLines);
        line = line - (line % sg) + group;
        if (line >= footprintLines)
            line -= sg;
        hot.push_back(line * lineBytes);
    }

    // Hammer mode: the access stream cycles a double-sided aggressor
    // pair (rows 1 and 2 of bank 0, every column, channels interleaved)
    // and the inject steps below become RowDisturb faults on the
    // adjacent victim rows 0 and 3. All rows sit inside a >= 32-page
    // footprint, so the uniform rest of the stream observes the victims.
    std::vector<Addr> aggressor;
    std::uint64_t aggIdx = 0;
    if (cfg.hammerMode) {
        const std::uint64_t aggRows[2] = {1, 2};
        for (unsigned col = 0; col < amap.linesPerRow(); ++col) {
            for (const std::uint64_t row : aggRows) {
                DramCoord c;
                c.channel = col % dram.channels;
                c.rank = 0;
                c.bank = 0;
                c.row = row;
                c.column = col;
                aggressor.push_back(amap.encode(c));
            }
        }
    }

    // Policy mode: the conflict set becomes a phase-local page window
    // that marches across the footprint, so each phase's hot pages must
    // be promoted afresh while the previous phase's replicas turn into
    // demotion fodder. Phase boundaries also retune the global budget.
    const std::uint64_t phaseLen =
        cfg.policyMode && cfg.policyPhases > 0
            ? (cfg.ops / cfg.policyPhases ? cfg.ops / cfg.policyPhases
                                          : 1)
            : 0;
    const unsigned policyHotPages =
        cfg.footprintPages / 4 ? cfg.footprintPages / 4 : 1;

    // Safety bound state: at most 2 concurrent DRAM faults per socket,
    // at most 1 fabric fault system-wide (see file comment).
    std::vector<unsigned> dramActive(cfg.sockets, 0);
    std::vector<ActiveFault> outstanding;

    const auto removeOutstanding = [&](std::size_t idx) {
        const ActiveFault f = outstanding[idx];
        if (!f.fabric && f.desc.scope != FaultScope::Metadata)
            --dramActive[f.desc.socket];
        outstanding.erase(outstanding.begin()
                          + static_cast<std::ptrdiff_t>(idx));
        return f;
    };

    for (std::uint64_t op = 0; op < cfg.ops; ++op) {
        if (phaseLen > 0 && op > 0 && op % phaseLen == 0) {
            // Phase boundary: retune the budget so the policy has to
            // shed replicas (squeeze) or refill (relax) mid-run.
            FuzzStep bs;
            bs.op = FuzzOp::Budget;
            bs.value = 1 + rng.next(2 * cfg.policyBudget);
            sc.steps.push_back(bs);
            continue;
        }
        const double roll = rng.uniform();
        FuzzStep st;

        if (roll < cfg.faultFraction) {
            const bool heal = !outstanding.empty()
                              && rng.chance(cfg.healShare);
            if (heal) {
                st.op = FuzzOp::Heal;
                st.fault =
                    removeOutstanding(rng.next(outstanding.size())).desc;
            } else {
                // Hammer mode measures the disturbance story alone:
                // no fabric episodes muddying the victim accounting.
                const bool fabric = !cfg.hammerMode
                                    && rng.chance(cfg.fabricShare)
                                    && cfg.sockets >= 2;
                FaultDescriptor d;
                bool ok = false;
                if (fabric) {
                    // One fabric episode at a time: a second link/socket
                    // (or pool) fault would leave no service path at all.
                    bool fabricActive = false;
                    for (const auto &a : outstanding)
                        fabricActive |= a.fabric;
                    if (!fabricActive && sc.poolNodes > 0) {
                        // Pool mode: fabric chaos is pool-scale, the
                        // tier the two-tier replicas actually live on.
                        if (rng.chance(0.4)) {
                            d.scope = FaultScope::FabricPartition;
                        } else {
                            d.scope = FaultScope::PoolNodeOffline;
                            d.socket = static_cast<unsigned>(
                                rng.next(sc.poolNodes));
                        }
                        ok = true;
                    } else if (!fabricActive) {
                        const unsigned a = static_cast<unsigned>(
                            rng.next(cfg.sockets));
                        const unsigned b = (a + 1) % cfg.sockets;
                        if (rng.chance(0.25)) {
                            d.scope = FaultScope::SocketOffline;
                            d.socket = a;
                        } else {
                            d.scope = FaultScope::LinkDown;
                            d.socket = a < b ? a : b;
                            d.peer = a < b ? b : a;
                        }
                        ok = true;
                    }
                } else if (cfg.metadataMode
                           && rng.chance(cfg.metaShare)) {
                    // Control-plane inject: corrupt one structure's
                    // entry for a footprint page the access stream will
                    // consult. Sits outside the codeword-aliasing
                    // bound, so no dramActive accounting (see the file
                    // comment in generator.hh).
                    d.scope = FaultScope::Metadata;
                    d.socket =
                        static_cast<unsigned>(rng.next(cfg.sockets));
                    d.chip = static_cast<unsigned>(
                        rng.next(numMetaStructures));
                    d.row = rng.next(cfg.footprintPages);
                    d.transient = rng.chance(0.5);
                    ok = true;
                } else {
                    const unsigned socket = static_cast<unsigned>(
                        rng.next(cfg.sockets));
                    if (dramActive[socket] < 2) {
                        const Addr line = rng.next(footprintLines);
                        const DramCoord c =
                            amap.decode(line << lineShift);
                        d.socket = socket;
                        d.channel = c.channel;
                        d.rank = c.rank;
                        d.bank = c.bank;
                        d.row = c.row;
                        d.column = c.column;
                        d.chip =
                            static_cast<unsigned>(rng.next(chips));
                        if (cfg.hammerMode) {
                            // Scripted disturbance outcome: a single
                            // (chip, bit) flip in a victim row flanking
                            // the hammered aggressor pair. Stays within
                            // the <= 2-faults-per-socket bound like any
                            // other DRAM inject.
                            d.scope = FaultScope::RowDisturb;
                            d.bank = 0;
                            d.row = rng.chance(0.5) ? 0 : 3;
                            d.bit = static_cast<unsigned>(rng.next(8));
                            d.transient = true;
                        } else {
                            const double shape = rng.uniform();
                            if (shape < 0.4) {
                                d.scope = FaultScope::Cell;
                                d.bit =
                                    static_cast<unsigned>(rng.next(8));
                            } else if (shape < 0.7) {
                                d.scope = FaultScope::Row;
                            } else {
                                d.scope = FaultScope::Chip;
                            }
                            d.transient = rng.chance(0.5);
                        }
                        ok = true;
                    }
                }
                if (!ok) {
                    // Bound hit: degrade to a plain access below.
                    st.op = FuzzOp::Read;
                } else {
                    st.op = FuzzOp::Inject;
                    st.fault = FaultRegistry::normalized(d);
                    const bool isFabric = isFabricScope(st.fault.scope);
                    if (!isFabric
                        && st.fault.scope != FaultScope::Metadata)
                        ++dramActive[st.fault.socket];
                    outstanding.push_back({st.fault, isFabric});
                }
            }
        } else if (roll < cfg.faultFraction + cfg.scrubFraction) {
            st.op = FuzzOp::Scrub;
        } else if (roll
                   < cfg.faultFraction + cfg.scrubFraction
                         + cfg.maintFraction) {
            st.op = FuzzOp::Maintain;
        } else {
            st.op = FuzzOp::Read;
        }

        if (st.op == FuzzOp::Read) {
            // Access: conflict-heavy by construction. Hammer accesses
            // are reads (the attack is activation pressure, not data).
            const bool hammered = cfg.hammerMode && !aggressor.empty()
                                  && rng.chance(cfg.hammerFraction);
            if (!hammered && rng.chance(cfg.writeFraction))
                st.op = FuzzOp::Write;
            st.socket =
                static_cast<unsigned>(rng.next(cfg.sockets));
            st.core =
                static_cast<unsigned>(rng.next(cfg.coresPerSocket));
            if (hammered) {
                st.addr = aggressor[aggIdx++ % aggressor.size()];
            } else if (cfg.policyMode) {
                const Addr base =
                    phaseLen > 0
                        ? Addr((op / phaseLen) % cfg.policyPhases)
                              * policyHotPages % cfg.footprintPages
                              * linesPerPage
                        : 0;
                st.addr =
                    rng.chance(cfg.hotFraction)
                        ? (base
                           + rng.next(Addr(policyHotPages)
                                      * linesPerPage))
                              % footprintLines * lineBytes
                        : rng.next(footprintLines) * lineBytes;
            } else {
                st.addr =
                    rng.chance(cfg.hotFraction) && !hot.empty()
                        ? hot[rng.next(hot.size())]
                        : rng.next(footprintLines) * lineBytes;
            }
            if (st.op == FuzzOp::Write)
                st.value = rng.engine()();
        }
        sc.steps.push_back(st);
    }
    return sc;
}

} // namespace dve
