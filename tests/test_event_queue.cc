/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.hh"
#include "sim/event_queue.hh"

namespace dve
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleIn(4, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, SchedulingIntoPastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_THROW(q.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });

    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);

    // runUntil past all events still advances the clock.
    EXPECT_EQ(q.runUntil(100), 1u);
    EXPECT_EQ(q.now(), 100u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunWithLimit)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [&] { ++fired; });
    EXPECT_EQ(q.run(3), 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(q.pending(), 7u);
}

TEST(EventQueue, NextEventTick)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventTick(), maxTick);
    q.schedule(42, [] {});
    EXPECT_EQ(q.nextEventTick(), 42u);
}

TEST(EventQueue, ExecutedEventsAccumulates)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(i, [] {});
    q.run();
    EXPECT_EQ(q.executedEvents(), 5u);
}

TEST(EventQueue, SameTickFifoSurvivesDispatchTimeScheduling)
{
    // Regression: the old heap-based queue moved the callback out of
    // the top entry via const_cast before popping; a callback that
    // scheduled MORE work for the current tick could reallocate under
    // the moved-from entry. The pooled design must keep FIFO order for
    // events scheduled both before and during dispatch of a tick.
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(0);
        // Same-tick events scheduled mid-dispatch run after everything
        // already queued for this tick, in scheduling order.
        q.schedule(10, [&] { order.push_back(3); });
        q.schedule(10, [&] { order.push_back(4); });
    });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(10, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, DispatchTimeSchedulingBurst)
{
    // Each event at tick t schedules several more while the pool is
    // recycling records; ordering must stay (tick, seq)-exact even as
    // chunks are allocated mid-dispatch.
    EventQueue q;
    std::vector<std::pair<Tick, int>> order;
    int id = 0;
    std::function<void(Tick, int)> fan = [&](Tick base, int depth) {
        order.emplace_back(q.now(), id++);
        if (depth == 0)
            return;
        for (int k = 1; k <= 3; ++k) {
            q.schedule(base + k, [&, base, depth, k] {
                fan(base + k, depth - 1);
            });
        }
    };
    q.schedule(0, [&] { fan(0, 4); });
    q.run();
    ASSERT_FALSE(order.empty());
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LE(order[i - 1].first, order[i].first);
}

TEST(EventQueue, LargeCallableUsesHeapFallbackCorrectly)
{
    // A callable bigger than the record's inline buffer takes the
    // heap-allocated path; behaviour must be identical.
    EventQueue q;
    std::array<std::uint64_t, 16> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    q.schedule(5, [payload, &sum] {
        for (auto v : payload)
            sum += v;
    });
    static_assert(sizeof(payload) + sizeof(void *) > 48,
                  "capture no longer exercises the fallback path");
    q.run();
    EXPECT_EQ(sum, 376u); // sum of 3i+1 for i in [0, 16)
}

TEST(EventQueue, FarFutureEventsCrossCalendarDays)
{
    // Events far beyond the calendar ring land in the overflow heap
    // and must still run in exact order across multiple re-anchors.
    EventQueue q;
    std::vector<Tick> fired;
    const Tick day = Tick(1) << 22; // well past one ring span
    for (int rep = 0; rep < 4; ++rep) {
        for (Tick off : {Tick(0), Tick(17), Tick(123456)})
            q.schedule(Tick(rep) * day + off,
                       [&fired, &q] { fired.push_back(q.now()); });
    }
    q.run();
    ASSERT_EQ(fired.size(), 12u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(EventQueue, NearThenFarInterleavingStaysOrdered)
{
    // Regression for the ring/overflow boundary: a far event filed to
    // overflow must not be overtaken by a later-scheduled nearer event
    // that lands in the ring after a re-anchor.
    EventQueue q;
    std::vector<Tick> fired;
    const Tick far1 = (Tick(300) << 14) + 5; // beyond the first day
    const Tick far2 = (Tick(350) << 14) + 9;
    q.schedule(far2, [&] { fired.push_back(q.now()); });
    q.schedule(far1, [&] { fired.push_back(q.now()); });
    q.schedule(3, [&] {
        fired.push_back(q.now());
        // After the queue re-anchors past the first day, schedule
        // something between the two far events.
        q.schedule(far1 + 1, [&] { fired.push_back(q.now()); });
    });
    q.run();
    ASSERT_EQ(fired.size(), 4u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
    EXPECT_EQ(fired.back(), far2);
}

TEST(EventQueue, DifferentialVsReferenceHeap)
{
    // Random schedule/run interleavings executed against a textbook
    // (tick, seq) binary heap must match event for event.
    struct RefEv
    {
        Tick when;
        std::uint64_t seq;
        int id;
        bool operator>(const RefEv &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };
    Rng rng(0xD5E5EED5u);
    for (int trial = 0; trial < 20; ++trial) {
        EventQueue q;
        std::priority_queue<RefEv, std::vector<RefEv>, std::greater<>>
            ref;
        std::uint64_t seq = 0;
        std::vector<int> got, want;
        int id = 0;
        Tick horizon = 0;
        for (int step = 0; step < 400; ++step) {
            if (rng.next(4) != 0 || q.empty()) {
                // Schedule 1-4 events at assorted distances, some far
                // enough to exercise the overflow heap.
                const int n = static_cast<int>(1 + rng.next(4));
                for (int k = 0; k < n; ++k) {
                    const Tick delta = rng.next(3) == 0
                                           ? rng.next(1u << 20)
                                           : rng.next(512);
                    const Tick when = q.now() + delta;
                    const int this_id = id++;
                    q.schedule(when,
                               [&got, this_id] {
                                   got.push_back(this_id);
                               });
                    ref.push({when, seq++, this_id});
                }
            } else {
                // Drain a random number of events from both queues.
                const std::uint64_t burst = 1 + rng.next(8);
                const std::uint64_t ran = q.run(burst);
                for (std::uint64_t i = 0; i < ran; ++i) {
                    want.push_back(ref.top().id);
                    horizon = ref.top().when;
                    ref.pop();
                }
                if (ran)
                    ASSERT_EQ(q.now(), horizon);
            }
        }
        q.run();
        while (!ref.empty()) {
            want.push_back(ref.top().id);
            ref.pop();
        }
        ASSERT_EQ(got, want) << "trial " << trial;
    }
}

TEST(EventQueue, PoolRecyclesRecordsAcrossBursts)
{
    // Alternating fill/drain phases must not grow allocation without
    // bound; indirectly verified by executed-event accounting and the
    // queue returning to empty.
    EventQueue q;
    std::uint64_t fired = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 200; ++i)
            q.scheduleIn(1 + (i % 7), [&] { ++fired; });
        q.run();
        EXPECT_TRUE(q.empty());
    }
    EXPECT_EQ(fired, 50u * 200u);
    EXPECT_EQ(q.executedEvents(), fired);
}

TEST(EventQueue, HeavyChurnDeterministic)
{
    // Two identical runs produce identical execution traces.
    auto run = [] {
        EventQueue q;
        std::vector<Tick> trace;
        // Self-rescheduling chain plus bulk events.
        std::function<void()> chain = [&] {
            trace.push_back(q.now());
            if (q.now() < 1000)
                q.scheduleIn(7, chain);
        };
        q.schedule(0, chain);
        for (Tick t = 0; t < 500; t += 13)
            q.schedule(t, [&trace, &q] { trace.push_back(q.now()); });
        q.run();
        return trace;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace dve
