#include "protocol_check/model.hh"

#include <bit>
#include <sstream>

#include "common/logging.hh"

namespace dve
{
namespace pcheck
{

const char *
checkProtocolName(CheckProtocol p)
{
    switch (p) {
      case CheckProtocol::BaselineMsi: return "baseline-msi";
      case CheckProtocol::Allow: return "allow";
      case CheckProtocol::Deny: return "deny";
    }
    return "?";
}

const char *
csName(CS s)
{
    switch (s) {
      case CS::I: return "I";
      case CS::IS_D: return "IS_D";
      case CS::IS_D_I: return "IS_D_I";
      case CS::IM_AD: return "IM_AD";
      case CS::IM_A: return "IM_A";
      case CS::S: return "S";
      case CS::SM_AD: return "SM_AD";
      case CS::SM_A: return "SM_A";
      case CS::M: return "M";
      case CS::MI_A: return "MI_A";
      case CS::SI_A: return "SI_A";
      case CS::II_A: return "II_A";
    }
    return "?";
}

const char *
dsName(DS s)
{
    switch (s) {
      case DS::I: return "I";
      case DS::S: return "S";
      case DS::M: return "M";
      case DS::S_D: return "S_D";
    }
    return "?";
}

const char *
rsName(RS s)
{
    switch (s) {
      case RS::None: return "None";
      case RS::Readable: return "Readable";
      case RS::RM: return "RM";
      case RS::M_rep: return "M_rep";
    }
    return "?";
}

const char *
mtName(MT t)
{
    switch (t) {
      case MT::GetS: return "GetS";
      case MT::GetM: return "GetM";
      case MT::PutM: return "PutM";
      case MT::FwdGetS: return "FwdGetS";
      case MT::FwdGetM: return "FwdGetM";
      case MT::Inv: return "Inv";
      case MT::InvAck: return "InvAck";
      case MT::PutAck: return "PutAck";
      case MT::Data: return "Data";
      case MT::DataDir: return "DataDir";
      case MT::PermReq: return "PermReq";
      case MT::PermAck: return "PermAck";
      case MT::RmPush: return "RmPush";
      case MT::RdOwn: return "RdOwn";
      case MT::WbRd: return "WbRd";
    }
    return "?";
}

std::string
State::encode() const
{
    std::string out;
    out.reserve(64 + chan.size() * 4);
    for (const auto &c : caches) {
        out.push_back(static_cast<char>(c.state));
        out.push_back(static_cast<char>(c.value));
        out.push_back(static_cast<char>(c.acksNeeded + 64));
        out.push_back(static_cast<char>(c.hasData));
        out.push_back(static_cast<char>(c.budget));
    }
    out.push_back(static_cast<char>(hd.state));
    out.push_back(static_cast<char>(hd.owner + 1));
    out.push_back(static_cast<char>(hd.sharers));
    out.push_back(static_cast<char>(hd.mem));
    out.push_back(static_cast<char>(hd.pendingReq + 1));
    out.push_back(static_cast<char>(hd.pendingIsGetM));
    out.push_back(static_cast<char>(rd.entry));
    out.push_back(static_cast<char>(rd.owner + 1));
    out.push_back(static_cast<char>(rd.repSharers));
    out.push_back(static_cast<char>(rd.mem));
    out.push_back(static_cast<char>(rd.pendingInvAcks));
    out.push_back(static_cast<char>(rd.invRequester + 1));
    out.push_back(static_cast<char>(rd.permPending));
    out.push_back(static_cast<char>(rd.permRequester + 1));
    out.push_back(static_cast<char>(lastWrite));
    for (const auto &q : chan) {
        out.push_back(static_cast<char>(q.size()));
        for (const auto &m : q) {
            out.push_back(static_cast<char>(m.type));
            out.push_back(static_cast<char>(m.src));
            out.push_back(static_cast<char>(m.origin));
            out.push_back(static_cast<char>(m.value));
            out.push_back(static_cast<char>(m.acks + 64));
            out.push_back(static_cast<char>(m.grantM));
        }
    }
    return out;
}

Model::Model(const ModelConfig &cfg) : cfg_(cfg)
{
    dve_assert(cfg_.homeCaches >= 1 && cfg_.homeCaches <= 3,
               "1..3 home caches supported");
    dve_assert(cfg_.replicaCaches <= 1,
               "the model supports at most one replica-side cache");
    nAgents_ = cfg_.caches() + 2; // + HD + RD
}

State
Model::initial() const
{
    State s;
    s.caches.assign(cfg_.caches(), State::Cache{});
    for (auto &c : s.caches)
        c.budget = static_cast<std::uint8_t>(cfg_.opBudget);
    s.chan.assign(std::size_t(nAgents_) * nAgents_, {});
    return s;
}

void
Model::send(State &s, Agent src, Agent dst, Message m) const
{
    m.src = src;
    s.chan[std::size_t(src) * nAgents_ + dst].push_back(m);
}

bool
Model::quiescent(const State &s) const
{
    for (const auto &q : s.chan) {
        if (!q.empty())
            return false;
    }
    for (const auto &c : s.caches) {
        if (c.state != CS::I && c.state != CS::S && c.state != CS::M)
            return false;
    }
    return s.hd.state != DS::S_D && s.rd.pendingInvAcks == 0
           && !s.rd.permPending;
}

// --------------------------------------------------------------------
// Cache behaviour
// --------------------------------------------------------------------

void
Model::cacheWriteCompletes(State &s, unsigned c) const
{
    auto &cc = s.caches[c];
    cc.state = CS::M;
    cc.hasData = false;
    cc.value = ++s.lastWrite; // the store retires with a unique value
}

void
Model::maybeFinishGetM(State &s, unsigned c) const
{
    auto &cc = s.caches[c];
    if (cc.hasData && cc.acksNeeded == 0)
        cacheWriteCompletes(s, c);
}

bool
Model::deliverToCache(State &s, unsigned c, const Message &m) const
{
    auto &cc = s.caches[c];
    const Agent me = static_cast<Agent>(c);

    switch (m.type) {
      case MT::Data:
        switch (cc.state) {
          case CS::IS_D:
            cc.state = CS::S;
            cc.value = m.value;
            return true;
          case CS::IS_D_I:
            cc.state = CS::I;
            return true;
          case CS::IM_AD:
          case CS::SM_AD:
            dve_assert(m.grantM, "GetM answered with an S grant");
            cc.hasData = true;
            cc.value = m.value;
            cc.acksNeeded =
                static_cast<std::int8_t>(cc.acksNeeded + m.acks);
            if (cc.acksNeeded == 0) {
                cacheWriteCompletes(s, c);
            } else {
                cc.state = cc.state == CS::IM_AD ? CS::IM_A : CS::SM_A;
            }
            return true;
          default:
            dve_panic("Data in cache state ", csName(cc.state));
        }

      case MT::InvAck:
        switch (cc.state) {
          case CS::IM_AD:
          case CS::SM_AD:
          case CS::IM_A:
          case CS::SM_A:
            --cc.acksNeeded;
            maybeFinishGetM(s, c);
            return true;
          default:
            dve_panic("InvAck in cache state ", csName(cc.state));
        }

      case MT::Inv:
        // Invalidate a (possibly stale) shared copy; ack the requester.
        switch (cc.state) {
          case CS::S:
            cc.state = CS::I;
            break;
          case CS::SM_AD:
            cc.state = CS::IM_AD;
            break;
          case CS::IS_D:
            cc.state = CS::IS_D_I;
            break;
          default:
            break; // I, IS_D_I, IM_*, M*, *I_A: stale inval, just ack
        }
        send(s, me, m.origin, {MT::InvAck, me, me, 0, 0, false});
        return true;

      case MT::FwdGetS:
        switch (cc.state) {
          case CS::M:
          case CS::MI_A: {
            send(s, me, m.origin,
                 {MT::Data, me, me, cc.value, 0, false});
            send(s, me, hdId(),
                 {MT::DataDir, me, me, cc.value, 0, false});
            cc.state = cc.state == CS::M ? CS::S : CS::SI_A;
            return true;
          }
          case CS::IM_AD:
          case CS::IM_A:
          case CS::SM_AD:
          case CS::SM_A:
            return false; // stall until the write completes
          default:
            dve_panic("FwdGetS in cache state ", csName(cc.state));
        }

      case MT::FwdGetM:
        switch (cc.state) {
          case CS::M:
          case CS::MI_A:
            send(s, me, m.origin,
                 {MT::Data, me, me, cc.value, m.acks, true});
            cc.state = cc.state == CS::M ? CS::I : CS::II_A;
            return true;
          case CS::IM_AD:
          case CS::IM_A:
          case CS::SM_AD:
          case CS::SM_A:
            return false; // stall until the write completes
          default:
            dve_panic("FwdGetM in cache state ", csName(cc.state));
        }

      case MT::PutAck:
        switch (cc.state) {
          case CS::MI_A:
          case CS::SI_A:
          case CS::II_A:
            cc.state = CS::I;
            return true;
          default:
            dve_panic("PutAck in cache state ", csName(cc.state));
        }

      default:
        dve_panic("cache received ", mtName(m.type));
    }
}

// --------------------------------------------------------------------
// Home directory behaviour
// --------------------------------------------------------------------

bool
Model::hdGets(State &s, Agent requester) const
{
    auto &hd = s.hd;
    switch (hd.state) {
      case DS::I:
      case DS::S:
        send(s, hdId(), requester,
             {MT::Data, hdId(), hdId(), hd.mem, 0, false});
        hd.sharers |= static_cast<std::uint8_t>(1u << requester);
        hd.state = DS::S;
        return true;
      case DS::M: {
        dve_assert(hd.owner >= 0, "M without owner");
        send(s, hdId(), static_cast<Agent>(hd.owner),
             {MT::FwdGetS, hdId(), requester, 0, 0, false});
        hd.sharers |= static_cast<std::uint8_t>(1u << requester);
        hd.sharers |= static_cast<std::uint8_t>(1u << hd.owner);
        hd.state = DS::S_D;
        hd.pendingReq = static_cast<std::int8_t>(requester);
        return true;
      }
      case DS::S_D:
        return false; // blocked: one transaction at a time per line
    }
    return false;
}

void
Model::hdGrantM(State &s, Agent requester) const
{
    auto &hd = s.hd;
    constexpr std::uint8_t rdBit = 0x80;

    // Deny pushes an RM marker for every home-side exclusive grant; the
    // replica directory's acknowledgment rides the InvAck channel and is
    // counted by the requester like any sharer invalidation.
    const bool deny_push = cfg_.protocol == CheckProtocol::Deny
                           && !isReplicaSide(requester)
                           && !cfg_.bugSkipRmPush;

    std::uint8_t targets =
        hd.sharers
        & static_cast<std::uint8_t>(~(1u << requester));
    int acks = 0;
    for (unsigned c = 0; c < cfg_.caches(); ++c) {
        if (targets & (1u << c)) {
            send(s, hdId(), static_cast<Agent>(c),
                 {MT::Inv, hdId(), requester, 0, 0, false});
            ++acks;
        }
    }
    if (targets & rdBit) {
        // Allow: the replica directory is a registered sharer.
        send(s, hdId(), rdId(),
             {MT::Inv, hdId(), requester, 0, 0, false});
        ++acks;
    }
    if (deny_push) {
        send(s, hdId(), rdId(),
             {MT::RmPush, hdId(), requester, 0, 0, false});
        ++acks;
    }
    if (cfg_.protocol != CheckProtocol::BaselineMsi
        && isReplicaSide(requester)) {
        // Replica-side writer: the replica directory must record the
        // ownership (and invalidate any replica-served sharers) BEFORE
        // the write completes, so its ack is counted like a sharer
        // invalidation. Sent on the ordered HD->RD channel so entry
        // updates serialize in home-transaction order.
        send(s, hdId(), rdId(),
             {MT::RdOwn, hdId(), requester, 0, 0, false});
        if (!cfg_.bugUnackedRdOwn)
            ++acks;
    }

    if (hd.state == DS::M) {
        dve_assert(hd.owner >= 0, "M without owner");
        send(s, hdId(), static_cast<Agent>(hd.owner),
             {MT::FwdGetM, hdId(), requester, 0,
              static_cast<std::int8_t>(acks), false});
    } else {
        send(s, hdId(), requester,
             {MT::Data, hdId(), hdId(), hd.mem,
              static_cast<std::int8_t>(acks), true});
    }
    hd.owner = static_cast<std::int8_t>(requester);
    hd.sharers = static_cast<std::uint8_t>(1u << requester);
    hd.state = DS::M;
}

bool
Model::hdGetm(State &s, Agent requester) const
{
    if (s.hd.state == DS::S_D)
        return false;
    hdGrantM(s, requester);
    return true;
}

bool
Model::deliverToHd(State &s, const Message &m) const
{
    auto &hd = s.hd;
    constexpr std::uint8_t rdBit = 0x80;

    switch (m.type) {
      case MT::GetS:
        return hdGets(s, m.origin);

      case MT::GetM:
        return hdGetm(s, m.origin);

      case MT::PermReq:
        // Allow: the replica directory pulls read permission.
        switch (hd.state) {
          case DS::I:
          case DS::S:
            hd.sharers |= rdBit;
            hd.state = DS::S;
            send(s, hdId(), rdId(),
                 {MT::PermAck, hdId(), m.origin, hd.mem, 0, false});
            return true;
          case DS::M:
            // Dirty at home side: full fetch. Data goes straight to the
            // replica cache; the replica memory is refreshed (and the
            // permission installed) when the owner's data reaches us.
            dve_assert(hd.owner >= 0, "M without owner");
            send(s, hdId(), static_cast<Agent>(hd.owner),
                 {MT::FwdGetS, hdId(), m.origin, 0, 0, false});
            hd.sharers |= rdBit;
            hd.sharers |= static_cast<std::uint8_t>(1u << hd.owner);
            hd.state = DS::S_D;
            hd.pendingReq = static_cast<std::int8_t>(m.origin);
            hd.pendingIsGetM = true; // marks "perm pull" completion
            return true;
          case DS::S_D:
            return false;
        }
        return false;

      case MT::PutM: {
        const bool from_owner =
            hd.state == DS::M
            && hd.owner == static_cast<std::int8_t>(m.origin);
        if (from_owner) {
            hd.mem = m.value;
            send(s, hdId(), m.origin,
                 {MT::PutAck, hdId(), hdId(), 0, 0, false});
            hd.owner = -1;
            const bool retain_perm =
                cfg_.protocol == CheckProtocol::Allow
                && isReplicaSide(m.origin);
            if (cfg_.protocol != CheckProtocol::BaselineMsi) {
                // WbRd.acks == 1 asks the RD to keep a Readable
                // permission (allow retains it after its own cache's
                // writeback and stays registered as a sharer here).
                send(s, hdId(), rdId(),
                     {MT::WbRd, hdId(), hdId(), m.value,
                      static_cast<std::int8_t>(retain_perm ? 1 : 0),
                      false});
            }
            if (retain_perm) {
                hd.sharers = rdBit;
                hd.state = DS::S;
            } else {
                hd.sharers = 0;
                hd.state = DS::I;
            }
            return true;
        }
        if (hd.state == DS::S_D
            && hd.owner == static_cast<std::int8_t>(m.origin)) {
            // Owner's eviction raced our FwdGetS; its Data is still on
            // the way. Absorb the writeback, keep waiting.
            hd.mem = m.value;
            send(s, hdId(), m.origin,
                 {MT::PutAck, hdId(), hdId(), 0, 0, false});
            return true;
        }
        // Stale PutM from a past owner: just ack.
        send(s, hdId(), m.origin,
             {MT::PutAck, hdId(), hdId(), 0, 0, false});
        return true;
      }

      case MT::DataDir:
        dve_assert(hd.state == DS::S_D, "DataDir outside S_D");
        hd.mem = m.value;
        if (cfg_.protocol != CheckProtocol::BaselineMsi) {
            // Refresh the replica copy; when this S_D stemmed from an
            // allow permission pull, also install the permission and
            // register the pulling cache at the replica directory.
            Message wb{MT::WbRd, hdId(),
                       static_cast<Agent>(
                           hd.pendingIsGetM && hd.pendingReq >= 0
                               ? hd.pendingReq
                               : 0),
                       m.value, 0,
                       /*grantM=*/hd.pendingIsGetM};
            send(s, hdId(), rdId(), wb);
        }
        hd.owner = -1;
        hd.state = DS::S;
        hd.pendingReq = -1;
        hd.pendingIsGetM = false;
        return true;

      default:
        dve_panic("home directory received ", mtName(m.type));
    }
}

// --------------------------------------------------------------------
// Replica directory behaviour
// --------------------------------------------------------------------

bool
Model::deliverToRd(State &s, const Message &m) const
{
    auto &rd = s.rd;

    auto beginInvalidation = [&](Agent requester) {
        // Invalidate every replica-side sharer; aggregate their acks
        // into one InvAck toward the requester.
        unsigned pending = 0;
        for (unsigned c = 0; c < cfg_.caches(); ++c) {
            if (rd.repSharers & (1u << c)) {
                send(s, rdId(), static_cast<Agent>(c),
                     {MT::Inv, rdId(), rdId(), 0, 0, false});
                ++pending;
            }
        }
        rd.repSharers = 0;
        if (pending == 0) {
            send(s, rdId(), requester,
                 {MT::InvAck, rdId(), rdId(), 0, 0, false});
        } else {
            rd.pendingInvAcks = static_cast<std::uint8_t>(pending);
            rd.invRequester = static_cast<std::int8_t>(requester);
        }
    };

    switch (m.type) {
      case MT::GetS: {
        const Agent req = m.origin;
        if (rd.entry == RS::RM || rd.entry == RS::M_rep) {
            // Replica unreadable (or ownership bookkeeping still in
            // flight): forward to home, which has the authoritative
            // state.
            send(s, rdId(), hdId(),
                 {MT::GetS, rdId(), req, 0, 0, false});
            return true;
        }
        if (rd.entry == RS::None
            && cfg_.protocol == CheckProtocol::Allow) {
            // Pull a permission; serve the data once granted.
            if (rd.permPending)
                return false; // one pull at a time
            rd.permPending = true;
            rd.permRequester = static_cast<std::int8_t>(req);
            send(s, rdId(), hdId(),
                 {MT::PermReq, rdId(), req, 0, 0, false});
            return true;
        }
        // Deny default / explicit Readable: serve from replica memory.
        send(s, rdId(), req,
             {MT::Data, rdId(), rdId(), rd.mem, 0, false});
        rd.entry = RS::Readable;
        rd.repSharers |= static_cast<std::uint8_t>(1u << req);
        return true;
      }

      case MT::GetM:
        // Writes serialize at home; ownership is recorded when the home
        // grants (RdOwn on the ordered HD->RD channel), never here --
        // updating the entry at forward time races in-flight WbRds.
        rd.repSharers &=
            static_cast<std::uint8_t>(~(1u << m.origin));
        send(s, rdId(), hdId(),
             {MT::GetM, rdId(), m.origin, 0, 0, false});
        return true;

      case MT::PutM:
        // Pass through: the home applies it and mirrors the data back
        // via WbRd, keeping all entry/memory updates home-ordered.
        send(s, rdId(), hdId(),
             {MT::PutM, rdId(), m.origin, m.value, 0, false});
        return true;

      case MT::RdOwn:
        if (rd.pendingInvAcks > 0)
            return false; // finish the previous collection first
        rd.entry = RS::M_rep;
        rd.owner = static_cast<std::int8_t>(m.origin);
        if (!cfg_.bugUnackedRdOwn)
            beginInvalidation(m.origin);
        return true;

      case MT::RmPush:
        if (rd.pendingInvAcks > 0)
            return false; // finish the previous collection first
        rd.entry = RS::RM;
        rd.owner = -1;
        beginInvalidation(m.origin);
        return true;

      case MT::Inv: // allow: home invalidating our Readable permission
        if (rd.pendingInvAcks > 0)
            return false;
        rd.entry = RS::None;
        rd.owner = -1;
        beginInvalidation(m.origin);
        return true;

      case MT::InvAck:
        dve_assert(rd.pendingInvAcks > 0, "unexpected InvAck at RD");
        if (--rd.pendingInvAcks == 0) {
            send(s, rdId(), static_cast<Agent>(rd.invRequester),
                 {MT::InvAck, rdId(), rdId(), 0, 0, false});
            rd.invRequester = -1;
        }
        return true;

      case MT::PermAck:
        dve_assert(rd.permPending, "PermAck without a pull");
        rd.entry = RS::Readable;
        rd.mem = m.value; // memories are clean: adopt the home image
        send(s, rdId(), static_cast<Agent>(rd.permRequester),
             {MT::Data, rdId(), rdId(), rd.mem, 0, false});
        rd.repSharers |=
            static_cast<std::uint8_t>(1u << rd.permRequester);
        rd.permPending = false;
        rd.permRequester = -1;
        return true;

      case MT::WbRd:
        rd.mem = m.value;
        if (rd.entry == RS::RM || rd.entry == RS::M_rep) {
            rd.entry = m.acks != 0 ? RS::Readable : RS::None;
            rd.owner = -1;
        }
        if (m.grantM) {
            // Allow permission install after a dirty-line pull: the
            // pulling cache received data straight from the owner.
            rd.entry = RS::Readable;
            rd.repSharers |=
                static_cast<std::uint8_t>(1u << m.origin);
            rd.permPending = false;
            rd.permRequester = -1;
        }
        return true;

      default:
        dve_panic("replica directory received ", mtName(m.type));
    }
}

// --------------------------------------------------------------------
// Transition enumeration
// --------------------------------------------------------------------

std::vector<Model::Successor>
Model::successors(const State &s) const
{
    std::vector<Successor> out;

    // Spontaneous cache operations (budget-limited).
    for (unsigned c = 0; c < cfg_.caches(); ++c) {
        const auto &cc = s.caches[c];
        if (cc.budget == 0)
            continue;
        const Agent dir = isReplicaSide(c) ? rdId() : hdId();
        const Agent me = static_cast<Agent>(c);

        auto spawn = [&](const char *label, auto &&mut) {
            State next = s;
            --next.caches[c].budget;
            mut(next);
            std::ostringstream os;
            os << "C" << c << ":" << label;
            out.push_back({std::move(next), os.str()});
        };

        if (cc.state == CS::I) {
            spawn("GetS", [&](State &n) {
                n.caches[c].state = CS::IS_D;
                send(n, me, dir, {MT::GetS, me, me, 0, 0, false});
            });
            spawn("GetM", [&](State &n) {
                n.caches[c].state = CS::IM_AD;
                n.caches[c].acksNeeded = 0;
                n.caches[c].hasData = false;
                send(n, me, dir, {MT::GetM, me, me, 0, 0, false});
            });
        } else if (cc.state == CS::S) {
            spawn("Upgrade", [&](State &n) {
                n.caches[c].state = CS::SM_AD;
                n.caches[c].acksNeeded = 0;
                n.caches[c].hasData = false;
                send(n, me, dir, {MT::GetM, me, me, 0, 0, false});
            });
            spawn("EvictS", [&](State &n) {
                n.caches[c].state = CS::I; // silent clean eviction
            });
        } else if (cc.state == CS::M) {
            spawn("PutM", [&](State &n) {
                n.caches[c].state = CS::MI_A;
                send(n, me, dir,
                     {MT::PutM, me, me, n.caches[c].value, 0, false});
            });
        }
    }

    // Message deliveries: the head of any channel, if consumable.
    for (unsigned src = 0; src < nAgents_; ++src) {
        for (unsigned dst = 0; dst < nAgents_; ++dst) {
            const auto &q = s.chan[std::size_t(src) * nAgents_ + dst];
            if (q.empty())
                continue;
            State next = s;
            auto &nq = next.chan[std::size_t(src) * nAgents_ + dst];
            const Message m = nq.front();

            bool consumed;
            if (dst < cfg_.caches()) {
                consumed = deliverToCache(next, dst, m);
            } else if (dst == hdId()) {
                consumed = deliverToHd(next, m);
            } else {
                consumed = deliverToRd(next, m);
            }
            if (!consumed)
                continue; // stalled at the head: not enabled
            nq.erase(nq.begin());

            std::ostringstream os;
            os << mtName(m.type) << " " << unsigned(src) << "->"
               << unsigned(dst);
            out.push_back({std::move(next), os.str()});
        }
    }
    return out;
}

// --------------------------------------------------------------------
// Invariants
// --------------------------------------------------------------------

std::optional<std::string>
Model::checkInvariants(const State &s) const
{
    // SWMR: at most one M; no S coexists with an M.
    unsigned writers = 0, readers = 0;
    for (const auto &c : s.caches) {
        writers += c.state == CS::M;
        readers += c.state == CS::S;
    }
    if (writers > 1)
        return "SWMR violated: two caches in M";
    if (writers == 1 && readers > 0)
        return "SWMR violated: M coexists with S";

    // Data-value invariant: stable readable/writable copies hold the
    // last coherence-ordered write.
    for (unsigned c = 0; c < s.caches.size(); ++c) {
        const auto &cc = s.caches[c];
        if ((cc.state == CS::S || cc.state == CS::M)
            && cc.value != s.lastWrite) {
            std::ostringstream os;
            os << "value violated: C" << c << " in " << csName(cc.state)
               << " holds " << unsigned(cc.value) << " != lastWrite "
               << unsigned(s.lastWrite);
            return os.str();
        }
    }

    // Memory invariant: with no dirty owner, home memory is current.
    if ((s.hd.state == DS::I || s.hd.state == DS::S)
        && s.hd.mem != s.lastWrite) {
        return "home memory stale in clean directory state";
    }

    // Replica-readability invariant (the heart of Dvé's safety): when
    // the replica directory would serve a read right now, the replica
    // memory must hold the last coherence-ordered write.
    if (cfg_.protocol != CheckProtocol::BaselineMsi
        && s.rd.pendingInvAcks == 0) {
        const bool servable =
            cfg_.protocol == CheckProtocol::Deny
                ? (s.rd.entry == RS::None || s.rd.entry == RS::Readable)
                : s.rd.entry == RS::Readable;
        if (servable && s.rd.mem != s.lastWrite)
            return "replica readable but stale";
    }
    return std::nullopt;
}

} // namespace pcheck
} // namespace dve
