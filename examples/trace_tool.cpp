/**
 * @file
 * Trace tooling: generate a workload's synchronization-aware trace,
 * save it in the binary format, reload it, and print a summary -- the
 * Prism/SynchroTrace-style workflow of the paper's methodology. The
 * `run` subcommand executes a workload with the event tracer enabled
 * and writes a Chrome trace_event JSON timeline (open it in
 * chrome://tracing or https://ui.perfetto.dev).
 *
 *   $ ./build/examples/trace_tool gen  <workload> <file> [threads] [scale]
 *   $ ./build/examples/trace_tool info <file>
 *   $ ./build/examples/trace_tool run  <workload> <out.json> [scheme] [scale]
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/logging.hh"
#include "sys/system.hh"
#include "trace/workloads.hh"

using namespace dve;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: trace_tool gen <workload> <file> [threads] "
                 "[scale]\n"
                 "       trace_tool info <file>\n"
                 "       trace_tool run <workload> <out.json> [scheme] "
                 "[scale]\n");
    return 2;
}

void
summarize(const ThreadTraces &traces)
{
    std::array<std::uint64_t, 6> counts{};
    std::uint64_t compute_cycles = 0;
    for (const auto &thread : traces) {
        for (const auto &op : thread) {
            ++counts[static_cast<unsigned>(op.type)];
            if (op.type == OpType::Compute)
                compute_cycles += op.arg;
        }
    }
    std::printf("threads          : %zu\n", traces.size());
    std::printf("events           : %llu\n",
                static_cast<unsigned long long>(totalOps(traces)));
    for (unsigned t = 0; t < counts.size(); ++t) {
        std::printf("  %-14s : %llu\n",
                    opTypeName(static_cast<OpType>(t)),
                    static_cast<unsigned long long>(counts[t]));
    }
    std::printf("compute cycles   : %llu\n",
                static_cast<unsigned long long>(compute_cycles));
    const double mem = static_cast<double>(totalMemOps(traces));
    std::printf("write fraction   : %.1f%%\n",
                mem > 0 ? 100.0 * double(counts[1]) / mem : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();

    if (std::strcmp(argv[1], "gen") == 0) {
        if (argc < 4)
            return usage();
        const WorkloadProfile &wl = workloadByName(argv[2]);
        const unsigned threads =
            argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 16;
        const double scale = argc > 5 ? std::atof(argv[5]) : 1.0;

        const auto traces = generateTraces(wl, threads, scale);
        std::ofstream os(argv[3], std::ios::binary);
        if (!os)
            dve_fatal("cannot open '", argv[3], "' for writing");
        writeTraces(os, traces);
        std::printf("wrote '%s' (%s/%s)\n", argv[3], wl.suite.c_str(),
                    wl.name.c_str());
        summarize(traces);
        return 0;
    }

    if (std::strcmp(argv[1], "info") == 0) {
        std::ifstream is(argv[2], std::ios::binary);
        if (!is)
            dve_fatal("cannot open '", argv[2], "'");
        const auto traces = readTraces(is);
        std::printf("trace '%s'\n", argv[2]);
        summarize(traces);
        return 0;
    }

    if (std::strcmp(argv[1], "run") == 0) {
        const WorkloadProfile &wl = workloadByName(argv[2]);
        SystemConfig cfg;
        cfg.scheme = SchemeKind::DveDynamic;
        if (argc > 4) {
            bool found = false;
            for (unsigned k = 0; k < 6 && !found; ++k) {
                const auto s = static_cast<SchemeKind>(k);
                if (std::strcmp(argv[4], schemeKindName(s)) == 0) {
                    cfg.scheme = s;
                    found = true;
                }
            }
            if (!found)
                dve_fatal("unknown scheme '", argv[4], "'");
        }
        const double scale = argc > 5 ? std::atof(argv[5]) : 0.1;
        cfg.engine.traceCapacity = 1u << 16;

        System sys(cfg);
        const RunResult res = sys.run(wl, scale);
        std::ofstream os(argv[3]);
        if (!os)
            dve_fatal("cannot open '", argv[3], "' for writing");
        os << res.traceJson;
        std::printf("ran '%s' on %s: %llu mem ops, ROI %.1f us\n",
                    wl.name.c_str(), schemeKindName(cfg.scheme),
                    static_cast<unsigned long long>(res.memOps),
                    ticksToNs(res.roiTime) / 1000.0);
        std::printf("request latency p50/p99/max: %llu/%llu/%llu "
                    "ticks over %llu requests\n",
                    static_cast<unsigned long long>(res.reqLatency.p50),
                    static_cast<unsigned long long>(res.reqLatency.p99),
                    static_cast<unsigned long long>(res.reqLatency.max),
                    static_cast<unsigned long long>(
                        res.reqLatency.count));
        std::printf("wrote Chrome trace to '%s' (open in "
                    "chrome://tracing or ui.perfetto.dev)\n", argv[3]);
        return 0;
    }
    return usage();
}
