# Empty dependencies file for dve_reliability.
# This may be replaced when dependencies are built.
