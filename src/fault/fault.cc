#include "fault/fault.hh"

#include <algorithm>

namespace dve
{

const char *
faultScopeName(FaultScope s)
{
    switch (s) {
      case FaultScope::Cell: return "cell";
      case FaultScope::Row: return "row";
      case FaultScope::Column: return "column";
      case FaultScope::Bank: return "bank";
      case FaultScope::Chip: return "chip";
      case FaultScope::Channel: return "channel";
      case FaultScope::Controller: return "controller";
    }
    return "?";
}

std::uint64_t
FaultRegistry::inject(FaultDescriptor f)
{
    f.id = nextId_++;
    faults_.push_back(f);
    return f.id;
}

bool
FaultRegistry::clear(std::uint64_t id)
{
    const auto it = std::find_if(faults_.begin(), faults_.end(),
                                 [&](const FaultDescriptor &f) {
                                     return f.id == id;
                                 });
    if (it == faults_.end())
        return false;
    faults_.erase(it);
    return true;
}

bool
FaultRegistry::matches(const FaultDescriptor &f, unsigned socket,
                       unsigned channel, const DramCoord &coord)
{
    if (f.socket != socket)
        return false;
    if (f.scope == FaultScope::Controller)
        return true;
    if (f.channel != channel)
        return false;
    if (f.scope == FaultScope::Channel)
        return true;
    if (f.rank != coord.rank)
        return false;
    // Remaining scopes are chip-internal.
    switch (f.scope) {
      case FaultScope::Chip:
        return true;
      case FaultScope::Bank:
        return f.bank == coord.bank;
      case FaultScope::Row:
        return f.bank == coord.bank && f.row == coord.row;
      case FaultScope::Column:
        return f.bank == coord.bank && f.column == coord.column;
      case FaultScope::Cell:
        return f.bank == coord.bank && f.row == coord.row
               && f.column == coord.column;
      default:
        return false;
    }
}

FaultImpact
FaultRegistry::impact(unsigned socket, unsigned channel,
                      const DramCoord &coord) const
{
    FaultImpact imp;
    for (const auto &f : faults_) {
        if (!matches(f, socket, channel, coord))
            continue;
        switch (f.scope) {
          case FaultScope::Controller:
          case FaultScope::Channel:
            imp.pathFailed = true;
            break;
          case FaultScope::Cell:
            imp.bitFlips.emplace_back(f.chip, f.bit);
            break;
          default:
            if (std::find(imp.corruptChips.begin(),
                          imp.corruptChips.end(), f.chip)
                == imp.corruptChips.end()) {
                imp.corruptChips.push_back(f.chip);
            }
            break;
        }
    }
    return imp;
}

unsigned
FaultRegistry::repairAt(unsigned socket, unsigned channel,
                        const DramCoord &coord)
{
    unsigned cured = 0;
    for (auto it = faults_.begin(); it != faults_.end();) {
        if (it->transient && matches(*it, socket, channel, coord)) {
            it = faults_.erase(it);
            ++cured;
        } else {
            ++it;
        }
    }
    return cured;
}

} // namespace dve
