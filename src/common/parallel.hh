/**
 * @file
 * Deterministic thread-pool experiment runner.
 *
 * Campaigns and figure harnesses sweep matrices of independent, seeded
 * experiments (trial x scheme, scheme x workload): each point builds its
 * own simulator, derives its RNG streams only from (seed, index), and
 * never shares state with its neighbours. That makes the sweeps
 * embarrassingly parallel -- but the reports must stay byte-identical to
 * the serial run, so results are collected *by task index* and merged in
 * submission order, never in completion order.
 *
 * Two layers:
 *  - ThreadPool: fixed-size worker pool over a bounded queue of opaque
 *    jobs. submit() blocks when the queue is full (backpressure instead
 *    of unbounded buffering); wait() drains to idle.
 *  - parallelMap(n, fn, jobs): run fn(0..n-1), return the results as a
 *    vector indexed by task id. Exceptions thrown by tasks are captured
 *    and the lowest-indexed one is rethrown after the pool drains --
 *    exactly what a serial loop would have surfaced first. jobs <= 1
 *    runs the legacy serial path inline on the calling thread.
 *
 * Job count policy lives here too: jobsFromEnv() reads DVE_BENCH_JOBS
 * (strictly validated; 1 forces serial, unset/empty means hardware
 * concurrency).
 */

#ifndef DVE_COMMON_PARALLEL_HH
#define DVE_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace dve
{

/**
 * Worker-thread job count from DVE_BENCH_JOBS.
 *
 * Unset or empty -> hardware concurrency (at least 1). A set value must
 * be a whole number >= 1 with no trailing garbage ("4", not "4x" or
 * "3.5"); anything else warns and falls back to the default. 1 selects
 * the legacy serial path (no pool, no worker threads).
 */
unsigned jobsFromEnv();

/** Default queue bound: enough to keep workers fed without buffering
 *  the whole sweep. */
constexpr std::size_t defaultQueueBound = 256;

/** Fixed-size worker pool over a bounded task queue. */
class ThreadPool
{
  public:
    /** Spawns @p jobs workers (clamped to >= 1). The queue holds at
     *  most @p max_queued not-yet-claimed tasks; submit() blocks past
     *  that. */
    explicit ThreadPool(unsigned jobs,
                        std::size_t max_queued = defaultQueueBound);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; blocks while the queue is at capacity. The task
     *  must not throw (wrap with captureInto() for exception-safe
     *  fan-out). */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished executing. */
    void wait();

    unsigned jobs() const { return static_cast<unsigned>(workers_.size()); }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable task_ready_;  ///< queue became non-empty
    std::condition_variable space_ready_; ///< queue dropped below bound
    std::condition_variable idle_;        ///< no queued or running tasks
    std::deque<std::function<void()>> queue_;
    std::size_t max_queued_;
    std::size_t running_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

namespace detail
{

/** Wrap a task so a throw lands in @p slot instead of std::terminate. */
template <typename Fn>
std::function<void()>
captureInto(std::exception_ptr &slot, Fn &&fn)
{
    return [&slot, fn = std::forward<Fn>(fn)]() mutable {
        try {
            fn();
        } catch (...) {
            slot = std::current_exception();
        }
    };
}

} // namespace detail

/**
 * Run @p fn(0), ..., @p fn(n-1) on @p jobs workers and return the
 * results ordered by task index.
 *
 * Determinism contract: each task writes only its own result slot, so
 * the returned vector -- and anything merged from it in order -- is
 * identical to the serial run regardless of completion order or jobs.
 * If any task throws, the exception from the lowest task index is
 * rethrown once all tasks have settled (matching what a serial loop
 * would have thrown first); results are discarded.
 *
 * jobs <= 1 (or n <= 1) executes inline on the calling thread with no
 * pool at all -- the legacy serial path, bit-for-bit.
 */
template <typename Fn>
auto
parallelMap(std::size_t n, Fn &&fn, unsigned jobs)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> out;
    out.reserve(n);

    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(fn(i));
        return out;
    }

    std::vector<std::optional<R>> slots(n);
    std::vector<std::exception_ptr> errors(n);
    {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < n; ++i) {
            pool.submit(detail::captureInto(errors[i], [&, i] {
                slots[i].emplace(fn(i));
            }));
        }
        pool.wait();
    }
    for (std::size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(std::move(*slots[i]));
    return out;
}

/** parallelMap() with the job count from DVE_BENCH_JOBS. */
template <typename Fn>
auto
parallelMap(std::size_t n, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    return parallelMap(n, std::forward<Fn>(fn), jobsFromEnv());
}

} // namespace dve

#endif // DVE_COMMON_PARALLEL_HH
