/**
 * @file
 * Fault-injection walkthrough: escalate fault scope from a single cell
 * to a whole memory controller and watch each protection layer respond.
 *
 * Demonstrates the paper's central reliability claim: because Dvé's
 * second copy lives behind a different controller on a different socket,
 * it recovers from faults that defeat every ECC-based scheme -- up to
 * and including memory-controller failure.
 *
 * With no arguments the scripted walkthrough below runs. Alternatively,
 * fault specs can be given on the command line, one per argument, as
 * comma-separated key=value lists:
 *
 *   fault_injection scope=chip,socket=0,chip=3 \
 *                   scope=cell,socket=1,row=12,column=3,bit=5,transient=1
 *
 * Keys: scope (cell|row|column|bank|chip|channel|controller|row-disturb|
 * link-down|link-lossy|socket-offline|pool-node-offline|
 * fabric-partition), socket, peer, channel, rank, chip, bank, row,
 * column, bit, transient, drop, delay. A row-disturb spec names the
 * *victim* row: it behaves like a row-wide single-bit flip, the shape
 * the DRAM disturbance model injects when an aggressor row's activation
 * count crosses its HCfirst threshold. For the pool-scale scopes,
 * socket names the far-memory pool node (pool-node-offline) or is
 * ignored (fabric-partition). Fabric faults also accept the shorthands
 *
 *   fault_injection link:0-1 lossy:0-1,drop=0.5 socket:1 pool:2 partition
 *
 * Each spec is injected in turn and a read of line 0 reports what the
 * system observed. Malformed specs are rejected with a diagnostic.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dve_engine.hh"

using namespace dve;

namespace
{

/** Run one load and report what the memory system observed. */
void
probe(DveEngine &e, Addr addr, Tick &clock, const char *what)
{
    const auto r = e.access(0, 0, addr, false, 0, clock);
    clock = r.done;
    std::printf("  read after %-28s -> value %llu | system CE %llu, "
                "replica recoveries %llu, machine checks %llu, "
                "degraded lines %llu\n",
                what, static_cast<unsigned long long>(r.value),
                static_cast<unsigned long long>(
                    e.systemCorrectedErrors()),
                static_cast<unsigned long long>(e.replicaRecoveries()),
                static_cast<unsigned long long>(
                    e.machineCheckExceptions()),
                static_cast<unsigned long long>(e.degradedLines()));
}

/** Push the cached line out so the next read hits DRAM again. */
void
flushLine(DveEngine &e, Addr addr, Tick &clock)
{
    // Writing from the other socket steals the line; writing it back
    // again and evicting via conflicting fills would also work, but for
    // a demo we simply invalidate through coherence and re-home it.
    const auto w =
        e.access(1, 0, addr, true, e.logicalValue(lineNum(addr)), clock);
    clock = w.done;
    // Stream conflicting lines through socket 1's LLC set to force the
    // dirty eviction (writeback updates both memories).
    for (unsigned i = 1; i <= 40; ++i) {
        const Addr a = addr + Addr(i) * 16384 * 64;
        if (lineNum(a) % 256 != lineNum(addr) % 256)
            continue;
        clock = e.access(1, 0, a, false, 0, clock).done;
    }
}

/** CLI mode: inject the given fault specs one by one against line 0. */
int
runCliFaults(int argc, char **argv)
{
    EngineConfig cfg;
    cfg.llcBytes = 1024 * 1024;
    cfg.dram = DramConfig::ddr4Replicated();
    cfg.scheme = Scheme::ChipkillSscDsd;
    DveEngine e(cfg, DveConfig{});

    const Addr addr = 0x0;
    Tick clock = 0;
    clock = e.access(0, 0, addr, true, 42, clock).done;
    flushLine(e, addr, clock);
    std::printf("wrote 42 to line 0 (home socket 0, replica socket 1)\n");

    int rc = 0;
    for (int i = 1; i < argc; ++i) {
        std::string err;
        const auto f = parseFaultSpec(argv[i], &err);
        if (!f) {
            std::fprintf(stderr, "bad fault spec '%s': %s\n", argv[i],
                         err.c_str());
            rc = 1;
            continue;
        }
        const auto id = e.faultRegistry().inject(*f);
        if (id == 0) {
            std::printf("%-40s -> rejected (out of range)\n", argv[i]);
            continue;
        }
        std::printf("injected %s fault (id %llu)\n",
                    faultScopeName(f->scope),
                    static_cast<unsigned long long>(id));
        flushLine(e, addr, clock);
        probe(e, addr, clock, argv[i]);
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1)
        return runCliFaults(argc, argv);

    EngineConfig cfg;
    cfg.llcBytes = 1024 * 1024; // quicker evictions for the demo
    cfg.dram = DramConfig::ddr4Replicated();
    cfg.scheme = Scheme::ChipkillSscDsd;
    DveConfig dcfg; // deny protocol, fixed full replication
    DveEngine e(cfg, dcfg);

    const Addr addr = 0x0; // page 0: home socket 0, replica socket 1
    Tick clock = 0;

    std::printf("Dvé fault-injection demo (Chipkill DIMMs + cross-"
                "socket replica)\n\n");
    clock = e.access(0, 0, addr, true, 42, clock).done;
    flushLine(e, addr, clock);
    std::printf("wrote 42; line is now resident in both sockets' "
                "memories (home=%llu replica=%llu)\n\n",
                static_cast<unsigned long long>(e.memory(0).peek(addr)),
                static_cast<unsigned long long>(e.memory(1).peek(addr)));

    // --- 1: single chip failure: Chipkill corrects locally. ----------
    FaultDescriptor chip;
    chip.scope = FaultScope::Chip;
    chip.socket = 0;
    chip.chip = 3;
    const auto chip_id = e.faultRegistry().inject(chip);
    std::printf("1) one DRAM chip fails on socket 0:\n");
    probe(e, addr, clock, "chip failure (Chipkill fixes)");
    e.faultRegistry().clear(chip_id);

    // --- 2: double chip failure: beyond Chipkill, Dvé diverts. -------
    std::printf("\n2) two chips fail in the same rank (defeats "
                "Chipkill):\n");
    for (unsigned c : {2u, 11u}) {
        FaultDescriptor f = chip;
        f.chip = c;
        f.transient = true; // cured by the recovery rewrite
        e.faultRegistry().inject(f);
    }
    flushLine(e, addr, clock);
    probe(e, addr, clock, "2-chip failure (replica heals)");

    // --- 3: whole memory-controller failure. -------------------------
    std::printf("\n3) socket 0's memory controller fails outright:\n");
    FaultDescriptor mc;
    mc.scope = FaultScope::Controller;
    mc.socket = 0;
    e.faultRegistry().inject(mc);
    flushLine(e, addr, clock);
    probe(e, addr, clock, "controller failure (degraded)");
    probe(e, addr, clock, "second read (funneled copy)");

    // --- 4: and finally the replica dies too: data loss, detected. ---
    std::printf("\n4) the replica controller fails as well:\n");
    FaultDescriptor mc2 = mc;
    mc2.socket = 1;
    e.faultRegistry().inject(mc2);
    flushLine(e, addr, clock);
    probe(e, addr, clock, "both copies gone (DUE)");

    // --- 5: far-memory pool tier: node loss demotes, heals back. -----
    std::printf("\n5) two-tier protection: replica lives on a far-memory "
                "pool node:\n");
    EngineConfig pcfg = cfg;
    DveConfig pdcfg;
    pdcfg.poolNodes = 3;
    DveEngine ep(pcfg, pdcfg);
    Tick pclock = 0;
    pclock = ep.access(0, 0, addr, true, 42, pclock).done;
    flushLine(ep, addr, pclock);
    const unsigned node = ep.poolNodeOf(lineNum(addr));
    std::printf("  line 0's replica sits on pool node %u of %u\n", node,
                pdcfg.poolNodes);
    FaultDescriptor off;
    off.scope = FaultScope::PoolNodeOffline;
    off.socket = node;
    ep.faultRegistry().inject(off);
    // A replica-side read finds the pool path dead: the line demotes to
    // local-ECC-only service and the home copy answers.
    const auto r1 = ep.access(1, 0, addr, false, 0, pclock);
    pclock = r1.done;
    std::printf("  replica-side read during the outage -> value %llu "
                "(home copy), degraded lines %llu\n",
                static_cast<unsigned long long>(r1.value),
                static_cast<unsigned long long>(ep.degradedLines()));
    // Give the repair task's retry backoff time to expire, then let the
    // self-healing pass move the page onto a surviving node.
    pclock += 10 * ticksPerUs;
    pclock = ep.runMaintenance(pclock).finishedAt;
    const auto r2 = ep.access(1, 0, addr, false, 0, pclock);
    pclock = r2.done;
    std::printf("  after heal-back onto a surviving node -> value %llu, "
                "degraded lines %llu\n",
                static_cast<unsigned long long>(r2.value),
                static_cast<unsigned long long>(ep.degradedLines()));
    std::printf("  pool reads %llu, retargets %llu, degraded lines "
                "%llu\n",
                static_cast<unsigned long long>(ep.poolReplicaReads()),
                static_cast<unsigned long long>(ep.poolRetargets()),
                static_cast<unsigned long long>(ep.degradedLines()));

    std::printf("\nEvery step was detected; data was lost only when "
                "both independent\ncontrollers had failed -- the "
                "machine-check, not silent corruption.\n");
    return 0;
}
