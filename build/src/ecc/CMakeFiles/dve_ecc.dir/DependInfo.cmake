
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/crc.cc" "src/ecc/CMakeFiles/dve_ecc.dir/crc.cc.o" "gcc" "src/ecc/CMakeFiles/dve_ecc.dir/crc.cc.o.d"
  "/root/repo/src/ecc/gf.cc" "src/ecc/CMakeFiles/dve_ecc.dir/gf.cc.o" "gcc" "src/ecc/CMakeFiles/dve_ecc.dir/gf.cc.o.d"
  "/root/repo/src/ecc/hamming.cc" "src/ecc/CMakeFiles/dve_ecc.dir/hamming.cc.o" "gcc" "src/ecc/CMakeFiles/dve_ecc.dir/hamming.cc.o.d"
  "/root/repo/src/ecc/line_codec.cc" "src/ecc/CMakeFiles/dve_ecc.dir/line_codec.cc.o" "gcc" "src/ecc/CMakeFiles/dve_ecc.dir/line_codec.cc.o.d"
  "/root/repo/src/ecc/reed_solomon.cc" "src/ecc/CMakeFiles/dve_ecc.dir/reed_solomon.cc.o" "gcc" "src/ecc/CMakeFiles/dve_ecc.dir/reed_solomon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
