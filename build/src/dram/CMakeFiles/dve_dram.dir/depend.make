# Empty dependencies file for dve_dram.
# This may be replaced when dependencies are built.
