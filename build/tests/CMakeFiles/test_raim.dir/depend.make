# Empty dependencies file for test_raim.
# This may be replaced when dependencies are built.
