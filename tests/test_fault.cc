/**
 * @file
 * Tests for fault descriptors and registry matching semantics.
 */

#include <gtest/gtest.h>

#include "fault/fault.hh"

namespace dve
{
namespace
{

DramCoord
coord(unsigned ch, unsigned rank, unsigned bank, std::uint64_t row,
      unsigned col)
{
    DramCoord c;
    c.channel = ch;
    c.rank = rank;
    c.bank = bank;
    c.row = row;
    c.column = col;
    return c;
}

TEST(FaultRegistry, ChipFaultHitsWholeChip)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::Chip;
    f.socket = 0;
    f.channel = 0;
    f.rank = 0;
    f.chip = 3;
    reg.inject(f);

    const auto imp = reg.impact(0, 0, coord(0, 0, 5, 1234, 7));
    ASSERT_EQ(imp.corruptChips.size(), 1u);
    EXPECT_EQ(imp.corruptChips[0], 3u);
    EXPECT_FALSE(imp.pathFailed);

    // Other socket / channel / rank unaffected.
    EXPECT_FALSE(reg.impact(1, 0, coord(0, 0, 5, 1234, 7)).any());
    EXPECT_FALSE(reg.impact(0, 1, coord(0, 0, 5, 1234, 7)).any());
    EXPECT_FALSE(reg.impact(0, 0, coord(0, 1, 5, 1234, 7)).any());
}

TEST(FaultRegistry, RowFaultOnlyHitsItsRow)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::Row;
    f.chip = 1;
    f.bank = 2;
    f.row = 100;
    reg.inject(f);

    EXPECT_TRUE(reg.impact(0, 0, coord(0, 0, 2, 100, 0)).any());
    EXPECT_FALSE(reg.impact(0, 0, coord(0, 0, 2, 101, 0)).any());
    EXPECT_FALSE(reg.impact(0, 0, coord(0, 0, 3, 100, 0)).any());
}

TEST(FaultRegistry, ColumnFaultMatchesAcrossRows)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::Column;
    f.bank = 1;
    f.column = 4;
    reg.inject(f);

    EXPECT_TRUE(reg.impact(0, 0, coord(0, 0, 1, 5, 4)).any());
    EXPECT_TRUE(reg.impact(0, 0, coord(0, 0, 1, 900, 4)).any());
    EXPECT_FALSE(reg.impact(0, 0, coord(0, 0, 1, 5, 3)).any());
}

TEST(FaultRegistry, BankFaultMatchesWholeBank)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::Bank;
    f.bank = 7;
    f.chip = 0;
    reg.inject(f);
    EXPECT_TRUE(reg.impact(0, 0, coord(0, 0, 7, 1, 1)).any());
    EXPECT_FALSE(reg.impact(0, 0, coord(0, 0, 6, 1, 1)).any());
}

TEST(FaultRegistry, CellFaultIsABitFlip)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::Cell;
    f.chip = 2;
    f.bank = 0;
    f.row = 1;
    f.column = 2;
    f.bit = 5;
    reg.inject(f);

    const auto imp = reg.impact(0, 0, coord(0, 0, 0, 1, 2));
    EXPECT_TRUE(imp.corruptChips.empty());
    ASSERT_EQ(imp.bitFlips.size(), 1u);
    EXPECT_EQ(imp.bitFlips[0].first, 2u);
    EXPECT_EQ(imp.bitFlips[0].second, 5u);
}

TEST(FaultRegistry, ChannelAndControllerFailPath)
{
    FaultRegistry reg;
    FaultDescriptor ch;
    ch.scope = FaultScope::Channel;
    ch.socket = 0;
    ch.channel = 1;
    reg.inject(ch);

    EXPECT_TRUE(reg.impact(0, 1, coord(1, 0, 0, 0, 0)).pathFailed);
    EXPECT_FALSE(reg.impact(0, 0, coord(0, 0, 0, 0, 0)).pathFailed);

    FaultDescriptor mc;
    mc.scope = FaultScope::Controller;
    mc.socket = 1;
    reg.inject(mc);
    EXPECT_TRUE(reg.impact(1, 0, coord(0, 0, 0, 0, 0)).pathFailed);
    EXPECT_TRUE(reg.impact(1, 7, coord(3, 0, 0, 0, 0)).pathFailed);
}

TEST(FaultRegistry, DuplicateChipReportedOnce)
{
    FaultRegistry reg;
    FaultDescriptor a;
    a.scope = FaultScope::Chip;
    a.chip = 4;
    FaultDescriptor b;
    b.scope = FaultScope::Bank;
    b.chip = 4;
    b.bank = 0;
    reg.inject(a);
    reg.inject(b);
    const auto imp = reg.impact(0, 0, coord(0, 0, 0, 0, 0));
    EXPECT_EQ(imp.corruptChips.size(), 1u);
}

TEST(FaultRegistry, ClearById)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::Chip;
    const auto id = reg.inject(f);
    EXPECT_EQ(reg.activeCount(), 1u);
    EXPECT_TRUE(reg.clear(id));
    EXPECT_FALSE(reg.clear(id));
    EXPECT_EQ(reg.activeCount(), 0u);
}

TEST(FaultRegistry, RepairCuresOnlyTransients)
{
    FaultRegistry reg;
    FaultDescriptor hard;
    hard.scope = FaultScope::Chip;
    hard.chip = 0;
    FaultDescriptor soft = hard;
    soft.chip = 1;
    soft.transient = true;
    reg.inject(hard);
    reg.inject(soft);

    EXPECT_EQ(reg.repairAt(0, 0, coord(0, 0, 0, 0, 0)), 1u);
    const auto imp = reg.impact(0, 0, coord(0, 0, 0, 0, 0));
    ASSERT_EQ(imp.corruptChips.size(), 1u);
    EXPECT_EQ(imp.corruptChips[0], 0u);
}

TEST(FaultRegistry, ScopeNames)
{
    EXPECT_STREQ(faultScopeName(FaultScope::Chip), "chip");
    EXPECT_STREQ(faultScopeName(FaultScope::Controller), "controller");
}

TEST(FaultRegistry, ParseFaultScopeRoundTrips)
{
    for (unsigned i = 0; i < numFaultScopes; ++i) {
        const auto s = static_cast<FaultScope>(i);
        const auto parsed = parseFaultScope(faultScopeName(s));
        ASSERT_TRUE(parsed.has_value()) << faultScopeName(s);
        EXPECT_EQ(*parsed, s);
    }
    EXPECT_FALSE(parseFaultScope("dimm").has_value());
    EXPECT_FALSE(parseFaultScope("").has_value());
    EXPECT_FALSE(parseFaultScope(nullptr).has_value());
}

TEST(FaultRegistry, DuplicateInjectionReturnsExistingId)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::Bank;
    f.socket = 1;
    f.chip = 3;
    f.bank = 2;

    const auto id1 = reg.inject(f);
    ASSERT_NE(id1, 0u);
    EXPECT_EQ(reg.inject(f), id1);
    EXPECT_EQ(reg.activeCount(), 1u);

    // Fields the scope ignores don't defeat deduplication: a bank fault
    // doesn't care about row/column/bit.
    FaultDescriptor same = f;
    same.row = 99;
    same.column = 7;
    same.bit = 5;
    EXPECT_EQ(reg.inject(same), id1);
    EXPECT_EQ(reg.activeCount(), 1u);

    // A genuinely different fault gets its own id; clearing the original
    // allows re-injection under a fresh id.
    FaultDescriptor other = f;
    other.bank = 3;
    const auto id2 = reg.inject(other);
    EXPECT_NE(id2, id1);
    EXPECT_EQ(reg.activeCount(), 2u);
    EXPECT_TRUE(reg.clear(id1));
    const auto id3 = reg.inject(f);
    EXPECT_NE(id3, 0u);
    EXPECT_NE(id3, id1);
}

TEST(FaultRegistry, TransienceDistinguishesFaults)
{
    FaultRegistry reg;
    FaultDescriptor hard;
    hard.scope = FaultScope::Chip;
    hard.chip = 4;
    FaultDescriptor soft = hard;
    soft.transient = true;
    EXPECT_NE(reg.inject(hard), reg.inject(soft));
    EXPECT_EQ(reg.activeCount(), 2u);
}

TEST(FaultRegistry, GeometryRejectsOutOfRangeCoordinates)
{
    FaultRegistry reg;
    reg.setGeometry(
        FaultGeometry::from(2, 2, 19, DramConfig::ddr4Baseline()));

    FaultDescriptor f;
    f.scope = FaultScope::Cell;
    f.socket = 1;
    f.channel = 1;
    f.chip = 18;
    f.bit = 7;
    EXPECT_NE(reg.inject(f), 0u); // at every upper bound: accepted

    const auto reject = [&](auto &&mutate) {
        FaultDescriptor bad = f;
        mutate(bad);
        EXPECT_EQ(reg.inject(bad), 0u);
    };
    reject([](FaultDescriptor &d) { d.socket = 2; });
    reject([](FaultDescriptor &d) { d.channel = 2; });
    reject([](FaultDescriptor &d) { d.chip = 19; });
    reject([](FaultDescriptor &d) { d.bit = 8; });
    EXPECT_EQ(reg.activeCount(), 1u);

    // Without a geometry (standalone unit-test registries), anything goes.
    FaultRegistry unchecked;
    FaultDescriptor wild = f;
    wild.socket = 99;
    EXPECT_NE(unchecked.inject(wild), 0u);
}

TEST(FaultRegistry, LinkDownIsUnorderedAndSocketScoped)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::LinkDown;
    f.socket = 1;
    f.peer = 0; // injected reversed: the registry canonicalizes the pair
    const auto id = reg.inject(f);
    ASSERT_NE(id, 0u);

    EXPECT_TRUE(reg.linkDown(0, 1));
    EXPECT_TRUE(reg.linkDown(1, 0));
    EXPECT_FALSE(reg.linkDown(0, 2));
    EXPECT_FALSE(reg.socketOffline(0));
    EXPECT_FALSE(reg.socketOffline(1));
    // Fabric faults never corrupt DRAM reads.
    EXPECT_FALSE(reg.impact(0, 0, coord(0, 0, 0, 0, 0)).any());

    reg.clear(id);
    EXPECT_FALSE(reg.linkDown(0, 1));
}

TEST(FaultRegistry, LinkPairDeduplicatesAcrossOrientation)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::LinkDown;
    f.socket = 0;
    f.peer = 1;
    const auto a = reg.inject(f);
    std::swap(f.socket, f.peer);
    const auto b = reg.inject(f);
    EXPECT_EQ(a, b); // same (unordered) link: one active fault
    EXPECT_EQ(reg.activeCount(), 1u);
}

TEST(FaultRegistry, SocketOfflineDownsLinksAndMemoryPath)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::SocketOffline;
    f.socket = 1;
    reg.inject(f);

    EXPECT_TRUE(reg.socketOffline(1));
    EXPECT_FALSE(reg.socketOffline(0));
    // Any link adjacent to the dead socket is down.
    EXPECT_TRUE(reg.linkDown(0, 1));
    EXPECT_TRUE(reg.linkDown(1, 3));
    EXPECT_FALSE(reg.linkDown(0, 2));
    // The socket's memory path fails detectably (machine check), on every
    // channel and coordinate.
    EXPECT_TRUE(reg.impact(1, 0, coord(0, 0, 0, 0, 0)).pathFailed);
    EXPECT_TRUE(reg.impact(1, 1, coord(1, 1, 2, 99, 3)).pathFailed);
    EXPECT_FALSE(reg.impact(0, 0, coord(0, 0, 0, 0, 0)).any());
}

TEST(FaultRegistry, LossyLinkQueryReturnsShape)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::LinkLossy;
    f.socket = 0;
    f.peer = 1;
    f.dropProb = 0.25;
    f.delayTicks = 77;
    reg.inject(f);

    const auto *d = reg.lossyLink(1, 0); // unordered
    ASSERT_NE(d, nullptr);
    EXPECT_DOUBLE_EQ(d->dropProb, 0.25);
    EXPECT_EQ(d->delayTicks, 77u);
    EXPECT_EQ(reg.lossyLink(0, 2), nullptr);
    // Lossy is not down.
    EXPECT_FALSE(reg.linkDown(0, 1));
}

TEST(FaultRegistry, FabricBoundsChecked)
{
    FaultRegistry reg;
    reg.setGeometry(
        FaultGeometry::from(2, 2, 19, DramConfig::ddr4Baseline()));

    FaultDescriptor f;
    f.scope = FaultScope::LinkDown;
    f.socket = 0;
    f.peer = 1;
    EXPECT_NE(reg.inject(f), 0u);

    f.peer = 2;
    EXPECT_EQ(reg.inject(f), 0u); // peer out of range
    f.peer = 0;
    EXPECT_EQ(reg.inject(f), 0u); // self-link is meaningless

    FaultDescriptor lossy;
    lossy.scope = FaultScope::LinkLossy;
    lossy.socket = 0;
    lossy.peer = 1;
    lossy.dropProb = 1.5;
    EXPECT_EQ(reg.inject(lossy), 0u); // probability out of [0,1]

    FaultDescriptor off;
    off.scope = FaultScope::SocketOffline;
    off.socket = 2;
    EXPECT_EQ(reg.inject(off), 0u);
}

TEST(ParseFaultSpec, KeyValueAndShorthandsAccepted)
{
    const auto kv = parseFaultSpec("scope=chip,socket=1,chip=3");
    ASSERT_TRUE(kv);
    EXPECT_EQ(kv->scope, FaultScope::Chip);
    EXPECT_EQ(kv->socket, 1u);
    EXPECT_EQ(kv->chip, 3u);

    const auto link = parseFaultSpec("link:1-0");
    ASSERT_TRUE(link);
    EXPECT_EQ(link->scope, FaultScope::LinkDown);
    // Canonical pair order: socket < peer.
    EXPECT_EQ(link->socket, 0u);
    EXPECT_EQ(link->peer, 1u);

    const auto off = parseFaultSpec("socket:1");
    ASSERT_TRUE(off);
    EXPECT_EQ(off->scope, FaultScope::SocketOffline);
    EXPECT_EQ(off->socket, 1u);

    const auto lossy = parseFaultSpec("lossy:0-1,drop=0.5,delay=200");
    ASSERT_TRUE(lossy);
    EXPECT_EQ(lossy->scope, FaultScope::LinkLossy);
    EXPECT_DOUBLE_EQ(lossy->dropProb, 0.5);
    EXPECT_EQ(lossy->delayTicks, 200u);

    const auto fabric_kv =
        parseFaultSpec("scope=link-down,socket=0,peer=1");
    ASSERT_TRUE(fabric_kv);
    EXPECT_EQ(fabric_kv->scope, FaultScope::LinkDown);
    EXPECT_EQ(fabric_kv->peer, 1u);

    const auto trans = parseFaultSpec("scope=cell,row=5,bit=2,transient=1");
    ASSERT_TRUE(trans);
    EXPECT_TRUE(trans->transient);
}

TEST(ParseFaultSpec, MalformedSpecsRejectedWithDiagnostic)
{
    const auto expect_reject = [](const char *spec) {
        std::string err;
        EXPECT_FALSE(parseFaultSpec(spec, &err)) << spec;
        EXPECT_FALSE(err.empty()) << spec;
    };
    expect_reject("");
    expect_reject("socket=1");              // missing scope
    expect_reject("scope=warp-core");       // unknown scope
    expect_reject("scope=cell,flux=3");     // unknown key
    expect_reject("scope=cell,row");        // not key=value
    expect_reject("link:0");                // not a pair
    expect_reject("link:0-0");              // self-link
    expect_reject("link:0-x");              // non-numeric endpoint
    expect_reject("socket:");               // empty socket id
    expect_reject("lossy:0-1,drop=1.5");    // probability out of range
    expect_reject("lossy:0-1,drop=nope");   // non-numeric probability
    expect_reject("scope=link-down,socket=0,peer=0"); // self-link via kv
}

TEST(ParseFaultSpec, DuplicateScopeAndTrailingGarbageRejected)
{
    // The named regressions: a second scope token used to silently
    // overwrite the first, and a trailing comma (shell quoting slip,
    // e.g. "--fault scope=chip,") parsed as if clean. Both must fail
    // with a diagnostic that names the problem.
    std::string err;
    EXPECT_FALSE(parseFaultSpec("scope=chip,scope=bank", &err));
    EXPECT_NE(err.find("duplicate scope"), std::string::npos) << err;
    // ...including when the first scope came from a shorthand head.
    err.clear();
    EXPECT_FALSE(parseFaultSpec("link:0-1,scope=chip", &err));
    EXPECT_NE(err.find("duplicate scope"), std::string::npos) << err;
    err.clear();
    EXPECT_FALSE(parseFaultSpec("socket:1,scope=socket-offline", &err));
    EXPECT_NE(err.find("duplicate scope"), std::string::npos) << err;

    err.clear();
    EXPECT_FALSE(parseFaultSpec("scope=chip,", &err));
    EXPECT_NE(err.find("trailing comma"), std::string::npos) << err;
    err.clear();
    EXPECT_FALSE(parseFaultSpec("scope=cell,row=5,", &err));
    EXPECT_NE(err.find("trailing comma"), std::string::npos) << err;
    err.clear();
    EXPECT_FALSE(parseFaultSpec("lossy:0-1,", &err));
    EXPECT_NE(err.find("trailing comma"), std::string::npos) << err;
}

TEST(ParseFaultSpec, FormatRoundTrips)
{
    // formatFaultSpec output must parse back to the same normalized
    // descriptor -- this is how repro scenario files serialize faults.
    const std::vector<const char *> specs = {
        "scope=chip,socket=1,chip=3",
        "scope=cell,row=5,column=2,bit=7,transient=1",
        "scope=row-disturb,socket=1,chip=2,bank=3,row=6,bit=4,"
        "transient=1",
        "link:1-0",
        "socket:1",
        "lossy:0-1,drop=0.5,delay=200",
    };
    for (const char *spec : specs) {
        const auto f = parseFaultSpec(spec);
        ASSERT_TRUE(f) << spec;
        const std::string formatted = formatFaultSpec(*f);
        const auto back = parseFaultSpec(formatted.c_str());
        ASSERT_TRUE(back) << formatted;
        const auto a = FaultRegistry::normalized(*f);
        const auto b = FaultRegistry::normalized(*back);
        EXPECT_EQ(a.scope, b.scope) << spec;
        EXPECT_EQ(a.socket, b.socket) << spec;
        EXPECT_EQ(a.channel, b.channel) << spec;
        EXPECT_EQ(a.rank, b.rank) << spec;
        EXPECT_EQ(a.chip, b.chip) << spec;
        EXPECT_EQ(a.bank, b.bank) << spec;
        EXPECT_EQ(a.row, b.row) << spec;
        EXPECT_EQ(a.column, b.column) << spec;
        EXPECT_EQ(a.bit, b.bit) << spec;
        EXPECT_EQ(a.peer, b.peer) << spec;
        EXPECT_EQ(a.transient, b.transient) << spec;
        EXPECT_DOUBLE_EQ(a.dropProb, b.dropProb) << spec;
        EXPECT_EQ(a.delayTicks, b.delayTicks) << spec;
    }
}

TEST(FaultRegistry, RowDisturbFlipsOneBitAnywhereInVictimRow)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::RowDisturb;
    f.chip = 2;
    f.bank = 1;
    f.row = 6;
    f.column = 9; // ignored: normalization widens to the whole row
    f.bit = 5;
    f.transient = true;
    reg.inject(f);

    // Every column of the victim row sees the same (chip, bit) flip --
    // a weak cell is a property of the row, not of one word.
    for (unsigned col : {0u, 3u, 9u}) {
        const auto imp = reg.impact(0, 0, coord(0, 0, 1, 6, col));
        EXPECT_TRUE(imp.corruptChips.empty());
        ASSERT_EQ(imp.bitFlips.size(), 1u) << col;
        EXPECT_EQ(imp.bitFlips[0].first, 2u);
        EXPECT_EQ(imp.bitFlips[0].second, 5u);
    }
    // Neighboring rows and other banks are untouched.
    EXPECT_FALSE(reg.impact(0, 0, coord(0, 0, 1, 5, 0)).any());
    EXPECT_FALSE(reg.impact(0, 0, coord(0, 0, 1, 7, 0)).any());
    EXPECT_FALSE(reg.impact(0, 0, coord(0, 0, 2, 6, 0)).any());
}

TEST(FaultRegistry, RowDisturbNormalizationKeepsBitDropsColumn)
{
    FaultDescriptor f;
    f.scope = FaultScope::RowDisturb;
    f.column = 9;
    f.bit = 5;
    const auto n = FaultRegistry::normalized(f);
    EXPECT_EQ(n.column, 0u);
    EXPECT_EQ(n.bit, 5u); // unlike Row, the flip targets one bit
}

TEST(FaultRegistry, RowDisturbQueryAndRepair)
{
    FaultRegistry reg;
    FaultDescriptor f;
    f.scope = FaultScope::RowDisturb;
    f.bank = 1;
    f.row = 6;
    f.transient = true; // disturbance flips cure on rewrite/scrub
    reg.inject(f);

    EXPECT_TRUE(reg.rowDisturbAt(0, 0, coord(0, 0, 1, 6, 3)));
    EXPECT_FALSE(reg.rowDisturbAt(0, 0, coord(0, 0, 1, 7, 3)));
    EXPECT_FALSE(reg.rowDisturbAt(1, 0, coord(0, 0, 1, 6, 3)));

    EXPECT_EQ(reg.repairAt(0, 0, coord(0, 0, 1, 6, 0)), 1u);
    EXPECT_FALSE(reg.rowDisturbAt(0, 0, coord(0, 0, 1, 6, 3)));
}

TEST(FaultRegistry, RowDisturbBoundsChecked)
{
    FaultRegistry reg;
    reg.setGeometry(
        FaultGeometry::from(2, 2, 19, DramConfig::ddr4Baseline()));

    FaultDescriptor f;
    f.scope = FaultScope::RowDisturb;
    f.bank = 15;
    f.row = DramConfig::ddr4Baseline().rowsPerBank() - 1;
    f.bit = 7;
    EXPECT_NE(reg.inject(f), 0u);

    FaultDescriptor bad = f;
    bad.bank = 16;
    EXPECT_EQ(reg.inject(bad), 0u);
    bad = f;
    bad.row = DramConfig::ddr4Baseline().rowsPerBank();
    EXPECT_EQ(reg.inject(bad), 0u);
    bad = f;
    bad.bit = 8;
    EXPECT_EQ(reg.inject(bad), 0u);
}

TEST(ParseFaultSpec, UnknownScopeListsEveryValidName)
{
    // Pinned diagnostic: an unknown scope must enumerate every valid
    // scope name -- including the appended pool and metadata scopes --
    // so a typo'd campaign flag tells the operator exactly what the CLI
    // accepts. The list is generated from the enum, so this pin drifts
    // (and must be re-pinned) whenever a scope is appended.
    std::string err;
    EXPECT_FALSE(parseFaultSpec("scope=warp-core", &err));
    EXPECT_EQ(err,
              "unknown fault scope 'warp-core' (valid: cell, row, "
              "column, bank, chip, channel, controller, link-down, "
              "link-lossy, socket-offline, row-disturb, "
              "pool-node-offline, fabric-partition or metadata)");
}

TEST(ParseFaultSpec, PoolScopesParseFormatAndNormalize)
{
    // Shorthand: "pool:N" names the pool node in the socket field.
    const auto pool = parseFaultSpec("pool:2");
    ASSERT_TRUE(pool);
    EXPECT_EQ(pool->scope, FaultScope::PoolNodeOffline);
    EXPECT_EQ(pool->socket, 2u);

    // Bare "partition" shorthand, with and without extra keys.
    const auto part = parseFaultSpec("partition");
    ASSERT_TRUE(part);
    EXPECT_EQ(part->scope, FaultScope::FabricPartition);
    const auto part_t = parseFaultSpec("partition,transient=1");
    ASSERT_TRUE(part_t);
    EXPECT_TRUE(part_t->transient);

    // Key=value forms round-trip through formatFaultSpec.
    for (const char *spec :
         {"scope=pool-node-offline,socket=1", "scope=fabric-partition"}) {
        const auto f = parseFaultSpec(spec);
        ASSERT_TRUE(f) << spec;
        const auto back = parseFaultSpec(formatFaultSpec(*f));
        ASSERT_TRUE(back) << formatFaultSpec(*f);
        EXPECT_EQ(back->scope, f->scope) << spec;
        EXPECT_EQ(back->socket, f->socket) << spec;
    }

    // Normalization: partition ignores every coordinate; node-offline
    // keeps only the node id.
    FaultDescriptor d;
    d.scope = FaultScope::FabricPartition;
    d.socket = 3;
    d.peer = 1;
    d.chip = 4;
    const auto n = FaultRegistry::normalized(d);
    EXPECT_EQ(n.socket, 0u);
    EXPECT_EQ(n.peer, 0u);
    EXPECT_EQ(n.chip, 0u);
    FaultDescriptor p;
    p.scope = FaultScope::PoolNodeOffline;
    p.socket = 2;
    p.peer = 7;
    const auto np = FaultRegistry::normalized(p);
    EXPECT_EQ(np.socket, 2u);
    EXPECT_EQ(np.peer, 0u);
}

TEST(ParseFaultSpec, MetadataScopeParsesFormatsAndNormalizes)
{
    // Shorthand: "meta:SOCKET-STRUCT-PAGE"; STRUCT splits on the LAST
    // dash so the "home-dir" / "replica-dir" names themselves work.
    const auto named = parseFaultSpec("meta:1-home-dir-3");
    ASSERT_TRUE(named);
    EXPECT_EQ(named->scope, FaultScope::Metadata);
    EXPECT_EQ(named->socket, 1u);
    EXPECT_EQ(named->chip, unsigned(MetaStructure::HomeDir));
    EXPECT_EQ(named->row, 3u);

    // STRUCT also accepts the bare index 0..2.
    const auto indexed = parseFaultSpec("meta:0-2-7,transient=1");
    ASSERT_TRUE(indexed);
    EXPECT_EQ(indexed->chip, unsigned(MetaStructure::Rmt));
    EXPECT_EQ(indexed->row, 7u);
    EXPECT_TRUE(indexed->transient);

    // Key=value form, and round-trip through formatFaultSpec.
    const auto kv = parseFaultSpec("scope=metadata,socket=1,chip=1,row=5");
    ASSERT_TRUE(kv);
    EXPECT_EQ(kv->chip, unsigned(MetaStructure::ReplicaDir));
    const auto back = parseFaultSpec(formatFaultSpec(*kv));
    ASSERT_TRUE(back) << formatFaultSpec(*kv);
    EXPECT_EQ(back->scope, FaultScope::Metadata);
    EXPECT_EQ(back->socket, kv->socket);
    EXPECT_EQ(back->chip, kv->chip);
    EXPECT_EQ(back->row, kv->row);

    // A malformed triple names the full coordinate contract.
    std::string err;
    EXPECT_FALSE(parseFaultSpec("meta:1-attic-3", &err));
    EXPECT_EQ(err,
              "bad metadata coordinate '1-attic-3' (want "
              "SOCKET-STRUCT-PAGE with STRUCT home-dir, replica-dir, "
              "rmt or 0..2)");

    // Normalization keeps (socket, structure, page) and zeroes the DRAM
    // coordinates a control-plane fault does not use.
    FaultDescriptor d;
    d.scope = FaultScope::Metadata;
    d.socket = 1;
    d.chip = 2;
    d.row = 9;
    d.channel = 3;
    d.rank = 1;
    d.bank = 4;
    d.column = 6;
    const auto n = FaultRegistry::normalized(d);
    EXPECT_EQ(n.socket, 1u);
    EXPECT_EQ(n.chip, 2u);
    EXPECT_EQ(n.row, 9u);
    EXPECT_EQ(n.channel, 0u);
    EXPECT_EQ(n.rank, 0u);
    EXPECT_EQ(n.bank, 0u);
    EXPECT_EQ(n.column, 0u);
}

TEST(FaultRegistry, MetadataQueriesNeverTouchDataPathAndRepairCuresTransients)
{
    FaultRegistry reg;
    // Metadata pages are logical: only the structure index is bounded.
    reg.setGeometry(
        FaultGeometry::from(2, 2, 19, DramConfig::ddr4Baseline()));

    EXPECT_FALSE(reg.anyMetadataFault());

    FaultDescriptor bad;
    bad.scope = FaultScope::Metadata;
    bad.socket = 0;
    bad.chip = numMetaStructures; // structure out of range
    EXPECT_EQ(reg.inject(bad), 0u);

    FaultDescriptor perm;
    perm.scope = FaultScope::Metadata;
    perm.socket = 0;
    perm.chip = unsigned(MetaStructure::HomeDir);
    perm.row = 4;
    const auto pid = reg.inject(perm);
    ASSERT_NE(pid, 0u);
    FaultDescriptor trans = perm;
    trans.socket = 1;
    trans.chip = unsigned(MetaStructure::ReplicaDir);
    trans.transient = true;
    const auto tid = reg.inject(trans);
    ASSERT_NE(tid, 0u);

    EXPECT_TRUE(reg.anyMetadataFault());
    EXPECT_NE(reg.metadataFaultAt(0, unsigned(MetaStructure::HomeDir), 4),
              nullptr);
    EXPECT_EQ(reg.metadataFaultAt(0, unsigned(MetaStructure::HomeDir), 5),
              nullptr);
    EXPECT_EQ(reg.metadataFaultAt(0, unsigned(MetaStructure::Rmt), 4),
              nullptr);

    // Data-path queries never see control-plane faults.
    DramCoord c;
    c.row = 4;
    EXPECT_FALSE(reg.impact(0, 0, c).any());

    // Rebuild-driven repair cures transients only; the permanent fault
    // stays (re-corrupting whatever the rebuild wrote).
    EXPECT_EQ(reg.repairMetadataAt(1, unsigned(MetaStructure::ReplicaDir),
                                   4),
              1u);
    EXPECT_EQ(reg.metadataFaultAt(1, unsigned(MetaStructure::ReplicaDir),
                                  4),
              nullptr);
    EXPECT_EQ(reg.repairMetadataAt(0, unsigned(MetaStructure::HomeDir), 4),
              0u);
    EXPECT_NE(reg.metadataFaultAt(0, unsigned(MetaStructure::HomeDir), 4),
              nullptr);
    EXPECT_TRUE(reg.clear(pid));
    EXPECT_FALSE(reg.anyMetadataFault());
}

TEST(FaultRegistry, PoolScopeQueriesAndGeometry)
{
    FaultRegistry reg;
    // Pool-node ids live outside the DRAM geometry: a 2-socket geometry
    // must not reject node 5.
    reg.setGeometry(
        FaultGeometry::from(2, 2, 19, DramConfig::ddr4Baseline()));

    EXPECT_FALSE(reg.poolNodeOffline(0));
    EXPECT_FALSE(reg.fabricPartition());

    FaultDescriptor off;
    off.scope = FaultScope::PoolNodeOffline;
    off.socket = 5;
    const auto id = reg.inject(off);
    ASSERT_NE(id, 0u);
    EXPECT_TRUE(reg.poolNodeOffline(5));
    EXPECT_FALSE(reg.poolNodeOffline(4));
    EXPECT_FALSE(reg.fabricPartition());

    FaultDescriptor part;
    part.scope = FaultScope::FabricPartition;
    const auto pid = reg.inject(part);
    ASSERT_NE(pid, 0u);
    EXPECT_TRUE(reg.fabricPartition());

    EXPECT_TRUE(reg.clear(id));
    EXPECT_FALSE(reg.poolNodeOffline(5));
    EXPECT_TRUE(reg.clear(pid));
    EXPECT_FALSE(reg.fabricPartition());
}

} // namespace
} // namespace dve
