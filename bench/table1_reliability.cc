/**
 * @file
 * Table I: DUE and SDC rates (per billion hours) for Chipkill, Dvé+DSD,
 * Dvé+TSD, IBM RAIM, Dvé+Chipkill, and the temperature-scaled variants;
 * plus the Fig 1 conceptual comparison panel (reliability, performance
 * overhead, effective capacity).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "reliability/rates.hh"

using namespace dve;
using namespace dve::reliability;

namespace
{

void
printTableOne()
{
    bench::printHeader("Table I: DUE and SDC rates per 10^9 hours "
                       "(lower is better)");

    const ModelParams p;
    const auto ck = chipkill(p);
    const auto dsd = dveDsd(p);
    const auto tsd = dveTsd(p);
    const auto rm = raim(p);
    const auto dck = dveChipkill(p);

    TextTable t({"Scheme", "DUE", "DUE impr.", "SDC", "SDC impr."});
    auto impr = [](double base, double mine) {
        char buf[32];
        const double r = base / mine;
        if (r >= 1e4)
            std::snprintf(buf, sizeof(buf), "~10^%d x",
                          static_cast<int>(std::round(std::log10(r))));
        else
            std::snprintf(buf, sizeof(buf), "%.2fx", r);
        return std::string(buf);
    };

    t.addRow({"Chipkill", TextTable::sci(ck.due), "-",
              TextTable::sci(ck.sdc), "-"});
    t.addRow({"Dve+DSD", TextTable::sci(dsd.due), impr(ck.due, dsd.due),
              TextTable::sci(dsd.sdc), impr(ck.sdc, dsd.sdc)});
    t.addRow({"Dve+TSD", TextTable::sci(tsd.due), impr(ck.due, tsd.due),
              TextTable::sci(tsd.sdc), impr(ck.sdc, tsd.sdc)});
    t.addRow({"IBM RAIM", TextTable::sci(rm.due), "-",
              TextTable::sci(rm.sdc), "-"});
    t.addRow({"Dve+Chipkill", TextTable::sci(dck.due),
              impr(rm.due, dck.due), TextTable::sci(dck.sdc),
              impr(rm.sdc, dck.sdc)});
    t.print(std::cout);

    bench::printHeader("Table I (continued): temperature-scaled FIT "
                       "rates (10C gradient across the DIMM)");
    const auto fits = thermalFitProfile(p);
    const auto ckT = chipkillThermal(p, fits);
    const auto intelT = dveTsdThermal(p, fits, false);
    const auto dveT = dveTsdThermal(p, fits, true);

    TextTable t2({"Scheme", "DUE", "DUE impr.", "SDC", "SDC impr."});
    t2.addRow({"Chipkill(T)", TextTable::sci(ckT.due), "-",
               TextTable::sci(ckT.sdc), "-"});
    t2.addRow({"Intel+TSD(T)", TextTable::sci(intelT.due),
               impr(ckT.due, intelT.due), TextTable::sci(intelT.sdc),
               impr(ckT.sdc, intelT.sdc)});
    t2.addRow({"Dve+TSD(T)", TextTable::sci(dveT.due),
               impr(ckT.due, dveT.due), TextTable::sci(dveT.sdc),
               impr(ckT.sdc, dveT.sdc)});
    t2.print(std::cout);

    std::printf("\nThermal risk-inverse mapping lowers DUE by %.1f%% "
                "over same-position (Intel-style) mirroring.\n",
                (1.0 - dveT.due / intelT.due) * 100.0);
}

void
printFigureOnePanel()
{
    bench::printHeader("Fig 1 panel: the reliability / performance / "
                       "capacity trade-off");
    const ModelParams p;
    TextTable t({"Design", "DUE rate", "Effective capacity",
                 "Perf. vs non-ECC"});
    t.addRow({"SEC-DED", "(not chip-fault safe)",
              TextTable::num(effectiveCapacity(64, 8, 1) * 100, 1) + "%",
              "~ -1%"});
    t.addRow({"Chipkill", TextTable::sci(chipkill(p).due),
              TextTable::num(effectiveCapacity(64, 12, 1) * 100, 1)
                  + "%",
              "-2 to -3% [62]"});
    t.addRow({"Dve (+DSD)", TextTable::sci(dveDsd(p).due),
              TextTable::num(effectiveCapacity(64, 8, 2) * 100, 1) + "%",
              "+5 to +117% (Fig 6)"});
    t.print(std::cout);
    std::printf("\n(Dve's capacity cost applies only while replication "
                "is enabled on demand.)\n");
}

} // namespace

int
main()
{
    printTableOne();
    printFigureOnePanel();
    return 0;
}
