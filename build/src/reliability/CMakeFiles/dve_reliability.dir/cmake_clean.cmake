file(REMOVE_RECURSE
  "CMakeFiles/dve_reliability.dir/rates.cc.o"
  "CMakeFiles/dve_reliability.dir/rates.cc.o.d"
  "libdve_reliability.a"
  "libdve_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
