/**
 * @file
 * Tests for the set-associative cache array and the fully associative LRU
 * structure backing the on-chip replica directory.
 */

#include <gtest/gtest.h>

#include "cache/assoc_lru.hh"
#include "cache/sa_cache.hh"

namespace dve
{
namespace
{

struct Meta
{
    int v = 0;
};

TEST(SaCache, FromCapacityGeometry)
{
    auto c = SetAssocCache<Meta>::fromCapacity(64 * 1024, 8);
    EXPECT_EQ(c.sets(), 128u);
    EXPECT_EQ(c.ways(), 8u);
    EXPECT_EQ(c.capacityLines(), 1024u);
}

TEST(SaCache, InsertFindErase)
{
    SetAssocCache<Meta> c(4, 2);
    EXPECT_EQ(c.find(10), nullptr);
    c.insert(10, Meta{7});
    ASSERT_NE(c.find(10), nullptr);
    EXPECT_EQ(c.find(10)->v, 7);
    EXPECT_TRUE(c.erase(10));
    EXPECT_FALSE(c.erase(10));
    EXPECT_EQ(c.find(10), nullptr);
}

TEST(SaCache, LruEvictionWithinSet)
{
    SetAssocCache<Meta> c(4, 2);
    // Lines 0, 4, 8 all map to set 0.
    c.insert(0, Meta{0});
    c.insert(4, Meta{4});
    c.find(0); // make 4 the LRU
    const auto ev = c.insert(8, Meta{8});
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->lineNum, 4u);
    EXPECT_NE(c.find(0), nullptr);
    EXPECT_NE(c.find(8), nullptr);
}

TEST(SaCache, NoEvictionAcrossSets)
{
    SetAssocCache<Meta> c(4, 1);
    EXPECT_FALSE(c.insert(0, Meta{}).has_value());
    EXPECT_FALSE(c.insert(1, Meta{}).has_value());
    EXPECT_FALSE(c.insert(2, Meta{}).has_value());
    EXPECT_FALSE(c.insert(3, Meta{}).has_value());
    EXPECT_EQ(c.residentLines(), 4u);
}

TEST(SaCache, DoubleInsertPanics)
{
    SetAssocCache<Meta> c(4, 2);
    c.insert(5, Meta{});
    EXPECT_THROW(c.insert(5, Meta{}), std::logic_error);
}

TEST(SaCache, PeekDoesNotDisturbLru)
{
    SetAssocCache<Meta> c(1, 2);
    c.insert(0, Meta{0});
    c.insert(1, Meta{1});
    c.peek(0); // 0 stays LRU
    const auto ev = c.insert(2, Meta{2});
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->lineNum, 0u);
}

TEST(SaCache, ForEachVisitsResidents)
{
    SetAssocCache<Meta> c(8, 2);
    for (Addr l = 0; l < 10; ++l)
        c.insert(l, Meta{static_cast<int>(l)});
    int sum = 0;
    c.forEach([&](Addr, Meta &m) { sum += m.v; });
    EXPECT_EQ(sum, 45);
}

TEST(AssocLru, InsertFindErase)
{
    AssocLru<Addr, int> lru(4);
    EXPECT_EQ(lru.find(1), nullptr);
    lru.insert(1, 11);
    ASSERT_NE(lru.find(1), nullptr);
    EXPECT_EQ(*lru.find(1), 11);
    EXPECT_TRUE(lru.erase(1));
    EXPECT_FALSE(lru.erase(1));
}

TEST(AssocLru, EvictsLeastRecent)
{
    AssocLru<Addr, int> lru(3);
    lru.insert(1, 1);
    lru.insert(2, 2);
    lru.insert(3, 3);
    lru.find(1); // 2 is now LRU
    const auto ev = lru.insert(4, 4);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->first, 2u);
    EXPECT_EQ(lru.size(), 3u);
}

TEST(AssocLru, OverwriteRefreshesRecency)
{
    AssocLru<Addr, int> lru(2);
    lru.insert(1, 1);
    lru.insert(2, 2);
    EXPECT_FALSE(lru.insert(1, 10).has_value()); // overwrite, no evict
    EXPECT_EQ(*lru.find(1), 10);
    const auto ev = lru.insert(3, 3);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->first, 2u); // 1 was refreshed, 2 evicts
}

TEST(AssocLru, PeekDoesNotRefresh)
{
    AssocLru<Addr, int> lru(2);
    lru.insert(1, 1);
    lru.insert(2, 2);
    lru.peek(1);
    const auto ev = lru.insert(3, 3);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->first, 1u);
}

TEST(AssocLru, ClearEmpties)
{
    AssocLru<Addr, int> lru(8);
    for (Addr k = 0; k < 5; ++k)
        lru.insert(k, 0);
    lru.clear();
    EXPECT_EQ(lru.size(), 0u);
    EXPECT_EQ(lru.find(0), nullptr);
}

TEST(AssocLru, CapacityOneChurn)
{
    AssocLru<Addr, int> lru(1);
    for (Addr k = 0; k < 100; ++k) {
        const auto ev = lru.insert(k, static_cast<int>(k));
        if (k > 0) {
            ASSERT_TRUE(ev.has_value());
            EXPECT_EQ(ev->first, k - 1);
        }
    }
    EXPECT_EQ(lru.size(), 1u);
}

} // namespace
} // namespace dve
