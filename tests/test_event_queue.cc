/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace dve
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleIn(4, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, SchedulingIntoPastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_THROW(q.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });

    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);

    // runUntil past all events still advances the clock.
    EXPECT_EQ(q.runUntil(100), 1u);
    EXPECT_EQ(q.now(), 100u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunWithLimit)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [&] { ++fired; });
    EXPECT_EQ(q.run(3), 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(q.pending(), 7u);
}

TEST(EventQueue, NextEventTick)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventTick(), maxTick);
    q.schedule(42, [] {});
    EXPECT_EQ(q.nextEventTick(), 42u);
}

TEST(EventQueue, ExecutedEventsAccumulates)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(i, [] {});
    q.run();
    EXPECT_EQ(q.executedEvents(), 5u);
}

TEST(EventQueue, HeavyChurnDeterministic)
{
    // Two identical runs produce identical execution traces.
    auto run = [] {
        EventQueue q;
        std::vector<Tick> trace;
        // Self-rescheduling chain plus bulk events.
        std::function<void()> chain = [&] {
            trace.push_back(q.now());
            if (q.now() < 1000)
                q.scheduleIn(7, chain);
        };
        q.schedule(0, chain);
        for (Tick t = 0; t < 500; t += 13)
            q.schedule(t, [&trace, &q] { trace.push_back(q.now()); });
        q.run();
        return trace;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace dve
