/**
 * @file
 * Finite (Galois) field arithmetic GF(2^m) via log/antilog tables.
 *
 * Dvé's detection codes (DSD over 8-bit symbols, TSD over 16-bit symbols)
 * and the Chipkill baseline (SSC-DSD Reed-Solomon) are all built on
 * GF(2^8) / GF(2^16). The constructor verifies the supplied polynomial is
 * primitive, so table-driven mul/div/inv are exact.
 */

#ifndef DVE_ECC_GF_HH
#define DVE_ECC_GF_HH

#include <cstdint>
#include <vector>

namespace dve
{

/** A Galois field GF(2^m), 2 <= m <= 16. Symbols are stored in uint32_t. */
class GaloisField
{
  public:
    /**
     * Construct GF(2^m) with the given primitive polynomial (including the
     * x^m term, e.g. 0x11D for GF(2^8)). Panics if not primitive.
     */
    GaloisField(unsigned symbol_bits, std::uint32_t primitive_poly);

    /** Field size 2^m. */
    std::uint32_t size() const { return size_; }

    /** Symbol width m in bits. */
    unsigned bits() const { return bits_; }

    /** Addition (= subtraction) is XOR in characteristic 2. */
    static std::uint32_t add(std::uint32_t a, std::uint32_t b)
    {
        return a ^ b;
    }

    /** Multiplication via log tables. */
    std::uint32_t
    mul(std::uint32_t a, std::uint32_t b) const
    {
        if (a == 0 || b == 0)
            return 0;
        return exp_[log_[a] + log_[b]];
    }

    /** Division a / b; panics on division by zero. */
    std::uint32_t div(std::uint32_t a, std::uint32_t b) const;

    /** Multiplicative inverse; panics on zero. */
    std::uint32_t inv(std::uint32_t a) const;

    /** a^e with e >= 0 (a may be zero: 0^0 == 1 by convention). */
    std::uint32_t pow(std::uint32_t a, std::uint64_t e) const;

    /** alpha^i for any integer i (reduced mod 2^m - 1). */
    std::uint32_t
    alphaPow(std::int64_t i) const
    {
        const std::int64_t order = size_ - 1;
        std::int64_t r = i % order;
        if (r < 0)
            r += order;
        return exp_[static_cast<std::size_t>(r)];
    }

    /** Discrete log base alpha of a nonzero element. */
    std::uint32_t logOf(std::uint32_t a) const;

    /** The canonical GF(2^8) with polynomial 0x11D. */
    static const GaloisField &gf256();

    /** The canonical GF(2^16) with polynomial 0x1100B. */
    static const GaloisField &gf65536();

  private:
    unsigned bits_;
    std::uint32_t size_;
    std::vector<std::uint32_t> exp_; ///< 2*(size-1) entries, wrap-free mul
    std::vector<std::uint32_t> log_; ///< size entries; log_[0] unused
};

} // namespace dve

#endif // DVE_ECC_GF_HH
