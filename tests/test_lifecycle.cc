/**
 * @file
 * Tests for the stochastic fault-lifecycle engine: determinism, rate
 * scaling, kind mix, intermittent flapping, and coordinate bounds.
 */

#include <gtest/gtest.h>

#include "fault/lifecycle.hh"

namespace dve
{
namespace
{

LifecycleConfig
pressureCfg(double acceleration = 1e15)
{
    LifecycleConfig c = LifecycleConfig::fieldDefaults();
    c.sockets = 2;
    c.dram = DramConfig::ddr4Replicated();
    c.chips = 19;
    c.footprintLines = 512;
    c.acceleration = acceleration;
    c.seed = 42;
    return c;
}

TEST(Lifecycle, DeterministicInSeed)
{
    const LifecycleConfig cfg = pressureCfg();
    FaultRegistry ra, rb;
    FaultLifecycleEngine a(cfg, ra), b(cfg, rb);

    a.advanceTo(10 * ticksPerMs);
    b.advanceTo(10 * ticksPerMs);

    ASSERT_GT(a.stats().arrivals, 0u);
    EXPECT_EQ(a.stats().arrivals, b.stats().arrivals);
    EXPECT_EQ(a.stats().deactivations, b.stats().deactivations);
    EXPECT_EQ(a.stats().reactivations, b.stats().reactivations);
    ASSERT_EQ(a.log().size(), b.log().size());
    for (std::size_t i = 0; i < a.log().size(); ++i) {
        EXPECT_EQ(a.log()[i].at, b.log()[i].at);
        EXPECT_EQ(a.log()[i].type, b.log()[i].type);
        EXPECT_EQ(a.log()[i].kind, b.log()[i].kind);
        EXPECT_EQ(a.log()[i].scope, b.log()[i].scope);
    }
    EXPECT_EQ(ra.activeCount(), rb.activeCount());
}

TEST(Lifecycle, DifferentSeedsDiverge)
{
    LifecycleConfig cfg = pressureCfg();
    FaultRegistry ra, rb;
    FaultLifecycleEngine a(cfg, ra);
    cfg.seed = 43;
    FaultLifecycleEngine b(cfg, rb);
    a.advanceTo(10 * ticksPerMs);
    b.advanceTo(10 * ticksPerMs);
    // Arrival counts may coincide, but the exact event timing cannot.
    ASSERT_FALSE(a.log().empty());
    ASSERT_FALSE(b.log().empty());
    EXPECT_NE(a.log().front().at, b.log().front().at);
}

TEST(Lifecycle, ArrivalsScaleWithAcceleration)
{
    FaultRegistry ra, rb;
    FaultLifecycleEngine slow(pressureCfg(3e14), ra);
    FaultLifecycleEngine fast(pressureCfg(3e15), rb);
    slow.advanceTo(20 * ticksPerMs);
    fast.advanceTo(20 * ticksPerMs);
    ASSERT_GT(slow.stats().arrivals, 0u);
    EXPECT_GT(fast.stats().arrivals, 2 * slow.stats().arrivals);
}

TEST(Lifecycle, ZeroRatesProduceNothing)
{
    LifecycleConfig cfg = pressureCfg();
    cfg.rates = {}; // every scope disabled
    FaultRegistry reg;
    FaultLifecycleEngine e(cfg, reg);
    EXPECT_EQ(e.nextEventAt(), maxTick);
    e.advanceTo(100 * ticksPerMs);
    EXPECT_EQ(e.stats().arrivals, 0u);
    EXPECT_EQ(reg.activeCount(), 0u);
}

TEST(Lifecycle, TransientOnlyMixSetsCurableFlag)
{
    LifecycleConfig cfg = pressureCfg();
    for (auto &r : cfg.rates) {
        r.transient = 1.0;
        r.intermittent = 0.0;
    }
    FaultRegistry reg;
    FaultLifecycleEngine e(cfg, reg);
    e.advanceTo(10 * ticksPerMs);
    ASSERT_GT(e.stats().arrivals, 0u);
    EXPECT_EQ(e.stats().byKind[unsigned(FaultKind::Transient)],
              e.stats().arrivals);
    for (const auto &f : reg.active())
        EXPECT_TRUE(f.transient);
}

TEST(Lifecycle, IntermittentsFlapAndGoDormant)
{
    LifecycleConfig cfg = pressureCfg();
    for (auto &r : cfg.rates) {
        r.transient = 0.0;
        r.intermittent = 1.0;
    }
    cfg.meanActive = 10 * ticksPerUs;
    cfg.meanInactive = 10 * ticksPerUs;
    cfg.maxFlaps = 2;
    FaultRegistry reg;
    FaultLifecycleEngine e(cfg, reg);

    e.advanceTo(10 * ticksPerMs);
    ASSERT_GT(e.stats().arrivals, 0u);
    EXPECT_EQ(e.stats().byKind[unsigned(FaultKind::Intermittent)],
              e.stats().arrivals);
    EXPECT_GT(e.stats().deactivations, 0u);

    // Every episode is bounded; long after the last arrival's flap
    // schedule, everything must have deactivated for good.
    e.advanceTo(ticksPerSec);
    EXPECT_EQ(e.stats().deactivations,
              e.stats().arrivals + e.stats().reactivations);
}

TEST(Lifecycle, CoordinatesRespectGeometry)
{
    const LifecycleConfig cfg = pressureCfg();
    FaultRegistry reg;
    reg.setGeometry(FaultGeometry::from(cfg.sockets, cfg.dram.channels,
                                       cfg.chips, cfg.dram));
    FaultLifecycleEngine e(cfg, reg);
    e.advanceTo(10 * ticksPerMs);

    // Every arrival passed the registry's bounds check (none dropped).
    std::uint64_t arrive_logs = 0;
    for (const auto &ev : e.log()) {
        if (ev.type == FaultLifecycleEngine::Event::Type::Arrive)
            ++arrive_logs;
    }
    ASSERT_GT(arrive_logs, 0u);
    EXPECT_EQ(arrive_logs, e.stats().arrivals);
    for (const auto &f : reg.active()) {
        EXPECT_LT(f.socket, cfg.sockets);
        EXPECT_LT(f.chip, cfg.chips);
        EXPECT_LT(f.channel, cfg.dram.channels);
    }
}

TEST(LifecyclePool, PoolScopeArrivalsStayInsideThePool)
{
    LifecycleConfig cfg = pressureCfg();
    cfg.poolNodes = 3;
    cfg.rates = {};
    cfg.rates[unsigned(FaultScope::PoolNodeOffline)].fit = 40.0;
    cfg.rates[unsigned(FaultScope::FabricPartition)].fit = 40.0;
    FaultRegistry reg;
    FaultLifecycleEngine e(cfg, reg);
    e.advanceTo(20 * ticksPerMs);

    std::uint64_t offline = 0, partition = 0;
    for (const auto &ev : e.log()) {
        if (ev.type != FaultLifecycleEngine::Event::Type::Arrive)
            continue;
        if (ev.scope == FaultScope::PoolNodeOffline)
            ++offline;
        else if (ev.scope == FaultScope::FabricPartition)
            ++partition;
        else
            ADD_FAILURE() << faultScopeName(ev.scope);
    }
    ASSERT_GT(offline, 0u);
    ASSERT_GT(partition, 0u);
    // Node ids drawn inside [0, poolNodes); partitions are global.
    for (const auto &f : reg.active()) {
        if (f.scope == FaultScope::PoolNodeOffline)
            EXPECT_LT(f.socket, cfg.poolNodes);
        else
            EXPECT_EQ(f.socket, 0u);
    }
}

TEST(LifecyclePool, NoPoolMeansPoolRatesAreInert)
{
    // Pool-scope rates configured but poolNodes == 0: arrivals are
    // dropped before injection, so the registry and stats stay silent
    // (a non-pool campaign can share a rate table with a pool one).
    LifecycleConfig cfg = pressureCfg();
    cfg.rates = {};
    cfg.rates[unsigned(FaultScope::PoolNodeOffline)].fit = 40.0;
    cfg.rates[unsigned(FaultScope::FabricPartition)].fit = 40.0;
    FaultRegistry reg;
    FaultLifecycleEngine e(cfg, reg);
    e.advanceTo(20 * ticksPerMs);
    EXPECT_EQ(reg.activeCount(), 0u);
    EXPECT_EQ(e.stats().arrivals, 0u);
}

TEST(Lifecycle, EventTimesAreMonotonic)
{
    const LifecycleConfig cfg = pressureCfg();
    FaultRegistry reg;
    FaultLifecycleEngine e(cfg, reg);
    e.advanceTo(5 * ticksPerMs);
    e.advanceTo(10 * ticksPerMs);
    Tick prev = 0;
    for (const auto &ev : e.log()) {
        EXPECT_GE(ev.at, prev);
        prev = ev.at;
    }
    EXPECT_GE(e.nextEventAt(), prev);
}

} // namespace
} // namespace dve
