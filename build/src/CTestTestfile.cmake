# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("noc")
subdirs("dram")
subdirs("ecc")
subdirs("fault")
subdirs("mem")
subdirs("cache")
subdirs("coherence")
subdirs("core")
subdirs("protocol_check")
subdirs("reliability")
subdirs("energy")
subdirs("trace")
subdirs("cpu")
subdirs("sys")
