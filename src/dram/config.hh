/**
 * @file
 * DRAM organization and timing configuration.
 *
 * Defaults follow Table II of the paper: DDR4-2400, tCL = tRCD = tRP =
 * 14.16 ns, tRAS = 32 ns, 1 KB row buffer, 16 banks/rank, x8 devices,
 * one rank of 8 data devices (plus one ECC device) per channel.
 */

#ifndef DVE_DRAM_CONFIG_HH
#define DVE_DRAM_CONFIG_HH

#include "common/types.hh"

namespace dve
{

/** Organization + timing of one socket's DRAM subsystem. */
struct DramConfig
{
    // Organization.
    unsigned channels = 1;
    unsigned ranksPerChannel = 1;
    unsigned banksPerRank = 16;
    unsigned rowBufferBytes = 1024;
    unsigned dataDevicesPerRank = 8; ///< x8 devices carrying data
    unsigned eccDevicesPerRank = 1;  ///< devices carrying check symbols
    std::uint64_t channelCapacityBytes = 8ULL << 30; ///< 8 GB DIMM

    // Timing (ticks).
    Tick tCL = nsToTicks(14.16);
    Tick tRCD = nsToTicks(14.16);
    Tick tRP = nsToTicks(14.16);
    Tick tRAS = nsToTicks(32.0);
    /// Burst of 8 beats at 2400 MT/s on a 64-bit bus = 64 B in ~3.33 ns.
    Tick tBURST = nsToTicks(3.33);
    /// Average refresh interval (all-bank refresh per rank).
    Tick tREFI = nsToTicks(7800.0);
    /// Refresh cycle time: the rank is unavailable this long (8 Gb).
    Tick tRFC = nsToTicks(350.0);
    /// Write CAS latency; 0 means "use tCL" (the historical behavior).
    Tick tCWL = 0;
    /// Four-activate window per rank; 0 disables the constraint.
    Tick tFAW = 0;
    /// Model refresh blackouts (disable for pure timing unit tests).
    bool refreshEnabled = true;

    // Read-disturbance (RowHammer) model. Off by default: with
    // disturbEnabled == false the module does no activation tracking and
    // its timing/stat output is identical to a build without the feature.
    bool disturbEnabled = false;
    /// Graphene-style top-K counter entries per bank.
    unsigned disturbTableEntries = 4;
    /// Base HCfirst: estimated activations at which a row's neighbors flip.
    std::uint64_t disturbThreshold = 32;
    /// Seeded per-row HCfirst variation: threshold + [0, spread].
    std::uint64_t disturbThresholdSpread = 8;
    /// Seed for per-row HCfirst values and victim bit-flip placement.
    std::uint64_t disturbSeed = 1;
    /// Issue neighbor refreshes when a tracked row gets hot (mitigation).
    bool preventiveRefreshEnabled = false;
    /// Estimated activation count that triggers a preventive refresh.
    std::uint64_t preventiveRefreshThreshold = 16;

    /** Total devices per rank (data + ECC). */
    unsigned devicesPerRank() const
    {
        return dataDevicesPerRank + eccDevicesPerRank;
    }

    /** Rows per bank implied by capacity and geometry. */
    std::uint64_t
    rowsPerBank() const
    {
        const std::uint64_t per_rank =
            channelCapacityBytes / ranksPerChannel;
        return per_rank / (std::uint64_t(banksPerRank) * rowBufferBytes);
    }

    /** Table II baseline: one channel per socket. */
    static DramConfig ddr4Baseline() { return DramConfig{}; }

    /** Table II replicated memory: two channels per socket. */
    static DramConfig
    ddr4Replicated()
    {
        DramConfig c;
        c.channels = 2;
        return c;
    }
};

} // namespace dve

#endif // DVE_DRAM_CONFIG_HH
