file(REMOVE_RECURSE
  "CMakeFiles/on_demand_replication.dir/on_demand_replication.cpp.o"
  "CMakeFiles/on_demand_replication.dir/on_demand_replication.cpp.o.d"
  "on_demand_replication"
  "on_demand_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/on_demand_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
