/**
 * @file
 * Protocol explorer: drive the embedded model checker interactively-ish.
 * Verifies a chosen replica protocol exhaustively, then demonstrates a
 * counterexample trace on a deliberately broken variant -- the workflow
 * the paper performs with Murphi (Sec. V-C4).
 *
 *   $ ./build/examples/protocol_explorer [allow|deny] [budget]
 */

#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "protocol_check/checker.hh"

using namespace dve::pcheck;

int
main(int argc, char **argv)
{
    CheckProtocol proto = CheckProtocol::Deny;
    if (argc > 1 && std::strcmp(argv[1], "allow") == 0)
        proto = CheckProtocol::Allow;
    const unsigned budget =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;

    ModelConfig cfg;
    cfg.protocol = proto;
    cfg.homeCaches = 1;
    cfg.replicaCaches = 1;
    cfg.opBudget = budget;

    std::printf("exhaustively checking the %s replica protocol "
                "(1 home cache + 1 replica cache, %u ops each)...\n",
                checkProtocolName(proto), budget);
    const auto ok = explore(cfg);
    std::printf("  %s\n\n", ok.summary().c_str());

    std::printf("now breaking it on purpose (grant completes without "
                "the replica directory's ack):\n");
    ModelConfig broken = cfg;
    broken.bugUnackedRdOwn = true;
    const auto bad = explore(broken);
    std::printf("  %s\n", bad.summary().c_str());
    if (!bad.ok) {
        std::printf("  counterexample (agent ids: 0=home cache, "
                    "1=replica cache, 2=home dir, 3=replica dir):\n");
        for (const auto &step : bad.trace)
            std::printf("    %s\n", step.c_str());
    }
    return ok.ok && !bad.ok ? 0 : 1;
}
