/**
 * @file
 * Chaos-fuzz campaign: run N seeded adversarial scenarios through the
 * deterministic parallel runner with live invariant monitors armed, and
 * emit one machine-readable summary.
 *
 * Usage:
 *   fuzz_campaign [--scenarios N] [--seed S] [--ops N] [--jobs N]
 *                 [--bug NAME] [--hammer] [--pool] [--policy]
 *                 [--metadata] [--json FILE] [--repro-dir DIR]
 *                 [--skip-protocol-checks] [--quiet]
 *
 * Scenario i rotates the protocol family (allow/deny/dynamic by i % 3)
 * and derives its generator seed only from (--seed, i), so the campaign
 * is a pure function of its flags: same flags -> byte-identical JSON at
 * any --jobs / DVE_BENCH_JOBS value (results merge by scenario index).
 *
 * --bug arms a seeded protocol bug (rm-marker-refresh,
 * skip-deny-invalidate, skip-demotion-on-partition or
 * skip-rebuild-on-scrub) in every scenario -- the self-test mode CI
 * uses to prove the monitors catch a real bug within the smoke budget.
 * skip-rebuild-on-scrub implies --metadata (the bug lives in the
 * metadata rebuild path and needs the domain armed to matter).
 *
 * --hammer switches every scenario to the generator's aggressor-pattern
 * mode: accesses hammer one bank's aggressor rows, faults become
 * scripted RowDisturb injections on the victim rows, and the footprint
 * widens to 32 pages so the victim rows stay observable. The monitors
 * must hold under a read-disturbance attack exactly as they do under
 * the classical chaos mix.
 *
 * --pool switches every scenario to the generator's far-memory mode:
 * the engine replicates onto pool nodes and the fabric share of the
 * chaos mix becomes pool-scale episodes (pool-node-offline /
 * fabric-partition), so the monitors exercise the two-tier degradation
 * ladder and heal-back path.
 *
 * --policy switches every scenario to the generator's replication-policy
 * mode: the engine starts with nothing replicated and a finite replica
 * budget, the conflict set marches across the footprint phase by phase,
 * and `step b` budget retunes land at each phase boundary -- so the
 * monitors hold while the policy engine promotes and demotes pages
 * mid-stream. Composes with --pool (replicas live on pool nodes under a
 * per-node cap).
 *
 * --metadata switches every scenario to the generator's metadata-fault
 * mode: half the chaos mix's injects corrupt control structures (home
 * directory, replica directory backing, replica map) instead of data,
 * under the parity tier -- detected losses route around and rebuild, so
 * a clean sweep must stay violation-free while scrubs, cross-rebuilds
 * and honest demotions run mid-stream.
 *
 * Failing scenarios are delta-debugged to locally-minimal repros and
 * written to --repro-dir as fuzz_repro_<i>.scn with an `expect` header,
 * ready to land in tests/corpus/ and replay via `fuzz_tool replay`.
 *
 * The summary also embeds the abstract-model protocol checker's verdicts
 * (the same JSON objects `verify_protocols --json` emits) so one
 * artifact answers both "did the concrete stack hold its invariants" and
 * "does the abstract model still verify". --skip-protocol-checks drops
 * that section for quick iterations.
 *
 * Exit status: 0 when the run matches expectations -- no violations
 * without --bug, at least one violation with --bug; 1 otherwise.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "fuzz/generator.hh"
#include "fuzz/minimizer.hh"
#include "fuzz/runner.hh"
#include "protocol_check/checker.hh"

using namespace dve;

namespace
{

struct ScenarioOutcome
{
    std::uint64_t seed = 0;
    DveProtocol protocol = DveProtocol::Dynamic;
    bool violated = false;
    InvariantMonitor monitor = InvariantMonitor::Swmr;
    std::uint64_t violationTick = 0;
    Addr violationLine = 0;
    std::uint64_t stepsRun = 0;
    std::uint64_t due = 0;
    std::uint64_t sdc = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t digest = 0;
    FuzzScenario scenario; ///< kept for shrinking when violated
};

GeneratorConfig
scenarioConfig(std::uint64_t base_seed, std::size_t index,
               std::uint64_t ops, const GeneratorConfig &bugs,
               bool hammer, bool pool, bool policy, bool metadata)
{
    GeneratorConfig gc;
    // Same derivation family as the reliability campaign: streams depend
    // only on (seed, index), never on job count or completion order.
    gc.seed = base_seed * 1000003 + index;
    gc.ops = ops;
    switch (index % 3) {
      case 0: gc.protocol = DveProtocol::Allow; break;
      case 1: gc.protocol = DveProtocol::Deny; break;
      default: gc.protocol = DveProtocol::Dynamic; break;
    }
    gc.bugRmMarkerRefresh = bugs.bugRmMarkerRefresh;
    gc.bugSkipDenyInvalidate = bugs.bugSkipDenyInvalidate;
    gc.bugSkipDemotionOnPartition = bugs.bugSkipDemotionOnPartition;
    gc.bugSkipRebuildOnScrub = bugs.bugSkipRebuildOnScrub;
    if (metadata)
        gc.metadataMode = true; // parity tier: honest sweeps stay clean
    if (hammer) {
        gc.hammerMode = true;
        // Victim rows 0..3 need 32 pages to sit inside the footprint.
        gc.footprintPages = 32;
    }
    if (pool)
        gc.poolMode = true;
    if (policy) {
        gc.policyMode = true;
        // A 16-page footprint gives the phase window 4 pages against a
        // 4-page budget, so every phase shift forces real demotions.
        if (gc.footprintPages < 16)
            gc.footprintPages = 16;
        if (pool)
            gc.policyNodeBudget = 2;
    }
    return gc;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t scenarios = 50;
    std::uint64_t base_seed = 1;
    std::uint64_t ops = 400;
    unsigned jobs = 0; // 0 = DVE_BENCH_JOBS / hardware concurrency
    GeneratorConfig bugs;
    bool bug_armed = false;
    bool hammer = false;
    bool pool = false;
    bool policy = false;
    bool metadata = false;
    const char *json_path = nullptr;
    const char *repro_dir = nullptr;
    bool protocol_checks = true;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const auto num = [&](const char *what) -> std::uint64_t {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", what);
                std::exit(1);
            }
            return std::strtoull(argv[++i], nullptr, 0);
        };
        if (std::strcmp(argv[i], "--scenarios") == 0) {
            scenarios = num("--scenarios");
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            base_seed = num("--seed");
        } else if (std::strcmp(argv[i], "--ops") == 0) {
            ops = num("--ops");
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            jobs = static_cast<unsigned>(num("--jobs"));
        } else if (std::strcmp(argv[i], "--bug") == 0 && i + 1 < argc) {
            const char *v = argv[++i];
            if (std::strcmp(v, "rm-marker-refresh") == 0) {
                bugs.bugRmMarkerRefresh = true;
            } else if (std::strcmp(v, "skip-deny-invalidate") == 0) {
                bugs.bugSkipDenyInvalidate = true;
            } else if (std::strcmp(v, "skip-demotion-on-partition")
                       == 0) {
                bugs.bugSkipDemotionOnPartition = true;
            } else if (std::strcmp(v, "skip-rebuild-on-scrub") == 0) {
                bugs.bugSkipRebuildOnScrub = true;
                metadata = true; // the bug needs the domain armed
            } else {
                std::fprintf(stderr,
                             "--bug wants rm-marker-refresh, "
                             "skip-deny-invalidate, "
                             "skip-demotion-on-partition or "
                             "skip-rebuild-on-scrub\n");
                return 1;
            }
            bug_armed = true;
        } else if (std::strcmp(argv[i], "--hammer") == 0) {
            hammer = true;
        } else if (std::strcmp(argv[i], "--pool") == 0) {
            pool = true;
        } else if (std::strcmp(argv[i], "--policy") == 0) {
            policy = true;
        } else if (std::strcmp(argv[i], "--metadata") == 0) {
            metadata = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--repro-dir") == 0
                   && i + 1 < argc) {
            repro_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--skip-protocol-checks") == 0) {
            protocol_checks = false;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return 1;
        }
    }
    if (scenarios == 0) {
        std::fprintf(stderr, "--scenarios must be >= 1\n");
        return 1;
    }

    const auto results = parallelMap(
        static_cast<std::size_t>(scenarios),
        [&](std::size_t i) {
            const GeneratorConfig gc = scenarioConfig(
                base_seed, i, ops, bugs, hammer, pool, policy, metadata);
            const FuzzScenario sc = generateScenario(gc);
            FuzzRunOptions opt; // checks on, stop at first violation
            const FuzzRunResult r = runScenario(sc, opt);
            ScenarioOutcome out;
            out.seed = gc.seed;
            out.protocol = gc.protocol;
            out.violated = r.violated;
            if (r.violated) {
                out.monitor = r.violations.front().monitor;
                out.violationTick = r.violations.front().at;
                out.violationLine = r.violations.front().line;
                out.scenario = sc;
            }
            out.stepsRun = r.stepsRun;
            out.due = r.due;
            out.sdc = r.sdc;
            out.faultsInjected = r.faultsInjected;
            out.digest = r.digest;
            return out;
        },
        jobs ? jobs : jobsFromEnv());

    // Tally (merge order = scenario index, so everything below is
    // deterministic regardless of the job count).
    std::uint64_t violated = 0;
    std::map<std::string, std::uint64_t> byMonitor;
    std::vector<std::size_t> failing;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].violated)
            continue;
        ++violated;
        ++byMonitor[invariantMonitorName(results[i].monitor)];
        failing.push_back(i);
    }

    // Shrink failing scenarios to minimal repros (serial: ddmin runs are
    // short once the campaign has already narrowed to failures).
    struct Repro
    {
        std::size_t index;
        std::size_t fromSteps;
        std::size_t toSteps;
        std::string path;
    };
    std::vector<Repro> repros;
    if (repro_dir) {
        for (const std::size_t i : failing) {
            const auto res = shrinkScenario(results[i].scenario);
            if (!res.reproduced)
                continue; // raced budget cap; keep going
            const std::string path = std::string(repro_dir)
                                     + "/fuzz_repro_"
                                     + std::to_string(i) + ".scn";
            std::ofstream out(path);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
                return 1;
            }
            out << res.minimized.serialize();
            repros.push_back(
                {i, res.initialSteps, res.finalSteps, path});
        }
    }

    // Abstract-model cross-check: the same objects verify_protocols
    // --json emits, so one campaign artifact carries both layers.
    std::vector<std::pair<std::string, pcheck::CheckResult>> pchecks;
    if (protocol_checks) {
        for (const auto proto :
             {pcheck::CheckProtocol::Deny, pcheck::CheckProtocol::Allow}) {
            pcheck::ModelConfig cfg;
            cfg.protocol = proto;
            cfg.homeCaches = 1;
            cfg.replicaCaches = 1;
            cfg.opBudget = 3;
            pchecks.emplace_back(pcheck::checkProtocolName(proto),
                                 pcheck::explore(cfg));
        }
    }

    std::ostringstream json;
    json << "{\"bench\": \"fuzz_campaign\",\n\"scenarios\": " << scenarios
         << ",\n\"seed\": " << base_seed << ",\n\"ops\": " << ops
         << ",\n\"bug_rm_marker_refresh\": "
         << (bugs.bugRmMarkerRefresh ? "true" : "false")
         << ",\n\"bug_skip_deny_invalidate\": "
         << (bugs.bugSkipDenyInvalidate ? "true" : "false");
    // Emitted only when armed so hammer-free (and pool-free) reports
    // stay byte-identical to earlier versions.
    if (bugs.bugSkipDemotionOnPartition)
        json << ",\n\"bug_skip_demotion_on_partition\": true";
    if (bugs.bugSkipRebuildOnScrub)
        json << ",\n\"bug_skip_rebuild_on_scrub\": true";
    if (hammer)
        json << ",\n\"hammer\": true";
    if (pool)
        json << ",\n\"pool\": true";
    if (policy)
        json << ",\n\"policy\": true";
    if (metadata)
        json << ",\n\"metadata\": true";
    json << ",\n\"violated\": " << violated
         << ",\n\"violations_by_monitor\": {";
    bool firstMon = true;
    for (const auto &[name, count] : byMonitor) {
        json << (firstMon ? "" : ", ") << "\"" << name << "\": " << count;
        firstMon = false;
    }
    json << "},\n\"failing\": [\n";
    for (std::size_t k = 0; k < failing.size(); ++k) {
        const auto &r = results[failing[k]];
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%016" PRIx64, r.digest);
        json << "{\"index\": " << failing[k] << ", \"seed\": " << r.seed
             << ", \"protocol\": \"" << dveProtocolName(r.protocol)
             << "\", \"monitor\": \""
             << invariantMonitorName(r.monitor)
             << "\", \"at\": " << r.violationTick << ", \"line\": "
             << r.violationLine << ", \"steps_run\": " << r.stepsRun
             << ", \"digest\": \"" << buf << "\"}"
             << (k + 1 < failing.size() ? ",\n" : "\n");
    }
    json << "],\n\"repros\": [\n";
    for (std::size_t k = 0; k < repros.size(); ++k) {
        json << "{\"index\": " << repros[k].index << ", \"from_steps\": "
             << repros[k].fromSteps << ", \"to_steps\": "
             << repros[k].toSteps << ", \"path\": \"" << repros[k].path
             << "\"}" << (k + 1 < repros.size() ? ",\n" : "\n");
    }
    json << "],\n\"protocol_checks\": [\n";
    for (std::size_t k = 0; k < pchecks.size(); ++k) {
        json << "{\"protocol\": \"" << pchecks[k].first
             << "\", \"result\": " << pchecks[k].second.toJson() << "}"
             << (k + 1 < pchecks.size() ? ",\n" : "\n");
    }
    const bool pchecks_ok = [&] {
        for (const auto &[name, r] : pchecks) {
            if (!r.ok)
                return false;
        }
        return true;
    }();
    const bool expectation_met =
        pchecks_ok && (bug_armed ? violated > 0 : violated == 0);
    json << "],\n\"protocol_checks_ok\": "
         << (pchecks_ok ? "true" : "false")
         << ",\n\"expectation_met\": "
         << (expectation_met ? "true" : "false") << "}\n";

    if (json_path) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 1;
        }
        out << json.str();
    }

    if (!quiet) {
        std::printf("Fuzz campaign: %llu scenarios x %llu ops, seed "
                    "%llu%s%s%s%s%s\n",
                    static_cast<unsigned long long>(scenarios),
                    static_cast<unsigned long long>(ops),
                    static_cast<unsigned long long>(base_seed),
                    bug_armed ? " (seeded bug armed)" : "",
                    hammer ? " (hammer mode)" : "",
                    pool ? " (pool mode)" : "",
                    policy ? " (policy mode)" : "",
                    metadata ? " (metadata mode)" : "");
        std::printf("violations: %llu/%llu\n",
                    static_cast<unsigned long long>(violated),
                    static_cast<unsigned long long>(scenarios));
        for (const auto &[name, count] : byMonitor) {
            std::printf("  %-18s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(count));
        }
        for (const auto &r : repros) {
            std::printf("repro: scenario %zu shrunk %zu -> %zu steps -> "
                        "%s\n",
                        r.index, r.fromSteps, r.toSteps, r.path.c_str());
        }
        for (const auto &[name, r] : pchecks) {
            std::printf("protocol-check %-6s: %s\n", name.c_str(),
                        r.summary().c_str());
        }
        std::printf("expectation %s\n",
                    expectation_met ? "met" : "NOT MET");
    }
    if (!json_path && quiet)
        std::fputs(json.str().c_str(), stdout);

    return expectation_met ? 0 : 1;
}
