/**
 * @file
 * On-demand replication policy engine (Dvé §V: replication on demand).
 *
 * Dvé replicates memory *on demand*: pages earn a second copy when the
 * access stream says the reliability/performance benefit is worth the
 * capacity, and lose it again when the replication budget tightens or
 * the page goes cold. This module is the decision kernel for that
 * loop. It is deliberately mechanism-free: it observes page touches,
 * keeps per-page hotness counters, and at every epoch boundary emits a
 * list of pages to demote (coldest first) and promote (hottest first)
 * under an explicit capacity budget. The engine (DveEngine) owns the
 * mechanisms -- promotion seeds a replica through the timed repair
 * path, demotion writes dirty replica lines back and tears the mapping
 * down -- so the policy stays a pure, deterministic function of the
 * observed access sequence.
 *
 * Budgets come in two flavours:
 *  - a global budget: total pages allowed to hold a replica, and
 *  - a per-node budget: pages whose replica lives on one backing node
 *    (a remote socket, or a far-memory pool node).
 * The global budget can change mid-run (operators reclaim capacity);
 * the policy reacts at the next epoch boundary by demoting the
 * coldest pages over budget.
 *
 * Determinism contract: every decision is a function of (config,
 * observed page sequence, replicated-set contents). Candidate sorts
 * tie-break by page id, the heat table is drained into sorted vectors
 * before any ordering-sensitive step, and no wall-clock or RNG state
 * is consulted. Two runs with identical access streams make identical
 * decisions -- the byte-determinism the campaign and fuzz harnesses
 * assert end-to-end extends through this module.
 */

#ifndef DVE_POLICY_REPLICATION_POLICY_HH
#define DVE_POLICY_REPLICATION_POLICY_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace dve
{

/** Knobs for the on-demand replication policy. Disabled by default:
 *  an engine with `enabled == false` never constructs the policy and
 *  its output (stats, JSON, traces) is byte-identical to a build
 *  without this module. */
struct PolicyConfig
{
    /** Master switch; off keeps the legacy always-replicate /
     *  manual-region behaviour untouched. */
    bool enabled = false;

    /** Demand accesses per policy epoch (promotion/demotion decisions
     *  fire on epoch boundaries only). */
    std::uint64_t epochOps = 500;

    /** Minimum per-epoch touches before a page is a promotion
     *  candidate. */
    std::uint32_t promoteThreshold = 4;

    /** Total pages allowed to hold a replica. SIZE_MAX = unlimited. */
    std::size_t globalBudget = std::numeric_limits<std::size_t>::max();

    /** Pages per backing node allowed to hold a replica.
     *  SIZE_MAX = unlimited. */
    std::size_t nodeBudget = std::numeric_limits<std::size_t>::max();

    /** Cap on promotions per epoch (bounds the re-replication burst
     *  the repair queue absorbs). */
    std::size_t maxPromotionsPerEpoch = 4;

    /** Cap on demotions per epoch (bounds the writeback storm). */
    std::size_t maxDemotionsPerEpoch = 8;
};

/**
 * Epoch-driven promote/demote decision kernel.
 *
 * The owner calls observe() once per demand access, and when it
 * returns true (epoch boundary) calls evaluate() for the decision
 * batch. The owner applies decisions through its own mechanisms and
 * reports outcomes back via notePromoted()/noteDemoted() -- the policy
 * never assumes a decision succeeded (the engine may defer a demotion
 * while the page has degraded lines in flight).
 */
class ReplicationPolicy
{
  public:
    /** Maps a page to the node its replica occupies (or would occupy):
     *  a socket index, or a pool-node index under far-memory pooling.
     *  Queried fresh on every evaluation because pool heal-back can
     *  retarget replicas between nodes behind the policy's back. */
    using NodeOf = std::function<unsigned(Addr)>;

    /** One epoch's decision batch. Demotions are ordered coldest
     *  first, promotions hottest first; both tie-break by page id. */
    struct Decision
    {
        std::vector<Addr> demote;
        std::vector<Addr> promote;
    };

    explicit ReplicationPolicy(const PolicyConfig &cfg);

    /** Record one demand access to @p page. Returns true when this
     *  access closes an epoch (caller should evaluate()). */
    bool observe(Addr page);

    /** Compute this epoch's decision batch. Decays the heat table.
     *  Call exactly once per observe()==true. */
    Decision evaluate(const NodeOf &nodeOf);

    /** True when @p page could be promoted right now without busting
     *  the global or per-node budget. The engine re-checks this per
     *  promotion because earlier promotions/deferred demotions in the
     *  same batch change the accounting. */
    bool canPromote(Addr page, const NodeOf &nodeOf) const;

    /** The owner reports a successful promotion/demotion so the
     *  replicated set stays in sync with the engine's RMT. */
    void notePromoted(Addr page);
    void noteDemoted(Addr page);

    /** Pages currently holding a replica under policy control. */
    std::size_t replicatedPages() const { return replicated_.size(); }

    bool isReplicated(Addr page) const { return replicated_.contains(page); }

    /** Retune the global budget mid-run (capacity reclaim). Takes
     *  effect at the next epoch boundary. */
    void setGlobalBudget(std::size_t pages) { globalBudget_ = pages; }

    std::size_t globalBudget() const { return globalBudget_; }

    std::uint64_t epochsCompleted() const { return epochs_; }

  private:
    /** (heat, page) pairs for the currently-replicated set, coldest
     *  first; the demotion candidate order. */
    std::vector<std::pair<std::uint32_t, Addr>> replicatedByHeat() const;

    PolicyConfig cfg_;
    std::size_t globalBudget_ = 0;

    /** Per-page touch counts for the current epoch window (halved at
     *  each boundary so history decays geometrically). */
    FlatMap<Addr, std::uint32_t> heat_;

    /** Pages holding a policy-granted replica (value unused; FlatMap
     *  as a set). */
    FlatMap<Addr, std::uint8_t> replicated_;

    std::uint64_t opsInEpoch_ = 0;
    std::uint64_t epochs_ = 0;
};

} // namespace dve

#endif // DVE_POLICY_REPLICATION_POLICY_HH
