/**
 * @file
 * Tests for the deterministic parallel experiment runner: ordered
 * result collection, exception capture and rethrow, the jobs=1 serial
 * path, queue backpressure, and DVE_BENCH_JOBS parsing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace dve
{
namespace
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);

    // The pool is reusable after a wait().
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 101);
}

TEST(ThreadPool, BoundedQueueAppliesBackpressure)
{
    // With a queue bound of 2 and workers parked on a slow first task,
    // submit() must block rather than buffer unboundedly -- observable
    // as the producer not racing ahead of the consumers.
    ThreadPool pool(1, 2);
    std::atomic<int> done{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            done.fetch_add(1);
        });
        // Queued-but-unfinished work never exceeds bound + in-flight.
        EXPECT_LE(i + 1 - done.load(), 2 + 1 + 1);
    }
    pool.wait();
    EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ran.fetch_add(1); });
        // No wait(): the destructor must finish the queue, not drop it.
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ParallelMap, ResultsAreOrderedByTaskIndex)
{
    // Early tasks sleep longest, so completion order is roughly the
    // reverse of submission order -- the output must not care.
    const std::size_t n = 32;
    const auto out = parallelMap(
        n,
        [&](std::size_t i) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(200 * (n - i)));
            return i * i;
        },
        8);
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, SerialAndParallelResultsMatch)
{
    auto task = [](std::size_t i) {
        // Seeded per-index arithmetic, as campaign trials derive their
        // RNG streams from (seed, index).
        std::uint64_t h = 0x9E3779B97F4A7C15ull * (i + 1);
        h ^= h >> 31;
        return h;
    };
    const auto serial = parallelMap(64, task, 1);
    const auto parallel = parallelMap(64, task, 6);
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelMap, LowestIndexExceptionIsRethrown)
{
    // Both index 7 and index 3 throw; the serial loop would have died
    // on 3 first, so the parallel run must surface 3's exception even
    // if 7's task happens to finish first.
    auto task = [](std::size_t i) -> int {
        if (i == 3)
            throw std::runtime_error("boom@3");
        if (i == 7)
            throw std::runtime_error("boom@7");
        return static_cast<int>(i);
    };
    for (unsigned jobs : {1u, 4u}) {
        try {
            parallelMap(16, task, jobs);
            FAIL() << "expected an exception at jobs=" << jobs;
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom@3") << "jobs=" << jobs;
        }
    }
}

TEST(ParallelMap, ExceptionDoesNotAbortSiblingTasks)
{
    std::atomic<int> ran{0};
    EXPECT_THROW(parallelMap(
                     20,
                     [&](std::size_t i) -> int {
                         ran.fetch_add(1);
                         if (i == 0)
                             throw std::runtime_error("first");
                         return 0;
                     },
                     4),
                 std::runtime_error);
    // All tasks settled (ran) before the rethrow.
    EXPECT_EQ(ran.load(), 20);
}

TEST(ParallelMap, HandlesEmptyAndSingleInputs)
{
    const auto none =
        parallelMap(0, [](std::size_t i) { return i; }, 4);
    EXPECT_TRUE(none.empty());
    const auto one =
        parallelMap(1, [](std::size_t i) { return i + 41; }, 4);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 41u);
}

TEST(ParallelMap, MoveOnlyResultsAreSupported)
{
    const auto out = parallelMap(
        8,
        [](std::size_t i) {
            return std::make_unique<std::size_t>(i);
        },
        4);
    ASSERT_EQ(out.size(), 8u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(*out[i], i);
}

class JobsEnv : public ::testing::Test
{
  protected:
    void SetUp() override { ::unsetenv("DVE_BENCH_JOBS"); }
    void TearDown() override { ::unsetenv("DVE_BENCH_JOBS"); }
};

TEST_F(JobsEnv, UnsetDefaultsToHardwareConcurrency)
{
    const unsigned hw = std::thread::hardware_concurrency();
    EXPECT_EQ(jobsFromEnv(), hw ? hw : 1u);
}

TEST_F(JobsEnv, AcceptsWholeNumbers)
{
    ::setenv("DVE_BENCH_JOBS", "1", 1);
    EXPECT_EQ(jobsFromEnv(), 1u);
    ::setenv("DVE_BENCH_JOBS", "8", 1);
    EXPECT_EQ(jobsFromEnv(), 8u);
}

TEST_F(JobsEnv, RejectsGarbageWithAWarning)
{
    const unsigned def = jobsFromEnv(); // unset -> default
    for (const char *bad : {"4x", "3.5", "0", "-2", " 4", "jobs"}) {
        ::setenv("DVE_BENCH_JOBS", bad, 1);
        const auto warns_before = detail::warnCount();
        EXPECT_EQ(jobsFromEnv(), def) << "value '" << bad << "'";
        EXPECT_GT(detail::warnCount(), warns_before)
            << "no warning for '" << bad << "'";
    }
}

} // namespace
} // namespace dve
