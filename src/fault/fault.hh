/**
 * @file
 * DRAM fault descriptors and the system-wide fault registry.
 *
 * Faults are expressed at the granularities field studies report (Sec. II
 * of the paper): cell, row, column, bank, chip, channel, and memory
 * controller. The registry answers, for one decoded access, which chips
 * return corrupted data and whether the channel/controller path itself has
 * failed (hard failures that bus CRC / timeouts detect but cannot correct).
 *
 * Beyond the DRAM path, the registry also tracks fabric-domain faults --
 * a downed or lossy inter-socket link and a whole socket dropping off the
 * coherence fabric -- which the interconnect consults per message and the
 * Dvé engine escalates into single-copy degraded service.
 */

#ifndef DVE_FAULT_FAULT_HH
#define DVE_FAULT_FAULT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/address_map.hh"

namespace dve
{

/** Granularity of a fault. */
enum class FaultScope : std::uint8_t
{
    Cell,          ///< single bit in one chip at (bank, row, column)
    Row,           ///< a whole row within one chip's bank
    Column,        ///< a column within one chip's bank
    Bank,          ///< a whole bank within one chip
    Chip,          ///< an entire device
    Channel,       ///< the channel path (bus/shared circuitry)
    Controller,    ///< the whole memory controller of a socket
    LinkDown,      ///< inter-socket link (socket, peer) delivers nothing
    LinkLossy,     ///< inter-socket link drops/delays messages
    SocketOffline, ///< socket's memory domain + link endpoint are gone
    RowDisturb,    ///< read-disturbance bit flip across a victim row
    // Far-memory pool scopes (appended: fault_log_digests over pre-pool
    // runs must stay byte-identical across this enum growing).
    PoolNodeOffline, ///< one far-memory pool node unreachable/gone
    FabricPartition, ///< hosts partitioned from the whole pool fabric
    // Metadata fault domain (appended for the same digest-stability
    // reason): corrupts the replication control plane -- a home-directory
    // entry, the replica directory's backing state, or the replica-map
    // table -- never the DRAM data path itself.
    Metadata,        ///< directory/RMT state at (socket, structure, page)
};

constexpr unsigned numFaultScopes = 14;

/** Structures a Metadata-scope fault can land on (the chip field). */
enum class MetaStructure : unsigned
{
    HomeDir = 0,    ///< home-directory entries of the page's lines
    ReplicaDir = 1, ///< replica-directory backing state
    Rmt = 2,        ///< replica-map table (page -> replica placement)
};

constexpr unsigned numMetaStructures = 3;

const char *metaStructureName(unsigned structure);

/** First fabric-domain scope (everything below is a DRAM-path scope). */
constexpr bool
isFabricScope(FaultScope s)
{
    return s == FaultScope::LinkDown || s == FaultScope::LinkLossy
           || s == FaultScope::SocketOffline
           || s == FaultScope::PoolNodeOffline
           || s == FaultScope::FabricPartition;
}

const char *faultScopeName(FaultScope s);

/** Inverse of faultScopeName; nullopt for unrecognized names. */
std::optional<FaultScope> parseFaultScope(const char *name);

/** One injected fault. Unused coordinate fields are ignored per scope. */
struct FaultDescriptor
{
    FaultScope scope = FaultScope::Chip;
    unsigned socket = 0;
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned chip = 0;          ///< device index within the codeword group
    unsigned bank = 0;
    std::uint64_t row = 0;      ///< RowDisturb: the *victim* row
    unsigned column = 0;        ///< line slot within the row
    unsigned bit = 0;           ///< Cell/RowDisturb: bit within the byte
    bool transient = false;     ///< curable by a repair write
    // Fabric-scope coordinates/shape (link scopes only).
    unsigned peer = 0;          ///< other endpoint of the link
    double dropProb = 0.0;      ///< LinkLossy: per-message drop chance
    Tick delayTicks = 0;        ///< LinkLossy: extra delay per delivery
    std::uint64_t id = 0;       ///< assigned by the registry
};

/**
 * Parse a comma-separated key=value fault spec, e.g.
 * "scope=chip,socket=0,chip=3". Also accepts the fabric shorthands
 * "link:A-B" (LinkDown), "socket:S" (SocketOffline),
 * "lossy:A-B,drop=P[,delay=T]" (LinkLossy; T in ticks),
 * "pool:N" (PoolNodeOffline), "partition" (FabricPartition) and
 * "meta:S-STRUCT-P" (Metadata on socket S, structure STRUCT -- a name
 * ("home-dir"/"replica-dir"/"rmt") or index 0..2 -- page P).
 * On failure returns nullopt and, when @p err is non-null, a message.
 */
std::optional<FaultDescriptor> parseFaultSpec(const std::string &spec,
                                              std::string *err = nullptr);

/**
 * Serialize a descriptor as a "scope=...,key=value" spec that
 * parseFaultSpec round-trips to the same normalized descriptor. Only the
 * coordinate fields the scope uses are emitted (the registry's canonical
 * form), so the output is stable and deterministic -- scenario files and
 * repro reports embed it verbatim.
 */
std::string formatFaultSpec(const FaultDescriptor &f);

/** What a given access sees. */
struct FaultImpact
{
    /** Chips whose bytes are fully corrupted for this access. */
    std::vector<unsigned> corruptChips;
    /** (chip, bit) single-bit flips from Cell faults. */
    std::vector<std::pair<unsigned, unsigned>> bitFlips;
    /** Channel/controller hard failure: detected, no data. */
    bool pathFailed = false;

    bool any() const
    {
        return pathFailed || !corruptChips.empty() || !bitFlips.empty();
    }
};

/**
 * Coordinate bounds the registry validates injected descriptors against.
 * All-zero (the default) means "no validation" -- standalone registries
 * used by unit tests accept anything, while registries embedded in an
 * engine are configured from the engine's DramConfig.
 */
struct FaultGeometry
{
    unsigned sockets = 0;
    unsigned channels = 0; ///< global channel ids (mirrored copies count)
    unsigned ranks = 0;
    unsigned chips = 0;    ///< symbol positions the line codec spans
    unsigned banks = 0;
    std::uint64_t rows = 0;
    unsigned columns = 0;  ///< line slots per row buffer

    /** Derive the chip-internal bounds from a DramConfig. */
    static FaultGeometry from(unsigned sockets, unsigned channels,
                              unsigned chips, const DramConfig &cfg);
};

/** Mutable registry of active faults. */
class FaultRegistry
{
  public:
    FaultRegistry() = default;

    /** Enable coordinate validation for subsequent inject() calls. */
    void setGeometry(const FaultGeometry &g) { geom_ = g; }

    /**
     * Activate a fault; returns its id. A descriptor identical (in the
     * fields its scope uses) to an already-active fault is not duplicated:
     * the existing id is returned. With a geometry configured, descriptors
     * with out-of-range coordinates are rejected with a warning and id 0
     * (never a valid id).
     */
    std::uint64_t inject(FaultDescriptor f);

    /** Deactivate by id. @return true if it was active. */
    bool clear(std::uint64_t id);

    /** Deactivate everything. */
    void clearAll() { faults_.clear(); }

    /** Active fault count. */
    std::size_t activeCount() const { return faults_.size(); }

    /**
     * Impact on a read of @p coord in @p socket on @p channel
     * (channel is passed separately so mirrored controllers can remap).
     */
    FaultImpact impact(unsigned socket, unsigned channel,
                       const DramCoord &coord) const;

    // ---- Fabric-domain queries (consulted per interconnect message) ----

    /** Is the whole socket's memory domain + link endpoint offline? */
    bool socketOffline(unsigned socket) const;

    /** Is far-memory pool node @p node offline? (socket field = node id) */
    bool poolNodeOffline(unsigned node) const;

    /** Is the host<->pool fabric partitioned (every pool node cut off)? */
    bool fabricPartition() const;

    /** Is the inter-socket link between @p a and @p b hard-down? */
    bool linkDown(unsigned a, unsigned b) const;

    /** Lossy-link fault on (a, b), or nullptr when the link is clean. */
    const FaultDescriptor *lossyLink(unsigned a, unsigned b) const;

    /**
     * A repair write occurred at this location: drop matching transient
     * faults. @return number of faults cured.
     */
    unsigned repairAt(unsigned socket, unsigned channel,
                      const DramCoord &coord);

    /** Is an active read-disturbance fault matching this access? Lets
     *  the Dvé engine retire frames whose failures are hammer-driven. */
    bool rowDisturbAt(unsigned socket, unsigned channel,
                      const DramCoord &coord) const;

    // ---- Metadata-domain queries (consulted by the Dvé control plane) --

    /**
     * Active Metadata fault on (socket, structure, page), or nullptr.
     * Metadata faults never match DRAM data accesses (impact()/repairAt()
     * ignore them); only these explicit control-plane consults see them.
     */
    const FaultDescriptor *metadataFaultAt(unsigned socket,
                                           unsigned structure,
                                           std::uint64_t page) const;

    /** Any active Metadata-scope fault at all? (cheap arming check) */
    bool anyMetadataFault() const;

    /**
     * A metadata rebuild rewrote (socket, structure, page): cure matching
     * *transient* Metadata faults. @return number of faults cured.
     */
    unsigned repairMetadataAt(unsigned socket, unsigned structure,
                              std::uint64_t page);

    const std::vector<FaultDescriptor> &active() const { return faults_; }

    /** Zero the coordinate fields @p f's scope ignores (canonical form);
     *  duplicate detection and formatFaultSpec compare/emit this form. */
    static FaultDescriptor normalized(FaultDescriptor f);

  private:
    static bool matches(const FaultDescriptor &f, unsigned socket,
                        unsigned channel, const DramCoord &coord);

    bool inBounds(const FaultDescriptor &f) const;

    std::vector<FaultDescriptor> faults_;
    std::uint64_t nextId_ = 1;
    FaultGeometry geom_;
};

} // namespace dve

#endif // DVE_FAULT_FAULT_HH
