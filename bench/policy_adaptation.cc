/**
 * @file
 * Policy-adaptation harness: how fast (and how safely) the on-demand
 * replication policy chases a moving hot set under capacity pressure.
 *
 * Runs the three policy campaign presets -- diurnal load shift, flash
 * crowd onto a fresh hot set, and a mid-run budget squeeze -- over the
 * policy scheme list (detection-only baseline vs policy-driven Dvé
 * allow/deny) and reports, per scheme: promotion/demotion volume, the
 * promotion lag distribution (request-to-healed through the timed repair
 * path), the demotion writeback-storm distribution, and the end-to-end
 * request p99 the storms perturb. SDC must stay zero for the Dvé schemes
 * under every preset: budget churn may cost performance, never honesty.
 *
 * Usage:
 *   policy_adaptation [--trials N] [--seed S] [--jobs N] [--json FILE]
 *
 * Deterministic: same flags -> byte-identical stdout and JSON at any
 * --jobs / DVE_BENCH_JOBS value (trials merge in index order; histogram
 * buckets merge exactly; only integral digest fields are printed).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/histogram.hh"
#include "common/table.hh"
#include "fault/campaign.hh"

using namespace dve;

namespace
{

/** Integral-only digest block (mean is a double; deliberately absent). */
void
jsonDigest(std::ostringstream &os, const char *key, const Histogram &h)
{
    const LatencyDigest d = digestOf(h);
    os << "\"" << key << "\": {\"count\": " << d.count
       << ", \"p50\": " << d.p50 << ", \"p90\": " << d.p90
       << ", \"p95\": " << d.p95 << ", \"p99\": " << d.p99
       << ", \"max\": " << d.max << "}";
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned trials = 6;
    std::uint64_t seed = 1;
    unsigned jobs = 0; // 0 = DVE_BENCH_JOBS / hardware concurrency
    const char *json_path = nullptr;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
            trials =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return 1;
        }
    }
    if (trials == 0) {
        std::fprintf(stderr, "--trials must be >= 1\n");
        return 1;
    }

    const PolicyScenario presets[] = {
        PolicyScenario::Diurnal,
        PolicyScenario::FlashCrowd,
        PolicyScenario::BudgetSqueeze,
    };

    std::ostringstream json;
    json << "{\"bench\": \"policy_adaptation\",\n\"trials\": " << trials
         << ",\n\"seed\": " << seed << ",\n\"scenarios\": [\n";

    bool sdc_clean = true;
    for (std::size_t si = 0; si < std::size(presets); ++si) {
        CampaignConfig cfg = CampaignConfig::quickDefaults();
        cfg.trials = trials;
        cfg.seed = seed;
        cfg.jobs = jobs;
        applyPolicyPreset(cfg, presets[si]);

        const CampaignRunner runner(cfg);
        const CampaignReport report = runner.run(policySchemes());

        bench::printHeader(
            ("Policy adaptation, scenario "
             + std::string(policyScenarioName(presets[si])))
                .c_str());
        TextTable t({"Scheme", "DUE", "SDC", "Epochs", "Promoted",
                     "Demoted", "Lag p99", "WB p99", "Req p99"});
        json << "{\"scenario\": \""
             << policyScenarioName(presets[si])
             << "\", \"global_budget\": " << cfg.dve.policy.globalBudget
             << ", \"ops_per_trial\": " << cfg.opsPerTrial
             << ", \"schemes\": [\n";
        for (std::size_t k = 0; k < report.schemes.size(); ++k) {
            const auto &sr = report.schemes[k];
            const auto &tot = sr.totals;
            const LatencyDigest lag = digestOf(tot.policyPromotionLag);
            const LatencyDigest wb = digestOf(tot.policyDemotionWbWait);
            if (sr.scheme != CampaignScheme::BaselineDetect
                && tot.sdc != 0) {
                sdc_clean = false;
            }
            t.addRow({campaignSchemeName(sr.scheme),
                      std::to_string(tot.due), std::to_string(tot.sdc),
                      std::to_string(tot.policyEpochs),
                      std::to_string(tot.policyPromotions),
                      std::to_string(tot.policyDemotions),
                      std::to_string(lag.p99), std::to_string(wb.p99),
                      std::to_string(sr.reqLatencyDigest.p99)});
            json << "{\"scheme\": \"" << campaignSchemeName(sr.scheme)
                 << "\", \"due\": " << tot.due << ", \"sdc\": " << tot.sdc
                 << ", \"policy_epochs\": " << tot.policyEpochs
                 << ", \"policy_promotions\": " << tot.policyPromotions
                 << ", \"policy_demotions\": " << tot.policyDemotions
                 << ", \"policy_demotions_deferred\": "
                 << tot.policyDemotionsDeferred
                 << ", \"policy_demotion_writebacks\": "
                 << tot.policyDemotionWritebacks << ", ";
            jsonDigest(json, "promotion_lag", tot.policyPromotionLag);
            json << ", ";
            jsonDigest(json, "demotion_wb_wait", tot.policyDemotionWbWait);
            json << ", \"req_p50\": " << sr.reqLatencyDigest.p50
                 << ", \"req_p99\": " << sr.reqLatencyDigest.p99 << "}"
                 << (k + 1 < report.schemes.size() ? ",\n" : "\n");
        }
        json << "]}" << (si + 1 < std::size(presets) ? ",\n" : "\n");
        t.print(std::cout);
    }
    json << "],\n\"sdc_clean\": " << (sdc_clean ? "true" : "false")
         << "}\n";

    std::printf("\nThe policy chases each phase's hot set through the "
                "timed repair path\n(promotion lag) and sheds cold "
                "replicas with real writeback storms\n(WB p99) while SDC "
                "stays zero: capacity pressure costs performance,\nnever "
                "honesty.\n");

    if (json_path) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 1;
        }
        out << json.str();
        std::printf("\nJSON report written to %s\n", json_path);
    }
    return sdc_clean ? 0 : 1;
}
