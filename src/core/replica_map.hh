/**
 * @file
 * Replica address mapping: the fixed-function scheme and the OS-managed
 * Replica Map Table (RMT) for on-demand replication (paper Sec. III and
 * V-D).
 *
 * The fixed function replicates every page onto the next socket while
 * retaining the DRAM-internal mapping (the paper's f(p) = p/L + 1 - 2S for
 * two sockets); in this model a replica is keyed by the original line
 * number in the replica socket's memory controller, which is exactly
 * "same internal mapping, other socket".
 *
 * The RMT maps individual pages on demand: pages without an entry fall
 * back to a single copy, giving the capacity/reliability flexibility the
 * paper argues for.
 */

#ifndef DVE_CORE_REPLICA_MAP_HH
#define DVE_CORE_REPLICA_MAP_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/logging.hh"
#include "common/types.hh"

namespace dve
{

/** Fixed-function or table-based page -> replica-socket mapping. */
class ReplicaMap
{
  public:
    /** Fixed-function mapping: every page replicated on the next socket. */
    static ReplicaMap
    fixedAll(unsigned sockets)
    {
        ReplicaMap m(sockets);
        m.all_ = true;
        return m;
    }

    /** Empty RMT for on-demand replication. */
    explicit ReplicaMap(unsigned sockets) : sockets_(sockets)
    {
        dve_assert(sockets >= 1, "need at least one socket");
    }

    /** True when the whole address space is replicated. */
    bool coversAll() const { return all_; }

    /**
     * Map @p page to a replica on @p replica_socket (RMT insert). The OS
     * guarantees replicas land on a different socket than the home.
     */
    void
    mapPage(Addr page, unsigned replica_socket)
    {
        dve_assert(!all_, "fixed mapping covers everything already");
        dve_assert(replica_socket < sockets_, "socket out of range");
        pages_[page] = replica_socket;
    }

    /** Reclaim a page's replica (capacity crunch). @return had mapping. */
    bool
    unmapPage(Addr page)
    {
        return pages_.erase(page) > 0;
    }

    /**
     * Replica socket for the line, or nullopt when the line is not
     * replicated. Never returns the home socket.
     */
    std::optional<unsigned>
    replicaSocket(Addr line, unsigned home_socket) const
    {
        if (sockets_ < 2)
            return std::nullopt;
        if (all_)
            return (home_socket + 1) % sockets_;
        const auto it = pages_.find(line >> (pageShift - lineShift));
        if (it == pages_.end())
            return std::nullopt;
        dve_assert(it->second != home_socket,
                   "replica must live on a different socket");
        return it->second;
    }

    std::size_t mappedPages() const { return pages_.size(); }

  private:
    bool all_ = false;
    unsigned sockets_;
    std::unordered_map<Addr, unsigned> pages_;
};

} // namespace dve

#endif // DVE_CORE_REPLICA_MAP_HH
