/**
 * @file
 * Tests for the analytical reliability models: every Table I cell is
 * checked against the paper's reported value, the thermal analysis
 * reproduces the 4.15x / 11% claims, and a Monte-Carlo simulation
 * cross-checks the closed forms' chipkill-vs-Dvé DUE ratio.
 */

#include <gtest/gtest.h>

#include "reliability/rates.hh"

namespace dve
{
namespace reliability
{
namespace
{

/** Relative-error matcher for order-of-magnitude reliability math. */
void
expectNear(double actual, double expected, double rel_tol,
           const char *what)
{
    EXPECT_NEAR(actual, expected, std::abs(expected) * rel_tol) << what;
}

TEST(TableOne, ChipkillBaseline)
{
    const auto r = chipkill();
    expectNear(r.due, 1.0e-2, 0.05, "chipkill DUE");
    expectNear(r.sdc, 3.1e-10, 0.08, "chipkill SDC");
}

TEST(TableOne, DveDsd)
{
    const auto r = dveDsd();
    expectNear(r.due, 2.5e-3, 0.05, "dve+dsd DUE");
    expectNear(r.sdc, 6.3e-10, 0.08, "dve+dsd SDC");
    // The 4x headline: DUE improvement over Chipkill.
    EXPECT_NEAR(chipkill().due / r.due, 4.0, 0.05);
}

TEST(TableOne, DveTsd)
{
    const auto r = dveTsd();
    expectNear(r.due, 2.5e-3, 0.05, "dve+tsd DUE");
    expectNear(r.sdc, 2.5e-16, 0.08, "dve+tsd SDC");
    // ~10^6 x SDC improvement over Chipkill.
    const double impr = chipkill().sdc / r.sdc;
    EXPECT_GT(impr, 1e5);
    EXPECT_LT(impr, 1e7);
}

TEST(TableOne, Raim)
{
    const auto r = raim();
    expectNear(r.due, 1.5e-14, 0.08, "RAIM DUE");
    expectNear(r.sdc, 4.0e-10, 0.08, "RAIM SDC");
}

TEST(TableOne, DveChipkill)
{
    const auto r = dveChipkill();
    expectNear(r.due, 8.79e-17, 0.05, "dve+chipkill DUE");
    expectNear(r.sdc, 6.3e-10, 0.08, "dve+chipkill SDC");
    // Two orders of magnitude better DUE than RAIM (paper: 172x).
    const double impr = raim().due / r.due;
    EXPECT_GT(impr, 100.0);
    EXPECT_LT(impr, 300.0);
}

TEST(TableOne, ThermalProfileMatchesPaper)
{
    const auto fits = thermalFitProfile();
    ASSERT_EQ(fits.size(), 9u);
    EXPECT_DOUBLE_EQ(fits.front(), 66.1);
    EXPECT_DOUBLE_EQ(fits.back(), 131.7);
}

TEST(TableOne, ThermalChipkill)
{
    const auto r = chipkillThermal(ModelParams{}, thermalFitProfile());
    expectNear(r.due, 2.2e-2, 0.05, "chipkill-thermal DUE");
    expectNear(r.sdc, 1.0e-9, 0.15, "chipkill-thermal SDC");
}

TEST(TableOne, ThermalDveTsdRiskInverseMapping)
{
    const ModelParams p;
    const auto fits = thermalFitProfile();
    const auto dve = dveTsdThermal(p, fits, true);
    const auto intel = dveTsdThermal(p, fits, false);

    expectNear(dve.due, 5.3e-3, 0.05, "dve+tsd thermal DUE");
    expectNear(intel.due, 5.9e-3, 0.05, "intel+tsd thermal DUE");
    expectNear(dve.sdc, 1.1e-15, 0.15, "dve+tsd thermal SDC");

    // 4.15x over thermal Chipkill; >= 11% better DUE than Intel-style
    // same-position mirroring (the thermal risk-inverse benefit).
    const auto ck = chipkillThermal(p, fits);
    EXPECT_NEAR(ck.due / dve.due, 4.15, 0.1);
    EXPECT_GE(intel.due / dve.due, 1.09);
}

TEST(Rates, ScaleLinearlyWithDimms)
{
    ModelParams p;
    p.dimms = 64;
    EXPECT_NEAR(chipkill(p).due, 2 * chipkill().due, 1e-12);
}

TEST(Rates, ScaleQuadraticallyWithFit)
{
    ModelParams p;
    p.fitPerChip = 132.2; // 2x
    EXPECT_NEAR(chipkill(p).due / chipkill().due, 4.0, 1e-9);
    // SDC involves three failures: 8x.
    EXPECT_NEAR(chipkill(p).sdc / chipkill().sdc, 8.0, 1e-9);
}

TEST(Rates, ArrheniusFactorBehaviour)
{
    EXPECT_NEAR(arrheniusFactor(0.0), 1.0, 1e-12);
    const double f10 = arrheniusFactor(10.0);
    EXPECT_GT(f10, 1.4); // roughly doubles every ~10-12 C at Ea=0.6
    EXPECT_LT(f10, 2.5);
    EXPECT_GT(arrheniusFactor(20.0), f10 * 1.3);
}

TEST(Rates, EffectiveCapacity)
{
    // Chipkill DIMM: 8 data chips of 9.
    EXPECT_NEAR(effectiveCapacity(64, 8, 1), 64.0 / 72.0, 1e-12);
    // Dvé+DSD: replicated, so half of the above ~ 44% (paper: 43.75%).
    EXPECT_NEAR(effectiveCapacity(64, 8, 2), 32.0 / 72.0, 1e-12);
    EXPECT_NEAR(effectiveCapacity(64, 8, 2), 0.444, 0.01);
    // No protection: 100%.
    EXPECT_DOUBLE_EQ(effectiveCapacity(64, 0, 1), 1.0);
}

TEST(MonteCarlo, CrossChecksTheFourXDueRatio)
{
    // At an inflated per-window failure probability the closed forms'
    // chipkill:dve DUE ratio (36 ordered pairs vs 9 same-position
    // pairs = 4x) must emerge from brute-force simulation.
    ModelParams p;
    Rng rng(31337);
    const double q = 0.002;
    const auto trials = 400000ull;
    const double ck = monteCarloChipkillDue(p, q, trials, rng);
    const double dv = monteCarloDveDue(p, q, trials, rng);

    // Closed-form per-window probabilities (unordered counting).
    const double ck_expect = p.dimms * 36.0 * q * q;
    const double dv_expect = p.dimms * 9.0 * q * q;
    EXPECT_NEAR(ck, ck_expect, ck_expect * 0.15);
    EXPECT_NEAR(dv, dv_expect, dv_expect * 0.25);
    EXPECT_NEAR(ck / dv, 4.0, 1.0);
}

TEST(MonteCarlo, ZeroFailureProbabilityIsSafe)
{
    ModelParams p;
    Rng rng(1);
    EXPECT_EQ(monteCarloChipkillDue(p, 0.0, 1000, rng), 0.0);
    EXPECT_EQ(monteCarloDveDue(p, 0.0, 1000, rng), 0.0);
}

} // namespace
} // namespace reliability
} // namespace dve
