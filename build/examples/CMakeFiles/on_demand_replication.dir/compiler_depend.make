# Empty compiler generated dependencies file for on_demand_replication.
# This may be replaced when dependencies are built.
