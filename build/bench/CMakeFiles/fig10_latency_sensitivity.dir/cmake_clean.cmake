file(REMOVE_RECURSE
  "CMakeFiles/fig10_latency_sensitivity.dir/fig10_latency_sensitivity.cc.o"
  "CMakeFiles/fig10_latency_sensitivity.dir/fig10_latency_sensitivity.cc.o.d"
  "fig10_latency_sensitivity"
  "fig10_latency_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_latency_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
