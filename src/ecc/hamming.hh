/**
 * @file
 * Hamming(72,64) SEC-DED: the classic single-error-correct /
 * double-error-detect code used as the Fig 1 "SEC-DED" comparison point.
 */

#ifndef DVE_ECC_HAMMING_HH
#define DVE_ECC_HAMMING_HH

#include <cstdint>

#include "ecc/reed_solomon.hh" // for EccStatus

namespace dve
{

/** SEC-DED over a 64-bit word with 8 check bits. */
class HammingSecDed
{
  public:
    /** A 64-bit data word plus its 8 check bits. */
    struct Codeword
    {
        std::uint64_t data = 0;
        std::uint8_t check = 0;

        bool operator==(const Codeword &) const = default;
    };

    /** Compute check bits for @p data. */
    static Codeword encode(std::uint64_t data);

    /** Result of decoding a possibly corrupted codeword. */
    struct Result
    {
        EccStatus status = EccStatus::Clean;
        Codeword codeword;
    };

    /**
     * Decode: single-bit errors (data or check) are corrected, double-bit
     * errors are detected; >= 3 bit errors may alias (SDC), as in hardware.
     */
    static Result decode(const Codeword &received);

  private:
    static std::uint8_t syndromeOf(const Codeword &cw);
    static std::uint8_t parityOf(std::uint64_t data, std::uint8_t check);
};

} // namespace dve

#endif // DVE_ECC_HAMMING_HH
