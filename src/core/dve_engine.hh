/**
 * @file
 * Dvé: Coherent Replication on top of the baseline NUMA engine.
 *
 * This is the paper's primary contribution (Sec. V). Every replicated line
 * has a home directory and, on another socket, a replica directory. LLC
 * misses route to the nearest of the two; the replica directory grants
 * coherent access to the local replica memory under one of two protocol
 * families:
 *
 *  - allow: permissions are pulled lazily from home on first replica read
 *    (absence of an entry means "ask home").
 *  - deny: the home eagerly pushes remote-modified (RM) markers; absence
 *    of an entry means "read the replica".
 *  - dynamic: a set-dueling sampler picks the better of the two per epoch.
 *
 * Reliability: dirty writebacks synchronously update home AND replica
 * memory; a detected-uncorrectable read on either copy diverts to the
 * other, logs a corrected error, repairs the failing copy, and degrades
 * the line to single-copy service if the repair fails (Sec. V-B2).
 *
 * Optimizations (Sec. V-C5): speculative replica access, coarse-grain
 * region permissions, the sampling-based dynamic protocol, and an
 * oracular replica directory mode for the Fig 9 ceiling study.
 */

#ifndef DVE_CORE_DVE_ENGINE_HH
#define DVE_CORE_DVE_ENGINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coherence/engine.hh"
#include "core/replica_directory.hh"
#include "core/replica_map.hh"
#include "mem/pool_remap.hh"
#include "policy/replication_policy.hh"

namespace dve
{

/** Which replica-access protocol family to run. */
enum class DveProtocol : std::uint8_t
{
    Allow,
    Deny,
    Dynamic,
};

const char *dveProtocolName(DveProtocol p);

/**
 * Protection tier of the directory/RMT metadata arrays (the metadata
 * fault domain's analogue of the per-scheme data codecs). Metadata lives
 * in the same failure-prone DRAM as the data it describes; the tier
 * decides what a consult of a corrupted entry observes.
 */
enum class MetadataProtection : std::uint8_t
{
    None,   ///< the corrupted entry silently lies (wrong owner/permission)
    Parity, ///< corruption is detected; the entry is treated as lost
    Ecc,    ///< corruption is corrected in place
};

constexpr unsigned numMetadataProtections = 3;

const char *metadataProtectionName(MetadataProtection p);

/** Inverse of metadataProtectionName; nullopt for unrecognized names. */
std::optional<MetadataProtection> parseMetadataProtection(const char *name);

/** Dvé-specific configuration (defaults follow Sec. VI). */
struct DveConfig
{
    DveProtocol protocol = DveProtocol::Deny;
    /** Overlap local replica DRAM access with permission resolution. */
    bool speculativeReplicaRead = true;
    /** On-chip replica directory entries (2K default, 4K in Fig 9). */
    std::size_t replicaDirEntries = 2048;
    /** Infinite, zero-cost replica directory (Fig 9 oracle). */
    bool oracular = false;
    /** Coarse-grain region permissions for the allow protocol. */
    bool coarseGrain = false;
    unsigned regionLines = 64; ///< 64 lines = one 4 KB page
    /** Replicate the whole address space with the fixed mapping. */
    bool replicateAll = true;
    /** Dynamic protocol: re-evaluate the winner every this many
     *  replicated-line directory transactions (the paper profiles 100M
     *  instructions of every 1B; this default keeps the same ~epoch
     *  structure at simulation trace lengths). */
    std::uint64_t epochOps = 15000;
    /** Set-dueling group count: line % groups == 0 samples allow,
     *  == 1 samples deny. */
    std::uint64_t sampleGroups = 64;
    /**
     * Row-hammer mitigation (paper Sec. III): alternate fault-free reads
     * between the local replica and the home copy, halving per-row
     * activation pressure at the cost of extra inter-socket traffic.
     */
    bool balanceReplicaReads = false;

    // ---- Self-healing (Sec. V-E extension) -----------------------------
    /** Run the background repair pipeline on degraded lines. */
    bool selfHeal = true;
    /** Repair attempts per degraded line before retiring its frame. */
    unsigned repairMaxRetries = 3;
    /** Delay before the first retry of a failed repair; doubles each
     *  subsequent attempt (bounded exponential backoff). */
    Tick repairRetryBackoff = 2 * ticksPerUs;
    /** First page number of the spare-frame pool retirement remaps onto.
     *  Far above any workload footprint by default. */
    Addr sparePageBase = Addr(1) << 26;
    /** Aggressor-aware retirement: retire a line's frame once it needed
     *  this many repairs while a read-disturbance fault sat on it (the
     *  spare frame escapes the hammered rows). 0 = disabled. */
    unsigned disturbRetireAfter = 0;

    // ---- Fabric-fault escalation (link/socket failures) ----------------
    /** Timeout charged when a cross-socket message is lost in the fabric. */
    Tick linkTimeout = 2 * ticksPerUs;
    /** Retries of a lost cross-socket transfer before escalating. */
    unsigned linkRetryMax = 3;
    /** Delay before the first retry of a lost transfer; doubles each
     *  subsequent attempt (bounded exponential backoff). */
    Tick linkRetryBackoff = 1 * ticksPerUs;
    /** After retry exhaustion the socket pair is fenced: sends fail fast
     *  until this probe interval elapses and one retry ladder re-tests
     *  the link (circuit breaker). */
    Tick fenceProbeInterval = 25 * ticksPerUs;

    // ---- Far-memory pool tier (two-tier disaggregated protection) ------
    /**
     * Far-memory pool nodes holding the replica copies. 0 (the default)
     * disables the pool tier: replicas stay in the replica socket's
     * local DRAM exactly as before. With N > 0 nodes, every replica
     * page is hash-spread across the pool; reads/writes of the replica
     * copy traverse the (slower) host-to-pool link and ride the same
     * timeout/retry/backoff/fencing ladder as cross-socket transfers.
     * A partitioned fabric or an offline node demotes affected lines to
     * local-ECC-only service; heal-back re-replicates pages of a lost
     * node onto survivors.
     */
    unsigned poolNodes = 0;

    // ---- On-demand replication policy (capacity-pressure tier) ---------
    /**
     * Epoch-driven promotion/demotion of pages under an explicit
     * replication-capacity budget (paper Sec. V: replication on
     * demand). Requires replicateAll == false (the RMT path); promotion
     * seeds a replica through the timed repair pipeline, demotion
     * funnels through the single-copy degradation ladder (it defers
     * while any line of the page is degraded) and issues real replica
     * writebacks. Disabled by default; a disabled policy leaves every
     * observable output byte-identical.
     */
    PolicyConfig policy;

    // ---- Metadata fault domain (control-plane protection) --------------
    /**
     * Arm the metadata fault domain: FaultScope::Metadata descriptors on
     * (socket, structure, page) coordinates are consulted wherever the
     * engine reads a home-directory entry, the replica directory's
     * backing state, or the replica-map table, and the periodic scrubber
     * grows a metadata pass (detection, cross-rebuild, journal flush).
     * Disarmed (the default), no consult, stat registration, or scrub
     * work happens and every observable output stays byte-identical to
     * a build without the domain.
     */
    bool metadataFaults = false;
    /** Protection tier the metadata arrays carry when armed. */
    MetadataProtection metaProtection = MetadataProtection::Ecc;

    // ---- Seeded-bug switches (chaos-fuzz harness only) -----------------
    /**
     * Re-introduce the pre-fix writeback-refresh bug: a dirty eviction's
     * replica update upgrades ANY leftover replica-directory entry to a
     * Readable permission -- including deny-phase RM / remote-owned M
     * markers whose local reads never registered the replica socket as a
     * sharer at the home directory. The minted permission can never be
     * revoked by a later exclusive grant, so a subsequent local replica
     * read returns stale data (an SDC) under the dynamic protocol.
     * Exists so the fuzz harness can prove the live invariant monitors
     * catch a real, once-shipped protocol bug; never enable otherwise.
     */
    bool bugRmMarkerRefresh = false;
    /**
     * Skip the local-copy invalidation that rides the deny protocol's
     * eager RM push. Replica-side reads do not register at the home
     * directory, so that push is the ONLY mechanism that scrubs the
     * replica socket's cached copies on a remote exclusive grant;
     * without it the next replica-side read hits the stale cache line
     * and commits wrong data (an SDC). Same caveat as above: fuzz
     * harness only.
     */
    bool bugSkipDenyInvalidate = false;
    /**
     * Skip the demotion that fences a pool replica whose synchronous
     * update was lost to a fabric partition or an offline node. The
     * stale far-memory copy keeps its readability, so a replica-side
     * read after the fabric heals commits stale data (an SDC). Exists
     * so the fuzz harness can prove the monitors catch a missing rung
     * of the pool degradation ladder; never enable otherwise.
     */
    bool bugSkipDemotionOnPartition = false;
    /**
     * Skip the journal flush that a metadata scrub's replica-directory
     * rebuild must perform. While a page's backing metadata is lost
     * (parity tier), deny-protocol RM pushes are journaled instead of
     * written to the corrupt structure; the rebuild replays that journal
     * so the markers exist again. With the bug the scrub declares the
     * entry rebuilt (clearing the lost record and curing the transient)
     * WITHOUT replaying the journal: the replica directory then reads
     * absence-means-readable over a remotely-modified line, and the next
     * local replica read commits stale data (an SDC). The metadata
     * invariant monitor catches the divergence against the journal's
     * golden shadow. Fuzz harness only; never enable otherwise.
     */
    bool bugSkipRebuildOnScrub = false;
};

/** The Dvé engine: baseline NUMA + coherent replication. */
class DveEngine : public CoherenceEngine
{
  public:
    DveEngine(const EngineConfig &cfg, const DveConfig &dve);

    const char *schemeName() const override;

    /** The replica mapping (fixed or RMT). */
    ReplicaMap &replicaMap() { return rmap_; }

    ReplicaDirectory &replicaDirectory(unsigned socket)
    {
        return *rdirs_[socket];
    }

    /**
     * On-demand replication (RMT path): replicate @p page onto
     * @p replica_socket, seeding the replica memory from home memory and
     * the deny state from the home directory.
     */
    void enableReplication(Addr page, unsigned replica_socket);

    /** Reclaim a page's replica capacity (hot-unplug back to the OS). */
    void disableReplication(Addr page);

    /** Protocol the dynamic sampler currently applies to follower lines. */
    bool dynamicPrefersDeny() const { return denyWinning_; }

    /** Outcome of one patrol-scrub sweep. */
    struct ScrubReport
    {
        std::uint64_t linesScanned = 0;
        std::uint64_t correctedErrors = 0;   ///< CE delta (incl. recoveries)
        std::uint64_t replicaRecoveries = 0; ///< cross-copy repairs
        std::uint64_t dataLost = 0;          ///< machine-check delta
        Tick finishedAt = 0;
    };

    /**
     * Patrol scrub (the periodic sweep the Table I scrub-interval model
     * assumes): read every written line's home and replica copies with
     * full ECC checking, repairing detected errors from the surviving
     * copy. Latent transient faults are cured before they can pair into
     * a DUE. @p max_lines bounds one sweep's length.
     */
    ScrubReport patrolScrub(Tick now,
                            std::size_t max_lines = SIZE_MAX);

    /** Outcome of one background-maintenance pass. */
    struct MaintenanceReport
    {
        std::uint64_t tasksRun = 0; ///< repair attempts processed
        std::uint64_t healed = 0;   ///< lines restored to dual-copy
        std::uint64_t retired = 0;  ///< frames remapped to spares
        Tick finishedAt = 0;
    };

    /**
     * Background self-healing pass (the re-replication campaign's
     * maintenance hook). Processes the repair queue: each degraded line
     * whose backoff deadline has passed is re-read from its surviving
     * copy and rewritten-with-verify on the failed side. Success returns
     * the line to dual-copy service; failure requeues with doubled
     * backoff; exhausting the retry budget retires the failing frame to
     * a spare page and re-replicates the page's contents onto it.
     */
    MaintenanceReport runMaintenance(Tick now);

    /** Degraded-repair tasks awaiting a maintenance pass. */
    std::size_t pendingRepairs() const { return repairQueue_.size(); }

    /** Has @p socket's frame for @p page been retired onto a spare? */
    bool
    pageRetired(unsigned socket, Addr page) const
    {
        return frameRemap_[socket].count(page) > 0;
    }

    // ---- Far-memory pool tier ------------------------------------------

    /** Is the far-memory pool tier holding the replica copies? */
    bool poolActive() const { return !poolMems_.empty(); }

    /** Pool node currently holding @p line's replica (pool mode only). */
    unsigned
    poolNodeOf(Addr line) const
    {
        return poolRemap_->nodeFor(line >> (pageShift - lineShift));
    }

    /** The page -> pool-node placement map (pool mode only). */
    PoolRemap &poolRemap() { return *poolRemap_; }

    /** Memory controller of pool node @p node (pool mode only). */
    MemoryController &poolMemory(unsigned node) { return *poolMems_[node]; }

    std::uint64_t poolReplicaReads() const { return poolReads_.value(); }
    std::uint64_t poolReplicaWrites() const { return poolWrites_.value(); }
    /** Pages healed back onto a surviving node after a node loss. */
    std::uint64_t poolRetargets() const { return poolRetargets_.value(); }

    // ---- On-demand replication policy ----------------------------------

    /** Is the epoch-driven replication policy armed? */
    bool policyActive() const { return policy_ != nullptr; }

    /**
     * Retune the policy's global replication budget mid-run (operator
     * capacity reclaim). Demotions to the new budget happen at the
     * next epoch boundary. No-op when the policy is disarmed.
     */
    void setPolicyGlobalBudget(std::size_t pages);

    std::uint64_t policyEpochs() const { return policyEpochs_.value(); }
    std::uint64_t policyPromotions() const
    {
        return policyPromotions_.value();
    }
    std::uint64_t policyDemotions() const
    {
        return policyDemotions_.value();
    }
    /** Demotions pushed to a later epoch by in-flight degraded lines. */
    std::uint64_t policyDemotionsDeferred() const
    {
        return policyDemotionsDeferred_.value();
    }
    /** Replica-line writebacks issued by demotions. */
    std::uint64_t policyDemotionWritebacks() const
    {
        return policyDemotionWritebacks_.value();
    }

    /** Promotion-decision-to-replica-healed latency distribution. */
    const Histogram &policyPromotionLag() const
    {
        return policyPromotionLag_;
    }

    /** Per-demotion writeback-storm latency distribution. */
    const Histogram &policyDemotionWbWait() const
    {
        return policyDemotionWbWait_;
    }

    // ---- Metadata fault domain -----------------------------------------

    /** Is the metadata fault domain armed? */
    bool metadataArmed() const { return dcfg_.metadataFaults; }

    /** Parity detections that marked an entry lost. */
    std::uint64_t metadataDetected() const { return metaDetected_.value(); }
    /** ECC-corrected metadata consults/scrubs. */
    std::uint64_t metadataCorrected() const
    {
        return metaCorrected_.value();
    }
    /** Consults served by a silently-corrupt (unprotected) entry. */
    std::uint64_t metadataLies() const { return metaLies_.value(); }
    /** Lost entries reconstructed (cross-rebuild or write re-alloc). */
    std::uint64_t metadataRebuilds() const { return metaRebuilds_.value(); }
    /** Reads demoted to an honest DUE because both sides were lost. */
    std::uint64_t metadataDemotions() const
    {
        return metaDemotions_.value();
    }
    /** Requests rerouted to the home copy while an entry was lost. */
    std::uint64_t metadataForwards() const { return metaForwards_.value(); }
    /** Entries currently marked lost and awaiting rebuild. */
    std::size_t metadataLostEntries() const { return metaLost_.size(); }

    // Dvé-specific statistics.
    std::uint64_t replicaLocalReads() const
    {
        return replicaLocalReads_.value();
    }
    std::uint64_t permissionPulls() const { return permPulls_.value(); }
    std::uint64_t rmPushes() const { return rmPushes_.value(); }
    std::uint64_t speculationWins() const { return specWins_.value(); }
    std::uint64_t speculationSquashes() const
    {
        return specSquashes_.value();
    }
    std::uint64_t replicaRecoveries() const
    {
        return replicaRecoveries_.value();
    }
    std::uint64_t degradedLines() const
    {
        return degradedHome_.size() + degradedReplica_.size();
    }
    std::uint64_t repairedCopies() const { return repaired_.value(); }
    std::uint64_t reReplications() const { return reReplications_.value(); }
    std::uint64_t retiredPages() const { return retiredPages_.value(); }
    std::uint64_t repairRetries() const { return repairRetries_.value(); }
    std::uint64_t unavailableRequests() const
    {
        return unavailableReqs_.value();
    }
    std::uint64_t linkRetries() const { return linkRetries_.value(); }
    std::uint64_t fabricDemotions() const
    {
        return fabricDemotions_.value();
    }
    std::uint64_t repairDeferrals() const
    {
        return repairDeferrals_.value();
    }
    /** Frames retired because hammering kept re-degrading them. */
    std::uint64_t disturbRetirements() const
    {
        return disturbRetirements_.value();
    }
    std::uint64_t slowControlMessages() const
    {
        return slowControlMsgs_.value();
    }

    /** Per-recovery latencies (ticks) of cross-copy read diversions. */
    const std::vector<Tick> &recoveryLatencies() const
    {
        return recoveryLatencies_;
    }

    /**
     * Total ticks lines have spent in degraded single-copy service:
     * closed intervals plus, for still-degraded lines, time up to @p now.
     */
    double degradedResidency(Tick now) const;

    std::uint64_t dynamicSwitches() const
    {
        return dynamicSwitches_.value();
    }

    const StatGroup &dveStats() const { return dveStats_; }

    /** Retry-ladder wait distribution (ticks lost to lost messages). */
    const Histogram &retryWait() const { return retryWait_; }

    /** Repair-queue sojourn distribution (enqueue to retirement). */
    const Histogram &repairSojourn() const { return repairSojourn_; }

    void dumpStats(std::ostream &os) const override;

  protected:
    MissResult serviceLlcMiss(unsigned socket, Addr line, bool is_write,
                              Tick t_slice) override;
    MemRead readMemoryChecked(unsigned home, Addr line, Tick when) override;
    Tick writebackToMemory(unsigned home, Addr line, std::uint64_t value,
                           Tick when) override;
    Tick grantedExclusive(unsigned home, Addr line, unsigned to_socket,
                          Tick start, std::uint32_t prev_sharers) override;
    bool retainSharerAfterWriteback(unsigned home, Addr line,
                                    unsigned from_socket) override;

    /**
     * Base sweeps (SWMR, LLC/L1 tracking) plus the replica-directory
     * coherence monitors: every explicit Readable permission must have a
     * home sharer registration behind it (allow soundness), and every
     * remotely modified replicated line must carry an RM marker under the
     * deny protocol (deny exhaustiveness). Degraded lines are exempt --
     * their replica state is intentionally fenced off.
     */
    void checkInvariants(Tick now) override;

    /** A DUE is honest when faults are active, the line is degraded, or
     *  a fabric fence is (or recently was) open. */
    bool dueHasCause(Addr line) const override;

    // ---- Fabric-fault escalation ---------------------------------------

    /** Outcome of a fault-aware cross-socket transfer attempt. */
    struct FabricOutcome
    {
        bool delivered = false;
        Tick at = 0; ///< delivery tick, or when the sender gave up
    };

    /**
     * Data-plane transfer with timeout-retry-bounded-exponential-backoff.
     * A lost message costs linkTimeout, then retries up to linkRetryMax
     * times with doubling backoff. Exhaustion fences the socket pair
     * (subsequent sends fail fast until fenceProbeInterval elapses).
     * Fault-free paths behave exactly like Interconnect::send.
     */
    FabricOutcome fabricSend(NodeId src, NodeId dst, MsgClass cls,
                             Tick when);

    /**
     * Control-plane transfer: coherence metadata is never lost. When the
     * direct link gives up, the message reaches its destination over the
     * resilient (software-routed) slow path at one extra linkTimeout.
     */
    Tick controlSend(NodeId src, NodeId dst, Tick when);

  private:
    /** Effective protocol for a line (handles dynamic set dueling). */
    bool effectiveDeny(Addr line) const;

    /** GETS handled at the replica directory of @p rsock. */
    MissResult replicaSideGets(unsigned req_socket, unsigned rsock,
                               Addr line, Tick t_rdir_arrival);

    /** Forward a GETS from the replica directory to the home directory. */
    MissResult forwardGetsToHome(unsigned req_socket, Addr line,
                                 Tick when);

    /** Read the replica copy with cross-socket recovery. */
    MemRead readReplicaChecked(unsigned rsock, unsigned home, Addr line,
                               Tick when);

    /**
     * Serve a replica-side read from the home copy: the demotion path a
     * line rides once its pool replica is unreachable (local-ECC-only
     * service -- a lost leg or a failed home read is an honest DUE).
     */
    MemRead readHomeDivert(unsigned rsock, unsigned home, Addr line,
                           Tick when);

    /**
     * Index of the memory bank holding @p line's replica copy in the
     * unified bank table: the replica socket itself, or, in pool mode,
     * sockets + the line's pool node.
     */
    unsigned replicaMemIndex(unsigned rsock, Addr line) const;

    /** Bank @p idx of the unified table (sockets, then pool nodes). */
    MemoryController &memAt(unsigned idx);

    /**
     * Fault-aware transfer between @p host and @p line's replica memory
     * (sitting with socket @p rsock locally, or on a pool node in pool
     * mode). @p to_replica gives the direction; it only affects the
     * local-mode trace endpoints -- the pool link is symmetric.
     */
    FabricOutcome replicaPathSend(unsigned host, unsigned rsock,
                                  Addr line, MsgClass cls, Tick when,
                                  bool to_replica);

    /**
     * Host-to-pool transfer with the same timeout-retry-backoff-fence
     * ladder as fabricSend, keyed on the (socket, pool node) pair.
     */
    FabricOutcome poolSend(unsigned socket, unsigned node, MsgClass cls,
                           Tick when);

    /**
     * Heal-back after a pool-node loss: move @p line's page onto a
     * surviving node, re-replicate it from the home copies, and return
     * its lines to dual-copy service. @return false when no other node
     * is reachable (partition: the caller defers the repair instead).
     */
    bool healBackPage(Addr line, Tick &t);

    /**
     * Fault-free read of a readable line, optionally alternating between
     * the replica and home copies (row-hammer load balancing).
     */
    MemRead readReadableCopy(unsigned rsock, unsigned home, Addr line,
                             Tick when);

    /** True when no line of the region is dirty at the home directory. */
    bool regionCleanAtHome(unsigned home, Addr line) const;

    /** Fence key for an unordered socket pair. */
    static std::uint64_t
    fenceKey(unsigned a, unsigned b)
    {
        return a < b ? (std::uint64_t(a) << 32) | b
                     : (std::uint64_t(b) << 32) | a;
    }

    // ---- Self-healing machinery ----------------------------------------

    /** One pending repair of a degraded copy. */
    struct RepairTask
    {
        Addr line = 0;
        bool homeSide = false; ///< which copy is degraded
        unsigned attempts = 0;
        Tick notBefore = 0;  ///< backoff deadline
        Tick enqueuedAt = 0; ///< when the task entered the queue
    };

    /**
     * Byte address of @p line's data in @p socket's memory, honouring
     * frame retirement: lines of a retired page read/write the spare
     * frame instead of the faulty physical one.
     */
    Addr dataAddr(unsigned socket, Addr line) const;

    /** Record a copy as degraded and (selfHeal) queue its repair. */
    void markDegraded(bool home_side, Addr line, Tick now);

    /** Close a line's degraded interval (no-op when not degraded). */
    void clearDegraded(bool home_side, Addr line, Tick now);

    /** Process one repair task; advances @p t past any memory work. */
    void runRepairTask(RepairTask task, Tick now, Tick &t,
                       MaintenanceReport &rep);

    /**
     * Retire @p socket's frame under @p line's page onto a fresh spare
     * frame and re-replicate the page's written lines onto it from the
     * other copy. Lines that still fail afterwards (faults wider than
     * the frame) stay degraded.
     */
    void retireFrame(unsigned socket, Addr line, bool home_side, Tick &t);

    /**
     * Aggressor-aware retirement accounting for a just-repaired line
     * whose frame carried a read-disturbance fault (@p was_disturbed is
     * sampled *before* the repair, which heals the transient). After
     * disturbRetireAfter such in-place rewrites the page moves to a
     * spare frame whose rows escape the aggressors.
     */
    void noteDisturbRepair(unsigned fail_sock, Addr line, bool home_side,
                           bool was_disturbed, Tick &t);

    // ---- Metadata fault domain machinery -------------------------------

    /** What one consult of a metadata entry observes under the tier. */
    enum class MetaVerdict : std::uint8_t
    {
        Clean, ///< no fault, or the tier corrected it
        Lying, ///< unprotected corruption: the entry misleads the consult
        Lost,  ///< parity detection: the entry is unreadable until rebuilt
    };

    /** Key of one (socket, structure, page) metadata coordinate. */
    static std::uint64_t
    metaKey(unsigned socket, unsigned structure, Addr page)
    {
        return ((std::uint64_t(socket) * numMetaStructures + structure)
                << 48)
               | page;
    }

    /**
     * Consult the metadata entry at (socket, structure, page): applies
     * the protection tier to any active fault there, marking parity
     * detections lost (and counting) as a side effect.
     */
    MetaVerdict metaCheck(unsigned socket, unsigned structure, Addr page,
                          Tick now);

    /** Is the entry unusable as a rebuild source (lost, or faulted
     *  beyond what the tier corrects)? */
    bool metaCompromised(unsigned socket, unsigned structure,
                         Addr page) const;

    /** Is @p line's replica-directory backing page currently lost? */
    bool metaRdLost(unsigned rsock, Addr line) const;

    /**
     * Replica-directory write that honours a lost backing page: journal
     * the intended state (the golden shadow the rebuild replays and the
     * metadata monitor audits) instead of writing the corrupt structure.
     */
    void rdInstall(unsigned rsock, Addr line,
                   const ReplicaDirectory::Entry &e);
    void rdRemove(unsigned rsock, Addr line);

    /**
     * Reconstruct one lost entry in place: cure the transient fault and
     * clear the lost record. @return false (entry stays lost) when the
     * fault is permanent -- the rebuilt entry would corrupt again.
     * @p flush_journal replays journaled replica-directory writes; the
     * seeded bugSkipRebuildOnScrub passes false here.
     */
    bool metaTryRebuild(unsigned socket, unsigned structure, Addr page,
                        bool flush_journal);

    /** Replay (and drop) journaled writes for @p page's lines. */
    void metaFlushJournal(unsigned rsock, Addr page);

    /** Metadata leg of the patrol scrub: detection then rebuild. */
    Tick metaScrubPass(Tick t);

    /** Drop metadata bookkeeping tied to a torn-down replica mapping. */
    void metaDropPage(unsigned rsock, unsigned h, Addr page);

    /** Dynamic protocol bookkeeping per replica-side transaction. */
    void dynamicObserve(Addr line, Tick latency);

    /** Rebuild RM backing state after a switch to the deny protocol. */
    void rebuildDenyBacking();

    /**
     * Drain-phase flush: invalidate replica-side LLC/L1 copies that the
     * home directory does not track as sharers (deny-protocol local
     * replica reads never register there). Required when follower lines
     * switch to the allow protocol, whose invalidations are routed only
     * to registered sharers.
     */
    void flushUntrackedReplicaCopies();

    // ---- On-demand replication policy machinery ------------------------

    /**
     * Policy hook on the demand path: observe the touched page and, at
     * an epoch boundary, apply the decision batch. @return ticks of
     * foreground work (demotion writebacks) charged to the triggering
     * access -- the storm shows up in the request-latency histogram.
     */
    Tick policyTick(Addr line, Tick now);

    /** Replica socket / pool node a policy replica of @p page uses. */
    unsigned policyNodeFor(Addr page) const;

    /**
     * Promote @p page to replicated service. The replica is NOT seeded
     * synchronously: every written line is marked replica-degraded and
     * queued for repair, so the timed repair pipeline performs the
     * actual copy and reads divert to home until each line heals.
     * Promotion lag (decision to fully healed) lands in
     * policyPromotionLag_ via the runMaintenance completion check.
     */
    void promotePage(Addr page, Tick now);

    /**
     * Demote @p page to single-copy service: flush untracked replica-
     * side cached copies, write every written replica line back to the
     * home copy (timed -- the demotion storm is visible in latency),
     * then tear down the mapping. @return false (deferred) while any
     * line of the page is degraded: tearing down the mapping would
     * erase the degraded record while the cells stay corrupted, turning
     * an honest DUE into an unexplained one. The caller retries at the
     * next epoch boundary.
     */
    bool demotePage(Addr page, Tick &t);

    /**
     * Scoped version of flushUntrackedReplicaCopies for one page's
     * lines: invalidate replica-side cached copies the home directory
     * does not track, ahead of the replica mapping teardown.
     */
    void flushUntrackedPageCopies(unsigned rsock, Addr first_line,
                                  Addr last_line);

    DveConfig dcfg_;
    ReplicaMap rmap_;
    std::vector<std::unique_ptr<ReplicaDirectory>> rdirs_;
    /** Far-memory pool controllers (pool mode only), index = node id.
     *  Owned here, not by the base engine: the lifecycle never places
     *  DRAM faults at bank ids >= sockets, so pool DRAM fails only
     *  through pool-scale fault scopes (node offline, partition). */
    std::vector<std::unique_ptr<MemoryController>> poolMems_;
    std::unique_ptr<PoolRemap> poolRemap_;
    /** Degraded copies, keyed by line; value is when it degraded. */
    std::unordered_map<Addr, Tick> degradedHome_;
    std::unordered_map<Addr, Tick> degradedReplica_;
    std::deque<RepairTask> repairQueue_;
    /** Repairs attributed to read disturbance, per line (retirement). */
    std::unordered_map<Addr, unsigned> disturbRepairs_;
    /** Per-socket retired-frame remap: page -> spare page. */
    std::vector<std::unordered_map<Addr, Addr>> frameRemap_;
    Addr nextSparePage_ = 0;
    /** Open circuit breakers: socket-pair key -> next probe tick. */
    std::unordered_map<std::uint64_t, Tick> fenceUntil_;
    std::vector<Tick> recoveryLatencies_;
    /**
     * Home-side record of coarse-grain region grants per replica
     * socket (RegionScout-style). Entries persist conservatively: a
     * region that was ever granted keeps triggering replica-side
     * invalidation messages on exclusive grants -- the coarse-grain
     * overhead Fig 9 measures. Without this record, a region entry
     * evicted from the on-chip replica directory would leave
     * region-served (home-unregistered) LLC copies un-invalidated.
     */
    std::vector<std::unordered_set<Addr>> regionGrants_;

    // Dynamic-protocol sampling state.
    bool denyWinning_ = true;
    std::uint64_t epochAccesses_ = 0;
    std::uint64_t allowSampleCount_ = 0;
    std::uint64_t denySampleCount_ = 0;
    double allowSampleLatency_ = 0;
    double denySampleLatency_ = 0;

    std::uint64_t balanceCounter_ = 0;
    std::size_t scrubCursor_ = 0;

    /** Journaled replica-directory write: install of {state, owner}
     *  (present) or a remove. POD so FlatMap can hold it. */
    struct MetaShadow
    {
        std::uint8_t present = 0;
        RepState state = RepState::Readable;
        int owner = -1;
    };

    /** Lost metadata entries awaiting rebuild: metaKey -> detect tick. */
    FlatMap<std::uint64_t, Tick> metaLost_;
    /** Golden shadow of replica-directory writes dropped while the
     *  backing page was lost, keyed by line. */
    FlatMap<Addr, MetaShadow> metaJournal_;

    Counter replicaLocalReads_;
    Counter balancedHomeReads_;
    Counter scrubbedLines_;
    Counter permPulls_;
    Counter rmPushes_;
    Counter specWins_;
    Counter specSquashes_;
    Counter homeForwards_;
    Counter replicaWrites_;
    Counter replicaRecoveries_;
    Counter repaired_;
    Counter degradedEvents_;
    Counter reReplications_;
    Counter retiredPages_;
    Counter repairRetries_;
    Counter unavailableReqs_; ///< served as DUE: no reachable valid copy
    Counter linkRetries_;
    Counter fabricDemotions_; ///< replicas fenced by a missed update
    Counter repairDeferrals_; ///< repairs requeued while the path is down
    Counter disturbRetirements_; ///< frames retired under hammering
    Counter poolReads_;      ///< replica reads served by the pool tier
    Counter poolWrites_;     ///< replica updates landed on the pool tier
    Counter poolRetargets_;  ///< pages healed back onto surviving nodes
    Counter slowControlMsgs_; ///< metadata routed around a fenced link
    Counter fencedFastFails_;
    Counter dynamicSwitches_;
    Counter metaDetected_;   ///< parity detections marking entries lost
    Counter metaCorrected_;  ///< ECC-corrected metadata consults/scrubs
    Counter metaLies_;       ///< consults misled by unprotected corruption
    Counter metaRebuilds_;   ///< entries reconstructed from the other side
    Counter metaDemotions_;  ///< honest DUEs: both metadata sides lost
    Counter metaForwards_;   ///< requests rerouted home past a lost entry
    Counter policyEpochs_;
    Counter policyPromotions_;
    Counter policyDemotions_;
    Counter policyDemotionsDeferred_;
    Counter policyDemotionWritebacks_;
    ScalarStat degradedTicks_; ///< closed degraded intervals only
    Histogram retryWait_;      ///< per-ladder wait on lost transfers
    Histogram repairSojourn_;  ///< repair-task queue residency
    Histogram policyPromotionLag_;  ///< decision to replica healed
    Histogram policyDemotionWbWait_; ///< per-demotion writeback storm
    StatGroup dveStats_;

    /** Armed only when dcfg_.policy.enabled (null otherwise, so the
     *  demand path pays nothing and stats stay unregistered). */
    std::unique_ptr<ReplicationPolicy> policy_;

    /** Policy promotions whose repair-path seeding is still healing:
     *  page -> decision tick. Drained (sorted) after runMaintenance. */
    FlatMap<Addr, Tick> promotePending_;

    /** Record one finished repair task in the sojourn histogram. */
    void noteRepairDone(const RepairTask &task, Tick at,
                        std::uint64_t outcome);
};

} // namespace dve

#endif // DVE_CORE_DVE_ENGINE_HH
