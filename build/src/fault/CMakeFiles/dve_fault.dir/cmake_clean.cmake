file(REMOVE_RECURSE
  "CMakeFiles/dve_fault.dir/fault.cc.o"
  "CMakeFiles/dve_fault.dir/fault.cc.o.d"
  "libdve_fault.a"
  "libdve_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
