/**
 * @file
 * The global home directory of one socket.
 *
 * Tracks, for every line homed at the socket, the MOSI state at socket
 * granularity ("coarse-grain sharing vector", Table II) and serializes
 * concurrent transactions per line with a busy-until clock -- the
 * latency-composed equivalent of holding the line in an MSHR transient
 * state (Sec. V-C3 of the paper).
 */

#ifndef DVE_COHERENCE_DIRECTORY_HH
#define DVE_COHERENCE_DIRECTORY_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "coherence/types.hh"

namespace dve
{

/** Directory entry for one line, at socket granularity. */
struct DirEntry
{
    LineState state = LineState::I;
    std::uint32_t sharers = 0; ///< bitmask of sockets with a copy
    int owner = -1;            ///< socket owning dirty data (M/O)

    bool hasSharer(unsigned s) const { return sharers & (1u << s); }
    void addSharer(unsigned s) { sharers |= (1u << s); }
    void removeSharer(unsigned s) { sharers &= ~(1u << s); }
    unsigned sharerCount() const { return __builtin_popcount(sharers); }
};

/** Home directory of one socket (full directory, absence = I). */
class HomeDirectory
{
  public:
    // No construction-time reserve: short-lived engines (fuzz and
    // campaign scenarios build one per trial) would pay mmap + zero +
    // munmap for tables they barely fill; the doubling rehash ladder
    // amortizes to less than one slot copy per insert.
    explicit HomeDirectory(unsigned socket) : socket_(socket) {}

    /** Pre-size the entry table (also used by layout-variance tests). */
    void reserve(std::size_t lines) { entries_.reserve(lines); }

    /** Entry lookup without creation; nullptr means state I. */
    DirEntry *
    find(Addr line)
    {
        const auto it = entries_.find(line);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /** Entry lookup, creating an I entry. */
    DirEntry &lookup(Addr line) { return entries_[line]; }

    /** Drop an entry that returned to I. */
    void
    drop(Addr line)
    {
        entries_.erase(line);
    }

    /**
     * Serialize a transaction: returns the tick at which the transaction
     * may begin (>= arrival, after any in-flight transaction on the line).
     */
    Tick
    acquire(Addr line, Tick arrival)
    {
        // Expired clocks are left in place rather than erased: every
        // release() on the line overwrites them (completion ticks are
        // monotone per line), so erase-then-reinsert would only churn
        // the table. The map tops out at the tracked-line count.
        const auto it = busyUntil_.find(line);
        return it == busyUntil_.end() ? arrival
                                      : std::max(arrival, it->second);
    }

    /** Mark the line busy until @p until. */
    void
    release(Addr line, Tick until)
    {
        Tick &t = busyUntil_[line];
        t = std::max(t, until);
    }

    unsigned socket() const { return socket_; }

    std::size_t trackedLines() const { return entries_.size(); }

    /**
     * Visit every tracked entry (protocol-switch warmup, invariants).
     * Table order, which depends on capacity history: callers that
     * feed any output or recency-ordered structure must sort.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[line, e] : entries_)
            fn(line, e);
    }

  private:
    unsigned socket_;
    FlatMap<Addr, DirEntry> entries_;
    FlatMap<Addr, Tick> busyUntil_;
};

} // namespace dve

#endif // DVE_COHERENCE_DIRECTORY_HH
