/**
 * @file
 * Synchronization-aware trace replay engine.
 *
 * Mirrors the paper's gem5 replay methodology (Sec. VI): integer/FP
 * compute events cost one core cycle, thread-API events (barrier, lock,
 * unlock) cost 100 cycles, and memory operations are simulated in detail
 * by the coherence engine. The replay respects barriers and mutexes:
 * threads block at a barrier until all arrive, and lock acquisition is
 * FIFO-granted.
 *
 * Cores are pinned thread i -> (socket i / coresPerSocket, core i %
 * coresPerSocket). The event queue delivers per-core steps in global
 * time order, which the latency-composed engine requires.
 */

#ifndef DVE_CPU_REPLAY_HH
#define DVE_CPU_REPLAY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "coherence/engine.hh"
#include "sim/event_queue.hh"
#include "trace/trace.hh"

namespace dve
{

/** Outcome of a replay run. */
struct ReplayResult
{
    Tick finishTick = 0;       ///< when the last thread retired its trace
    Tick roiStartTick = 0;     ///< when warmup ended
    std::uint64_t memOps = 0;  ///< memory events replayed (post-warmup)
    std::uint64_t computeCycles = 0;
    std::uint64_t barrierWaits = 0;
    std::uint64_t lockAcquisitions = 0;
    std::uint64_t instructionsApprox = 0; ///< compute + mem events

    /** ROI wall time (finish - roiStart). */
    Tick roiTime() const { return finishTick - roiStartTick; }
};

/** Replays one workload's traces against a coherence engine. */
class ReplayEngine
{
  public:
    /**
     * @param warmup_fraction leading fraction of each thread's memory
     *        events used to warm caches/structures before the ROI stats
     *        window opens (the paper warms 1B of 20B ops).
     */
    ReplayEngine(CoherenceEngine &engine, double warmup_fraction = 0.05);

    /** Run all threads to completion; returns aggregate results. */
    ReplayResult run(const ThreadTraces &traces);

    /** Invoked once when the warmup window closes (ROI statistics can
     *  be snapshotted/reset there). */
    void setRoiCallback(std::function<void(Tick)> cb)
    {
        roiCallback_ = std::move(cb);
    }

  private:
    struct ThreadState
    {
        const std::vector<TraceOp> *ops = nullptr;
        std::size_t pc = 0;
        Tick time = 0;
        std::uint64_t memOpsDone = 0;
        std::uint64_t memOpsWarm = 0; ///< warmup budget
        bool blocked = false;
        bool finished = false;
    };

    struct BarrierState
    {
        unsigned arrived = 0;
        std::vector<unsigned> waiting;
    };

    struct LockState
    {
        bool held = false;
        std::vector<unsigned> waiters; ///< FIFO
    };

    void step(unsigned tid);
    void scheduleStep(unsigned tid);

    CoherenceEngine &engine_;
    double warmupFraction_;
    std::function<void(Tick)> roiCallback_;
    ClockDomain clk_;
    EventQueue queue_;
    std::vector<ThreadState> threads_;
    std::unordered_map<std::uint32_t, BarrierState> barriers_;
    std::unordered_map<std::uint32_t, LockState> locks_;
    unsigned liveThreads_ = 0;
    unsigned warmThreads_ = 0; ///< threads still in warmup
    ReplayResult result_;
};

} // namespace dve

#endif // DVE_CPU_REPLAY_HH
