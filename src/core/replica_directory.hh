/**
 * @file
 * The replica directory: the metadata structure Coherent Replication adds
 * to each socket's directory controller (paper Sec. V-C).
 *
 * Two protocol families share this structure:
 *
 *  - Allow-based: entries are pulled permissions. Readable means the
 *    local replica may be read; M means a replica-side LLC owns the line.
 *    State lives only in the finite on-chip structure -- an evicted entry
 *    simply loses the permission (safe: absence means "ask home").
 *
 *  - Deny-based: RM (remote-modified) entries are pushed by the home and
 *    are authoritative: absence means the replica IS readable. RM/M
 *    entries are therefore memory-backed, with the on-chip structure
 *    acting as a cache (negative results included); an on-chip miss costs
 *    a metadata DRAM access, which the speculative-read optimization
 *    overlaps with the data access.
 *
 * Coarse-grain region entries (paper Sec. V-C5) cover an aligned group of
 * lines with one Readable permission under the allow protocol.
 */

#ifndef DVE_CORE_REPLICA_DIRECTORY_HH
#define DVE_CORE_REPLICA_DIRECTORY_HH

#include <cstdint>
#include <optional>

#include "cache/assoc_lru.hh"
#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dve
{

/** Replica directory entry states. */
enum class RepState : std::uint8_t
{
    Readable, ///< local replica is current and may be read
    M,        ///< a replica-side LLC owns the line (writable)
    RM,       ///< remote (home-side) modified: replica is stale
};

const char *repStateName(RepState s);

/** Replica directory of one socket. */
class ReplicaDirectory
{
  public:
    struct Entry
    {
        RepState state = RepState::Readable;
        int owner = -1; ///< owning socket for M
    };

    struct Lookup
    {
        bool onChipHit = false;       ///< no metadata DRAM fetch needed
        std::optional<Entry> entry;   ///< nullopt = no entry anywhere
        bool regionReadable = false;  ///< covered by a region permission
    };

    /**
     * @param capacity on-chip entries (paper default 2K, 4K variant)
     * @param oracular infinite on-chip entries, for the Fig 9 ceiling
     * @param region_lines coarse-grain region size in lines (64 = 4 KB)
     */
    ReplicaDirectory(unsigned socket, std::size_t capacity, bool oracular,
                     unsigned region_lines = 64);

    /** Look up a line; refreshes on-chip recency, counts hit/miss. */
    Lookup lookup(Addr line);

    /** Install or update a line entry (on-chip + backing state). */
    void install(Addr line, Entry e);

    /** Remove a line entry everywhere. */
    void remove(Addr line);

    /** Drop only the on-chip cached entry for @p line, leaving the
     *  backing state untouched. Metadata fault domain: while the DRAM
     *  backing page is unreadable (writes are journaled for the
     *  rebuild), the SRAM cache stays writable and must not keep
     *  serving permissions the journaled transition revoked. */
    void invalidateOnChip(Addr line);

    /** Install a coarse-grain Readable permission for a whole region. */
    void installRegion(Addr line);

    /** Remove the region permission covering @p line. @return existed. */
    bool removeRegion(Addr line);

    /** True when a region permission covers @p line (no side effects). */
    bool regionCovers(Addr line) const;

    /** True when a per-line entry exists anywhere (no side effects). */
    bool hasLineEntry(Addr line) const;

    /** True when a read would be granted from an explicit permission
     *  (on-chip Readable entry or covering region); no side effects. */
    bool hasReadablePermission(Addr line) const;

    /** Peek the authoritative (backing) entry, if any. */
    std::optional<Entry> peekBacking(Addr line) const;

    /**
     * Visit every cached per-line entry (skips region permissions and
     * cached negative results). Deterministic recency order; intended
     * for the live invariant monitors.
     */
    template <typename Fn>
    void
    forEachOnChipLine(Fn &&fn) const
    {
        onChip_.forEach([&](Addr key, const OnChip &oc) {
            if (!(key & regionKeyBit) && !oc.isRegion && oc.entry)
                fn(key, *oc.entry);
        });
    }

    /**
     * Visit every authoritative backing entry. Open-addressing table
     * order: callers that need determinism must sort what they collect.
     */
    template <typename Fn>
    void
    forEachBacking(Fn &&fn) const
    {
        for (const auto &kv : backing_)
            fn(kv.first, kv.second);
    }

    /**
     * Dynamic-protocol drain: forget allow permissions and the on-chip
     * cache, but preserve the authoritative deny (RM/M) backing state.
     */
    void drainPermissions();

    /** Transaction serialization (MSHR-equivalent busy clock).
     *  Expired clocks stay in place (release() overwrites them); see
     *  HomeDirectory::acquire. */
    Tick
    acquire(Addr line, Tick arrival)
    {
        const auto it = busyUntil_.find(line);
        return it == busyUntil_.end() ? arrival
                                      : std::max(arrival, it->second);
    }

    void
    release(Addr line, Tick until)
    {
        Tick &t = busyUntil_[line];
        t = std::max(t, until);
    }

    Addr region(Addr line) const { return line / regionLines_; }

    std::uint64_t onChipHits() const { return hits_.value(); }
    std::uint64_t onChipMisses() const { return misses_.value(); }
    std::size_t backingEntries() const { return backing_.size(); }

    const StatGroup &stats() const { return stats_; }

  private:
    /** On-chip tags: a cached view of the entry (nullopt = known-absent),
     *  or a region permission. */
    struct OnChip
    {
        bool isRegion = false;
        std::optional<Entry> entry;
    };

    static constexpr Addr regionKeyBit = Addr(1) << 62;

    unsigned socket_;
    bool oracular_;
    unsigned regionLines_;
    AssocLru<Addr, OnChip> onChip_;
    /** Authoritative backing state (deny RM/M; allow M for safety). */
    FlatMap<Addr, Entry> backing_;
    FlatMap<Addr, Tick> busyUntil_;

    Counter hits_;
    Counter misses_;
    Counter installs_;
    Counter regionInstalls_;
    Counter regionInvalidations_;
    StatGroup stats_;
};

} // namespace dve

#endif // DVE_CORE_REPLICA_DIRECTORY_HH
