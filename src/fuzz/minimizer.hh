/**
 * @file
 * Delta-debugging repro minimizer (Zeller's ddmin over scenario steps).
 *
 * Given a failing scenario, finds a locally-minimal subsequence of its
 * steps that still makes the SAME monitor fire: first classic ddmin
 * (drop complements at increasing granularity), then a one-at-a-time
 * sweep so no single remaining step can be removed. Heal steps carry
 * their full fault descriptor, so any subsequence is a well-formed,
 * self-contained scenario -- removal never leaves dangling references.
 *
 * The predicate replays the candidate through the deterministic runner,
 * so minimization is itself deterministic: the same failing input always
 * shrinks to the same repro. Probe count is bounded; the minimizer
 * returns the best scenario found when the budget runs out.
 */

#ifndef DVE_FUZZ_MINIMIZER_HH
#define DVE_FUZZ_MINIMIZER_HH

#include "fuzz/runner.hh"
#include "fuzz/scenario.hh"

namespace dve
{

/** Outcome of one shrink. */
struct ShrinkResult
{
    /** Did the input fail at all? When false, `minimized` is the input
     *  unchanged and nothing was probed beyond the first run. */
    bool reproduced = false;
    /** The monitor the repro fires (stamped into expect.monitor). */
    InvariantMonitor monitor = InvariantMonitor::Swmr;
    FuzzScenario minimized;
    unsigned probes = 0;      ///< runner invocations spent
    std::size_t initialSteps = 0;
    std::size_t finalSteps = 0;
};

/** Shrink @p sc to a locally-minimal repro (<= @p maxProbes replays). */
ShrinkResult shrinkScenario(const FuzzScenario &sc,
                            unsigned maxProbes = 2000);

} // namespace dve

#endif // DVE_FUZZ_MINIMIZER_HH
