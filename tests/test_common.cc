/**
 * @file
 * Unit tests for the common substrate: types, logging, rng, stats, table.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace dve
{
namespace
{

TEST(Types, TickUnits)
{
    EXPECT_EQ(ticksPerNs, 1000u);
    EXPECT_EQ(nsToTicks(50.0), 50000u);
    EXPECT_EQ(nsToTicks(14.16), 14160u);
    EXPECT_DOUBLE_EQ(ticksToNs(32000), 32.0);
}

TEST(Types, ClockDomainPeriods)
{
    const ClockDomain core(3000); // 3 GHz
    EXPECT_EQ(core.period(), 333u);
    EXPECT_EQ(core.cyclesToTicks(20), 20u * 333u);

    const ClockDomain mhz1000(1000);
    EXPECT_EQ(mhz1000.period(), 1000u);
}

TEST(Types, ClockDomainEdgeAlignment)
{
    const ClockDomain c(1000); // 1000 ps period
    EXPECT_EQ(c.nextEdgeAfter(0, 1), 1000u);
    EXPECT_EQ(c.nextEdgeAfter(1, 1), 2000u);    // align up to 1000 first
    EXPECT_EQ(c.nextEdgeAfter(1000, 1), 2000u); // already on edge
    EXPECT_EQ(c.nextEdgeAfter(999, 0), 1000u);
}

TEST(Types, LineAndPageHelpers)
{
    EXPECT_EQ(lineAlign(0x12345), 0x12340u);
    EXPECT_EQ(lineNum(0x1000), 0x40u);
    EXPECT_EQ(pageAlign(0x12345), 0x12000u);
    EXPECT_EQ(pageNum(0x12345), 0x12u);
    EXPECT_EQ(lineBytes, 64u);
    EXPECT_EQ(pageBytes, 4096u);
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(dve_panic("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(dve_fatal("bad config"), std::runtime_error);
}

TEST(Logging, AssertPassesAndFails)
{
    EXPECT_NO_THROW(dve_assert(1 + 1 == 2, "fine"));
    EXPECT_THROW(dve_assert(false, "nope"), std::logic_error);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(1000000), b.next(1000000));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next(1u << 30) == b.next(1u << 30);
    EXPECT_LT(same, 4);
}

TEST(Rng, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.next(13), 13u);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ForkIndependence)
{
    Rng parent(99);
    Rng c1 = parent.fork(0);
    Rng c2 = parent.fork(1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += c1.next(1u << 30) == c2.next(1u << 30);
    EXPECT_LT(same, 4);
}

TEST(Rng, RunLengthMeanRoughlyCorrect)
{
    Rng r(3);
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(r.runLength(8.0));
    const double mean = total / n;
    EXPECT_NEAR(mean, 8.0, 0.5);
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GroupDumpAndGet)
{
    Counter c;
    ScalarStat s;
    c += 7;
    s += 2.5;
    StatGroup g("grp");
    g.add("events", c);
    g.add("energy", s);

    EXPECT_TRUE(g.has("events"));
    EXPECT_FALSE(g.has("missing"));
    EXPECT_DOUBLE_EQ(g.get("events"), 7.0);
    EXPECT_DOUBLE_EQ(g.get("energy"), 2.5);
    EXPECT_THROW(g.get("missing"), std::logic_error);

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("grp.events 7"), std::string::npos);

    const auto snap = g.snapshot();
    EXPECT_EQ(snap.at("events"), 7.0);
}

TEST(Stats, DuplicateRegistrationPanics)
{
    Counter c;
    StatGroup g("grp");
    g.add("x", c);
    EXPECT_THROW(g.add("x", c), std::logic_error);
}

TEST(Table, AlignmentAndFormatting)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", TextTable::num(1.23456, 2)});
    t.addRow({"b", TextTable::sci(0.000123, 1)});
    EXPECT_EQ(t.rows(), 2u);

    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("1.23"), std::string::npos);
    EXPECT_NE(s.find("1.2e-04"), std::string::npos);

    EXPECT_EQ(TextTable::pct(1.173), "+17.3%");
    EXPECT_EQ(TextTable::pct(0.95, 0), "-5%");
}

TEST(Table, RowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

} // namespace
} // namespace dve
