file(REMOVE_RECURSE
  "libdve_protocol_check.a"
)
