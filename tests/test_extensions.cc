/**
 * @file
 * Tests for the paper's auxiliary mechanisms: DRAM refresh timing,
 * patrol scrubbing (the scrub interval Table I's model assumes), and
 * row-hammer read balancing between the replicas.
 */

#include <gtest/gtest.h>

#include "core/dve_engine.hh"
#include "dram/dram.hh"

namespace dve
{
namespace
{

// ---------------------------------------------------------------------
// Refresh
// ---------------------------------------------------------------------

TEST(Refresh, NoRefreshBeforeFirstInterval)
{
    DramModule m("m", DramConfig{});
    m.access(0, false, 0);
    EXPECT_EQ(m.refreshes(), 0u);
}

TEST(Refresh, ElapsedPeriodsAreCounted)
{
    DramConfig cfg;
    DramModule m("m", cfg);
    // Access at 10x tREFI: ten refreshes have happened on that rank.
    m.access(0, false, 10 * cfg.tREFI + 1000);
    EXPECT_EQ(m.refreshes(), 10u);
}

TEST(Refresh, AccessInsideBlackoutIsPushedOut)
{
    DramConfig cfg;
    DramModule m("m", cfg);
    // Land exactly at the refresh instant: stall until tRFC later.
    const auto r = m.access(0, false, cfg.tREFI);
    EXPECT_GE(r.readyAt,
              cfg.tREFI + cfg.tRFC + cfg.tRCD + cfg.tCL + cfg.tBURST);
    EXPECT_EQ(m.stats().get("refresh_stall_ticks"), double(cfg.tRFC));
}

TEST(Refresh, RefreshClosesOpenRows)
{
    DramConfig cfg;
    DramModule m("m", cfg);
    const auto first = m.access(0, false, 0); // opens row 0 in bank 0
    ASSERT_FALSE(first.rowHit);
    // Same row long after a refresh: must re-activate (no row hit).
    const auto later = m.access(0, false, 2 * cfg.tREFI);
    EXPECT_FALSE(later.rowHit);
    // Control: without an intervening refresh it would have hit.
    DramConfig no_ref = cfg;
    no_ref.refreshEnabled = false;
    DramModule m2("m2", no_ref);
    m2.access(0, false, 0);
    EXPECT_TRUE(m2.access(0, false, 2 * cfg.tREFI).rowHit);
}

TEST(Refresh, DisabledMeansNoRefreshes)
{
    DramConfig cfg;
    cfg.refreshEnabled = false;
    DramModule m("m", cfg);
    m.access(0, false, 100 * cfg.tREFI);
    EXPECT_EQ(m.refreshes(), 0u);
}

TEST(Refresh, RanksRefreshIndependently)
{
    DramConfig cfg = DramConfig::ddr4Replicated(); // 2 channels
    DramModule m("m", cfg);
    m.access(0, false, 3 * cfg.tREFI);  // channel 0
    EXPECT_EQ(m.refreshes(), 3u);
    m.access(64, false, 3 * cfg.tREFI); // channel 1: its own counter
    EXPECT_EQ(m.refreshes(), 6u);
}

// ---------------------------------------------------------------------
// Patrol scrub
// ---------------------------------------------------------------------

class ScrubTest : public ::testing::Test
{
  protected:
    EngineConfig
    cfg()
    {
        EngineConfig c;
        c.llcBytes = 16 * 1024;
        c.dram = DramConfig::ddr4Replicated();
        return c;
    }
};

TEST_F(ScrubTest, CleanSweepFindsNothing)
{
    DveEngine e(cfg(), DveConfig{});
    Tick t = 0;
    for (unsigned p = 0; p < 4; ++p)
        t = e.access(0, 0, Addr(p) * pageBytes, true, p, t).done;
    const auto rep = e.patrolScrub(t);
    EXPECT_EQ(rep.linesScanned, 4u);
    EXPECT_EQ(rep.correctedErrors, 0u);
    EXPECT_EQ(rep.dataLost, 0u);
    EXPECT_GT(rep.finishedAt, t);
}

TEST_F(ScrubTest, CuresLatentTransientFaults)
{
    DveEngine e(cfg(), DveConfig{});
    Tick t = 0;
    for (unsigned p = 0; p < 4; ++p)
        t = e.access(0, 0, Addr(p) * pageBytes, true, p, t).done;

    // A latent 2-chip transient fault on socket 0 defeats Chipkill but
    // is detected by the scrub and repaired from the replica before a
    // demand read could hit it.
    for (unsigned chip : {1u, 7u}) {
        FaultDescriptor f;
        f.scope = FaultScope::Chip;
        f.socket = 0;
        f.chip = chip;
        f.transient = true;
        e.faultRegistry().inject(f);
    }
    const auto rep = e.patrolScrub(t);
    EXPECT_GT(rep.correctedErrors, 0u);
    EXPECT_GT(rep.replicaRecoveries, 0u);
    EXPECT_EQ(rep.dataLost, 0u);
    EXPECT_EQ(e.faultRegistry().activeCount(), 0u) << "transients cured";

    // A second sweep is clean.
    const auto rep2 = e.patrolScrub(rep.finishedAt);
    EXPECT_EQ(rep2.correctedErrors, 0u);
}

TEST_F(ScrubTest, HardFaultDegradesButLosesNothing)
{
    DveEngine e(cfg(), DveConfig{});
    Tick t = 0;
    t = e.access(0, 0, 0, true, 42, t).done;
    FaultDescriptor f;
    f.scope = FaultScope::Channel;
    f.socket = 0;
    f.channel = 0; // page 0's lines interleave across both channels
    e.faultRegistry().inject(f);

    const auto rep = e.patrolScrub(t);
    EXPECT_EQ(rep.dataLost, 0u);
    EXPECT_GT(e.degradedLines(), 0u);
    // The data remains reachable through the surviving copy.
    const auto r = e.access(0, 1, 0, false, 0, rep.finishedAt);
    EXPECT_EQ(r.value, 42u);
}

TEST_F(ScrubTest, MaxLinesBoundsTheSweepAndCursorAdvances)
{
    DveEngine e(cfg(), DveConfig{});
    Tick t = 0;
    for (unsigned p = 0; p < 8; ++p)
        t = e.access(0, 0, Addr(p) * pageBytes, true, p, t).done;
    const auto r1 = e.patrolScrub(t, 3);
    EXPECT_EQ(r1.linesScanned, 3u);
    const auto r2 = e.patrolScrub(r1.finishedAt, 5);
    EXPECT_EQ(r2.linesScanned, 5u);
}

TEST_F(ScrubTest, EmptyMemoryIsANoop)
{
    DveEngine e(cfg(), DveConfig{});
    const auto rep = e.patrolScrub(1000);
    EXPECT_EQ(rep.linesScanned, 0u);
    EXPECT_EQ(rep.finishedAt, 1000u);
}

// ---------------------------------------------------------------------
// Row-hammer read balancing
// ---------------------------------------------------------------------

TEST(ReadBalancing, SpreadsReadsAcrossBothCopies)
{
    EngineConfig cfg;
    cfg.llcBytes = 16 * 1024;
    cfg.dram = DramConfig::ddr4Replicated();

    auto reads_at = [&](bool balance) {
        DveConfig d;
        d.balanceReplicaReads = balance;
        DveEngine e(cfg, d);
        Tick t = 0;
        // Socket 1 repeatedly streams socket-0-homed pages; with tiny
        // caches every pass misses and reaches the replica directory.
        for (int iter = 0; iter < 6; ++iter)
            for (unsigned l = 0; l < 512; ++l)
                t = e.access(1, 0, Addr(l) * 8192, false, 0, t).done;
        return std::pair{e.memory(0).dram(0).reads(),
                         e.dveStats().get("balanced_home_reads")};
    };

    const auto [home_reads_off, balanced_off] = reads_at(false);
    const auto [home_reads_on, balanced_on] = reads_at(true);
    EXPECT_EQ(balanced_off, 0.0);
    EXPECT_GT(balanced_on, 100.0);
    // Roughly half of the replica-side reads moved to the home copy.
    EXPECT_GT(home_reads_on, home_reads_off + 100);
}

TEST(ReadBalancing, StaysCoherentUnderWrites)
{
    EngineConfig cfg;
    cfg.llcBytes = 16 * 1024;
    cfg.dram = DramConfig::ddr4Replicated();
    cfg.validateValues = true;
    DveConfig d;
    d.balanceReplicaReads = true;
    DveEngine e(cfg, d);
    Rng rng(99);
    Tick t = 0;
    for (int op = 0; op < 20000; ++op) {
        const unsigned c = static_cast<unsigned>(rng.next(16));
        const Addr a = Addr(rng.next(64)) * pageBytes
                       + Addr(rng.next(8)) * lineBytes;
        t = e.access(c / 8, c % 8, a, rng.chance(0.3), rng.engine()(), t)
                .done;
    }
    EXPECT_EQ(e.sdcReadsObserved(), 0u);
}

} // namespace
} // namespace dve
