/**
 * @file
 * Protocol verification report (Sec. V-C4): exhaustively model-check the
 * baseline MSI protocol and both replica-directory families across
 * several configurations, Murphi-style, and print the verdicts.
 *
 * Usage:
 *   verify_protocols [--max-states N] [--json FILE]
 *
 * --max-states bounds the per-case exploration (safety valve). A capped
 * case proves nothing: it renders as CAPPED (not PASS) and the harness
 * exits nonzero, and a capped mutation check does NOT count as "bug
 * detected". --json additionally writes a deterministic machine-readable
 * report (the fuzz campaign embeds the same per-case JSON objects).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "protocol_check/checker.hh"

using namespace dve;
using namespace dve::pcheck;

int
main(int argc, char **argv)
{
    std::uint64_t max_states = 50'000'000;
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--max-states") == 0 && i + 1 < argc) {
            max_states = std::strtoull(argv[++i], nullptr, 0);
            if (max_states == 0) {
                std::fprintf(stderr, "--max-states must be >= 1\n");
                return 1;
            }
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: verify_protocols [--max-states N] "
                         "[--json FILE]\n");
            return 1;
        }
    }

    bench::printHeader("Protocol verification (explicit-state, all "
                       "interleavings, bounded ops per cache)");

    struct Case
    {
        CheckProtocol proto;
        unsigned home;
        unsigned rep;
        unsigned budget;
    };
    const std::vector<Case> cases = {
        {CheckProtocol::BaselineMsi, 2, 0, 3},
        {CheckProtocol::BaselineMsi, 3, 0, 2},
        {CheckProtocol::Deny, 1, 1, 3},
        {CheckProtocol::Deny, 1, 1, 4},
        {CheckProtocol::Deny, 2, 1, 2},
        {CheckProtocol::Allow, 1, 1, 3},
        {CheckProtocol::Allow, 1, 1, 4},
        {CheckProtocol::Allow, 2, 1, 2},
    };

    std::ostringstream json;
    json << "{\"bench\": \"verify_protocols\",\n\"max_states\": "
         << max_states << ",\n\"cases\": [\n";

    TextTable t({"protocol", "caches(home+rep)", "ops/cache", "states",
                 "transitions", "verdict"});
    bool all_ok = true;
    bool any_capped = false;
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
        const auto &c = cases[ci];
        ModelConfig cfg;
        cfg.protocol = c.proto;
        cfg.homeCaches = c.home;
        cfg.replicaCaches = c.rep;
        cfg.opBudget = c.budget;
        const auto r = explore(cfg, max_states);
        all_ok = all_ok && r.ok;
        any_capped = any_capped || r.capped;
        t.addRow({checkProtocolName(c.proto),
                  std::to_string(c.home) + "+" + std::to_string(c.rep),
                  std::to_string(c.budget),
                  std::to_string(r.statesExplored),
                  std::to_string(r.transitions),
                  r.ok ? "PASS"
                       : (r.capped ? "CAPPED: " + r.violation
                                   : "FAIL: " + r.violation)});
        json << "{\"protocol\": \"" << checkProtocolName(c.proto)
             << "\", \"home_caches\": " << c.home
             << ", \"replica_caches\": " << c.rep
             << ", \"op_budget\": " << c.budget << ", \"result\": "
             << r.toJson() << "}"
             << (ci + 1 < cases.size() ? ",\n" : "\n");
        if (!r.ok && !r.capped) {
            // A violation in a shipping protocol is a bug in this repo:
            // dump the reconstructed action trace so the failure is
            // diagnosable straight from the CI log, then exit nonzero.
            std::fprintf(stderr,
                         "VIOLATION %s %u+%u budget %u: %s\n"
                         "  counterexample:",
                         checkProtocolName(c.proto), c.home, c.rep,
                         c.budget, r.violation.c_str());
            for (const auto &a : r.trace)
                std::fprintf(stderr, " [%s]", a.c_str());
            std::fprintf(stderr, "\n");
        }
    }
    t.print(std::cout);
    if (any_capped) {
        std::fprintf(stderr,
                     "CAPPED: at least one exploration hit the "
                     "--max-states bound (%llu); verdicts above prove "
                     "nothing -- raise the bound\n",
                     static_cast<unsigned long long>(max_states));
    }

    // Demonstrate detection power on two deliberately broken protocols.
    // Only a genuine violation counts: a capped exploration might simply
    // not have reached the buggy interleaving yet.
    bench::printHeader("Mutation checks (the checker must FAIL these)");
    ModelConfig bug1;
    bug1.protocol = CheckProtocol::Deny;
    bug1.bugSkipRmPush = true;
    const auto r1 = explore(bug1, max_states);
    std::printf("deny without RM push     : %s\n", r1.summary().c_str());
    if (!r1.ok && !r1.capped) {
        std::printf("  counterexample:");
        for (const auto &a : r1.trace)
            std::printf(" [%s]", a.c_str());
        std::printf("\n");
    }
    ModelConfig bug2;
    bug2.protocol = CheckProtocol::Deny;
    bug2.bugUnackedRdOwn = true;
    const auto r2 = explore(bug2, max_states);
    std::printf("unacked ownership grant  : %s\n", r2.summary().c_str());
    if (!r2.ok && !r2.capped) {
        std::printf("  counterexample:");
        for (const auto &a : r2.trace)
            std::printf(" [%s]", a.c_str());
        std::printf("\n");
    }

    const bool mutations_detected =
        !r1.ok && !r1.capped && !r2.ok && !r2.capped;
    json << "],\n\"mutations\": [\n"
         << "{\"name\": \"deny-without-rm-push\", \"result\": "
         << r1.toJson() << "},\n"
         << "{\"name\": \"unacked-ownership-grant\", \"result\": "
         << r2.toJson() << "}\n"
         << "],\n\"all_ok\": " << (all_ok ? "true" : "false")
         << ",\n\"any_capped\": " << (any_capped ? "true" : "false")
         << ",\n\"mutations_detected\": "
         << (mutations_detected ? "true" : "false") << "}\n";

    if (json_path) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 1;
        }
        out << json.str();
    }

    return all_ok && !any_capped && mutations_detected ? 0 : 1;
}
