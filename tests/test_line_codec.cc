/**
 * @file
 * Tests for the line codec: per-scheme chip-failure envelopes. These encode
 * the design claims of Sec. III/IV of the paper:
 *   - Chipkill SSC-DSD corrects any 1-chip failure and detects any 2.
 *   - DSD (detect-only) detects any 1- or 2-chip failure.
 *   - TSD detects up to 3 simultaneous chip failures.
 *   - SEC-DED does NOT survive a chip failure (motivating chipkill).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "ecc/line_codec.hh"

namespace dve
{
namespace
{

LineBytes
randomLine(Rng &rng)
{
    LineBytes b;
    for (auto &v : b)
        v = static_cast<std::uint8_t>(rng.next(256));
    return b;
}

/** Corrupt @p nchips distinct random chips. */
std::set<unsigned>
corruptChips(const LineCodec &codec, StoredLine &line, unsigned nchips,
             Rng &rng)
{
    std::set<unsigned> chips;
    while (chips.size() < nchips)
        chips.insert(static_cast<unsigned>(rng.next(codec.chips())));
    for (unsigned c : chips)
        codec.corruptChip(line, c, rng);
    return chips;
}

class SchemeTest : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(SchemeTest, CleanRoundTrip)
{
    const LineCodec codec(GetParam());
    Rng rng(51);
    for (int i = 0; i < 50; ++i) {
        const auto data = randomLine(rng);
        const auto stored = codec.encode(data);
        EXPECT_EQ(stored.check.size(), codec.checkBytes());
        const auto out = codec.decode(stored);
        EXPECT_EQ(out.status, EccStatus::Clean);
        EXPECT_EQ(out.data, data);
    }
}

TEST_P(SchemeTest, ChipByteMapIsAPartitionOfTheStoredLine)
{
    const LineCodec codec(GetParam());
    std::set<unsigned> seen;
    for (unsigned c = 0; c < codec.chips(); ++c) {
        for (unsigned b : codec.chipBytes(c)) {
            EXPECT_TRUE(seen.insert(b).second)
                << "byte " << b << " owned by two chips";
        }
    }
    EXPECT_EQ(seen.size(), 64u + codec.checkBytes());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeTest,
    ::testing::Values(Scheme::SecDed72_64, Scheme::ChipkillSscDsd,
                      Scheme::DsdDetect, Scheme::TsdDetect),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string n = schemeName(info.param);
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

TEST(ChipkillCodec, CorrectsAnySingleChipFailure)
{
    const LineCodec codec(Scheme::ChipkillSscDsd);
    Rng rng(52);
    for (unsigned chip = 0; chip < codec.chips(); ++chip) {
        const auto data = randomLine(rng);
        auto stored = codec.encode(data);
        codec.corruptChip(stored, chip, rng);
        const auto out = codec.decode(stored);
        ASSERT_EQ(out.status, EccStatus::Corrected) << "chip " << chip;
        EXPECT_EQ(out.data, data);
    }
}

TEST(ChipkillCodec, DetectsAnyDoubleChipFailure)
{
    const LineCodec codec(Scheme::ChipkillSscDsd);
    Rng rng(53);
    for (int iter = 0; iter < 300; ++iter) {
        const auto data = randomLine(rng);
        auto stored = codec.encode(data);
        corruptChips(codec, stored, 2, rng);
        const auto out = codec.decode(stored);
        ASSERT_EQ(out.status, EccStatus::Detected) << "iter " << iter;
    }
}

TEST(DsdCodec, DetectsSingleAndDoubleChipFailures)
{
    const LineCodec codec(Scheme::DsdDetect);
    Rng rng(54);
    for (unsigned nchips = 1; nchips <= 2; ++nchips) {
        for (int iter = 0; iter < 200; ++iter) {
            const auto data = randomLine(rng);
            auto stored = codec.encode(data);
            corruptChips(codec, stored, nchips, rng);
            ASSERT_EQ(codec.decode(stored).status, EccStatus::Detected)
                << nchips << " chips, iter " << iter;
        }
    }
}

TEST(TsdCodec, DetectsUpToTripleChipFailures)
{
    const LineCodec codec(Scheme::TsdDetect);
    Rng rng(55);
    for (unsigned nchips = 1; nchips <= 3; ++nchips) {
        for (int iter = 0; iter < 200; ++iter) {
            const auto data = randomLine(rng);
            auto stored = codec.encode(data);
            corruptChips(codec, stored, nchips, rng);
            ASSERT_EQ(codec.decode(stored).status, EccStatus::Detected)
                << nchips << " chips, iter " << iter;
        }
    }
}

TEST(SecDedCodec, ChipFailureFrequentlySilentlyCorrupts)
{
    // A whole-chip failure puts 8 bit-flips into each 72-bit word --
    // far beyond SEC-DED's envelope. Count undetected corruption.
    const LineCodec codec(Scheme::SecDed72_64);
    Rng rng(56);
    int sdc = 0;
    const int iters = 300;
    for (int iter = 0; iter < iters; ++iter) {
        const auto data = randomLine(rng);
        auto stored = codec.encode(data);
        codec.corruptChip(stored, rng.next(8), rng);
        const auto out = codec.decode(stored);
        if (out.status != EccStatus::Detected && out.data != data)
            ++sdc;
    }
    EXPECT_GT(sdc, 0) << "SEC-DED should not be chip-failure safe";
}

TEST(SecDedCodec, SingleBitPerWordCorrects)
{
    const LineCodec codec(Scheme::SecDed72_64);
    Rng rng(57);
    const auto data = randomLine(rng);
    auto stored = codec.encode(data);
    LineCodec::corruptBit(stored, 5, 3);   // word 0
    LineCodec::corruptBit(stored, 13, 0);  // word 1
    const auto out = codec.decode(stored);
    EXPECT_EQ(out.status, EccStatus::Corrected);
    EXPECT_EQ(out.data, data);
}

TEST(NoneCodec, ErrorsPassSilently)
{
    const LineCodec codec(Scheme::None);
    Rng rng(58);
    const auto data = randomLine(rng);
    auto stored = codec.encode(data);
    EXPECT_EQ(codec.checkBytes(), 0u);
    codec.corruptChip(stored, 3, rng);
    const auto out = codec.decode(stored);
    EXPECT_EQ(out.status, EccStatus::Clean);
    EXPECT_NE(out.data, data); // the silent corruption
}

TEST(LineCodec, CorruptChipAlwaysChangesOwnedBytes)
{
    const LineCodec codec(Scheme::ChipkillSscDsd);
    Rng rng(59);
    const auto data = randomLine(rng);
    const auto clean = codec.encode(data);
    for (unsigned chip = 0; chip < codec.chips(); ++chip) {
        auto bad = clean;
        codec.corruptChip(bad, chip, rng);
        EXPECT_NE(bad, clean);
    }
}

TEST(LineCodec, CheckBytesPerScheme)
{
    EXPECT_EQ(LineCodec(Scheme::None).checkBytes(), 0u);
    EXPECT_EQ(LineCodec(Scheme::SecDed72_64).checkBytes(), 8u);
    EXPECT_EQ(LineCodec(Scheme::ChipkillSscDsd).checkBytes(), 12u);
    EXPECT_EQ(LineCodec(Scheme::DsdDetect).checkBytes(), 8u);
    EXPECT_EQ(LineCodec(Scheme::TsdDetect).checkBytes(), 12u);
}

TEST(LineCodec, OutOfRangeChipPanics)
{
    const LineCodec codec(Scheme::ChipkillSscDsd);
    EXPECT_THROW(codec.chipBytes(19), std::logic_error);
    const LineCodec dsd(Scheme::DsdDetect);
    EXPECT_THROW(dsd.chipBytes(18), std::logic_error);
}

} // namespace
} // namespace dve
