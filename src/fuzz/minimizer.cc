#include "fuzz/minimizer.hh"

#include <algorithm>

namespace dve
{

namespace
{

FuzzScenario
withSteps(const FuzzScenario &base, std::vector<FuzzStep> steps)
{
    FuzzScenario sc = base;
    sc.steps = std::move(steps);
    return sc;
}

} // namespace

ShrinkResult
shrinkScenario(const FuzzScenario &sc, unsigned maxProbes)
{
    ShrinkResult out;
    out.minimized = sc;
    out.initialSteps = sc.steps.size();
    out.finalSteps = sc.steps.size();

    const FuzzRunOptions opt; // checks on, stop at first violation

    const auto firstRun = runScenario(sc, opt);
    ++out.probes;
    if (!firstRun.violated)
        return out;
    out.reproduced = true;
    out.monitor = firstRun.violations.front().monitor;

    // The predicate: does the candidate fire the same monitor?
    const auto fails = [&](const std::vector<FuzzStep> &steps) {
        if (out.probes >= maxProbes)
            return false; // budget exhausted: treat as "passes"
        ++out.probes;
        const auto r = runScenario(withSteps(sc, steps), opt);
        return r.violated
               && r.violations.front().monitor == out.monitor;
    };

    // Steps after the first firing are dead weight: the runner stops at
    // the violation, so truncate to what actually executed.
    std::vector<FuzzStep> cur(
        sc.steps.begin(),
        sc.steps.begin()
            + static_cast<std::ptrdiff_t>(std::min<std::uint64_t>(
                  firstRun.stepsRun, sc.steps.size())));

    // Classic ddmin: try dropping complements at granularity n.
    std::size_t n = 2;
    while (cur.size() >= 2 && n <= cur.size()
           && out.probes < maxProbes) {
        const std::size_t chunk = (cur.size() + n - 1) / n;
        bool reduced = false;
        for (std::size_t start = 0;
             start < cur.size() && out.probes < maxProbes;
             start += chunk) {
            // Complement of [start, start+chunk).
            std::vector<FuzzStep> cand;
            cand.reserve(cur.size());
            for (std::size_t i = 0; i < cur.size(); ++i) {
                if (i < start || i >= start + chunk)
                    cand.push_back(cur[i]);
            }
            if (cand.size() < cur.size() && fails(cand)) {
                cur = std::move(cand);
                n = std::max<std::size_t>(2, n - 1);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= cur.size())
                break;
            n = std::min(cur.size(), n * 2);
        }
    }

    // Local-minimality sweep: no single remaining step is removable.
    bool removed = true;
    while (removed && out.probes < maxProbes) {
        removed = false;
        for (std::size_t i = cur.size(); i-- > 0;) {
            if (out.probes >= maxProbes)
                break;
            std::vector<FuzzStep> cand = cur;
            cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
            if (fails(cand)) {
                cur = std::move(cand);
                removed = true;
            }
        }
    }

    out.minimized = withSteps(sc, std::move(cur));
    out.minimized.expect.monitor = out.monitor;
    out.finalSteps = out.minimized.steps.size();
    return out;
}

} // namespace dve
