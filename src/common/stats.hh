/**
 * @file
 * Lightweight named-statistics support.
 *
 * Components own Counter/ScalarStat/Histogram members and register them
 * with a StatGroup so that harnesses can dump everything uniformly. There
 * is no global registry: each System owns its groups, keeping runs
 * independent.
 */

#ifndef DVE_COMMON_STATS_HH
#define DVE_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.hh"

namespace dve
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }

    /**
     * Explicit only: an implicit conversion let stat objects silently
     * participate in integer arithmetic and narrowing ("counter - 1"
     * compiling to a uint64 instead of a diagnostic). Call value() or
     * cast deliberately.
     */
    explicit operator std::uint64_t() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** An accumulating floating-point statistic (e.g. energy in pJ). */
class ScalarStat
{
  public:
    ScalarStat() = default;

    ScalarStat &operator+=(double v) { value_ += v; return *this; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }

    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * A named, ordered collection of stat references for dumping.
 *
 * Registration stores pointers; the referenced stats must outlive the group
 * (both are typically members of the same component).
 *
 * Lookup is backed by a name -> slot index so get()/has() are O(1) and a
 * whole-group snapshot is O(n); dump order remains registration order.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void add(const std::string &stat_name, const Counter &c);
    void add(const std::string &stat_name, const ScalarStat &s);
    void add(const std::string &stat_name, const Histogram &h);

    /** Fetch a registered scalar value by name; panics if absent. */
    double get(const std::string &stat_name) const;

    /** True if @p stat_name was registered. */
    bool has(const std::string &stat_name) const;

    /** Registered histogram by name, or nullptr. */
    const Histogram *histogram(const std::string &stat_name) const;

    /** Write "group.stat value" lines (histograms expand to digests). */
    void dump(std::ostream &os) const;

    /**
     * Flat name -> value snapshot of counters and scalars. Histograms
     * are deliberately excluded: snapshots feed ROI delta arithmetic
     * (after - before), and percentiles do not subtract -- diff the
     * Histogram objects instead.
     */
    std::map<std::string, double> snapshot() const;

    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        std::string name;
        const Counter *counter = nullptr;
        const ScalarStat *scalar = nullptr;
        const Histogram *histogram = nullptr;
    };

    const Entry *find(const std::string &stat_name) const;
    void addEntry(Entry e);

    std::string name_;
    std::vector<Entry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace dve

#endif // DVE_COMMON_STATS_HH
