/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, insertion sequence) so
 * same-tick events execute in deterministic FIFO order. All simulator
 * components schedule through the queue; nothing observes wall-clock time.
 */

#ifndef DVE_SIM_EVENT_QUEUE_HH
#define DVE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace dve
{

/**
 * The global event queue and simulated clock.
 *
 * Usage: schedule(when, fn) then run() / runUntil(t). Events scheduled in
 * the past panic; events scheduled at now() run within the current
 * processing step (after already-pending same-tick events).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute tick @p when (>= now). */
    void
    schedule(Tick when, Callback fn)
    {
        dve_assert(when >= now_, "scheduling into the past: ", when,
                   " < ", now_);
        heap_.push(Entry{when, nextSeq_++, std::move(fn)});
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleIn(Tick delay, Callback fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Tick of the next event; maxTick if none. */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? maxTick : heap_.top().when;
    }

    /**
     * Run events until the queue drains or @p limit events executed.
     * @return number of events executed.
     */
    std::uint64_t
    run(std::uint64_t limit = ~std::uint64_t(0))
    {
        std::uint64_t executed = 0;
        while (!heap_.empty() && executed < limit) {
            step();
            ++executed;
        }
        return executed;
    }

    /**
     * Run events with tick <= @p until; afterwards now() == max(until, now).
     * @return number of events executed.
     */
    std::uint64_t
    runUntil(Tick until)
    {
        std::uint64_t executed = 0;
        while (!heap_.empty() && heap_.top().when <= until) {
            step();
            ++executed;
        }
        if (now_ < until)
            now_ = until;
        return executed;
    }

    /** Total events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    void
    step()
    {
        // Move the entry out before invoking: the callback may schedule.
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.fn();
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace dve

#endif // DVE_SIM_EVENT_QUEUE_HH
