#include "fuzz/runner.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "core/dve_engine.hh"
#include "fault/fault.hh"

namespace dve
{

namespace
{

/** FNV-1a accumulator (same constants as the campaign digests). */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ull;

    void
    mix(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
};

const char *
traceKindLabel(TraceKind k)
{
    switch (k) {
      case TraceKind::Request: return "request";
      case TraceKind::Divert: return "divert";
      case TraceKind::Retry: return "retry";
      case TraceKind::Fence: return "fence";
      case TraceKind::EpochSwitch: return "epoch-switch";
      case TraceKind::FaultArrive: return "fault-arrive";
      case TraceKind::FaultHeal: return "fault-heal";
      case TraceKind::RepairBegin: return "repair-begin";
      case TraceKind::RepairEnd: return "repair-end";
      case TraceKind::InvariantViolation: return "invariant-violation";
    }
    return "?";
}

} // namespace

std::string
formatViolation(const InvariantViolation &v)
{
    std::ostringstream os;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "violation monitor=%s at=%" PRIu64 " line=0x%" PRIx64,
                  invariantMonitorName(v.monitor), v.at, v.line);
    os << buf << '\n';
    os << "  detail: " << v.detail << '\n';
    if (!v.recentEvents.empty()) {
        os << "  recent events (" << v.recentEvents.size() << "):\n";
        for (const auto &e : v.recentEvents) {
            std::snprintf(buf, sizeof(buf),
                          "    %-19s at=%" PRIu64 " socket=%u a=0x%" PRIx64
                          " b=%" PRIu64,
                          traceKindLabel(e.kind), e.at,
                          unsigned(e.socket), e.a, e.b);
            os << buf << '\n';
        }
    }
    return os.str();
}

FuzzRunResult
runScenario(const FuzzScenario &sc, const FuzzRunOptions &opt)
{
    // Campaign quick-shape: faults must be observable, so the caches are
    // far smaller than the footprint and value validation is replaced by
    // the SDC oracle + monitors.
    EngineConfig ecfg;
    ecfg.dram = DramConfig::ddr4Replicated();
    ecfg.scheme = Scheme::TsdDetect;
    ecfg.l1Bytes = 4 * 1024;
    // Tiny on purpose: a few hundred fuzz steps only touch ~100
    // distinct lines, and dirty LLC evictions plus their memory
    // writebacks are where replica metadata is reconciled. The LLC must
    // be small enough that capacity pressure shows up within one
    // scenario or that whole protocol surface goes untested.
    ecfg.llcBytes = 2 * 1024;
    ecfg.validateValues = false;
    ecfg.seed = sc.seed * 1000003 + 1;
    ecfg.invariantChecks = opt.invariantChecks;
    ecfg.traceCapacity = opt.traceCapacity;
    if (sc.watchdogBudget > 0)
        ecfg.watchdogBudget = sc.watchdogBudget;

    DveConfig dcfg;
    dcfg.protocol = sc.protocol;
    dcfg.epochOps = sc.epochOps;
    dcfg.sampleGroups = sc.sampleGroups;
    dcfg.bugRmMarkerRefresh = sc.bugRmMarkerRefresh;
    dcfg.bugSkipDenyInvalidate = sc.bugSkipDenyInvalidate;
    dcfg.bugSkipDemotionOnPartition = sc.bugSkipDemotionOnPartition;
    dcfg.bugSkipRebuildOnScrub = sc.bugSkipRebuildOnScrub;
    dcfg.metadataFaults = sc.metadataFaults;
    dcfg.metaProtection = sc.metaProtection;
    dcfg.poolNodes = sc.poolNodes;
    dcfg.repairRetryBackoff = 10 * ticksPerUs;
    if (sc.policyBudget > 0) {
        // Armed policy runs start cold: nothing replicated until the
        // policy engine promotes pages, so budget churn is observable.
        dcfg.replicateAll = false;
        dcfg.policy.enabled = true;
        dcfg.policy.globalBudget =
            static_cast<std::size_t>(sc.policyBudget);
        if (sc.policyNodeBudget > 0) {
            dcfg.policy.nodeBudget =
                static_cast<std::size_t>(sc.policyNodeBudget);
        }
        if (sc.policyEpochOps > 0)
            dcfg.policy.epochOps = sc.policyEpochOps;
    }

    DveEngine eng(ecfg, dcfg);
    auto &reg = eng.faultRegistry();

    const Addr footprintBytes = Addr(sc.footprintPages) * pageBytes;
    const unsigned cores = ecfg.coresPerSocket;

    FuzzRunResult res;
    Fnv digest;
    std::ostringstream log;
    char buf[160];
    Tick clock = 0;

    for (const auto &st : sc.steps) {
        switch (st.op) {
          case FuzzOp::Read:
          case FuzzOp::Write: {
            // Clamp so shrunk / hand-edited scenarios stay valid.
            const unsigned socket = st.socket % ecfg.sockets;
            const unsigned core = st.core % cores;
            const Addr addr =
                (st.addr % footprintBytes) / lineBytes * lineBytes;
            const bool is_write = st.op == FuzzOp::Write;
            const auto r = eng.access(socket, core, addr, is_write,
                                      st.value, clock);
            clock = r.done;
            if (is_write)
                ++res.writes;
            else
                ++res.reads;
            switch (r.outcome) {
              case ReadOutcome::Clean: ++res.clean; break;
              case ReadOutcome::Corrected: ++res.corrected; break;
              case ReadOutcome::Due: ++res.due; break;
              case ReadOutcome::Sdc: ++res.sdc; break;
            }
            digest.mix(r.done);
            digest.mix(r.value);
            digest.mix(static_cast<std::uint64_t>(r.outcome));
            std::snprintf(buf, sizeof(buf),
                          "%" PRIu64 " %s s%u c%u 0x%" PRIx64
                          " -> 0x%" PRIx64 " %s done=%" PRIu64 "\n",
                          res.stepsRun, is_write ? "w" : "r", socket,
                          core, addr, r.value,
                          readOutcomeName(r.outcome), r.done);
            log << buf;
            break;
          }
          case FuzzOp::Inject: {
            const std::uint64_t id = reg.inject(st.fault);
            if (id)
                ++res.faultsInjected;
            digest.mix(id);
            std::snprintf(buf, sizeof(buf),
                          "%" PRIu64 " inject id=%" PRIu64 " %s\n",
                          res.stepsRun, id,
                          formatFaultSpec(st.fault).c_str());
            log << buf;
            break;
          }
          case FuzzOp::Heal: {
            // Map the descriptor back onto the live registry entry: the
            // scenario stays self-contained under shrinking (no step
            // indices or registry ids to keep in sync).
            const FaultDescriptor want =
                FaultRegistry::normalized(st.fault);
            std::uint64_t id = 0;
            for (const auto &a : reg.active()) {
                const FaultDescriptor &c = a;
                if (c.scope == want.scope && c.socket == want.socket
                    && c.channel == want.channel && c.rank == want.rank
                    && c.chip == want.chip && c.bank == want.bank
                    && c.row == want.row && c.column == want.column
                    && c.bit == want.bit && c.transient == want.transient
                    && c.peer == want.peer) {
                    id = a.id;
                    break;
                }
            }
            const bool cleared = id != 0 && reg.clear(id);
            if (cleared)
                ++res.faultsHealed;
            digest.mix(cleared ? id : 0);
            std::snprintf(buf, sizeof(buf),
                          "%" PRIu64 " heal %s %s\n", res.stepsRun,
                          cleared ? "ok" : "noop",
                          formatFaultSpec(st.fault).c_str());
            log << buf;
            break;
          }
          case FuzzOp::Scrub: {
            const auto rep = eng.patrolScrub(clock);
            clock = rep.finishedAt;
            digest.mix(rep.linesScanned);
            digest.mix(rep.correctedErrors);
            digest.mix(rep.finishedAt);
            std::snprintf(buf, sizeof(buf),
                          "%" PRIu64 " scrub scanned=%" PRIu64
                          " corrected=%" PRIu64 " done=%" PRIu64 "\n",
                          res.stepsRun, rep.linesScanned,
                          rep.correctedErrors, rep.finishedAt);
            log << buf;
            break;
          }
          case FuzzOp::Maintain: {
            const auto rep = eng.runMaintenance(clock);
            clock = rep.finishedAt;
            digest.mix(rep.tasksRun);
            digest.mix(rep.healed);
            digest.mix(rep.finishedAt);
            std::snprintf(buf, sizeof(buf),
                          "%" PRIu64 " maintain tasks=%" PRIu64
                          " healed=%" PRIu64 " done=%" PRIu64 "\n",
                          res.stepsRun, rep.tasksRun, rep.healed,
                          rep.finishedAt);
            log << buf;
            break;
          }
          case FuzzOp::Budget: {
            // No-op when the scenario never armed the policy: the step
            // still logs and digests so shrinking stays deterministic.
            eng.setPolicyGlobalBudget(static_cast<std::size_t>(st.value));
            digest.mix(st.value);
            std::snprintf(buf, sizeof(buf),
                          "%" PRIu64 " budget -> %" PRIu64 "\n",
                          res.stepsRun, st.value);
            log << buf;
            break;
          }
        }
        ++res.stepsRun;
        if (opt.stopOnViolation && !eng.invariantViolations().empty())
            break;
    }

    res.violations = eng.invariantViolations();
    res.violated = !res.violations.empty();
    res.endTick = clock;
    digest.mix(res.reads);
    digest.mix(res.writes);
    digest.mix(res.clean);
    digest.mix(res.corrected);
    digest.mix(res.due);
    digest.mix(res.sdc);
    digest.mix(res.endTick);
    digest.mix(res.violated ? 1 : 0);
    res.digest = digest.h;
    res.log = log.str();
    if (eng.tracer().enabled()) {
        std::ostringstream os;
        eng.tracer().exportChromeTrace(os);
        res.traceJson = os.str();
    }
    return res;
}

} // namespace dve
