/**
 * @file
 * Fig 8: inter-socket traffic of the allow and deny protocols,
 * normalized to baseline NUMA (lower is better).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace dve;

int
main()
{
    const double scale = bench::scaleFromEnv(0.4);
    bench::printHeader(
        "Fig 8: inter-socket traffic normalized to baseline NUMA");

    TextTable t({"benchmark", "dve-allow", "dve-deny"});
    std::vector<double> allow_ratio, deny_ratio;

    // Three sweep points per workload: baseline, allow, deny.
    const std::vector<SchemeKind> cols = {SchemeKind::BaselineNuma,
                                          SchemeKind::DveAllow,
                                          SchemeKind::DveDeny};
    const auto &workloads = table3Workloads();
    const auto runs = bench::runMatrix(
        workloads.size() * cols.size(), [&](std::size_t p) {
            return bench::runScheme(cols[p % cols.size()],
                                    workloads[p / cols.size()], scale);
        });

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &wl = workloads[w];
        const auto &base = runs[w * cols.size()];
        const auto &allow = runs[w * cols.size() + 1];
        const auto &deny = runs[w * cols.size() + 2];
        const double ra =
            static_cast<double>(allow.interSocketBytes)
            / static_cast<double>(std::max<std::uint64_t>(
                1, base.interSocketBytes));
        const double rd =
            static_cast<double>(deny.interSocketBytes)
            / static_cast<double>(std::max<std::uint64_t>(
                1, base.interSocketBytes));
        allow_ratio.push_back(ra);
        deny_ratio.push_back(rd);
        t.addRow({wl.name, TextTable::num(ra, 3),
                  TextTable::num(rd, 3)});
    }
    t.addRow({"mean-all", TextTable::num(bench::geomean(allow_ratio), 3),
              TextTable::num(bench::geomean(deny_ratio), 3)});
    t.print(std::cout);
    std::printf("\nPaper reference: allow/deny cut inter-socket traffic "
                "by ~38%%/35%% on average; backprop and graph500 by "
                "86%%/84%%.\n");
    bench::writeRunsJson("fig8", runs);
    return 0;
}
