# Empty compiler generated dependencies file for dve_mem.
# This may be replaced when dependencies are built.
