# Empty dependencies file for dve_sys.
# This may be replaced when dependencies are built.
