#include "energy/dram_energy.hh"

namespace dve
{

double
DramEnergyModel::moduleEnergyNj(const DramModule &m, Tick elapsed) const
{
    const double dynamic =
        p_.actPrechargeNj * static_cast<double>(m.activates())
        + p_.readBurstNj * static_cast<double>(m.reads())
        + p_.writeBurstNj * static_cast<double>(m.writes());

    const unsigned ranks =
        m.config().channels * m.config().ranksPerChannel;
    const double background_mw =
        (p_.backgroundMwPerRank + p_.refreshMwPerRank) * ranks;
    // mW * s = mJ -> nJ.
    const double background_nj =
        background_mw * ticksToSeconds(elapsed) * 1e6;
    return dynamic + background_nj;
}

double
DramEnergyModel::systemEdp(double total_memory_nj, Tick elapsed,
                           double baseline_memory_nj,
                           Tick baseline_elapsed) const
{
    // Baseline memory power anchors the (constant) non-memory power.
    const double base_secs = ticksToSeconds(baseline_elapsed);
    const double base_mem_w = baseline_memory_nj * 1e-9 / base_secs;
    const double non_mem_w =
        base_mem_w * (1.0 - p_.memoryShareOfSystem)
        / p_.memoryShareOfSystem;

    const double secs = ticksToSeconds(elapsed);
    const double mem_w = total_memory_nj * 1e-9 / secs;
    const double system_w = mem_w + non_mem_w;
    return system_w * secs * secs; // E*D = P*T^2
}

} // namespace dve
