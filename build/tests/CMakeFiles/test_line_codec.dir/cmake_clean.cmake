file(REMOVE_RECURSE
  "CMakeFiles/test_line_codec.dir/test_line_codec.cc.o"
  "CMakeFiles/test_line_codec.dir/test_line_codec.cc.o.d"
  "test_line_codec"
  "test_line_codec.pdb"
  "test_line_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_line_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
