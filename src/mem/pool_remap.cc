#include "mem/pool_remap.hh"

#include "common/logging.hh"

namespace dve
{

PoolRemap::PoolRemap(unsigned nodes) : nodes_(nodes)
{
    dve_assert(nodes_ > 0, "pool remap needs at least one node");
}

unsigned
PoolRemap::spreadNodeFor(Addr page) const
{
    // Pure function of the page number: the same page lands on the same
    // node in every run, every scheme, at every job count.
    return static_cast<unsigned>(flatMapMix(page) % nodes_);
}

unsigned
PoolRemap::nodeFor(Addr page) const
{
    const auto it = override_.find(page);
    return it == override_.end() ? spreadNodeFor(page) : it->second;
}

} // namespace dve
