/**
 * @file
 * Reliability campaign: seeded fault-injection trials comparing
 * baseline ECC configurations against Dvé's coherent replication, with
 * outcomes judged by the SDC oracle.
 *
 * The headline expectation (paper Sec. IV): a detection-only baseline
 * turns every uncorrectable fault into a DUE and an unprotected
 * baseline into silent corruption, while Dvé recovers from the replica
 * -- zero SDC, (almost) zero DUE -- and its self-healing pipeline
 * returns degraded lines to dual-copy service.
 *
 * Usage:
 *   campaign_reliability [--trials N] [--seed S] [--ops N]
 *                        [--jobs N] [--scenario NAME] [--json FILE]
 *                        [--trial-timeout-ms N]
 *                        [--trace SCHEME:TRIAL] [--trace-out FILE]
 *                        [--quiet]
 *
 * --scenario layers a fabric-fault process on top of the DRAM mix:
 *   none (default), link-flap, lossy-link, socket-offline.
 * Pool names provision the far-memory tier (applyPoolPreset) and swap
 * the comparison to the pool scheme list (local-chipkill,
 * baseline-detect, dve-deny, two-tier):
 *   pool-node-offline, fabric-partition.
 * Hammer names select a read-disturbance preset instead (aggressor
 * workload + activation counters, ambient fault rates zeroed, and a
 * sixth scheme -- baseline-preventive -- joins the comparison):
 *   hammer-single, hammer-manysided, hammer-under-refresh-pressure.
 * Metadata names corrupt the control plane (home directory, replica-
 * directory backing, RMT) and compare the three metadata protection
 * tiers (dve-meta-none / -parity / -ecc) against baseline-detect:
 *   metadata-storm (ambient rates zeroed), metadata-under-load.
 *
 * --trial-timeout-ms arms a per-trial wall-clock watchdog: a trial that
 * exceeds the budget stops early, is marked "timed_out" in the JSON,
 * and the harness exits nonzero. Off by default (0): no clock reads,
 * byte-identical reports.
 *
 * --trace replays ONE trial serially with the event tracer enabled and
 * writes a Chrome trace_event JSON timeline (viewable in
 * chrome://tracing or Perfetto) instead of running the campaign. The
 * trial is identified as scheme-name:trial-index (e.g. dve-deny:3);
 * seeds derive only from (--seed, trial), so the same flags always
 * replay to byte-identical trace bytes.
 *
 * Trials fan out over worker threads (--jobs, else DVE_BENCH_JOBS,
 * else hardware concurrency; 1 = serial) and are merged in trial
 * order, so the job count never changes the report bytes.
 *
 * The JSON report is deterministic: same flags -> byte-identical bytes.
 * A human-readable summary (including the Table I analytic cross-check)
 * prints to stdout unless --quiet is given.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/parallel.hh"
#include "fault/campaign.hh"
#include "reliability/rates.hh"

using namespace dve;

int
main(int argc, char **argv)
{
    CampaignConfig cfg = CampaignConfig::quickDefaults();
    cfg.trials = 100;
    const char *json_path = nullptr;
    const char *trace_spec = nullptr;
    const char *trace_path = nullptr;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const auto num = [&](const char *what) -> std::uint64_t {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", what);
                std::exit(1);
            }
            return std::strtoull(argv[++i], nullptr, 0);
        };
        if (std::strcmp(argv[i], "--trials") == 0) {
            cfg.trials = static_cast<unsigned>(num("--trials"));
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            cfg.seed = num("--seed");
        } else if (std::strcmp(argv[i], "--ops") == 0) {
            cfg.opsPerTrial = num("--ops");
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            cfg.jobs = static_cast<unsigned>(num("--jobs"));
            if (cfg.jobs < 1) {
                std::fprintf(stderr, "--jobs must be >= 1\n");
                return 1;
            }
        } else if (std::strcmp(argv[i], "--scenario") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--scenario needs a name\n");
                return 1;
            }
            const auto sc = parseFabricScenario(argv[++i]);
            std::optional<DisturbScenario> dsc;
            std::optional<PolicyScenario> psc;
            std::optional<MetadataScenario> msc;
            if (!sc)
                dsc = parseDisturbScenario(argv[i]);
            if (!sc && !dsc)
                psc = parsePolicyScenario(argv[i]);
            if (!sc && !dsc && !psc)
                msc = parseMetadataScenario(argv[i]);
            if (!sc && !dsc && !psc && !msc) {
                std::fprintf(stderr,
                             "unknown scenario '%s' (expected none, "
                             "link-flap, lossy-link, socket-offline, "
                             "pool-node-offline, fabric-partition, "
                             "hammer-single, hammer-manysided, "
                             "hammer-under-refresh-pressure, "
                             "policy-diurnal, policy-flash-crowd, "
                             "policy-budget-squeeze, metadata-storm or "
                             "metadata-under-load)\n",
                             argv[i]);
                return 1;
            }
            if (sc) {
                cfg.scenario = *sc;
                if (*sc == FabricScenario::PoolOffline
                    || *sc == FabricScenario::Partition) {
                    applyPoolPreset(cfg);
                }
            } else if (dsc) {
                applyDisturbPreset(cfg, *dsc);
            } else if (psc) {
                applyPolicyPreset(cfg, *psc);
            } else {
                applyMetadataPreset(cfg, *msc);
            }
        } else if (std::strcmp(argv[i], "--trial-timeout-ms") == 0) {
            cfg.trialTimeoutMs = num("--trial-timeout-ms");
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json needs a path\n");
                return 1;
            }
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--trace needs SCHEME:TRIAL\n");
                return 1;
            }
            trace_spec = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-out") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--trace-out needs a path\n");
                return 1;
            }
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return 1;
        }
    }

    if (trace_spec) {
        // Replay one trial serially with the tracer on. The spec is
        // scheme-name:trial-index; seeds derive from (--seed, trial)
        // only, so this reproduces exactly what the campaign trial did.
        const char *colon = std::strchr(trace_spec, ':');
        if (!colon || colon == trace_spec) {
            std::fprintf(stderr,
                         "--trace expects SCHEME:TRIAL, e.g. "
                         "dve-deny:3\n");
            return 1;
        }
        const std::string scheme_name(trace_spec, colon - trace_spec);
        int scheme_idx = -1;
        for (unsigned s = 0; s < numCampaignSchemes; ++s) {
            if (scheme_name
                == campaignSchemeName(static_cast<CampaignScheme>(s)))
                scheme_idx = static_cast<int>(s);
        }
        if (scheme_idx < 0) {
            std::fprintf(stderr, "unknown scheme '%s' in --trace\n",
                         scheme_name.c_str());
            return 1;
        }
        const unsigned trial =
            static_cast<unsigned>(std::strtoul(colon + 1, nullptr, 0));
        CampaignConfig tcfg = cfg;
        tcfg.engine.traceCapacity = 1u << 16;
        const CampaignRunner replayer(tcfg);
        const TrialStats t = replayer.runTrial(
            static_cast<CampaignScheme>(scheme_idx), trial);
        const char *out = trace_path ? trace_path : "TRACE_campaign.json";
        std::ofstream os(out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", out);
            return 1;
        }
        os << t.traceJson;
        if (!quiet) {
            std::printf("traced %s trial %u: %llu accesses, %llu fault "
                        "arrivals -> %s\n",
                        scheme_name.c_str(), trial,
                        static_cast<unsigned long long>(t.reads
                                                        + t.writes),
                        static_cast<unsigned long long>(t.faultArrivals),
                        out);
        }
        return 0;
    }

    const bool hammer = cfg.disturb != DisturbScenario::None;
    const bool pool = cfg.poolNodes > 0;
    const bool policy = cfg.policyScenario != PolicyScenario::None;
    const bool metadata = cfg.metadataScenario != MetadataScenario::None;
    const std::vector<CampaignScheme> schemes =
        hammer ? disturbSchemes()
        : pool ? poolSchemes()
        : policy ? policySchemes()
        : metadata ? metadataSchemes()
               : std::vector<CampaignScheme>{
                     CampaignScheme::BaselineNone,
                     CampaignScheme::BaselineSecDed,
                     CampaignScheme::BaselineDetect,
                     CampaignScheme::DveAllow,
                     CampaignScheme::DveDeny,
                 };

    const CampaignRunner runner(cfg);
    const CampaignReport report = runner.run(schemes);

    std::ostringstream json;
    writeJsonReport(report, json);
    if (json_path) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 1;
        }
        out << json.str();
    }

    if (!quiet) {
        std::printf("Reliability campaign: %u trials x %llu ops, "
                    "seed %llu, scenario %s, %u jobs\n\n",
                    cfg.trials,
                    static_cast<unsigned long long>(cfg.opsPerTrial),
                    static_cast<unsigned long long>(cfg.seed),
                    hammer ? disturbScenarioName(cfg.disturb)
                    : policy ? policyScenarioName(cfg.policyScenario)
                    : metadata
                        ? metadataScenarioName(cfg.metadataScenario)
                        : fabricScenarioName(cfg.scenario),
                    cfg.jobs ? cfg.jobs : jobsFromEnv());
        if (hammer) {
            std::printf("%-20s %10s %10s %10s %10s %9s %9s %8s\n",
                        "scheme", "corrected", "due", "sdc", "recovered",
                        "crossings", "prev-ref", "retired");
            for (const auto &sr : report.schemes) {
                const auto &t = sr.totals;
                std::printf("%-20s %10llu %10llu %10llu %10llu %9llu "
                            "%9llu %8llu\n",
                            campaignSchemeName(sr.scheme),
                            static_cast<unsigned long long>(t.corrected),
                            static_cast<unsigned long long>(t.due),
                            static_cast<unsigned long long>(t.sdc),
                            static_cast<unsigned long long>(
                                t.replicaRecoveries),
                            static_cast<unsigned long long>(
                                t.disturbCrossings),
                            static_cast<unsigned long long>(
                                t.preventiveRefreshes),
                            static_cast<unsigned long long>(
                                t.disturbRetirements));
            }
        } else if (policy) {
            std::printf("%-20s %8s %8s %8s %9s %9s %9s %9s\n",
                        "scheme", "due", "sdc", "epochs", "promoted",
                        "demoted", "deferred", "demo-wb");
            for (const auto &sr : report.schemes) {
                const auto &t = sr.totals;
                std::printf("%-20s %8llu %8llu %8llu %9llu %9llu %9llu "
                            "%9llu\n",
                            campaignSchemeName(sr.scheme),
                            static_cast<unsigned long long>(t.due),
                            static_cast<unsigned long long>(t.sdc),
                            static_cast<unsigned long long>(
                                t.policyEpochs),
                            static_cast<unsigned long long>(
                                t.policyPromotions),
                            static_cast<unsigned long long>(
                                t.policyDemotions),
                            static_cast<unsigned long long>(
                                t.policyDemotionsDeferred),
                            static_cast<unsigned long long>(
                                t.policyDemotionWritebacks));
            }
        } else if (metadata) {
            std::printf("%-20s %8s %8s %9s %9s %8s %9s %9s\n", "scheme",
                        "due", "sdc", "detected", "corrected", "lies",
                        "rebuilds", "demoted");
            for (const auto &sr : report.schemes) {
                const auto &t = sr.totals;
                std::printf("%-20s %8llu %8llu %9llu %9llu %8llu %9llu "
                            "%9llu\n",
                            campaignSchemeName(sr.scheme),
                            static_cast<unsigned long long>(t.due),
                            static_cast<unsigned long long>(t.sdc),
                            static_cast<unsigned long long>(
                                t.metaDetected),
                            static_cast<unsigned long long>(
                                t.metaCorrected),
                            static_cast<unsigned long long>(t.metaLies),
                            static_cast<unsigned long long>(
                                t.metaRebuilds),
                            static_cast<unsigned long long>(
                                t.metaDemotions));
            }
        } else if (pool) {
            std::printf("%-20s %10s %10s %10s %10s %9s %9s %8s\n",
                        "scheme", "corrected", "due", "sdc", "recovered",
                        "pool-rd", "retarget", "re-repl");
            for (const auto &sr : report.schemes) {
                const auto &t = sr.totals;
                std::printf("%-20s %10llu %10llu %10llu %10llu %9llu "
                            "%9llu %8llu\n",
                            campaignSchemeName(sr.scheme),
                            static_cast<unsigned long long>(t.corrected),
                            static_cast<unsigned long long>(t.due),
                            static_cast<unsigned long long>(t.sdc),
                            static_cast<unsigned long long>(
                                t.replicaRecoveries),
                            static_cast<unsigned long long>(
                                t.poolReplicaReads),
                            static_cast<unsigned long long>(
                                t.poolRetargets),
                            static_cast<unsigned long long>(
                                t.reReplications));
            }
        } else {
            std::printf("%-20s %10s %10s %10s %10s %8s %8s %8s\n",
                        "scheme", "corrected", "due", "sdc", "recovered",
                        "re-repl", "degr-end", "unavail");
            for (const auto &sr : report.schemes) {
                const auto &t = sr.totals;
                std::printf("%-20s %10llu %10llu %10llu %10llu %8llu "
                            "%8llu %8llu\n",
                            campaignSchemeName(sr.scheme),
                            static_cast<unsigned long long>(t.corrected),
                            static_cast<unsigned long long>(t.due),
                            static_cast<unsigned long long>(t.sdc),
                            static_cast<unsigned long long>(
                                t.replicaRecoveries),
                            static_cast<unsigned long long>(
                                t.reReplications),
                            static_cast<unsigned long long>(
                                t.degradedLinesEnd),
                            static_cast<unsigned long long>(
                                t.unavailableRequests));
            }
        }

        // Cross-check against Table I's closed forms: the analytic model
        // predicts the same ordering the simulated campaign shows --
        // Dvé's DUE/SDC rates sit orders of magnitude below any
        // single-copy scheme's.
        const auto ck = reliability::chipkill();
        const auto dsd = reliability::dveDsd();
        const auto tsd = reliability::dveTsd();
        std::printf("\nTable I analytic rates (events per 1e9 hours):\n");
        std::printf("  %-18s due %12.6g  sdc %12.6g\n", "chipkill",
                    ck.due, ck.sdc);
        std::printf("  %-18s due %12.6g  sdc %12.6g\n", "dve+dsd",
                    dsd.due, dsd.sdc);
        std::printf("  %-18s due %12.6g  sdc %12.6g\n", "dve+tsd",
                    tsd.due, tsd.sdc);
        std::printf("\nThe campaign reproduces the ordering: baseline "
                    "detection turns faults\ninto DUEs (or, unprotected, "
                    "into SDCs); Dvé recovers via the replica\nand "
                    "re-replicates degraded lines back to dual-copy "
                    "service.\n");
        if (json_path)
            std::printf("\nJSON report written to %s\n", json_path);
    }

    if (!json_path && quiet)
        std::fputs(json.str().c_str(), stdout);

    if (cfg.trialTimeoutMs > 0) {
        std::uint64_t timed_out = 0;
        for (const auto &sr : report.schemes)
            timed_out += sr.totals.timedOut;
        if (timed_out > 0) {
            std::fprintf(stderr,
                         "watchdog: %llu trial(s) exceeded "
                         "--trial-timeout-ms %llu\n",
                         static_cast<unsigned long long>(timed_out),
                         static_cast<unsigned long long>(
                             cfg.trialTimeoutMs));
            return 3;
        }
    }
    return 0;
}
