/**
 * @file
 * Tests for the metadata fault domain: protection-tier semantics (an
 * unprotected directory lies, parity marks entries lost, ECC corrects),
 * consult-triggered and scrub-driven cross-rebuild, the write journal
 * kept while a replica-directory backing page is unreadable, honest
 * degradation when both metadata sides are lost, and the interactions
 * with in-flight data repair and the on-demand replication policy.
 */

#include <gtest/gtest.h>

#include "core/dve_engine.hh"
#include "fault/lifecycle.hh"

namespace dve
{
namespace
{

EngineConfig
smallConfig()
{
    EngineConfig cfg;
    cfg.l1Bytes = 1024;
    cfg.llcBytes = 16 * 1024;
    cfg.dram = DramConfig::ddr4Replicated();
    return cfg;
}

DveConfig
metaCfg(MetadataProtection p)
{
    DveConfig d;
    d.protocol = DveProtocol::Deny;
    d.metadataFaults = true;
    d.metaProtection = p;
    return d;
}

Addr
addrAt(unsigned page, unsigned line_in_page = 0)
{
    return Addr(page) * pageBytes + Addr(line_in_page) * lineBytes;
}

void
inject(DveEngine &e, const std::string &spec)
{
    std::string err;
    const auto f = parseFaultSpec(spec, &err);
    ASSERT_TRUE(f) << spec << ": " << err;
    ASSERT_NE(e.faultRegistry().inject(*f), 0u) << spec;
}

TEST(DveMetadata, TierNoneLiesIntoSilentCorruption)
{
    // An unprotected home-directory entry serves the home read directly,
    // skipping sharer registration; the remote write then cannot find
    // the stale cached copy, and the next home read silently returns it.
    EngineConfig cfg = smallConfig();
    cfg.validateValues = false; // SDC is the expected observation
    DveEngine e(cfg, metaCfg(MetadataProtection::None));
    inject(e, "meta:0-home-dir-0");

    Tick t = e.access(0, 0, addrAt(0), false, 0, 0).done;
    EXPECT_GT(e.metadataLies(), 0u);
    t = e.access(1, 0, addrAt(0), true, 77, t).done;
    const auto r = e.access(0, 0, addrAt(0), false, 0, t);
    EXPECT_EQ(r.outcome, ReadOutcome::Sdc);
    EXPECT_NE(r.value, 77u);
    // The lie is silent: nothing was detected, nothing marked lost.
    EXPECT_EQ(e.metadataDetected(), 0u);
    EXPECT_EQ(e.metadataLostEntries(), 0u);
}

TEST(DveMetadata, TierParityDetectsThenRebuildsTransientOnConsult)
{
    DveEngine e(smallConfig(), metaCfg(MetadataProtection::Parity));
    inject(e, "meta:0-home-dir-0,transient=1");

    // The consult detects the corruption, marks the entry lost, and --
    // with the replica side clean -- rebuilds it in the same access.
    const auto r = e.access(0, 0, addrAt(0), false, 0, 0);
    EXPECT_EQ(r.outcome, ReadOutcome::Clean);
    EXPECT_GE(e.metadataDetected(), 1u);
    EXPECT_GE(e.metadataRebuilds(), 1u);
    EXPECT_EQ(e.metadataLostEntries(), 0u);
    EXPECT_EQ(e.metadataDemotions(), 0u);
    EXPECT_FALSE(e.faultRegistry().anyMetadataFault());

    // Rebuilt means rebuilt: the next consult is clean.
    const auto r2 = e.access(0, 0, addrAt(0), false, 0, r.done);
    EXPECT_EQ(r2.outcome, ReadOutcome::Clean);
}

TEST(DveMetadata, TierParityBothSidesLostIsHonestDue)
{
    // Permanent corruption of the home directory AND the replica-side
    // backing for the same page: no rebuild source exists. The read
    // must degrade honestly -- a machine check, never silent data.
    DveEngine e(smallConfig(), metaCfg(MetadataProtection::Parity));
    inject(e, "meta:0-home-dir-0");
    inject(e, "meta:1-replica-dir-0");

    const auto r = e.access(0, 0, addrAt(0), false, 0, 0);
    EXPECT_EQ(r.outcome, ReadOutcome::Due);
    EXPECT_GE(e.metadataDemotions(), 1u);
    EXPECT_EQ(e.readOutcomeCount(ReadOutcome::Sdc), 0u);

    // The poisoned read still completes the directory transaction:
    // a later remote write reaches the (registered) home-side copy.
    Tick t = e.access(1, 0, addrAt(0), true, 55, r.done).done;
    const auto r2 = e.access(0, 0, addrAt(0), false, 0, t);
    EXPECT_EQ(r2.value, 55u);
    EXPECT_NE(r2.outcome, ReadOutcome::Sdc);
}

TEST(DveMetadata, TierEccCorrectsEveryConsult)
{
    // ECC metadata never lies and never loses the entry: consults
    // correct in place and service continues at full fidelity.
    DveEngine e(smallConfig(), metaCfg(MetadataProtection::Ecc));
    inject(e, "meta:0-home-dir-0");

    Tick t = 0;
    for (unsigned i = 0; i < 8; ++i) {
        const auto r = e.access(i % 2, 0, addrAt(0), i % 3 == 0,
                                1000 + i, t);
        EXPECT_NE(r.outcome, ReadOutcome::Sdc);
        EXPECT_NE(r.outcome, ReadOutcome::Due);
        t = r.done;
    }
    EXPECT_GT(e.metadataCorrected(), 0u);
    EXPECT_EQ(e.metadataLies(), 0u);
    EXPECT_EQ(e.metadataLostEntries(), 0u);
}

TEST(DveMetadata, LostReplicaDirectoryForwardsToHome)
{
    // A lost replica-directory page cannot prove the local replica is
    // current, so replica-side reads route around it to the home socket
    // until the scrub rebuilds the backing state.
    DveEngine e(smallConfig(), metaCfg(MetadataProtection::Parity));
    inject(e, "meta:1-replica-dir-0,transient=1");

    const auto r = e.access(1, 0, addrAt(0), false, 0, 0);
    EXPECT_EQ(r.outcome, ReadOutcome::Clean);
    EXPECT_GE(e.metadataForwards(), 1u);
    EXPECT_GE(e.metadataLostEntries(), 1u);

    const auto rep = e.patrolScrub(r.done);
    EXPECT_GE(e.metadataRebuilds(), 1u);
    EXPECT_EQ(e.metadataLostEntries(), 0u);
    const auto r2 = e.access(1, 0, addrAt(0), false, 0, rep.finishedAt);
    EXPECT_EQ(r2.outcome, ReadOutcome::Clean);
}

TEST(MetadataScrub, JournaledWritesFlushIntoRebuiltBacking)
{
    // While the replica-directory backing page is lost, directory
    // transitions are journaled. The scrub's cross-rebuild replays them:
    // the RM marker pushed by a home-side write must survive into the
    // rebuilt backing state, or a stale replica read becomes possible.
    DveEngine e(smallConfig(), metaCfg(MetadataProtection::Parity));
    const Addr a = addrAt(0);
    // Replicate the page via a *different* line so the consult below is
    // a real LLC miss (a cache hit never reaches the directory).
    Tick t = e.access(1, 0, addrAt(0, 3), false, 0, 0).done;

    inject(e, "meta:1-replica-dir-0,transient=1");
    t = e.access(1, 0, a, false, 0, t).done; // consult -> lost
    ASSERT_GE(e.metadataLostEntries(), 1u);

    // Home-side write under the lost page: the RM push is journaled.
    t = e.access(0, 0, a, true, 91, t).done;
    EXPECT_FALSE(e.replicaDirectory(1).peekBacking(lineNum(a)));

    const auto rep = e.patrolScrub(t);
    const auto entry = e.replicaDirectory(1).peekBacking(lineNum(a));
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->state, RepState::RM);

    // The rebuilt marker routes the replica read to fresh data.
    const auto r = e.access(1, 0, a, false, 0, rep.finishedAt);
    EXPECT_EQ(r.value, 91u);
    EXPECT_NE(r.outcome, ReadOutcome::Sdc);
}

TEST(MetadataScrub, SeededSkipRebuildBugDropsJournaledMarkers)
{
    // The seeded bug gates the journal flush out of the scrub rebuild:
    // the backing page is declared healthy but the RM marker pushed
    // while it was lost is gone. This is the engine-level face of the
    // fuzz corpus repro (tests/corpus/metadata_skip_rebuild.scn).
    EngineConfig cfg = smallConfig();
    cfg.validateValues = false;
    DveConfig d = metaCfg(MetadataProtection::Parity);
    d.bugSkipRebuildOnScrub = true;
    DveEngine e(cfg, d);
    const Addr a = addrAt(0);
    Tick t = e.access(1, 0, addrAt(0, 3), false, 0, 0).done; // replicate

    inject(e, "meta:1-replica-dir-0,transient=1");
    t = e.access(1, 0, a, false, 0, t).done; // consult -> lost
    ASSERT_GE(e.metadataLostEntries(), 1u);
    t = e.access(0, 0, a, true, 91, t).done; // journaled RM push

    e.patrolScrub(t);
    EXPECT_EQ(e.metadataLostEntries(), 0u); // "rebuilt"...
    // ...but the journaled deny marker never made it into the backing.
    EXPECT_FALSE(e.replicaDirectory(1).peekBacking(lineNum(a)));
}

TEST(MetadataRebuild, RebuildRacesInFlightDataRepair)
{
    // A page with BOTH a data fault (replica recovery + timed repair in
    // flight) and a lost home-directory entry: the metadata rebuild and
    // the data repair pipeline share the page without wedging each
    // other, and the system returns to full dual-copy, clean-metadata
    // service.
    DveEngine e(smallConfig(), metaCfg(MetadataProtection::Parity));
    inject(e, "meta:0-home-dir-0,transient=1");
    inject(e, "scope=chip,socket=0,channel=0,rank=0,chip=2,transient=1");

    Tick t = 0;
    const auto r = e.access(0, 0, addrAt(0), false, 0, t);
    t = r.done;
    EXPECT_NE(r.outcome, ReadOutcome::Sdc);
    EXPECT_NE(r.outcome, ReadOutcome::Due);
    EXPECT_GE(e.metadataRebuilds(), 1u);

    // Let the repair backoff expire, then scrub + maintain to drain.
    for (unsigned round = 0; round < 12; ++round) {
        if (e.degradedLines() == 0 && e.pendingRepairs() == 0)
            break;
        t += 100 * ticksPerUs;
        const auto rep = e.patrolScrub(t);
        t = e.runMaintenance(rep.finishedAt).finishedAt;
    }
    EXPECT_EQ(e.degradedLines(), 0u);
    EXPECT_EQ(e.pendingRepairs(), 0u);
    EXPECT_EQ(e.metadataLostEntries(), 0u);
    const auto r2 = e.access(0, 0, addrAt(0), false, 0, t);
    EXPECT_EQ(r2.outcome, ReadOutcome::Clean);
}

TEST(MetadataRebuild, ScrubFlushesJournalPastLazyExpiredBusyClocks)
{
    // Directory busy clocks expire lazily (stale entries stay in the
    // map until overwritten). A scrub that replays the journal long
    // after the transactions that serialized on those lines must not be
    // confused by the leftover clocks.
    DveEngine e(smallConfig(), metaCfg(MetadataProtection::Parity));
    const Addr a = addrAt(0);
    Tick t = 0;
    // Several transactions on the page leave busy clocks behind.
    for (unsigned i = 0; i < 4; ++i)
        t = e.access(1, 0, addrAt(0, i), false, 0, t).done;

    inject(e, "meta:1-replica-dir-0,transient=1");
    t = e.access(1, 0, a, false, 0, t).done; // consult -> lost
    t = e.access(0, 0, a, true, 33, t).done; // journaled RM push

    // Scrub far in the future: every busy clock has lazily expired.
    const auto rep = e.patrolScrub(t + 500 * ticksPerUs);
    EXPECT_EQ(e.metadataLostEntries(), 0u);
    const auto entry = e.replicaDirectory(1).peekBacking(lineNum(a));
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->state, RepState::RM);
    const auto r = e.access(1, 0, a, false, 0, rep.finishedAt);
    EXPECT_EQ(r.value, 33u);
    EXPECT_NE(r.outcome, ReadOutcome::Sdc);
}

TEST(MetadataRebuild, PolicyDemotionDropsLostStateAndJournal)
{
    // A metadata fault lands mid-demotion: the policy engine demotes a
    // page whose replica-directory backing is marked lost. Demotion
    // must drop the lost marker and the journal with the replica --
    // leaving them behind would block later re-promotion or flush stale
    // journal entries into a future replica's directory.
    EngineConfig cfg = smallConfig();
    cfg.llcBytes = 2 * 1024; // far fewer lines than a page: every
                             // drive-loop access is an observed miss
    DveConfig d = metaCfg(MetadataProtection::Parity);
    d.replicateAll = false;
    d.policy.enabled = true;
    d.policy.epochOps = 8;
    d.policy.promoteThreshold = 2;
    DveEngine e(cfg, d);
    ASSERT_TRUE(e.policyActive());

    // Promote page 2 with exactly one epoch of home-side misses.
    const unsigned lines = pageBytes / lineBytes;
    Tick t = 0;
    for (unsigned i = 0; i < 8; ++i)
        t = e.access(0, 0, addrAt(2, i % lines), true, i + 1, t).done;
    ASSERT_GE(e.policyPromotions(), 1u);
    // Heal the seeding copies so the demotion below does not defer.
    for (int i = 0; i < 16 && e.policyPromotionLag().count() == 0; ++i)
        t = e.runMaintenance(t).finishedAt + 500 * ticksPerUs;

    // Corrupt the replica-side backing and consult it (mark lost).
    inject(e, "meta:1-replica-dir-2,transient=1");
    t = e.access(1, 0, addrAt(2), false, 0, t).done;
    ASSERT_GE(e.metadataLostEntries(), 1u);
    // Journal a transition under the lost page.
    t = e.access(0, 0, addrAt(2), true, 12, t).done;

    // Collapse the budget so the next epoch boundary demotes page 2.
    e.setPolicyGlobalBudget(0);
    for (unsigned i = 0; i < 24; ++i)
        t = e.access(0, 0, addrAt(2, (8 + i) % lines), true, 100 + i,
                     t).done;
    ASSERT_GE(e.policyDemotions(), 1u);

    // Demotion dropped the lost marker (nothing left to rebuild).
    EXPECT_EQ(e.metadataLostEntries(), 0u);
    // The page still reads correctly from its single home copy.
    const auto r = e.access(1, 0, addrAt(2), false, 0, t);
    EXPECT_EQ(r.value, 12u);
    EXPECT_NE(r.outcome, ReadOutcome::Sdc);
}

TEST(MetadataLifecycle, ArrivalsRespectStructureAndFootprintBounds)
{
    // Lifecycle-driven Metadata arrivals must land on valid control-
    // plane coordinates: structure 0..2, page inside the footprint,
    // socket inside the machine.
    LifecycleConfig c;
    c.sockets = 2;
    c.dram = DramConfig::ddr4Replicated();
    c.footprintLines = 512; // 8 pages
    c.acceleration = 3e15;
    c.seed = 17;
    c.rates[unsigned(FaultScope::Metadata)] = {20.0, 0.5, 0.0};

    FaultRegistry reg;
    FaultLifecycleEngine flc(c, reg);
    flc.advanceTo(10 * ticksPerMs);
    ASSERT_GT(flc.stats().arrivals, 0u);
    EXPECT_TRUE(reg.anyMetadataFault());
    for (const auto &f : reg.active()) {
        ASSERT_EQ(f.scope, FaultScope::Metadata);
        EXPECT_LT(f.socket, 2u);
        EXPECT_LT(f.chip, numMetaStructures);
        EXPECT_LT(f.row, 8u);
    }
}

TEST(MetadataLifecycle, ArrivalsStopAtTrialBoundaries)
{
    // The campaign drain calls stopArrivals() at the trial boundary:
    // already-present metadata faults persist, new arrivals stop, and
    // re-advancing to an already-reached tick is a no-op.
    LifecycleConfig c;
    c.sockets = 2;
    c.dram = DramConfig::ddr4Replicated();
    c.footprintLines = 512;
    c.acceleration = 3e15;
    c.seed = 17;
    c.rates[unsigned(FaultScope::Metadata)] = {20.0, 0.3, 0.0};

    FaultRegistry reg;
    FaultLifecycleEngine flc(c, reg);
    flc.advanceTo(5 * ticksPerMs);
    const auto arrivals = flc.stats().arrivals;
    ASSERT_GT(arrivals, 0u);
    flc.advanceTo(5 * ticksPerMs); // boundary re-advance: no change
    EXPECT_EQ(flc.stats().arrivals, arrivals);

    flc.stopArrivals();
    const auto active = reg.activeCount();
    flc.advanceTo(50 * ticksPerMs);
    EXPECT_EQ(flc.stats().arrivals, arrivals);
    // Permanent metadata faults survive the boundary; nothing new came.
    EXPECT_LE(reg.activeCount(), active);
}

} // namespace
} // namespace dve
