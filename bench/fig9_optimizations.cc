/**
 * @file
 * Fig 9: allow-protocol optimizations -- a 4K-entry replica directory,
 * coarse-grain region tracking, and the oracular (infinite, free)
 * replica directory ceiling -- all normalized to baseline NUMA.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace dve;

int
main()
{
    const double scale = bench::scaleFromEnv(0.6);
    bench::printHeader("Fig 9: allow-protocol optimizations "
                       "(speedup over baseline NUMA)");
    std::printf("(2 MB LLC and compacted working sets so lines re-miss "
                "the LLC and the replica-directory reach matters)\n");

    struct Variant
    {
        const char *name;
        DveConfig dve;
    };
    DveConfig base_dve;
    DveConfig big = base_dve;
    big.replicaDirEntries = 4096;
    DveConfig coarse = base_dve;
    coarse.coarseGrain = true;
    DveConfig oracle = base_dve;
    oracle.oracular = true;

    const std::vector<Variant> variants = {
        {"allow-2k", base_dve},
        {"allow-4k", big},
        {"allow-coarse", coarse},
        {"allow-oracle", oracle},
    };

    TextTable t({"benchmark", "allow-2k", "allow-4k", "allow-coarse",
                 "allow-oracle"});
    std::vector<std::vector<double>> speedups(variants.size());

    SystemConfig sens = bench::paperConfig(SchemeKind::DveAllow);
    sens.engine.llcBytes = 2ULL * 1024 * 1024;

    // One sweep point per (workload, column); column 0 is the baseline,
    // columns 1..N the allow-protocol variants.
    const auto &workloads = table3Workloads();
    const std::size_t cols = 1 + variants.size();
    const auto runs = bench::runMatrix(
        workloads.size() * cols, [&](std::size_t p) {
            WorkloadProfile wl = workloads[p / cols];
            // Directory-capacity sensitivity needs post-LLC-eviction
            // reuse: compact the working set so the trace revisits
            // lines, while the (scaled) LLC still cannot hold it.
            wl.sharedBytes = std::max<std::uint64_t>(wl.sharedBytes / 8,
                                                     4ULL << 20);
            const std::size_t c = p % cols;
            if (c == 0)
                return bench::runScheme(SchemeKind::BaselineNuma, wl,
                                        scale, &sens);
            SystemConfig cfg = sens;
            cfg.dve = variants[c - 1].dve;
            return bench::runScheme(SchemeKind::DveAllow, wl, scale,
                                    &cfg);
        });

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &base = runs[w * cols];
        std::vector<std::string> row = {workloads[w].name};
        for (std::size_t i = 0; i < variants.size(); ++i) {
            const auto &r = runs[w * cols + 1 + i];
            const double sp = static_cast<double>(base.roiTime)
                              / static_cast<double>(r.roiTime);
            speedups[i].push_back(sp);
            row.push_back(TextTable::num(sp, 3));
        }
        t.addRow(std::move(row));
    }
    auto g = [&](std::size_t i, std::size_t n) {
        return TextTable::num(bench::geomeanTop(speedups[i], n), 3);
    };
    t.addRow({"geomean-top10", g(0, 10), g(1, 10), g(2, 10), g(3, 10)});
    t.addRow({"geomean-all", g(0, 20), g(1, 20), g(2, 20), g(3, 20)});
    t.print(std::cout);

    std::printf("\nPaper reference: the oracle is 18.3%%/10.8%% above "
                "default allow (top10/all); 4K entries add ~2%%; coarse "
                "grain helps streaming workloads but loses overall.\n");
    bench::writeRunsJson("fig9", runs);
    return 0;
}
