/**
 * @file
 * Systematic Reed-Solomon encoder/decoder over an arbitrary GF(2^m).
 *
 * One class serves every code in the paper:
 *  - Chipkill SSC-DSD : RS(18,16) over GF(2^8), decode with max_correct = 1
 *  - Dvé + DSD        : same code, decode with max_correct = 0 (detect only)
 *  - Dvé + TSD        : RS(n, n-3) over GF(2^16), detect only
 *
 * The decoder computes syndromes, then (optionally) Berlekamp-Massey,
 * Chien search and Forney to correct up to max_correct symbols, declaring
 * Detected when the error pattern exceeds that budget. Miscorrection on
 * overweight patterns is possible, exactly as in real hardware — that is
 * the SDC channel the reliability model quantifies.
 */

#ifndef DVE_ECC_REED_SOLOMON_HH
#define DVE_ECC_REED_SOLOMON_HH

#include <cstdint>
#include <vector>

#include "ecc/gf.hh"

namespace dve
{

/** Outcome of a decode attempt. */
enum class EccStatus : std::uint8_t
{
    Clean,     ///< syndromes were zero; no error observed
    Corrected, ///< error found and repaired (CE)
    Detected,  ///< error found, beyond correction capability (DUE)
};

/** A systematic RS(n, k) code with first consecutive root alpha^1. */
class ReedSolomon
{
  public:
    /**
     * @param gf field to operate in (must outlive this object)
     * @param n  codeword length in symbols, n <= gf.size() - 1
     * @param k  data symbols, k < n
     */
    ReedSolomon(const GaloisField &gf, unsigned n, unsigned k);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }

    /** Parity symbols (n - k). */
    unsigned parity() const { return n_ - k_; }

    /** Guaranteed correction capability floor((n-k)/2). */
    unsigned t() const { return (n_ - k_) / 2; }

    /**
     * Encode @p data (k symbols) into a codeword of n symbols:
     * positions [0, n-k) hold parity, [n-k, n) hold the data verbatim.
     */
    std::vector<std::uint32_t>
    encode(const std::vector<std::uint32_t> &data) const;

    /** Result of decode(). */
    struct Result
    {
        EccStatus status = EccStatus::Clean;
        unsigned symbolsCorrected = 0;
        std::vector<std::uint32_t> codeword; ///< possibly repaired
    };

    /**
     * Decode a received word.
     *
     * @param received    n symbols
     * @param max_correct cap on symbols to repair; 0 = detection only.
     *                    Effective cap is min(max_correct, t()).
     */
    Result decode(const std::vector<std::uint32_t> &received,
                  unsigned max_correct) const;

    /** True iff all syndromes are zero (valid codeword). */
    bool isCodeword(const std::vector<std::uint32_t> &word) const;

    /** Extract the k data symbols from a codeword. */
    std::vector<std::uint32_t>
    extractData(const std::vector<std::uint32_t> &codeword) const;

  private:
    std::vector<std::uint32_t>
    syndromes(const std::vector<std::uint32_t> &word) const;

    const GaloisField &gf_;
    unsigned n_;
    unsigned k_;
    std::vector<std::uint32_t> generator_; ///< g(x), degree n-k, monic
};

} // namespace dve

#endif // DVE_ECC_REED_SOLOMON_HH
