#include "fuzz/scenario.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <sstream>

namespace dve
{

const char *
fuzzOpName(FuzzOp op)
{
    switch (op) {
      case FuzzOp::Read: return "r";
      case FuzzOp::Write: return "w";
      case FuzzOp::Inject: return "f";
      case FuzzOp::Heal: return "h";
      case FuzzOp::Scrub: return "s";
      case FuzzOp::Maintain: return "m";
      case FuzzOp::Budget: return "b";
    }
    return "?";
}

std::optional<DveProtocol>
parseDveProtocol(const char *name)
{
    if (!name)
        return std::nullopt;
    for (const auto p :
         {DveProtocol::Allow, DveProtocol::Deny, DveProtocol::Dynamic}) {
        if (std::strcmp(name, dveProtocolName(p)) == 0)
            return p;
    }
    return std::nullopt;
}

namespace
{

std::string
hex(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
setErr(std::string *err, std::string msg)
{
    if (err)
        *err = std::move(msg);
}

bool
parseU64(const std::string &v, std::uint64_t &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(v.c_str(), &end, 0);
    return end && *end == '\0';
}

/** Split a line on single spaces (the canonical serializer emits exactly
 *  one space between fields; parsing tolerates runs of whitespace). */
std::vector<std::string>
fields(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

} // namespace

std::string
FuzzScenario::serialize() const
{
    std::ostringstream os;
    os << "# dve chaos-fuzz scenario\n";
    os << "version " << version << '\n';
    os << "seed " << seed << '\n';
    os << "protocol " << dveProtocolName(protocol) << '\n';
    os << "pages " << footprintPages << '\n';
    os << "epoch-ops " << epochOps << '\n';
    os << "sample-groups " << sampleGroups << '\n';
    if (poolNodes > 0)
        os << "pool " << poolNodes << '\n';
    if (policyBudget > 0)
        os << "policy-budget " << policyBudget << '\n';
    if (policyNodeBudget > 0)
        os << "policy-node-budget " << policyNodeBudget << '\n';
    if (policyEpochOps > 0)
        os << "policy-epoch-ops " << policyEpochOps << '\n';
    if (metadataFaults) {
        os << "meta-protection " << metadataProtectionName(metaProtection)
           << '\n';
    }
    if (bugRmMarkerRefresh)
        os << "bug rm-marker-refresh\n";
    if (bugSkipDenyInvalidate)
        os << "bug skip-deny-invalidate\n";
    if (bugSkipDemotionOnPartition)
        os << "bug skip-demotion-on-partition\n";
    if (bugSkipRebuildOnScrub)
        os << "bug skip-rebuild-on-scrub\n";
    if (watchdogBudget > 0)
        os << "watchdog " << watchdogBudget << '\n';
    if (expect.monitor) {
        os << "expect violation " << invariantMonitorName(*expect.monitor)
           << '\n';
    }
    for (const auto &s : steps) {
        os << "step " << fuzzOpName(s.op);
        switch (s.op) {
          case FuzzOp::Read:
            os << ' ' << s.socket << ' ' << s.core << ' ' << hex(s.addr);
            break;
          case FuzzOp::Write:
            os << ' ' << s.socket << ' ' << s.core << ' ' << hex(s.addr)
               << ' ' << hex(s.value);
            break;
          case FuzzOp::Inject:
          case FuzzOp::Heal:
            os << ' ' << formatFaultSpec(s.fault);
            break;
          case FuzzOp::Budget:
            os << ' ' << s.value;
            break;
          case FuzzOp::Scrub:
          case FuzzOp::Maintain:
            break;
        }
        os << '\n';
    }
    return os.str();
}

std::optional<FuzzScenario>
FuzzScenario::parse(std::istream &in, std::string *err)
{
    FuzzScenario sc;
    sc.steps.clear();
    std::string line;
    unsigned lineno = 0;
    bool sawVersion = false;

    const auto fail = [&](const std::string &msg)
        -> std::optional<FuzzScenario> {
        setErr(err, "line " + std::to_string(lineno) + ": " + msg);
        return std::nullopt;
    };

    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const auto f = fields(line);
        if (f.empty())
            continue;
        const std::string &key = f[0];

        if (key == "version") {
            std::uint64_t v = 0;
            if (f.size() != 2 || !parseU64(f[1], v) || v != 1)
                return fail("unsupported scenario version");
            sc.version = static_cast<unsigned>(v);
            sawVersion = true;
        } else if (key == "seed") {
            if (f.size() != 2 || !parseU64(f[1], sc.seed))
                return fail("bad seed");
        } else if (key == "protocol") {
            const auto p =
                f.size() == 2 ? parseDveProtocol(f[1].c_str())
                              : std::nullopt;
            if (!p)
                return fail("bad protocol (want allow|deny|dynamic)");
            sc.protocol = *p;
        } else if (key == "pages") {
            std::uint64_t v = 0;
            if (f.size() != 2 || !parseU64(f[1], v) || v == 0
                || v > 4096) {
                return fail("bad pages (want 1..4096)");
            }
            sc.footprintPages = static_cast<unsigned>(v);
        } else if (key == "epoch-ops") {
            if (f.size() != 2 || !parseU64(f[1], sc.epochOps)
                || sc.epochOps == 0) {
                return fail("bad epoch-ops");
            }
        } else if (key == "sample-groups") {
            if (f.size() != 2 || !parseU64(f[1], sc.sampleGroups)
                || sc.sampleGroups < 2) {
                return fail("bad sample-groups (want >= 2)");
            }
        } else if (key == "pool") {
            std::uint64_t v = 0;
            if (f.size() != 2 || !parseU64(f[1], v) || v > 64)
                return fail("bad pool (want 0..64 nodes)");
            sc.poolNodes = static_cast<unsigned>(v);
        } else if (key == "policy-budget") {
            if (f.size() != 2 || !parseU64(f[1], sc.policyBudget)
                || sc.policyBudget == 0) {
                return fail("bad policy-budget (want >= 1)");
            }
        } else if (key == "policy-node-budget") {
            if (f.size() != 2 || !parseU64(f[1], sc.policyNodeBudget)
                || sc.policyNodeBudget == 0) {
                return fail("bad policy-node-budget (want >= 1)");
            }
        } else if (key == "policy-epoch-ops") {
            if (f.size() != 2 || !parseU64(f[1], sc.policyEpochOps)
                || sc.policyEpochOps == 0) {
                return fail("bad policy-epoch-ops");
            }
        } else if (key == "meta-protection") {
            const auto p = f.size() == 2
                               ? parseMetadataProtection(f[1].c_str())
                               : std::nullopt;
            if (!p)
                return fail("bad meta-protection (want none|parity|ecc)");
            sc.metadataFaults = true;
            sc.metaProtection = *p;
        } else if (key == "bug") {
            if (f.size() == 2 && f[1] == "rm-marker-refresh")
                sc.bugRmMarkerRefresh = true;
            else if (f.size() == 2 && f[1] == "skip-deny-invalidate")
                sc.bugSkipDenyInvalidate = true;
            else if (f.size() == 2
                     && f[1] == "skip-demotion-on-partition")
                sc.bugSkipDemotionOnPartition = true;
            else if (f.size() == 2 && f[1] == "skip-rebuild-on-scrub")
                sc.bugSkipRebuildOnScrub = true;
            else
                return fail("unknown bug name");
        } else if (key == "watchdog") {
            std::uint64_t v = 0;
            if (f.size() != 2 || !parseU64(f[1], v) || v == 0)
                return fail("bad watchdog budget");
            sc.watchdogBudget = static_cast<Tick>(v);
        } else if (key == "expect") {
            if (f.size() == 3 && f[1] == "violation") {
                const auto m = parseInvariantMonitor(f[2].c_str());
                if (!m)
                    return fail("unknown monitor '" + f[2] + "'");
                sc.expect.monitor = *m;
            } else if (f.size() == 2 && f[1] == "clean") {
                sc.expect.monitor = std::nullopt;
            } else {
                return fail("bad expect (want 'clean' or "
                            "'violation <monitor>')");
            }
        } else if (key == "step") {
            if (f.size() < 2)
                return fail("step without an op");
            FuzzStep st;
            const std::string &op = f[1];
            if (op == "r" || op == "w") {
                st.op = op == "r" ? FuzzOp::Read : FuzzOp::Write;
                const std::size_t want = op == "r" ? 5u : 6u;
                std::uint64_t sock = 0, core = 0;
                if (f.size() != want || !parseU64(f[2], sock)
                    || !parseU64(f[3], core) || !parseU64(f[4], st.addr)) {
                    return fail("bad access step");
                }
                if (st.op == FuzzOp::Write && !parseU64(f[5], st.value))
                    return fail("bad write value");
                st.socket = static_cast<unsigned>(sock);
                st.core = static_cast<unsigned>(core);
            } else if (op == "f" || op == "h") {
                st.op = op == "f" ? FuzzOp::Inject : FuzzOp::Heal;
                if (f.size() != 3)
                    return fail("fault step wants one spec token");
                std::string ferr;
                const auto d = parseFaultSpec(f[2], &ferr);
                if (!d)
                    return fail("bad fault spec: " + ferr);
                st.fault = *d;
            } else if (op == "s" || op == "m") {
                st.op = op == "s" ? FuzzOp::Scrub : FuzzOp::Maintain;
                if (f.size() != 2)
                    return fail("scrub/maintenance step takes no args");
            } else if (op == "b") {
                st.op = FuzzOp::Budget;
                if (f.size() != 3 || !parseU64(f[2], st.value))
                    return fail("bad budget step (want one page count)");
            } else {
                return fail("unknown step op '" + op + "'");
            }
            sc.steps.push_back(st);
        } else {
            return fail("unknown scenario key '" + key + "'");
        }
    }

    if (!sawVersion) {
        setErr(err, "scenario has no version header");
        return std::nullopt;
    }
    return sc;
}

std::optional<FuzzScenario>
FuzzScenario::parse(const std::string &text, std::string *err)
{
    std::istringstream is(text);
    return parse(is, err);
}

} // namespace dve
