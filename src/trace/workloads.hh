/**
 * @file
 * Synthetic workload profiles standing in for the paper's Table III
 * benchmarks, plus the trace generator.
 *
 * The paper traces 20 real applications (HPC, PARSEC, SPLASH-2x, Rodinia,
 * NAS, Parboil, SPEC) with Prism and replays them in gem5. Those traces
 * are not redistributable, so each benchmark is modelled by a calibrated
 * profile capturing the properties that drive the paper's results:
 *
 *  - L2 MPKI rank (working-set size vs. the 8 MB LLC, locality run
 *    lengths, compute-to-memory ratio) -- orders Fig 6's x-axis;
 *  - the Fig 7 sharing mix (private vs shared regions, read/write
 *    fractions, lock-protected migratory writes);
 *  - synchronization structure (barrier interval, lock count).
 *
 * Generated traces are deterministic in the seed, synchronization-aware,
 * and architecture-agnostic -- the same properties the paper cites for
 * SynchroTrace.
 */

#ifndef DVE_TRACE_WORKLOADS_HH
#define DVE_TRACE_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace dve
{

/** Calibrated statistics for one benchmark. */
struct WorkloadProfile
{
    std::string name;
    std::string suite;

    /** Memory events per thread (before the benches' scale factor). */
    std::uint64_t memOpsPerThread = 25000;
    /** Mean 1-cycle compute ops between memory events. */
    double computePerMem = 4.0;

    /** Shared-region size (bytes) -- the main MPKI lever. */
    std::uint64_t sharedBytes = 32ULL << 20;
    /** Per-thread private region size (bytes). */
    std::uint64_t privateBytes = 2ULL << 20;

    /** Fraction of memory events that target the shared region. */
    double sharedFraction = 0.7;
    /** Write probability for private-region accesses. */
    double privateWriteFraction = 0.3;
    /** Write probability for shared-region accesses. */
    double sharedWriteFraction = 0.05;

    /** Mean sequential run length (spatial locality). */
    double meanRunLength = 4.0;

    /** Barrier every this many memory events (0 = none). */
    std::uint64_t barrierInterval = 0;
    /** Lock-protected critical section every this many events (0 = none);
     *  each section performs 2 shared read-modify-writes. */
    std::uint64_t lockInterval = 0;
    /** Number of distinct locks. */
    std::uint32_t numLocks = 16;

    std::uint64_t seed = 12345;
};

/**
 * The 20 benchmarks of Table III, ordered by descending modelled L2 MPKI
 * (the order Fig 6 uses). The first 10 are the paper's "top-10".
 */
const std::vector<WorkloadProfile> &table3Workloads();

/** Look up a profile by name; fatal when unknown. */
const WorkloadProfile &workloadByName(const std::string &name);

/**
 * Generate deterministic per-thread traces for @p threads threads.
 * @p scale multiplies memOpsPerThread (benches use < 1 for quick runs).
 */
ThreadTraces generateTraces(const WorkloadProfile &profile,
                            unsigned threads, double scale = 1.0);

} // namespace dve

#endif // DVE_TRACE_WORKLOADS_HH
