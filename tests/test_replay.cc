/**
 * @file
 * Tests for the trace replay engine: timing composition, barrier and
 * mutex semantics, warmup/ROI accounting, and end-to-end workload runs.
 */

#include <gtest/gtest.h>

#include "coherence/engine.hh"
#include "cpu/replay.hh"
#include "trace/workloads.hh"

namespace dve
{
namespace
{

EngineConfig
smallConfig()
{
    EngineConfig cfg;
    cfg.l1Bytes = 1024;
    cfg.llcBytes = 16 * 1024;
    return cfg;
}

TEST(Replay, SingleThreadComputeOnly)
{
    CoherenceEngine e(smallConfig());
    ReplayEngine replay(e, 0.0);
    ThreadTraces t(1);
    t[0] = {{OpType::Compute, 100, 0}};
    const auto r = replay.run(t);
    // 100 cycles @ 3 GHz = 100 * 333 ps.
    EXPECT_EQ(r.finishTick, 100u * 333u);
    EXPECT_EQ(r.computeCycles, 100u);
    EXPECT_EQ(r.memOps, 0u);
}

TEST(Replay, MemoryOpsAdvanceTime)
{
    CoherenceEngine e(smallConfig());
    ReplayEngine replay(e, 0.0);
    ThreadTraces t(1);
    t[0] = {{OpType::Read, 1, 0x0}, {OpType::Read, 1, 0x0}};
    const auto r = replay.run(t);
    EXPECT_EQ(r.memOps, 2u);
    EXPECT_GT(r.finishTick, 0u);
}

TEST(Replay, BarrierSynchronizesThreads)
{
    CoherenceEngine e(smallConfig());
    ReplayEngine replay(e, 0.0);
    ThreadTraces t(2);
    // Thread 0 computes long; thread 1 reaches the barrier early.
    t[0] = {{OpType::Compute, 10000, 0},
            {OpType::Barrier, 1, 0},
            {OpType::Compute, 1, 0}};
    t[1] = {{OpType::Barrier, 1, 0}, {OpType::Compute, 1, 0}};
    const auto r = replay.run(t);
    // Both threads end after thread 0's long compute + barrier + 1.
    EXPECT_GE(r.finishTick, 10000u * 333u);
    EXPECT_EQ(r.barrierWaits, 2u);
}

TEST(Replay, MutexIsExclusiveAndFifo)
{
    CoherenceEngine e(smallConfig());
    ReplayEngine replay(e, 0.0);
    ThreadTraces t(2);
    // Both threads contend for lock 5 around a shared write.
    t[0] = {{OpType::Lock, 5, 0},
            {OpType::Compute, 1000, 0},
            {OpType::Write, 1, 0x100},
            {OpType::Unlock, 5, 0}};
    t[1] = {{OpType::Lock, 5, 0},
            {OpType::Write, 1, 0x100},
            {OpType::Unlock, 5, 0}};
    const auto r = replay.run(t);
    EXPECT_EQ(r.lockAcquisitions, 2u);
    // Thread 1 must wait for thread 0's critical section.
    EXPECT_GE(r.finishTick, 1000u * 333u);
}

TEST(Replay, UnlockWithoutLockPanics)
{
    CoherenceEngine e(smallConfig());
    ReplayEngine replay(e, 0.0);
    ThreadTraces t(1);
    t[0] = {{OpType::Unlock, 1, 0}};
    EXPECT_THROW(replay.run(t), std::logic_error);
}

TEST(Replay, TooManyThreadsRejected)
{
    CoherenceEngine e(smallConfig());
    ReplayEngine replay(e, 0.0);
    ThreadTraces t(17); // only 16 cores
    for (auto &th : t)
        th = {{OpType::Compute, 1, 0}};
    EXPECT_THROW(replay.run(t), std::logic_error);
}

TEST(Replay, WarmupRoiAccounting)
{
    CoherenceEngine e(smallConfig());
    ReplayEngine replay(e, 0.5); // half the mem ops warm up
    ThreadTraces t(1);
    for (int i = 0; i < 100; ++i)
        t[0].push_back({OpType::Read, 1, Addr(i) * 64});

    bool roi_fired = false;
    Tick roi_tick = 0;
    replay.setRoiCallback([&](Tick tk) {
        roi_fired = true;
        roi_tick = tk;
    });
    const auto r = replay.run(t);
    EXPECT_TRUE(roi_fired);
    EXPECT_EQ(r.roiStartTick, roi_tick);
    EXPECT_GT(r.roiStartTick, 0u);
    EXPECT_EQ(r.memOps, 50u); // only post-warmup ops counted
    EXPECT_LT(r.roiTime(), r.finishTick);
}

TEST(Replay, ZeroWarmupFiresCallbackAtStart)
{
    CoherenceEngine e(smallConfig());
    ReplayEngine replay(e, 0.0);
    bool fired = false;
    replay.setRoiCallback([&](Tick tk) {
        fired = true;
        EXPECT_EQ(tk, 0u);
    });
    ThreadTraces t(1);
    t[0] = {{OpType::Read, 1, 0}};
    replay.run(t);
    EXPECT_TRUE(fired);
}

TEST(Replay, FullWorkloadRunsToCompletion)
{
    CoherenceEngine e(smallConfig());
    ReplayEngine replay(e, 0.05);
    // Scale must keep memOps/thread above the 4000-op lock interval.
    const auto traces =
        generateTraces(workloadByName("streamcluster"), 16, 0.25);
    const auto r = replay.run(traces);
    EXPECT_GT(r.memOps, 0u);
    EXPECT_GT(r.finishTick, r.roiStartTick);
    EXPECT_GT(r.barrierWaits, 0u);
    EXPECT_GT(r.lockAcquisitions, 0u);
    EXPECT_EQ(e.sdcReadsObserved(), 0u); // value-validated end to end
}

TEST(Replay, DeterministicAcrossRuns)
{
    auto run = [] {
        CoherenceEngine e(smallConfig());
        ReplayEngine replay(e, 0.05);
        const auto traces =
            generateTraces(workloadByName("histo"), 8, 0.05);
        return replay.run(traces).finishTick;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace dve
