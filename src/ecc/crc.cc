#include "ecc/crc.hh"

#include <array>

namespace dve
{

namespace
{

constexpr std::array<std::uint16_t, 256>
buildCrc16Table()
{
    std::array<std::uint16_t, 256> t{};
    for (unsigned i = 0; i < 256; ++i) {
        std::uint16_t c = static_cast<std::uint16_t>(i << 8);
        for (int b = 0; b < 8; ++b)
            c = static_cast<std::uint16_t>((c & 0x8000) ? (c << 1) ^ 0x1021
                                                        : (c << 1));
        t[i] = c;
    }
    return t;
}

constexpr std::array<std::uint32_t, 256>
buildCrc32Table()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int b = 0; b < 8; ++b)
            c = (c & 1) ? (c >> 1) ^ 0xEDB88320u : (c >> 1);
        t[i] = c;
    }
    return t;
}

constexpr auto crc16Table = buildCrc16Table();
constexpr auto crc32Table = buildCrc32Table();

} // namespace

std::uint16_t
crc16(const std::uint8_t *data, std::size_t len)
{
    std::uint16_t c = 0xFFFF;
    for (std::size_t i = 0; i < len; ++i)
        c = static_cast<std::uint16_t>((c << 8)
                                       ^ crc16Table[(c >> 8) ^ data[i]]);
    return c;
}

std::uint32_t
crc32(const std::uint8_t *data, std::size_t len)
{
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        c = (c >> 8) ^ crc32Table[(c ^ data[i]) & 0xFF];
    return c ^ 0xFFFFFFFFu;
}

} // namespace dve
