/**
 * @file
 * Epoch-driven promote/demote decisions under a replication budget.
 */

#include "policy/replication_policy.hh"

#include <algorithm>

namespace dve
{

ReplicationPolicy::ReplicationPolicy(const PolicyConfig &cfg)
    : cfg_(cfg), globalBudget_(cfg.globalBudget)
{
}

bool
ReplicationPolicy::observe(Addr page)
{
    ++heat_[page];
    if (++opsInEpoch_ < cfg_.epochOps)
        return false;
    opsInEpoch_ = 0;
    return true;
}

std::vector<std::pair<std::uint32_t, Addr>>
ReplicationPolicy::replicatedByHeat() const
{
    std::vector<std::pair<std::uint32_t, Addr>> v;
    v.reserve(replicated_.size());
    for (const auto &[page, unused] : replicated_) {
        (void)unused;
        const auto it = heat_.find(page);
        v.emplace_back(it == heat_.end() ? 0u : it->second, page);
    }
    // Coldest first; equal heat resolves by page id so the order is
    // independent of FlatMap layout.
    std::sort(v.begin(), v.end());
    return v;
}

ReplicationPolicy::Decision
ReplicationPolicy::evaluate(const NodeOf &nodeOf)
{
    ++epochs_;
    Decision d;

    // --- Demotions: shed budget overflow, coldest pages first. -----
    //
    // The per-node counts are recomputed from scratch each epoch (via
    // nodeOf) rather than tracked incrementally: pool heal-back can
    // retarget a replica to a different node without telling us, so a
    // cached count would drift.
    const auto byHeat = replicatedByHeat();
    std::size_t globalExcess =
        replicated_.size() > globalBudget_ ? replicated_.size() - globalBudget_
                                           : 0;
    FlatMap<std::uint64_t, std::uint64_t> nodeCount;
    for (const auto &[heat, page] : byHeat) {
        (void)heat;
        ++nodeCount[nodeOf(page)];
    }
    // Simulated accounting: walk coldest-first, evicting while any
    // budget is exceeded. `drop` marks pages already chosen so the
    // promotion pass below sees the post-demotion state.
    FlatMap<Addr, std::uint8_t> drop;
    for (const auto &[heat, page] : byHeat) {
        (void)heat;
        if (d.demote.size() >= cfg_.maxDemotionsPerEpoch)
            break;
        const std::uint64_t node = nodeOf(page);
        const bool nodeOver = nodeCount[node] > cfg_.nodeBudget;
        if (globalExcess == 0 && !nodeOver)
            continue;
        d.demote.push_back(page);
        drop[page] = 1;
        if (globalExcess > 0)
            --globalExcess;
        --nodeCount[node];
    }

    // --- Promotions: hottest unreplicated pages over threshold. -----
    std::vector<std::pair<std::uint32_t, Addr>> candidates;
    for (const auto &[page, heat] : heat_) {
        if (heat < cfg_.promoteThreshold || replicated_.contains(page))
            continue;
        candidates.emplace_back(heat, page);
    }
    // Hottest first, page-id tie-break (compare pages ascending within
    // equal heat so the order is layout-independent).
    std::sort(candidates.begin(), candidates.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    std::size_t replicatedAfter = replicated_.size() - d.demote.size();
    std::size_t coldIdx = 0; // next make-room victim in byHeat order
    for (const auto &[heat, page] : candidates) {
        if (d.promote.size() >= cfg_.maxPromotionsPerEpoch)
            break;
        const std::uint64_t node = nodeOf(page);
        if (nodeCount[node] >= cfg_.nodeBudget)
            continue; // node full; a colder page there may leave later
        if (replicatedAfter >= globalBudget_) {
            // Make room by demoting the coldest replicated page --
            // but only when it is genuinely colder than the
            // candidate; otherwise churn would swap equals forever.
            bool made = false;
            while (coldIdx < byHeat.size() &&
                   d.demote.size() < cfg_.maxDemotionsPerEpoch) {
                const auto &[vheat, victim] = byHeat[coldIdx];
                ++coldIdx;
                if (drop.contains(victim))
                    continue;
                if (vheat >= heat)
                    break; // byHeat is sorted; no colder victim exists
                d.demote.push_back(victim);
                drop[victim] = 1;
                --nodeCount[nodeOf(victim)];
                --replicatedAfter;
                made = true;
                break;
            }
            if (!made)
                continue;
        }
        d.promote.push_back(page);
        ++replicatedAfter;
        ++nodeCount[node];
    }

    // --- Decay: halve all heat so stale hotness ages out. -----------
    // Collect keys first: FlatMap::erase backward-shifts slots, which
    // would break in-place iteration.
    std::vector<Addr> dead;
    for (auto &[page, heat] : heat_) {
        heat >>= 1;
        if (heat == 0)
            dead.push_back(page);
    }
    for (const Addr page : dead)
        heat_.erase(page);

    return d;
}

bool
ReplicationPolicy::canPromote(Addr page, const NodeOf &nodeOf) const
{
    if (replicated_.contains(page))
        return false;
    if (replicated_.size() >= globalBudget_)
        return false;
    if (cfg_.nodeBudget == std::numeric_limits<std::size_t>::max())
        return true;
    // Count this node's current occupancy. The replicated set is
    // budget-bounded, so the scan is small and always current even
    // after pool retargets.
    const std::uint64_t node = nodeOf(page);
    std::size_t onNode = 0;
    for (const auto &[p, unused] : replicated_) {
        (void)unused;
        if (nodeOf(p) == node)
            ++onNode;
    }
    return onNode < cfg_.nodeBudget;
}

void
ReplicationPolicy::notePromoted(Addr page)
{
    replicated_[page] = 1;
}

void
ReplicationPolicy::noteDemoted(Addr page)
{
    replicated_.erase(page);
}

} // namespace dve
