/**
 * @file
 * Tests for the baseline NUMA coherence engine: hit/miss paths, two-level
 * coherence, invalidation, writeback, classification, latency ordering,
 * and a randomized stress test with full value validation (which checks
 * the data-value invariant on every read) plus an SWMR sweep.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "coherence/engine.hh"
#include "common/rng.hh"

namespace dve
{
namespace
{

EngineConfig
smallConfig()
{
    EngineConfig cfg;
    cfg.l1Bytes = 1024;        // 16 lines: forces L1 traffic
    cfg.llcBytes = 16 * 1024;  // 256 lines: forces LLC evictions
    cfg.llcWays = 16;
    return cfg;
}

/** addr helper: page selects the home socket (page % 2). */
Addr
addrAt(unsigned page, unsigned line_in_page = 0)
{
    return Addr(page) * pageBytes + Addr(line_in_page) * lineBytes;
}

TEST(Engine, ColdReadReturnsZero)
{
    CoherenceEngine e(smallConfig());
    const auto r = e.access(0, 0, addrAt(0), false, 0, 0);
    EXPECT_EQ(r.value, 0u);
    EXPECT_GT(r.done, 0u);
}

TEST(Engine, WriteThenReadSameCore)
{
    CoherenceEngine e(smallConfig());
    const auto w = e.access(0, 0, addrAt(0), true, 42, 0);
    const auto r = e.access(0, 0, addrAt(0), false, 0, w.done);
    EXPECT_EQ(r.value, 42u);
    EXPECT_EQ(e.l1Hits(), 1u); // the read hits in L1
}

TEST(Engine, LatencyHierarchy)
{
    CoherenceEngine e(smallConfig());
    // Local miss: line homed at socket 0, accessed from socket 0.
    const auto local = e.access(0, 0, addrAt(0), false, 0, 0);
    // Remote miss: line homed at socket 1, accessed from socket 0.
    const auto remote = e.access(0, 0, addrAt(1), false, 0, 0);
    const Tick local_lat = local.done - 0;
    const Tick remote_lat = remote.done - 0;
    EXPECT_GT(remote_lat, local_lat);
    // Remote adds two inter-socket traversals (request + response).
    EXPECT_GE(remote_lat - local_lat, 2 * e.config().noc.interSocketLatency);

    // L1 hit is the cheapest of all.
    const Tick t = remote.done;
    const auto hit = e.access(0, 0, addrAt(0), false, 0, t);
    EXPECT_LT(hit.done - t, local_lat);
}

TEST(Engine, CrossSocketReadGetsDirtyData)
{
    CoherenceEngine e(smallConfig());
    const auto w = e.access(0, 0, addrAt(0), true, 77, 0);
    // Socket 1 reads: must fetch from socket 0's LLC (owner), line homed
    // at socket 0.
    const auto r = e.access(1, 0, addrAt(0), false, 0, w.done);
    EXPECT_EQ(r.value, 77u);
    // Directory at home should now be in O with both sockets sharing.
    DirEntry *d = e.directory(0).find(lineNum(addrAt(0)));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->state, LineState::O);
    EXPECT_TRUE(d->hasSharer(0));
    EXPECT_TRUE(d->hasSharer(1));
    EXPECT_EQ(d->owner, 0);
}

TEST(Engine, WriteInvalidatesRemoteReader)
{
    CoherenceEngine e(smallConfig());
    Tick t = 0;
    t = e.access(1, 0, addrAt(0), false, 0, t).done;    // s1 reads 0
    t = e.access(0, 0, addrAt(0), true, 5, t).done;     // s0 writes 5
    const auto r = e.access(1, 0, addrAt(0), false, 0, t);
    EXPECT_EQ(r.value, 5u); // stale copy was invalidated, refetches
}

TEST(Engine, PingPongWritesStayCoherent)
{
    CoherenceEngine e(smallConfig());
    Tick t = 0;
    for (std::uint64_t i = 1; i <= 10; ++i) {
        const unsigned s = i % 2;
        t = e.access(s, 0, addrAt(0), true, i, t).done;
        const auto r = e.access(1 - s, 0, addrAt(0), false, 0, t);
        t = r.done;
        EXPECT_EQ(r.value, i);
    }
}

TEST(Engine, LocalL1CoherenceViaLlc)
{
    CoherenceEngine e(smallConfig());
    Tick t = 0;
    t = e.access(0, 0, addrAt(0), true, 9, t).done;   // core 0 writes
    const auto r = e.access(0, 1, addrAt(0), false, 0, t); // core 1 reads
    EXPECT_EQ(r.value, 9u);
    t = r.done;
    // Core 1 writes: core 0's copy must be invalidated locally.
    t = e.access(0, 1, addrAt(0), true, 10, t).done;
    const auto r2 = e.access(0, 0, addrAt(0), false, 0, t);
    EXPECT_EQ(r2.value, 10u);
}

TEST(Engine, UpgradeAfterReadIsTwoDirectoryTransactions)
{
    CoherenceEngine e(smallConfig());
    Tick t = 0;
    t = e.access(0, 0, addrAt(0), false, 0, t).done; // GETS (miss)
    EXPECT_EQ(e.llcMisses(), 1u);
    t = e.access(0, 0, addrAt(0), true, 1, t).done;  // upgrade (GETX)
    EXPECT_EQ(e.llcMisses(), 2u);
    // Subsequent writes hit in L1.
    e.access(0, 0, addrAt(0), true, 2, t);
    EXPECT_EQ(e.l1Hits(), 1u);
}

TEST(Engine, ClassificationCounters)
{
    CoherenceEngine e(smallConfig());
    Tick t = 0;
    // GETS to I: private-read.
    t = e.access(0, 0, addrAt(0), false, 0, t).done;
    EXPECT_EQ(e.classCount(ReqClass::PrivateRead), 1u);
    // GETS to S from the other socket: read-only.
    t = e.access(1, 0, addrAt(0), false, 0, t).done;
    EXPECT_EQ(e.classCount(ReqClass::ReadOnly), 1u);
    // GETX to S: read-write.
    t = e.access(0, 0, addrAt(0), true, 1, t).done;
    EXPECT_EQ(e.classCount(ReqClass::ReadWrite), 1u);
    // GETX to I: private-read-write.
    t = e.access(0, 0, addrAt(2, 1), true, 1, t).done;
    EXPECT_EQ(e.classCount(ReqClass::PrivateReadWrite), 1u);
    // GETS to M: read-write.
    t = e.access(1, 0, addrAt(2, 1), false, 0, t).done;
    EXPECT_EQ(e.classCount(ReqClass::ReadWrite), 2u);
}

TEST(Engine, EvictionWritesBackDirtyData)
{
    EngineConfig cfg = smallConfig();
    cfg.llcBytes = 4 * 1024; // 64 lines, 16 ways, 4 sets
    CoherenceEngine e(cfg);
    Tick t = 0;
    const Addr victim = addrAt(0);
    t = e.access(0, 0, victim, true, 1234, t).done;

    // Stream enough same-set lines through socket 0 to force eviction.
    // Set index = line % 4; victim line is page 0 line 0 -> set 0.
    for (unsigned i = 1; i <= 20; ++i) {
        const Addr a = addrAt(2 * i, 0); // even pages home at socket 0
        if (lineNum(a) % 4 != lineNum(victim) % 4)
            continue;
        t = e.access(0, 0, a, false, 0, t).done;
    }
    // The dirty line must have been written back to home memory.
    EXPECT_EQ(e.memory(0).peek(victim), 1234u);
    EXPECT_GT(e.stats().get("writebacks"), 0.0);

    // And re-reading it returns the written value (from memory).
    const auto r = e.access(0, 0, victim, false, 0, t);
    EXPECT_EQ(r.value, 1234u);
}

TEST(Engine, InterSocketTrafficOnlyForRemoteActivity)
{
    CoherenceEngine e(smallConfig());
    Tick t = 0;
    // Socket-0 core touches only socket-0-homed pages.
    for (unsigned p = 0; p < 10; p += 2)
        t = e.access(0, 0, addrAt(p), true, p, t).done;
    EXPECT_EQ(e.interconnect().interSocketMessages(), 0u);

    // One remote access generates inter-socket traffic.
    e.access(0, 0, addrAt(1), false, 0, t);
    EXPECT_GT(e.interconnect().interSocketMessages(), 0u);
}

TEST(Engine, DueOnDoubleChipFaultBaseline)
{
    EngineConfig cfg = smallConfig();
    CoherenceEngine e(cfg);
    Tick t = 0;
    t = e.access(0, 0, addrAt(0), true, 55, t).done;
    // Force writeback so memory holds it, then evict: simpler to poke.
    // Read through a fresh engine path: inject the fault and invalidate
    // cached copies by writing from the other socket then back.
    for (unsigned chip : {1u, 7u}) {
        FaultDescriptor f;
        f.scope = FaultScope::Chip;
        f.socket = 0;
        f.chip = chip;
        e.faultRegistry().inject(f);
    }
    // Evict via remote write then local re-read from memory:
    t = e.access(1, 0, addrAt(0), true, 56, t).done; // s1 owns it
    // s1's dirty copy is in its LLC; force it home via another writer.
    // Simplest: peek path -- read from s0 fetches from s1 (no memory
    // involved, so no DUE yet).
    const auto r = e.access(0, 1, addrAt(0), false, 0, t);
    EXPECT_EQ(r.value, 56u);
    EXPECT_EQ(e.machineCheckExceptions(), 0u);
}

TEST(Engine, StressRandomTrafficValueValidated)
{
    // The strongest engine test: 16 cores hammer a small shared pool of
    // lines. cfg.validateValues makes every read assert the data-value
    // invariant; any coherence bug panics.
    EngineConfig cfg = smallConfig();
    cfg.validateValues = true;
    CoherenceEngine e(cfg);
    Rng rng(2024);

    std::vector<Addr> pool;
    for (unsigned p = 0; p < 8; ++p)
        for (unsigned l = 0; l < 8; ++l)
            pool.push_back(addrAt(p, l));

    std::vector<Tick> core_time(16, 0);
    for (int op = 0; op < 50000; ++op) {
        const unsigned c = static_cast<unsigned>(rng.next(16));
        const unsigned socket = c / 8;
        const Addr a = pool[rng.next(pool.size())];
        const bool w = rng.chance(0.35);
        const auto r = e.access(socket, c % 8, a, w,
                                rng.engine()(), core_time[c]);
        core_time[c] = r.done;
        // Keep core clocks loosely synchronized so "now" stays sane.
        const Tick max_t = *std::max_element(core_time.begin(),
                                             core_time.end());
        for (auto &t : core_time)
            t = std::max(t, max_t > 100000 ? max_t - 100000 : 0);
    }
    EXPECT_EQ(e.sdcReadsObserved(), 0u);

    // SWMR sweep: no line may be M/O-owned by two sockets.
    std::map<Addr, int> owners;
    for (unsigned s = 0; s < 2; ++s) {
        e.llc(s).forEach([&](Addr line, LlcEntry &le) {
            if (le.state == LineState::M || le.state == LineState::O) {
                EXPECT_EQ(owners.count(line), 0u)
                    << "two dirty owners for line " << line;
                owners[line] = static_cast<int>(s);
            }
        });
    }
    // Directory agreement: every owned line's home dir names that owner.
    for (const auto &[line, s] : owners) {
        DirEntry *d = e.directory(e.homeSocket(line)).find(line);
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(d->owner, s);
    }
}

TEST(Engine, StressIsDeterministic)
{
    auto run = [] {
        EngineConfig cfg = smallConfig();
        CoherenceEngine e(cfg);
        Rng rng(7);
        Tick t = 0;
        for (int op = 0; op < 5000; ++op) {
            const unsigned c = static_cast<unsigned>(rng.next(16));
            const Addr a = addrAt(rng.next(6), rng.next(4));
            t = e.access(c / 8, c % 8, a, rng.chance(0.3),
                         rng.engine()(), t)
                    .done;
        }
        return std::tuple{t, e.llcMisses(),
                          e.interconnect().interSocketBytes()};
    };
    EXPECT_EQ(run(), run());
}

TEST(Engine, StatsDumpIsDirectoryLayoutIndependent)
{
    // The home directory sits on a flat map whose iteration order
    // depends on its physical capacity. Force two very different
    // capacities, run the same workload with invariant sweeps armed,
    // and require byte-identical stat dumps: no output path may leak
    // map layout.
    auto run = [](std::size_t reserve_hint) {
        EngineConfig cfg = smallConfig();
        cfg.invariantChecks = true;
        CoherenceEngine e(cfg);
        if (reserve_hint) {
            for (unsigned s = 0; s < cfg.sockets; ++s)
                e.directory(s).reserve(reserve_hint);
        }
        Rng rng(11);
        Tick t = 0;
        for (int op = 0; op < 3000; ++op) {
            const unsigned c = static_cast<unsigned>(rng.next(16));
            const Addr a = addrAt(rng.next(6), rng.next(4));
            t = e.access(c / 8, c % 8, a, rng.chance(0.3),
                         rng.engine()(), t)
                    .done;
        }
        std::ostringstream os;
        e.dumpStats(os);
        return std::pair{os.str(), e.invariantViolations().size()};
    };
    const auto small = run(0);
    const auto big = run(1 << 15);
    EXPECT_EQ(small.first, big.first);
    EXPECT_EQ(small.second, big.second);
    EXPECT_EQ(small.second, 0u);
}

TEST(Engine, MirroredMemoryConfigRuns)
{
    EngineConfig cfg = smallConfig();
    cfg.mirror = MirrorMode::LoadBalance;
    CoherenceEngine e(cfg);
    Tick t = 0;
    for (unsigned i = 0; i < 50; ++i)
        t = e.access(0, 0, addrAt(0, i % 16), false, 0, t).done;
    EXPECT_GT(e.memory(0).dram(0).reads() + e.memory(0).dram(1).reads(),
              0u);
}

} // namespace
} // namespace dve
