
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/test_integration.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocol_check/CMakeFiles/dve_protocol_check.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/dve_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/dve_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dve_core.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/dve_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dve_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dve_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dve_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dve_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/dve_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/dve_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dve_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dve_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
