#include "dram/address_map.hh"

#include "common/logging.hh"

namespace dve
{

AddressMap::AddressMap(const DramConfig &cfg) : cfg_(cfg)
{
    dve_assert(cfg.rowBufferBytes % lineBytes == 0,
               "row buffer must hold whole lines");
    linesPerRow_ = cfg.rowBufferBytes / lineBytes;
    dve_assert(cfg.channels >= 1 && cfg.banksPerRank >= 1 &&
               cfg.ranksPerChannel >= 1, "degenerate DRAM organization");
}

DramCoord
AddressMap::decode(Addr a) const
{
    std::uint64_t n = lineNum(a);
    DramCoord c;
    c.channel = static_cast<unsigned>(n % cfg_.channels);
    n /= cfg_.channels;
    c.bank = static_cast<unsigned>(n % cfg_.banksPerRank);
    n /= cfg_.banksPerRank;
    c.column = static_cast<unsigned>(n % linesPerRow_);
    n /= linesPerRow_;
    c.rank = static_cast<unsigned>(n % cfg_.ranksPerChannel);
    n /= cfg_.ranksPerChannel;
    c.row = n % cfg_.rowsPerBank();
    return c;
}

Addr
AddressMap::encode(const DramCoord &c) const
{
    std::uint64_t n = c.row;
    n = n * cfg_.ranksPerChannel + c.rank;
    n = n * linesPerRow_ + c.column;
    n = n * cfg_.banksPerRank + c.bank;
    n = n * cfg_.channels + c.channel;
    return n << lineShift;
}

} // namespace dve
