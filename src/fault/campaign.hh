/**
 * @file
 * Seeded reliability-campaign harness.
 *
 * A campaign runs N independent trials per protection scheme. Each trial
 * builds a fresh engine, drives a seeded random workload over a small
 * footprint while a FaultLifecycleEngine injects faults on the same
 * timeline, periodically patrol-scrubs and runs the self-healing
 * maintenance pass (Dvé schemes), and finally drains the repair queue.
 * Per-access outcomes come from the SDC oracle (ReadOutcome): the trial
 * records how often the memory system returned clean, corrected, DUE or
 * silently corrupted data.
 *
 * Workload and fault seeds depend only on (campaign seed, trial index),
 * never on the scheme, so schemes face the same access pattern and the
 * same fault process; reports are deterministic byte-for-byte.
 */

#ifndef DVE_FAULT_CAMPAIGN_HH
#define DVE_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "coherence/types.hh"
#include "common/histogram.hh"
#include "core/dve_engine.hh"
#include "fault/lifecycle.hh"

namespace dve
{

/** Protection configurations a campaign compares. */
enum class CampaignScheme : std::uint8_t
{
    BaselineNone,   ///< no ECC: faults corrupt silently
    BaselineSecDed, ///< SEC-DED DIMMs, no replication
    BaselineDetect, ///< detection-only DSD, no replication: DUEs
    DveAllow,       ///< Dvé allow protocol on detection-only TSD
    DveDeny,        ///< Dvé deny protocol on detection-only TSD
    BaselinePreventive, ///< SEC-DED + preventive neighbor refresh
    // Appended (pool campaigns compare against the above without
    // renumbering the existing schemes in older reports):
    LocalChipkill,  ///< strong local Chipkill ECC, no replication
    TwoTier,        ///< weak local detect + far-memory pool replica
    // Appended for metadata-fault campaigns: the same Dvé deny engine
    // under the three metadata protection tiers.
    DveMetaNone,    ///< unprotected directory/RMT state: silent lies
    DveMetaParity,  ///< parity-detected metadata: lost entries, honesty
    DveMetaEcc,     ///< ECC-corrected metadata: consults self-heal
};

constexpr unsigned numCampaignSchemes = 11;

const char *campaignSchemeName(CampaignScheme s);

/**
 * Fabric-fault scenario layered on top of the DRAM-scope fault mix.
 * Each preset turns on one fabric arrival process in the lifecycle:
 * flapping links exercise retry + heal-back, lossy links exercise the
 * per-message drop/delay path, and socket-offline exercises permanent
 * degradation to single-copy service.
 */
enum class FabricScenario : std::uint8_t
{
    None,          ///< DRAM-scope faults only (PR 1 behaviour)
    LinkFlap,      ///< intermittent LinkDown episodes (link heals back)
    LossyLink,     ///< intermittent LinkLossy episodes (drops + delays)
    SocketOffline, ///< permanent whole-socket loss mid-campaign
    PoolOffline,   ///< permanent far-memory pool-node loss (heal-back)
    Partition,     ///< intermittent pool-fabric partition episodes
};

constexpr unsigned numFabricScenarios = 6;

const char *fabricScenarioName(FabricScenario s);

/** Inverse of fabricScenarioName; nullopt for unrecognized names. */
std::optional<FabricScenario> parseFabricScenario(const char *name);

/**
 * Read-disturbance (RowHammer) scenario. Unlike fabric scenarios these
 * are workload-driven: the trial hammers a fixed set of aggressor rows
 * in one bank while the DRAM activation counters decide when the
 * adjacent victim rows flip. `hammer-single` hammers an aggressor pair
 * that the top-K tables track exactly; `hammer-manysided` rotates more
 * aggressors than the tables have entries, exercising the spillover
 * floor; `hammer-under-refresh-pressure` shortens tREFI on top so
 * counter resets and refresh blackouts interleave with the attack.
 */
enum class DisturbScenario : std::uint8_t
{
    None,
    HammerSingle,
    HammerManySided,
    HammerUnderRefreshPressure,
};

constexpr unsigned numDisturbScenarios = 4;

const char *disturbScenarioName(DisturbScenario s);

/** Inverse of disturbScenarioName; nullopt for unrecognized names. */
std::optional<DisturbScenario> parseDisturbScenario(const char *name);

/**
 * On-demand replication-policy scenario: the workload shifts its hot
 * set (or the operator shrinks the replication budget) mid-trial and
 * the epoch-driven policy engine must chase it -- promoting the new hot
 * pages through the timed repair path and demoting cold pages with real
 * writeback storms -- without ever compromising honesty (SDC stays 0).
 */
enum class PolicyScenario : std::uint8_t
{
    None,          ///< policy disarmed: byte-identical legacy behaviour
    Diurnal,       ///< hot set alternates between two halves (4 phases)
    FlashCrowd,    ///< hot set jumps to fresh pages at half-run
    BudgetSqueeze, ///< global budget collapses mid-run (capacity crunch)
};

constexpr unsigned numPolicyScenarios = 4;

const char *policyScenarioName(PolicyScenario s);

/** Inverse of policyScenarioName; nullopt for unrecognized names. */
std::optional<PolicyScenario> parsePolicyScenario(const char *name);

/**
 * Metadata-fault scenario: the fault process targets the control plane
 * (home directory, replica-directory backing, RMT) instead of -- or on
 * top of -- the data arrays. The storm preset measures the metadata
 * story in isolation (ambient DRAM rates zeroed); the under-load preset
 * layers metadata corruption on the full field mix so scrub, rebuild
 * and data recovery compete for the same maintenance windows.
 */
enum class MetadataScenario : std::uint8_t
{
    None,              ///< metadata domain disarmed: legacy behaviour
    MetadataStorm,     ///< metadata arrivals only, high pressure
    MetadataUnderLoad, ///< metadata arrivals on top of the field mix
};

constexpr unsigned numMetadataScenarios = 3;

const char *metadataScenarioName(MetadataScenario s);

/** Inverse of metadataScenarioName; nullopt for unrecognized names. */
std::optional<MetadataScenario> parseMetadataScenario(const char *name);

/** Campaign shape. */
struct CampaignConfig
{
    unsigned trials = 100;
    std::uint64_t seed = 1;
    std::uint64_t opsPerTrial = 1500;
    unsigned footprintPages = 8;
    double writeFraction = 0.35;
    Tick scrubInterval = 150 * ticksPerUs;       ///< Dvé patrol scrub
    Tick maintenanceInterval = 60 * ticksPerUs;  ///< self-heal pass
    /** End-of-trial drain: maintenance windows run after the last op so
     *  backoffs expire and intermittents flap off before accounting. */
    unsigned drainRounds = 12;
    /** Worker threads for trial fan-out; 0 = DVE_BENCH_JOBS (which in
     *  turn defaults to hardware concurrency), 1 = legacy serial path.
     *  Never serialized into reports: results are merged in trial order,
     *  so the JSON is byte-identical at any job count. */
    unsigned jobs = 0;
    /** Fabric-fault scenario layered on the lifecycle rates per trial. */
    FabricScenario scenario = FabricScenario::None;
    /** Read-disturbance scenario (None = no hammering, no extra keys). */
    DisturbScenario disturb = DisturbScenario::None;
    /** Far-memory pool nodes for the two-tier scheme and the pool-scale
     *  fault scenarios. 0 = no pool tier: pool scopes never fire, the
     *  two-tier scheme degenerates, and no pool JSON keys are emitted. */
    unsigned poolNodes = 0;
    /** Replication-policy scenario (None = policy disarmed, no phased
     *  workload, no extra JSON keys). */
    PolicyScenario policyScenario = PolicyScenario::None;
    /** Metadata-fault scenario (None = metadata domain disarmed, no
     *  Metadata-scope arrivals, no extra JSON keys). */
    MetadataScenario metadataScenario = MetadataScenario::None;
    /** Per-trial wall-clock watchdog in milliseconds. 0 (default)
     *  disables the watchdog entirely -- no clock reads, reports stay
     *  byte-identical to earlier versions. When set, a trial that
     *  exceeds the budget stops issuing ops, is marked timed_out in the
     *  report, and the harness exits nonzero. A fired watchdog trades
     *  determinism for liveness by design: its results depend on
     *  wall-clock speed and must not be used as goldens. */
    std::uint64_t trialTimeoutMs = 0;
    LifecycleConfig lifecycle; ///< rates/shape; geometry + seed per trial
    EngineConfig engine;       ///< base system; scheme set per campaign
    DveConfig dve;             ///< Dvé knobs; protocol set per scheme

    /** Small, fast, high-fault-pressure shape for tests and CI. */
    static CampaignConfig quickDefaults();
};

/**
 * Shape @p cfg for a hammer scenario: arm the DRAM disturbance model,
 * shrink the caches so the attack actually reaches DRAM, widen the
 * footprint over the aggressor bank's rows, zero the ambient classical
 * fault rates (the disturbance story is measured in isolation) and
 * enable aggressor-aware frame retirement for the Dvé schemes.
 */
void applyDisturbPreset(CampaignConfig &cfg, DisturbScenario sc);

/** Scheme list a hammer campaign compares (adds preventive refresh). */
std::vector<CampaignScheme> disturbSchemes();

/**
 * Shape @p cfg for a pool-scale fault scenario: provision the far-memory
 * pool the two-tier scheme replicates onto. The fault mix itself comes
 * from applyScenario (PoolOffline / Partition arrival processes).
 */
void applyPoolPreset(CampaignConfig &cfg);

/** Scheme list a pool campaign compares: strong-local-ECC-only vs weak
 *  detect-only vs classic socket-replicated Dvé vs the two-tier
 *  disaggregated configuration. */
std::vector<CampaignScheme> poolSchemes();

/**
 * Shape @p cfg for a replication-policy scenario: switch the Dvé
 * schemes onto the RMT path (replicateAll off), arm the epoch-driven
 * policy with a budget smaller than the workload footprint, and run
 * long enough for several promotion/demotion epochs per phase. The
 * BudgetSqueeze preset starts with a roomier budget that runTrial
 * collapses at half-run.
 */
void applyPolicyPreset(CampaignConfig &cfg, PolicyScenario sc);

/** Scheme list a policy campaign compares: detection-only baseline vs
 *  policy-driven on-demand Dvé under both protocol families. */
std::vector<CampaignScheme> policySchemes();

/**
 * Shape @p cfg for a metadata-fault scenario: turn on the Metadata-scope
 * arrival process (storm additionally zeroes the ambient DRAM mix so
 * every observed outcome traces back to control-plane corruption). The
 * protection tier itself is per scheme, not per preset: the same fault
 * process hits meta-none, meta-parity and meta-ecc.
 */
void applyMetadataPreset(CampaignConfig &cfg, MetadataScenario sc);

/** Scheme list a metadata campaign compares: detection-only baseline
 *  (no metadata structures to corrupt) vs Dvé deny under the three
 *  metadata protection tiers. */
std::vector<CampaignScheme> metadataSchemes();

/** Everything one trial observed. */
struct TrialStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    // SDC-oracle outcome counts over all accesses.
    std::uint64_t clean = 0;
    std::uint64_t corrected = 0;
    std::uint64_t due = 0;
    std::uint64_t sdc = 0;
    // Fault process.
    std::uint64_t faultArrivals = 0;
    std::uint64_t transientFaults = 0;
    std::uint64_t intermittentFaults = 0;
    std::uint64_t permanentFaults = 0;
    // Dvé recovery pipeline (zero for baselines).
    std::uint64_t replicaRecoveries = 0;
    std::uint64_t repairedCopies = 0;
    std::uint64_t reReplications = 0;
    std::uint64_t retiredPages = 0;
    std::uint64_t repairRetries = 0;
    std::uint64_t degradedEvents = 0;
    std::uint64_t degradedLinesEnd = 0;
    std::uint64_t scrubCorrected = 0;
    double degradedResidencyTicks = 0.0;
    // Fabric escalation (zero for baselines and fault-free fabrics).
    std::uint64_t unavailableRequests = 0;
    std::uint64_t linkRetries = 0;
    std::uint64_t fabricDemotions = 0;
    std::uint64_t repairDeferrals = 0;
    std::uint64_t droppedMessages = 0;
    std::uint64_t failedSends = 0;
    // Read-disturbance pipeline (hammer campaigns only; their JSON keys
    // are emitted only when a disturb scenario is active).
    std::uint64_t disturbCrossings = 0;
    std::uint64_t preventiveRefreshes = 0;
    std::uint64_t preventiveStallTicks = 0;
    std::uint64_t disturbFaults = 0;
    std::uint64_t disturbRetirements = 0;
    // Far-memory pool tier (pool campaigns only; their JSON keys are
    // likewise emitted only when poolNodes > 0).
    std::uint64_t poolReplicaReads = 0;
    std::uint64_t poolReplicaWrites = 0;
    std::uint64_t poolRetargets = 0;
    // Metadata fault domain (metadata campaigns only; their JSON keys
    // are emitted only when a metadata scenario is active).
    std::uint64_t metaDetected = 0;
    std::uint64_t metaCorrected = 0;
    std::uint64_t metaLies = 0;
    std::uint64_t metaRebuilds = 0;
    std::uint64_t metaDemotions = 0;
    std::uint64_t metaForwards = 0;
    /** 1 when the wall-clock watchdog stopped this trial early; summed
     *  into totals as a timed-out trial count. Emitted (and possible)
     *  only when CampaignConfig::trialTimeoutMs > 0. */
    std::uint64_t timedOut = 0;
    // On-demand replication policy (policy campaigns only; their JSON
    // keys are emitted only when a policy scenario is active).
    std::uint64_t policyEpochs = 0;
    std::uint64_t policyPromotions = 0;
    std::uint64_t policyDemotions = 0;
    std::uint64_t policyDemotionsDeferred = 0;
    std::uint64_t policyDemotionWritebacks = 0;
    /** Promotion request-to-healed lag and per-demotion writeback-storm
     *  duration; merged bucket-wise like reqLatency so scheme totals are
     *  byte-identical at any job count. Empty unless the policy ran. */
    Histogram policyPromotionLag;
    Histogram policyDemotionWbWait;
    // Replay identity: the derived seeds this trial ran with and a digest
    // of the fault-event log. Together with the campaign config block the
    // trial is reproducible standalone from the report alone. Not
    // accumulated into totals.
    std::uint64_t engineSeed = 0;
    std::uint64_t faultSeed = 0;
    std::uint64_t workloadSeed = 0;
    std::uint64_t faultLogDigest = 0;
    std::vector<Tick> recoveryLatencies;
    /** End-to-end request latencies of every access the trial issued.
     *  Bucket counts merge exactly, so scheme totals are byte-identical
     *  at any job count. */
    Histogram reqLatency;
    /** Chrome trace_event JSON; non-empty only when the campaign's
     *  engine config enabled tracing (traceCapacity > 0). Per-trial
     *  replay identity, never accumulated. */
    std::string traceJson;

    /** Element-wise accumulate (latencies are concatenated). */
    void accumulate(const TrialStats &t);
};

/** Order statistics of a latency sample. */
struct LatencySummary
{
    std::uint64_t count = 0;
    Tick p50 = 0;
    Tick p95 = 0;
    Tick max = 0;
};

LatencySummary summarizeLatencies(std::vector<Tick> v);

/** All trials of one scheme plus aggregates. */
struct SchemeResult
{
    CampaignScheme scheme = CampaignScheme::BaselineNone;
    std::vector<TrialStats> trials;
    TrialStats totals;
    LatencySummary recovery;
    /** Digest of totals.reqLatency (all trials' accesses merged). */
    LatencyDigest reqLatencyDigest;
};

/** A full campaign run. */
struct CampaignReport
{
    CampaignConfig cfg;
    std::vector<SchemeResult> schemes;
};

/**
 * Executes trials; every public method is deterministic in the seed.
 *
 * Trials are independent -- each builds a fresh engine and derives its
 * RNG streams only from (campaign seed, trial index) -- so runScheme()
 * and run() fan them out over cfg.jobs worker threads and merge the
 * results in trial order. The report bytes never depend on the job
 * count or on completion order.
 */
class CampaignRunner
{
  public:
    explicit CampaignRunner(const CampaignConfig &cfg) : cfg_(cfg) {}

    TrialStats runTrial(CampaignScheme s, unsigned trial) const;
    SchemeResult runScheme(CampaignScheme s) const;
    CampaignReport run(const std::vector<CampaignScheme> &schemes) const;

  private:
    /** Resolved worker count (cfg.jobs, or DVE_BENCH_JOBS when 0). */
    unsigned effectiveJobs() const;

    /** Aggregate ordered per-trial results into a SchemeResult. */
    SchemeResult assemble(CampaignScheme s,
                          std::vector<TrialStats> &&trials) const;

    CampaignConfig cfg_;
};

/** Emit the report as deterministic JSON (stable key order, no floats
 *  formatted locale-dependently). */
void writeJsonReport(const CampaignReport &report, std::ostream &os);

} // namespace dve

#endif // DVE_FAULT_CAMPAIGN_HH
