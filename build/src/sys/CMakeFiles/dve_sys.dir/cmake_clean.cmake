file(REMOVE_RECURSE
  "CMakeFiles/dve_sys.dir/system.cc.o"
  "CMakeFiles/dve_sys.dir/system.cc.o.d"
  "libdve_sys.a"
  "libdve_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
