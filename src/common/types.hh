/**
 * @file
 * Fundamental scalar types and unit helpers shared by every subsystem.
 *
 * The simulator's global time base is the Tick, defined as one picosecond.
 * All component latencies (core cycles, DRAM timings, link hops) are
 * converted into Ticks at configuration time so that heterogeneous clock
 * domains compose without rounding surprises.
 */

#ifndef DVE_COMMON_TYPES_HH
#define DVE_COMMON_TYPES_HH

#include <cstdint>

namespace dve
{

/** Global simulation time unit: one picosecond. */
using Tick = std::uint64_t;

/** A physical (or replica-physical) byte address. */
using Addr = std::uint64_t;

/** An integral number of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Ticks per common wall-clock units. */
constexpr Tick ticksPerPs = 1;
constexpr Tick ticksPerNs = 1000;
constexpr Tick ticksPerUs = 1000 * ticksPerNs;
constexpr Tick ticksPerMs = 1000 * ticksPerUs;
constexpr Tick ticksPerSec = 1000 * ticksPerMs;

/** The largest representable tick, used as "never". */
constexpr Tick maxTick = ~Tick(0);

/**
 * A clock domain converting cycles to ticks.
 *
 * Constructed from a frequency in MHz; period is rounded to the nearest
 * picosecond (3.0 GHz -> 333 ps).
 */
class ClockDomain
{
  public:
    explicit constexpr ClockDomain(std::uint64_t freq_mhz)
        : periodTicks_((1000000 + freq_mhz / 2) / freq_mhz),
          freqMhz_(freq_mhz)
    {}

    /** Tick duration of one cycle. */
    constexpr Tick period() const { return periodTicks_; }

    /** Convert a cycle count in this domain to ticks. */
    constexpr Tick cyclesToTicks(Cycles c) const { return c * periodTicks_; }

    /** Ticks until the next edge at-or-after @p t, then @p c more cycles. */
    constexpr Tick
    nextEdgeAfter(Tick t, Cycles c) const
    {
        const Tick rem = t % periodTicks_;
        const Tick aligned = rem == 0 ? t : t + (periodTicks_ - rem);
        return aligned + cyclesToTicks(c);
    }

    constexpr std::uint64_t freqMhz() const { return freqMhz_; }

  private:
    Tick periodTicks_;
    std::uint64_t freqMhz_;
};

/** Convert nanoseconds (possibly fractional) to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(ticksPerNs) + 0.5);
}

/** Convert ticks to (fractional) nanoseconds, for reporting. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerNs);
}

/** Cache line size used throughout (bytes). */
constexpr unsigned lineBytes = 64;

/** log2(lineBytes). */
constexpr unsigned lineShift = 6;

/** Default OS page size used by the replica mapping (bytes). */
constexpr unsigned pageBytes = 4096;

/** log2(pageBytes). */
constexpr unsigned pageShift = 12;

/** Align an address down to its cache-line base. */
constexpr Addr lineAlign(Addr a) { return a & ~Addr(lineBytes - 1); }

/** Cache-line index of an address. */
constexpr Addr lineNum(Addr a) { return a >> lineShift; }

/** Align an address down to its page base. */
constexpr Addr pageAlign(Addr a) { return a & ~Addr(pageBytes - 1); }

/** Page number of an address. */
constexpr Addr pageNum(Addr a) { return a >> pageShift; }

} // namespace dve

#endif // DVE_COMMON_TYPES_HH
