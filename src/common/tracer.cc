#include "common/tracer.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace dve
{

namespace
{

const char *
kindName(TraceKind k)
{
    switch (k) {
      case TraceKind::Request: return "request";
      case TraceKind::Divert: return "divert";
      case TraceKind::Retry: return "retry";
      case TraceKind::Fence: return "fence";
      case TraceKind::EpochSwitch: return "epoch-switch";
      case TraceKind::FaultArrive: return "fault-arrive";
      case TraceKind::FaultHeal: return "fault-heal";
      case TraceKind::RepairBegin: return "repair-begin";
      case TraceKind::RepairEnd: return "repair-end";
      case TraceKind::InvariantViolation: return "invariant-violation";
    }
    return "unknown";
}

const char *
compName(TraceComp c)
{
    switch (c) {
      case TraceComp::Core: return "core";
      case TraceComp::Dve: return "dve";
      case TraceComp::Fabric: return "fabric";
      case TraceComp::Fault: return "fault";
    }
    return "unknown";
}

/** Ticks (ps) -> trace_event microseconds, fixed 6-digit format. */
std::string
fmtUs(Tick t)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64,
                  t / 1000000, t % 1000000);
    return buf;
}

} // namespace

std::vector<TraceRecord>
EventTracer::ordered() const
{
    std::vector<TraceRecord> out;
    out.reserve(ring_.size());
    if (head_ <= ring_.size()) {
        out = ring_;
    } else {
        const std::size_t start = head_ % capacity_;
        for (std::size_t i = 0; i < ring_.size(); ++i)
            out.push_back(ring_[(start + i) % capacity_]);
    }
    return out;
}

void
EventTracer::exportChromeTrace(std::ostream &os) const
{
    std::vector<TraceRecord> recs = ordered();
    // Stable: simultaneous events keep per-component emission order.
    std::stable_sort(recs.begin(), recs.end(),
                     [](const TraceRecord &x, const TraceRecord &y) {
                         return x.at < y.at;
                     });

    os << "{\n\"traceEvents\": [\n";
    bool first = true;
    for (const auto &r : recs) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\": \"" << kindName(r.kind) << "\", \"cat\": \""
           << compName(r.comp) << "\", \"ph\": \""
           << (r.dur > 0 ? 'X' : 'i') << "\", \"ts\": " << fmtUs(r.at);
        if (r.dur > 0)
            os << ", \"dur\": " << fmtUs(r.dur);
        else
            os << ", \"s\": \"t\"";
        os << ", \"pid\": " << unsigned(r.socket) << ", \"tid\": \""
           << compName(r.comp) << "\", \"args\": {\"a\": " << r.a
           << ", \"b\": " << r.b << "}}";
    }
    os << "\n],\n\"displayTimeUnit\": \"ns\",\n\"metadata\": {\"tool\": "
          "\"dve-tracer\", \"dropped_records\": "
       << dropped() << "}\n}\n";
}

} // namespace dve
