# Empty dependencies file for dve_core.
# This may be replaced when dependencies are built.
