file(REMOVE_RECURSE
  "libdve_reliability.a"
)
