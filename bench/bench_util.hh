/**
 * @file
 * Shared helpers for the experiment harnesses: trace-scale control,
 * scheme matrices, and geometric means over the paper's workload groups.
 *
 * Every harness accepts DVE_BENCH_SCALE (default varies per experiment)
 * to trade runtime for statistical weight; results are normalized, so
 * the paper-shape conclusions are stable across scales.
 */

#ifndef DVE_BENCH_BENCH_UTIL_HH
#define DVE_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sys/system.hh"

namespace dve
{
namespace bench
{

/** Trace scale from the environment, with a per-bench default. */
inline double
scaleFromEnv(double def)
{
    if (const char *s = std::getenv("DVE_BENCH_SCALE")) {
        const double v = std::atof(s);
        if (v > 0)
            return v;
    }
    return def;
}

/** Geometric mean of a vector of positive values. */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

/** Geomean of the first @p n entries. */
inline double
geomeanTop(const std::vector<double> &v, std::size_t n)
{
    std::vector<double> head(v.begin(),
                             v.begin() + std::min(n, v.size()));
    return geomean(head);
}

/** Build a Table II system for one scheme (optionally tweaked). */
inline SystemConfig
paperConfig(SchemeKind scheme)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    return cfg;
}

/** Run one workload on a fresh system of the given scheme. */
inline RunResult
runScheme(SchemeKind scheme, const WorkloadProfile &wl, double scale,
          const SystemConfig *base = nullptr)
{
    SystemConfig cfg = base ? *base : paperConfig(scheme);
    cfg.scheme = scheme;
    System sys(cfg);
    return sys.run(wl, scale);
}

inline void
printHeader(const char *title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title);
}

} // namespace bench
} // namespace dve

#endif // DVE_BENCH_BENCH_UTIL_HH
