/**
 * @file
 * Explicit-state BFS explorer over the protocol model: the Murphi-style
 * verification pass of Sec. V-C4.
 *
 * Explores every interleaving of spontaneous cache operations (bounded
 * per cache) and channel deliveries, deduplicating states by their byte
 * encoding, and checks on every reachable state:
 *  - the safety invariants (SWMR, data value, memory/replica currency);
 *  - deadlock freedom: a non-quiescent state must have a successor.
 *
 * On a violation the checker reconstructs and reports the action trace
 * from the initial state.
 */

#ifndef DVE_PROTOCOL_CHECK_CHECKER_HH
#define DVE_PROTOCOL_CHECK_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "protocol_check/model.hh"

namespace dve
{
namespace pcheck
{

/** Exploration outcome. */
struct CheckResult
{
    bool ok = false;
    /** The max_states safety valve stopped exploration: the run proved
     *  nothing either way. Distinct from a violation -- a capped
     *  mutation check must NOT count as "bug detected", and a capped
     *  shipping-protocol check must NOT count as a pass. */
    bool capped = false;
    std::uint64_t statesExplored = 0;
    std::uint64_t transitions = 0;
    std::uint64_t quiescentStates = 0;
    std::string violation;            ///< empty when ok
    std::vector<std::string> trace;   ///< actions from init to violation

    /** One-line summary for harness output. */
    std::string summary() const;

    /** Deterministic JSON object (one line, no trailing newline). */
    std::string toJson() const;
};

/**
 * Exhaustively explore @p cfg.
 * @param max_states safety valve against configuration blowups.
 */
CheckResult explore(const ModelConfig &cfg,
                    std::uint64_t max_states = 50'000'000);

} // namespace pcheck
} // namespace dve

#endif // DVE_PROTOCOL_CHECK_CHECKER_HH
