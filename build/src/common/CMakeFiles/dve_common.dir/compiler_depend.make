# Empty compiler generated dependencies file for dve_common.
# This may be replaced when dependencies are built.
