file(REMOVE_RECURSE
  "libdve_energy.a"
)
