file(REMOVE_RECURSE
  "libdve_core.a"
)
