# Empty compiler generated dependencies file for ablation_dve.
# This may be replaced when dependencies are built.
