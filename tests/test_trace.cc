/**
 * @file
 * Tests for the trace format, serialization, the workload profile table,
 * and statistical properties of generated traces.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "trace/trace.hh"
#include "trace/workloads.hh"

namespace dve
{
namespace
{

TEST(TraceIo, RoundTrip)
{
    ThreadTraces traces(2);
    traces[0] = {{OpType::Compute, 5, 0},
                 {OpType::Read, 1, 0x1000},
                 {OpType::Write, 1, 0x1040},
                 {OpType::Barrier, 7, 0}};
    traces[1] = {{OpType::Lock, 3, 0},
                 {OpType::Unlock, 3, 0},
                 {OpType::Barrier, 7, 0}};

    std::stringstream ss;
    writeTraces(ss, traces);
    const auto back = readTraces(ss);
    ASSERT_EQ(back.size(), traces.size());
    EXPECT_EQ(back[0], traces[0]);
    EXPECT_EQ(back[1], traces[1]);
}

TEST(TraceIo, RejectsGarbage)
{
    std::stringstream ss("not a trace");
    EXPECT_THROW(readTraces(ss), std::runtime_error);
}

TEST(TraceIo, Totals)
{
    ThreadTraces traces(1);
    traces[0] = {{OpType::Read, 1, 0},
                 {OpType::Compute, 9, 0},
                 {OpType::Write, 1, 64}};
    EXPECT_EQ(totalOps(traces), 3u);
    EXPECT_EQ(totalMemOps(traces), 2u);
}

TEST(Workloads, TableHasTwentyNamedBenchmarks)
{
    const auto &table = table3Workloads();
    ASSERT_EQ(table.size(), 20u);
    // Paper's top-10 (Fig 6 order head).
    EXPECT_EQ(table[0].name, "backprop");
    EXPECT_EQ(table[1].name, "graph500");
    EXPECT_EQ(table[9].name, "streamcluster");
    // One of each remaining suite present.
    EXPECT_EQ(workloadByName("lbm").suite, "spec2017");
    EXPECT_EQ(workloadByName("bt").suite, "nas");
    EXPECT_THROW(workloadByName("nosuch"), std::runtime_error);
}

TEST(Workloads, Top10AreSharedReadDominated)
{
    const auto &table = table3Workloads();
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_GE(table[i].sharedFraction, 0.75) << table[i].name;
        EXPECT_LE(table[i].sharedWriteFraction, 0.2) << table[i].name;
    }
    for (std::size_t i = 10; i < 20; ++i) {
        // The bottom-10 carry heavy private read/write traffic.
        EXPECT_LE(table[i].sharedFraction, 0.5) << table[i].name;
        EXPECT_GE(table[i].privateWriteFraction, 0.5) << table[i].name;
    }
}

TEST(Workloads, MpkiProxyIsRoughlyDescending)
{
    // Shared-bytes / computePerMem is the dominant MPKI lever; verify the
    // table is ordered high to low on this proxy (allowing small local
    // inversions).
    const auto &table = table3Workloads();
    const auto proxy = [](const WorkloadProfile &p) {
        return static_cast<double>(p.sharedBytes) / p.computePerMem;
    };
    EXPECT_GT(proxy(table[0]), proxy(table[10]));
    EXPECT_GT(proxy(table[5]), proxy(table[15]));
    EXPECT_GT(proxy(table[9]), proxy(table[19]));
}

TEST(Generator, Deterministic)
{
    const auto &p = workloadByName("fft");
    const auto a = generateTraces(p, 4, 0.1);
    const auto b = generateTraces(p, 4, 0.1);
    EXPECT_EQ(a, b);
}

TEST(Generator, ThreadsDiffer)
{
    const auto &p = workloadByName("graph500");
    const auto t = generateTraces(p, 2, 0.1);
    EXPECT_NE(t[0], t[1]);
}

TEST(Generator, ScaleControlsLength)
{
    const auto &p = workloadByName("bfs");
    const auto small = generateTraces(p, 1, 0.01);
    const auto big = generateTraces(p, 1, 0.1);
    EXPECT_GT(totalMemOps(big), 5 * totalMemOps(small));
}

TEST(Generator, WriteFractionRoughlyMatchesProfile)
{
    const auto &p = workloadByName("xsbench"); // very read-heavy
    const auto t = generateTraces(p, 4, 0.5);
    std::uint64_t reads = 0, writes = 0;
    for (const auto &th : t) {
        for (const auto &op : th) {
            reads += op.type == OpType::Read;
            writes += op.type == OpType::Write;
        }
    }
    const double wf =
        static_cast<double>(writes) / static_cast<double>(reads + writes);
    // Expected: shared 0.9 * 0.01 + private 0.1 * 0.15 ~ 2.4%.
    EXPECT_LT(wf, 0.06);
    EXPECT_GT(wf, 0.005);
}

TEST(Generator, BarrierIdsAlignAcrossThreads)
{
    const auto &p = workloadByName("fft"); // has barriers
    const auto t = generateTraces(p, 4, 1.0);
    std::vector<std::vector<std::uint32_t>> ids(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        for (const auto &op : t[i]) {
            if (op.type == OpType::Barrier)
                ids[i].push_back(op.arg);
        }
    }
    ASSERT_GT(ids[0].size(), 1u);
    for (std::size_t i = 1; i < ids.size(); ++i)
        EXPECT_EQ(ids[i], ids[0]) << "thread " << i;
}

TEST(Generator, LocksComeInBalancedPairs)
{
    const auto &p = workloadByName("canneal"); // has locks
    const auto t = generateTraces(p, 4, 1.0);
    for (const auto &th : t) {
        std::map<std::uint32_t, int> depth;
        for (const auto &op : th) {
            if (op.type == OpType::Lock) {
                EXPECT_EQ(depth[op.arg], 0) << "recursive lock";
                ++depth[op.arg];
            } else if (op.type == OpType::Unlock) {
                --depth[op.arg];
                EXPECT_EQ(depth[op.arg], 0) << "unlock without lock";
            }
        }
        for (const auto &[id, d] : depth)
            EXPECT_EQ(d, 0) << "lock " << id << " left held";
    }
}

TEST(Generator, AddressesRespectRegions)
{
    const auto &p = workloadByName("comd");
    const auto t = generateTraces(p, 2, 0.2);
    for (std::size_t tid = 0; tid < t.size(); ++tid) {
        for (const auto &op : t[tid]) {
            if (op.type != OpType::Read && op.type != OpType::Write)
                continue;
            const bool in_shared =
                op.addr >= 0x1000'0000
                && op.addr < 0x1000'0000 + p.sharedBytes;
            const Addr priv_base = 0x8000'0000 + Addr(tid) * 0x0400'0000;
            const bool in_private = op.addr >= priv_base
                                    && op.addr < priv_base + p.privateBytes;
            EXPECT_TRUE(in_shared || in_private)
                << std::hex << op.addr;
        }
    }
}

TEST(Generator, EndsWithJoinBarrier)
{
    const auto t = generateTraces(workloadByName("lbm"), 3, 0.05);
    for (const auto &th : t) {
        ASSERT_FALSE(th.empty());
        EXPECT_EQ(th.back().type, OpType::Barrier);
        EXPECT_EQ(th.back().arg, 0xFFFFFFFFu);
    }
}

} // namespace
} // namespace dve
