/**
 * @file
 * Tests for the DRAM energy model and EDP computation.
 */

#include <gtest/gtest.h>

#include "energy/dram_energy.hh"

namespace dve
{
namespace
{

TEST(Energy, IdleModuleHasOnlyBackground)
{
    DramEnergyModel model;
    DramModule m("m", DramConfig{});
    const Tick hour_ish = 1000 * ticksPerUs; // 1 ms
    const double e = model.moduleEnergyNj(m, hour_ish);
    const auto &p = model.params();
    const double expect =
        (p.backgroundMwPerRank + p.refreshMwPerRank) * 1 /*rank*/
        * 1e-3 /*s*/ * 1e6; // mW*s -> nJ
    EXPECT_NEAR(e, expect, expect * 1e-9);
}

TEST(Energy, DynamicEnergyScalesWithActivity)
{
    DramEnergyModel model;
    DramModule a("a", DramConfig{});
    DramModule b("b", DramConfig{});
    Tick t = 0;
    for (int i = 0; i < 100; ++i)
        t = b.access(Addr(i) * 64 * 16 * 16, false, t).readyAt; // conflicts
    const Tick window = t;
    const double ea = model.moduleEnergyNj(a, window);
    const double eb = model.moduleEnergyNj(b, window);
    EXPECT_GT(eb, ea);
    const auto &p = model.params();
    EXPECT_NEAR(eb - ea,
                p.actPrechargeNj * static_cast<double>(b.activates())
                    + p.readBurstNj * static_cast<double>(b.reads()),
                1e-6);
}

TEST(Energy, TwoChannelModuleHasDoubleBackground)
{
    DramEnergyModel model;
    DramModule one("one", DramConfig::ddr4Baseline());
    DramModule two("two", DramConfig::ddr4Replicated());
    const Tick w = 1000 * ticksPerUs;
    EXPECT_NEAR(model.moduleEnergyNj(two, w),
                2 * model.moduleEnergyNj(one, w), 1e-6);
}

TEST(Energy, MemoryEdpDefinition)
{
    DramEnergyModel model;
    // 1 J over 1 s -> EDP 1 J*s.
    EXPECT_NEAR(model.memoryEdp(1e9, ticksPerSec), 1.0, 1e-12);
    // Halving time quarters EDP at constant power (E halves too).
    EXPECT_NEAR(model.memoryEdp(0.5e9, ticksPerSec / 2), 0.25, 1e-12);
}

TEST(Energy, SystemEdpRewardsSpeedupsDespiteHigherMemoryPower)
{
    // The paper's energy result in miniature: doubling memory power but
    // finishing 15% faster lowers *system* EDP because memory is only
    // ~18% of system power.
    DramEnergyModel model;
    const Tick base_t = ticksPerSec;
    const double base_mem_nj = 1e9; // 1 J over 1 s -> 1 W memory

    const double base_edp =
        model.systemEdp(base_mem_nj, base_t, base_mem_nj, base_t);

    const Tick fast_t = static_cast<Tick>(0.85 * ticksPerSec);
    const double fast_mem_nj = 2e9 * 0.85; // 2 W memory for 0.85 s
    const double fast_edp =
        model.systemEdp(fast_mem_nj, fast_t, base_mem_nj, base_t);

    EXPECT_LT(fast_edp, base_edp);
}

TEST(Energy, SystemEdpPenalizesPowerAtEqualTime)
{
    DramEnergyModel model;
    const Tick t = ticksPerSec;
    const double base = model.systemEdp(1e9, t, 1e9, t);
    const double hot = model.systemEdp(2e9, t, 1e9, t);
    EXPECT_GT(hot, base);
    // Memory is 18% of system power: doubling it adds 18% to power.
    EXPECT_NEAR(hot / base, 1.18, 1e-9);
}

} // namespace
} // namespace dve
