/**
 * @file
 * Quickstart: build a baseline NUMA machine and a Dvé machine, run the
 * same workload on both, and compare runtime, inter-socket traffic and
 * reliability posture.
 *
 *   $ ./build/examples/quickstart [workload] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "sys/system.hh"

using namespace dve;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "xsbench";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.2;
    const WorkloadProfile &wl = workloadByName(name);

    std::printf("Dvé quickstart: workload '%s' (suite %s), 16 threads, "
                "2 sockets\n\n",
                wl.name.c_str(), wl.suite.c_str());

    // 1) The baseline: a 2-socket NUMA machine with Chipkill DIMMs.
    SystemConfig base_cfg;
    base_cfg.scheme = SchemeKind::BaselineNuma;
    System baseline(base_cfg);
    const RunResult base = baseline.run(wl, scale);

    // 2) Dvé: the same machine with coherent replication (dynamic
    //    protocol), using the extra channel per socket for replicas.
    SystemConfig dve_cfg;
    dve_cfg.scheme = SchemeKind::DveDynamic;
    System dve(dve_cfg);
    const RunResult rep = dve.run(wl, scale);

    auto ns = [](Tick t) { return ticksToNs(t) / 1000.0; };
    std::printf("%-22s %14s %14s\n", "", "baseline-numa", "dve-dynamic");
    std::printf("%-22s %11.1f us %11.1f us\n", "ROI runtime",
                ns(base.roiTime), ns(rep.roiTime));
    std::printf("%-22s %14.1f %14.1f\n", "LLC MPKI", base.mpki,
                rep.mpki);
    std::printf("%-22s %11.1f KB %11.1f KB\n", "inter-socket traffic",
                base.interSocketBytes / 1024.0,
                rep.interSocketBytes / 1024.0);
    std::printf("%-22s %14s %14.0f\n", "replica-local reads", "-",
                rep.extra.at("replica_local_reads"));
    std::printf("\nSpeedup: %.2fx   traffic: %.1f%% of baseline\n",
                double(base.roiTime) / double(rep.roiTime),
                100.0 * double(rep.interSocketBytes)
                    / double(base.interSocketBytes));

    std::printf("\nReliability posture: every dirty line is written to "
                "two sockets'\nmemories synchronously; a detected-"
                "uncorrectable error on either copy is\nrecovered from "
                "the other (see examples/fault_injection).\n");
    return 0;
}
