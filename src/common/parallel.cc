#include "common/parallel.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"

namespace dve
{

namespace
{

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace

unsigned
jobsFromEnv()
{
    const char *s = std::getenv("DVE_BENCH_JOBS");
    if (!s || !*s)
        return defaultJobs();
    char *end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    // Full-string validation: "4" parses, "4x" / "3.5" / "-2" do not
    // (strtoul would silently accept the first and wrap the last).
    if (end == s || *end != '\0' || std::isspace(
            static_cast<unsigned char>(*s)) || s[0] == '-' || v < 1) {
        dve_warn("DVE_BENCH_JOBS='", s, "' is not a whole number >= 1; ",
                 "using ", defaultJobs());
        return defaultJobs();
    }
    return static_cast<unsigned>(v);
}

ThreadPool::ThreadPool(unsigned jobs, std::size_t max_queued)
    : max_queued_(max_queued ? max_queued : 1)
{
    if (jobs < 1)
        jobs = 1;
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lk(mutex_);
        space_ready_.wait(lk,
                          [this] { return queue_.size() < max_queued_; });
        queue_.push_back(std::move(task));
    }
    task_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(mutex_);
    idle_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            task_ready_.wait(
                lk, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_, nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        space_ready_.notify_one();
        task();
        {
            std::lock_guard<std::mutex> lk(mutex_);
            --running_;
            if (queue_.empty() && running_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace dve
