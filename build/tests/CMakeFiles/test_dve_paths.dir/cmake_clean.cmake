file(REMOVE_RECURSE
  "CMakeFiles/test_dve_paths.dir/test_dve_paths.cc.o"
  "CMakeFiles/test_dve_paths.dir/test_dve_paths.cc.o.d"
  "test_dve_paths"
  "test_dve_paths.pdb"
  "test_dve_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dve_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
