# Empty compiler generated dependencies file for energy_edp.
# This may be replaced when dependencies are built.
