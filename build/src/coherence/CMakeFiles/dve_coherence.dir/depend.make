# Empty dependencies file for dve_coherence.
# This may be replaced when dependencies are built.
