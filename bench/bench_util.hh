/**
 * @file
 * Shared helpers for the experiment harnesses: trace-scale control,
 * parallel scheme x workload sweeps, and geometric means over the
 * paper's workload groups.
 *
 * Every harness accepts DVE_BENCH_SCALE (default varies per experiment)
 * to trade runtime for statistical weight; results are normalized, so
 * the paper-shape conclusions are stable across scales. DVE_BENCH_JOBS
 * fans the sweep points out over worker threads (default: hardware
 * concurrency; 1 = serial): each point builds its own System, and
 * results come back ordered by point index, so the printed tables are
 * identical at any job count.
 */

#ifndef DVE_BENCH_BENCH_UTIL_HH
#define DVE_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "sys/system.hh"

namespace dve
{
namespace bench
{

/**
 * Trace scale from the environment, with a per-bench default.
 *
 * DVE_BENCH_SCALE must be a positive number with no trailing garbage:
 * "0.5" parses, "2x" or "fast" warn and fall back to the default
 * (std::atof used to silently read "2x" as 2 and map garbage to 0).
 */
inline double
scaleFromEnv(double def)
{
    const char *s = std::getenv("DVE_BENCH_SCALE");
    if (!s || !*s)
        return def;
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || !std::isfinite(v) || v <= 0) {
        dve_warn("DVE_BENCH_SCALE='", s,
                 "' is not a positive number; using ", def);
        return def;
    }
    return v;
}

/**
 * Geometric mean of a vector of positive values.
 *
 * Input contract: entries must be positive (they are ratios -- speedups,
 * normalized traffic, EDP). Non-positive entries would silently turn
 * the whole mean into NaN/-inf via std::log, poisoning every normalized
 * figure downstream; instead they are skipped with a warning. An empty
 * (or fully skipped) input returns 0.0 -- a recognizable "no data"
 * sentinel, since no genuine ratio geomean is 0.
 */
inline double
geomean(const std::vector<double> &v)
{
    double log_sum = 0;
    std::size_t n = 0;
    for (double x : v) {
        if (!(x > 0) || !std::isfinite(x)) {
            dve_warn("geomean: skipping non-positive entry ", x);
            continue;
        }
        log_sum += std::log(x);
        ++n;
    }
    if (n == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(n));
}

/** Geomean of the first @p n entries (same input contract). */
inline double
geomeanTop(const std::vector<double> &v, std::size_t n)
{
    std::vector<double> head(v.begin(),
                             v.begin() + std::min(n, v.size()));
    return geomean(head);
}

/** Build a Table II system for one scheme (optionally tweaked). */
inline SystemConfig
paperConfig(SchemeKind scheme)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    return cfg;
}

/** Run one workload on a fresh system of the given scheme. */
inline RunResult
runScheme(SchemeKind scheme, const WorkloadProfile &wl, double scale,
          const SystemConfig *base = nullptr)
{
    SystemConfig cfg = base ? *base : paperConfig(scheme);
    cfg.scheme = scheme;
    System sys(cfg);
    return sys.run(wl, scale);
}

/**
 * Evaluate @p n independent sweep points -- typically a flattened
 * scheme x workload matrix -- in parallel, returning results ordered by
 * point index.
 *
 * @p point is called with indices 0..n-1 and must be safe to run
 * concurrently: build a fresh System per call (runScheme() does) and
 * derive any randomness from the index alone. DVE_BENCH_JOBS picks the
 * worker count; jobs=1 reproduces the legacy serial loop exactly, and
 * because results are merged by index, the harness output is identical
 * either way.
 */
template <typename Fn>
auto
runMatrix(std::size_t n, Fn &&point)
    -> std::vector<decltype(point(std::size_t{0}))>
{
    return parallelMap(n, std::forward<Fn>(point), jobsFromEnv());
}

inline void
printHeader(const char *title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title);
}

} // namespace bench
} // namespace dve

#endif // DVE_BENCH_BENCH_UTIL_HH
