/**
 * @file
 * Cross-module integration tests: full workloads running over every
 * scheme, fault storms during execution, detection-scheme pairings
 * (Dvé+DSD / Dvé+TSD / Dvé+Chipkill), 4-socket machines, and
 * end-to-end determinism.
 */

#include <gtest/gtest.h>

#include "sys/system.hh"

namespace dve
{
namespace
{

SystemConfig
quick(SchemeKind k)
{
    SystemConfig cfg;
    cfg.scheme = k;
    cfg.engine.l1Bytes = 4 * 1024;
    cfg.engine.llcBytes = 256 * 1024;
    return cfg;
}

class AllSchemesTest : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(AllSchemesTest, WorkloadRunsCleanlyAndValueValidated)
{
    System sys(quick(GetParam()));
    const auto r = sys.run(workloadByName("canneal"), 0.04);
    EXPECT_GT(r.memOps, 0u);
    EXPECT_GT(r.roiTime, 0u);
    EXPECT_EQ(sys.engine().sdcReadsObserved(), 0u);
    EXPECT_EQ(r.extra.count("machine_checks") ? r.extra.at("machine_checks")
                                              : 0.0,
              0.0);
}

TEST_P(AllSchemesTest, SurvivesSingleChipFaultMidRun)
{
    SystemConfig cfg = quick(GetParam());
    System sys(cfg);
    // A hard chip fault present for the whole run: Chipkill corrects
    // locally everywhere, so no scheme may lose data or corrupt values.
    FaultDescriptor f;
    f.scope = FaultScope::Chip;
    f.socket = 0;
    f.chip = 4;
    sys.engine().faultRegistry().inject(f);

    const auto r = sys.run(workloadByName("bfs"), 0.04);
    EXPECT_EQ(sys.engine().machineCheckExceptions(), 0u);
    EXPECT_EQ(sys.engine().sdcReadsObserved(), 0u);
    EXPECT_GT(r.memOps, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllSchemesTest,
    ::testing::Values(SchemeKind::BaselineNuma, SchemeKind::IntelMirror,
                      SchemeKind::IntelMirrorPlus, SchemeKind::DveAllow,
                      SchemeKind::DveDeny, SchemeKind::DveDynamic),
    [](const auto &info) {
        std::string n = schemeKindName(info.param);
        for (auto &c : n)
            if (c == '-' || c == '+')
                c = '_';
        return n;
    });

TEST(Integration, DveSurvivesControllerFaultMidRunBaselineDoesNot)
{
    // The headline end-to-end contrast: kill socket 0's memory
    // controller mid-workload.
    auto run = [](SchemeKind k) {
        SystemConfig cfg = quick(k);
        cfg.engine.validateValues = false; // baseline will lose data
        System sys(cfg);
        FaultDescriptor f;
        f.scope = FaultScope::Controller;
        f.socket = 0;
        sys.engine().faultRegistry().inject(f);
        sys.run(workloadByName("mg"), 0.03);
        return sys.engine().machineCheckExceptions();
    };
    EXPECT_GT(run(SchemeKind::BaselineNuma), 0u);
    EXPECT_EQ(run(SchemeKind::DveDeny), 0u);
}

TEST(Integration, DveWithDetectOnlyCodesStillRecovers)
{
    // Dvé+DSD: detection-only ECC; even a single chip fault is locally
    // uncorrectable and must heal through the replica.
    SystemConfig cfg = quick(SchemeKind::DveDeny);
    cfg.engine.scheme = Scheme::DsdDetect;
    System sys(cfg);
    FaultDescriptor f;
    f.scope = FaultScope::Chip;
    f.socket = 0;
    f.chip = 2;
    sys.engine().faultRegistry().inject(f);
    sys.run(workloadByName("histo"), 0.03);
    EXPECT_EQ(sys.engine().machineCheckExceptions(), 0u);
    EXPECT_EQ(sys.engine().sdcReadsObserved(), 0u);
    EXPECT_GT(sys.dveEngine()->replicaRecoveries(), 0u);
}

TEST(Integration, DveWithTsdDetection)
{
    SystemConfig cfg = quick(SchemeKind::DveDynamic);
    cfg.engine.scheme = Scheme::TsdDetect;
    System sys(cfg);
    // Three simultaneous chip faults: within TSD's guaranteed envelope.
    for (unsigned chip : {0u, 5u, 12u}) {
        FaultDescriptor f;
        f.scope = FaultScope::Chip;
        f.socket = 1;
        f.chip = chip;
        sys.engine().faultRegistry().inject(f);
    }
    sys.run(workloadByName("lu"), 0.03);
    EXPECT_EQ(sys.engine().machineCheckExceptions(), 0u);
    EXPECT_EQ(sys.engine().sdcReadsObserved(), 0u);
}

TEST(Integration, FourSocketMachineRunsAllSchemes)
{
    for (SchemeKind k :
         {SchemeKind::BaselineNuma, SchemeKind::DveDeny,
          SchemeKind::DveAllow}) {
        SystemConfig cfg = quick(k);
        cfg.engine.sockets = 4;
        cfg.threads = 32;
        System sys(cfg);
        const auto r = sys.run(workloadByName("stencil"), 0.03);
        EXPECT_GT(r.memOps, 0u) << schemeKindName(k);
        EXPECT_EQ(sys.engine().sdcReadsObserved(), 0u)
            << schemeKindName(k);
    }
}

TEST(Integration, IntelMirrorSurvivesOneChannelNotController)
{
    SystemConfig cfg = quick(SchemeKind::IntelMirror);
    cfg.engine.validateValues = false;
    {
        System sys(cfg);
        FaultDescriptor f;
        f.scope = FaultScope::Channel;
        f.socket = 0;
        f.channel = 0; // primary copy's channel
        sys.engine().faultRegistry().inject(f);
        sys.run(workloadByName("comd"), 0.03);
        EXPECT_EQ(sys.engine().machineCheckExceptions(), 0u);
    }
    {
        // But the single controller is its Achilles heel (paper Sec. II).
        System sys(cfg);
        FaultDescriptor f;
        f.scope = FaultScope::Controller;
        f.socket = 0;
        sys.engine().faultRegistry().inject(f);
        sys.run(workloadByName("comd"), 0.03);
        EXPECT_GT(sys.engine().machineCheckExceptions(), 0u);
    }
}

TEST(Integration, ScrubIntervalKeepsTransientStormSurvivable)
{
    // Periodic scrubbing between fault arrivals: each transient pair is
    // repaired before the next can join it (the scrub-interval
    // assumption behind Table I's rates).
    SystemConfig cfg = quick(SchemeKind::DveDeny);
    System sys(cfg);
    auto *dve = sys.dveEngine();
    Tick t = 0;
    for (unsigned p = 0; p < 8; ++p)
        t = dve->access(0, 0, Addr(p) * pageBytes, true, p, t).done;

    for (unsigned round = 0; round < 4; ++round) {
        FaultDescriptor f;
        f.scope = FaultScope::Chip;
        f.socket = round % 2;
        f.chip = 1 + round;
        f.transient = true;
        dve->faultRegistry().inject(f);
        const auto rep = dve->patrolScrub(t);
        t = rep.finishedAt;
        EXPECT_EQ(rep.dataLost, 0u) << "round " << round;
        EXPECT_EQ(dve->faultRegistry().activeCount(), 0u);
    }
    EXPECT_EQ(dve->machineCheckExceptions(), 0u);
}

TEST(Integration, RunResultsAreDeterministicPerScheme)
{
    for (SchemeKind k : {SchemeKind::BaselineNuma, SchemeKind::DveDeny}) {
        auto once = [&] {
            System sys(quick(k));
            const auto r = sys.run(workloadByName("fft"), 0.03);
            return std::tuple{r.roiTime, r.llcMisses,
                              r.interSocketBytes, r.memoryEnergyNj};
        };
        EXPECT_EQ(once(), once()) << schemeKindName(k);
    }
}

TEST(Integration, MpkiOrderingHoldsEndToEnd)
{
    // The Fig 6 x-axis contract: the first workload's measured MPKI
    // exceeds the last one's by a wide margin.
    System a(quick(SchemeKind::BaselineNuma));
    const auto top = a.run(workloadByName("backprop"), 0.04);
    System b(quick(SchemeKind::BaselineNuma));
    const auto bottom = b.run(workloadByName("lbm"), 0.04);
    EXPECT_GT(top.mpki, 2.0 * bottom.mpki);
}

} // namespace
} // namespace dve
