#include "ecc/line_codec.hh"

#include <algorithm>

#include "common/logging.hh"
#include "ecc/hamming.hh"

namespace dve
{

namespace
{

/** Shared codec instances (construction builds generator polynomials). */
const ReedSolomon &
sharedRs8()
{
    static const ReedSolomon rs(GaloisField::gf256(), 18, 16);
    return rs;
}

const ReedSolomon &
sharedRs8Chipkill()
{
    static const ReedSolomon rs(GaloisField::gf256(), 19, 16);
    return rs;
}

const ReedSolomon &
sharedRs16()
{
    static const ReedSolomon rs(GaloisField::gf65536(), 19, 16);
    return rs;
}

/** Payload byte of data symbol @p sym in 8-bit codeword @p cw (of 4). */
constexpr unsigned
dsdPayloadByte(unsigned sym, unsigned cw)
{
    return sym * 4 + cw;
}

std::uint64_t
loadWord(const LineBytes &b, unsigned w)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= std::uint64_t(b[w * 8 + i]) << (8 * i);
    return v;
}

void
storeWord(LineBytes &b, unsigned w, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        b[w * 8 + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

} // namespace

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::None: return "none";
      case Scheme::SecDed72_64: return "sec-ded";
      case Scheme::ChipkillSscDsd: return "chipkill-ssc-dsd";
      case Scheme::DsdDetect: return "dsd-detect";
      case Scheme::TsdDetect: return "tsd-detect";
    }
    return "?";
}

LineCodec::LineCodec(Scheme scheme) : scheme_(scheme)
{
    switch (scheme_) {
      case Scheme::ChipkillSscDsd:
        rs8ck_ = &sharedRs8Chipkill();
        break;
      case Scheme::DsdDetect:
        rs8_ = &sharedRs8();
        break;
      case Scheme::TsdDetect:
        rs16_ = &sharedRs16();
        break;
      default:
        break;
    }
}

unsigned
LineCodec::checkBytes() const
{
    switch (scheme_) {
      case Scheme::None: return 0;
      case Scheme::SecDed72_64: return 8;  // 1 byte per 64-bit word
      case Scheme::ChipkillSscDsd: return 12; // 4 codewords x 3 symbols
      case Scheme::DsdDetect: return 8;    // 4 codewords x 2 symbols
      case Scheme::TsdDetect: return 12;   // 2 codewords x 3 x 16-bit
    }
    return 0;
}

unsigned
LineCodec::chips() const
{
    switch (scheme_) {
      case Scheme::None: return 8;
      case Scheme::SecDed72_64: return 9;  // 8 data + 1 check
      case Scheme::ChipkillSscDsd: return 19; // 16 data + 3 check
      case Scheme::DsdDetect: return 18;   // 16 data + 2 check
      case Scheme::TsdDetect: return 19;   // 16 data + 3 check
    }
    return 0;
}

StoredLine
LineCodec::encode(const LineBytes &data) const
{
    StoredLine line;
    line.payload = data;
    line.check.assign(checkBytes(), 0);

    switch (scheme_) {
      case Scheme::None:
        break;

      case Scheme::SecDed72_64:
        for (unsigned w = 0; w < 8; ++w)
            line.check[w] = HammingSecDed::encode(loadWord(data, w)).check;
        break;

      case Scheme::ChipkillSscDsd:
      case Scheme::DsdDetect: {
        const ReedSolomon *rs =
            scheme_ == Scheme::ChipkillSscDsd ? rs8ck_ : rs8_;
        const unsigned p = rs->parity();
        for (unsigned cw = 0; cw < 4; ++cw) {
            std::vector<std::uint32_t> msg(16);
            for (unsigned sym = 0; sym < 16; ++sym)
                msg[sym] = data[dsdPayloadByte(sym, cw)];
            const auto enc = rs->encode(msg);
            for (unsigned s = 0; s < p; ++s)
                line.check[cw * p + s] = static_cast<std::uint8_t>(enc[s]);
        }
        break;
      }

      case Scheme::TsdDetect:
        for (unsigned cw = 0; cw < 2; ++cw) {
            std::vector<std::uint32_t> msg(16);
            for (unsigned sym = 0; sym < 16; ++sym) {
                const unsigned base = sym * 4 + cw * 2;
                msg[sym] = std::uint32_t(data[base])
                           | (std::uint32_t(data[base + 1]) << 8);
            }
            const auto enc = rs16_->encode(msg);
            for (unsigned s = 0; s < 3; ++s) {
                line.check[cw * 6 + s * 2 + 0] =
                    static_cast<std::uint8_t>(enc[s]);
                line.check[cw * 6 + s * 2 + 1] =
                    static_cast<std::uint8_t>(enc[s] >> 8);
            }
        }
        break;
    }
    return line;
}

LineCodec::Outcome
LineCodec::decode(const StoredLine &received) const
{
    dve_assert(received.check.size() == checkBytes(),
               "check-byte count mismatch for ", schemeName(scheme_));
    Outcome out;
    out.data = received.payload;

    bool any_corrected = false;
    bool any_detected = false;

    switch (scheme_) {
      case Scheme::None:
        break;

      case Scheme::SecDed72_64:
        for (unsigned w = 0; w < 8; ++w) {
            HammingSecDed::Codeword cw{loadWord(received.payload, w),
                                       received.check[w]};
            const auto r = HammingSecDed::decode(cw);
            if (r.status == EccStatus::Corrected) {
                any_corrected = true;
                storeWord(out.data, w, r.codeword.data);
            } else if (r.status == EccStatus::Detected) {
                any_detected = true;
            }
        }
        break;

      case Scheme::ChipkillSscDsd:
      case Scheme::DsdDetect: {
        const ReedSolomon *rs =
            scheme_ == Scheme::ChipkillSscDsd ? rs8ck_ : rs8_;
        const unsigned p = rs->parity();
        const unsigned cap = scheme_ == Scheme::ChipkillSscDsd ? 1 : 0;
        for (unsigned cw = 0; cw < 4; ++cw) {
            std::vector<std::uint32_t> word(rs->n());
            for (unsigned s = 0; s < p; ++s)
                word[s] = received.check[cw * p + s];
            for (unsigned sym = 0; sym < 16; ++sym)
                word[p + sym] = received.payload[dsdPayloadByte(sym, cw)];
            const auto r = rs->decode(word, cap);
            if (r.status == EccStatus::Corrected) {
                any_corrected = true;
                for (unsigned sym = 0; sym < 16; ++sym) {
                    out.data[dsdPayloadByte(sym, cw)] =
                        static_cast<std::uint8_t>(r.codeword[p + sym]);
                }
            } else if (r.status == EccStatus::Detected) {
                any_detected = true;
            }
        }
        break;
      }

      case Scheme::TsdDetect:
        for (unsigned cw = 0; cw < 2; ++cw) {
            std::vector<std::uint32_t> word(19);
            for (unsigned s = 0; s < 3; ++s) {
                word[s] = std::uint32_t(received.check[cw * 6 + s * 2])
                          | (std::uint32_t(
                                 received.check[cw * 6 + s * 2 + 1])
                             << 8);
            }
            for (unsigned sym = 0; sym < 16; ++sym) {
                const unsigned base = sym * 4 + cw * 2;
                word[3 + sym] =
                    std::uint32_t(received.payload[base])
                    | (std::uint32_t(received.payload[base + 1]) << 8);
            }
            const auto r = rs16_->decode(word, 0);
            if (r.status == EccStatus::Detected)
                any_detected = true;
        }
        break;
    }

    out.status = any_detected ? EccStatus::Detected
                 : any_corrected ? EccStatus::Corrected
                                 : EccStatus::Clean;
    return out;
}

std::vector<unsigned>
LineCodec::chipBytes(unsigned chip) const
{
    dve_assert(chip < chips(), "chip index out of range for ",
               schemeName(scheme_));
    std::vector<unsigned> bytes;
    switch (scheme_) {
      case Scheme::None:
      case Scheme::SecDed72_64:
        if (chip < 8) {
            // x8 device: byte `chip` of each 8-byte beat.
            for (unsigned w = 0; w < 8; ++w)
                bytes.push_back(w * 8 + chip);
        } else {
            for (unsigned w = 0; w < 8; ++w)
                bytes.push_back(64 + w);
        }
        break;

      case Scheme::ChipkillSscDsd:
      case Scheme::DsdDetect: {
        const unsigned p = scheme_ == Scheme::ChipkillSscDsd ? 3 : 2;
        if (chip < 16) {
            for (unsigned cw = 0; cw < 4; ++cw)
                bytes.push_back(dsdPayloadByte(chip, cw));
        } else {
            const unsigned s = chip - 16; // parity chip
            for (unsigned cw = 0; cw < 4; ++cw)
                bytes.push_back(64 + cw * p + s);
        }
        break;
      }

      case Scheme::TsdDetect:
        if (chip < 16) {
            for (unsigned b = 0; b < 4; ++b)
                bytes.push_back(chip * 4 + b);
        } else {
            const unsigned s = chip - 16; // parity chip 0..2
            for (unsigned cw = 0; cw < 2; ++cw) {
                bytes.push_back(64 + cw * 6 + s * 2);
                bytes.push_back(64 + cw * 6 + s * 2 + 1);
            }
        }
        break;
    }
    return bytes;
}

std::uint8_t &
LineCodec::flatByte(StoredLine &line, unsigned idx) const
{
    if (idx < 64)
        return line.payload[idx];
    dve_assert(idx - 64 < line.check.size(), "flat byte out of range");
    return line.check[idx - 64];
}

void
LineCodec::corruptChip(StoredLine &line, unsigned chip, Rng &rng) const
{
    for (unsigned idx : chipBytes(chip)) {
        std::uint8_t &b = flatByte(line, idx);
        // Guarantee the byte actually changes.
        b = static_cast<std::uint8_t>(
            b ^ (1 + rng.next(255)));
    }
}

void
LineCodec::corruptBit(StoredLine &line, unsigned flat_byte, unsigned bit)
{
    dve_assert(bit < 8, "bit index out of range");
    if (flat_byte < 64) {
        line.payload[flat_byte] ^= static_cast<std::uint8_t>(1u << bit);
    } else {
        dve_assert(flat_byte - 64 < line.check.size(),
                   "byte index out of range");
        line.check[flat_byte - 64] ^= static_cast<std::uint8_t>(1u << bit);
    }
}

} // namespace dve
