/**
 * @file
 * Property tests for Galois-field arithmetic: field axioms must hold in
 * both GF(2^8) and GF(2^16).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/gf.hh"

namespace dve
{
namespace
{

class GfParamTest : public ::testing::TestWithParam<const GaloisField *>
{
  protected:
    const GaloisField &gf() const { return *GetParam(); }

    std::uint32_t
    randNonzero(Rng &rng) const
    {
        return 1 + static_cast<std::uint32_t>(rng.next(gf().size() - 1));
    }
};

TEST_P(GfParamTest, AdditionIsXor)
{
    EXPECT_EQ(GaloisField::add(0x5A, 0xA5), 0xFFu);
    EXPECT_EQ(GaloisField::add(7, 7), 0u);
}

TEST_P(GfParamTest, MultiplicativeIdentityAndZero)
{
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const auto a = static_cast<std::uint32_t>(rng.next(gf().size()));
        EXPECT_EQ(gf().mul(a, 1), a);
        EXPECT_EQ(gf().mul(1, a), a);
        EXPECT_EQ(gf().mul(a, 0), 0u);
    }
}

TEST_P(GfParamTest, MultiplicationCommutesAndAssociates)
{
    Rng rng(12);
    for (int i = 0; i < 500; ++i) {
        const auto a = static_cast<std::uint32_t>(rng.next(gf().size()));
        const auto b = static_cast<std::uint32_t>(rng.next(gf().size()));
        const auto c = static_cast<std::uint32_t>(rng.next(gf().size()));
        EXPECT_EQ(gf().mul(a, b), gf().mul(b, a));
        EXPECT_EQ(gf().mul(gf().mul(a, b), c), gf().mul(a, gf().mul(b, c)));
    }
}

TEST_P(GfParamTest, DistributesOverAddition)
{
    Rng rng(13);
    for (int i = 0; i < 500; ++i) {
        const auto a = static_cast<std::uint32_t>(rng.next(gf().size()));
        const auto b = static_cast<std::uint32_t>(rng.next(gf().size()));
        const auto c = static_cast<std::uint32_t>(rng.next(gf().size()));
        EXPECT_EQ(gf().mul(a, GaloisField::add(b, c)),
                  GaloisField::add(gf().mul(a, b), gf().mul(a, c)));
    }
}

TEST_P(GfParamTest, InverseAndDivision)
{
    Rng rng(14);
    for (int i = 0; i < 500; ++i) {
        const auto a = randNonzero(rng);
        const auto b = randNonzero(rng);
        EXPECT_EQ(gf().mul(a, gf().inv(a)), 1u);
        EXPECT_EQ(gf().mul(gf().div(a, b), b), a);
        EXPECT_EQ(gf().div(0, b), 0u);
    }
    EXPECT_THROW(gf().inv(0), std::logic_error);
    EXPECT_THROW(gf().div(1, 0), std::logic_error);
}

TEST_P(GfParamTest, PowMatchesRepeatedMul)
{
    Rng rng(15);
    for (int i = 0; i < 50; ++i) {
        const auto a = randNonzero(rng);
        std::uint32_t acc = 1;
        for (unsigned e = 0; e < 16; ++e) {
            EXPECT_EQ(gf().pow(a, e), acc);
            acc = gf().mul(acc, a);
        }
    }
    EXPECT_EQ(gf().pow(0, 0), 1u);
    EXPECT_EQ(gf().pow(0, 5), 0u);
}

TEST_P(GfParamTest, AlphaPowWrapsNegativeExponents)
{
    const std::int64_t order = gf().size() - 1;
    EXPECT_EQ(gf().alphaPow(0), 1u);
    EXPECT_EQ(gf().alphaPow(order), 1u);
    EXPECT_EQ(gf().alphaPow(-1), gf().inv(gf().alphaPow(1)));
    EXPECT_EQ(gf().alphaPow(-5), gf().alphaPow(order - 5));
}

TEST_P(GfParamTest, LogExpRoundTrip)
{
    Rng rng(16);
    for (int i = 0; i < 300; ++i) {
        const auto a = randNonzero(rng);
        EXPECT_EQ(gf().alphaPow(gf().logOf(a)), a);
    }
}

INSTANTIATE_TEST_SUITE_P(
    BothFields, GfParamTest,
    ::testing::Values(&GaloisField::gf256(), &GaloisField::gf65536()),
    [](const ::testing::TestParamInfo<const GaloisField *> &info) {
        return info.param->bits() == 8 ? "GF256" : "GF65536";
    });

TEST(GfConstruction, GeneratorCoversField)
{
    // alpha must generate all nonzero elements: spot-check uniqueness of
    // the log table by asserting alphaPow is a bijection on exponents.
    const GaloisField &gf = GaloisField::gf256();
    std::vector<bool> seen(gf.size(), false);
    for (std::uint32_t i = 0; i < gf.size() - 1; ++i) {
        const auto v = gf.alphaPow(i);
        EXPECT_FALSE(seen[v]) << "repeat at exponent " << i;
        seen[v] = true;
    }
}

TEST(GfConstruction, NonPrimitivePolynomialRejected)
{
    // x^8 + x^4 + x^3 + x^2 + 1 (0x11D is primitive; 0x11B -- the AES
    // polynomial -- is irreducible but NOT primitive, so it must be
    // rejected by the alpha-order check).
    EXPECT_THROW(GaloisField(8, 0x11B), std::logic_error);
}

TEST(GfConstruction, DegreeMismatchRejected)
{
    EXPECT_THROW(GaloisField(8, 0x1D), std::logic_error);
    EXPECT_THROW(GaloisField(8, 0x21D), std::logic_error);
}

} // namespace
} // namespace dve
