file(REMOVE_RECURSE
  "CMakeFiles/dve_protocol_check.dir/checker.cc.o"
  "CMakeFiles/dve_protocol_check.dir/checker.cc.o.d"
  "CMakeFiles/dve_protocol_check.dir/model.cc.o"
  "CMakeFiles/dve_protocol_check.dir/model.cc.o.d"
  "libdve_protocol_check.a"
  "libdve_protocol_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_protocol_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
