/**
 * @file
 * Tests for CRC-16/CCITT-FALSE and CRC-32/IEEE against published check
 * values plus error-detection properties.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "ecc/crc.hh"

namespace dve
{
namespace
{

const std::uint8_t kCheckInput[] = {'1', '2', '3', '4', '5',
                                    '6', '7', '8', '9'};

TEST(Crc, KnownAnswerVectors)
{
    // Standard "123456789" check values.
    EXPECT_EQ(crc16(kCheckInput, 9), 0x29B1);
    EXPECT_EQ(crc32(kCheckInput, 9), 0xCBF43926u);
}

TEST(Crc, EmptyInput)
{
    EXPECT_EQ(crc16(nullptr, 0), 0xFFFF);
    EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
}

TEST(Crc, SingleBitErrorsAlwaysDetected)
{
    Rng rng(41);
    std::vector<std::uint8_t> buf(64);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next(256));
    const auto c16 = crc16(buf.data(), buf.size());
    const auto c32 = crc32(buf.data(), buf.size());
    for (std::size_t byte = 0; byte < buf.size(); ++byte) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            auto bad = buf;
            bad[byte] ^= static_cast<std::uint8_t>(1u << bit);
            EXPECT_NE(crc16(bad.data(), bad.size()), c16);
            EXPECT_NE(crc32(bad.data(), bad.size()), c32);
        }
    }
}

TEST(Crc, BurstErrorsDetected)
{
    // CRC-16 detects any burst shorter than 17 bits; CRC-32 shorter than
    // 33 bits. Verify on random bursts within one/two bytes.
    Rng rng(42);
    std::vector<std::uint8_t> buf(128);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next(256));
    const auto c32 = crc32(buf.data(), buf.size());
    for (int iter = 0; iter < 500; ++iter) {
        auto bad = buf;
        const std::size_t at = rng.next(buf.size() - 3);
        bad[at] ^= static_cast<std::uint8_t>(1 + rng.next(255));
        bad[at + 1] ^= static_cast<std::uint8_t>(rng.next(256));
        bad[at + 2] ^= static_cast<std::uint8_t>(rng.next(256));
        if (std::memcmp(bad.data(), buf.data(), buf.size()) == 0)
            continue;
        EXPECT_NE(crc32(bad.data(), bad.size()), c32);
    }
}

TEST(Crc, DifferentLengthsDiffer)
{
    const std::uint8_t zeros[8] = {};
    EXPECT_NE(crc32(zeros, 4), crc32(zeros, 5));
    EXPECT_NE(crc16(zeros, 4), crc16(zeros, 5));
}

TEST(Crc, Deterministic)
{
    Rng rng(43);
    std::vector<std::uint8_t> buf(256);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next(256));
    EXPECT_EQ(crc32(buf.data(), buf.size()), crc32(buf.data(), buf.size()));
}

} // namespace
} // namespace dve
