file(REMOVE_RECURSE
  "CMakeFiles/dve_trace.dir/trace.cc.o"
  "CMakeFiles/dve_trace.dir/trace.cc.o.d"
  "CMakeFiles/dve_trace.dir/workloads.cc.o"
  "CMakeFiles/dve_trace.dir/workloads.cc.o.d"
  "libdve_trace.a"
  "libdve_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
