#include "noc/mesh.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace dve
{

Mesh::Mesh(unsigned cols, unsigned rows) : cols_(cols), rows_(rows)
{
    dve_assert(cols >= 1 && rows >= 1, "degenerate mesh");
    const unsigned n = numNodes();
    hops_.assign(std::size_t(n) * n, 0);
    nextHop_.assign(std::size_t(n) * n, 0);
    linkLoad_.assign(std::size_t(n) * n, 0);
    computeRoutes();
}

void
Mesh::computeRoutes()
{
    const unsigned n = numNodes();

    auto neighbors = [&](unsigned v) {
        std::vector<unsigned> out;
        const unsigned x = v % cols_;
        const unsigned y = v / cols_;
        // Deterministic neighbor order: ascending node id.
        if (y > 0)
            out.push_back(v - cols_);
        if (x > 0)
            out.push_back(v - 1);
        if (x + 1 < cols_)
            out.push_back(v + 1);
        if (y + 1 < rows_)
            out.push_back(v + cols_);
        return out;
    };

    // BFS from each source; parent chosen as the lowest-id predecessor so
    // routes are unique and stable (the "static table-based routing" of the
    // paper). On unit-weight graphs this is exactly Dijkstra SSSP.
    for (unsigned src = 0; src < n; ++src) {
        std::vector<int> dist(n, -1);
        std::vector<unsigned> parent(n, src);
        std::deque<unsigned> q;
        dist[src] = 0;
        q.push_back(src);
        while (!q.empty()) {
            const unsigned v = q.front();
            q.pop_front();
            for (unsigned w : neighbors(v)) {
                if (dist[w] < 0) {
                    dist[w] = dist[v] + 1;
                    parent[w] = v;
                    q.push_back(w);
                }
            }
        }
        for (unsigned dst = 0; dst < n; ++dst) {
            dve_assert(dist[dst] >= 0, "mesh is connected by construction");
            hops_[index(src, dst)] = static_cast<std::uint8_t>(dist[dst]);
            // First hop: walk parents back from dst to src.
            unsigned v = dst;
            while (v != src && parent[v] != src)
                v = parent[v];
            nextHop_[index(src, dst)] =
                static_cast<std::uint8_t>(dst == src ? src : v);
        }
    }
}

unsigned
Mesh::hops(unsigned src, unsigned dst) const
{
    dve_assert(src < numNodes() && dst < numNodes(), "node out of range");
    return hops_[index(src, dst)];
}

unsigned
Mesh::nextHop(unsigned src, unsigned dst) const
{
    dve_assert(src < numNodes() && dst < numNodes(), "node out of range");
    return nextHop_[index(src, dst)];
}

std::vector<unsigned>
Mesh::route(unsigned src, unsigned dst) const
{
    std::vector<unsigned> path;
    unsigned v = src;
    while (v != dst) {
        v = nextHop(v, dst);
        path.push_back(v);
    }
    return path;
}

unsigned
Mesh::traverse(unsigned src, unsigned dst)
{
    unsigned v = src;
    unsigned count = 0;
    while (v != dst) {
        const unsigned next = nextHop(v, dst);
        ++linkLoad_[index(v, next)];
        ++totalTraversals_;
        v = next;
        ++count;
    }
    return count;
}

std::uint64_t
Mesh::linkLoad(unsigned from, unsigned to) const
{
    dve_assert(from < numNodes() && to < numNodes(), "node out of range");
    return linkLoad_[index(from, to)];
}

double
Mesh::meanPairwiseHops() const
{
    const unsigned n = numNodes();
    if (n < 2)
        return 0.0;
    std::uint64_t total = 0;
    for (unsigned s = 0; s < n; ++s)
        for (unsigned d = 0; d < n; ++d)
            total += hops_[index(s, d)];
    return static_cast<double>(total) / (double(n) * (n - 1));
}

void
Mesh::resetTraffic()
{
    std::fill(linkLoad_.begin(), linkLoad_.end(), 0);
    totalTraversals_ = 0;
}

} // namespace dve
