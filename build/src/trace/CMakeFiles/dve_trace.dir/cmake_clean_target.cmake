file(REMOVE_RECURSE
  "libdve_trace.a"
)
