# Empty compiler generated dependencies file for dve_energy.
# This may be replaced when dependencies are built.
