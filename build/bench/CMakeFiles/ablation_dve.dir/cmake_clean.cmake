file(REMOVE_RECURSE
  "CMakeFiles/ablation_dve.dir/ablation_dve.cc.o"
  "CMakeFiles/ablation_dve.dir/ablation_dve.cc.o.d"
  "ablation_dve"
  "ablation_dve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
