file(REMOVE_RECURSE
  "libdve_ecc.a"
)
