/**
 * @file
 * Shared coherence-protocol vocabulary: stable states, request classes
 * (the Fig 7 taxonomy), and the engine configuration derived from the
 * paper's Table II.
 */

#ifndef DVE_COHERENCE_TYPES_HH
#define DVE_COHERENCE_TYPES_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"
#include "dram/config.hh"
#include "ecc/line_codec.hh"
#include "mem/memory_controller.hh"
#include "noc/interconnect.hh"

namespace dve
{

/** Stable MOSI states, used at both the LLC and the directories. */
enum class LineState : std::uint8_t
{
    I, ///< invalid / not present
    S, ///< shared, clean w.r.t. memory
    M, ///< modified, single owner
    O, ///< owned: dirty, owner + other sharers exist
};

const char *lineStateName(LineState s);

/**
 * Home-directory request classification (paper Sec. VII, Fig 7):
 * GETS to I = private-read; GETS to S = read-only; GETS to M/O or GETX to
 * S = read/write; GETX to I = private-read/write.
 */
enum class ReqClass : std::uint8_t
{
    PrivateRead,
    ReadOnly,
    ReadWrite,
    PrivateReadWrite,
};

constexpr unsigned numReqClasses = 4;

const char *reqClassName(ReqClass c);

/** Table II system configuration for the coherence engine. */
struct EngineConfig
{
    unsigned sockets = 2;
    unsigned coresPerSocket = 8;
    std::uint64_t coreFreqMhz = 3000;

    std::uint64_t l1Bytes = 64 * 1024;
    unsigned l1Ways = 8;
    Cycles l1Latency = 1;

    std::uint64_t llcBytes = 8ULL * 1024 * 1024;
    unsigned llcWays = 16;
    Cycles llcLatency = 20;

    Cycles dirLatency = 20;

    NocConfig noc;                     ///< sockets mirrored from above
    DramConfig dram;                   ///< per-socket memory
    Scheme scheme = Scheme::ChipkillSscDsd;
    MirrorMode mirror = MirrorMode::None;

    std::uint64_t seed = 1;

    /**
     * When true, every read's returned value is checked against the
     * engine's logical (coherence-ordered) memory image; a mismatch
     * panics. Disable for fault-injection runs where SDCs are expected
     * and counted instead.
     */
    bool validateValues = true;

    /**
     * Event-tracer ring capacity (records). 0 (the default) disables
     * tracing entirely: record() early-outs and no trace memory is
     * allocated, so untraced runs are bit-for-bit what they were before
     * the tracer existed.
     */
    std::size_t traceCapacity = 0;

    /**
     * Compile-in live invariant monitors (the chaos-fuzz harness): SWMR
     * over sharer/owner sets, data-value at every read commit,
     * replica-directory coherence, degraded-mode honesty, and a
     * no-wedge liveness watchdog. Violations are collected as
     * structured reports (CoherenceEngine::invariantViolations) and
     * mirrored into the event tracer. Default off; disabled runs take a
     * single branch per access and are byte-identical to builds without
     * the monitors.
     */
    bool invariantChecks = false;

    /**
     * No-wedge watchdog budget: the liveness monitor flags any single
     * access whose end-to-end latency exceeds this many ticks (only
     * consulted when invariantChecks is on). Generous default: far
     * above a full retry/fence ladder plus recovery DRAM work.
     */
    Tick watchdogBudget = 2 * ticksPerMs;

    /** Core clock helper. */
    ClockDomain coreClock() const { return ClockDomain(coreFreqMhz); }
};

} // namespace dve

#endif // DVE_COHERENCE_TYPES_HH
