/**
 * @file
 * Sec. VII "Energy": memory energy-delay product and system EDP of the
 * allow and deny protocols, normalized to baseline NUMA. Memory EDP
 * rises with the replica's extra capacity and writes; system EDP falls
 * because memory is ~18% of system power and runtimes shrink.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "energy/dram_energy.hh"

using namespace dve;

int
main()
{
    const double scale = bench::scaleFromEnv(0.35);
    bench::printHeader("Energy: memory-EDP and system-EDP normalized "
                       "to baseline NUMA");

    const DramEnergyModel model;
    TextTable t({"benchmark", "mem-EDP allow", "mem-EDP deny",
                 "sys-EDP allow", "sys-EDP deny"});
    std::vector<double> mem_a, mem_d, sys_a, sys_d;

    // Three sweep points per workload: baseline, allow, deny.
    const std::vector<SchemeKind> cols = {SchemeKind::BaselineNuma,
                                          SchemeKind::DveAllow,
                                          SchemeKind::DveDeny};
    const auto &workloads = table3Workloads();
    const auto runs = bench::runMatrix(
        workloads.size() * cols.size(), [&](std::size_t p) {
            return bench::runScheme(cols[p % cols.size()],
                                    workloads[p / cols.size()], scale);
        });

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &wl = workloads[w];
        const auto &base = runs[w * cols.size()];
        const auto &allow = runs[w * cols.size() + 1];
        const auto &deny = runs[w * cols.size() + 2];

        const double base_mem_edp =
            model.memoryEdp(base.memoryEnergyNj, base.roiTime);
        const double base_sys_edp = model.systemEdp(
            base.memoryEnergyNj, base.roiTime, base.memoryEnergyNj,
            base.roiTime);

        auto ratios = [&](const RunResult &r, double &mem_out,
                          double &sys_out) {
            mem_out = model.memoryEdp(r.memoryEnergyNj, r.roiTime)
                      / base_mem_edp;
            sys_out =
                model.systemEdp(r.memoryEnergyNj, r.roiTime,
                                base.memoryEnergyNj, base.roiTime)
                / base_sys_edp;
        };
        double ma, sa, md, sd;
        ratios(allow, ma, sa);
        ratios(deny, md, sd);
        mem_a.push_back(ma);
        mem_d.push_back(md);
        sys_a.push_back(sa);
        sys_d.push_back(sd);
        t.addRow({wl.name, TextTable::num(ma, 3), TextTable::num(md, 3),
                  TextTable::num(sa, 3), TextTable::num(sd, 3)});
    }
    t.addRow({"geomean-all", TextTable::num(bench::geomean(mem_a), 3),
              TextTable::num(bench::geomean(mem_d), 3),
              TextTable::num(bench::geomean(sys_a), 3),
              TextTable::num(bench::geomean(sys_d), 3)});
    t.print(std::cout);

    std::printf("\nPaper reference: memory-EDP geomean rises ~43%%/37%% "
                "(allow/deny) from the doubled capacity, while system-"
                "EDP falls ~6%%/12%% thanks to shorter runtimes.\n");
    bench::writeRunsJson("energy_edp", runs);
    return 0;
}
