/**
 * @file
 * Table I: DUE and SDC rates (per billion hours) for Chipkill, Dvé+DSD,
 * Dvé+TSD, IBM RAIM, Dvé+Chipkill, and the temperature-scaled variants;
 * plus the Fig 1 conceptual comparison panel (reliability, performance
 * overhead, effective capacity).
 *
 * --pool-compare [--trials N] [--seed S] [--json FILE] switches to a
 * simulated Table-I-style comparison of the far-memory tier: the pool
 * scheme list (local-chipkill / baseline-detect / dve-deny / two-tier)
 * runs seeded campaigns under the ambient DRAM mix plus the two
 * pool-scale presets (pool-node-offline, fabric-partition). Two-tier
 * must hold SDC at zero under both pool presets -- lost pool copies
 * demote to honest local-ECC-only service and heal back -- while the
 * single-copy schemes show the cost of their tier. Deterministic:
 * same flags -> byte-identical stdout and JSON. Without the flag the
 * harness's stdout is byte-identical to earlier versions.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "fault/campaign.hh"
#include "reliability/rates.hh"

using namespace dve;
using namespace dve::reliability;

namespace
{

void
printTableOne()
{
    bench::printHeader("Table I: DUE and SDC rates per 10^9 hours "
                       "(lower is better)");

    const ModelParams p;
    const auto ck = chipkill(p);
    const auto dsd = dveDsd(p);
    const auto tsd = dveTsd(p);
    const auto rm = raim(p);
    const auto dck = dveChipkill(p);

    TextTable t({"Scheme", "DUE", "DUE impr.", "SDC", "SDC impr."});
    auto impr = [](double base, double mine) {
        char buf[32];
        const double r = base / mine;
        if (r >= 1e4)
            std::snprintf(buf, sizeof(buf), "~10^%d x",
                          static_cast<int>(std::round(std::log10(r))));
        else
            std::snprintf(buf, sizeof(buf), "%.2fx", r);
        return std::string(buf);
    };

    t.addRow({"Chipkill", TextTable::sci(ck.due), "-",
              TextTable::sci(ck.sdc), "-"});
    t.addRow({"Dve+DSD", TextTable::sci(dsd.due), impr(ck.due, dsd.due),
              TextTable::sci(dsd.sdc), impr(ck.sdc, dsd.sdc)});
    t.addRow({"Dve+TSD", TextTable::sci(tsd.due), impr(ck.due, tsd.due),
              TextTable::sci(tsd.sdc), impr(ck.sdc, tsd.sdc)});
    t.addRow({"IBM RAIM", TextTable::sci(rm.due), "-",
              TextTable::sci(rm.sdc), "-"});
    t.addRow({"Dve+Chipkill", TextTable::sci(dck.due),
              impr(rm.due, dck.due), TextTable::sci(dck.sdc),
              impr(rm.sdc, dck.sdc)});
    t.print(std::cout);

    bench::printHeader("Table I (continued): temperature-scaled FIT "
                       "rates (10C gradient across the DIMM)");
    const auto fits = thermalFitProfile(p);
    const auto ckT = chipkillThermal(p, fits);
    const auto intelT = dveTsdThermal(p, fits, false);
    const auto dveT = dveTsdThermal(p, fits, true);

    TextTable t2({"Scheme", "DUE", "DUE impr.", "SDC", "SDC impr."});
    t2.addRow({"Chipkill(T)", TextTable::sci(ckT.due), "-",
               TextTable::sci(ckT.sdc), "-"});
    t2.addRow({"Intel+TSD(T)", TextTable::sci(intelT.due),
               impr(ckT.due, intelT.due), TextTable::sci(intelT.sdc),
               impr(ckT.sdc, intelT.sdc)});
    t2.addRow({"Dve+TSD(T)", TextTable::sci(dveT.due),
               impr(ckT.due, dveT.due), TextTable::sci(dveT.sdc),
               impr(ckT.sdc, dveT.sdc)});
    t2.print(std::cout);

    std::printf("\nThermal risk-inverse mapping lowers DUE by %.1f%% "
                "over same-position (Intel-style) mirroring.\n",
                (1.0 - dveT.due / intelT.due) * 100.0);
}

void
printFigureOnePanel()
{
    bench::printHeader("Fig 1 panel: the reliability / performance / "
                       "capacity trade-off");
    const ModelParams p;
    TextTable t({"Design", "DUE rate", "Effective capacity",
                 "Perf. vs non-ECC"});
    t.addRow({"SEC-DED", "(not chip-fault safe)",
              TextTable::num(effectiveCapacity(64, 8, 1) * 100, 1) + "%",
              "~ -1%"});
    t.addRow({"Chipkill", TextTable::sci(chipkill(p).due),
              TextTable::num(effectiveCapacity(64, 12, 1) * 100, 1)
                  + "%",
              "-2 to -3% [62]"});
    t.addRow({"Dve (+DSD)", TextTable::sci(dveDsd(p).due),
              TextTable::num(effectiveCapacity(64, 8, 2) * 100, 1) + "%",
              "+5 to +117% (Fig 6)"});
    t.print(std::cout);
    std::printf("\n(Dve's capacity cost applies only while replication "
                "is enabled on demand.)\n");
}

/**
 * Simulated pool-tier comparison: one seeded campaign per (scenario,
 * scheme) cell, reported Table-I-style. Returns the process exit code.
 */
int
runPoolCompare(unsigned trials, std::uint64_t seed, const char *json_path)
{
    const FabricScenario presets[] = {
        FabricScenario::None,
        FabricScenario::PoolOffline,
        FabricScenario::Partition,
    };

    std::ostringstream json;
    json << "{\"bench\": \"table1_pool_compare\",\n\"trials\": " << trials
         << ",\n\"seed\": " << seed << ",\n\"scenarios\": [\n";

    for (std::size_t si = 0; si < std::size(presets); ++si) {
        CampaignConfig cfg = CampaignConfig::quickDefaults();
        cfg.trials = trials;
        cfg.seed = seed;
        cfg.scenario = presets[si];
        applyPoolPreset(cfg);

        const CampaignRunner runner(cfg);
        const CampaignReport report = runner.run(poolSchemes());

        bench::printHeader(
            ("Pool tier, scenario "
             + std::string(fabricScenarioName(presets[si])))
                .c_str());
        TextTable t({"Scheme", "DUE", "SDC", "Recovered", "Retargets",
                     "Re-repl", "Degr. residency"});
        json << "{\"scenario\": \"" << fabricScenarioName(presets[si])
             << "\", \"pool_nodes\": " << cfg.poolNodes
             << ", \"schemes\": [\n";
        for (std::size_t k = 0; k < report.schemes.size(); ++k) {
            const auto &sr = report.schemes[k];
            const auto &tot = sr.totals;
            char resid[32];
            std::snprintf(resid, sizeof(resid), "%.0f",
                          tot.degradedResidencyTicks);
            t.addRow({campaignSchemeName(sr.scheme),
                      std::to_string(tot.due), std::to_string(tot.sdc),
                      std::to_string(tot.replicaRecoveries),
                      std::to_string(tot.poolRetargets),
                      std::to_string(tot.reReplications), resid});
            json << "{\"scheme\": \"" << campaignSchemeName(sr.scheme)
                 << "\", \"due\": " << tot.due << ", \"sdc\": "
                 << tot.sdc << ", \"replica_recoveries\": "
                 << tot.replicaRecoveries << ", \"pool_replica_reads\": "
                 << tot.poolReplicaReads << ", \"pool_retargets\": "
                 << tot.poolRetargets << ", \"re_replications\": "
                 << tot.reReplications << ", \"repair_deferrals\": "
                 << tot.repairDeferrals
                 << ", \"degraded_residency_ticks\": " << resid << "}"
                 << (k + 1 < report.schemes.size() ? ",\n" : "\n");
        }
        json << "]}" << (si + 1 < std::size(presets) ? ",\n" : "\n");
        t.print(std::cout);
    }
    json << "]}\n";

    std::printf("\nTwo-tier keeps SDC at zero under pool-node loss and "
                "fabric partition:\nlost pool replicas demote to honest "
                "local-ECC-only service (DUEs, never\nsilent data) and "
                "heal back onto surviving nodes.\n");

    if (json_path) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 1;
        }
        out << json.str();
        std::printf("\nJSON report written to %s\n", json_path);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool pool_compare = false;
    unsigned trials = 40;
    std::uint64_t seed = 1;
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--pool-compare") == 0) {
            pool_compare = true;
        } else if (std::strcmp(argv[i], "--trials") == 0
                   && i + 1 < argc) {
            trials = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return 1;
        }
    }
    if (pool_compare)
        return runPoolCompare(trials, seed, json_path);

    printTableOne();
    printFigureOnePanel();
    return 0;
}
