/**
 * @file
 * Analytical DUE/SDC rate models reproducing Table I of the paper
 * (Sec. IV), plus Arrhenius thermal FIT scaling and a Monte-Carlo
 * cross-check of the closed forms.
 *
 * Modelling conventions (matching the paper's arithmetic):
 *  - Rates are events per billion hours of operation.
 *  - A first-component failure contributes its FIT directly; each
 *    additional simultaneous failure contributes FIT x 1e-9 (the
 *    probability of failing within the scrub window).
 *  - Chipkill (SSC-DSD) corrects one failed chip per rank and loses data
 *    when a second chip in the same DIMM fails within the window; it can
 *    miss detection (SDC) when three or more fail, with probability
 *    dsdMissProb (6.9%, from Yeleswarapu & Somani [77]).
 *  - Dvé loses data only when the *same-position* chip pair on the two
 *    replica DIMMs fails together; stronger detection (TSD) pushes SDC
 *    to four-or-more simultaneous chip failures.
 */

#ifndef DVE_RELIABILITY_RATES_HH
#define DVE_RELIABILITY_RATES_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace dve
{
namespace reliability
{

/** A DUE/SDC rate pair, events per 10^9 hours. */
struct RatePair
{
    double due = 0.0;
    double sdc = 0.0;
};

/** Model parameters (defaults are the paper's). */
struct ModelParams
{
    double fitPerChip = 66.1;   ///< DRAM device FIT [67]
    unsigned chipsPerDimm = 9;  ///< x8 ECC DIMM
    unsigned dimms = 32;        ///< single-rank ECC DIMMs in the system
    double windowFactor = 1e-9; ///< scrub-window probability conversion
    double dsdMissProb = 0.069; ///< P(DSD misses a 3-chip failure) [77]
    double tsdMissProb = 0.069; ///< P(TSD misses a 4-chip failure)
    unsigned raimChannels = 5;  ///< RAID-3 "ganged" channels
    unsigned raimDimmsPerChannel = 8;
};

/** Baseline Chipkill SSC-DSD (32 DIMMs). */
RatePair chipkill(const ModelParams &p = {});

/** Dvé with detection equal to the baseline (DSD). */
RatePair dveDsd(const ModelParams &p = {});

/** Dvé with triple-symbol detection (TSD). */
RatePair dveTsd(const ModelParams &p = {});

/** IBM RAIM: RAID-3 across 5 channels of Chipkill DIMMs. */
RatePair raim(const ModelParams &p = {});

/** Dvé stacked on Chipkill ECC DIMMs. */
RatePair dveChipkill(const ModelParams &p = {});

/**
 * Arrhenius acceleration factor for a temperature increase of
 * @p delta_c degrees C above @p base_c, with activation energy
 * @p ea_ev (typical DRAM retention Ea ~ 0.5-0.6 eV).
 */
double arrheniusFactor(double delta_c, double base_c = 55.0,
                       double ea_ev = 0.6);

/**
 * The paper's per-chip thermal FIT profile: a 10 C gradient across the
 * 9 chips of a DIMM yields FITs [66.1, 74.3, ..., 131.7].
 */
std::vector<double> thermalFitProfile(const ModelParams &p = {},
                                      double fit_step = 8.2);

/** Chipkill under a per-chip FIT profile. */
RatePair chipkillThermal(const ModelParams &p,
                         const std::vector<double> &fits);

/**
 * Dvé+TSD under a thermal profile. @p risk_inverse pairs the hottest
 * chip with the coolest replica chip (Dvé's thermal-aware mapping);
 * without it, chips pair by identical position (Intel-mirroring-like).
 */
RatePair dveTsdThermal(const ModelParams &p,
                       const std::vector<double> &fits,
                       bool risk_inverse);

/**
 * Effective capacity (fraction of raw DRAM usable as data) for the
 * Fig 1 comparison: data bytes / (data + check [+ replica]) bytes.
 */
double effectiveCapacity(unsigned data_bytes, unsigned check_bytes,
                         unsigned copies);

/**
 * Monte-Carlo cross-check of the pairwise failure model: simulate
 * @p trials scrub windows with per-window chip failure probability
 * @p p_fail and count DUE events per scheme.
 * @return estimated DUE probability per window.
 */
double monteCarloChipkillDue(const ModelParams &p, double p_fail,
                             std::uint64_t trials, Rng &rng);

/** Same for Dvé's same-position pair rule (2x DIMMs). */
double monteCarloDveDue(const ModelParams &p, double p_fail,
                        std::uint64_t trials, Rng &rng);

} // namespace reliability
} // namespace dve

#endif // DVE_RELIABILITY_RATES_HH
