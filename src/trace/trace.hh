/**
 * @file
 * Architecture-agnostic multithreaded trace format.
 *
 * The paper drives gem5 with Prism/SynchroTrace traces of 20 real
 * benchmarks -- synchronization-aware streams of compute, memory, and
 * thread-API events. This module defines the equivalent in-memory (and
 * binary on-disk) representation; the generator in workloads.hh produces
 * synthetic traces with per-benchmark calibrated statistics.
 */

#ifndef DVE_TRACE_TRACE_HH
#define DVE_TRACE_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hh"

namespace dve
{

/** Trace event kinds (the Prism event classes the paper lists). */
enum class OpType : std::uint8_t
{
    Read,    ///< 64 B line read at addr
    Write,   ///< 64 B line write at addr
    Compute, ///< arg back-to-back 1-cycle integer/FP ops
    Barrier, ///< synchronization barrier, id = arg (100-cycle API cost)
    Lock,    ///< mutex acquire, id = arg (100-cycle API cost)
    Unlock,  ///< mutex release, id = arg (100-cycle API cost)
};

const char *opTypeName(OpType t);

/** One trace event. */
struct TraceOp
{
    OpType type = OpType::Compute;
    std::uint32_t arg = 1; ///< compute count / barrier id / lock id
    Addr addr = 0;         ///< memory ops only

    bool operator==(const TraceOp &) const = default;
};

/** Per-thread event streams for one workload. */
using ThreadTraces = std::vector<std::vector<TraceOp>>;

/** Serialize traces to a compact binary stream. */
void writeTraces(std::ostream &os, const ThreadTraces &traces);

/** Deserialize traces written by writeTraces. Throws on bad input. */
ThreadTraces readTraces(std::istream &is);

/** Total events across all threads. */
std::uint64_t totalOps(const ThreadTraces &traces);

/** Total memory events across all threads. */
std::uint64_t totalMemOps(const ThreadTraces &traces);

} // namespace dve

#endif // DVE_TRACE_TRACE_HH
