/**
 * @file
 * Tests for the Murphi-style protocol model checker: the baseline MSI
 * protocol and both Dvé replica-protocol families must verify
 * exhaustively on small configurations, and deliberately mutated
 * protocols must be caught with a concrete counterexample trace.
 */

#include <gtest/gtest.h>

#include "protocol_check/checker.hh"

namespace dve
{
namespace pcheck
{
namespace
{

ModelConfig
cfg(CheckProtocol p, unsigned home, unsigned rep, unsigned budget)
{
    ModelConfig c;
    c.protocol = p;
    c.homeCaches = home;
    c.replicaCaches = rep;
    c.opBudget = budget;
    return c;
}

TEST(ProtocolCheck, BaselineMsiVerifies)
{
    const auto r = explore(cfg(CheckProtocol::BaselineMsi, 2, 0, 3));
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_GT(r.statesExplored, 1000u);
    EXPECT_GT(r.quiescentStates, 0u);
}

TEST(ProtocolCheck, DenyProtocolVerifies)
{
    const auto r = explore(cfg(CheckProtocol::Deny, 1, 1, 3));
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_GT(r.statesExplored, 10000u);
}

TEST(ProtocolCheck, AllowProtocolVerifies)
{
    const auto r = explore(cfg(CheckProtocol::Allow, 1, 1, 3));
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_GT(r.statesExplored, 10000u);
}

TEST(ProtocolCheck, DenyTwoHomeCachesVerifies)
{
    const auto r = explore(cfg(CheckProtocol::Deny, 2, 1, 2));
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_GT(r.statesExplored, 100000u);
}

TEST(ProtocolCheck, AllowTwoHomeCachesVerifies)
{
    const auto r = explore(cfg(CheckProtocol::Allow, 2, 1, 2));
    EXPECT_TRUE(r.ok) << r.summary();
}

TEST(ProtocolCheck, MissingRmPushIsCaught)
{
    // Without the eager RM push, a home-side write leaves the replica
    // readable and stale: the checker must produce a counterexample.
    auto c = cfg(CheckProtocol::Deny, 1, 1, 3);
    c.bugSkipRmPush = true;
    const auto r = explore(c);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.violation.find("stale"), std::string::npos)
        << r.violation;
    EXPECT_FALSE(r.trace.empty());
}

TEST(ProtocolCheck, UnackedOwnershipTransferIsCaught)
{
    // If the exclusive grant does not wait for the replica directory's
    // acknowledgment, a window exists where a completed write coexists
    // with a readable stale replica (the bug the checker found during
    // this model's development).
    auto c = cfg(CheckProtocol::Deny, 1, 1, 3);
    c.bugUnackedRdOwn = true;
    const auto r = explore(c);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.violation.find("stale"), std::string::npos)
        << r.violation;
    // The counterexample is short and replayable.
    EXPECT_LE(r.trace.size(), 10u);
}

TEST(ProtocolCheck, QuiescentStatesAreInvariantClean)
{
    // Spot property: summary formatting carries the verdict.
    const auto r = explore(cfg(CheckProtocol::Deny, 1, 1, 2));
    EXPECT_TRUE(r.ok);
    EXPECT_NE(r.summary().find("PASS"), std::string::npos);
}

TEST(ProtocolCheck, StateBoundTriggersGracefully)
{
    const auto r = explore(cfg(CheckProtocol::Deny, 1, 1, 3), 100);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.violation.find("bound"), std::string::npos);
}

TEST(ProtocolCheck, EncodingDistinguishesStates)
{
    const Model m(cfg(CheckProtocol::Deny, 1, 1, 2));
    const State init = m.initial();
    const auto succs = m.successors(init);
    ASSERT_FALSE(succs.empty());
    for (const auto &s : succs)
        EXPECT_NE(s.state.encode(), init.encode()) << s.action;
}

TEST(ProtocolCheck, InitialStateIsQuiescentAndClean)
{
    const Model m(cfg(CheckProtocol::Allow, 1, 1, 2));
    const State init = m.initial();
    EXPECT_TRUE(m.quiescent(init));
    EXPECT_FALSE(m.checkInvariants(init).has_value());
}

} // namespace
} // namespace pcheck
} // namespace dve
