/**
 * @file
 * Open-page DDR4 timing model.
 *
 * Each bank tracks its open row and availability; each channel serializes
 * bursts on its data bus. An access is resolved into a completion tick:
 *
 *   row hit      : tCL + tBURST
 *   closed bank  : tRCD + tCL + tBURST
 *   row conflict : tRP (respecting tRAS since activate) + tRCD + tCL + tBURST
 *
 * All-bank refresh blacks out a rank for tRFC every tREFI; an access
 * whose start lands in a blackout is pushed past it (refresh closes the
 * open rows). The model also counts activates/reads/writes/precharges/
 * refreshes, which feed the energy model, and exposes row-buffer hit
 * statistics.
 */

#ifndef DVE_DRAM_DRAM_HH
#define DVE_DRAM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/address_map.hh"
#include "dram/config.hh"

namespace dve
{

/** Result of timing one access. */
struct DramAccessResult
{
    Tick readyAt = 0;    ///< tick at which the data burst completes
    bool rowHit = false; ///< open-row hit
    DramCoord coord;     ///< decoded coordinates (for fault mapping)
};

/** One socket's DRAM subsystem: all channels behind one memory port. */
class DramModule
{
  public:
    DramModule(std::string name, const DramConfig &cfg);

    /**
     * Time a line read/write starting no earlier than @p now.
     * Purely functional on the address; mutates bank/bus availability.
     */
    DramAccessResult access(Addr a, bool is_write, Tick now);

    const DramConfig &config() const { return cfg_; }
    const AddressMap &map() const { return map_; }

    // Energy-model inputs.
    std::uint64_t activates() const { return activates_.value(); }
    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }
    std::uint64_t refreshes() const { return refreshes_.value(); }

    /** Fraction of accesses that hit the open row. */
    double rowHitRate() const;

    const StatGroup &stats() const { return stats_; }

    /** Clear counters (ROI boundary); bank state is retained. */
    void resetStats();

  private:
    struct BankState
    {
        std::int64_t openRow = -1; ///< -1 = precharged/closed
        Tick readyAt = 0;          ///< bank available for a new command
        Tick activatedAt = 0;      ///< for tRAS enforcement
    };

    BankState &bank(const DramCoord &c)
    {
        return banks_[(std::size_t(c.channel) * cfg_.ranksPerChannel
                       + c.rank) * cfg_.banksPerRank + c.bank];
    }

    /** Advance per-rank refresh state; returns the adjusted start. */
    Tick applyRefresh(const DramCoord &c, Tick start);

    std::string name_;
    DramConfig cfg_;
    AddressMap map_;
    std::vector<BankState> banks_;
    std::vector<Tick> busReadyAt_;   ///< per channel
    std::vector<Tick> nextRefresh_;  ///< per (channel, rank)

    Counter reads_;
    Counter writes_;
    Counter activates_;
    Counter precharges_;
    Counter refreshes_;
    Counter refreshStallTicks_;
    Counter rowHits_;
    Counter rowMisses_;    ///< closed-bank accesses
    Counter rowConflicts_; ///< open-row mismatch
    StatGroup stats_;
};

} // namespace dve

#endif // DVE_DRAM_DRAM_HH
