file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_check.dir/test_protocol_check.cc.o"
  "CMakeFiles/test_protocol_check.dir/test_protocol_check.cc.o.d"
  "test_protocol_check"
  "test_protocol_check.pdb"
  "test_protocol_check[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
