#include "trace/workloads.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace dve
{

namespace
{

constexpr Addr sharedBase = 0x1000'0000;  // 256 MB
constexpr Addr privateBase = 0x8000'0000; // 2 GB
constexpr Addr privateStride = 0x0400'0000; // 64 MB per thread

/**
 * Profile table. Parameters are chosen so that:
 *  - the list is ordered by descending L2 MPKI (shared region size and
 *    run length dominate);
 *  - the first ten are shared-read dominated (deny-protocol friendly,
 *    like the paper's backprop...streamcluster group);
 *  - the last ten carry > 46% private read/write traffic at the
 *    directory (allow-protocol friendly, per Fig 7's analysis).
 */
std::vector<WorkloadProfile>
buildTable()
{
    std::vector<WorkloadProfile> t;
    auto add = [&](const char *name, const char *suite,
                   std::uint64_t shared_mb, std::uint64_t priv_mb,
                   double shared_frac, double priv_wr, double shared_wr,
                   double run_len, double compute_per_mem,
                   std::uint64_t barrier_iv, std::uint64_t lock_iv) {
        WorkloadProfile p;
        p.name = name;
        p.suite = suite;
        p.sharedBytes = shared_mb << 20;
        p.privateBytes = priv_mb << 20;
        p.sharedFraction = shared_frac;
        p.privateWriteFraction = priv_wr;
        p.sharedWriteFraction = shared_wr;
        p.meanRunLength = run_len;
        p.computePerMem = compute_per_mem;
        p.barrierInterval = barrier_iv;
        p.lockInterval = lock_iv;
        p.seed = 1000 + t.size();
        t.push_back(p);
    };

    // --- Top-10: high MPKI, shared-read dominated --------------------
    //   name          suite      shMB pvMB shFr  pvWr  shWr  run  cpm  bar   lock
    add("backprop",    "rodinia",  64,  1,  0.92, 0.20, 0.02, 6.0, 1.5, 4000, 0);
    add("graph500",    "hpc",      96,  1,  0.95, 0.10, 0.03, 1.5, 2.0, 0,    0);
    add("fft",         "splash2x", 48,  2,  0.85, 0.30, 0.15, 8.0, 2.0, 2500, 0);
    add("stencil",     "parboil",  48,  2,  0.80, 0.50, 0.10, 12.0, 2.5, 2000, 0);
    add("xsbench",     "hpc",      64,  1,  0.90, 0.15, 0.01, 1.2, 3.0, 0,    0);
    add("ocean_cp",    "splash2x", 40,  2,  0.80, 0.40, 0.18, 8.0, 3.0, 1500, 0);
    add("nw",          "rodinia",  32,  2,  0.82, 0.35, 0.15, 6.0, 3.5, 1000, 0);
    add("rsbench",     "hpc",      40,  1,  0.88, 0.15, 0.01, 1.2, 5.0, 0,    0);
    add("bfs",         "rodinia",  32,  1,  0.85, 0.25, 0.08, 1.5, 4.0, 1200, 0);
    add("streamcluster","parsec",  24,  2,  0.78, 0.30, 0.06, 4.0, 5.0, 800,  4000);
    // --- Bottom-10: lower MPKI, private read/write heavy -------------
    // Shared regions are small (largely LLC-resident), so directory
    // traffic is dominated by private read/write misses from the large
    // write-heavy private regions -- the > 46% private-rw mix Fig 7
    // reports for this group, which is what makes allow win there.
    add("comd",        "hpc",       4,  6,  0.30, 0.60, 0.10, 5.0, 6.0, 1500, 0);
    add("canneal",     "parsec",    6,  6,  0.35, 0.60, 0.12, 1.5, 6.0, 0,    2500);
    add("freqmine",    "parsec",    3,  6,  0.25, 0.68, 0.08, 3.0, 7.0, 0,    0);
    add("barnes",      "splash2x",  4,  5,  0.35, 0.62, 0.15, 2.0, 8.0, 1000, 1500);
    add("mg",          "nas",       4,  6,  0.30, 0.65, 0.10, 10.0, 8.0, 1200, 0);
    add("bt",          "nas",       3,  6,  0.25, 0.68, 0.10, 10.0, 10.0, 1000, 0);
    add("sp",          "nas",       3,  6,  0.25, 0.70, 0.12, 8.0, 11.0, 900,  0);
    add("lu",          "nas",       3,  5,  0.27, 0.68, 0.12, 8.0, 12.0, 800,  0);
    add("histo",       "parboil",   2,  5,  0.25, 0.72, 0.20, 2.0, 12.0, 600, 1000);
    add("lbm",         "spec2017",  4,  8,  0.20, 0.70, 0.05, 16.0, 14.0, 0,   0);
    return t;
}

} // namespace

const std::vector<WorkloadProfile> &
table3Workloads()
{
    static const std::vector<WorkloadProfile> table = buildTable();
    return table;
}

const WorkloadProfile &
workloadByName(const std::string &name)
{
    for (const auto &p : table3Workloads()) {
        if (p.name == name)
            return p;
    }
    dve_fatal("unknown workload '", name, "'");
}

ThreadTraces
generateTraces(const WorkloadProfile &p, unsigned threads, double scale)
{
    dve_assert(threads >= 1, "need at least one thread");
    dve_assert(scale > 0.0, "scale must be positive");

    const std::uint64_t mem_ops = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(p.memOpsPerThread) * scale));
    const Addr shared_lines = std::max<Addr>(1, p.sharedBytes / lineBytes);
    const Addr private_lines =
        std::max<Addr>(1, p.privateBytes / lineBytes);

    ThreadTraces traces(threads);
    Rng master(p.seed);

    std::uint32_t barrier_id = 0; // same sequence for every thread

    for (unsigned tid = 0; tid < threads; ++tid) {
        Rng rng = master.fork(tid);
        auto &ops = traces[tid];
        ops.reserve(mem_ops * 2 + 16);

        const Addr priv_base = privateBase + Addr(tid) * privateStride;
        Addr shared_cursor = rng.next(shared_lines);
        Addr priv_cursor = rng.next(private_lines);
        std::uint64_t run_left = 0;
        bool run_shared = false;

        auto emitCompute = [&] {
            const auto batch = static_cast<std::uint32_t>(
                rng.runLength(std::max(1.0, p.computePerMem)));
            ops.push_back({OpType::Compute, batch, 0});
        };

        for (std::uint64_t i = 0; i < mem_ops; ++i) {
            // Synchronization structure.
            if (p.barrierInterval && i > 0 && i % p.barrierInterval == 0) {
                ops.push_back(
                    {OpType::Barrier,
                     static_cast<std::uint32_t>(i / p.barrierInterval),
                     0});
            }
            if (p.lockInterval && i > 0 && i % p.lockInterval == 0) {
                // Migratory critical section: lock, 2 shared RMWs,
                // unlock. Lock choice is hashed so threads contend.
                const std::uint32_t lock =
                    static_cast<std::uint32_t>(rng.next(p.numLocks));
                const Addr prot =
                    sharedBase
                    + (Addr(lock) % shared_lines) * lineBytes;
                ops.push_back({OpType::Lock, lock, 0});
                ops.push_back({OpType::Read, 1, prot});
                ops.push_back({OpType::Write, 1, prot});
                ops.push_back({OpType::Unlock, lock, 0});
            }

            emitCompute();

            // Pick region, maintaining sequential runs.
            if (run_left == 0) {
                run_shared = rng.chance(p.sharedFraction);
                run_left = rng.runLength(p.meanRunLength);
                if (run_shared)
                    shared_cursor = rng.next(shared_lines);
                else
                    priv_cursor = rng.next(private_lines);
            }
            --run_left;

            Addr addr;
            bool is_write;
            if (run_shared) {
                shared_cursor = (shared_cursor + 1) % shared_lines;
                addr = sharedBase + shared_cursor * lineBytes;
                is_write = rng.chance(p.sharedWriteFraction);
            } else {
                priv_cursor = (priv_cursor + 1) % private_lines;
                addr = priv_base + priv_cursor * lineBytes;
                is_write = rng.chance(p.privateWriteFraction);
            }
            ops.push_back({is_write ? OpType::Write : OpType::Read, 1,
                           addr});
        }

        // Final barrier so all threads end together (join semantics).
        ops.push_back({OpType::Barrier, 0xFFFFFFFF, 0});
    }
    (void)barrier_id;
    return traces;
}

} // namespace dve
