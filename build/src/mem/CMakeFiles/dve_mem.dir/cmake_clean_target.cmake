file(REMOVE_RECURSE
  "libdve_mem.a"
)
