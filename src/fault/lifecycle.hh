/**
 * @file
 * Stochastic fault-lifecycle engine: seeded, deterministic fault arrival
 * processes layered on the simulation timeline.
 *
 * Field studies (Sridharan et al., and the replication-aware protection
 * line of work in PAPERS.md) report DRAM fault arrivals per scope as
 * FIT-style rates and distinguish three lifecycles:
 *
 *  - transient:    a one-shot upset that persists latently until the next
 *                  write of the location cures it (descriptor.transient);
 *  - intermittent: a marginal component that flaps between active and
 *                  inactive episodes a bounded number of times;
 *  - permanent:    a hard failure that persists until the affected frame
 *                  is retired (the registry entry is never cured).
 *
 * The engine pre-schedules arrivals per scope from exponential
 * inter-arrival draws, places each fault at coordinates decoded from a
 * uniformly drawn line of the configured footprint (so faults land where
 * a workload can actually observe them), and injects/clears descriptors
 * in a FaultRegistry as simulated time advances. Every draw comes from
 * one seeded Rng, so a run is a pure function of its configuration.
 */

#ifndef DVE_FAULT_LIFECYCLE_HH
#define DVE_FAULT_LIFECYCLE_HH

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.hh"
#include "common/tracer.hh"
#include "common/types.hh"
#include "dram/address_map.hh"
#include "fault/fault.hh"

namespace dve
{

/** Temporal behaviour of a fault (field-study taxonomy). */
enum class FaultKind : std::uint8_t
{
    Transient,
    Intermittent,
    Permanent,
};

constexpr unsigned numFaultKinds = 3;

const char *faultKindName(FaultKind k);

/** Arrival rate and lifecycle mix for one fault scope. */
struct ScopeRate
{
    /** Failures-in-time: expected arrivals per 10^9 device-hours. */
    double fit = 0.0;
    /** Fraction of arrivals that are transient (write-curable). */
    double transient = 0.55;
    /** Fraction that are intermittent (flapping); rest are permanent. */
    double intermittent = 0.30;
};

/** Configuration of the stochastic fault process. */
struct LifecycleConfig
{
    unsigned sockets = 2;
    /** Far-memory pool nodes (0: no pool tier; pool-scope arrivals are
     *  dropped even if their rates are nonzero). */
    unsigned poolNodes = 0;
    DramConfig dram;
    /** Symbol positions the line codec spans (chip-coordinate bound). */
    unsigned chips = 19;
    /** Arrival coordinates are decoded from lines in [0, footprintLines). */
    Addr footprintLines = Addr(1) << 12;
    /**
     * Time-compression factor applied to every FIT rate. Real FIT rates
     * produce one fault per millennia of simulated microseconds; campaigns
     * accelerate time so that trials of ~10^3-10^6 ops observe realistic
     * fault *mixes* at observable frequencies.
     */
    double acceleration = 1.0;
    /** Per-scope rates, indexed by FaultScope. */
    std::array<ScopeRate, numFaultScopes> rates{};

    // Intermittent-fault shape.
    Tick meanActive = 50 * ticksPerUs;   ///< mean active-episode length
    Tick meanInactive = 50 * ticksPerUs; ///< mean dormancy between episodes
    unsigned maxFlaps = 3; ///< active episodes before going dormant for good

    // Shape of LinkLossy arrivals (applied to every lossy descriptor).
    double lossyDropProb = 0.25;              ///< per-message drop chance
    Tick lossyExtraDelay = 200 * ticksPerNs;  ///< added delivery latency

    std::uint64_t seed = 1;

    /**
     * Field-study flavoured defaults: cell faults dominate, most faults
     * are transient, channel/controller faults are rare and permanent.
     * Rates are in FIT; scale with @p acceleration for campaign use.
     */
    static LifecycleConfig fieldDefaults();
};

/** The seeded fault process driving a FaultRegistry over simulated time. */
class FaultLifecycleEngine
{
  public:
    /** One lifecycle transition, kept for reports and determinism tests. */
    struct Event
    {
        enum class Type : std::uint8_t
        {
            Arrive,
            Deactivate, ///< intermittent episode ended (fault cleared)
            Reactivate, ///< intermittent episode began again
        };
        Tick at = 0;
        Type type = Type::Arrive;
        FaultKind kind = FaultKind::Transient;
        FaultScope scope = FaultScope::Cell;
        std::uint64_t faultId = 0;
    };

    struct Stats
    {
        std::uint64_t arrivals = 0;
        std::array<std::uint64_t, numFaultKinds> byKind{};
        std::array<std::uint64_t, numFaultScopes> byScope{};
        std::uint64_t deactivations = 0;
        std::uint64_t reactivations = 0;
    };

    FaultLifecycleEngine(const LifecycleConfig &cfg, FaultRegistry &reg);

    /** Apply every scheduled transition with timestamp <= @p now. */
    void advanceTo(Tick now);

    /** Timestamp of the next pending transition (maxTick when idle). */
    Tick nextEventAt() const;

    /**
     * Stop generating new arrivals; transitions of faults already present
     * (intermittent deactivation/reactivation) still run. Campaigns call
     * this when the workload ends so the drain phase can quiesce: every
     * remaining intermittent flaps off within its bounded episode budget
     * instead of being replaced by fresh arrivals forever.
     */
    void stopArrivals() { arrivalsStopped_ = true; }

    const Stats &stats() const { return stats_; }
    const std::vector<Event> &log() const { return log_; }

    /**
     * Mirror lifecycle transitions into an event tracer (arrivals and
     * reactivations as fault-arrive, deactivations as fault-heal).
     * Pass nullptr to detach; the tracer must outlive this engine.
     */
    void setTracer(EventTracer *t) { tracer_ = t; }

  private:
    struct Pending
    {
        Tick at = 0;
        std::uint64_t seq = 0; ///< FIFO tiebreak for equal timestamps
        Event::Type type = Event::Type::Arrive;
        FaultScope scope = FaultScope::Cell; ///< Arrive: which process fired
        FaultKind kind = FaultKind::Transient;
        FaultDescriptor desc;  ///< flap events re-inject this descriptor
        std::uint64_t faultId = 0;
        unsigned flapsLeft = 0;

        bool operator>(const Pending &o) const
        {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };

    /** Events per tick for one scope (0 disables the process). */
    double ratePerTick(FaultScope s) const;

    /** Exponential draw with the given mean (>= 1 tick). */
    Tick expDraw(double mean_ticks);

    void scheduleArrival(FaultScope s, Tick after);
    void push(Pending p);
    void processArrival(const Pending &p);
    void processFlap(const Pending &p);

    LifecycleConfig cfg_;
    FaultRegistry &reg_;
    AddressMap map_;
    Rng rng_;
    std::priority_queue<Pending, std::vector<Pending>,
                        std::greater<Pending>>
        queue_;
    std::uint64_t nextSeq_ = 0;
    Tick now_ = 0;
    bool arrivalsStopped_ = false;
    Stats stats_;
    std::vector<Event> log_;
    EventTracer *tracer_ = nullptr;
};

} // namespace dve

#endif // DVE_FAULT_LIFECYCLE_HH
