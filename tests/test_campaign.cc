/**
 * @file
 * Tests for the reliability-campaign harness: the headline SDC/DUE
 * ordering (baselines suffer, Dvé does not), deterministic reporting,
 * scheme-independent fault timelines, and the self-healing pipeline
 * returning a transient-only campaign to full dual-copy service.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "fault/campaign.hh"

namespace dve
{
namespace
{

CampaignConfig
tinyCampaign()
{
    CampaignConfig c = CampaignConfig::quickDefaults();
    c.trials = 8;
    c.opsPerTrial = 800;
    return c;
}

TEST(Campaign, SchemeNamesAreStable)
{
    // The JSON report keys on these; renaming breaks downstream parsing.
    EXPECT_STREQ(campaignSchemeName(CampaignScheme::BaselineNone),
                 "baseline-none");
    EXPECT_STREQ(campaignSchemeName(CampaignScheme::BaselineSecDed),
                 "baseline-secded");
    EXPECT_STREQ(campaignSchemeName(CampaignScheme::BaselineDetect),
                 "baseline-dsd-detect");
    EXPECT_STREQ(campaignSchemeName(CampaignScheme::DveAllow), "dve-allow");
    EXPECT_STREQ(campaignSchemeName(CampaignScheme::DveDeny), "dve-deny");
    EXPECT_STREQ(campaignSchemeName(CampaignScheme::BaselinePreventive),
                 "baseline-preventive");
}

TEST(Campaign, DisturbScenarioNamesRoundTrip)
{
    for (unsigned i = 0; i < numDisturbScenarios; ++i) {
        const auto s = static_cast<DisturbScenario>(i);
        const auto parsed = parseDisturbScenario(disturbScenarioName(s));
        ASSERT_TRUE(parsed.has_value()) << disturbScenarioName(s);
        EXPECT_EQ(*parsed, s);
    }
    EXPECT_FALSE(parseDisturbScenario("hammer").has_value());
    // Hammer campaigns add the preventive-refresh scheme to the mix.
    const auto schemes = disturbSchemes();
    EXPECT_EQ(schemes.size(), 6u);
    EXPECT_NE(std::find(schemes.begin(), schemes.end(),
                        CampaignScheme::BaselinePreventive),
              schemes.end());
}

TEST(CampaignPool, PresetAndSchemeNamesAreStable)
{
    EXPECT_STREQ(campaignSchemeName(CampaignScheme::LocalChipkill),
                 "local-chipkill");
    EXPECT_STREQ(campaignSchemeName(CampaignScheme::TwoTier), "two-tier");
    EXPECT_STREQ(fabricScenarioName(FabricScenario::PoolOffline),
                 "pool-node-offline");
    EXPECT_STREQ(fabricScenarioName(FabricScenario::Partition),
                 "fabric-partition");

    const auto schemes = poolSchemes();
    EXPECT_EQ(schemes.size(), 4u);
    EXPECT_NE(std::find(schemes.begin(), schemes.end(),
                        CampaignScheme::TwoTier),
              schemes.end());

    CampaignConfig cfg = CampaignConfig::quickDefaults();
    EXPECT_EQ(cfg.poolNodes, 0u);
    applyPoolPreset(cfg);
    EXPECT_GT(cfg.poolNodes, 0u);
}

TEST(CampaignPool, TwoTierZeroSdcWithHonestDueUnderPoolFaults)
{
    for (const auto scenario :
         {FabricScenario::PoolOffline, FabricScenario::Partition}) {
        CampaignConfig cfg = tinyCampaign();
        cfg.scenario = scenario;
        applyPoolPreset(cfg);
        const CampaignRunner runner(cfg);

        // Two-tier: weak local ECC detects, the pool replica recovers;
        // lost pool copies demote to honest local service -- DUEs are
        // possible (both tiers gone), silent corruption never is.
        const auto two = runner.runScheme(CampaignScheme::TwoTier);
        EXPECT_EQ(two.totals.sdc, 0u) << fabricScenarioName(scenario);
        EXPECT_GT(two.totals.poolReplicaReads, 0u);

        // Detection-only local ECC with no second tier pays in DUEs.
        const auto detect =
            runner.runScheme(CampaignScheme::BaselineDetect);
        EXPECT_GT(detect.totals.due, 0u);
        EXPECT_EQ(detect.totals.poolReplicaReads, 0u);

        if (scenario == FabricScenario::PoolOffline) {
            // Node loss heals back onto survivors.
            EXPECT_GT(two.totals.poolRetargets, 0u);
        } else {
            // A partition leaves no reachable node: repairs defer, no
            // retargets happen, and residency in degraded mode accrues.
            EXPECT_EQ(two.totals.poolRetargets, 0u);
            EXPECT_GT(two.totals.repairDeferrals, 0u);
            EXPECT_GT(two.totals.degradedResidencyTicks, 0.0);
        }
    }
}

TEST(CampaignPool, PoolFreeReportHasNoPoolKeys)
{
    // A campaign without a pool tier must not grow pool JSON keys
    // (pre-pool report consumers see byte-identical shapes).
    CampaignConfig cfg = tinyCampaign();
    cfg.trials = 2;
    std::ostringstream plain;
    writeJsonReport(
        CampaignRunner(cfg).run({CampaignScheme::DveDeny}), plain);
    EXPECT_EQ(plain.str().find("pool"), std::string::npos);

    applyPoolPreset(cfg);
    cfg.scenario = FabricScenario::PoolOffline;
    std::ostringstream pooled;
    writeJsonReport(
        CampaignRunner(cfg).run({CampaignScheme::TwoTier}), pooled);
    EXPECT_NE(pooled.str().find("pool_replica_reads"), std::string::npos);
}

TEST(CampaignMetadata, PresetAndSchemeNamesAreStable)
{
    EXPECT_EQ(numCampaignSchemes, 11u);
    EXPECT_STREQ(campaignSchemeName(CampaignScheme::DveMetaNone),
                 "dve-meta-none");
    EXPECT_STREQ(campaignSchemeName(CampaignScheme::DveMetaParity),
                 "dve-meta-parity");
    EXPECT_STREQ(campaignSchemeName(CampaignScheme::DveMetaEcc),
                 "dve-meta-ecc");
    EXPECT_STREQ(metadataScenarioName(MetadataScenario::MetadataStorm),
                 "metadata-storm");
    EXPECT_STREQ(metadataScenarioName(MetadataScenario::MetadataUnderLoad),
                 "metadata-under-load");
    for (unsigned i = 0; i < numMetadataScenarios; ++i) {
        const auto s = MetadataScenario(i);
        const auto parsed = parseMetadataScenario(metadataScenarioName(s));
        ASSERT_TRUE(parsed) << metadataScenarioName(s);
        EXPECT_EQ(*parsed, s);
    }
    EXPECT_FALSE(parseMetadataScenario("metadata-sleet"));

    const auto schemes = metadataSchemes();
    EXPECT_EQ(schemes.size(), 4u);
    EXPECT_NE(std::find(schemes.begin(), schemes.end(),
                        CampaignScheme::DveMetaParity),
              schemes.end());

    // The storm preset isolates the metadata fault process: every other
    // scope's arrival rate is zeroed, metadata's is not.
    CampaignConfig cfg = CampaignConfig::quickDefaults();
    applyMetadataPreset(cfg, MetadataScenario::MetadataStorm);
    EXPECT_EQ(cfg.metadataScenario, MetadataScenario::MetadataStorm);
    for (unsigned i = 0; i < numFaultScopes; ++i) {
        const double fit = cfg.lifecycle.rates[i].fit;
        if (i == unsigned(FaultScope::Metadata))
            EXPECT_GT(fit, 0.0);
        else
            EXPECT_EQ(fit, 0.0) << faultScopeName(FaultScope(i));
    }
    // Under-load keeps the ambient data-fault process running.
    CampaignConfig mixed = CampaignConfig::quickDefaults();
    applyMetadataPreset(mixed, MetadataScenario::MetadataUnderLoad);
    EXPECT_GT(mixed.lifecycle.rates[unsigned(FaultScope::Metadata)].fit,
              0.0);
    EXPECT_GT(mixed.lifecycle.rates[unsigned(FaultScope::Chip)].fit, 0.0);
}

TEST(CampaignMetadata, ProtectionTiersOrderOutcomesUnderStorm)
{
    CampaignConfig cfg = tinyCampaign();
    cfg.trials = 12;
    cfg.opsPerTrial = 4000;
    applyMetadataPreset(cfg, MetadataScenario::MetadataStorm);
    const CampaignRunner runner(cfg);

    // Unprotected metadata lies: directory consults silently serve
    // stale routing and silent corruption escapes.
    const auto none = runner.runScheme(CampaignScheme::DveMetaNone);
    EXPECT_GT(none.totals.metaLies, 0u);
    EXPECT_GT(none.totals.sdc, 0u);

    // Parity detects every corrupt consult: entries go lost, service
    // degrades honestly (DUE at worst), silent corruption never escapes.
    const auto parity = runner.runScheme(CampaignScheme::DveMetaParity);
    EXPECT_EQ(parity.totals.sdc, 0u);
    EXPECT_GT(parity.totals.metaDetected, 0u);
    EXPECT_EQ(parity.totals.metaLies, 0u);

    // ECC corrects in place: neither lies nor loss.
    const auto ecc = runner.runScheme(CampaignScheme::DveMetaEcc);
    EXPECT_EQ(ecc.totals.sdc, 0u);
    EXPECT_EQ(ecc.totals.due, 0u);
    EXPECT_GT(ecc.totals.metaCorrected, 0u);
    EXPECT_EQ(ecc.totals.metaLies, 0u);
}

TEST(CampaignMetadata, MetadataFreeReportHasNoMetadataKeys)
{
    // Reports only grow metadata/watchdog keys when those features are
    // armed (pre-metadata report consumers see byte-identical shapes).
    CampaignConfig cfg = tinyCampaign();
    cfg.trials = 2;
    std::ostringstream plain;
    writeJsonReport(
        CampaignRunner(cfg).run({CampaignScheme::DveDeny}), plain);
    EXPECT_EQ(plain.str().find("meta_"), std::string::npos);
    EXPECT_EQ(plain.str().find("timed_out"), std::string::npos);
    EXPECT_EQ(plain.str().find("metadata_scenario"), std::string::npos);

    CampaignConfig armed = tinyCampaign();
    armed.trials = 2;
    applyMetadataPreset(armed, MetadataScenario::MetadataStorm);
    std::ostringstream meta;
    writeJsonReport(
        CampaignRunner(armed).run({CampaignScheme::DveMetaParity}), meta);
    EXPECT_NE(meta.str().find("\"metadata_scenario\": \"metadata-storm\""),
              std::string::npos);
    EXPECT_NE(meta.str().find("meta_detected"), std::string::npos);
    EXPECT_NE(meta.str().find("meta_rebuilds"), std::string::npos);
}

TEST(CampaignMetadata, TrialWatchdogMarksTimedOutTrials)
{
    // A 1 ms budget against deliberately huge trials: every trial trips
    // the watchdog, is reported, and the campaign still completes.
    CampaignConfig cfg = tinyCampaign();
    cfg.trials = 2;
    cfg.opsPerTrial = 400000;
    cfg.trialTimeoutMs = 1;
    const auto r = CampaignRunner(cfg).runScheme(CampaignScheme::DveDeny);
    EXPECT_EQ(r.totals.timedOut, 2u);

    std::ostringstream os;
    writeJsonReport(CampaignRunner(cfg).run({CampaignScheme::DveDeny}), os);
    EXPECT_NE(os.str().find("\"trial_timeout_ms\": 1"), std::string::npos);
    EXPECT_NE(os.str().find("\"timed_out\": 1"), std::string::npos);

    // A generous budget never trips (the common CI configuration).
    cfg.opsPerTrial = 800;
    cfg.trialTimeoutMs = 60000;
    const auto ok = CampaignRunner(cfg).runScheme(CampaignScheme::DveDeny);
    EXPECT_EQ(ok.totals.timedOut, 0u);
}

TEST(Campaign, LatencySummaryOrderStatistics)
{
    EXPECT_EQ(summarizeLatencies({}).count, 0u);

    const LatencySummary s = summarizeLatencies({30, 10, 20, 40, 50});
    EXPECT_EQ(s.count, 5u);
    EXPECT_EQ(s.p50, 30u);
    EXPECT_GE(s.p95, s.p50);
    EXPECT_EQ(s.max, 50u);
}

TEST(Campaign, DveZeroSdcWhileBaselinesSuffer)
{
    const CampaignRunner runner(tinyCampaign());
    const auto none = runner.runScheme(CampaignScheme::BaselineNone);
    const auto detect = runner.runScheme(CampaignScheme::BaselineDetect);
    const auto deny = runner.runScheme(CampaignScheme::DveDeny);
    const auto allow = runner.runScheme(CampaignScheme::DveAllow);

    // Unprotected memory silently corrupts; detection-only ECC converts
    // faults into DUEs; Dvé recovers from the replica with zero SDC.
    EXPECT_GT(none.totals.sdc, 0u);
    EXPECT_GT(detect.totals.due, 0u);
    EXPECT_EQ(deny.totals.sdc, 0u);
    EXPECT_EQ(allow.totals.sdc, 0u);
    EXPECT_GT(deny.totals.replicaRecoveries, 0u);
    EXPECT_LT(deny.totals.due, detect.totals.due);

    // The baselines never exercise the recovery pipeline.
    EXPECT_EQ(none.totals.replicaRecoveries, 0u);
    EXPECT_EQ(detect.totals.reReplications, 0u);
    EXPECT_EQ(detect.totals.degradedLinesEnd, 0u);

    // Recovery latencies were measured and summarized.
    EXPECT_EQ(deny.recovery.count,
              deny.totals.recoveryLatencies.size());
    EXPECT_GT(deny.recovery.count, 0u);
    EXPECT_GE(deny.recovery.max, deny.recovery.p50);
}

TEST(Campaign, WorkloadIsSchemeIndependent)
{
    // Workload and fault seeds depend only on (campaign seed, trial), so
    // schemes face the same access stream and the same arrival process.
    // (Arrival *counts* can still differ: each scheme's accesses take
    // different latencies, so its trial covers a different time horizon.)
    const CampaignRunner runner(tinyCampaign());
    const auto none = runner.runScheme(CampaignScheme::BaselineNone);
    const auto deny = runner.runScheme(CampaignScheme::DveDeny);
    ASSERT_EQ(none.trials.size(), deny.trials.size());
    for (std::size_t i = 0; i < none.trials.size(); ++i) {
        EXPECT_EQ(none.trials[i].reads, deny.trials[i].reads);
        EXPECT_EQ(none.trials[i].writes, deny.trials[i].writes);
        EXPECT_GT(none.trials[i].faultArrivals, 0u);
        EXPECT_GT(deny.trials[i].faultArrivals, 0u);
    }
}

TEST(Campaign, ReportIsByteIdenticalAcrossRuns)
{
    CampaignConfig cfg = tinyCampaign();
    cfg.trials = 4;
    const std::vector<CampaignScheme> schemes = {
        CampaignScheme::BaselineDetect,
        CampaignScheme::DveDeny,
    };

    std::ostringstream a, b;
    writeJsonReport(CampaignRunner(cfg).run(schemes), a);
    writeJsonReport(CampaignRunner(cfg).run(schemes), b);
    EXPECT_FALSE(a.str().empty());
    EXPECT_EQ(a.str(), b.str());

    // And a different seed genuinely changes the observations.
    cfg.seed += 1;
    std::ostringstream c;
    writeJsonReport(CampaignRunner(cfg).run(schemes), c);
    EXPECT_NE(a.str(), c.str());
}

TEST(Campaign, ReportIsByteIdenticalAcrossJobCounts)
{
    // The parallel trial runner merges results in trial order, so the
    // JSON report must not depend on the worker count (or, with >1
    // worker, on completion order). 10 trials, serial vs 4 jobs.
    CampaignConfig cfg = tinyCampaign();
    cfg.trials = 10;
    const std::vector<CampaignScheme> schemes = {
        CampaignScheme::BaselineNone,
        CampaignScheme::BaselineDetect,
        CampaignScheme::DveDeny,
    };

    cfg.jobs = 1;
    std::ostringstream serial;
    writeJsonReport(CampaignRunner(cfg).run(schemes), serial);

    cfg.jobs = 4;
    std::ostringstream parallel;
    writeJsonReport(CampaignRunner(cfg).run(schemes), parallel);

    EXPECT_FALSE(serial.str().empty());
    EXPECT_EQ(serial.str(), parallel.str());

    // runScheme() fans out the same way; spot-check per-trial equality.
    cfg.jobs = 1;
    const auto s1 = CampaignRunner(cfg).runScheme(CampaignScheme::DveDeny);
    cfg.jobs = 4;
    const auto s4 = CampaignRunner(cfg).runScheme(CampaignScheme::DveDeny);
    ASSERT_EQ(s1.trials.size(), s4.trials.size());
    for (std::size_t i = 0; i < s1.trials.size(); ++i) {
        EXPECT_EQ(s1.trials[i].due, s4.trials[i].due) << "trial " << i;
        EXPECT_EQ(s1.trials[i].sdc, s4.trials[i].sdc) << "trial " << i;
        EXPECT_EQ(s1.trials[i].faultArrivals, s4.trials[i].faultArrivals)
            << "trial " << i;
        EXPECT_EQ(s1.trials[i].recoveryLatencies,
                  s4.trials[i].recoveryLatencies)
            << "trial " << i;
    }
}

CampaignConfig
hammerCampaign(DisturbScenario sc)
{
    CampaignConfig c = CampaignConfig::quickDefaults();
    c.trials = 4;
    c.opsPerTrial = 1200;
    applyDisturbPreset(c, sc);
    return c;
}

TEST(Campaign, HammerBaselinesCorruptWhileDveStaysClean)
{
    const CampaignRunner runner(
        hammerCampaign(DisturbScenario::HammerSingle));
    const auto none = runner.runScheme(CampaignScheme::BaselineNone);
    // The preset zeroes the ambient rates: every corruption observed
    // below is a victim-row flip from the hammering workload.
    EXPECT_EQ(none.totals.faultArrivals, 0u);
    EXPECT_GT(none.totals.disturbCrossings, 0u);
    EXPECT_GT(none.totals.disturbFaults, 0u);
    EXPECT_GT(none.totals.sdc, 0u);

    // Detection-only ECC converts the flips into DUEs, never SDCs.
    const auto detect = runner.runScheme(CampaignScheme::BaselineDetect);
    EXPECT_GT(detect.totals.due, 0u);
    EXPECT_EQ(detect.totals.sdc, 0u);

    // Dvé detects via TSD and recovers from the replica: zero SDC.
    const auto deny = runner.runScheme(CampaignScheme::DveDeny);
    const auto allow = runner.runScheme(CampaignScheme::DveAllow);
    EXPECT_EQ(deny.totals.sdc, 0u);
    EXPECT_EQ(allow.totals.sdc, 0u);
    EXPECT_GT(deny.totals.replicaRecoveries, 0u);
}

TEST(Campaign, PreventiveRefreshMitigatesHammer)
{
    const CampaignRunner runner(
        hammerCampaign(DisturbScenario::HammerSingle));
    const auto secded = runner.runScheme(CampaignScheme::BaselineSecDed);
    const auto prev =
        runner.runScheme(CampaignScheme::BaselinePreventive);
    // Only the preventive scheme arms the mitigation...
    EXPECT_EQ(secded.totals.preventiveRefreshes, 0u);
    EXPECT_GT(prev.totals.preventiveRefreshes, 0u);
    EXPECT_GT(prev.totals.preventiveStallTicks, 0u);
    // ...and relieving aggressor pressure below HCfirst means fewer
    // victim flips than the same ECC without it.
    EXPECT_LT(prev.totals.disturbFaults, secded.totals.disturbFaults);
}

TEST(Campaign, ManySidedHammerCrossesViaSpilloverFloor)
{
    // More aggressors than counter-table entries: crossings must still
    // occur through the Misra-Gries floor.
    const CampaignRunner runner(
        hammerCampaign(DisturbScenario::HammerManySided));
    const auto none = runner.runScheme(CampaignScheme::BaselineNone);
    EXPECT_GT(none.totals.disturbCrossings, 0u);
    EXPECT_GT(none.totals.disturbFaults, 0u);
}

TEST(Campaign, HammerReportDeterministicAcrossJobCounts)
{
    CampaignConfig cfg =
        hammerCampaign(DisturbScenario::HammerUnderRefreshPressure);
    cfg.trials = 3;
    const auto schemes = disturbSchemes();

    cfg.jobs = 1;
    std::ostringstream serial;
    writeJsonReport(CampaignRunner(cfg).run(schemes), serial);
    cfg.jobs = 4;
    std::ostringstream parallel;
    writeJsonReport(CampaignRunner(cfg).run(schemes), parallel);
    EXPECT_EQ(serial.str(), parallel.str());

    // Hammer reports carry the scenario and the disturbance block.
    EXPECT_NE(serial.str().find("\"disturb_scenario\": "
                                "\"hammer-under-refresh-pressure\""),
              std::string::npos);
    EXPECT_NE(serial.str().find("\"disturb_crossings\""),
              std::string::npos);
    EXPECT_NE(serial.str().find("\"baseline-preventive\""),
              std::string::npos);
}

TEST(Campaign, DisturbFreeReportHasNoDisturbKeys)
{
    // Byte-identity contract: campaigns that never arm the disturbance
    // model must serialize exactly as before the feature existed.
    CampaignConfig cfg = tinyCampaign();
    cfg.trials = 2;
    std::ostringstream os;
    writeJsonReport(
        CampaignRunner(cfg).run({CampaignScheme::BaselineNone}), os);
    EXPECT_EQ(os.str().find("disturb"), std::string::npos);
    EXPECT_EQ(os.str().find("preventive"), std::string::npos);
}

TEST(Campaign, TransientOnlyCampaignSelfHealsToDualCopy)
{
    // With no permanent faults, every degraded line must eventually heal:
    // transients are cured by the repair write itself and intermittents
    // flap off within a bounded number of episodes, after which the
    // maintenance pass re-replicates the line.
    CampaignConfig c = tinyCampaign();
    c.trials = 4;
    c.opsPerTrial = 800;
    c.drainRounds = 60;
    c.dve.repairMaxRetries = 6;
    c.dve.repairRetryBackoff = 5 * ticksPerUs;
    c.lifecycle.acceleration *= 4; // enough pressure to degrade lines
    for (auto &r : c.lifecycle.rates) {
        r.transient = 0.55;
        r.intermittent = 0.45; // sums to 1: no permanents
    }
    c.lifecycle.maxFlaps = 2;
    c.lifecycle.meanActive = 30 * ticksPerUs;
    c.lifecycle.meanInactive = 10 * ticksPerUs;

    const CampaignRunner runner(c);
    const auto res = runner.runScheme(CampaignScheme::DveDeny);

    EXPECT_EQ(res.totals.permanentFaults, 0u);
    EXPECT_GT(res.totals.faultArrivals, 0u);
    EXPECT_EQ(res.totals.sdc, 0u);
    EXPECT_GT(res.totals.degradedEvents, 0u);
    EXPECT_GT(res.totals.reReplications, 0u);
    EXPECT_EQ(res.totals.degradedLinesEnd, 0u);
    EXPECT_GT(res.totals.degradedResidencyTicks, 0.0);
}

} // namespace
} // namespace dve
