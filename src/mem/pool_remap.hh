/**
 * @file
 * Replica placement across far-memory pool nodes.
 *
 * The pool tier spreads replica pages over the configured pool nodes so
 * one node failing takes out only ~1/N of the replicas. Placement must
 * be a pure function of the page address (byte-determinism contract:
 * no RNG, no iteration-order dependence), so the default spread is a
 * hash of the page number; heal-back retargeting installs explicit
 * per-page overrides that survive until the page is re-spread.
 */

#ifndef DVE_MEM_POOL_REMAP_HH
#define DVE_MEM_POOL_REMAP_HH

#include <optional>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace dve
{

/** Deterministic page -> pool-node placement with retarget overrides. */
class PoolRemap
{
  public:
    explicit PoolRemap(unsigned nodes);

    unsigned nodes() const { return nodes_; }

    /** Default (hash-spread) node of a page, ignoring overrides. */
    unsigned spreadNodeFor(Addr page) const;

    /** Current node of a page (override wins over the default spread). */
    unsigned nodeFor(Addr page) const;

    /**
     * Move @p page off its current node onto the first reachable node in
     * deterministic scan order (@p up says whether a node is usable).
     * @return the new node, or nullopt when no other node is up (the
     * page stays where it was; the caller keeps it degraded).
     */
    template <typename Up>
    std::optional<unsigned>
    retarget(Addr page, Up &&up)
    {
        const unsigned cur = nodeFor(page);
        for (unsigned k = 1; k < nodes_; ++k) {
            const unsigned cand = (cur + k) % nodes_;
            if (up(cand)) {
                override_[page] = cand;
                return cand;
            }
        }
        return std::nullopt;
    }

    /** Drop the override: the page returns to the default spread. */
    void clearOverride(Addr page) { override_.erase(page); }

    std::size_t overrides() const { return override_.size(); }

  private:
    unsigned nodes_;
    FlatMap<Addr, unsigned> override_;
};

} // namespace dve

#endif // DVE_MEM_POOL_REMAP_HH
