# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_gf[1]_include.cmake")
include("/root/repo/build/tests/test_reed_solomon[1]_include.cmake")
include("/root/repo/build/tests/test_hamming[1]_include.cmake")
include("/root/repo/build/tests/test_crc[1]_include.cmake")
include("/root/repo/build/tests/test_line_codec[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_dve_engine[1]_include.cmake")
include("/root/repo/build/tests/test_replica_structs[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_replay[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_reliability[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_check[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_dve_paths[1]_include.cmake")
include("/root/repo/build/tests/test_config_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_raim[1]_include.cmake")
