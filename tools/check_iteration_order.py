#!/usr/bin/env python3
"""Static check: no output path iterates a hash container unsorted.

The simulator's hot lookup structures (common/flat_map.hh and the few
remaining std::unordered_map members) iterate in physical-layout order,
which depends on capacity and insertion history. Any code that walks one
of these containers and lets the visit order reach an observable output
(stats dump, JSON export, violation reports, LRU install order) would
make output bytes depend on map layout.

This script enumerates every iteration over a layout-ordered container
in src/ and fails unless the site is in the vetted allowlist below. Each
allowlist entry records WHY the site is order-safe. Adding a new
iteration site therefore forces a determinism review here.

Run from the repo root (or pass it as argv[1]):
    python3 tools/check_iteration_order.py [repo_root]
"""

import re
import sys
from pathlib import Path

# Members backed by FlatMap or std::unordered_map/set, with the files
# they live in (so unrelated members of the same name elsewhere --
# e.g. the vector StatGroup::entries_ -- are not flagged).
HASH_MEMBERS = {
    "entries_": ["src/coherence/directory.hh"],
    "busyUntil_": ["src/coherence/directory.hh",
                   "src/core/replica_directory.hh",
                   "src/core/replica_directory.cc"],
    "backing_": ["src/core/replica_directory.hh",
                 "src/core/replica_directory.cc"],
    "logicalMem_": ["src/coherence/engine.cc", "src/coherence/engine.hh",
                    "src/core/dve_engine.cc", "src/core/dve_engine.hh"],
    "degradedHome_": ["src/core/dve_engine.cc", "src/core/dve_engine.hh"],
    "degradedReplica_": ["src/core/dve_engine.cc",
                         "src/core/dve_engine.hh"],
    "disturbRepairs_": ["src/core/dve_engine.cc",
                        "src/core/dve_engine.hh"],
    "fenceUntil_": ["src/core/dve_engine.cc", "src/core/dve_engine.hh"],
    "regionGrants_": ["src/core/dve_engine.cc", "src/core/dve_engine.hh"],
    "pages_": ["src/core/replica_map.hh"],
    "barriers_": ["src/cpu/replay.hh", "src/cpu/replay.cc"],
    "locks_": ["src/cpu/replay.hh", "src/cpu/replay.cc"],
}

# Methods whose traversal order is flat-map layout order. SetAssocCache
# and AssocLru also expose forEach-style walks, but those iterate a
# plain vector / LRU list whose order is part of simulation semantics,
# not hash layout, so they are not matched here.
LAYOUT_FOREACH = re.compile(
    r"(?:\bdir\.forEach\(|\bdirectory\([^)]*\)\.forEach\(|"
    r"\bforEachBacking\()"
)

RANGE_FOR = re.compile(r"for\s*\(.*:\s*&?(\w+)\s*\)")

# (file, line-content regex) -> justification. Every detected site must
# match exactly one entry; every entry must match at least one site.
ALLOWLIST = [
    # -- primitives: the iteration IS the container implementation -----
    ("src/common/flat_map.hh", r".*",
     "FlatMap implementation itself"),
    ("src/coherence/directory.hh", r"for \(const auto &\[line, e\] : entries_\)",
     "forEach primitive; API contract requires callers to sort"),
    ("src/core/replica_directory.hh", r"for \(const auto &kv : backing_\)",
     "forEachBacking primitive; API contract requires callers to sort"),
    ("src/core/replica_directory.hh", r"forEachBacking\(Fn &&fn\)",
     "forEachBacking declaration, not a traversal"),
    # -- vetted callers ------------------------------------------------
    ("src/coherence/engine.cc", r"sockets_\[h\]\.dir\.forEach",
     "checkInvariants home sweep: collects into `bad`, stable_sorts by "
     "line before reportViolation"),
    ("src/core/dve_engine.cc", r"directory\(h\)\.forEach.*line, const DirEntry &de",
     "checkInvariants deny sweep: collects into `bad`, sorts before "
     "reporting"),
    ("src/core/dve_engine.cc", r"directory\(h\)\.forEach.*line, const DirEntry &e",
     "rebuildDenyBacking / enableReplication / promotePage: collect "
     "into `marks`, sort by line before LRU-visible installs"),
    ("src/core/dve_engine.cc", r"for \(const auto &\[line, value\] : logicalMem_\)",
     "patrolScrub: collects line numbers then sorts before scrubbing"),
    ("src/core/dve_engine.cc", r"for \(const auto &\[line, since\] : degradedHome_\)",
     "degradedResidency: order-independent sum of exact integer-valued "
     "doubles"),
    ("src/core/dve_engine.cc", r"for \(const auto &\[line, since\] : degradedReplica_\)",
     "degradedResidency: order-independent sum of exact integer-valued "
     "doubles"),
]


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    src = root / "src"
    if not src.is_dir():
        print(f"error: {src} not found (run from the repo root)")
        return 2

    sites = []  # (relpath, lineno, text)
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".cc", ".hh"):
            continue
        rel = path.relative_to(root).as_posix()
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            stripped = line.strip()
            if stripped.startswith("*") or stripped.startswith("//"):
                continue
            if LAYOUT_FOREACH.search(line):
                sites.append((rel, lineno, stripped))
                continue
            m = RANGE_FOR.search(line)
            if m and m.group(1) in HASH_MEMBERS \
                    and rel in HASH_MEMBERS[m.group(1)]:
                sites.append((rel, lineno, stripped))

    failures = []
    used = [False] * len(ALLOWLIST)
    for rel, lineno, text in sites:
        for i, (f, pat, _why) in enumerate(ALLOWLIST):
            if rel == f and re.search(pat, text):
                used[i] = True
                break
        else:
            failures.append(
                f"{rel}:{lineno}: unvetted layout-order iteration:\n"
                f"    {text}\n"
                f"  Sort (or otherwise canonicalize) before anything\n"
                f"  observable, then allowlist it here with the reason.")

    for i, (f, pat, why) in enumerate(ALLOWLIST):
        if not used[i] and pat != r".*":
            failures.append(
                f"stale allowlist entry (no matching site): {f} "
                f"/{pat}/ ({why})")

    if failures:
        print(f"check_iteration_order: {len(failures)} problem(s)")
        for msg in failures:
            print(msg)
        return 1
    print(f"check_iteration_order: OK "
          f"({len(sites)} vetted iteration sites)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
