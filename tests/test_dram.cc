/**
 * @file
 * Unit tests for the DRAM address map and timing model.
 */

#include <gtest/gtest.h>

#include "dram/address_map.hh"
#include "dram/dram.hh"

namespace dve
{
namespace
{

TEST(AddressMap, DecodeEncodeRoundTrip)
{
    for (unsigned channels : {1u, 2u}) {
        DramConfig cfg;
        cfg.channels = channels;
        const AddressMap map(cfg);
        for (Addr a = 0; a < (1u << 22); a += 64 * 97) {
            const auto c = map.decode(a);
            EXPECT_EQ(map.encode(c), lineAlign(a));
        }
    }
}

TEST(AddressMap, ConsecutiveLinesInterleaveChannels)
{
    DramConfig cfg = DramConfig::ddr4Replicated();
    const AddressMap map(cfg);
    EXPECT_EQ(map.decode(0).channel, 0u);
    EXPECT_EQ(map.decode(64).channel, 1u);
    EXPECT_EQ(map.decode(128).channel, 0u);
}

TEST(AddressMap, LinesPerRow)
{
    DramConfig cfg;
    const AddressMap map(cfg);
    EXPECT_EQ(map.linesPerRow(), cfg.rowBufferBytes / lineBytes);
}

TEST(AddressMap, BankInterleavesBeforeRow)
{
    DramConfig cfg;
    const AddressMap map(cfg);
    // With 1 channel, consecutive lines hit consecutive banks.
    EXPECT_EQ(map.decode(0).bank, 0u);
    EXPECT_EQ(map.decode(64).bank, 1u);
    EXPECT_EQ(map.decode(64 * 16).bank, 0u);
    EXPECT_EQ(map.decode(64 * 16).column, 1u);
}

class DramTimingTest : public ::testing::Test
{
  protected:
    DramConfig cfg;
    DramModule dram{"mem", DramConfig{}};
};

TEST_F(DramTimingTest, ClosedBankAccessPaysActivate)
{
    const auto r = dram.access(0, false, 0);
    EXPECT_FALSE(r.rowHit);
    EXPECT_EQ(r.readyAt, cfg.tRCD + cfg.tCL + cfg.tBURST);
}

TEST_F(DramTimingTest, RowHitIsCheaper)
{
    const auto first = dram.access(0, false, 0);
    // Same row, next line in the row buffer: skip the channel-interleave
    // by stepping a full bank rotation (16 lines) to stay in bank 0's row.
    const auto hit = dram.access(64 * 16, false, first.readyAt);
    EXPECT_TRUE(hit.rowHit);
    EXPECT_EQ(hit.readyAt - first.readyAt, cfg.tCL + cfg.tBURST);
}

TEST_F(DramTimingTest, RowConflictPaysPrechargeRespectingTras)
{
    const auto first = dram.access(0, false, 0);
    // A different row in the same bank: with 16 banks, 1 channel and 16
    // lines/row, rows advance every 16*16 lines.
    const Addr conflict_addr = Addr(64) * 16 * 16;
    ASSERT_EQ(dram.map().decode(conflict_addr).bank, 0u);
    ASSERT_NE(dram.map().decode(conflict_addr).row,
              dram.map().decode(0).row);

    const auto conf = dram.access(conflict_addr, false, first.readyAt);
    EXPECT_FALSE(conf.rowHit);
    // Precharge may not start before tRAS after the original activate (t=0).
    const Tick pre_start = std::max(first.readyAt, Tick(cfg.tRAS));
    EXPECT_EQ(conf.readyAt,
              pre_start + cfg.tRP + cfg.tRCD + cfg.tCL + cfg.tBURST);
}

TEST_F(DramTimingTest, BankParallelismOverlaps)
{
    // Two accesses to different banks at the same time only serialize on
    // the data bus (tBURST), not on the full access latency.
    const auto a = dram.access(0, false, 0);
    const auto b = dram.access(64, false, 0); // bank 1
    EXPECT_EQ(b.readyAt - a.readyAt, cfg.tBURST);
}

TEST_F(DramTimingTest, TwoChannelsDoubleBusThroughput)
{
    DramModule two("mem2", DramConfig::ddr4Replicated());
    const auto a = two.access(0, false, 0);   // channel 0
    const auto b = two.access(64, false, 0);  // channel 1
    EXPECT_EQ(a.readyAt, b.readyAt); // fully parallel
}

TEST_F(DramTimingTest, CountersTrackOutcomes)
{
    dram.access(0, false, 0);
    dram.access(64 * 16, true, 100000);       // row hit, write
    dram.access(Addr(64) * 16 * 16, false, 200000); // conflict
    EXPECT_EQ(dram.reads(), 2u);
    EXPECT_EQ(dram.writes(), 1u);
    EXPECT_EQ(dram.activates(), 2u);
    EXPECT_EQ(dram.stats().get("row_hits"), 1.0);
    EXPECT_EQ(dram.stats().get("row_conflicts"), 1.0);
    EXPECT_NEAR(dram.rowHitRate(), 1.0 / 3.0, 1e-12);

    dram.resetStats();
    EXPECT_EQ(dram.reads(), 0u);
}

TEST_F(DramTimingTest, LateRequestStartsAtNow)
{
    const Tick late = 1000 * ticksPerNs;
    const auto r = dram.access(0, false, late);
    EXPECT_EQ(r.readyAt, late + cfg.tRCD + cfg.tCL + cfg.tBURST);
}

TEST(DramConfigTest, RowsPerBankSane)
{
    DramConfig cfg;
    // 8 GB / (16 banks * 1 KB row) = 512 Ki rows.
    EXPECT_EQ(cfg.rowsPerBank(), (8ULL << 30) / (16 * 1024));
    EXPECT_EQ(cfg.devicesPerRank(), 9u);
}

TEST_F(DramTimingTest, WriteUsesTcwlWhenConfigured)
{
    DramConfig c;
    c.refreshEnabled = false;
    c.tCWL = nsToTicks(10.0);
    DramModule wr("cwl-w", c);
    EXPECT_EQ(wr.access(0, true, 0).readyAt,
              c.tRCD + c.tCWL + c.tBURST);
    // Reads keep tCL.
    DramModule rd("cwl-r", c);
    EXPECT_EQ(rd.access(0, false, 0).readyAt,
              c.tRCD + c.tCL + c.tBURST);
}

TEST_F(DramTimingTest, TcwlZeroKeepsLegacyWriteLatency)
{
    DramConfig c;
    c.refreshEnabled = false;
    ASSERT_EQ(c.tCWL, 0u);
    DramModule m("cwl-0", c);
    EXPECT_EQ(m.access(0, true, 0).readyAt, c.tRCD + c.tCL + c.tBURST);
}

TEST_F(DramTimingTest, FawDelaysFifthActivate)
{
    DramConfig c;
    c.refreshEnabled = false;
    c.tFAW = nsToTicks(100.0);
    DramModule faw("faw", c);
    DramConfig base = c;
    base.tFAW = 0;
    DramModule free_("faw-off", base);

    // Back-to-back activates to five different banks, all issued at 0.
    Tick faw5 = 0, free5 = 0;
    for (unsigned b = 0; b < 5; ++b) {
        const Tick with = faw.access(Addr(64) * b, false, 0).readyAt;
        const Tick without = free_.access(Addr(64) * b, false, 0).readyAt;
        if (b < 4) {
            // The first four activates fit in one tFAW window untouched.
            EXPECT_EQ(with, without) << "bank " << b;
        }
        faw5 = with;
        free5 = without;
    }
    // The fifth activate must wait out the window: its CAS starts at
    // tFAW + tRCD instead of riding the data bus right behind #4.
    EXPECT_EQ(faw5, c.tFAW + c.tRCD + c.tCL + c.tBURST);
    EXPECT_LT(free5, faw5);
}

TEST_F(DramTimingTest, RefreshBoundaryAtExactlyLastPlusTrfc)
{
    // An access landing exactly at (refresh start + tRFC) clears the
    // blackout with zero stall; one tick earlier stalls exactly one.
    DramConfig c;
    DramModule at("ref-at", c);
    const auto r = at.access(0, false, c.tREFI + c.tRFC);
    EXPECT_EQ(r.readyAt, c.tREFI + c.tRFC + c.tRCD + c.tCL + c.tBURST);
    EXPECT_EQ(at.stats().get("refresh_stall_ticks"), 0.0);
    EXPECT_EQ(at.refreshes(), 1u);

    DramModule before("ref-before", c);
    const auto s = before.access(0, false, c.tREFI + c.tRFC - 1);
    EXPECT_EQ(s.readyAt, c.tREFI + c.tRFC + c.tRCD + c.tCL + c.tBURST);
    EXPECT_EQ(before.stats().get("refresh_stall_ticks"), 1.0);
}

TEST_F(DramTimingTest, RefreshCatchUpCountsEveryElapsedPeriod)
{
    // First access long after several tREFI periods: the model retires
    // all elapsed refreshes and only the last blackout can still stall.
    DramConfig c;
    DramModule m("ref-catchup", c);
    const Tick now = 3 * c.tREFI + 10;
    const auto r = m.access(0, false, now);
    EXPECT_EQ(m.refreshes(), 3u);
    EXPECT_EQ(m.stats().get("refresh_stall_ticks"),
              static_cast<double>(c.tRFC - 10));
    EXPECT_EQ(r.readyAt,
              3 * c.tREFI + c.tRFC + c.tRCD + c.tCL + c.tBURST);
}

/** Hammer helper: byte address of (bank 0, row, column 0). */
Addr
rowAddr(const DramModule &m, std::uint64_t row)
{
    DramCoord c;
    c.row = row;
    return m.map().encode(c);
}

TEST_F(DramTimingTest, DisturbCrossingEmitsDeterministicEvents)
{
    DramConfig c;
    c.refreshEnabled = false;
    c.disturbEnabled = true;
    c.disturbThreshold = 8;
    c.disturbThresholdSpread = 0;
    DramModule m("dist", c);

    EXPECT_TRUE(m.disturbActive());
    EXPECT_FALSE(m.disturbPending());

    // Alternate two rows of bank 0: every access conflicts, so every
    // access is one activate of its row.
    Tick now = 0;
    for (unsigned i = 0; i < 16; ++i)
        now = m.access(rowAddr(m, 2 + 3 * (i % 2)), false, now).readyAt;

    ASSERT_TRUE(m.disturbPending());
    const auto events = m.drainDisturbEvents();
    EXPECT_FALSE(m.disturbPending());
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].coord.row, 2u);
    EXPECT_EQ(events[0].count, 8u);
    EXPECT_EQ(events[0].ordinal, 1u);
    EXPECT_EQ(events[1].coord.row, 5u);
    EXPECT_EQ(events[1].ordinal, 2u);
    EXPECT_EQ(m.disturbCrossings(), 2u);
    EXPECT_EQ(m.stats().get("disturb_crossings"), 2.0);

    // A crossing resets the aggressor's count: 8 more activates per row
    // are needed before the next event.
    for (unsigned i = 0; i < 14; ++i)
        now = m.access(rowAddr(m, 2 + 3 * (i % 2)), false, now).readyAt;
    EXPECT_FALSE(m.disturbPending());
    now = m.access(rowAddr(m, 2), false, now).readyAt;
    now = m.access(rowAddr(m, 5), false, now).readyAt;
    EXPECT_EQ(m.drainDisturbEvents().size(), 2u);
}

TEST_F(DramTimingTest, DisturbThresholdSeededPerRow)
{
    DramConfig c;
    c.disturbEnabled = true;
    c.disturbThreshold = 24;
    c.disturbThresholdSpread = 8;
    c.disturbSeed = 7;
    DramModule a("dist-a", c);
    DramModule b("dist-b", c);
    c.disturbSeed = 8;
    DramModule d("dist-c", c);

    bool differs = false;
    for (std::uint64_t row = 0; row < 64; ++row) {
        DramCoord coord;
        coord.row = row;
        const std::uint64_t ta = a.disturbThresholdFor(coord);
        EXPECT_GE(ta, c.disturbThreshold);
        EXPECT_LE(ta, c.disturbThreshold + c.disturbThresholdSpread);
        // Same seed -> same per-row HCfirst in every module instance.
        EXPECT_EQ(ta, b.disturbThresholdFor(coord));
        differs |= ta != d.disturbThresholdFor(coord);
    }
    EXPECT_TRUE(differs); // a different seed reshuffles weak rows
}

TEST_F(DramTimingTest, DisturbSpilloverFloorCatchesManySided)
{
    // More aggressors than table entries: untracked rows ride the
    // Misra-Gries floor, so a many-sided pattern still crosses.
    DramConfig c;
    c.refreshEnabled = false;
    c.disturbEnabled = true;
    c.disturbTableEntries = 2;
    c.disturbThreshold = 8;
    c.disturbThresholdSpread = 0;
    DramModule m("dist-many", c);

    Tick now = 0;
    for (unsigned i = 0; i < 64; ++i)
        now = m.access(rowAddr(m, 1 + (i % 4)), false, now).readyAt;
    EXPECT_GT(m.disturbCrossings(), 0u);
    EXPECT_TRUE(m.disturbPending());
}

TEST_F(DramTimingTest, PreventiveRefreshRelievesAggressorPressure)
{
    DramConfig c;
    c.refreshEnabled = false;
    c.disturbEnabled = true;
    c.disturbThreshold = 100; // never reached: mitigation fires first
    c.disturbThresholdSpread = 0;
    c.preventiveRefreshEnabled = true;
    c.preventiveRefreshThreshold = 4;
    DramModule m("dist-prev", c);

    Tick now = 0;
    for (unsigned i = 0; i < 24; ++i)
        now = m.access(rowAddr(m, 2 + 3 * (i % 2)), false, now).readyAt;

    // Both victim neighbors are refreshed at each trigger, the bank
    // pays a real blackout, and no crossing ever fires.
    EXPECT_GT(m.preventiveRefreshes(), 0u);
    EXPECT_EQ(m.preventiveRefreshes() % 2, 0u);
    EXPECT_GT(m.preventiveStallTicks(), 0u);
    EXPECT_EQ(m.preventiveStall().count(), m.preventiveRefreshes() / 2);
    EXPECT_EQ(m.disturbCrossings(), 0u);
    EXPECT_FALSE(m.disturbPending());

    m.resetStats();
    EXPECT_EQ(m.preventiveRefreshes(), 0u);
    EXPECT_EQ(m.preventiveStallTicks(), 0u);
    EXPECT_EQ(m.preventiveStall().count(), 0u);
}

TEST_F(DramTimingTest, RefreshResetsDisturbCounters)
{
    DramConfig c;
    c.disturbEnabled = true;
    c.disturbThreshold = 8;
    c.disturbThresholdSpread = 0;
    DramModule m("dist-refresh", c);

    // Seven activates per aggressor, then jump past the next refresh:
    // the tables reset, so seven more per interval never cross.
    Tick now = 0;
    for (unsigned i = 0; i < 14; ++i)
        now = m.access(rowAddr(m, 2 + 3 * (i % 2)), false, now).readyAt;
    ASSERT_LT(now, c.tREFI);
    now = c.tREFI + c.tRFC;
    for (unsigned i = 0; i < 14; ++i)
        now = m.access(rowAddr(m, 2 + 3 * (i % 2)), false, now).readyAt;
    EXPECT_EQ(m.disturbCrossings(), 0u);

    // The same 28 activates without the intervening refresh do cross.
    DramConfig nc = c;
    nc.refreshEnabled = false;
    DramModule n("dist-norefresh", nc);
    now = 0;
    for (unsigned i = 0; i < 28; ++i)
        now = n.access(rowAddr(n, 2 + 3 * (i % 2)), false, now).readyAt;
    EXPECT_GT(n.disturbCrossings(), 0u);
}

TEST_F(DramTimingTest, DisturbDisabledRegistersNoStats)
{
    DramConfig c;
    DramModule m("plain", c);
    EXPECT_FALSE(m.disturbActive());
    EXPECT_FALSE(m.stats().has("disturb_crossings"));
    EXPECT_FALSE(m.stats().has("preventive_refreshes"));
}

} // namespace
} // namespace dve
