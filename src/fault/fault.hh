/**
 * @file
 * DRAM fault descriptors and the system-wide fault registry.
 *
 * Faults are expressed at the granularities field studies report (Sec. II
 * of the paper): cell, row, column, bank, chip, channel, and memory
 * controller. The registry answers, for one decoded access, which chips
 * return corrupted data and whether the channel/controller path itself has
 * failed (hard failures that bus CRC / timeouts detect but cannot correct).
 */

#ifndef DVE_FAULT_FAULT_HH
#define DVE_FAULT_FAULT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/address_map.hh"

namespace dve
{

/** Granularity of a fault. */
enum class FaultScope : std::uint8_t
{
    Cell,       ///< single bit in one chip at (bank, row, column)
    Row,        ///< a whole row within one chip's bank
    Column,     ///< a column within one chip's bank
    Bank,       ///< a whole bank within one chip
    Chip,       ///< an entire device
    Channel,    ///< the channel path (bus/shared circuitry)
    Controller, ///< the whole memory controller of a socket
};

const char *faultScopeName(FaultScope s);

/** One injected fault. Unused coordinate fields are ignored per scope. */
struct FaultDescriptor
{
    FaultScope scope = FaultScope::Chip;
    unsigned socket = 0;
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned chip = 0;          ///< device index within the codeword group
    unsigned bank = 0;
    std::uint64_t row = 0;
    unsigned column = 0;        ///< line slot within the row
    unsigned bit = 0;           ///< for Cell scope: bit within the byte
    bool transient = false;     ///< curable by a repair write
    std::uint64_t id = 0;       ///< assigned by the registry
};

/** What a given access sees. */
struct FaultImpact
{
    /** Chips whose bytes are fully corrupted for this access. */
    std::vector<unsigned> corruptChips;
    /** (chip, bit) single-bit flips from Cell faults. */
    std::vector<std::pair<unsigned, unsigned>> bitFlips;
    /** Channel/controller hard failure: detected, no data. */
    bool pathFailed = false;

    bool any() const
    {
        return pathFailed || !corruptChips.empty() || !bitFlips.empty();
    }
};

/** Mutable registry of active faults. */
class FaultRegistry
{
  public:
    FaultRegistry() = default;

    /** Activate a fault; returns its id. */
    std::uint64_t inject(FaultDescriptor f);

    /** Deactivate by id. @return true if it was active. */
    bool clear(std::uint64_t id);

    /** Deactivate everything. */
    void clearAll() { faults_.clear(); }

    /** Active fault count. */
    std::size_t activeCount() const { return faults_.size(); }

    /**
     * Impact on a read of @p coord in @p socket on @p channel
     * (channel is passed separately so mirrored controllers can remap).
     */
    FaultImpact impact(unsigned socket, unsigned channel,
                       const DramCoord &coord) const;

    /**
     * A repair write occurred at this location: drop matching transient
     * faults. @return number of faults cured.
     */
    unsigned repairAt(unsigned socket, unsigned channel,
                      const DramCoord &coord);

    const std::vector<FaultDescriptor> &active() const { return faults_; }

  private:
    static bool matches(const FaultDescriptor &f, unsigned socket,
                        unsigned channel, const DramCoord &coord);

    std::vector<FaultDescriptor> faults_;
    std::uint64_t nextId_ = 1;
};

} // namespace dve

#endif // DVE_FAULT_FAULT_HH
