/**
 * @file
 * Tests for Coherent Replication: protocol behaviour of the allow/deny
 * replica directories, dual-copy writebacks, replica recovery, degraded
 * mode, on-demand RMT replication, and randomized stress with full value
 * validation for all protocol variants.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/dve_engine.hh"

namespace dve
{
namespace
{

EngineConfig
smallConfig()
{
    EngineConfig cfg;
    cfg.l1Bytes = 1024;
    cfg.llcBytes = 16 * 1024;
    cfg.dram = DramConfig::ddr4Replicated();
    return cfg;
}

DveConfig
dveCfg(DveProtocol p)
{
    DveConfig d;
    d.protocol = p;
    return d;
}

Addr
addrAt(unsigned page, unsigned line_in_page = 0)
{
    return Addr(page) * pageBytes + Addr(line_in_page) * lineBytes;
}

TEST(DveEngine, ReplicaSideReadAvoidsInterSocket_Deny)
{
    DveEngine e(smallConfig(), dveCfg(DveProtocol::Deny));
    // Page 0 homes at socket 0; socket 1 is the replica side.
    const auto r = e.access(1, 0, addrAt(0), false, 0, 0);
    EXPECT_EQ(r.value, 0u);
    // Deny: no entry anywhere means readable -> fully local service.
    EXPECT_EQ(e.interconnect().interSocketMessages(), 0u);
    EXPECT_EQ(e.replicaLocalReads(), 1u);
}

TEST(DveEngine, ReplicaReadIsFasterThanBaselineRemoteRead)
{
    CoherenceEngine base(smallConfig());
    DveEngine dve(smallConfig(), dveCfg(DveProtocol::Deny));
    const Tick base_lat = base.access(1, 0, addrAt(0), false, 0, 0).done;
    const Tick dve_lat = dve.access(1, 0, addrAt(0), false, 0, 0).done;
    EXPECT_LT(dve_lat, base_lat);
    // It should beat it by roughly the inter-socket round trip.
    EXPECT_GE(base_lat - dve_lat,
              smallConfig().noc.interSocketLatency);
}

TEST(DveEngine, AllowPullsPermissionOnceThenLocal)
{
    DveEngine e(smallConfig(), dveCfg(DveProtocol::Allow));
    // First replica-side read pulls permission from home.
    Tick t = e.access(1, 0, addrAt(0), false, 0, 0).done;
    EXPECT_EQ(e.permissionPulls(), 1u);
    const auto msgs_after_pull = e.interconnect().interSocketMessages();
    EXPECT_GT(msgs_after_pull, 0u);

    // Evict the L1/LLC copy by touching other lines? Simpler: another
    // line in the same page pulls again, but a repeat of the same line
    // after LLC eviction uses the retained permission. Here, read a
    // second line: pulls again (per-line permissions).
    t = e.access(1, 0, addrAt(0, 1), false, 0, t).done;
    EXPECT_EQ(e.permissionPulls(), 2u);
    EXPECT_EQ(e.replicaLocalReads(), 2u);
}

TEST(DveEngine, DenyPushesRmOnHomeSideWrite)
{
    DveEngine e(smallConfig(), dveCfg(DveProtocol::Deny));
    Tick t = 0;
    // Replica-side socket 1 reads page 0 (homed at 0): local replica.
    t = e.access(1, 0, addrAt(0), false, 0, t).done;
    EXPECT_EQ(e.replicaLocalReads(), 1u);

    // Home-side socket 0 writes: must push RM and invalidate socket 1's
    // cached copy.
    t = e.access(0, 0, addrAt(0), true, 99, t).done;
    EXPECT_EQ(e.rmPushes(), 1u);

    // Socket 1 reads again: RM forces a home forward with fresh data.
    const auto r = e.access(1, 0, addrAt(0), false, 0, t);
    EXPECT_EQ(r.value, 99u);
    EXPECT_GE(e.dveStats().get("home_forwards"), 1.0);
}

TEST(DveEngine, AllowInvalidatesPulledPermissionOnWrite)
{
    DveEngine e(smallConfig(), dveCfg(DveProtocol::Allow));
    Tick t = 0;
    t = e.access(1, 0, addrAt(0), false, 0, t).done; // pull + local read
    t = e.access(0, 0, addrAt(0), true, 7, t).done;  // home-side write
    // Permission gone: replica dir must not claim Readable.
    EXPECT_FALSE(e.replicaDirectory(1).hasLineEntry(lineNum(addrAt(0))));
    const auto r = e.access(1, 0, addrAt(0), false, 0, t);
    EXPECT_EQ(r.value, 7u);
}

TEST(DveEngine, WritebackUpdatesBothMemories)
{
    EngineConfig cfg = smallConfig();
    cfg.llcBytes = 4 * 1024; // 64 lines -> evictions come quickly
    DveEngine e(cfg, dveCfg(DveProtocol::Deny));
    Tick t = 0;
    const Addr victim = addrAt(0);
    t = e.access(0, 0, victim, true, 4242, t).done;

    for (unsigned i = 1; i <= 30; ++i) {
        const Addr a = addrAt(2 * i, 0);
        if (lineNum(a) % 4 != lineNum(victim) % 4)
            continue;
        t = e.access(0, 0, a, false, 0, t).done;
    }
    EXPECT_EQ(e.memory(0).peek(victim), 4242u); // home copy
    EXPECT_EQ(e.memory(1).peek(victim), 4242u); // replica copy
    EXPECT_GT(e.dveStats().get("replica_writes"), 0.0);
}

TEST(DveEngine, RecoversFromHomeMemoryFaultViaReplica)
{
    EngineConfig cfg = smallConfig();
    cfg.llcBytes = 4 * 1024;
    DveEngine e(cfg, dveCfg(DveProtocol::Deny));
    Tick t = 0;
    const Addr a = addrAt(0);
    t = e.access(0, 0, a, true, 1111, t).done;
    // Flush it to memory by conflict pressure.
    for (unsigned i = 1; i <= 30; ++i) {
        const Addr b = addrAt(2 * i, 0);
        if (lineNum(b) % 4 != lineNum(a) % 4)
            continue;
        t = e.access(0, 0, b, false, 0, t).done;
    }
    ASSERT_EQ(e.memory(0).peek(a), 1111u);

    // Double-chip fault at home: Chipkill cannot correct, Dvé diverts.
    for (unsigned chip : {0u, 9u}) {
        FaultDescriptor f;
        f.scope = FaultScope::Chip;
        f.socket = 0;
        f.chip = chip;
        e.faultRegistry().inject(f);
    }
    const auto r = e.access(0, 0, a, false, 0, t);
    EXPECT_EQ(r.value, 1111u);
    EXPECT_EQ(e.machineCheckExceptions(), 0u);
    EXPECT_GE(e.replicaRecoveries(), 1u);
}

TEST(DveEngine, ControllerFaultRecoveredViaOtherSocket)
{
    // The headline reliability claim: even a whole memory-controller
    // failure is survivable because the replica lives behind a different
    // controller on a different socket.
    EngineConfig cfg = smallConfig();
    cfg.llcBytes = 4 * 1024;
    DveEngine e(cfg, dveCfg(DveProtocol::Deny));
    Tick t = 0;
    const Addr a = addrAt(0);
    t = e.access(0, 0, a, true, 77, t).done;
    for (unsigned i = 1; i <= 30; ++i) {
        const Addr b = addrAt(2 * i, 0);
        if (lineNum(b) % 4 != lineNum(a) % 4)
            continue;
        t = e.access(0, 0, b, false, 0, t).done;
    }
    FaultDescriptor f;
    f.scope = FaultScope::Controller;
    f.socket = 0;
    e.faultRegistry().inject(f);

    const auto r = e.access(0, 0, a, false, 0, t);
    EXPECT_EQ(r.value, 77u);
    EXPECT_EQ(e.machineCheckExceptions(), 0u);
    EXPECT_GE(e.replicaRecoveries(), 1u);
    EXPECT_GT(e.degradedLines(), 0u); // hard fault -> degraded copy
}

TEST(DveEngine, BothCopiesDeadIsDue)
{
    EngineConfig cfg = smallConfig();
    cfg.validateValues = false; // data loss expected
    DveEngine e(cfg, dveCfg(DveProtocol::Deny));
    for (unsigned s : {0u, 1u}) {
        FaultDescriptor f;
        f.scope = FaultScope::Controller;
        f.socket = s;
        e.faultRegistry().inject(f);
    }
    e.access(0, 0, addrAt(0), false, 0, 0);
    EXPECT_GE(e.machineCheckExceptions(), 1u);
}

TEST(DveEngine, TransientFaultRepairedNotDegraded)
{
    EngineConfig cfg = smallConfig();
    DveEngine e(cfg, dveCfg(DveProtocol::Deny));
    FaultDescriptor f;
    f.scope = FaultScope::Chip;
    f.socket = 1; // replica-side memory of page 0... socket 1 memory
    f.chip = 2;
    f.transient = true;
    // DSD-style: make detection fire but not correct: use two chips.
    FaultDescriptor f2 = f;
    f2.chip = 10;
    e.faultRegistry().inject(f);
    e.faultRegistry().inject(f2);

    // Socket 1 replica-side read of page 0 hits its faulty local copy,
    // recovers from home, repairs (transient faults cured by rewrite).
    const auto r = e.access(1, 0, addrAt(0), false, 0, 0);
    EXPECT_EQ(r.value, 0u);
    EXPECT_GE(e.replicaRecoveries(), 1u);
    EXPECT_EQ(e.degradedLines(), 0u);
    EXPECT_GE(e.repairedCopies(), 1u);
    EXPECT_EQ(e.faultRegistry().activeCount(), 0u);
}

TEST(DveEngine, PartialReplicationFallsBackToBaseline)
{
    EngineConfig cfg = smallConfig();
    DveConfig d = dveCfg(DveProtocol::Deny);
    d.replicateAll = false;
    DveEngine e(cfg, d);

    // No RMT entries: remote reads behave like baseline NUMA.
    e.access(1, 0, addrAt(0), false, 0, 0);
    EXPECT_EQ(e.replicaLocalReads(), 0u);
    EXPECT_GT(e.interconnect().interSocketMessages(), 0u);
}

TEST(DveEngine, OnDemandReplicationViaRmt)
{
    EngineConfig cfg = smallConfig();
    DveConfig d = dveCfg(DveProtocol::Deny);
    d.replicateAll = false;
    DveEngine e(cfg, d);
    Tick t = 0;

    // Write some data while unreplicated and push it to memory.
    t = e.access(0, 0, addrAt(0), true, 555, t).done;

    // Enable replication for page 0 onto socket 1: memory image seeded,
    // dirty lines marked RM so the replica is never read stale.
    e.enableReplication(0, 1);
    ASSERT_TRUE(e.replicaMap().replicaSocket(lineNum(addrAt(0)), 0)
                    .has_value());

    // Socket 1 read: the line is dirty in socket 0's LLC, so the RM seed
    // must force a home forward (stale-replica read would return 0).
    const auto r = e.access(1, 0, addrAt(0), false, 0, t);
    EXPECT_EQ(r.value, 555u);

    // A clean line of the same page is served from the local replica.
    const auto r2 = e.access(1, 0, addrAt(0, 2), false, 0, r.done);
    EXPECT_EQ(r2.value, 0u);
    EXPECT_GE(e.replicaLocalReads(), 1u);

    e.disableReplication(0);
    EXPECT_FALSE(e.replicaMap().replicaSocket(lineNum(addrAt(0)), 0)
                     .has_value());
}

TEST(DveEngine, SpeculationCountersMove)
{
    EngineConfig cfg = smallConfig();
    DveConfig d = dveCfg(DveProtocol::Deny);
    d.replicaDirEntries = 4; // tiny on-chip structure -> misses
    DveEngine e(cfg, d);
    Tick t = 0;
    for (unsigned l = 0; l < 32; ++l)
        t = e.access(1, 0, addrAt(0, l % 16), false, 0, t).done;
    EXPECT_GT(e.speculationWins(), 0u);
    EXPECT_GT(e.replicaDirectory(1).onChipMisses(), 0u);
}

TEST(DveEngine, OracularDirectoryNeverMisses)
{
    EngineConfig cfg = smallConfig();
    DveConfig d = dveCfg(DveProtocol::Allow);
    d.oracular = true;
    DveEngine e(cfg, d);
    Tick t = 0;
    for (unsigned p = 0; p < 8; ++p)
        for (unsigned l = 0; l < 16; ++l)
            t = e.access(1, 0, addrAt(p, l), false, 0, t).done;
    // Second sweep: every lookup hits on-chip.
    const auto misses_before = e.replicaDirectory(1).onChipMisses();
    for (unsigned p = 0; p < 8; ++p)
        for (unsigned l = 0; l < 16; ++l)
            t = e.access(1, 0, addrAt(p, l), false, 0, t).done;
    // (L1/LLC absorb most; force LLC misses with a bigger sweep is not
    // needed -- just assert misses did not explode.)
    EXPECT_EQ(e.replicaDirectory(1).onChipMisses(), misses_before);
}

TEST(DveEngine, CoarseGrainRegionGrantAndInvalidation)
{
    EngineConfig cfg = smallConfig();
    DveConfig d = dveCfg(DveProtocol::Allow);
    d.coarseGrain = true;
    DveEngine e(cfg, d);
    Tick t = 0;

    // Pull for one line of a clean page: grants the whole region.
    t = e.access(1, 0, addrAt(0, 0), false, 0, t).done;
    EXPECT_TRUE(e.replicaDirectory(1).regionCovers(lineNum(addrAt(0, 0))));

    // Another line of the region: served locally with no new pull.
    const auto pulls = e.permissionPulls();
    t = e.access(1, 0, addrAt(0, 5), false, 0, t).done;
    EXPECT_EQ(e.permissionPulls(), pulls);

    // Home-side write anywhere in the region kills the region grant.
    t = e.access(0, 0, addrAt(0, 9), true, 1, t).done;
    EXPECT_FALSE(
        e.replicaDirectory(1).regionCovers(lineNum(addrAt(0, 0))));

    // Correctness after the region invalidation.
    const auto r = e.access(1, 0, addrAt(0, 9), false, 0, t);
    EXPECT_EQ(r.value, 1u);
}

class DveStressTest : public ::testing::TestWithParam<DveProtocol>
{
};

TEST_P(DveStressTest, RandomTrafficValueValidated)
{
    EngineConfig cfg = smallConfig();
    cfg.validateValues = true;
    DveConfig d = dveCfg(GetParam());
    d.epochOps = 2000; // exercise dynamic switching in-stress
    d.replicaDirEntries = 64; // force permission evictions
    DveEngine e(cfg, d);
    Rng rng(777);

    std::vector<Addr> pool;
    for (unsigned p = 0; p < 8; ++p)
        for (unsigned l = 0; l < 8; ++l)
            pool.push_back(addrAt(p, l));

    Tick t = 0;
    for (int op = 0; op < 40000; ++op) {
        const unsigned c = static_cast<unsigned>(rng.next(16));
        const Addr a = pool[rng.next(pool.size())];
        const bool w = rng.chance(0.35);
        t = e.access(c / 8, c % 8, a, w, rng.engine()(), t).done;
    }
    EXPECT_EQ(e.sdcReadsObserved(), 0u);
    EXPECT_GT(e.replicaLocalReads(), 0u);

    // Replica-consistency sweep: any line that is clean at the home
    // directory (absent or S) must have identical home/replica memory.
    for (const Addr a : pool) {
        const Addr line = lineNum(a);
        const unsigned h = e.homeSocket(line);
        DirEntry *de = e.directory(h).find(line);
        if (de
            && (de->state == LineState::M || de->state == LineState::O)) {
            continue; // dirty in a cache: memories may lag
        }
        EXPECT_EQ(e.memory(h).peek(a), e.memory(1 - h).peek(a))
            << "replica divergence on line " << line;
    }
}

TEST_P(DveStressTest, ColdVsWarmDeterminism)
{
    auto run = [&] {
        EngineConfig cfg = smallConfig();
        DveEngine e(cfg, dveCfg(GetParam()));
        Rng rng(4);
        Tick t = 0;
        for (int op = 0; op < 5000; ++op) {
            const unsigned c = static_cast<unsigned>(rng.next(16));
            const Addr a = addrAt(rng.next(6), rng.next(8));
            t = e.access(c / 8, c % 8, a, rng.chance(0.3), rng.engine()(),
                         t)
                    .done;
        }
        return std::tuple{t, e.replicaLocalReads(),
                          e.interconnect().interSocketBytes()};
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DveStressTest,
                         ::testing::Values(DveProtocol::Allow,
                                           DveProtocol::Deny,
                                           DveProtocol::Dynamic),
                         [](const auto &info) {
                             return std::string(
                                 dveProtocolName(info.param));
                         });

TEST(DveEngine, ReducesInterSocketTrafficOnReadHeavyWorkload)
{
    // The Fig 8 claim in miniature: a read-mostly shared workload sees
    // large inter-socket traffic reduction under Dvé.
    auto traffic = [](bool use_dve) {
        EngineConfig cfg = smallConfig();
        std::unique_ptr<CoherenceEngine> e;
        if (use_dve) {
            e = std::make_unique<DveEngine>(cfg,
                                            dveCfg(DveProtocol::Deny));
        } else {
            e = std::make_unique<CoherenceEngine>(cfg);
        }
        Rng rng(9);
        Tick t = 0;
        // Memory-resident (4x the LLC) and read-dominated, like the
        // backprop/graph500 profiles that lead Fig 8.
        for (int op = 0; op < 40000; ++op) {
            const unsigned c = static_cast<unsigned>(rng.next(16));
            const Addr a = addrAt(rng.next(64), rng.next(16));
            const bool w = rng.chance(0.02);
            t = e->access(c / 8, c % 8, a, w, 1, t).done;
        }
        return e->interconnect().interSocketBytes();
    };
    const auto base = traffic(false);
    const auto dve = traffic(true);
    EXPECT_LT(dve, base / 2) << "expected >2x inter-socket reduction";
}

TEST(DveEngine, DynamicSamplerConverges)
{
    EngineConfig cfg = smallConfig();
    DveConfig d = dveCfg(DveProtocol::Dynamic);
    d.epochOps = 500;
    DveEngine e(cfg, d);
    Rng rng(12);
    Tick t = 0;
    // Read-only sharing: deny should win (or at least a winner exists).
    for (int op = 0; op < 20000; ++op) {
        const unsigned c = static_cast<unsigned>(rng.next(16));
        t = e.access(c / 8, c % 8, addrAt(rng.next(8), rng.next(16)),
                     false, 0, t)
                .done;
    }
    EXPECT_TRUE(e.dynamicPrefersDeny());
}

} // namespace
} // namespace dve
