/**
 * @file
 * Unit tests for the open-addressing FlatMap used on the simulator's
 * hot lookup paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace dve
{
namespace
{

TEST(FlatMap, BasicInsertFindErase)
{
    FlatMap<Addr, std::uint64_t> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(1), m.end());

    m[1] = 10;
    m[2] = 20;
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(1), m.end());
    EXPECT_EQ(m.find(1)->second, 10u);
    EXPECT_TRUE(m.contains(2));
    EXPECT_EQ(m.count(3), 0u);

    // operator[] on an existing key must not reset the value.
    m[1] += 5;
    EXPECT_EQ(m.find(1)->second, 15u);

    EXPECT_EQ(m.erase(1), 1u);
    EXPECT_EQ(m.erase(1), 0u);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.find(1), m.end());
}

TEST(FlatMap, OperatorBracketValueInitializes)
{
    FlatMap<Addr, Tick> m;
    // A fresh entry reads as zero, matching unordered_map semantics.
    EXPECT_EQ(m[42], 0u);
    m[42] = 7;
    EXPECT_EQ(m[42], 7u);
}

TEST(FlatMap, EraseByIteratorReturnsUsableIterator)
{
    FlatMap<Addr, int> m;
    for (Addr k = 0; k < 32; ++k)
        m[k] = static_cast<int>(k);

    // Erase half the keys via find+erase(it); survivors stay intact.
    for (Addr k = 0; k < 32; k += 2) {
        auto it = m.find(k);
        ASSERT_NE(it, m.end());
        m.erase(it);
    }
    EXPECT_EQ(m.size(), 16u);
    for (Addr k = 0; k < 32; ++k) {
        if (k % 2)
            EXPECT_EQ(m.find(k)->second, static_cast<int>(k));
        else
            EXPECT_EQ(m.find(k), m.end());
    }
}

TEST(FlatMap, BackwardShiftPreservesProbeChains)
{
    // Craft keys that collide into a common probe chain, then erase
    // from the middle: the backward-shift must keep the tail findable.
    FlatMap<std::uint64_t, int> m;
    m.reserve(16);
    const std::size_t cap = m.capacity();
    // Find several keys hashing to the same bucket.
    std::vector<std::uint64_t> chain;
    const std::size_t target = flatMapMix(1) & (cap - 1);
    for (std::uint64_t k = 1; chain.size() < 5 && k < 100000; ++k) {
        if ((flatMapMix(k) & (cap - 1)) == target)
            chain.push_back(k);
    }
    ASSERT_GE(chain.size(), 3u);
    for (std::size_t i = 0; i < chain.size(); ++i)
        m[chain[i]] = static_cast<int>(i);
    ASSERT_EQ(m.capacity(), cap) << "grew mid-test; chain invalidated";

    m.erase(chain[1]); // middle of the displaced run
    for (std::size_t i = 0; i < chain.size(); ++i) {
        if (i == 1) {
            EXPECT_FALSE(m.contains(chain[i]));
        } else {
            ASSERT_TRUE(m.contains(chain[i])) << "lost key " << chain[i];
            EXPECT_EQ(m.find(chain[i])->second, static_cast<int>(i));
        }
    }
}

TEST(FlatMap, ReserveAvoidsRehash)
{
    FlatMap<Addr, int> m;
    m.reserve(1000);
    const std::size_t cap = m.capacity();
    for (Addr k = 0; k < 1000; ++k)
        m[k] = 1;
    EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMap, ClearKeepsCapacity)
{
    FlatMap<Addr, int> m;
    for (Addr k = 0; k < 100; ++k)
        m[k] = 2;
    const std::size_t cap = m.capacity();
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(5), m.end());
    m[5] = 9;
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, IterationVisitsEveryEntryOnce)
{
    FlatMap<Addr, std::uint64_t> m;
    std::unordered_map<Addr, std::uint64_t> ref;
    for (Addr k = 0; k < 500; k += 3) {
        m[k] = k * 7;
        ref[k] = k * 7;
    }
    std::unordered_map<Addr, std::uint64_t> seen;
    for (const auto &[k, v] : m) {
        EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate key " << k;
    }
    EXPECT_EQ(seen, ref);

    // Const iteration too.
    const auto &cm = m;
    std::size_t n = 0;
    for (auto it = cm.begin(); it != cm.end(); ++it)
        ++n;
    EXPECT_EQ(n, ref.size());
}

TEST(FlatMap, RandomizedDifferentialVsUnorderedMap)
{
    // Random op soup against std::unordered_map: lookups, inserts,
    // overwrite, erase-by-key, erase-by-iterator, clear.
    Rng rng(0xF1A7F1A7u);
    FlatMap<std::uint64_t, std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    for (int step = 0; step < 20000; ++step) {
        // Cluster keys the way line addresses cluster: strided bases.
        const std::uint64_t key =
            (rng.next(64) << 6) + rng.next(8) * 0x1000;
        switch (rng.next(6)) {
          case 0:
          case 1:
            m[key] = step;
            ref[key] = static_cast<std::uint64_t>(step);
            break;
          case 2: {
            const auto it = m.find(key);
            const auto rit = ref.find(key);
            ASSERT_EQ(it == m.end(), rit == ref.end());
            if (it != m.end()) {
                ASSERT_EQ(it->second, rit->second);
            }
            break;
          }
          case 3:
            ASSERT_EQ(m.erase(key), ref.erase(key));
            break;
          case 4: {
            const auto it = m.find(key);
            if (it != m.end()) {
                m.erase(it);
                ref.erase(key);
            }
            break;
          }
          case 5:
            if (rng.next(500) == 0) {
                m.clear();
                ref.clear();
            }
            break;
        }
        ASSERT_EQ(m.size(), ref.size());
    }
    // Full content check at the end.
    for (const auto &[k, v] : ref) {
        ASSERT_TRUE(m.contains(k));
        ASSERT_EQ(m.find(k)->second, v);
    }
    std::size_t n = 0;
    for (const auto &kv : m) {
        (void)kv;
        ++n;
    }
    ASSERT_EQ(n, ref.size());
}

TEST(FlatMap, EraseEndIteratorIsNoOp)
{
    // Regression: erase(end()) used to run eraseSlot(capacity()),
    // writing used_[capacity()] out of bounds and decrementing size_.
    FlatMap<Addr, int> m;
    for (Addr k = 0; k < 8; ++k)
        m[k] = static_cast<int>(k);
    const std::size_t size = m.size();

    m.erase(m.end());
    m.erase(m.find(12345)); // absent key: find() returns end()
    EXPECT_EQ(m.size(), size);
    for (Addr k = 0; k < 8; ++k) {
        ASSERT_TRUE(m.contains(k));
        EXPECT_EQ(m.find(k)->second, static_cast<int>(k));
    }
}

TEST(FlatMap, IteratorEqualityComparesMapIdentity)
{
    // Regression: iterator equality used to compare only the slot
    // index, so end() of one map equaled iterators into a different
    // same-capacity map and a default-constructed iterator equaled
    // begin() of an empty map.
    FlatMap<Addr, int> a, b;
    for (Addr k = 0; k < 8; ++k) {
        a[k] = 1;
        b[k] = 2;
    }
    ASSERT_EQ(a.capacity(), b.capacity());
    EXPECT_NE(a.end(), b.end());
    EXPECT_NE(a.find(99999), b.end()); // both past-the-end, different maps
    EXPECT_NE(a.begin(), b.begin());

    FlatMap<Addr, int> empty;
    using It = FlatMap<Addr, int>::iterator;
    It def{};
    EXPECT_EQ(def, It{});
    EXPECT_NE(def, empty.begin()); // both at index 0
    EXPECT_EQ(empty.begin(), empty.end()); // same empty map: still equal

    // Within one map the usual identities hold.
    EXPECT_EQ(a.find(3), a.find(3));
    EXPECT_EQ(a.find(99999), a.end());
}

TEST(FlatMap, ReserveZeroDoesNotAllocate)
{
    // Regression: reserve(0) used to allocate 16 slots on an
    // intentionally-empty map.
    FlatMap<Addr, int> m;
    m.reserve(0);
    EXPECT_EQ(m.capacity(), 0u);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(1), m.end());
}

TEST(FlatMap, ReserveAfterClearNeverShrinks)
{
    FlatMap<Addr, int> m;
    for (Addr k = 0; k < 100; ++k)
        m[k] = 1;
    const std::size_t cap = m.capacity();
    m.clear();
    m.reserve(0);
    EXPECT_EQ(m.capacity(), cap);
    m.reserve(8); // smaller than current capacity: no-op
    EXPECT_EQ(m.capacity(), cap);
    m[7] = 9;
    EXPECT_EQ(m.find(7)->second, 9);
}

TEST(FlatMap, ReserveHugeThrowsInsteadOfSpinning)
{
    // Regression: `want * 3 < n * 4` overflowed for huge n and the
    // doubling loop wrapped want around to zero, spinning forever.
    FlatMap<Addr, int> m;
    constexpr std::size_t kHuge = std::numeric_limits<std::size_t>::max() / 4;
    EXPECT_THROW(m.reserve(kHuge), std::length_error);
    EXPECT_THROW(m.reserve(std::numeric_limits<std::size_t>::max()),
                 std::length_error);
    EXPECT_EQ(m.capacity(), 0u); // strong guarantee: untouched
    m[1] = 2; // still usable afterwards
    EXPECT_EQ(m.find(1)->second, 2);
}

TEST(FlatMap, LayoutVarianceDoesNotChangeContents)
{
    // Same operation history at different reserved capacities yields a
    // different physical layout but identical logical contents; any
    // output path that sorts before emitting is therefore layout-proof.
    auto build = [](std::size_t reserve_hint) {
        FlatMap<Addr, std::uint64_t> m;
        if (reserve_hint)
            m.reserve(reserve_hint);
        Rng rng(77);
        for (int i = 0; i < 3000; ++i) {
            const Addr k = rng.next(512) << 6;
            if (rng.next(4) == 0)
                m.erase(k);
            else
                m[k] = rng.next(1u << 30);
        }
        return m;
    };
    const auto a = build(0);
    const auto b = build(1 << 14);
    EXPECT_NE(a.capacity(), b.capacity());
    EXPECT_EQ(a.size(), b.size());

    auto sorted = [](const FlatMap<Addr, std::uint64_t> &m) {
        std::vector<std::pair<Addr, std::uint64_t>> v;
        for (const auto &[k, val] : m)
            v.emplace_back(k, val);
        std::sort(v.begin(), v.end());
        return v;
    };
    EXPECT_EQ(sorted(a), sorted(b));

    // And the physical iteration orders genuinely differ (otherwise
    // this test would vacuously pass).
    std::vector<Addr> ordA, ordB;
    for (const auto &[k, val] : a)
        ordA.push_back(k);
    for (const auto &[k, val] : b)
        ordB.push_back(k);
    EXPECT_NE(ordA, ordB);
}

} // namespace
} // namespace dve
