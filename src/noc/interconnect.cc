#include "noc/interconnect.hh"

#include "common/logging.hh"

namespace dve
{

Interconnect::Interconnect(const NocConfig &cfg)
    : cfg_(cfg), stats_("noc")
{
    dve_assert(cfg_.sockets >= 1, "need at least one socket");
    dve_assert(cfg_.gatewayTile < cfg_.meshCols * cfg_.meshRows,
               "gateway tile outside mesh");
    meshes_.reserve(cfg_.sockets);
    for (unsigned s = 0; s < cfg_.sockets; ++s)
        meshes_.emplace_back(cfg_.meshCols, cfg_.meshRows);

    stats_.add("intra_messages", intraMsgs_);
    stats_.add("intra_hops", intraHops_);
    stats_.add("inter_socket_messages", interSocketMsgs_);
    stats_.add("inter_socket_bytes", interSocketBytes_);
    stats_.add("inter_socket_ctrl_messages", interSocketCtrlMsgs_);
    stats_.add("inter_socket_data_messages", interSocketDataMsgs_);
}

Tick
Interconnect::latency(NodeId src, NodeId dst) const
{
    dve_assert(src.socket < cfg_.sockets && dst.socket < cfg_.sockets,
               "socket out of range");
    if (src.socket == dst.socket) {
        return meshes_[src.socket].hops(src.tile, dst.tile)
               * cfg_.hopLatency;
    }
    // src tile -> gateway, one inter-socket traversal, gateway -> dst tile.
    const Tick head =
        meshes_[src.socket].hops(src.tile, cfg_.gatewayTile)
        * cfg_.hopLatency;
    const Tick tail =
        meshes_[dst.socket].hops(cfg_.gatewayTile, dst.tile)
        * cfg_.hopLatency;
    return head + cfg_.interSocketLatency + tail;
}

Tick
Interconnect::send(NodeId src, NodeId dst, MsgClass cls)
{
    const Tick lat = latency(src, dst);
    if (src.socket == dst.socket) {
        ++intraMsgs_;
        intraHops_ += meshes_[src.socket].traverse(src.tile, dst.tile);
    } else {
        meshes_[src.socket].traverse(src.tile, cfg_.gatewayTile);
        meshes_[dst.socket].traverse(cfg_.gatewayTile, dst.tile);
        ++interSocketMsgs_;
        interSocketBytes_ += bytesFor(cls);
        if (cls == MsgClass::Data)
            ++interSocketDataMsgs_;
        else
            ++interSocketCtrlMsgs_;
    }
    return lat;
}

void
Interconnect::resetTraffic()
{
    intraMsgs_.reset();
    intraHops_.reset();
    interSocketMsgs_.reset();
    interSocketBytes_.reset();
    interSocketCtrlMsgs_.reset();
    interSocketDataMsgs_.reset();
    for (auto &m : meshes_)
        m.resetTraffic();
}

} // namespace dve
