file(REMOVE_RECURSE
  "CMakeFiles/test_raim.dir/test_raim.cc.o"
  "CMakeFiles/test_raim.dir/test_raim.cc.o.d"
  "test_raim"
  "test_raim.pdb"
  "test_raim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
