/**
 * @file
 * Ablations beyond the paper's headline figures:
 *  (a) speculative replica access on/off (Sec. V-C5 claims the latency
 *      win outweighs the squash bandwidth);
 *  (b) on-demand replication coverage via the RMT (Sec. V-D): sweep the
 *      fraction of shared pages that are replicated;
 *  (c) 4-socket scaling: Dvé's fixed mapping on a larger NUMA machine.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace dve;

namespace
{

void
speculationAblation(double scale)
{
    bench::printHeader("Ablation (a): speculative replica access");
    TextTable t({"benchmark", "deny+spec", "deny-no-spec",
                 "spec benefit"});
    std::vector<double> on, off;
    // The four most memory-intensive workloads show the effect best.
    for (std::size_t i = 0; i < 4; ++i) {
        const auto &wl = table3Workloads()[i];
        const auto base =
            bench::runScheme(SchemeKind::BaselineNuma, wl, scale);
        SystemConfig with = bench::paperConfig(SchemeKind::DveDeny);
        with.dve.speculativeReplicaRead = true;
        SystemConfig without = with;
        without.dve.speculativeReplicaRead = false;

        const auto r1 =
            bench::runScheme(SchemeKind::DveDeny, wl, scale, &with);
        const auto r0 =
            bench::runScheme(SchemeKind::DveDeny, wl, scale, &without);
        const double s1 = double(base.roiTime) / double(r1.roiTime);
        const double s0 = double(base.roiTime) / double(r0.roiTime);
        on.push_back(s1);
        off.push_back(s0);
        t.addRow({wl.name, TextTable::num(s1, 3), TextTable::num(s0, 3),
                  TextTable::pct(s1 / s0)});
    }
    t.addRow({"geomean", TextTable::num(bench::geomean(on), 3),
              TextTable::num(bench::geomean(off), 3),
              TextTable::pct(bench::geomean(on) / bench::geomean(off))});
    t.print(std::cout);
}

void
rmtCoverageSweep(double scale)
{
    bench::printHeader("Ablation (b): on-demand replication coverage "
                       "(fraction of pages replicated via the RMT)");
    const auto &wl = workloadByName("xsbench");
    const auto base =
        bench::runScheme(SchemeKind::BaselineNuma, wl, scale);

    TextTable t({"coverage", "speedup vs NUMA", "replica reads",
                 "extra capacity used"});
    for (double cover : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        SystemConfig cfg = bench::paperConfig(SchemeKind::DveDeny);
        cfg.dve.replicateAll = false;
        System sys(cfg);
        // Replicate the leading fraction of the shared region's pages.
        const Addr shared_base_page = 0x1000'0000 / pageBytes;
        const Addr total_pages = wl.sharedBytes / pageBytes;
        const Addr n = static_cast<Addr>(cover * double(total_pages));
        auto *dve = sys.dveEngine();
        for (Addr p = 0; p < n; ++p) {
            const Addr page = shared_base_page + p;
            const Addr line = page << (pageShift - lineShift);
            const unsigned home = dve->homeSocket(line);
            dve->enableReplication(page, 1 - home);
        }
        const auto r = sys.run(wl, scale);
        t.addRow({TextTable::num(cover * 100, 0) + "%",
                  TextTable::num(double(base.roiTime)
                                     / double(r.roiTime),
                                 3),
                  TextTable::num(r.extra.at("replica_local_reads"), 0),
                  TextTable::num(cover * double(wl.sharedBytes)
                                     / (1 << 20),
                                 0)
                      + " MB"});
    }
    t.print(std::cout);
    std::printf("\nPartial coverage gives proportional benefit: "
                "reliability/performance are bought page-by-page with "
                "idle capacity.\n");
}

void
fourSocketScaling(double scale)
{
    bench::printHeader("Ablation (c): 4-socket NUMA scaling");
    TextTable t({"benchmark", "2-socket deny speedup",
                 "4-socket deny speedup"});
    for (const char *name : {"backprop", "graph500", "xsbench"}) {
        const auto &wl = workloadByName(name);
        std::vector<std::string> row = {name};
        for (unsigned sockets : {2u, 4u}) {
            SystemConfig cfg = bench::paperConfig(SchemeKind::BaselineNuma);
            cfg.engine.sockets = sockets;
            cfg.threads = sockets * 8;
            const auto base = bench::runScheme(SchemeKind::BaselineNuma,
                                               wl, scale, &cfg);
            const auto dve =
                bench::runScheme(SchemeKind::DveDeny, wl, scale, &cfg);
            row.push_back(TextTable::num(
                double(base.roiTime) / double(dve.roiTime), 3));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
    std::printf("\nWith one replica per page, only the home-adjacent "
                "socket gains a local copy: on 4 sockets just half of "
                "all misses can be served locally (vs. all of them on "
                "2), so per-page replication degree or topology-aware "
                "placement becomes the scaling lever -- the future-work "
                "direction the paper sketches.\n");
}

} // namespace

int
main()
{
    const double scale = bench::scaleFromEnv(0.3);
    speculationAblation(scale);
    rmtCoverageSweep(scale);
    fourSocketScaling(scale);
    return 0;
}
