#include "core/dve_engine.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/logging.hh"

namespace dve
{

const char *
dveProtocolName(DveProtocol p)
{
    switch (p) {
      case DveProtocol::Allow: return "allow";
      case DveProtocol::Deny: return "deny";
      case DveProtocol::Dynamic: return "dynamic";
    }
    return "?";
}

const char *
metadataProtectionName(MetadataProtection p)
{
    switch (p) {
      case MetadataProtection::None: return "none";
      case MetadataProtection::Parity: return "parity";
      case MetadataProtection::Ecc: return "ecc";
    }
    return "?";
}

std::optional<MetadataProtection>
parseMetadataProtection(const char *name)
{
    if (!name)
        return std::nullopt;
    for (unsigned i = 0; i < numMetadataProtections; ++i) {
        const auto p = static_cast<MetadataProtection>(i);
        if (std::strcmp(name, metadataProtectionName(p)) == 0)
            return p;
    }
    return std::nullopt;
}

DveEngine::DveEngine(const EngineConfig &cfg, const DveConfig &dve)
    : CoherenceEngine(cfg), dcfg_(dve),
      rmap_(dve.replicateAll ? ReplicaMap::fixedAll(cfg.sockets)
                             : ReplicaMap(cfg.sockets)),
      dveStats_("dve")
{
    dve_assert(cfg.sockets >= 2, "Dvé needs at least two sockets");
    for (unsigned s = 0; s < cfg.sockets; ++s) {
        rdirs_.push_back(std::make_unique<ReplicaDirectory>(
            s, dve.replicaDirEntries, dve.oracular, dve.regionLines));
    }
    regionGrants_.resize(cfg.sockets);
    frameRemap_.resize(cfg.sockets + dve.poolNodes);
    nextSparePage_ = dve.sparePageBase;

    if (dve.poolNodes > 0) {
        poolRemap_ = std::make_unique<PoolRemap>(dve.poolNodes);
        for (unsigned p = 0; p < dve.poolNodes; ++p) {
            poolMems_.push_back(std::make_unique<MemoryController>(
                "pool" + std::to_string(p), cfg.sockets + p, cfg.dram,
                cfg.scheme, MirrorMode::None, &faults_,
                cfg.seed * 7919 + cfg.sockets + p));
        }
    }

    dveStats_.add("replica_local_reads", replicaLocalReads_);
    dveStats_.add("balanced_home_reads", balancedHomeReads_);
    dveStats_.add("scrubbed_lines", scrubbedLines_);
    dveStats_.add("permission_pulls", permPulls_);
    dveStats_.add("rm_pushes", rmPushes_);
    dveStats_.add("speculation_wins", specWins_);
    dveStats_.add("speculation_squashes", specSquashes_);
    dveStats_.add("home_forwards", homeForwards_);
    dveStats_.add("replica_writes", replicaWrites_);
    dveStats_.add("replica_recoveries", replicaRecoveries_);
    dveStats_.add("repaired_copies", repaired_);
    dveStats_.add("degraded_events", degradedEvents_);
    dveStats_.add("re_replications", reReplications_);
    dveStats_.add("retired_pages", retiredPages_);
    dveStats_.add("repair_retries", repairRetries_);
    dveStats_.add("unavailable_requests", unavailableReqs_);
    dveStats_.add("link_retries", linkRetries_);
    dveStats_.add("fabric_demotions", fabricDemotions_);
    dveStats_.add("repair_deferrals", repairDeferrals_);
    if (dcfg_.disturbRetireAfter > 0)
        dveStats_.add("disturb_retirements", disturbRetirements_);
    if (dcfg_.poolNodes > 0) {
        dveStats_.add("pool_replica_reads", poolReads_);
        dveStats_.add("pool_replica_writes", poolWrites_);
        dveStats_.add("pool_retargets", poolRetargets_);
    }
    dveStats_.add("slow_control_messages", slowControlMsgs_);
    dveStats_.add("fenced_fast_fails", fencedFastFails_);
    dveStats_.add("degraded_ticks", degradedTicks_);
    dveStats_.add("dynamic_switches", dynamicSwitches_);
    dveStats_.add("retry_wait", retryWait_);
    dveStats_.add("repair_sojourn", repairSojourn_);

    if (dcfg_.metadataFaults) {
        // Registered only when armed: a disarmed engine's stat snapshots
        // -- and therefore every JSON report -- stay byte-identical to a
        // build without the metadata fault domain.
        dveStats_.add("meta_detected", metaDetected_);
        dveStats_.add("meta_corrected", metaCorrected_);
        dveStats_.add("meta_lies", metaLies_);
        dveStats_.add("meta_rebuilds", metaRebuilds_);
        dveStats_.add("meta_demotions", metaDemotions_);
        dveStats_.add("meta_forwards", metaForwards_);
    }

    if (dcfg_.policy.enabled) {
        dve_assert(!dcfg_.replicateAll,
                   "on-demand policy needs the RMT path (replicateAll "
                   "covers every page; there is nothing to promote)");
        policy_ = std::make_unique<ReplicationPolicy>(dcfg_.policy);
        // Registered only when armed: a disarmed engine's stat
        // snapshots -- and therefore every JSON report -- stay
        // byte-identical to a build without the policy.
        dveStats_.add("policy_epochs", policyEpochs_);
        dveStats_.add("policy_promotions", policyPromotions_);
        dveStats_.add("policy_demotions", policyDemotions_);
        dveStats_.add("policy_demotions_deferred", policyDemotionsDeferred_);
        dveStats_.add("policy_demotion_writebacks",
                      policyDemotionWritebacks_);
        dveStats_.add("policy_promotion_lag", policyPromotionLag_);
        dveStats_.add("policy_demotion_wb_wait", policyDemotionWbWait_);
    }
}

DveEngine::FabricOutcome
DveEngine::fabricSend(NodeId src, NodeId dst, MsgClass cls, Tick when)
{
    if (src.socket == dst.socket)
        return {true, when + ic_.send(src, dst, cls)};

    const std::uint64_t key = fenceKey(src.socket, dst.socket);
    Tick t = when;
    const auto fence = fenceUntil_.find(key);
    if (fence != fenceUntil_.end() && t < fence->second) {
        // Circuit breaker open: fail fast instead of paying the full
        // retry ladder on every access to an unreachable socket.
        ++fencedFastFails_;
        return {false, t};
    }

    for (unsigned attempt = 0;; ++attempt) {
        const SendResult r = ic_.trySend(src, dst, cls);
        if (r.ok()) {
            fenceUntil_.erase(key);
            if (t > when) {
                retryWait_.record(t - when);
                tracer_.record({when, t - when, TraceKind::Retry,
                                TraceComp::Fabric,
                                static_cast<std::uint8_t>(src.socket),
                                dst.socket, attempt});
            }
            return {true, t + r.latency};
        }
        // Lost message: the sender only learns by timeout.
        t += dcfg_.linkTimeout;
        if (attempt >= dcfg_.linkRetryMax)
            break;
        ++linkRetries_;
        t += dcfg_.linkRetryBackoff << attempt;
    }

    fenceUntil_[key] = t + dcfg_.fenceProbeInterval;
    retryWait_.record(t - when);
    tracer_.record({t, 0, TraceKind::Fence, TraceComp::Fabric,
                    static_cast<std::uint8_t>(src.socket), dst.socket,
                    dcfg_.linkRetryMax});
    return {false, t};
}

Tick
DveEngine::controlSend(NodeId src, NodeId dst, Tick when)
{
    const FabricOutcome r = fabricSend(src, dst, MsgClass::Control, when);
    if (r.delivered)
        return r.at;
    // Coherence metadata is never lost: once the direct link gives up,
    // the message completes over the resilient software-routed path.
    ++slowControlMsgs_;
    return r.at + dcfg_.linkTimeout;
}

unsigned
DveEngine::replicaMemIndex(unsigned rsock, Addr line) const
{
    if (!poolActive())
        return rsock;
    return cfg_.sockets + poolNodeOf(line);
}

MemoryController &
DveEngine::memAt(unsigned idx)
{
    return idx < cfg_.sockets ? memory(idx) : *poolMems_[idx - cfg_.sockets];
}

DveEngine::FabricOutcome
DveEngine::poolSend(unsigned socket, unsigned node, MsgClass cls, Tick when)
{
    // Pool-node ids live above the socket ids, so the fence key space is
    // disjoint from the socket-pair keys fabricSend uses.
    const std::uint64_t key = fenceKey(socket, cfg_.sockets + node);
    Tick t = when;
    const auto fence = fenceUntil_.find(key);
    if (fence != fenceUntil_.end() && t < fence->second) {
        ++fencedFastFails_;
        return {false, t};
    }

    for (unsigned attempt = 0;; ++attempt) {
        const SendResult r = ic_.trySendPool(dirNode(socket), node, cls);
        if (r.ok()) {
            fenceUntil_.erase(key);
            if (t > when) {
                retryWait_.record(t - when);
                tracer_.record({when, t - when, TraceKind::Retry,
                                TraceComp::Fabric,
                                static_cast<std::uint8_t>(socket),
                                cfg_.sockets + node, attempt});
            }
            return {true, t + r.latency};
        }
        t += dcfg_.linkTimeout;
        if (attempt >= dcfg_.linkRetryMax)
            break;
        ++linkRetries_;
        t += dcfg_.linkRetryBackoff << attempt;
    }

    fenceUntil_[key] = t + dcfg_.fenceProbeInterval;
    retryWait_.record(t - when);
    tracer_.record({t, 0, TraceKind::Fence, TraceComp::Fabric,
                    static_cast<std::uint8_t>(socket), cfg_.sockets + node,
                    dcfg_.linkRetryMax});
    return {false, t};
}

DveEngine::FabricOutcome
DveEngine::replicaPathSend(unsigned host, unsigned rsock, Addr line,
                           MsgClass cls, Tick when, bool to_replica)
{
    if (poolActive())
        return poolSend(host, poolNodeOf(line), cls, when);
    return to_replica
               ? fabricSend(dirNode(host), dirNode(rsock), cls, when)
               : fabricSend(dirNode(rsock), dirNode(host), cls, when);
}

void
DveEngine::dumpStats(std::ostream &os) const
{
    CoherenceEngine::dumpStats(os);
    dveStats_.dump(os);
    for (const auto &rd : rdirs_)
        rd->stats().dump(os);
    for (const auto &pm : poolMems_) {
        pm->stats().dump(os);
        for (unsigned c = 0; c < pm->copies(); ++c)
            pm->dram(c).stats().dump(os);
    }
}

const char *
DveEngine::schemeName() const
{
    switch (dcfg_.protocol) {
      case DveProtocol::Allow: return "dve-allow";
      case DveProtocol::Deny: return "dve-deny";
      case DveProtocol::Dynamic: return "dve-dynamic";
    }
    return "dve";
}

bool
DveEngine::effectiveDeny(Addr line) const
{
    switch (dcfg_.protocol) {
      case DveProtocol::Allow:
        return false;
      case DveProtocol::Deny:
        return true;
      case DveProtocol::Dynamic: {
        const std::uint64_t group = line % dcfg_.sampleGroups;
        if (group == 0)
            return false; // allow sample set
        if (group == 1)
            return true; // deny sample set
        return denyWinning_;
      }
    }
    return true;
}

bool
DveEngine::regionCleanAtHome(unsigned home, Addr line) const
{
    const unsigned n = dcfg_.regionLines;
    const Addr base = (line / n) * n;
    auto &dir = const_cast<DveEngine *>(this)->directory(home);
    for (Addr l = base; l < base + n; ++l) {
        if (const DirEntry *e = dir.find(l)) {
            if (e->state == LineState::M || e->state == LineState::O)
                return false;
        }
    }
    return true;
}

Addr
DveEngine::dataAddr(unsigned socket, Addr line) const
{
    const auto &remap = frameRemap_[socket];
    if (!remap.empty()) {
        const auto it = remap.find(line >> (pageShift - lineShift));
        if (it != remap.end()) {
            return (it->second << pageShift)
                   | ((line << lineShift) & Addr(pageBytes - 1));
        }
    }
    return line << lineShift;
}

void
DveEngine::markDegraded(bool home_side, Addr line, Tick now)
{
    auto &dmap = home_side ? degradedHome_ : degradedReplica_;
    if (!dmap.emplace(line, now).second)
        return; // already degraded: keep the original timestamp
    ++degradedEvents_;
    if (!dcfg_.selfHeal)
        return;
    for (const auto &task : repairQueue_) {
        if (task.line == line && task.homeSide == home_side)
            return; // already queued
    }
    repairQueue_.push_back(
        {line, home_side, 0, now + dcfg_.repairRetryBackoff, now});
    tracer_.record({now, 0, TraceKind::RepairBegin, TraceComp::Dve,
                    static_cast<std::uint8_t>(homeSocket(line)), line,
                    home_side ? 1u : 0u});
}

void
DveEngine::clearDegraded(bool home_side, Addr line, Tick now)
{
    auto &dmap = home_side ? degradedHome_ : degradedReplica_;
    const auto it = dmap.find(line);
    if (it == dmap.end())
        return;
    if (now > it->second)
        degradedTicks_ += static_cast<double>(now - it->second);
    dmap.erase(it);
}

double
DveEngine::degradedResidency(Tick now) const
{
    double open = 0.0;
    for (const auto &[line, since] : degradedHome_) {
        if (now > since)
            open += static_cast<double>(now - since);
    }
    for (const auto &[line, since] : degradedReplica_) {
        if (now > since)
            open += static_cast<double>(now - since);
    }
    return degradedTicks_.value() + open;
}

CoherenceEngine::MemRead
DveEngine::readHomeDivert(unsigned rsock, unsigned home, Addr line,
                          Tick when)
{
    const FabricOutcome go = fabricSend(dirNode(rsock), dirNode(home),
                                        MsgClass::Control, when);
    if (!go.delivered) {
        ++due_;
        ++unavailableReqs_;
        return {go.at, logicalValue(line)};
    }
    const auto m = memory(home).read(dataAddr(home, line), go.at);
    if (m.status == EccStatus::Corrected)
        ++sysCe_;
    if (m.failed) {
        ++due_; // the single surviving copy is lost: machine check
        return {m.readyAt, logicalValue(line)};
    }
    const FabricOutcome ret = fabricSend(dirNode(home), dirNode(rsock),
                                         MsgClass::Data, m.readyAt);
    if (!ret.delivered) {
        ++due_;
        ++unavailableReqs_;
        return {ret.at, logicalValue(line)};
    }
    return {ret.at, m.value};
}

CoherenceEngine::MemRead
DveEngine::readReplicaChecked(unsigned rsock, unsigned home, Addr line,
                              Tick when)
{
    if (poolActive()) {
        // The replica copy lives on a far-memory pool node: the request
        // must cross the host-to-pool link first. An unreachable node
        // (offline, or the fabric partitioned) demotes the line to
        // local-ECC-only service off the home copy.
        const FabricOutcome req =
            poolSend(rsock, poolNodeOf(line), MsgClass::Control, when);
        if (!req.delivered) {
            markDegraded(false, line, req.at);
            return readHomeDivert(rsock, home, line, req.at);
        }
        when = req.at;
    }

    const unsigned ridx = replicaMemIndex(rsock, line);
    auto &replica_mc = memAt(ridx);

    const auto m = replica_mc.read(dataAddr(ridx, line), when);
    if (m.status == EccStatus::Corrected)
        ++sysCe_;
    if (!m.failed) {
        if (!poolActive())
            return {m.readyAt, m.value};
        ++poolReads_;
        const FabricOutcome back =
            poolSend(rsock, poolNodeOf(line), MsgClass::Data, m.readyAt);
        if (back.delivered)
            return {back.at, m.value};
        // Partition arrived under the read: the data never made it back.
        markDegraded(false, line, back.at);
        return readHomeDivert(rsock, home, line, back.at);
    }

    // Replica read failed: divert to home memory. This path only runs
    // when the replica was readable, which implies both memories are in
    // sync, so the home copy is a valid recovery source.
    if (degradedHome_.count(line)) {
        ++due_;
        if (dcfg_.disturbRetireAfter > 0)
            markDegraded(false, line, m.readyAt);
        return {m.readyAt, logicalValue(line)};
    }
    const FabricOutcome go = fabricSend(dirNode(rsock), dirNode(home),
                                        MsgClass::Control, m.readyAt);
    if (!go.delivered) {
        // Replica copy failed and home is unreachable: the request is
        // unavailable. Demote to single-copy service and queue a repair
        // for when the fabric heals.
        ++due_;
        ++unavailableReqs_;
        markDegraded(false, line, go.at);
        return {go.at, logicalValue(line)};
    }
    const auto m2 = memory(home).read(dataAddr(home, line), go.at);
    if (m2.status == EccStatus::Corrected)
        ++sysCe_;
    if (m2.failed) {
        ++due_; // both copies lost: machine check
        // Under a disturbance-aware config, hand both frames to the
        // self-heal pipeline: repeated failed repairs of a hammered
        // frame are what drives aggressor-aware retirement.
        if (dcfg_.disturbRetireAfter > 0) {
            markDegraded(false, line, m2.readyAt);
            markDegraded(true, line, m2.readyAt);
        }
        return {m2.readyAt, logicalValue(line)};
    }
    const FabricOutcome ret = fabricSend(dirNode(home), dirNode(rsock),
                                         MsgClass::Data, m2.readyAt);
    if (!ret.delivered) {
        // The recovery data was lost on the way back.
        ++due_;
        ++unavailableReqs_;
        markDegraded(false, line, ret.at);
        return {ret.at, logicalValue(line)};
    }
    ++replicaRecoveries_;
    ++sysCe_; // recovery is logged as a corrected error
    const Tick back = ret.at;
    recoveryLatencies_.push_back(back - when);
    tracer_.record({when, back - when, TraceKind::Divert, TraceComp::Dve,
                    static_cast<std::uint8_t>(rsock), line, 0});

    // Try to repair the failing replica copy off the critical path.
    // Sample the disturbance state first: the rewrite heals the
    // transient victim fault, but an in-place rewrite of a hammered
    // frame counts toward aggressor-aware retirement.
    const bool disturbed =
        dcfg_.disturbRetireAfter > 0
        && replica_mc.rowDisturbedAt(dataAddr(ridx, line));
    const auto rep =
        replica_mc.repairAndVerify(dataAddr(ridx, line), m2.value, back);
    if (rep.failed) {
        markDegraded(false, line, back);
    } else {
        ++repaired_;
        clearDegraded(false, line, back);
        Tick bg = back; // retirement runs off the critical path
        noteDisturbRepair(ridx, line, false, disturbed, bg);
    }
    return {back, m2.value};
}

CoherenceEngine::MemRead
DveEngine::readReadableCopy(unsigned rsock, unsigned home, Addr line,
                            Tick when)
{
    if (dcfg_.balanceReplicaReads && (balanceCounter_++ & 1)) {
        // Both copies are current when the line is readable: spread the
        // activation pressure by reading the home copy this time.
        const FabricOutcome go = fabricSend(dirNode(rsock), dirNode(home),
                                            MsgClass::Control, when);
        if (!go.delivered) {
            // Home unreachable: the local replica serves.
            return readReplicaChecked(rsock, home, line, go.at);
        }
        ++balancedHomeReads_;
        const auto m = memory(home).read(dataAddr(home, line), go.at);
        if (m.status == EccStatus::Corrected)
            ++sysCe_;
        if (!m.failed) {
            const FabricOutcome ret =
                fabricSend(dirNode(home), dirNode(rsock), MsgClass::Data,
                           m.readyAt);
            if (ret.delivered)
                return {ret.at, m.value};
            // Line lost on the way back: re-read the local replica.
            return readReplicaChecked(rsock, home, line, ret.at);
        }
        // Home copy failed: the local replica is the recovery source.
        return readReplicaChecked(rsock, home, line, m.readyAt);
    }
    return readReplicaChecked(rsock, home, line, when);
}

// ---- Metadata fault domain ---------------------------------------------

DveEngine::MetaVerdict
DveEngine::metaCheck(unsigned socket, unsigned structure, Addr page,
                     Tick now)
{
    if (metaLost_.count(metaKey(socket, structure, page)))
        return MetaVerdict::Lost;
    if (!faults_.metadataFaultAt(socket, structure, page))
        return MetaVerdict::Clean;
    switch (dcfg_.metaProtection) {
      case MetadataProtection::None:
        ++metaLies_;
        return MetaVerdict::Lying;
      case MetadataProtection::Parity:
        ++metaDetected_;
        metaLost_[metaKey(socket, structure, page)] = now;
        return MetaVerdict::Lost;
      case MetadataProtection::Ecc:
        ++metaCorrected_;
        return MetaVerdict::Clean;
    }
    return MetaVerdict::Clean;
}

bool
DveEngine::metaCompromised(unsigned socket, unsigned structure,
                           Addr page) const
{
    if (metaLost_.count(metaKey(socket, structure, page)))
        return true;
    if (dcfg_.metaProtection == MetadataProtection::Ecc)
        return false; // corrected on every consult: usable as a source
    return faults_.metadataFaultAt(socket, structure, page) != nullptr;
}

bool
DveEngine::metaRdLost(unsigned rsock, Addr line) const
{
    return dcfg_.metadataFaults
           && metaLost_.count(
               metaKey(rsock, unsigned(MetaStructure::ReplicaDir),
                       line >> (pageShift - lineShift)));
}

void
DveEngine::rdInstall(unsigned rsock, Addr line,
                     const ReplicaDirectory::Entry &e)
{
    if (metaRdLost(rsock, line)) {
        // The DRAM backing page is unreadable: journal the write for
        // the rebuild. The on-chip SRAM cache is a separate structure
        // and must not keep serving a permission this transition
        // revokes.
        metaJournal_[line] = {1, e.state, e.owner};
        rdirs_[rsock]->invalidateOnChip(line);
        return;
    }
    rdirs_[rsock]->install(line, e);
}

void
DveEngine::rdRemove(unsigned rsock, Addr line)
{
    if (metaRdLost(rsock, line)) {
        metaJournal_[line] = {0, RepState::Readable, -1};
        rdirs_[rsock]->invalidateOnChip(line);
        return;
    }
    rdirs_[rsock]->remove(line);
}

void
DveEngine::metaFlushJournal(unsigned rsock, Addr page)
{
    const Addr first = page << (pageShift - lineShift);
    const Addr last = first + pageBytes / lineBytes;
    for (Addr line = first; line < last; ++line) {
        const auto it = metaJournal_.find(line);
        if (it == metaJournal_.end())
            continue;
        // Readable is the authoritative "no entry" default, and a
        // replayed install() would also mint an on-chip permission the
        // home may no longer be able to revoke: the rebuild
        // conservatively drops it (the next read re-earns readability
        // through the protocol).
        if (it->second.present && it->second.state != RepState::Readable)
            rdirs_[rsock]->install(line,
                                   {it->second.state, it->second.owner});
        else
            rdirs_[rsock]->remove(line);
        metaJournal_.erase(line);
    }
}

bool
DveEngine::metaTryRebuild(unsigned socket, unsigned structure, Addr page,
                          bool flush_journal)
{
    faults_.repairMetadataAt(socket, structure, page);
    if (faults_.metadataFaultAt(socket, structure, page))
        return false; // permanent fault: the rebuilt entry corrupts again
    if (structure == unsigned(MetaStructure::ReplicaDir) && flush_journal)
        metaFlushJournal(socket, page);
    metaLost_.erase(metaKey(socket, structure, page));
    ++metaRebuilds_;
    return true;
}

void
DveEngine::metaDropPage(unsigned rsock, unsigned h, Addr page)
{
    metaLost_.erase(
        metaKey(rsock, unsigned(MetaStructure::ReplicaDir), page));
    metaLost_.erase(metaKey(h, unsigned(MetaStructure::Rmt), page));
    const Addr first = page << (pageShift - lineShift);
    const Addr last = first + pageBytes / lineBytes;
    for (Addr line = first; line < last; ++line)
        metaJournal_.erase(line);
}

Tick
DveEngine::metaScrubPass(Tick t)
{
    // Detection sweep: read every faulted entry under the tier. Parity
    // flags it lost; ECC rewrites it in place (curing transients); an
    // unprotected array scrubs "clean" by definition -- the corruption
    // is invisible to the scrubber too.
    std::vector<std::array<std::uint64_t, 3>> found;
    for (const auto &f : faults_.active()) {
        if (f.scope == FaultScope::Metadata)
            found.push_back({f.socket, f.chip, f.row});
    }
    std::sort(found.begin(), found.end());
    for (const auto &c : found) {
        const unsigned socket = static_cast<unsigned>(c[0]);
        const unsigned structure = static_cast<unsigned>(c[1]);
        const Addr page = c[2];
        t += cycles(cfg_.dirLatency); // the metadata read itself
        switch (dcfg_.metaProtection) {
          case MetadataProtection::None:
            break;
          case MetadataProtection::Parity:
            if (!metaLost_.count(metaKey(socket, structure, page))) {
                ++metaDetected_;
                metaLost_[metaKey(socket, structure, page)] = t;
            }
            break;
          case MetadataProtection::Ecc:
            ++metaCorrected_;
            faults_.repairMetadataAt(socket, structure, page);
            break;
        }
    }

    // Cross-rebuild sweep over the lost set (sorted copy: the FlatMap
    // iterates in slot order). A lost home-directory entry reconstructs
    // from the replica directory plus sharer probes; lost replica-side
    // entries reconstruct from the home side. When the source side is
    // itself compromised the entry stays lost -- single-copy service
    // with honest DUEs continues until a later sweep can rebuild.
    std::vector<std::uint64_t> lost;
    lost.reserve(metaLost_.size());
    for (const auto &[key, since] : metaLost_)
        lost.push_back(key);
    std::sort(lost.begin(), lost.end());
    for (const std::uint64_t key : lost) {
        const unsigned socket =
            static_cast<unsigned>((key >> 48) / numMetaStructures);
        const unsigned structure =
            static_cast<unsigned>((key >> 48) % numMetaStructures);
        const Addr page = key & ((Addr(1) << 48) - 1);
        const Addr first = page << (pageShift - lineShift);
        const unsigned h = homeSocket(first);
        const auto rs = rmap_.replicaSocket(first, h);
        if (structure == unsigned(MetaStructure::HomeDir)) {
            if (rs
                && (metaCompromised(
                        *rs, unsigned(MetaStructure::ReplicaDir), page)
                    || metaCompromised(h, unsigned(MetaStructure::Rmt),
                                       page))) {
                continue; // replica side unreadable: both sides lost
            }
            if (rs && *rs != h) {
                t = controlSend(dirNode(h), dirNode(*rs), t);
                t = controlSend(dirNode(*rs), dirNode(h), t);
            }
            metaTryRebuild(socket, structure, page, true);
        } else {
            if (metaCompromised(h, unsigned(MetaStructure::HomeDir),
                                page)) {
                continue; // home side unreadable: both sides lost
            }
            if (rs && *rs != h) {
                t = controlSend(dirNode(*rs), dirNode(h), t);
                t = controlSend(dirNode(h), dirNode(*rs), t);
            }
            metaTryRebuild(socket, structure, page,
                           !dcfg_.bugSkipRebuildOnScrub);
        }
    }
    return t;
}

DveEngine::ScrubReport
DveEngine::patrolScrub(Tick now, std::size_t max_lines)
{
    ScrubReport rep;
    Tick t = now;
    // Metadata leg first: a rebuilt directory entry lets the data sweep
    // below trust its RM markers again.
    if (dcfg_.metadataFaults)
        t = metaScrubPass(t);
    rep.finishedAt = t;
    if (logicalMem_.empty())
        return rep;

    std::vector<Addr> lines;
    lines.reserve(logicalMem_.size());
    for (const auto &[line, value] : logicalMem_)
        lines.push_back(line);
    std::sort(lines.begin(), lines.end());

    const std::uint64_t ce0 = sysCe_.value();
    const std::uint64_t rec0 = replicaRecoveries_.value();
    const std::uint64_t due0 = due_.value();
    const std::size_t n = std::min(max_lines, lines.size());

    // Scrub one copy: a corrected error is rewritten in place (curing
    // transients before they can pair into a DUE); a detected-
    // uncorrectable error goes through the cross-copy recovery path.
    auto scrubCopy = [&](unsigned mem_idx, unsigned sock, Addr line,
                         bool is_home) {
        const Addr addr = dataAddr(mem_idx, line);
        const auto m = memAt(mem_idx).read(addr, t);
        t = m.readyAt;
        if (m.status == EccStatus::Corrected) {
            ++sysCe_;
            const auto rewritten =
                memAt(mem_idx).repairAndVerify(addr, m.value, t);
            t = rewritten.readyAt;
        } else if (m.failed) {
            const unsigned h = homeSocket(line);
            const MemRead rec = is_home
                                    ? readMemoryChecked(h, line, t)
                                    : readReplicaChecked(sock, h,
                                                         line, t);
            t = rec.ready;
        }
    };

    for (std::size_t i = 0; i < n; ++i) {
        const Addr line = lines[(scrubCursor_ + i) % lines.size()];
        const unsigned h = homeSocket(line);
        if (!degradedHome_.count(line))
            scrubCopy(h, h, line, true);

        const auto rs = rmap_.replicaSocket(line, h);
        if (rs && !degradedReplica_.count(line)
            && (!poolActive() || ic_.poolPathUp(poolNodeOf(line)))) {
            // Skip a known-stale (RM) replica: it is unreadable and the
            // next writeback refreshes it anyway. An unreachable pool
            // copy is skipped too -- the scrubber cannot reach it, and
            // demand demotion / heal-back own that case.
            const auto backing = rdirs_[*rs]->peekBacking(line);
            if (!(backing && backing->state == RepState::RM))
                scrubCopy(replicaMemIndex(*rs, line), *rs, line, false);
        }
        ++scrubbedLines_;
        ++rep.linesScanned;
    }
    scrubCursor_ = (scrubCursor_ + n) % lines.size();

    rep.correctedErrors = sysCe_.value() - ce0;
    rep.replicaRecoveries = replicaRecoveries_.value() - rec0;
    rep.dataLost = due_.value() - due0;
    rep.finishedAt = t;
    return rep;
}

DveEngine::MaintenanceReport
DveEngine::runMaintenance(Tick now)
{
    MaintenanceReport rep;
    rep.finishedAt = now;
    if ((!dcfg_.selfHeal || repairQueue_.empty()) &&
        (!policy_ || promotePending_.empty()))
        return rep;

    Tick t = now;
    // One pass over the tasks present at entry; retries requeued by this
    // pass wait for the next maintenance window.
    const std::size_t n = dcfg_.selfHeal ? repairQueue_.size() : 0;
    for (std::size_t i = 0; i < n; ++i) {
        const RepairTask task = repairQueue_.front();
        repairQueue_.pop_front();
        runRepairTask(task, now, t, rep);
    }
    rep.finishedAt = t;

    // Policy promotions seed their replica through the repair pipeline
    // above; a promotion completes once no line of its page is still
    // replica-degraded. Checked here (sorted, so the record order is
    // layout-independent) and scored as decision-to-healed lag.
    if (policy_ && !promotePending_.empty()) {
        std::vector<std::pair<Addr, Tick>> pending;
        pending.reserve(promotePending_.size());
        for (const auto &[page, started] : promotePending_)
            pending.emplace_back(page, started);
        std::sort(pending.begin(), pending.end());
        for (const auto &[page, started] : pending) {
            const unsigned h = homeSocket(page << (pageShift - lineShift));
            if (!rmap_.replicaSocket(page << (pageShift - lineShift), h)) {
                // Demoted (or unplugged) before it finished healing:
                // the promotion never completed; drop it unscored.
                promotePending_.erase(page);
                continue;
            }
            const Addr first = page << (pageShift - lineShift);
            const Addr last = first + pageBytes / lineBytes;
            bool healing = false;
            for (Addr line = first; line < last && !healing; ++line)
                healing = degradedReplica_.count(line) > 0;
            if (healing)
                continue;
            policyPromotionLag_.record(t > started ? t - started : 0);
            promotePending_.erase(page);
        }
    }
    return rep;
}

void
DveEngine::runRepairTask(RepairTask task, Tick now, Tick &t,
                         MaintenanceReport &rep)
{
    auto &dmap = task.homeSide ? degradedHome_ : degradedReplica_;
    const auto &other = task.homeSide ? degradedReplica_ : degradedHome_;
    if (!dmap.count(task.line)) {
        // Healed through the demand path in the meantime.
        noteRepairDone(task, now, 0);
        return;
    }
    if (task.notBefore > now) {
        repairQueue_.push_back(task); // backoff deadline not reached
        return;
    }

    const unsigned h = homeSocket(task.line);
    const auto rs = rmap_.replicaSocket(task.line, h);
    if (!rs) {
        // Replication was unplugged under the task: nothing to heal
        // against; forget the degraded state.
        clearDegraded(task.homeSide, task.line, now);
        noteRepairDone(task, now, 0);
        return;
    }
    const unsigned fail_sock =
        task.homeSide ? h : replicaMemIndex(*rs, task.line);
    const unsigned surv_sock =
        task.homeSide ? replicaMemIndex(*rs, task.line) : h;

    if (poolActive()) {
        const unsigned node = poolNodeOf(task.line);
        if (!task.homeSide && !ic_.poolPathUp(node)) {
            // The node hosting the degraded replica is unreachable. A
            // lost node heals back NOW: move the page onto a surviving
            // node and re-replicate it from the home copies. Under a
            // full partition there is nowhere to go; defer WITHOUT
            // consuming a retry -- fabric faults must never retire
            // frames -- until the lifecycle heals the fabric.
            if (healBackPage(task.line, t)) {
                ++rep.tasksRun;
                if (!dmap.count(task.line))
                    ++rep.healed;
                noteRepairDone(task, t, 1);
            } else {
                ++repairDeferrals_;
                task.notBefore = now + dcfg_.repairRetryBackoff;
                repairQueue_.push_back(task);
            }
            return;
        }
        if (!ic_.poolPathUp(node) || faults_.socketOffline(h)) {
            // Healing the home side needs the pool replica (the
            // surviving copy) reachable, and a live home socket.
            ++repairDeferrals_;
            task.notBefore = now + dcfg_.repairRetryBackoff;
            repairQueue_.push_back(task);
            return;
        }
    } else if (!ic_.pathUp(h, *rs) || faults_.socketOffline(fail_sock)
               || faults_.socketOffline(surv_sock)) {
        // Fabric-aware deferral: while the surviving copy is behind a
        // dead link, or the failing side's whole socket is offline, a
        // repair attempt cannot succeed. Requeue WITHOUT consuming a
        // retry so the line heals back to dual-copy as soon as the
        // lifecycle heals the path.
        ++repairDeferrals_;
        task.notBefore = now + dcfg_.repairRetryBackoff;
        repairQueue_.push_back(task);
        return;
    }

    // Aggressor-aware retirement: a line that keeps needing repair while
    // a read-disturbance fault sits on its frame is being actively
    // hammered. In-place rewrites only last until the next HCfirst
    // crossing, so after a few such repairs move the page to a spare
    // frame whose rows escape the aggressors.
    if (dcfg_.disturbRetireAfter > 0
        && memAt(fail_sock).rowDisturbedAt(
               dataAddr(fail_sock, task.line))
        && ++disturbRepairs_[task.line] >= dcfg_.disturbRetireAfter) {
        disturbRepairs_.erase(task.line);
        ++rep.tasksRun;
        retireFrame(fail_sock, task.line, task.homeSide, t);
        ++disturbRetirements_;
        ++rep.retired;
        if (!dmap.count(task.line))
            ++rep.healed;
        noteRepairDone(task, t, 2);
        return;
    }

    ++rep.tasksRun;
    ++repairRetries_;

    // Source known-good data from the surviving copy, then rewrite the
    // failed copy with a verifying read-back.
    bool healed = false;
    if (!other.count(task.line)) {
        const auto src =
            memAt(surv_sock).read(dataAddr(surv_sock, task.line), t);
        t = src.readyAt;
        if (!src.failed) {
            const auto fixed = memAt(fail_sock).repairAndVerify(
                dataAddr(fail_sock, task.line), src.value, t);
            t = fixed.readyAt;
            healed = !fixed.failed;
        }
    }

    if (healed) {
        clearDegraded(task.homeSide, task.line, t);
        ++reReplications_;
        ++repaired_;
        ++rep.healed;
        noteRepairDone(task, t, 1);
        return;
    }

    ++task.attempts;
    if (task.attempts <= dcfg_.repairMaxRetries) {
        // Bounded exponential backoff before the next attempt.
        task.notBefore =
            now + (dcfg_.repairRetryBackoff << task.attempts);
        repairQueue_.push_back(task);
        return;
    }

    // Retries exhausted: the frame is permanently bad. Retire it to a
    // spare and re-replicate the page onto the spare frame.
    retireFrame(fail_sock, task.line, task.homeSide, t);
    ++rep.retired;
    if (!dmap.count(task.line))
        ++rep.healed;
    noteRepairDone(task, t, 2);
}

void
DveEngine::noteRepairDone(const RepairTask &task, Tick at,
                          std::uint64_t outcome)
{
    const Tick sojourn = at > task.enqueuedAt ? at - task.enqueuedAt : 0;
    repairSojourn_.record(sojourn);
    tracer_.record({at, 0, TraceKind::RepairEnd, TraceComp::Dve,
                    static_cast<std::uint8_t>(homeSocket(task.line)),
                    task.line, outcome});
}

bool
DveEngine::healBackPage(Addr line, Tick &t)
{
    const Addr page = line >> (pageShift - lineShift);
    const auto moved = poolRemap_->retarget(
        page, [&](unsigned cand) { return ic_.poolPathUp(cand); });
    if (!moved)
        return false;
    ++poolRetargets_;

    const unsigned h = homeSocket(line);
    const unsigned new_idx = cfg_.sockets + *moved;
    const Addr first = page << (pageShift - lineShift);
    const Addr last = first + pageBytes / lineBytes;

    // Re-replicate the page's written lines from the home copies onto
    // the new node, then return cleanly-reading degraded lines to
    // dual-copy service.
    for (Addr l = first; l < last; ++l) {
        if (!logicalMem_.count(l))
            continue;
        memAt(new_idx).poke(dataAddr(new_idx, l),
                            memory(homeSocket(l)).peek(
                                dataAddr(homeSocket(l), l)));
    }
    for (Addr l = first; l < last; ++l) {
        if (!degradedReplica_.count(l))
            continue;
        const auto m = memAt(new_idx).read(dataAddr(new_idx, l), t);
        t = m.readyAt;
        if (m.failed)
            continue;
        clearDegraded(false, l, t);
        ++reReplications_;
    }
    return true;
}

void
DveEngine::retireFrame(unsigned socket, Addr line, bool home_side, Tick &t)
{
    const Addr page = line >> (pageShift - lineShift);
    const unsigned h = homeSocket(line);
    const auto rs = rmap_.replicaSocket(line, h);
    dve_assert(rs, "retiring a frame of an unreplicated line");
    const unsigned other_sock =
        home_side ? replicaMemIndex(*rs, line) : h;

    // Map the page to a spare frame that demonstrably escapes the fault.
    // Row indices recur modulo rowsPerBank, so a candidate spare can alias
    // the faulty row (a page occupies one row stripe; consecutive spare
    // pages cross a row boundary every few pages): probe the triggering
    // line on each candidate and keep taking spares until one reads
    // cleanly. A fault wider than the frame (chip/channel/controller
    // scope) fails every candidate; keep the last one -- the line stays
    // degraded either way and the bound keeps retirement cheap.
    const Addr in_page = (line << lineShift) & (pageBytes - 1);
    Addr spare = nextSparePage_++;
    for (unsigned cand = 0; cand < 32; ++cand) {
        const Addr probe = (spare << pageShift) | in_page;
        memAt(socket).poke(probe,
                           memAt(other_sock).peek(
                               dataAddr(other_sock, line)));
        const auto m = memAt(socket).read(probe, t);
        t = m.readyAt;
        if (!m.failed)
            break;
        spare = nextSparePage_++;
    }
    frameRemap_[socket][page] = spare;
    ++retiredPages_;

    // Background re-replication: copy every written line of the page
    // from the surviving copy onto the spare frame.
    const Addr first = page << (pageShift - lineShift);
    const Addr last = first + pageBytes / lineBytes;
    for (Addr l = first; l < last; ++l) {
        if (!logicalMem_.count(l))
            continue;
        memAt(socket).poke(dataAddr(socket, l),
                           memAt(other_sock).peek(
                               dataAddr(other_sock, l)));
    }

    // Verify: degraded lines of this page that now read cleanly from the
    // spare return to dual-copy service. Lines still failing are hit by
    // faults wider than the frame (channel/controller scope) and remain
    // in single-copy service.
    auto &dmap = home_side ? degradedHome_ : degradedReplica_;
    for (Addr l = first; l < last; ++l) {
        if (!dmap.count(l))
            continue;
        const auto m = memAt(socket).read(dataAddr(socket, l), t);
        t = m.readyAt;
        if (m.failed)
            continue;
        clearDegraded(home_side, l, t);
        ++reReplications_;
    }
}

void
DveEngine::noteDisturbRepair(unsigned fail_sock, Addr line,
                             bool home_side, bool was_disturbed, Tick &t)
{
    if (!was_disturbed || dcfg_.disturbRetireAfter == 0)
        return;
    if (++disturbRepairs_[line] < dcfg_.disturbRetireAfter)
        return;
    // In-place rewrites only last until the next HCfirst crossing: the
    // frame is under active attack, so move the page off it.
    disturbRepairs_.erase(line);
    retireFrame(fail_sock, line, home_side, t);
    ++disturbRetirements_;
}

CoherenceEngine::MemRead
DveEngine::readMemoryChecked(unsigned home, Addr line, Tick when)
{
    const auto rs = rmap_.replicaSocket(line, home);

    // A line already degraded on the home side funnels straight to the
    // replica (paper Sec. V-E).
    if (rs && degradedHome_.count(line) && !degradedReplica_.count(line)) {
        const FabricOutcome go = replicaPathSend(
            home, *rs, line, MsgClass::Control, when, true);
        if (!go.delivered) {
            // Single-copy service and the surviving copy is unreachable.
            ++due_;
            ++unavailableReqs_;
            return {go.at, logicalValue(line)};
        }
        const unsigned ridx = replicaMemIndex(*rs, line);
        const auto m = memAt(ridx).read(dataAddr(ridx, line), go.at);
        if (!m.failed) {
            if (poolActive())
                ++poolReads_;
            const FabricOutcome ret = replicaPathSend(
                home, *rs, line, MsgClass::Data, m.readyAt, false);
            if (ret.delivered)
                return {ret.at, m.value};
            ++due_;
            ++unavailableReqs_;
            return {ret.at, logicalValue(line)};
        }
        ++due_;
        if (dcfg_.disturbRetireAfter > 0)
            markDegraded(false, line, m.readyAt);
        return {m.readyAt, logicalValue(line)};
    }

    const auto m = memory(home).read(dataAddr(home, line), when);
    if (m.status == EccStatus::Corrected)
        ++sysCe_;
    if (!m.failed)
        return {m.readyAt, m.value};

    if (!rs || degradedReplica_.count(line)) {
        ++due_;
        return {m.readyAt, logicalValue(line)};
    }

    // Divert to the replica memory controller (paper Sec. V-B2). The
    // home/replica are in sync whenever memory is the data source.
    const FabricOutcome go = replicaPathSend(
        home, *rs, line, MsgClass::Control, m.readyAt, true);
    if (!go.delivered) {
        // Home copy failed and the replica is unreachable: unavailable.
        // Demote to single-copy and queue a repair of the home side for
        // when the fabric heals.
        ++due_;
        ++unavailableReqs_;
        markDegraded(true, line, go.at);
        return {go.at, logicalValue(line)};
    }
    const unsigned ridx = replicaMemIndex(*rs, line);
    const auto m2 = memAt(ridx).read(dataAddr(ridx, line), go.at);
    if (m2.status == EccStatus::Corrected)
        ++sysCe_;
    if (m2.failed) {
        ++due_; // data lost in both replicas
        // See readReplicaChecked: feed hammered frames to self-heal so
        // repeated repair failures can retire them.
        if (dcfg_.disturbRetireAfter > 0) {
            markDegraded(true, line, m2.readyAt);
            markDegraded(false, line, m2.readyAt);
        }
        return {m2.readyAt, logicalValue(line)};
    }
    if (poolActive())
        ++poolReads_;
    const FabricOutcome ret = replicaPathSend(
        home, *rs, line, MsgClass::Data, m2.readyAt, false);
    if (!ret.delivered) {
        ++due_;
        ++unavailableReqs_;
        markDegraded(true, line, ret.at);
        return {ret.at, logicalValue(line)};
    }
    ++replicaRecoveries_;
    ++sysCe_;
    const Tick back = ret.at;
    recoveryLatencies_.push_back(back - when);
    tracer_.record({when, back - when, TraceKind::Divert, TraceComp::Dve,
                    static_cast<std::uint8_t>(home), line, 1});

    const bool disturbed =
        dcfg_.disturbRetireAfter > 0
        && memory(home).rowDisturbedAt(dataAddr(home, line));
    const auto rep =
        memory(home).repairAndVerify(dataAddr(home, line), m2.value, back);
    if (rep.failed) {
        markDegraded(true, line, back);
    } else {
        ++repaired_;
        clearDegraded(true, line, back);
        Tick bg = back; // retirement runs off the critical path
        noteDisturbRepair(home, line, true, disturbed, bg);
    }
    return {back, m2.value};
}

Tick
DveEngine::writebackToMemory(unsigned home, Addr line, std::uint64_t value,
                             Tick when)
{
    const Tick t_home =
        memory(home).write(dataAddr(home, line), value, when);

    const auto rs = rmap_.replicaSocket(line, home);
    if (!rs)
        return t_home;

    // Synchronous replica update: the writeback completes only after
    // both copies are written (paper Sec. V-B1).
    ++replicaWrites_;
    const FabricOutcome arrive = replicaPathSend(
        home, *rs, line, MsgClass::Data, when, true);
    auto &rd = *rdirs_[*rs];
    if (!arrive.delivered && !dcfg_.bugSkipDemotionOnPartition) {
        // The replica missed this update and is now stale: fence it
        // (single-copy mode) before any read could observe it, and let
        // the background repair re-replicate once the fabric heals.
        ++fabricDemotions_;
        rdRemove(*rs, line);
        markDegraded(false, line, arrive.at);
        return std::max(t_home, arrive.at);
    }
    // With the seeded skip-demotion bug a lost update falls through
    // here as if it had been delivered: the marker maintenance below
    // re-mints readability over the stale copy, and a later
    // replica-side read commits stale data (an SDC the monitors must
    // catch).
    Tick t_rep = arrive.at;
    if (arrive.delivered) {
        const unsigned ridx = replicaMemIndex(*rs, line);
        if (poolActive())
            ++poolWrites_;
        t_rep = memAt(ridx).write(dataAddr(ridx, line), value, arrive.at);
    }

    // Both memories are now current: clear deny markers / refresh allow
    // ownership entries.
    if (effectiveDeny(line)) {
        rdRemove(*rs, line);
    } else if (rd.hasLineEntry(line)) {
        // Refresh to Readable only when the home can still route an
        // invalidation here: a replica-side ownership entry (the home
        // sharer bit is retained at writeback) or an existing on-chip
        // Readable permission. Under the dynamic protocol the entry may
        // instead be a leftover deny-phase RM / remote-owned M marker
        // whose reads never registered at the home -- upgrading those
        // would mint a permission no exclusive grant can revoke.
        const auto backing = rd.peekBacking(line);
        const bool invalidatable =
            dcfg_.bugRmMarkerRefresh || !backing
            || (backing->state == RepState::M
                && backing->owner == static_cast<int>(*rs));
        if (invalidatable)
            rdInstall(*rs, line, {RepState::Readable, -1});
        else
            rdRemove(*rs, line);
    }
    return std::max(t_home, t_rep);
}

bool
DveEngine::retainSharerAfterWriteback(unsigned home, Addr line,
                                      unsigned from_socket)
{
    const auto rs = rmap_.replicaSocket(line, home);
    // Under the allow protocol, the replica directory keeps a Readable
    // permission after its socket's writeback; the home sharer bit is
    // what routes a later invalidation to it.
    return rs && *rs == from_socket && !effectiveDeny(line);
}

Tick
DveEngine::grantedExclusive(unsigned home, Addr line, unsigned to_socket,
                            Tick start, std::uint32_t prev_sharers)
{
    const auto rs = rmap_.replicaSocket(line, home);
    if (!rs)
        return start;
    auto &rd = *rdirs_[*rs];

    if (to_socket == *rs) {
        // Replica-side writer: the replica directory tracks the owner.
        rdInstall(*rs, line, {RepState::M, static_cast<int>(to_socket)});
        if (dcfg_.coarseGrain)
            rd.removeRegion(line);
        return start;
    }

    if (effectiveDeny(line)) {
        // Eager deny push: the grant cannot complete until the replica
        // directory acknowledges the RM marker and local copies are
        // invalidated (replica-side LLCs may hold copies the home never
        // learned about, since local replica reads do not register at
        // the home directory).
        ++rmPushes_;
        Tick t = controlSend(dirNode(home), dirNode(*rs), start);
        t += cycles(cfg_.dirLatency);
        rdInstall(*rs, line, {RepState::RM, static_cast<int>(to_socket)});
        if (dcfg_.coarseGrain)
            rd.removeRegion(line);
        if (!dcfg_.bugSkipDenyInvalidate)
            t = invalidateSocketCopy(*rs, line, t);
        return controlSend(dirNode(*rs), dirNode(home), t);
    }

    // Allow: lazily notify only when the replica directory holds
    // permissions (it is then registered as a sharer at the home, or a
    // coarse region grant was ever made -- the home-side region record
    // is conservative because region-served lines are not individually
    // registered).
    const bool was_sharer = (prev_sharers >> *rs) & 1u;
    const bool region_held =
        dcfg_.coarseGrain
        && regionGrants_[*rs].count(rd.region(line)) > 0;
    if (!was_sharer && !region_held) {
        // Leftover deny-phase RM/M backing entries are harmless here
        // (they deny readability); what must never exist without a home
        // sharer registration is an explicit Readable permission.
        if (cfg_.invariantChecks && rd.hasReadablePermission(line)) {
            // Structured report instead of the panic below, then cure
            // the stray permission so the run stays well-defined past
            // the detection point.
            reportViolation(InvariantMonitor::ReplicaDir, start, line,
                            "exclusive grant found a Readable replica "
                            "permission the home never registered");
            rdRemove(*rs, line);
            return start;
        }
        dve_assert(!rd.hasReadablePermission(line),
                   "allow permission without home sharer registration");
        return start;
    }
    Tick t = controlSend(dirNode(home), dirNode(*rs), start);
    t += cycles(cfg_.dirLatency);
    rdRemove(*rs, line);
    if (region_held) {
        // Losing a region permission invalidates the whole region's
        // readability (the overhead Fig 9 attributes to coarse grain).
        rd.removeRegion(line);
        t += cycles(cfg_.dirLatency);
    }
    if (!was_sharer) {
        // Region-served lines were never registered at the home, so
        // the standard sharer-invalidation loop missed the replica
        // socket's cached copy: invalidate it here.
        t = invalidateSocketCopy(*rs, line, t);
    }
    return controlSend(dirNode(*rs), dirNode(home), t);
}

void
DveEngine::checkInvariants(Tick now)
{
    CoherenceEngine::checkInvariants(now);

    // Allow soundness: an explicit Readable permission must be revocable,
    // i.e. the home directory still tracks the replica socket as a
    // sharer. A permission the home cannot route an invalidation to
    // survives the next exclusive grant and then reads stale data.
    for (unsigned rs = 0; rs < cfg_.sockets; ++rs) {
        std::vector<Addr> bad;
        rdirs_[rs]->forEachOnChipLine(
            [&](Addr line, const ReplicaDirectory::Entry &e) {
                if (e.state != RepState::Readable)
                    return;
                // Deny-mode lines cache Readable outcomes on-chip
                // without registering at the home (absence-means-
                // readable); the invariant only binds allow-mode lines.
                // A dynamic flip to allow drains all on-chip entries
                // first, so checking effectiveDeny at sweep time is
                // sound.
                if (effectiveDeny(line))
                    return;
                if (degradedReplica_.count(line)
                    || degradedHome_.count(line))
                    return;
                const DirEntry *de =
                    directory(homeSocket(line)).find(line);
                if (!de || !de->hasSharer(rs))
                    bad.push_back(line);
            });
        std::sort(bad.begin(), bad.end());
        for (Addr line : bad)
            reportViolation(InvariantMonitor::ReplicaDir, now, line,
                            "Readable replica permission without a home "
                            "sharer registration");
    }

    // Deny exhaustiveness: a replicated line dirty at a remote
    // (non-replica) owner must carry an RM marker in the replica's
    // backing state, or a deny-protocol local read would return the
    // stale replica copy.
    for (unsigned h = 0; h < cfg_.sockets; ++h) {
        std::vector<Addr> bad;
        directory(h).forEach([&](Addr line, const DirEntry &de) {
            if (de.state != LineState::M && de.state != LineState::O)
                return;
            const auto rs = rmap_.replicaSocket(line, h);
            if (!rs || de.owner < 0
                || de.owner == static_cast<int>(*rs))
                return;
            if (!effectiveDeny(line))
                return;
            if (degradedReplica_.count(line) || degradedHome_.count(line))
                return;
            // While the replica-directory page is lost, the RM marker
            // lives in the rebuild journal, not the backing store (and
            // reads route to home anyway).
            if (metaRdLost(*rs, line))
                return;
            const auto backing = rdirs_[*rs]->peekBacking(line);
            if (!backing || backing->state == RepState::Readable)
                bad.push_back(line);
        });
        std::sort(bad.begin(), bad.end());
        for (Addr line : bad)
            reportViolation(InvariantMonitor::ReplicaDir, now, line,
                            "remotely modified line without a deny (RM) "
                            "marker at the replica directory");
    }

    // Metadata golden shadow: once a lost replica-directory page has
    // been rebuilt, every write journaled during the outage must be
    // reflected in the backing store. A rebuild that skipped the replay
    // (the seeded skip-rebuild-on-scrub bug) leaves the shadow diverged
    // here.
    if (dcfg_.metadataFaults) {
        std::vector<Addr> lines;
        for (const auto &kv : metaJournal_)
            lines.push_back(kv.first);
        std::sort(lines.begin(), lines.end());
        for (const Addr line : lines) {
            const unsigned h = homeSocket(line);
            const auto rs = rmap_.replicaSocket(line, h);
            if (!rs) {
                metaJournal_.erase(line); // page left replication
                continue;
            }
            if (metaRdLost(*rs, line))
                continue; // still lost: divergence is expected
            const MetaShadow sh = metaJournal_.find(line)->second;
            const auto backing = rdirs_[*rs]->peekBacking(line);
            // Readable journals as authoritative absence (the backing
            // store never holds Readable entries).
            const bool expectAbsent =
                !sh.present || sh.state == RepState::Readable;
            const bool match =
                expectAbsent ? !backing
                             : (backing && backing->state == sh.state
                                && backing->owner == sh.owner);
            if (!match) {
                reportViolation(InvariantMonitor::Metadata, now, line,
                                "replica-directory backing state "
                                "diverges from the journaled golden "
                                "shadow after a metadata rebuild");
                // Cure: apply the journaled write so the run stays
                // well-defined past the detection point.
                if (expectAbsent)
                    rdirs_[*rs]->remove(line);
                else
                    rdirs_[*rs]->install(line, {sh.state, sh.owner});
            }
            metaJournal_.erase(line);
        }
    }
}

bool
DveEngine::dueHasCause(Addr line) const
{
    return CoherenceEngine::dueHasCause(line)
           || degradedHome_.count(line) > 0
           || degradedReplica_.count(line) > 0 || !fenceUntil_.empty()
           || (dcfg_.metadataFaults && !metaLost_.empty());
}

CoherenceEngine::MissResult
DveEngine::forwardGetsToHome(unsigned req_socket, Addr line, Tick when)
{
    ++homeForwards_;
    const unsigned h = homeSocket(line);
    const NodeId dest = sliceNode(req_socket, line);
    const Tick arrival =
        controlSend(dirNode(req_socket), dirNode(h), when);
    auto &dir = directory(h);
    const Tick start = dir.acquire(line, arrival) + cycles(cfg_.dirLatency);
    const MissResult r = homeGets(req_socket, line, start, dest);
    dir.release(line, r.done);
    if (req_socket != h && !ic_.pathUp(req_socket, h)) {
        // The directory transaction completed over the resilient control
        // path (so the copy stays coherence-tracked), but the line itself
        // cannot cross the dead link: the request completes as a machine
        // check after the timeout instead of wedging.
        ++due_;
        ++unavailableReqs_;
        return {r.done + dcfg_.linkTimeout, r.value, r.dirtyData};
    }
    return r;
}

CoherenceEngine::MissResult
DveEngine::replicaSideGets(unsigned req_socket, unsigned rsock, Addr line,
                           Tick t_slice)
{
    const unsigned h = homeSocket(line);
    auto &rd = *rdirs_[rsock];
    const NodeId dest = sliceNode(req_socket, line);
    const NodeId rdn = dirNode(rsock);

    const Tick arrival =
        t_slice + ic_.send(dest, rdn, MsgClass::Control);
    const Tick start = rd.acquire(line, arrival) + cycles(cfg_.dirLatency);

    MissResult res;

    // Degraded replica: funnel to the single working copy (Sec. V-E).
    if (degradedReplica_.count(line)) {
        res = forwardGetsToHome(rsock, line, start);
        rd.release(line, res.done);
        dynamicObserve(line, res.done - t_slice);
        return res;
    }

    if (dcfg_.metadataFaults) {
        const Addr page = line >> (pageShift - lineShift);
        const MetaVerdict v = metaCheck(
            rsock, unsigned(MetaStructure::ReplicaDir), page, start);
        if (v == MetaVerdict::Lost) {
            // The backing entry is unreadable: the home copy is the only
            // state that can be trusted until the scrubber rebuilds.
            ++metaForwards_;
            res = forwardGetsToHome(rsock, line, start);
            rd.release(line, res.done);
            dynamicObserve(line, res.done - t_slice);
            return res;
        }
        if (v == MetaVerdict::Lying) {
            // Unprotected corruption reads as a valid Readable
            // permission: the (possibly remotely-modified, stale)
            // replica copy is served without consulting home.
            const MemRead m = readReplicaChecked(rsock, h, line, start);
            res.value = m.value;
            res.done = m.ready + ic_.send(rdn, dest, MsgClass::Data);
            rd.release(line, res.done);
            dynamicObserve(line, res.done - t_slice);
            return res;
        }
    }

    auto look = rd.lookup(line);
    const bool deny = effectiveDeny(line);

    if (deny) {
        // On-chip miss: fetch the metadata entry from the reserved DRAM
        // region; speculatively start the data read in parallel.
        Tick decided = start;
        bool speculated = false;
        if (!look.onChipHit) {
            decided = memory(rsock).metadataAccess(line << lineShift,
                                                   start);
            speculated = dcfg_.speculativeReplicaRead;
        }

        const bool blocked =
            look.entry
            && (look.entry->state == RepState::RM
                || (look.entry->state == RepState::M
                    && look.entry->owner != static_cast<int>(rsock)));
        dve_assert(!(look.entry && look.entry->state == RepState::M
                     && look.entry->owner == static_cast<int>(rsock)),
                   "M entry owned by the requester that just missed");

        if (!blocked) {
            // Replica is readable (no entry, or explicit Readable).
            const Tick issue =
                (look.onChipHit || speculated) ? start : decided;
            const MemRead m = readReadableCopy(rsock, h, line, issue);
            if (speculated)
                ++specWins_;
            const Tick data_at = std::max(m.ready, decided);
            rd.install(line, {RepState::Readable, -1});
            ++replicaLocalReads_;
            res.value = m.value;
            res.done = data_at + ic_.send(rdn, dest, MsgClass::Data);
        } else {
            // Remote-modified: the replica is stale; go to home.
            if (speculated) {
                ++specSquashes_;
                memory(rsock).timingRead(line << lineShift, start);
            }
            res = forwardGetsToHome(rsock, line, decided);
        }
    } else {
        // Allow protocol.
        const bool readable =
            look.regionReadable
            || (look.entry && look.entry->state == RepState::Readable);

        if (readable) {
            const MemRead m = readReadableCopy(rsock, h, line, start);
            ++replicaLocalReads_;
            res.value = m.value;
            res.done = m.ready + ic_.send(rdn, dest, MsgClass::Data);
        } else if (look.entry && look.entry->state == RepState::M
                   && look.entry->owner != static_cast<int>(rsock)) {
            // Another replica-side LLC owns it (N > 2 sockets): the home
            // knows the owner too; route through home for the fetch.
            res = forwardGetsToHome(rsock, line, start);
        } else {
            // No permission: pull from home, speculating on the local
            // replica meanwhile.
            ++permPulls_;
            const Tick ctrl_arrival =
                controlSend(rdn, dirNode(h), start);
            auto &hdir = directory(h);
            const Tick hstart = hdir.acquire(line, ctrl_arrival)
                                + cycles(cfg_.dirLatency);
            DirEntry &e = hdir.lookup(line);

            if (e.state == LineState::I || e.state == LineState::S) {
                // Memory (and hence the replica) is current: grant.
                classify(false, e.state);
                e.state = LineState::S;
                e.addSharer(rsock);
                const Tick grant_back =
                    controlSend(dirNode(h), rdn, hstart);
                hdir.release(line, hstart);

                Tick data_at;
                std::uint64_t value;
                if (dcfg_.speculativeReplicaRead) {
                    const MemRead m =
                        readReplicaChecked(rsock, h, line, start);
                    ++specWins_;
                    data_at = std::max(m.ready, grant_back);
                    value = m.value;
                } else {
                    const MemRead m =
                        readReplicaChecked(rsock, h, line, grant_back);
                    data_at = m.ready;
                    value = m.value;
                }
                rd.install(line, {RepState::Readable, -1});
                if (dcfg_.coarseGrain && regionCleanAtHome(h, line)) {
                    rd.installRegion(line);
                    regionGrants_[rsock].insert(rd.region(line));
                }
                ++replicaLocalReads_;
                res.value = value;
                res.done = data_at + ic_.send(rdn, dest, MsgClass::Data);
            } else {
                // Dirty at home side: fetch via home (classifies there);
                // squash any speculative local read.
                if (dcfg_.speculativeReplicaRead) {
                    ++specSquashes_;
                    memory(rsock).timingRead(line << lineShift, start);
                }
                ++homeForwards_;
                const MissResult hr = homeGets(rsock, line, hstart, dest);
                hdir.release(line, hr.done);
                // Write the fresh data through to the replica memory and
                // keep a Readable permission: the home registered us as
                // a sharer, so a later GETX will invalidate it.
                bool thru_ok = true;
                if (poolActive()) {
                    const FabricOutcome thru = poolSend(
                        rsock, poolNodeOf(line), MsgClass::Data, hr.done);
                    thru_ok = thru.delivered
                              || dcfg_.bugSkipDemotionOnPartition;
                    if (thru.delivered) {
                        ++poolWrites_;
                        const unsigned ridx = replicaMemIndex(rsock, line);
                        memAt(ridx).write(dataAddr(ridx, line), hr.value,
                                          thru.at);
                    } else if (!thru_ok) {
                        // The pool replica missed the write-through:
                        // fence it rather than minting a permission
                        // over a stale far-memory copy.
                        ++fabricDemotions_;
                        markDegraded(false, line, thru.at);
                    }
                } else {
                    memory(rsock).write(dataAddr(rsock, line), hr.value,
                                        hr.done);
                }
                if (thru_ok)
                    rd.install(line, {RepState::Readable, -1});
                res = hr;
            }
        }
    }

    rd.release(line, res.done);
    dynamicObserve(line, res.done - t_slice);
    return res;
}

CoherenceEngine::MissResult
DveEngine::serviceLlcMiss(unsigned socket, Addr line, bool is_write,
                          Tick t_slice)
{
    if (policy_) {
        // The policy hook runs before the home/replica routing below:
        // an epoch boundary here can promote or demote this very page,
        // and demotion writebacks are foreground work the triggering
        // access waits out (the storm lands in the latency histogram).
        t_slice = policyTick(line, t_slice);
    }

    const unsigned h = homeSocket(line);
    const auto rs0 = rmap_.replicaSocket(line, h);
    auto rs = rs0;
    bool rmtLying = false;

    if (dcfg_.metadataFaults && rs0) {
        const Addr page = line >> (pageShift - lineShift);
        // RMT consult: where does this line's replica live?
        const MetaVerdict rv =
            metaCheck(h, unsigned(MetaStructure::Rmt), page, t_slice);
        if (rv == MetaVerdict::Lost) {
            // The placement entry is unreadable: only the home copy can
            // be trusted until the scrubber rebuilds the RMT.
            ++metaForwards_;
            rs = std::nullopt;
        } else if (rv == MetaVerdict::Lying) {
            rmtLying = true;
        }

        // Home-directory consult for every access that serializes at
        // the home: home-side requests, writes, and anything the RMT
        // loss just rerouted there.
        if (!rs || socket == h || is_write) {
            const MetaVerdict hv = metaCheck(
                h, unsigned(MetaStructure::HomeDir), page, t_slice);
            if (hv == MetaVerdict::Lost) {
                bool rebuilt = false;
                if (is_write) {
                    // The GETX re-allocates the directory entry: a
                    // write is its own rebuild.
                    rebuilt = metaTryRebuild(
                        h, unsigned(MetaStructure::HomeDir), page, true);
                } else if (!metaCompromised(
                               *rs0,
                               unsigned(MetaStructure::ReplicaDir), page)
                           && !metaCompromised(
                               h, unsigned(MetaStructure::Rmt), page)) {
                    // Cross-rebuild from the replica directory plus
                    // sharer probes (one control round trip).
                    t_slice =
                        controlSend(dirNode(h), dirNode(*rs0), t_slice);
                    t_slice =
                        controlSend(dirNode(*rs0), dirNode(h), t_slice);
                    rebuilt = metaTryRebuild(
                        h, unsigned(MetaStructure::HomeDir), page, true);
                }
                if (!rebuilt && !is_write) {
                    // Both metadata sides are lost: the response is
                    // poisoned -- an honest machine check, never a
                    // silent lie -- and the access eats the probe
                    // timeout. The directory transaction below still
                    // completes, so sharer bookkeeping stays coherent
                    // for the caches this response fills.
                    ++due_;
                    ++metaDemotions_;
                    t_slice += dcfg_.linkTimeout;
                }
                // A write proceeds regardless: the grant rewrites the
                // entry (a permanent fault just corrupts it again).
            } else if (hv == MetaVerdict::Lying && !is_write
                       && socket == h) {
                // The corrupt entry claims the memory copy is current:
                // serve the home frame without the owner recall the
                // true entry would have forced (stale data whenever a
                // remote cache owns the line dirty).
                const auto m =
                    memory(h).read(dataAddr(h, line), t_slice);
                return {m.readyAt, m.value, false};
            }
        }
    }

    if (!rs || socket == h) {
        // Unreplicated line, or the requester is on the home side: the
        // baseline path applies (hooks handle replica bookkeeping).
        const MissResult r = CoherenceEngine::serviceLlcMiss(
            socket, line, is_write, t_slice);
        // Home-side transactions still pay protocol-dependent costs
        // (deny's RM push rides the GETX critical path), so the dynamic
        // sampler must see them too.
        if (rs)
            dynamicObserve(line, r.done - t_slice);
        return r;
    }

    if (rmtLying && !is_write) {
        // The corrupt placement points at a phantom frame: the read
        // lands on another page's replica slot and commits its data.
        const unsigned ridx = replicaMemIndex(*rs, line);
        const Addr phantom = line + pageBytes / lineBytes;
        const Tick arrival =
            t_slice + ic_.send(sliceNode(socket, line), dirNode(*rs),
                               MsgClass::Control);
        const auto m = memAt(ridx).read(dataAddr(ridx, phantom), arrival);
        return {m.readyAt + ic_.send(dirNode(*rs),
                                     sliceNode(socket, line),
                                     MsgClass::Data),
                m.value, false};
    }

    if (is_write) {
        // Writes serialize at the home directory. Route through the
        // nearest (replica) directory per the Fig 4(c) hierarchy: it
        // forwards the GETX to home.
        auto &rd = *rdirs_[*rs];
        const Tick arrival =
            controlSend(sliceNode(socket, line), dirNode(*rs), t_slice);
        const Tick start =
            rd.acquire(line, arrival) + cycles(cfg_.dirLatency);
        const Tick harr =
            controlSend(dirNode(*rs), dirNode(h), start);
        auto &hdir = directory(h);
        const Tick hstart =
            hdir.acquire(line, harr) + cycles(cfg_.dirLatency);
        const MissResult r =
            homeGetx(socket, line, hstart, sliceNode(socket, line));
        hdir.release(line, r.done);
        rd.release(line, r.done);
        dynamicObserve(line, r.done - t_slice);
        return r;
    }

    if (*rs != socket) {
        // Neither home nor replica is local (N > 2 sockets): go to the
        // nearer directory.
        const Tick to_home =
            ic_.latency(sliceNode(socket, line), dirNode(h));
        const Tick to_rep =
            ic_.latency(sliceNode(socket, line), dirNode(*rs));
        if (to_home <= to_rep) {
            return CoherenceEngine::serviceLlcMiss(socket, line, is_write,
                                                   t_slice);
        }
    }
    return replicaSideGets(socket, *rs, line, t_slice);
}

void
DveEngine::dynamicObserve(Addr line, Tick latency)
{
    if (dcfg_.protocol != DveProtocol::Dynamic)
        return;
    const std::uint64_t group = line % dcfg_.sampleGroups;
    if (group == 0) {
        ++allowSampleCount_;
        allowSampleLatency_ += static_cast<double>(latency);
    } else if (group == 1) {
        ++denySampleCount_;
        denySampleLatency_ += static_cast<double>(latency);
    }

    if (++epochAccesses_ < dcfg_.epochOps)
        return;
    epochAccesses_ = 0;

    if (allowSampleCount_ >= 16 && denySampleCount_ >= 16) {
        const double allow_avg =
            allowSampleLatency_ / static_cast<double>(allowSampleCount_);
        const double deny_avg =
            denySampleLatency_ / static_cast<double>(denySampleCount_);
        const bool deny_better = deny_avg <= allow_avg;
        if (deny_better != denyWinning_) {
            // Switch: drain permissions and rebuild deny state (the
            // paper's drain + warmup phases).
            ++dynamicSwitches_;
            denyWinning_ = deny_better;
            tracer_.record({lastCompletion_, 0, TraceKind::EpochSwitch,
                            TraceComp::Dve, 0, deny_better ? 1u : 0u,
                            dynamicSwitches_.value()});
            for (auto &rd : rdirs_)
                rd->drainPermissions();
            if (denyWinning_)
                rebuildDenyBacking();
            else
                flushUntrackedReplicaCopies();
        }
    }
    allowSampleCount_ = denySampleCount_ = 0;
    allowSampleLatency_ = denySampleLatency_ = 0;
}

void
DveEngine::flushUntrackedReplicaCopies()
{
    for (unsigned s = 0; s < cfg_.sockets; ++s) {
        std::vector<Addr> victims;
        llc(s).forEach([&](Addr line, LlcEntry &e) {
            if (e.state != LineState::S)
                return; // M/O lines are registered as owner at home
            const unsigned h = homeSocket(line);
            if (h == s)
                return; // home-side copies are always tracked
            const auto rs = rmap_.replicaSocket(line, h);
            if (!rs || *rs != s)
                return;
            const DirEntry *de = directory(h).find(line);
            if (!de || !de->hasSharer(s))
                victims.push_back(line);
        });
        for (Addr line : victims) {
            LlcEntry *e = llc(s).find(line);
            if (!e)
                continue;
            for (unsigned c = 0; c < cfg_.coresPerSocket; ++c) {
                if (e->l1Sharers & (1u << c))
                    sockets_[s].l1[c].erase(line);
            }
            llc(s).erase(line);
        }
    }
}

void
DveEngine::rebuildDenyBacking()
{
    // Warmup: bring RM markers au courant for every line that is dirty
    // in a home-side LLC. Installs touch the on-chip LRU, so order them
    // by line rather than by directory layout.
    for (unsigned h = 0; h < cfg_.sockets; ++h) {
        std::vector<std::pair<Addr, ReplicaDirectory::Entry>> marks;
        directory(h).forEach([&](Addr line, const DirEntry &e) {
            if (e.state != LineState::M && e.state != LineState::O)
                return;
            const auto rs = rmap_.replicaSocket(line, h);
            if (!rs || !effectiveDeny(line))
                return;
            const RepState st = e.owner == static_cast<int>(*rs)
                                    ? RepState::M
                                    : RepState::RM;
            marks.emplace_back(line,
                               ReplicaDirectory::Entry{st, e.owner});
        });
        std::sort(marks.begin(), marks.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (const auto &[line, entry] : marks) {
            const auto rs = rmap_.replicaSocket(line, h);
            rdInstall(*rs, line, entry);
        }
    }
}

void
DveEngine::enableReplication(Addr page, unsigned replica_socket)
{
    dve_assert(!rmap_.coversAll(), "fixed mapping already replicates all");
    const Addr first = page << (pageShift - lineShift);
    const Addr last = first + pageBytes / lineBytes;
    const unsigned h = homeSocket(first);
    dve_assert(replica_socket != h,
               "replica must be placed on a non-home socket");

    rmap_.mapPage(page, replica_socket);

    // Seed replica memory with the home memory image; lines dirty in
    // caches will reach both copies at writeback time.
    for (Addr line = first; line < last; ++line) {
        const unsigned ridx = replicaMemIndex(replica_socket, line);
        memAt(ridx).poke(dataAddr(ridx, line), memory(h).peek(
                             dataAddr(h, line)));
    }
    // Seed deny markers for lines currently dirty in home-side LLCs.
    // Installs touch the on-chip LRU, so order them by line rather than
    // by directory layout.
    std::vector<std::pair<Addr, ReplicaDirectory::Entry>> marks;
    directory(h).forEach([&](Addr line, const DirEntry &e) {
        if (line < first || line >= last)
            return;
        if (e.state != LineState::M && e.state != LineState::O)
            return;
        if (!effectiveDeny(line))
            return;
        const RepState st = e.owner == static_cast<int>(replica_socket)
                                ? RepState::M
                                : RepState::RM;
        marks.emplace_back(line, ReplicaDirectory::Entry{st, e.owner});
    });
    std::sort(marks.begin(), marks.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (const auto &[line, entry] : marks)
        rdInstall(replica_socket, line, entry);
}

void
DveEngine::disableReplication(Addr page)
{
    const Addr first = page << (pageShift - lineShift);
    const Addr last = first + pageBytes / lineBytes;
    const unsigned h = homeSocket(first);
    const auto rs = rmap_.replicaSocket(first, h);
    if (!rs)
        return;
    // Unmapping retires this page's control-plane state wholesale: lost
    // markers and journaled shadow writes describe structures that no
    // longer back anything.
    if (dcfg_.metadataFaults)
        metaDropPage(*rs, h, page);
    for (Addr line = first; line < last; ++line) {
        rdirs_[*rs]->remove(line);
        // Unplugging the replica forfeits its degraded bookkeeping
        // outright (no heal event; residency intervals are dropped).
        degradedHome_.erase(line);
        degradedReplica_.erase(line);
    }
    frameRemap_[replicaMemIndex(*rs, first)].erase(page);
    rmap_.unmapPage(page);
}

// ---- On-demand replication policy --------------------------------------

void
DveEngine::setPolicyGlobalBudget(std::size_t pages)
{
    if (policy_)
        policy_->setGlobalBudget(pages);
}

unsigned
DveEngine::policyNodeFor(Addr page) const
{
    // Budget accounting node: the pool node the replica occupies (pool
    // tier), else the replica socket the fixed placement would pick.
    if (poolActive())
        return poolRemap_->nodeFor(page);
    const unsigned h = homeSocket(page << (pageShift - lineShift));
    return (h + 1) % cfg_.sockets;
}

Tick
DveEngine::policyTick(Addr line, Tick now)
{
    const Addr page = line >> (pageShift - lineShift);
    if (!policy_->observe(page))
        return now;

    ++policyEpochs_;
    Tick t = now;
    const ReplicationPolicy::NodeOf nodeOf = [this](Addr p) {
        return policyNodeFor(p);
    };
    const auto batch = policy_->evaluate(nodeOf);

    // Demotions first so their freed budget is visible to this epoch's
    // promotions. A deferred demotion (degraded lines in flight) keeps
    // its page in the policy's replicated set and retries next epoch.
    for (const Addr p : batch.demote) {
        if (demotePage(p, t))
            policy_->noteDemoted(p);
    }
    for (const Addr p : batch.promote) {
        // Re-checked per page: deferred demotions above mean the
        // accounting evaluate() simulated may not have materialized.
        if (!policy_->canPromote(p, nodeOf))
            continue;
        promotePage(p, t);
        policy_->notePromoted(p);
    }
    return t;
}

void
DveEngine::promotePage(Addr page, Tick now)
{
    const Addr first = page << (pageShift - lineShift);
    const Addr last = first + pageBytes / lineBytes;
    const unsigned h = homeSocket(first);
    const unsigned rsock = (h + 1) % cfg_.sockets;

    if (rmap_.replicaSocket(first, h)) {
        // Already replicated outside policy control (a manual
        // enableReplication call): adopt it as-is, nothing to heal.
        ++policyPromotions_;
        policyPromotionLag_.record(0);
        return;
    }

    rmap_.mapPage(page, rsock);

    // Seed deny markers for lines currently dirty in home-side LLCs
    // (same ordering discipline as enableReplication: installs touch
    // the on-chip LRU, so sort by line).
    std::vector<std::pair<Addr, ReplicaDirectory::Entry>> marks;
    directory(h).forEach([&](Addr line, const DirEntry &e) {
        if (line < first || line >= last)
            return;
        if (e.state != LineState::M && e.state != LineState::O)
            return;
        if (!effectiveDeny(line))
            return;
        const RepState st = e.owner == static_cast<int>(rsock)
                                ? RepState::M
                                : RepState::RM;
        marks.emplace_back(line, ReplicaDirectory::Entry{st, e.owner});
    });
    std::sort(marks.begin(), marks.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (const auto &[l, entry] : marks)
        rdInstall(rsock, l, entry);

    // Unlike enableReplication, the replica data is NOT poked into
    // place: every written line starts replica-degraded and the timed
    // repair pipeline performs the copy (reads divert to home until
    // each line heals). That makes promotion lag a real, measurable
    // quantity instead of a free instantaneous memcpy. Unwritten lines
    // read zero on both sides already.
    ++policyPromotions_;
    bool seeding = false;
    for (Addr l = first; l < last; ++l) {
        if (!logicalMem_.count(l))
            continue;
        markDegraded(false, l, now);
        seeding = true;
    }
    if (seeding)
        promotePending_[page] = now;
    else
        policyPromotionLag_.record(0); // nothing to copy: born healed
}

bool
DveEngine::demotePage(Addr page, Tick &t)
{
    const Addr first = page << (pageShift - lineShift);
    const Addr last = first + pageBytes / lineBytes;
    const unsigned h = homeSocket(first);
    const auto rs = rmap_.replicaSocket(first, h);
    if (!rs)
        return true; // mapping already gone: demotion is a no-op

    // Demotion funnels through the degradation ladder: while any line
    // of the page is degraded, tearing the mapping down would erase the
    // degraded record while the cells stay corrupted -- a later DUE
    // would have no recorded cause and the honesty monitors would
    // fire. Defer; the repair pipeline heals (or retires) the line and
    // the next epoch retries.
    for (Addr l = first; l < last; ++l) {
        if (degradedHome_.count(l) || degradedReplica_.count(l)) {
            ++policyDemotionsDeferred_;
            return false;
        }
    }

    const Tick start = t;

    // Replica-side caches may hold deny-served (or region-served)
    // copies the home directory never registered; after the unmap no
    // invalidation could reach them, so flush them first.
    flushUntrackedPageCopies(*rs, first, last);

    // Timed writeback flush of the replica copy into the home copy:
    // the capacity being reclaimed holds the only ECC-protected image
    // of any update the home may have missed, so a real demotion pays
    // a read+write per written line. The storm is charged to the
    // triggering access and shows up in the latency histograms.
    const bool replica_reachable =
        !poolActive() || ic_.poolPathUp(poolNodeOf(first));
    for (Addr l = first; l < last; ++l) {
        if (!logicalMem_.count(l))
            continue;
        if (!replica_reachable)
            continue; // unreachable pool leg: home stays authoritative
        const unsigned ridx = replicaMemIndex(*rs, l);
        const auto m = memAt(ridx).read(dataAddr(ridx, l), t);
        t = m.readyAt;
        if (m.status == EccStatus::Corrected)
            ++sysCe_;
        if (m.failed)
            continue; // home copy is authoritative; nothing to salvage
        t = memory(h).write(dataAddr(h, l), m.value, t);
        ++policyDemotionWritebacks_;
    }
    policyDemotionWbWait_.record(t > start ? t - start : 0);

    ++policyDemotions_;
    promotePending_.erase(page); // a still-healing promotion is void
    disableReplication(page);
    return true;
}

void
DveEngine::flushUntrackedPageCopies(unsigned rsock, Addr first_line,
                                    Addr last_line)
{
    std::vector<Addr> victims;
    llc(rsock).forEach([&](Addr line, LlcEntry &e) {
        if (line < first_line || line >= last_line)
            return;
        if (e.state != LineState::S)
            return; // M/O lines are registered as owner at home
        const unsigned h = homeSocket(line);
        if (h == rsock)
            return; // home-side copies are always tracked
        const DirEntry *de = directory(h).find(line);
        if (!de || !de->hasSharer(rsock))
            victims.push_back(line);
    });
    std::sort(victims.begin(), victims.end());
    for (Addr line : victims) {
        LlcEntry *e = llc(rsock).find(line);
        if (!e)
            continue;
        for (unsigned c = 0; c < cfg_.coresPerSocket; ++c) {
            if (e->l1Sharers & (1u << c))
                sockets_[rsock].l1[c].erase(line);
        }
        llc(rsock).erase(line);
    }
}

} // namespace dve
