/**
 * @file
 * Unit tests for the replica map (fixed + RMT) and the replica directory
 * structure in isolation.
 */

#include <gtest/gtest.h>

#include "core/replica_directory.hh"
#include "core/replica_map.hh"

namespace dve
{
namespace
{

TEST(ReplicaMap, FixedMappingCoversEverything)
{
    const auto m = ReplicaMap::fixedAll(2);
    EXPECT_TRUE(m.coversAll());
    for (Addr line = 0; line < 4096; line += 37) {
        const unsigned home = static_cast<unsigned>((line >> 6) % 2);
        const auto rs = m.replicaSocket(line, home);
        ASSERT_TRUE(rs.has_value());
        EXPECT_EQ(*rs, 1 - home);
    }
}

TEST(ReplicaMap, FixedMappingFourSockets)
{
    const auto m = ReplicaMap::fixedAll(4);
    EXPECT_EQ(*m.replicaSocket(0, 0), 1u);
    EXPECT_EQ(*m.replicaSocket(0, 3), 0u);
}

TEST(ReplicaMap, SingleSocketNeverReplicates)
{
    const auto m = ReplicaMap::fixedAll(1);
    EXPECT_FALSE(m.replicaSocket(0, 0).has_value());
}

TEST(ReplicaMap, RmtMapsIndividualPages)
{
    ReplicaMap m(2);
    EXPECT_FALSE(m.coversAll());
    EXPECT_FALSE(m.replicaSocket(0, 0).has_value());

    m.mapPage(0, 1);
    // Line 0 lives in page 0.
    EXPECT_EQ(*m.replicaSocket(0, 0), 1u);
    // Line 64 lives in page 1: unmapped.
    EXPECT_FALSE(m.replicaSocket(64, 1).has_value());
    EXPECT_EQ(m.mappedPages(), 1u);

    EXPECT_TRUE(m.unmapPage(0));
    EXPECT_FALSE(m.unmapPage(0));
    EXPECT_FALSE(m.replicaSocket(0, 0).has_value());
}

TEST(ReplicaMap, FixedMapRejectsRmtInserts)
{
    auto m = ReplicaMap::fixedAll(2);
    EXPECT_THROW(m.mapPage(0, 1), std::logic_error);
}

TEST(ReplicaDirectory, LookupMissThenInstallHits)
{
    ReplicaDirectory rd(1, 16, false);
    auto l = rd.lookup(42);
    EXPECT_FALSE(l.onChipHit);
    EXPECT_FALSE(l.entry.has_value());

    rd.install(42, {RepState::RM, 0});
    l = rd.lookup(42);
    EXPECT_TRUE(l.onChipHit);
    ASSERT_TRUE(l.entry.has_value());
    EXPECT_EQ(l.entry->state, RepState::RM);
    EXPECT_EQ(rd.onChipHits(), 1u);
    EXPECT_EQ(rd.onChipMisses(), 1u);
}

TEST(ReplicaDirectory, RmSurvivesOnChipEviction)
{
    ReplicaDirectory rd(1, 2, false);
    rd.install(1, {RepState::RM, 0});
    rd.install(2, {RepState::Readable, -1});
    rd.install(3, {RepState::Readable, -1});
    rd.install(4, {RepState::Readable, -1}); // evicts line 1 on-chip

    const auto l = rd.lookup(1);
    EXPECT_FALSE(l.onChipHit); // on-chip copy evicted
    ASSERT_TRUE(l.entry.has_value());
    EXPECT_EQ(l.entry->state, RepState::RM); // but backing survives
}

TEST(ReplicaDirectory, ReadableIsNotBacked)
{
    ReplicaDirectory rd(1, 2, false);
    rd.install(1, {RepState::Readable, -1});
    rd.install(2, {RepState::Readable, -1});
    rd.install(3, {RepState::Readable, -1}); // evicts 1 on-chip
    const auto l = rd.lookup(1);
    EXPECT_FALSE(l.onChipHit);
    EXPECT_FALSE(l.entry.has_value()); // allow permission is lost
    EXPECT_EQ(rd.backingEntries(), 0u);
}

TEST(ReplicaDirectory, RemoveErasesEverywhere)
{
    ReplicaDirectory rd(1, 8, false);
    rd.install(5, {RepState::RM, 0});
    rd.remove(5);
    const auto l = rd.lookup(5);
    EXPECT_FALSE(l.entry.has_value());
    EXPECT_EQ(rd.backingEntries(), 0u);
}

TEST(ReplicaDirectory, DrainKeepsDenyBacking)
{
    ReplicaDirectory rd(1, 8, false);
    rd.install(1, {RepState::RM, 0});
    rd.install(2, {RepState::Readable, -1});
    rd.drainPermissions();

    auto l1 = rd.lookup(1);
    EXPECT_FALSE(l1.onChipHit);
    ASSERT_TRUE(l1.entry.has_value()); // RM retained
    auto l2 = rd.lookup(2);
    EXPECT_FALSE(l2.entry.has_value()); // permission dropped
}

TEST(ReplicaDirectory, RegionPermissions)
{
    ReplicaDirectory rd(1, 8, false, 64);
    EXPECT_FALSE(rd.regionCovers(10));
    rd.installRegion(10);
    EXPECT_TRUE(rd.regionCovers(0));
    EXPECT_TRUE(rd.regionCovers(63));
    EXPECT_FALSE(rd.regionCovers(64));

    const auto l = rd.lookup(20);
    EXPECT_TRUE(l.regionReadable);
    EXPECT_TRUE(l.onChipHit);

    EXPECT_TRUE(rd.removeRegion(5));
    EXPECT_FALSE(rd.removeRegion(5));
    EXPECT_FALSE(rd.regionCovers(0));
}

TEST(ReplicaDirectory, BusySerialization)
{
    ReplicaDirectory rd(1, 8, false);
    EXPECT_EQ(rd.acquire(7, 100), 100u);
    rd.release(7, 500);
    EXPECT_EQ(rd.acquire(7, 200), 500u);
    EXPECT_EQ(rd.acquire(8, 200), 200u); // different line unaffected
}

TEST(ReplicaDirectory, OracularNeverEvicts)
{
    ReplicaDirectory rd(1, 2, true);
    for (Addr l = 0; l < 10000; ++l)
        rd.install(l, {RepState::Readable, -1});
    for (Addr l = 0; l < 10000; ++l)
        EXPECT_TRUE(rd.lookup(l).onChipHit);
}

TEST(ReplicaDirectory, StateNames)
{
    EXPECT_STREQ(repStateName(RepState::RM), "RM");
    EXPECT_STREQ(repStateName(RepState::Readable), "Readable");
    EXPECT_STREQ(repStateName(RepState::M), "M");
}

TEST(ReplicaDirectory, BackingSurvivesRetireReReplicateChurn)
{
    // Frame retirement removes a page's line entries and re-replication
    // re-installs the same keys; the backing FlatMap's backshift erase
    // must not orphan or corrupt neighbouring entries across that churn.
    constexpr unsigned kPages = 16;
    constexpr unsigned kLinesPerPage = 64;
    const auto key = [](unsigned page, unsigned line) {
        return Addr(page) * kLinesPerPage + line;
    };

    ReplicaDirectory rd(1, 8, false); // tiny on-chip: exercise backing
    for (unsigned round = 0; round < 3; ++round) {
        for (unsigned p = 0; p < kPages; ++p)
            for (unsigned l = 0; l < kLinesPerPage; ++l)
                rd.install(key(p, l), {RepState::RM, int(round % 2)});
        ASSERT_EQ(rd.backingEntries(), std::size_t(kPages) * kLinesPerPage);

        // Retire alternating pages (remove their lines one by one, in
        // the hash-bucket-hostile low-to-high key order).
        for (unsigned p = 0; p < kPages; p += 2)
            for (unsigned l = 0; l < kLinesPerPage; ++l)
                rd.remove(key(p, l));
        ASSERT_EQ(rd.backingEntries(),
                  std::size_t(kPages) / 2 * kLinesPerPage);

        // Every survivor is intact, every removed key is really gone.
        for (unsigned p = 0; p < kPages; ++p) {
            for (unsigned l = 0; l < kLinesPerPage; ++l) {
                const auto e = rd.peekBacking(key(p, l));
                if (p % 2 == 0) {
                    EXPECT_FALSE(e.has_value()) << "page " << p;
                } else {
                    ASSERT_TRUE(e.has_value()) << "page " << p;
                    EXPECT_EQ(e->state, RepState::RM);
                    EXPECT_EQ(e->owner, int(round % 2));
                }
            }
        }

        // Re-replicate: the same page keys come back with a new owner.
        for (unsigned p = 0; p < kPages; p += 2)
            for (unsigned l = 0; l < kLinesPerPage; ++l)
                rd.install(key(p, l), {RepState::RM, 1 - int(round % 2)});
        ASSERT_EQ(rd.backingEntries(), std::size_t(kPages) * kLinesPerPage);
        for (unsigned p = 0; p < kPages; p += 2) {
            const auto e = rd.peekBacking(key(p, 0));
            ASSERT_TRUE(e.has_value());
            EXPECT_EQ(e->owner, 1 - int(round % 2));
        }

        // Full drain for the next round starts from a clean directory.
        for (unsigned p = 0; p < kPages; ++p)
            for (unsigned l = 0; l < kLinesPerPage; ++l)
                rd.remove(key(p, l));
        ASSERT_EQ(rd.backingEntries(), 0u);
    }
}

} // namespace
} // namespace dve
