# Empty dependencies file for test_replica_structs.
# This may be replaced when dependencies are built.
