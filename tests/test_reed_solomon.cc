/**
 * @file
 * Tests for the Reed-Solomon codec: round trips, guaranteed correction and
 * detection envelopes, and randomized property sweeps over both fields and
 * several (n, k) shapes.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "ecc/reed_solomon.hh"

namespace dve
{
namespace
{

std::vector<std::uint32_t>
randomMessage(Rng &rng, const GaloisField &gf, unsigned k)
{
    std::vector<std::uint32_t> m(k);
    for (auto &v : m)
        v = static_cast<std::uint32_t>(rng.next(gf.size()));
    return m;
}

/** Corrupt @p count distinct positions with guaranteed-wrong symbols. */
void
injectErrors(Rng &rng, const GaloisField &gf,
             std::vector<std::uint32_t> &cw, unsigned count)
{
    std::set<unsigned> positions;
    while (positions.size() < count)
        positions.insert(static_cast<unsigned>(rng.next(cw.size())));
    for (unsigned p : positions) {
        const auto delta =
            1 + static_cast<std::uint32_t>(rng.next(gf.size() - 1));
        cw[p] = GaloisField::add(cw[p], delta);
    }
}

struct RsShape
{
    const GaloisField *gf;
    unsigned n;
    unsigned k;
    const char *name;
};

class RsParamTest : public ::testing::TestWithParam<RsShape>
{
};

TEST_P(RsParamTest, EncodeProducesValidSystematicCodeword)
{
    const auto &[gfp, n, k, name] = GetParam();
    const ReedSolomon rs(*gfp, n, k);
    Rng rng(21);
    for (int iter = 0; iter < 50; ++iter) {
        const auto msg = randomMessage(rng, *gfp, k);
        const auto cw = rs.encode(msg);
        ASSERT_EQ(cw.size(), n);
        EXPECT_TRUE(rs.isCodeword(cw));
        EXPECT_EQ(rs.extractData(cw), msg);
    }
}

TEST_P(RsParamTest, CleanDecode)
{
    const auto &[gfp, n, k, name] = GetParam();
    const ReedSolomon rs(*gfp, n, k);
    Rng rng(22);
    const auto cw = rs.encode(randomMessage(rng, *gfp, k));
    const auto r = rs.decode(cw, rs.t());
    EXPECT_EQ(r.status, EccStatus::Clean);
    EXPECT_EQ(r.codeword, cw);
}

TEST_P(RsParamTest, CorrectsUpToT)
{
    const auto &[gfp, n, k, name] = GetParam();
    const ReedSolomon rs(*gfp, n, k);
    if (rs.t() == 0)
        GTEST_SKIP() << "detect-only shape";
    Rng rng(23);
    for (unsigned errs = 1; errs <= rs.t(); ++errs) {
        for (int iter = 0; iter < 40; ++iter) {
            const auto cw = rs.encode(randomMessage(rng, *gfp, k));
            auto corrupted = cw;
            injectErrors(rng, *gfp, corrupted, errs);
            const auto r = rs.decode(corrupted, rs.t());
            ASSERT_EQ(r.status, EccStatus::Corrected)
                << errs << " errors, iter " << iter;
            EXPECT_EQ(r.codeword, cw);
            EXPECT_EQ(r.symbolsCorrected, errs);
        }
    }
}

TEST_P(RsParamTest, DetectsUpToParityWhenDetectOnly)
{
    const auto &[gfp, n, k, name] = GetParam();
    const ReedSolomon rs(*gfp, n, k);
    Rng rng(24);
    // Detection-only decode guarantees detection of up to n-k symbol
    // errors (the minimum distance is n-k+1, so <= n-k errors can never
    // land on another codeword).
    for (unsigned errs = 1; errs <= rs.parity(); ++errs) {
        for (int iter = 0; iter < 40; ++iter) {
            auto cw = rs.encode(randomMessage(rng, *gfp, k));
            injectErrors(rng, *gfp, cw, errs);
            const auto r = rs.decode(cw, 0);
            EXPECT_EQ(r.status, EccStatus::Detected)
                << errs << " errors, iter " << iter;
        }
    }
}

TEST_P(RsParamTest, BeyondCorrectionNeverSilentlyWrongWithinDistance)
{
    const auto &[gfp, n, k, name] = GetParam();
    const ReedSolomon rs(*gfp, n, k);
    if (rs.t() == 0 || rs.parity() < rs.t() + 1)
        GTEST_SKIP();
    Rng rng(25);
    // t < errors <= n-k-t : corrected-to-wrong-codeword is impossible
    // (sphere packing); decoder must say Detected.
    const unsigned lo = rs.t() + 1;
    const unsigned hi = rs.parity() - rs.t();
    for (unsigned errs = lo; errs <= hi; ++errs) {
        for (int iter = 0; iter < 40; ++iter) {
            auto cw = rs.encode(randomMessage(rng, *gfp, k));
            injectErrors(rng, *gfp, cw, errs);
            const auto r = rs.decode(cw, rs.t());
            EXPECT_EQ(r.status, EccStatus::Detected)
                << errs << " errors, iter " << iter;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RsParamTest,
    ::testing::Values(
        RsShape{&GaloisField::gf256(), 18, 16, "Dsd_18_16"},
        RsShape{&GaloisField::gf256(), 19, 16, "Chipkill_19_16"},
        RsShape{&GaloisField::gf256(), 255, 239, "Classic_255_239"},
        RsShape{&GaloisField::gf256(), 15, 11, "Small_15_11"},
        RsShape{&GaloisField::gf65536(), 19, 16, "Tsd_19_16"},
        RsShape{&GaloisField::gf65536(), 36, 32, "Wide16_36_32"}),
    [](const ::testing::TestParamInfo<RsShape> &info) {
        return info.param.name;
    });

TEST(ReedSolomon, ChipkillShapeProperties)
{
    // True SSC-DSD needs minimum distance 4: RS(19,16) has d = 4.
    const ReedSolomon rs(GaloisField::gf256(), 19, 16);
    EXPECT_EQ(rs.parity(), 3u);
    EXPECT_EQ(rs.t(), 1u); // SSC
    // The DSD detect-only shape has d = 3: detects 2, corrects none (as
    // used by Dvé, which recovers from the replica instead).
    const ReedSolomon dsd(GaloisField::gf256(), 18, 16);
    EXPECT_EQ(dsd.parity(), 2u);
}

TEST(ReedSolomon, MaxCorrectCapsBelowT)
{
    const ReedSolomon rs(GaloisField::gf256(), 255, 239); // t = 8
    Rng rng(26);
    auto cw = rs.encode(randomMessage(rng, GaloisField::gf256(), 239));
    injectErrors(rng, GaloisField::gf256(), cw, 3);
    // Budget of 2 cannot fix 3 errors: must report Detected, not guess.
    const auto r = rs.decode(cw, 2);
    EXPECT_EQ(r.status, EccStatus::Detected);
}

TEST(ReedSolomon, DecodeRejectsWrongLength)
{
    const ReedSolomon rs(GaloisField::gf256(), 18, 16);
    EXPECT_THROW(rs.decode(std::vector<std::uint32_t>(17), 1),
                 std::logic_error);
    EXPECT_THROW(rs.encode(std::vector<std::uint32_t>(15)),
                 std::logic_error);
}

TEST(ReedSolomon, InvalidShapesRejected)
{
    EXPECT_THROW(ReedSolomon(GaloisField::gf256(), 16, 16),
                 std::logic_error);
    EXPECT_THROW(ReedSolomon(GaloisField::gf256(), 300, 200),
                 std::logic_error);
}

TEST(ReedSolomon, ErrorInParityPositionCorrectable)
{
    const ReedSolomon rs(GaloisField::gf256(), 18, 16);
    Rng rng(27);
    const auto cw = rs.encode(randomMessage(rng, GaloisField::gf256(), 16));
    auto bad = cw;
    bad[0] = GaloisField::add(bad[0], 0x42); // parity symbol
    const auto r = rs.decode(bad, 1);
    EXPECT_EQ(r.status, EccStatus::Corrected);
    EXPECT_EQ(r.codeword, cw);
}

TEST(ReedSolomon, MassiveRandomSweepGf256)
{
    // A denser randomized sweep on the exact Chipkill shape the memory
    // controller uses: verify CE/DUE classification over 2000 trials.
    // RS(19,16) has d = 4, so 1 error -> always corrected and 2 errors ->
    // always detected (never miscorrected).
    const ReedSolomon rs(GaloisField::gf256(), 19, 16);
    Rng rng(28);
    for (int iter = 0; iter < 2000; ++iter) {
        const auto cw =
            rs.encode(randomMessage(rng, GaloisField::gf256(), 16));
        auto bad = cw;
        const unsigned errs = 1 + static_cast<unsigned>(rng.next(2));
        injectErrors(rng, GaloisField::gf256(), bad, errs);
        const auto r = rs.decode(bad, 1);
        if (errs == 1) {
            ASSERT_EQ(r.status, EccStatus::Corrected);
            ASSERT_EQ(r.codeword, cw);
        } else {
            ASSERT_EQ(r.status, EccStatus::Detected);
        }
    }
}

} // namespace
} // namespace dve
