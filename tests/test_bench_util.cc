/**
 * @file
 * Tests for the bench helpers' math and environment parsing: the
 * geomean input contract (non-positive entries are skipped with a
 * warning instead of poisoning the mean with NaN/-inf), geomeanTop
 * bounds, and strict DVE_BENCH_SCALE validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "bench/bench_util.hh"
#include "common/logging.hh"

namespace dve
{
namespace
{

TEST(Geomean, PositiveEntries)
{
    EXPECT_DOUBLE_EQ(bench::geomean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(bench::geomean({2.0, 8.0}), 4.0);
    EXPECT_NEAR(bench::geomean({1.0, 10.0, 100.0}), 10.0, 1e-12);
}

TEST(Geomean, EmptyInputIsZeroNotNan)
{
    EXPECT_DOUBLE_EQ(bench::geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(bench::geomeanTop({}, 10), 0.0);
}

TEST(Geomean, NonPositiveEntriesAreSkippedWithWarning)
{
    // std::log(0) = -inf and std::log(-1) = NaN used to flow straight
    // into the mean; now the offending entries are dropped.
    const auto warns_before = detail::warnCount();
    EXPECT_DOUBLE_EQ(bench::geomean({2.0, 0.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(bench::geomean({2.0, -3.0, 8.0}), 4.0);
    EXPECT_GT(detail::warnCount(), warns_before);

    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_DOUBLE_EQ(bench::geomean({2.0, nan, 8.0, inf}), 4.0);
}

TEST(Geomean, FullySkippedInputIsZero)
{
    EXPECT_DOUBLE_EQ(bench::geomean({0.0, -1.0}), 0.0);
    EXPECT_FALSE(std::isnan(bench::geomean({0.0})));
}

TEST(Geomean, TopNRespectsBounds)
{
    const std::vector<double> v = {2.0, 8.0, 1000.0};
    EXPECT_DOUBLE_EQ(bench::geomeanTop(v, 2), 4.0);
    // n past the end means "all of them", not UB.
    EXPECT_DOUBLE_EQ(bench::geomeanTop(v, 99), bench::geomean(v));
    EXPECT_DOUBLE_EQ(bench::geomeanTop(v, 0), 0.0);
}

class ScaleEnv : public ::testing::Test
{
  protected:
    void SetUp() override { ::unsetenv("DVE_BENCH_SCALE"); }
    void TearDown() override { ::unsetenv("DVE_BENCH_SCALE"); }
};

TEST_F(ScaleEnv, UnsetUsesTheDefault)
{
    EXPECT_DOUBLE_EQ(bench::scaleFromEnv(0.5), 0.5);
    ::setenv("DVE_BENCH_SCALE", "", 1);
    EXPECT_DOUBLE_EQ(bench::scaleFromEnv(0.5), 0.5);
}

TEST_F(ScaleEnv, AcceptsPositiveNumbers)
{
    ::setenv("DVE_BENCH_SCALE", "2", 1);
    EXPECT_DOUBLE_EQ(bench::scaleFromEnv(0.5), 2.0);
    ::setenv("DVE_BENCH_SCALE", "0.25", 1);
    EXPECT_DOUBLE_EQ(bench::scaleFromEnv(0.5), 0.25);
    ::setenv("DVE_BENCH_SCALE", "1e-2", 1);
    EXPECT_DOUBLE_EQ(bench::scaleFromEnv(0.5), 0.01);
}

TEST_F(ScaleEnv, RejectsTrailingGarbageAndNonPositives)
{
    // std::atof silently read "2x" as 2 and "junk"/"-1" as "use 0 or
    // the default with no diagnostic"; strtod full-string validation
    // warns and falls back instead.
    for (const char *bad : {"2x", "junk", "-1", "0", "nan", "inf"}) {
        ::setenv("DVE_BENCH_SCALE", bad, 1);
        const auto warns_before = detail::warnCount();
        EXPECT_DOUBLE_EQ(bench::scaleFromEnv(0.5), 0.5)
            << "value '" << bad << "'";
        EXPECT_GT(detail::warnCount(), warns_before)
            << "no warning for '" << bad << "'";
    }
}

} // namespace
} // namespace dve
