file(REMOVE_RECURSE
  "CMakeFiles/dve_coherence.dir/engine.cc.o"
  "CMakeFiles/dve_coherence.dir/engine.cc.o.d"
  "libdve_coherence.a"
  "libdve_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
