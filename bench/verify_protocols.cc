/**
 * @file
 * Protocol verification report (Sec. V-C4): exhaustively model-check the
 * baseline MSI protocol and both replica-directory families across
 * several configurations, Murphi-style, and print the verdicts.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "protocol_check/checker.hh"

using namespace dve;
using namespace dve::pcheck;

int
main()
{
    bench::printHeader("Protocol verification (explicit-state, all "
                       "interleavings, bounded ops per cache)");

    struct Case
    {
        CheckProtocol proto;
        unsigned home;
        unsigned rep;
        unsigned budget;
    };
    const std::vector<Case> cases = {
        {CheckProtocol::BaselineMsi, 2, 0, 3},
        {CheckProtocol::BaselineMsi, 3, 0, 2},
        {CheckProtocol::Deny, 1, 1, 3},
        {CheckProtocol::Deny, 1, 1, 4},
        {CheckProtocol::Deny, 2, 1, 2},
        {CheckProtocol::Allow, 1, 1, 3},
        {CheckProtocol::Allow, 1, 1, 4},
        {CheckProtocol::Allow, 2, 1, 2},
    };

    TextTable t({"protocol", "caches(home+rep)", "ops/cache", "states",
                 "transitions", "verdict"});
    bool all_ok = true;
    for (const auto &c : cases) {
        ModelConfig cfg;
        cfg.protocol = c.proto;
        cfg.homeCaches = c.home;
        cfg.replicaCaches = c.rep;
        cfg.opBudget = c.budget;
        const auto r = explore(cfg);
        all_ok = all_ok && r.ok;
        t.addRow({checkProtocolName(c.proto),
                  std::to_string(c.home) + "+" + std::to_string(c.rep),
                  std::to_string(c.budget),
                  std::to_string(r.statesExplored),
                  std::to_string(r.transitions),
                  r.ok ? "PASS" : ("FAIL: " + r.violation)});
        if (!r.ok) {
            // A violation in a shipping protocol is a bug in this repo:
            // dump the reconstructed action trace so the failure is
            // diagnosable straight from the CI log, then exit nonzero.
            std::fprintf(stderr,
                         "VIOLATION %s %u+%u budget %u: %s\n"
                         "  counterexample:",
                         checkProtocolName(c.proto), c.home, c.rep,
                         c.budget, r.violation.c_str());
            for (const auto &a : r.trace)
                std::fprintf(stderr, " [%s]", a.c_str());
            std::fprintf(stderr, "\n");
        }
    }
    t.print(std::cout);

    // Demonstrate detection power on two deliberately broken protocols.
    bench::printHeader("Mutation checks (the checker must FAIL these)");
    ModelConfig bug1;
    bug1.protocol = CheckProtocol::Deny;
    bug1.bugSkipRmPush = true;
    const auto r1 = explore(bug1);
    std::printf("deny without RM push     : %s\n", r1.summary().c_str());
    if (!r1.ok) {
        std::printf("  counterexample:");
        for (const auto &a : r1.trace)
            std::printf(" [%s]", a.c_str());
        std::printf("\n");
    }
    ModelConfig bug2;
    bug2.protocol = CheckProtocol::Deny;
    bug2.bugUnackedRdOwn = true;
    const auto r2 = explore(bug2);
    std::printf("unacked ownership grant  : %s\n", r2.summary().c_str());
    if (!r2.ok) {
        std::printf("  counterexample:");
        for (const auto &a : r2.trace)
            std::printf(" [%s]", a.c_str());
        std::printf("\n");
    }

    return all_ok && !r1.ok && !r2.ok ? 0 : 1;
}
