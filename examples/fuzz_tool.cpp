/**
 * @file
 * Chaos-fuzz workbench: generate, run, shrink and replay scenarios.
 *
 *   $ fuzz_tool gen [--seed N] [--ops N] [--protocol P] [--pages N]
 *                   [--pool] [--metadata] [--bug NAME] [--out FILE]
 *   $ fuzz_tool run FILE [--checks 0|1] [--trace FILE] [--log]
 *   $ fuzz_tool shrink FILE --out FILE
 *   $ fuzz_tool replay FILE
 *
 * `run` exits 1 when a monitor fired (0 clean, 2 on usage/parse errors)
 * and prints the structured violation report with the tracer tail.
 *
 * `shrink` delta-debugs a failing scenario to a locally-minimal repro,
 * stamps the expected monitor into its `expect` header, writes it to
 * --out, and prints the replay command line.
 *
 * `replay` is the corpus contract used by ctest: exit 0 iff the run
 * matches the scenario's `expect` header -- the named monitor fired
 * (for `expect violation M`), or no monitor fired (for `expect clean` /
 * no header). Minimized repros in tests/corpus/ replay this way.
 *
 * Environment knobs (flags win over the environment):
 *   DVE_FUZZ_SEED    default --seed for gen
 *   DVE_FUZZ_OPS     default --ops for gen
 *   DVE_FUZZ_CHECKS  default --checks for run (0 disables monitors)
 *   DVE_FUZZ_TRACE   tracer ring capacity for run/shrink/replay
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/generator.hh"
#include "fuzz/minimizer.hh"
#include "fuzz/runner.hh"
#include "fuzz/scenario.hh"

using namespace dve;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: fuzz_tool gen [--seed N] [--ops N] [--protocol P]\n"
        "                     [--pages N] [--pool] [--metadata]\n"
        "                     [--bug NAME] [--out FILE]\n"
        "       fuzz_tool run FILE [--checks 0|1] [--trace FILE] "
        "[--log]\n"
        "       fuzz_tool shrink FILE --out FILE\n"
        "       fuzz_tool replay FILE\n");
    return 2;
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const std::uint64_t x = std::strtoull(v, &end, 0);
    if (!end || *end != '\0') {
        std::fprintf(stderr, "fuzz_tool: ignoring malformed %s='%s'\n",
                     name, v);
        return fallback;
    }
    return x;
}

bool
loadScenario(const char *path, FuzzScenario &sc)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "fuzz_tool: cannot open '%s'\n", path);
        return false;
    }
    std::string err;
    const auto parsed = FuzzScenario::parse(in, &err);
    if (!parsed) {
        std::fprintf(stderr, "fuzz_tool: %s: %s\n", path, err.c_str());
        return false;
    }
    sc = *parsed;
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "fuzz_tool: cannot write '%s'\n",
                     path.c_str());
        return false;
    }
    out << content;
    return true;
}

void
printSummary(const FuzzRunResult &r)
{
    std::printf("steps=%llu reads=%llu writes=%llu clean=%llu "
                "corrected=%llu due=%llu sdc=%llu\n",
                static_cast<unsigned long long>(r.stepsRun),
                static_cast<unsigned long long>(r.reads),
                static_cast<unsigned long long>(r.writes),
                static_cast<unsigned long long>(r.clean),
                static_cast<unsigned long long>(r.corrected),
                static_cast<unsigned long long>(r.due),
                static_cast<unsigned long long>(r.sdc));
    std::printf("faults injected=%llu healed=%llu end-tick=%llu "
                "digest=%016llx\n",
                static_cast<unsigned long long>(r.faultsInjected),
                static_cast<unsigned long long>(r.faultsHealed),
                static_cast<unsigned long long>(r.endTick),
                static_cast<unsigned long long>(r.digest));
}

int
cmdGen(int argc, char **argv)
{
    GeneratorConfig gc;
    gc.seed = envU64("DVE_FUZZ_SEED", gc.seed);
    gc.ops = envU64("DVE_FUZZ_OPS", gc.ops);
    std::string out;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        const auto val = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--seed") {
            const char *v = val();
            if (!v)
                return usage();
            gc.seed = std::strtoull(v, nullptr, 0);
        } else if (a == "--ops") {
            const char *v = val();
            if (!v)
                return usage();
            gc.ops = std::strtoull(v, nullptr, 0);
        } else if (a == "--pages") {
            const char *v = val();
            if (!v)
                return usage();
            gc.footprintPages =
                static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        } else if (a == "--protocol") {
            const char *v = val();
            const auto p = v ? parseDveProtocol(v) : std::nullopt;
            if (!p) {
                std::fprintf(stderr, "fuzz_tool: bad --protocol\n");
                return 2;
            }
            gc.protocol = *p;
        } else if (a == "--bug") {
            const char *v = val();
            if (v && std::strcmp(v, "rm-marker-refresh") == 0) {
                gc.bugRmMarkerRefresh = true;
            } else if (v
                       && std::strcmp(v, "skip-deny-invalidate") == 0) {
                gc.bugSkipDenyInvalidate = true;
            } else if (v
                       && std::strcmp(v, "skip-demotion-on-partition")
                              == 0) {
                gc.bugSkipDemotionOnPartition = true;
            } else if (v
                       && std::strcmp(v, "skip-rebuild-on-scrub") == 0) {
                gc.bugSkipRebuildOnScrub = true;
                gc.metadataMode = true; // the bug needs the domain armed
            } else {
                std::fprintf(stderr,
                             "fuzz_tool: --bug wants rm-marker-refresh, "
                             "skip-deny-invalidate, "
                             "skip-demotion-on-partition or "
                             "skip-rebuild-on-scrub\n");
                return 2;
            }
        } else if (a == "--pool") {
            gc.poolMode = true;
        } else if (a == "--metadata") {
            gc.metadataMode = true;
        } else if (a == "--out") {
            const char *v = val();
            if (!v)
                return usage();
            out = v;
        } else {
            return usage();
        }
    }
    const FuzzScenario sc = generateScenario(gc);
    const std::string text = sc.serialize();
    if (out.empty()) {
        std::fputs(text.c_str(), stdout);
        return 0;
    }
    return writeFile(out, text) ? 0 : 2;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    FuzzScenario sc;
    if (!loadScenario(argv[2], sc))
        return 2;
    FuzzRunOptions opt;
    opt.invariantChecks = envU64("DVE_FUZZ_CHECKS", 1) != 0;
    opt.traceCapacity =
        static_cast<std::size_t>(envU64("DVE_FUZZ_TRACE", 4096));
    std::string tracePath;
    bool dumpLog = false;
    for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--checks" && i + 1 < argc) {
            opt.invariantChecks = std::strtoul(argv[++i], nullptr, 0) != 0;
        } else if (a == "--trace" && i + 1 < argc) {
            tracePath = argv[++i];
        } else if (a == "--log") {
            dumpLog = true;
        } else {
            return usage();
        }
    }
    const auto r = runScenario(sc, opt);
    if (dumpLog)
        std::fputs(r.log.c_str(), stdout);
    printSummary(r);
    if (!tracePath.empty() && !r.traceJson.empty()
        && !writeFile(tracePath, r.traceJson)) {
        return 2;
    }
    if (r.violated) {
        std::fputs(formatViolation(r.violations.front()).c_str(),
                   stdout);
        return 1;
    }
    std::printf("no invariant violations\n");
    return 0;
}

int
cmdShrink(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    FuzzScenario sc;
    if (!loadScenario(argv[2], sc))
        return 2;
    std::string out;
    for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out" && i + 1 < argc)
            out = argv[++i];
        else
            return usage();
    }
    if (out.empty()) {
        std::fprintf(stderr, "fuzz_tool: shrink needs --out FILE\n");
        return 2;
    }
    const auto res = shrinkScenario(sc);
    if (!res.reproduced) {
        std::fprintf(stderr,
                     "fuzz_tool: scenario does not fail; nothing to "
                     "shrink\n");
        return 1;
    }
    if (!writeFile(out, res.minimized.serialize()))
        return 2;
    std::printf("shrunk %zu -> %zu steps in %u probes "
                "(monitor %s)\n",
                res.initialSteps, res.finalSteps, res.probes,
                invariantMonitorName(res.monitor));
    std::printf("replay: fuzz_tool replay %s\n", out.c_str());
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    FuzzScenario sc;
    if (!loadScenario(argv[2], sc))
        return 2;
    FuzzRunOptions opt;
    opt.traceCapacity =
        static_cast<std::size_t>(envU64("DVE_FUZZ_TRACE", 4096));
    const auto r = runScenario(sc, opt);
    printSummary(r);
    if (sc.expect.monitor) {
        if (r.violated
            && r.violations.front().monitor == *sc.expect.monitor) {
            std::printf("replay ok: expected monitor %s fired\n",
                        invariantMonitorName(*sc.expect.monitor));
            return 0;
        }
        if (r.violated) {
            std::fputs(formatViolation(r.violations.front()).c_str(),
                       stdout);
            std::fprintf(stderr,
                         "replay FAILED: expected monitor %s, got %s\n",
                         invariantMonitorName(*sc.expect.monitor),
                         invariantMonitorName(
                             r.violations.front().monitor));
        } else {
            std::fprintf(stderr,
                         "replay FAILED: expected monitor %s, run was "
                         "clean\n",
                         invariantMonitorName(*sc.expect.monitor));
        }
        return 1;
    }
    if (r.violated) {
        std::fputs(formatViolation(r.violations.front()).c_str(),
                   stdout);
        std::fprintf(stderr,
                     "replay FAILED: expected clean run, monitor %s "
                     "fired\n",
                     invariantMonitorName(r.violations.front().monitor));
        return 1;
    }
    std::printf("replay ok: clean run as expected\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "gen") == 0)
        return cmdGen(argc, argv);
    if (std::strcmp(argv[1], "run") == 0)
        return cmdRun(argc, argv);
    if (std::strcmp(argv[1], "shrink") == 0)
        return cmdShrink(argc, argv);
    if (std::strcmp(argv[1], "replay") == 0)
        return cmdReplay(argc, argv);
    return usage();
}
