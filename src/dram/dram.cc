#include "dram/dram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dve
{

DramModule::DramModule(std::string name, const DramConfig &cfg)
    : name_(std::move(name)), cfg_(cfg), map_(cfg), stats_(name_)
{
    const std::size_t nbanks = std::size_t(cfg_.channels)
                               * cfg_.ranksPerChannel * cfg_.banksPerRank;
    banks_.assign(nbanks, BankState{});
    busReadyAt_.assign(cfg_.channels, 0);
    nextRefresh_.assign(
        std::size_t(cfg_.channels) * cfg_.ranksPerChannel, cfg_.tREFI);

    stats_.add("reads", reads_);
    stats_.add("writes", writes_);
    stats_.add("activates", activates_);
    stats_.add("precharges", precharges_);
    stats_.add("refreshes", refreshes_);
    stats_.add("refresh_stall_ticks", refreshStallTicks_);
    stats_.add("row_hits", rowHits_);
    stats_.add("row_misses", rowMisses_);
    stats_.add("row_conflicts", rowConflicts_);
}

Tick
DramModule::applyRefresh(const DramCoord &c, Tick start)
{
    Tick &next =
        nextRefresh_[std::size_t(c.channel) * cfg_.ranksPerChannel
                     + c.rank];
    if (start < next)
        return start;

    // One or more refreshes elapsed before this access; only the last
    // blackout window can still contain it.
    const Tick periods = (start - next) / cfg_.tREFI + 1;
    const Tick last = next + (periods - 1) * cfg_.tREFI;
    refreshes_ += periods;
    next += periods * cfg_.tREFI;

    // Refresh precharges the whole rank.
    for (unsigned bk = 0; bk < cfg_.banksPerRank; ++bk) {
        DramCoord cc = c;
        cc.bank = bk;
        bank(cc).openRow = -1;
    }

    if (start < last + cfg_.tRFC) {
        refreshStallTicks_ += (last + cfg_.tRFC) - start;
        start = last + cfg_.tRFC;
    }
    return start;
}

DramAccessResult
DramModule::access(Addr a, bool is_write, Tick now)
{
    DramAccessResult res;
    res.coord = map_.decode(a);
    BankState &b = bank(res.coord);

    Tick start = std::max(now, b.readyAt);
    if (cfg_.refreshEnabled)
        start = applyRefresh(res.coord, start);
    Tick cas_issue;

    if (b.openRow == static_cast<std::int64_t>(res.coord.row)) {
        // Row hit: CAS can issue as soon as the bank is free.
        res.rowHit = true;
        ++rowHits_;
        cas_issue = start;
    } else if (b.openRow < 0) {
        // Bank closed: activate then CAS.
        ++rowMisses_;
        ++activates_;
        b.activatedAt = start;
        cas_issue = start + cfg_.tRCD;
        b.openRow = static_cast<std::int64_t>(res.coord.row);
    } else {
        // Conflict: precharge (no earlier than tRAS after activate),
        // activate the new row, then CAS.
        ++rowConflicts_;
        ++precharges_;
        ++activates_;
        const Tick pre_start =
            std::max(start, b.activatedAt + cfg_.tRAS);
        const Tick act_start = pre_start + cfg_.tRP;
        b.activatedAt = act_start;
        cas_issue = act_start + cfg_.tRCD;
        b.openRow = static_cast<std::int64_t>(res.coord.row);
    }

    // Data burst must also win the channel bus.
    Tick &bus = busReadyAt_[res.coord.channel];
    const Tick burst_start = std::max(cas_issue + cfg_.tCL, bus);
    bus = burst_start + cfg_.tBURST;
    res.readyAt = burst_start + cfg_.tBURST;

    // Bank is command-busy until the CAS completes.
    b.readyAt = res.readyAt;

    if (is_write)
        ++writes_;
    else
        ++reads_;
    return res;
}

double
DramModule::rowHitRate() const
{
    const std::uint64_t total =
        rowHits_.value() + rowMisses_.value() + rowConflicts_.value();
    return total == 0 ? 0.0
                      : static_cast<double>(rowHits_.value()) / total;
}

void
DramModule::resetStats()
{
    reads_.reset();
    writes_.reset();
    activates_.reset();
    precharges_.reset();
    refreshes_.reset();
    refreshStallTicks_.reset();
    rowHits_.reset();
    rowMisses_.reset();
    rowConflicts_.reset();
}

} // namespace dve
