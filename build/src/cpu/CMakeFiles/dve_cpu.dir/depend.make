# Empty dependencies file for dve_cpu.
# This may be replaced when dependencies are built.
