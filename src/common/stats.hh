/**
 * @file
 * Lightweight named-statistics support.
 *
 * Components own Counter/ScalarStat members and register them with a
 * StatGroup so that harnesses can dump everything uniformly. There is no
 * global registry: each System owns its groups, keeping runs independent.
 */

#ifndef DVE_COMMON_STATS_HH
#define DVE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dve
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }
    operator std::uint64_t() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** An accumulating floating-point statistic (e.g. energy in pJ). */
class ScalarStat
{
  public:
    ScalarStat() = default;

    ScalarStat &operator+=(double v) { value_ += v; return *this; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }

    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * A named, ordered collection of stat references for dumping.
 *
 * Registration stores pointers; the referenced stats must outlive the group
 * (both are typically members of the same component).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void add(const std::string &stat_name, const Counter &c);
    void add(const std::string &stat_name, const ScalarStat &s);

    /** Fetch a registered value by name; panics if absent. */
    double get(const std::string &stat_name) const;

    /** True if @p stat_name was registered. */
    bool has(const std::string &stat_name) const;

    /** Write "group.stat value" lines. */
    void dump(std::ostream &os) const;

    /** Flat name -> value snapshot. */
    std::map<std::string, double> snapshot() const;

    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        std::string name;
        const Counter *counter = nullptr;
        const ScalarStat *scalar = nullptr;
    };

    const Entry *find(const std::string &stat_name) const;

    std::string name_;
    std::vector<Entry> entries_;
};

} // namespace dve

#endif // DVE_COMMON_STATS_HH
