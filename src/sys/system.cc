#include "sys/system.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace dve
{

namespace
{

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void
digestJson(std::ostringstream &os, const char *key, const LatencyDigest &d)
{
    os << "\"" << key << "\": {\"count\": " << d.count << ", \"mean\": "
       << fmtDouble(d.mean) << ", \"p50\": " << d.p50 << ", \"p90\": "
       << d.p90 << ", \"p95\": " << d.p95 << ", \"p99\": " << d.p99
       << ", \"max\": " << d.max << "}";
}

} // namespace

std::string
RunResult::toJson() const
{
    std::ostringstream os;
    os << "{\"workload\": \"" << workload << "\", \"scheme\": \"" << scheme
       << "\", \"roi_time_ticks\": " << roiTime << ", \"mem_ops\": "
       << memOps << ", \"instructions\": " << instructions
       << ", \"llc_misses\": " << llcMisses << ", \"inter_socket_bytes\": "
       << interSocketBytes << ", \"mpki\": " << fmtDouble(mpki)
       << ", \"memory_energy_nj\": " << fmtDouble(memoryEnergyNj)
       << ", \"class_mix\": {";
    for (unsigned c = 0; c < numReqClasses; ++c) {
        if (c)
            os << ", ";
        os << "\"" << reqClassName(static_cast<ReqClass>(c))
           << "\": " << fmtDouble(classMix[c]);
    }
    os << "}, \"latency\": {";
    digestJson(os, "request", reqLatency);
    os << ", ";
    digestJson(os, "noc_hop", hopLatency);
    os << ", ";
    digestJson(os, "mem_read", memReadLatency);
    os << ", ";
    digestJson(os, "retry_wait", retryWait);
    os << ", ";
    digestJson(os, "repair_sojourn", repairSojourn);
    os << "}, \"extra\": {";
    bool first = true;
    for (const auto &[k, v] : extra) { // std::map: sorted, stable order
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << k << "\": " << fmtDouble(v);
    }
    os << "}}";
    return os.str();
}

const char *
schemeKindName(SchemeKind k)
{
    switch (k) {
      case SchemeKind::BaselineNuma: return "numa";
      case SchemeKind::IntelMirror: return "intel-mirror";
      case SchemeKind::IntelMirrorPlus: return "intel-mirror++";
      case SchemeKind::DveAllow: return "dve-allow";
      case SchemeKind::DveDeny: return "dve-deny";
      case SchemeKind::DveDynamic: return "dve-dynamic";
    }
    return "?";
}

EngineConfig
System::engineConfigFor(const SystemConfig &cfg)
{
    EngineConfig e = cfg.engine;
    switch (cfg.scheme) {
      case SchemeKind::BaselineNuma:
        e.dram.channels = 1;
        e.mirror = MirrorMode::None;
        break;
      case SchemeKind::IntelMirror:
        // Two mirrored single-channel copies inside each controller.
        e.dram.channels = 1;
        e.mirror = MirrorMode::Primary;
        break;
      case SchemeKind::IntelMirrorPlus:
        e.dram.channels = 1;
        e.mirror = MirrorMode::LoadBalance;
        break;
      case SchemeKind::DveAllow:
      case SchemeKind::DveDeny:
      case SchemeKind::DveDynamic:
        // Table II "replicated memory": a second channel per socket
        // houses the replica capacity.
        e.dram.channels = 2;
        e.mirror = MirrorMode::None;
        break;
    }
    return e;
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg), energyModel_(cfg.energy)
{
    const EngineConfig ecfg = engineConfigFor(cfg_);
    switch (cfg_.scheme) {
      case SchemeKind::DveAllow:
      case SchemeKind::DveDeny:
      case SchemeKind::DveDynamic: {
        DveConfig d = cfg_.dve;
        d.protocol = cfg_.scheme == SchemeKind::DveAllow
                         ? DveProtocol::Allow
                     : cfg_.scheme == SchemeKind::DveDeny
                         ? DveProtocol::Deny
                         : DveProtocol::Dynamic;
        auto eng = std::make_unique<DveEngine>(ecfg, d);
        dveEngine_ = eng.get();
        engine_ = std::move(eng);
        break;
      }
      default:
        engine_ = std::make_unique<CoherenceEngine>(ecfg);
        break;
    }
}

RunResult
System::run(const WorkloadProfile &profile, double scale)
{
    const auto traces =
        generateTraces(profile, cfg_.threads, scale);

    ReplayEngine replay(*engine_, cfg_.warmupFraction);

    // ROI snapshots (taken when warmup completes).
    std::map<std::string, double> engine_snap;
    std::map<std::string, double> dve_snap;
    std::uint64_t bytes_snap = 0;
    std::vector<DramSnapshot> dram_snap;

    auto snapshotDram = [&] {
        std::vector<DramSnapshot> out;
        for (unsigned s = 0; s < engine_->config().sockets; ++s) {
            auto &mc = engine_->memory(s);
            for (unsigned c = 0; c < mc.copies(); ++c) {
                const auto &m = mc.dram(c);
                out.push_back({m.activates(), m.reads(), m.writes()});
            }
        }
        return out;
    };

    std::uint64_t dropped_snap = 0;
    std::uint64_t failed_snap = 0;
    std::uint64_t delayed_snap = 0;

    // Latency-histogram snapshots: percentiles do not subtract, so the
    // ROI window is obtained by diffing whole histograms (bucket-wise).
    Histogram req_snap, hop_snap, memread_snap, retry_snap, repair_snap;

    auto mergedMemRead = [&] {
        Histogram h;
        for (unsigned s = 0; s < engine_->config().sockets; ++s)
            h.merge(engine_->memory(s).readLatency());
        return h;
    };

    replay.setRoiCallback([&](Tick) {
        engine_snap = engine_->stats().snapshot();
        if (dveEngine_)
            dve_snap = dveEngine_->dveStats().snapshot();
        bytes_snap = engine_->interconnect().interSocketBytes();
        dropped_snap = engine_->interconnect().droppedMessages();
        failed_snap = engine_->interconnect().failedSends();
        delayed_snap = engine_->interconnect().delayedMessages();
        dram_snap = snapshotDram();
        req_snap = engine_->requestLatency();
        hop_snap = engine_->interconnect().hopLatency();
        memread_snap = mergedMemRead();
        if (dveEngine_) {
            retry_snap = dveEngine_->retryWait();
            repair_snap = dveEngine_->repairSojourn();
        }
    });

    const ReplayResult rr = replay.run(traces);

    RunResult res;
    res.workload = profile.name;
    res.scheme = schemeKindName(cfg_.scheme);
    res.roiTime = rr.roiTime();
    res.memOps = rr.memOps;
    res.instructions = rr.instructionsApprox;

    const auto final_stats = engine_->stats().snapshot();
    auto delta = [&](const char *key) {
        const auto it = engine_snap.find(key);
        const double before = it == engine_snap.end() ? 0.0 : it->second;
        return final_stats.at(key) - before;
    };

    res.llcMisses = static_cast<std::uint64_t>(delta("llc_misses"));
    res.interSocketBytes =
        engine_->interconnect().interSocketBytes() - bytes_snap;
    res.mpki = res.instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(res.llcMisses)
                         / static_cast<double>(res.instructions);

    const double class_total = delta("class_private_read")
                               + delta("class_read_only")
                               + delta("class_read_write")
                               + delta("class_private_read_write");
    if (class_total > 0) {
        res.classMix[0] = delta("class_private_read") / class_total;
        res.classMix[1] = delta("class_read_only") / class_total;
        res.classMix[2] = delta("class_read_write") / class_total;
        res.classMix[3] =
            delta("class_private_read_write") / class_total;
    }

    // Energy over the ROI: per-module dynamic deltas + background.
    const auto dram_final = snapshotDram();
    double energy_nj = 0.0;
    std::size_t idx = 0;
    for (unsigned s = 0; s < engine_->config().sockets; ++s) {
        auto &mc = engine_->memory(s);
        for (unsigned c = 0; c < mc.copies(); ++c, ++idx) {
            const DramSnapshot before =
                idx < dram_snap.size() ? dram_snap[idx] : DramSnapshot{};
            const DramSnapshot after = dram_final[idx];
            const auto &p = energyModel_.params();
            energy_nj +=
                p.actPrechargeNj
                    * static_cast<double>(after.activates
                                          - before.activates)
                + p.readBurstNj
                      * static_cast<double>(after.reads - before.reads)
                + p.writeBurstNj
                      * static_cast<double>(after.writes - before.writes);
            const unsigned ranks = mc.dram(c).config().channels
                                   * mc.dram(c).config().ranksPerChannel;
            energy_nj += (p.backgroundMwPerRank + p.refreshMwPerRank)
                         * ranks
                         * DramEnergyModel::ticksToSeconds(res.roiTime)
                         * 1e6;
        }
    }
    res.memoryEnergyNj = energy_nj;

    if (dveEngine_) {
        const auto dve_final = dveEngine_->dveStats().snapshot();
        for (const auto &[k, v] : dve_final) {
            const auto it = dve_snap.find(k);
            res.extra[k] = v - (it == dve_snap.end() ? 0.0 : it->second);
        }
    }
    res.extra["machine_checks"] = delta("machine_checks");
    res.extra["system_corrected_errors"] =
        delta("system_corrected_errors");

    // Fabric availability over the ROI (nonzero only when link/socket
    // faults are injected; Dvé schemes additionally export the
    // escalation counters through the dveStats() loop above).
    const auto &ic = engine_->interconnect();
    res.extra["fabric_dropped_messages"] =
        static_cast<double>(ic.droppedMessages() - dropped_snap);
    res.extra["fabric_failed_sends"] =
        static_cast<double>(ic.failedSends() - failed_snap);
    res.extra["fabric_delayed_messages"] =
        static_cast<double>(ic.delayedMessages() - delayed_snap);

    // ROI latency distributions.
    res.reqLatencyHist = engine_->requestLatency().diff(req_snap);
    res.reqLatency = digestOf(res.reqLatencyHist);
    res.hopLatency = digestOf(ic.hopLatency().diff(hop_snap));
    res.memReadLatency = digestOf(mergedMemRead().diff(memread_snap));
    if (dveEngine_) {
        res.retryWait = digestOf(dveEngine_->retryWait().diff(retry_snap));
        res.repairSojourn =
            digestOf(dveEngine_->repairSojourn().diff(repair_snap));
    }

    if (engine_->tracer().enabled()) {
        std::ostringstream trace;
        engine_->tracer().exportChromeTrace(trace);
        res.traceJson = trace.str();
    }

    return res;
}

} // namespace dve
