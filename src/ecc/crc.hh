/**
 * @file
 * Table-driven CRC-16 (CCITT) and CRC-32 (IEEE), the bus/link error
 * detection codes the DDR4 spec layers under Dvé (Sec. III of the paper).
 */

#ifndef DVE_ECC_CRC_HH
#define DVE_ECC_CRC_HH

#include <cstddef>
#include <cstdint>

namespace dve
{

/** CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection. */
std::uint16_t crc16(const std::uint8_t *data, std::size_t len);

/** CRC-32/IEEE: poly 0xEDB88320 (reflected), init/xorout 0xFFFFFFFF. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t len);

} // namespace dve

#endif // DVE_ECC_CRC_HH
