/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated; this is a library bug.
 * fatal()  - the simulation cannot continue due to a user/config error.
 * warn()   - something is questionable but the run continues.
 * inform() - plain status output.
 */

#ifndef DVE_COMMON_LOGGING_HH
#define DVE_COMMON_LOGGING_HH

#include <cstdint>
#include <sstream>
#include <string>

namespace dve
{

namespace detail
{

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Number of warnings emitted so far (exposed for tests). */
std::uint64_t warnCount();

} // namespace detail

} // namespace dve

/** Abort with a message: internal invariant violated (library bug). */
#define dve_panic(...) \
    ::dve::detail::panicImpl(__FILE__, __LINE__, \
                             ::dve::detail::concat(__VA_ARGS__))

/** Exit with a message: user/configuration error. */
#define dve_fatal(...) \
    ::dve::detail::fatalImpl(__FILE__, __LINE__, \
                             ::dve::detail::concat(__VA_ARGS__))

/** Emit a warning and continue. */
#define dve_warn(...) \
    ::dve::detail::warnImpl(::dve::detail::concat(__VA_ARGS__))

/** Emit an informational message. */
#define dve_inform(...) \
    ::dve::detail::informImpl(::dve::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; panics (never compiled out). */
#define dve_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::dve::detail::panicImpl(__FILE__, __LINE__, \
                ::dve::detail::concat("assertion failed: " #cond " ", \
                                      ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // DVE_COMMON_LOGGING_HH
