# Empty dependencies file for test_protocol_check.
# This may be replaced when dependencies are built.
