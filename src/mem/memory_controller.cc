#include "mem/memory_controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dve
{

namespace
{

/** splitmix64 hash, used to derive filler words. */
std::uint64_t
mix(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

void
storeWord(LineBytes &b, unsigned w, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        b[w * 8 + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
loadWord(const LineBytes &b, unsigned w)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= std::uint64_t(b[w * 8 + i]) << (8 * i);
    return v;
}

} // namespace

LineBytes
materializeLine(Addr line_num, std::uint64_t value)
{
    LineBytes bytes{};
    std::uint64_t fold = value;
    for (unsigned w = 1; w < 8; ++w) {
        const std::uint64_t filler = mix(line_num * 8 + w);
        storeWord(bytes, w, filler);
        fold ^= filler;
    }
    storeWord(bytes, 0, fold); // XOR of all words == value
    return bytes;
}

std::uint64_t
dematerializeLine(Addr, const LineBytes &payload)
{
    std::uint64_t fold = 0;
    for (unsigned w = 0; w < 8; ++w)
        fold ^= loadWord(payload, w);
    return fold;
}

MemoryController::MemoryController(std::string name, unsigned socket,
                                   const DramConfig &cfg, Scheme scheme,
                                   MirrorMode mode, FaultRegistry *faults,
                                   std::uint64_t seed,
                                   unsigned fault_channel_base)
    : name_(std::move(name)), socket_(socket), scheme_(scheme), mode_(mode),
      codec_(scheme), faults_(faults), rng_(seed),
      faultChannelBase_(fault_channel_base), stats_(name_)
{
    const unsigned ncopies = mode_ == MirrorMode::None   ? 1
                             : mode_ == MirrorMode::Raim ? 5
                                                         : 2;
    for (unsigned c = 0; c < ncopies; ++c) {
        DramConfig copy_cfg = cfg;
        if (mode_ != MirrorMode::None) {
            // Mirrored copies each get their own channel.
            copy_cfg.channels = 1;
        }
        modules_.push_back(std::make_unique<DramModule>(
            name_ + ".dram" + std::to_string(c), copy_cfg));
        contents_.emplace_back();
    }

    stats_.add("reads", reads_);
    stats_.add("writes", writes_);
    stats_.add("corrected_errors", ce_);
    stats_.add("detected_failures", detectedFail_);
    stats_.add("silent_corruptions_observed", sdcObserved_);
    stats_.add("mirror_failovers", mirrorFailovers_);
    stats_.add("read_latency", readLatency_);
    if (cfg.disturbEnabled)
        stats_.add("disturb_faults_injected", disturbInjected_);
}

void
MemoryController::flushPending() const
{
    reads_ += pend_.reads;
    writes_ += pend_.writes;
    for (unsigned i = 0; i < pend_.nLat; ++i)
        readLatency_.record(pend_.lat[i]);
    pend_ = PendingMem{};
}

void
MemoryController::drainDisturb(unsigned copy)
{
    if (!faults_ || !modules_[copy]->disturbPending())
        return;
    const DramConfig &dcfg = modules_[copy]->config();
    const std::uint64_t rows = dcfg.rowsPerBank();
    for (const auto &ev : modules_[copy]->drainDisturbEvents()) {
        const unsigned global_channel =
            faultChannelBase_
            + (mode_ == MirrorMode::None ? ev.coord.channel : copy);
        for (const int d : {-1, +1}) {
            // Victims are the rows adjacent to the aggressor; edge rows
            // have a single neighbor.
            if ((d < 0 && ev.coord.row == 0)
                || (d > 0 && ev.coord.row + 1 >= rows)) {
                continue;
            }
            const std::uint64_t victim =
                d < 0 ? ev.coord.row - 1 : ev.coord.row + 1;
            // A row's weak cells are a fixed property of the row: the
            // same (seed, coords) always flip the same chips/bits, so
            // repeated crossings dedup in the registry and a victim
            // never accumulates more corrupt chips than TSD detects.
            const std::uint64_t key =
                mix(victim ^ (std::uint64_t(ev.coord.bank) << 40)
                    ^ (std::uint64_t(ev.coord.rank) << 48)
                    ^ (std::uint64_t(global_channel) << 52)
                    ^ (std::uint64_t(socket_) << 58));
            const std::uint64_t h = mix(dcfg.disturbSeed ^ key);

            FaultDescriptor f;
            f.scope = FaultScope::RowDisturb;
            f.socket = socket_;
            f.channel = global_channel;
            f.rank = ev.coord.rank;
            f.bank = ev.coord.bank;
            f.row = victim;
            f.transient = true; // a rewrite restores the victim's charge
            f.chip = static_cast<unsigned>((h >> 8) % codec_.chips());
            f.bit = static_cast<unsigned>((h >> 16) % 8);
            if (faults_->inject(f))
                ++disturbInjected_;
            if (h & 1) {
                // Second weak cell in a different chip: enough to defeat
                // SEC-DED yet still within TSD's detection capability.
                f.chip = static_cast<unsigned>(
                    (f.chip + 1 + (h >> 24) % (codec_.chips() - 1))
                    % codec_.chips());
                f.bit = static_cast<unsigned>((h >> 32) % 8);
                if (faults_->inject(f))
                    ++disturbInjected_;
            }
        }
    }
}

bool
MemoryController::rowDisturbedAt(Addr addr) const
{
    if (!faults_)
        return false;
    for (unsigned c = 0; c < modules_.size(); ++c) {
        const Addr probe = mode_ == MirrorMode::Raim
                                   && c == raimDataChannels
                               ? raimParityAddr(addr)
                               : addr;
        const auto coord = modules_[c]->map().decode(probe);
        const unsigned global_channel =
            faultChannelBase_
            + (mode_ == MirrorMode::None ? coord.channel : c);
        if (faults_->rowDisturbAt(socket_, global_channel, coord))
            return true;
    }
    return false;
}

std::uint64_t
MemoryController::storedValue(unsigned copy, Addr addr) const
{
    const auto it = contents_[copy].find(lineNum(addr));
    return it == contents_[copy].end() ? 0 : it->second;
}

MemoryController::CopyRead
MemoryController::readCopy(unsigned copy, Addr addr,
                           const DramCoord &coord)
{
    CopyRead out;
    out.value = storedValue(copy, addr);

    // Global channel id seen by the fault registry: mirrored copies map
    // copy index -> channel; interleaved modules use the decoded channel.
    const unsigned global_channel =
        faultChannelBase_
        + (mode_ == MirrorMode::None ? coord.channel : copy);

    if (!faults_)
        return out;
    const FaultImpact imp = faults_->impact(socket_, global_channel, coord);
    if (!imp.any())
        return out;
    if (imp.pathFailed) {
        // Bus CRC / controller timeout: detected, no data produced.
        out.pathFailed = true;
        out.status = EccStatus::Detected;
        return out;
    }

    // Materialize the stored line, corrupt the affected chips, decode.
    const LineBytes good = materializeLine(lineNum(addr), out.value);
    StoredLine stored = codec_.encode(good);
    for (unsigned chip : imp.corruptChips) {
        if (chip < codec_.chips())
            codec_.corruptChip(stored, chip, rng_);
    }
    for (const auto &[chip, bit] : imp.bitFlips) {
        if (chip < codec_.chips()) {
            const auto bytes = codec_.chipBytes(chip);
            LineCodec::corruptBit(stored, bytes[coord.column
                                                % bytes.size()],
                                  bit % 8);
        }
    }

    const auto dec = codec_.decode(stored);
    out.status = dec.status;
    if (dec.status != EccStatus::Detected) {
        out.value = dematerializeLine(lineNum(addr), dec.data);
        out.silentlyWrong = dec.data != good;
    }
    return out;
}

MemReadResult
MemoryController::raimRead(Addr addr, Tick now)
{
    MemReadResult res;
    const unsigned c = raimChannelOf(addr);
    const Addr line = lineNum(addr);
    const Addr base = (line / raimDataChannels) * raimDataChannels;

    // RAID-3 "ganged" channels: every read cycles all five channels
    // (the 256 B access granularity the paper cites against RAIM).
    Tick ready = now;
    for (unsigned m = 0; m < modules_.size(); ++m) {
        const Addr a = m == raimDataChannels
                           ? raimParityAddr(addr)
                           : (base + m) << lineShift;
        ready = std::max(ready, modules_[m]->access(a, false, now).readyAt);
        drainDisturb(m);
    }
    res.readyAt = ready;

    CopyRead r = readCopy(c, addr, modules_[c]->map().decode(addr));

    if (r.status == EccStatus::Detected) {
        // Reconstruct the line from its three stripe-mates + parity.
        bool ok = true;
        std::uint64_t recon = 0;
        for (unsigned i = 0; i < raimDataChannels && ok; ++i) {
            if (i == c)
                continue;
            const Addr a = (base + i) << lineShift;
            const CopyRead rr =
                readCopy(i, a, modules_[i]->map().decode(a));
            if (rr.status == EccStatus::Detected)
                ok = false;
            else
                recon ^= rr.value;
        }
        if (ok) {
            const Addr pa = raimParityAddr(addr);
            const CopyRead pr = readCopy(
                raimDataChannels, pa,
                modules_[raimDataChannels]->map().decode(pa));
            if (pr.status == EccStatus::Detected)
                ok = false;
            else
                recon ^= pr.value;
        }
        if (ok) {
            r.status = EccStatus::Corrected;
            r.value = recon;
            r.silentlyWrong = false;
        }
    }

    res.status = r.status;
    res.value = r.value;
    if (r.status == EccStatus::Corrected)
        ++ce_;
    if (r.status == EccStatus::Detected) {
        ++detectedFail_;
        res.failed = true;
    }
    if (r.silentlyWrong)
        ++sdcObserved_;
    return res;
}

MemReadResult
MemoryController::read(Addr addr, Tick now)
{
    ++pend_.reads;
    if (mode_ == MirrorMode::Raim) {
        MemReadResult rr = raimRead(addr, now);
        noteLatency(rr.readyAt - now);
        return rr;
    }
    MemReadResult res;

    const unsigned first =
        mode_ == MirrorMode::LoadBalance
            ? static_cast<unsigned>(nextCopyToRead_++ % modules_.size())
            : 0;

    const auto timing = modules_[first]->access(addr, false, now);
    drainDisturb(first);
    res.readyAt = timing.readyAt;

    CopyRead r = readCopy(first, addr, timing.coord);

    if (r.status == EccStatus::Detected && modules_.size() > 1) {
        // Intra-controller failover to the other mirrored copy.
        const unsigned other = first ^ 1u;
        const auto timing2 =
            modules_[other]->access(addr, false, res.readyAt);
        drainDisturb(other);
        res.readyAt = timing2.readyAt;
        const CopyRead r2 = readCopy(other, addr, timing2.coord);
        if (r2.status != EccStatus::Detected) {
            ++mirrorFailovers_;
            ++ce_;
            r = r2;
            r.status = EccStatus::Corrected;
        } else {
            r = r2;
        }
    }

    res.status = r.status;
    res.value = r.value;
    if (r.status == EccStatus::Corrected)
        ++ce_;
    if (r.status == EccStatus::Detected) {
        ++detectedFail_;
        res.failed = true;
    }
    if (r.silentlyWrong)
        ++sdcObserved_;
    noteLatency(res.readyAt - now);
    return res;
}

Tick
MemoryController::write(Addr addr, std::uint64_t value, Tick now)
{
    ++pend_.writes;
    if (mode_ == MirrorMode::Raim) {
        const unsigned c = raimChannelOf(addr);
        const Addr line = lineNum(addr);
        contents_[c][line] = value;
        // Recompute and rewrite the stripe parity (absent lines are 0).
        const Addr base = (line / raimDataChannels) * raimDataChannels;
        std::uint64_t parity = 0;
        for (unsigned i = 0; i < raimDataChannels; ++i) {
            const auto it = contents_[i].find(base + i);
            if (it != contents_[i].end())
                parity ^= it->second;
        }
        const Addr pa = raimParityAddr(addr);
        contents_[raimDataChannels][lineNum(pa)] = parity;
        const Tick t1 = modules_[c]->access(addr, true, now).readyAt;
        drainDisturb(c);
        const Tick t2 =
            modules_[raimDataChannels]->access(pa, true, now).readyAt;
        drainDisturb(raimDataChannels);
        return std::max(t1, t2);
    }
    Tick done = now;
    for (unsigned c = 0; c < modules_.size(); ++c) {
        contents_[c][lineNum(addr)] = value;
        const auto t = modules_[c]->access(addr, true, now);
        drainDisturb(c);
        done = std::max(done, t.readyAt);
    }
    return done;
}

MemReadResult
MemoryController::repairAndVerify(Addr addr, std::uint64_t good_value,
                                  Tick now)
{
    // Overwrite the protected copies with the good data; transient
    // faults at the location are cured by the write (hard persist).
    const Tick written = write(addr, good_value, now);
    if (faults_) {
        for (unsigned c = 0; c < modules_.size(); ++c) {
            const Addr probe =
                mode_ == MirrorMode::Raim && c == raimDataChannels
                    ? raimParityAddr(addr)
                    : addr;
            const auto coord = modules_[c]->map().decode(probe);
            const unsigned global_channel =
                faultChannelBase_
                + (mode_ == MirrorMode::None ? coord.channel : c);
            faults_->repairAt(socket_, global_channel, coord);
        }
    }
    return read(addr, written);
}

Tick
MemoryController::metadataAccess(Addr, Tick now)
{
    // Directory metadata lives in a dedicated reserved region (its own
    // bank group), so a fetch neither disturbs application row buffers
    // nor queues behind them: model it as a closed-page access.
    const DramConfig &c = modules_[0]->config();
    return now + c.tRCD + c.tCL + c.tBURST;
}

Tick
MemoryController::timingRead(Addr addr, Tick now)
{
    const Tick t = modules_[0]->access(addr, false, now).readyAt;
    drainDisturb(0);
    return t;
}

std::uint64_t
MemoryController::peek(Addr addr) const
{
    return storedValue(
        mode_ == MirrorMode::Raim ? raimChannelOf(addr) : 0, addr);
}

void
MemoryController::poke(Addr addr, std::uint64_t value)
{
    if (mode_ == MirrorMode::Raim) {
        const unsigned c = raimChannelOf(addr);
        const Addr line = lineNum(addr);
        contents_[c][line] = value;
        const Addr base = (line / raimDataChannels) * raimDataChannels;
        std::uint64_t parity = 0;
        for (unsigned i = 0; i < raimDataChannels; ++i) {
            const auto it = contents_[i].find(base + i);
            if (it != contents_[i].end())
                parity ^= it->second;
        }
        contents_[raimDataChannels][lineNum(raimParityAddr(addr))] =
            parity;
        return;
    }
    for (auto &c : contents_)
        c[lineNum(addr)] = value;
}

} // namespace dve
