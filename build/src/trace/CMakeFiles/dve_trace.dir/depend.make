# Empty dependencies file for dve_trace.
# This may be replaced when dependencies are built.
