#include "cpu/replay.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dve
{

namespace
{
constexpr Cycles threadApiCycles = 100; // paper Sec. VI
} // namespace

ReplayEngine::ReplayEngine(CoherenceEngine &engine, double warmup_fraction)
    : engine_(engine), warmupFraction_(warmup_fraction),
      clk_(engine.config().coreFreqMhz)
{
    dve_assert(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
               "warmup fraction out of range");
}

void
ReplayEngine::scheduleStep(unsigned tid)
{
    ThreadState &t = threads_[tid];
    queue_.schedule(t.time, [this, tid] { step(tid); });
}

ReplayResult
ReplayEngine::run(const ThreadTraces &traces)
{
    const unsigned nthreads = static_cast<unsigned>(traces.size());
    const unsigned cores_total =
        engine_.config().sockets * engine_.config().coresPerSocket;
    dve_assert(nthreads >= 1 && nthreads <= cores_total,
               "thread count exceeds cores (", nthreads, " > ",
               cores_total, ")");

    threads_.assign(nthreads, ThreadState{});
    barriers_.clear();
    locks_.clear();
    result_ = ReplayResult{};
    liveThreads_ = nthreads;
    warmThreads_ = nthreads;

    for (unsigned tid = 0; tid < nthreads; ++tid) {
        ThreadState &t = threads_[tid];
        t.ops = &traces[tid];
        std::uint64_t mem = 0;
        for (const auto &op : traces[tid])
            mem += op.type == OpType::Read || op.type == OpType::Write;
        t.memOpsWarm = static_cast<std::uint64_t>(
            static_cast<double>(mem) * warmupFraction_);
        if (t.memOpsWarm == 0 && warmThreads_ > 0)
            --warmThreads_; // nothing to warm for this thread
        scheduleStep(tid);
    }
    if (warmThreads_ == 0) {
        result_.roiStartTick = 0;
        if (roiCallback_)
            roiCallback_(0);
    }

    queue_.run();

    dve_assert(liveThreads_ == 0, "deadlock: ", liveThreads_,
               " threads never finished");
    return result_;
}

void
ReplayEngine::step(unsigned tid)
{
    ThreadState &t = threads_[tid];
    const unsigned cps = engine_.config().coresPerSocket;
    const unsigned socket = tid / cps;
    const unsigned core = tid % cps;

    if (t.pc >= t.ops->size()) {
        if (!t.finished) {
            t.finished = true;
            --liveThreads_;
            result_.finishTick = std::max(result_.finishTick, t.time);
        }
        return;
    }

    const TraceOp &op = (*t.ops)[t.pc];
    const bool in_roi = warmThreads_ == 0;

    switch (op.type) {
      case OpType::Compute: {
        t.time += clk_.cyclesToTicks(op.arg);
        if (in_roi) {
            result_.computeCycles += op.arg;
            result_.instructionsApprox += op.arg;
        }
        ++t.pc;
        scheduleStep(tid);
        return;
      }

      case OpType::Read:
      case OpType::Write: {
        const bool is_write = op.type == OpType::Write;
        const std::uint64_t token =
            (std::uint64_t(tid) << 48) | (t.memOpsDone + 1);
        const auto r = engine_.access(socket, core, op.addr, is_write,
                                      token, t.time);
        t.time = r.done;
        ++t.memOpsDone;
        if (in_roi) {
            ++result_.memOps;
            ++result_.instructionsApprox;
        }
        // Warmup bookkeeping: the ROI opens when every thread has
        // replayed its warmup share of memory events.
        if (warmThreads_ > 0 && t.memOpsDone == t.memOpsWarm) {
            if (--warmThreads_ == 0) {
                result_.roiStartTick = queue_.now();
                if (roiCallback_)
                    roiCallback_(queue_.now());
            }
        }
        ++t.pc;
        scheduleStep(tid);
        return;
      }

      case OpType::Barrier: {
        BarrierState &b = barriers_[op.arg];
        b.arrived++;
        if (in_roi)
            ++result_.barrierWaits;
        if (b.arrived < threads_.size()) {
            b.waiting.push_back(tid);
            t.blocked = true;
            return; // resumed by the last arriver
        }
        // Last arrival releases everyone at now + API cost.
        const Tick release =
            queue_.now() + clk_.cyclesToTicks(threadApiCycles);
        for (unsigned w : b.waiting) {
            ThreadState &wt = threads_[w];
            wt.blocked = false;
            wt.time = release;
            ++wt.pc;
            scheduleStep(w);
        }
        barriers_.erase(op.arg);
        t.time = release;
        ++t.pc;
        scheduleStep(tid);
        return;
      }

      case OpType::Lock: {
        LockState &l = locks_[op.arg];
        if (l.held) {
            l.waiters.push_back(tid);
            t.blocked = true;
            return; // resumed by the unlocker
        }
        l.held = true;
        t.time += clk_.cyclesToTicks(threadApiCycles);
        if (in_roi)
            ++result_.lockAcquisitions;
        ++t.pc;
        scheduleStep(tid);
        return;
      }

      case OpType::Unlock: {
        LockState &l = locks_[op.arg];
        dve_assert(l.held, "unlock of a free lock in trace");
        t.time += clk_.cyclesToTicks(threadApiCycles);
        if (l.waiters.empty()) {
            l.held = false;
        } else {
            // FIFO handoff: next waiter acquires at the release time.
            const unsigned next = l.waiters.front();
            l.waiters.erase(l.waiters.begin());
            ThreadState &nt = threads_[next];
            nt.blocked = false;
            nt.time = std::max(nt.time, t.time)
                      + clk_.cyclesToTicks(threadApiCycles);
            if (in_roi)
                ++result_.lockAcquisitions;
            ++nt.pc;
            scheduleStep(next);
        }
        ++t.pc;
        scheduleStep(tid);
        return;
      }
    }
    dve_panic("unhandled op type");
}

} // namespace dve
