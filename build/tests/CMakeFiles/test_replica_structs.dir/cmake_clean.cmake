file(REMOVE_RECURSE
  "CMakeFiles/test_replica_structs.dir/test_replica_structs.cc.o"
  "CMakeFiles/test_replica_structs.dir/test_replica_structs.cc.o.d"
  "test_replica_structs"
  "test_replica_structs.pdb"
  "test_replica_structs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replica_structs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
